(* Incremental-maintenance benchmark: the session cache under a mixed
   read/write workload, delta eviction (PR 10) against the
   flush-on-write wholesale baseline, on a primary daemon and on a
   replica applying the shipped log.  Emits BENCH_PR10.json.

   The workload is the one delta eviction exists for: four reader
   clients hammer one viewpoint's memoized queries while a writer
   sustains mutations for the whole read window — three quarters to an
   object outside the readers' isa-cone (the cache should be carried
   untouched), one quarter to the read object itself (the least model
   should be repaired in place, not recomputed).  All mutated rules
   keep the Herbrand universe fixed, so repair never falls back; a
   fresh constant would be counted in inc_fallbacks, and the run
   reports that counter so a regression is visible.

   Flags: --quick (few requests; used by the cram well-formedness
   test), --out FILE (default BENCH_PR10.json), --min-hit-rate R (fail
   unless both delta runs reach R and the primary delta run beats its
   wholesale baseline — the `make bench-incremental` floor). *)

module W = Server.Wire
module P = Persist
module Store = Kb.Store

let kb_src =
  "component top { fly(X) :- bird(X). bird(b0). bird(b1). bird(b2). \
   nests(X) :- bird(X), not -fly(X). } \
   component bot extends top { -fly(b0). } \
   component side { mark. }"

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("incremental: " ^ s); exit 1) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "olp-bench-inc-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let connect address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> die "connect: %s" e

let roundtrip c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> die "request %s: %s" line e

let expect_ok c line =
  let j = roundtrip c line in
  match W.member "status" j with
  | Some (W.String "ok") -> j
  | _ -> die "unexpected response to %s: %s" line (W.to_string j)

let daemon ?dir ?replicate_on () =
  Server.Daemon.create
    { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
      workers = 4;
      parallel = `Threads;
      queue = 256;
      caps = Server.Engine.default_caps;
      persist =
        Option.map
          (fun dir ->
            { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 })
          dir;
      replicate_on;
      sync = None
    }

let set_eviction d mode =
  Kb.Session.set_eviction
    (Server.Engine.session (Server.Daemon.engine d))
    mode

(* The read mix: three least-model queries (one shared cache entry the
   writer keeps repairing) and a model enumeration (evicted by every
   in-cone write, carried across every out-of-cone one). *)
let mix =
  [| {|{"op":"query","obj":"bot","lit":"fly(b1)"}|};
     {|{"op":"models","obj":"bot","kind":"stable"}|};
     {|{"op":"query","obj":"bot","lit":"nests(b1)"}|};
     {|{"op":"query","obj":"bot","lit":"fly(b0)"}|}
  |]

(* One writer step: add a rule, then remove it again next time around —
   the KB stays bounded however long the read window is.  Every fourth
   target is the read object itself (universe-preserving propositional
   rules, so the repair path runs rather than the fallback). *)
let write_ops i =
  let j = i / 2 in
  let k = j mod 8 in
  let obj, r =
    if j mod 4 = 3 then ("bot", Printf.sprintf "flag%d." k)
    else ("side", Printf.sprintf "s%d :- mark." k)
  in
  let payload op =
    W.to_string
      (W.Obj
         [ ("op", W.String op); ("obj", W.String obj); ("rule", W.String r) ])
  in
  if i mod 2 = 0 then payload "add_rule" else payload "remove_rule"

type run = {
  target : string;  (* "primary" | "replica" *)
  eviction : string;  (* "delta" | "wholesale" *)
  requests : int;
  writes : int;
  elapsed_ns : int;
  qps : float;
  hits : int;
  misses : int;
  hit_rate : float;
  repairs : int;
  fallbacks : int;
  kept : int;
}

(* Readers against [read_addr], a writer sustaining mutations against
   [write_addr] until the readers drain; stats are collected from the
   daemon the readers hit. *)
let measure ~target ~eviction ~read_addr ~write_addr ~stats_daemon
    ~per_client =
  let clients = 4 in
  let stop = Atomic.make false in
  let writes = Atomic.make 0 in
  let writer =
    Thread.create
      (fun () ->
        let c = connect write_addr in
        let i = ref 0 in
        while not (Atomic.get stop) do
          ignore (expect_ok c (write_ops !i));
          incr i;
          Atomic.incr writes
        done;
        Server.Client.close c)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let readers =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = connect read_addr in
            for i = 0 to per_client - 1 do
              ignore (roundtrip c mix.((ci + i) mod Array.length mix))
            done;
            Server.Client.close c)
          ())
  in
  List.iter Thread.join readers;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Thread.join writer;
  let c = Kb.Session.counters (Server.Engine.session stats_daemon) in
  let m name =
    match
      List.assoc_opt name
        (Governor.Metrics.snapshot (Server.Engine.metrics stats_daemon))
    with
    | Some n -> n
    | None -> die "no %s metric" name
  in
  let requests = clients * per_client in
  { target;
    eviction;
    requests;
    writes = Atomic.get writes;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    qps = float_of_int requests /. elapsed;
    hits = c.Kb.Session.hits;
    misses = c.Kb.Session.misses;
    hit_rate =
      float_of_int c.Kb.Session.hits
      /. float_of_int (max 1 (c.Kb.Session.hits + c.Kb.Session.misses));
    repairs = m "inc_repairs";
    fallbacks = m "inc_fallbacks";
    kept = m "cache_kept"
  }

let load_kb address =
  let c = connect address in
  ignore
    (expect_ok c
       (W.to_string
          (W.Obj [ ("op", W.String "load"); ("src", W.String kb_src) ])));
  Server.Client.close c

(* ------------------------------------------------------------------ *)
(* Primary leg: one daemon, readers and writer on the same socket      *)
(* ------------------------------------------------------------------ *)

let primary_run ~eviction ~per_client =
  let d = daemon () in
  let t = Thread.create (fun () -> Server.Daemon.serve d) () in
  set_eviction d (if eviction = "delta" then `Delta else `Wholesale);
  let addr = Server.Daemon.address d in
  load_kb addr;
  let r =
    measure ~target:"primary" ~eviction ~read_addr:addr ~write_addr:addr
      ~stats_daemon:(Server.Daemon.engine d) ~per_client
  in
  Server.Daemon.stop d;
  Thread.join t;
  r

(* ------------------------------------------------------------------ *)
(* Replica leg: writer on the primary, readers on a replica applying   *)
(* the shipped log through the same delta path (apply/apply_batch)     *)
(* ------------------------------------------------------------------ *)

let catch_up link =
  let rec go fuel =
    if fuel = 0 then die "replication made no progress";
    match Replica.Link.step link with
    | `Applied _ | `Ready -> go (fuel - 1)
    | `Idle -> ()
    | `Retry m -> die "transient failure under bench: %s" m
    | `Fatal m -> die "replication halted: %s" m
    | `Stopped -> die "link stopped under bench"
  in
  go 1_000_000

let replica_run ~eviction ~per_client =
  let pd = fresh_dir () and rd = fresh_dir () in
  let primary = daemon ~dir:pd ~replicate_on:(`Tcp ("127.0.0.1", 0)) () in
  let pt = Thread.create (fun () -> Server.Daemon.serve primary) () in
  let rep_addr =
    match Server.Daemon.replication_address primary with
    | Some (`Tcp _ as a) -> a
    | _ -> die "primary has no replication listener"
  in
  load_kb (Server.Daemon.address primary);
  let replica = daemon ~dir:rd () in
  let rt = Thread.create (fun () -> Server.Daemon.serve replica) () in
  set_eviction replica (if eviction = "delta" then `Delta else `Wholesale);
  let engine = Server.Daemon.engine replica in
  let link =
    Replica.Link.create
      ~metrics:(Server.Engine.metrics engine)
      ~engine
      ~session:(Server.Engine.session engine)
      ~persist:(Option.get (Server.Daemon.persist_handle replica))
      (Replica.Link.default_config rep_addr)
  in
  catch_up link;
  (* pump the link for the whole read window so every primary write is
     applied on the replica while the readers run *)
  let stop_pump = Atomic.make false in
  let pump =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_pump) do
          (match Replica.Link.step link with
          | `Applied _ | `Ready -> ()
          | `Idle -> Thread.yield ()
          | `Retry _ -> Thread.yield ()
          | `Fatal m -> die "replication halted: %s" m
          | `Stopped -> ());
          ()
        done)
      ()
  in
  let r =
    measure ~target:"replica" ~eviction
      ~read_addr:(Server.Daemon.address replica)
      ~write_addr:(Server.Daemon.address primary)
      ~stats_daemon:engine ~per_client
  in
  Atomic.set stop_pump true;
  Thread.join pump;
  Replica.Link.stop link;
  Server.Daemon.stop replica;
  Thread.join rt;
  Server.Daemon.stop primary;
  Thread.join pt;
  rm_rf pd;
  rm_rf rd;
  r

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = ref false in
  let out = ref "BENCH_PR10.json" in
  let min_hit_rate = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--min-hit-rate" :: r :: rest ->
      min_hit_rate := float_of_string_opt r;
      parse rest
    | arg :: _ ->
      Printf.eprintf "incremental: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let per_client = if !quick then 50 else 400 in
  let runs =
    [ primary_run ~eviction:"delta" ~per_client;
      primary_run ~eviction:"wholesale" ~per_client;
      replica_run ~eviction:"delta" ~per_client;
      replica_run ~eviction:"wholesale" ~per_client
    ]
  in
  let find target eviction =
    List.find (fun r -> r.target = target && r.eviction = eviction) runs
  in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR10 incremental maintenance\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"target\": \"%s\", \"eviction\": \"%s\", \"requests\": %d, \
         \"writes\": %d, \"elapsed_ns\": %d, \"reads_per_sec\": %.1f, \
         \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": \
         %.4f, \"inc_repairs\": %d, \"inc_fallbacks\": %d, \"cache_kept\": \
         %d}%s\n"
        r.target r.eviction r.requests r.writes r.elapsed_ns r.qps r.hits
        r.misses r.hit_rate r.repairs r.fallbacks r.kept
        (if i = List.length runs - 1 then "" else ","))
    runs;
  let pd = find "primary" "delta"
  and pw = find "primary" "wholesale"
  and rd = find "replica" "delta"
  and rw = find "replica" "wholesale" in
  p
    "  ],\n\
    \  \"summary\": {\"primary_delta_hit_rate\": %.4f, \
     \"primary_wholesale_hit_rate\": %.4f, \"replica_delta_hit_rate\": \
     %.4f, \"replica_wholesale_hit_rate\": %.4f, \
     \"primary_hit_rate_advantage\": %.4f}\n\
     }\n"
    pd.hit_rate pw.hit_rate rd.hit_rate rw.hit_rate
    (pd.hit_rate -. pw.hit_rate);
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  match !min_hit_rate with
  | None -> ()
  | Some floor ->
    if pd.hit_rate < floor then
      die "primary delta hit rate %.4f below the %.2f floor" pd.hit_rate
        floor;
    if rd.hit_rate < floor then
      die "replica delta hit rate %.4f below the %.2f floor" rd.hit_rate
        floor;
    if pd.hit_rate <= pw.hit_rate then
      die "delta hit rate %.4f does not beat the wholesale baseline %.4f"
        pd.hit_rate pw.hit_rate;
    Printf.printf
      "hit-rate floor ok: delta %.4f vs wholesale %.4f (floor %.2f)\n"
      pd.hit_rate pw.hit_rate floor
