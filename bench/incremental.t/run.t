The incremental-maintenance benchmark boots real daemons (primary and
replica), sustains writes through the whole read window and emits
well-formed JSON (checked with the bundled validator — no jq
dependency):

  $ ../incremental.exe --quick --out bench10.json
  wrote bench10.json
  $ ../json_check.exe bench10.json bench mode runs summary
  bench10.json: valid JSON
