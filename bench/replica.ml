(* Replication benchmark: a primary daemon and a replica wired up in
   process, the same way `olp serve --replica-of` does it.  Emits
   BENCH_PR5.json — log-shipping throughput (mutations per second
   applied on the replica) for a cold catch-up and for a burst arriving
   while in sync, and read throughput served from the replica against
   the same workload served from the primary.

   The link is stepped directly rather than through its background
   thread, so the ship numbers measure the pull/apply path without
   poll-interval sleeps.

   Flags: --quick (small counts; used by the cram well-formedness
   test), --out FILE (default BENCH_PR5.json). *)

module W = Server.Wire
module P = Persist
module Store = Kb.Store

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("replica: " ^ s); exit 1) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "olp-bench-replica-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

(* the same steady-state shape as the persistence benchmark: one Define,
   then distinct fact appends *)
let define =
  Store.Define
    { name = "facts";
      isa = [];
      rules = [ Lang.Parser.parse_rule "q(X) :- p(X)." ]
    }

let mutation i =
  Store.Add_rule
    { obj = "facts"; rule = Lang.Parser.parse_rule (Printf.sprintf "p(%d)." i) }

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let daemon ~dir ~replicate_on =
  Server.Daemon.create
    { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
      workers = 4;
      parallel = `Threads;
      queue = 256;
      caps = Server.Engine.default_caps;
      persist =
        Some { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 };
      replicate_on;
      sync = None
    }

(* apply a mutation on the primary the way a worker would: under the
   engine lock, through the session, so it is logged and shippable *)
let mutate d m =
  let engine = Server.Daemon.engine d in
  Server.Engine.exclusively engine (fun () ->
      Kb.Session.apply (Server.Engine.session engine) m)

(* wire a link over a replica daemon exactly as bin/olp.ml does *)
let link_of ~primary d =
  let engine = Server.Daemon.engine d in
  let persist =
    match Server.Daemon.persist_handle d with
    | Some p -> p
    | None -> die "replica daemon has no data directory"
  in
  Replica.Link.create
    ~metrics:(Server.Engine.metrics engine)
    ~engine
    ~session:(Server.Engine.session engine)
    ~persist
    (Replica.Link.default_config primary)

(* step until in sync; Ready/Applied are progress, anything else is a
   benchmark failure (both ends live in this process) *)
let catch_up link =
  let rec go fuel =
    if fuel = 0 then die "replication made no progress";
    match Replica.Link.step link with
    | `Applied _ | `Ready -> go (fuel - 1)
    | `Idle -> ()
    | `Retry m -> die "transient failure under bench: %s" m
    | `Fatal m -> die "replication halted: %s" m
    | `Stopped -> die "link stopped under bench"
  in
  go 1_000_000

(* ------------------------------------------------------------------ *)
(* Shipping throughput                                                 *)
(* ------------------------------------------------------------------ *)

type ship_run = {
  phase : string;
  mutations : int;
  elapsed_ns : int;
  per_sec : float;
}

type read_run = {
  target : string;
  clients : int;
  requests : int;
  elapsed_ns : int;
  qps : float;
}

let connect address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> die "connect: %s" e

let roundtrip c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> die "request %s: %s" line e

(* the read mix: repeated queries, answerable from the session cache
   after the first computation — the workload a read replica exists to
   offload *)
let mix =
  [| {|{"op":"query","obj":"facts","lit":"q(1)"}|};
     {|{"op":"query","obj":"facts","lit":"p(1)"}|};
     {|{"op":"query","obj":"facts","lit":"q(2)"}|};
     {|{"op":"query","obj":"facts","lit":"p(0)"}|}
  |]

let read_qps ~target ~clients ~per_client address =
  let elapsed =
    time (fun () ->
        let threads =
          List.init clients (fun ci ->
              Thread.create
                (fun () ->
                  let c = connect address in
                  for i = 0 to per_client - 1 do
                    ignore (roundtrip c mix.((ci + i) mod Array.length mix))
                  done;
                  Server.Client.close c)
                ())
        in
        List.iter Thread.join threads)
  in
  let requests = clients * per_client in
  { target;
    clients;
    requests;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    qps = float_of_int requests /. elapsed
  }

let () =
  let quick = ref false in
  let out = ref "BENCH_PR5.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "replica: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n = if !quick then 300 else 10_000 in
  let burst = if !quick then 100 else 2_000 in
  let per_client = if !quick then 25 else 300 in
  let clients = 4 in

  let pd = fresh_dir () and rd = fresh_dir () in
  let primary = daemon ~dir:pd ~replicate_on:(Some (`Tcp ("127.0.0.1", 0))) in
  let primary_thread = Thread.create (fun () -> Server.Daemon.serve primary) () in
  let rep_addr =
    match Server.Daemon.replication_address primary with
    | Some a -> a
    | None -> die "primary has no replication listener"
  in
  mutate primary define;
  for i = 1 to n do
    mutate primary (mutation i)
  done;

  let replica = daemon ~dir:rd ~replicate_on:None in
  let replica_thread = Thread.create (fun () -> Server.Daemon.serve replica) () in
  let link = link_of ~primary:rep_addr replica in

  (* 1. cold catch-up: the replica pulls the primary's whole history *)
  let cold = time (fun () -> catch_up link) in
  let seq = P.seq (Option.get (Server.Daemon.persist_handle replica)) in
  if seq <> n + 1 then die "cold catch-up applied %d of %d" seq (n + 1);

  (* 2. a burst lands while the replica is in sync *)
  for i = n + 1 to n + burst do
    mutate primary (mutation i)
  done;
  let live = time (fun () -> catch_up link) in

  let ships =
    [ { phase = "cold-catch-up";
        mutations = n + 1;
        elapsed_ns = int_of_float (cold *. 1e9);
        per_sec = float_of_int (n + 1) /. cold
      };
      { phase = "burst-catch-up";
        mutations = burst;
        elapsed_ns = int_of_float (live *. 1e9);
        per_sec = float_of_int burst /. live
      }
    ]
  in

  (* 3. the same read workload against each end *)
  let reads =
    [ read_qps ~target:"primary" ~clients ~per_client
        (Server.Daemon.address primary);
      read_qps ~target:"replica" ~clients ~per_client
        (Server.Daemon.address replica)
    ]
  in

  Replica.Link.stop link;
  Server.Daemon.stop replica;
  Thread.join replica_thread;
  Server.Daemon.stop primary;
  Thread.join primary_thread;
  rm_rf pd;
  rm_rf rd;

  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR5 replication\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"ship\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"phase\": \"%s\", \"mutations\": %d, \"elapsed_ns\": %d, \
         \"mutations_per_sec\": %.1f}%s\n"
        r.phase r.mutations r.elapsed_ns r.per_sec
        (if i = List.length ships - 1 then "" else ","))
    ships;
  p "  ],\n  \"reads\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"target\": \"%s\", \"clients\": %d, \"requests\": %d, \
         \"elapsed_ns\": %d, \"requests_per_sec\": %.1f}%s\n"
        r.target r.clients r.requests r.elapsed_ns r.qps
        (if i = List.length reads - 1 then "" else ","))
    reads;
  let ship_best = List.fold_left (fun acc r -> max acc r.per_sec) 0. ships in
  let qps_of t = (List.find (fun r -> r.target = t) reads).qps in
  p
    "  ],\n\
    \  \"summary\": {\"ship_mutations_per_sec\": %.1f, \
     \"primary_read_qps\": %.1f, \"replica_read_qps\": %.1f, \
     \"replica_vs_primary_reads\": %.2f}\n\
     }\n"
    ship_best (qps_of "primary") (qps_of "replica")
    (qps_of "replica" /. qps_of "primary");
  close_out oc;
  Printf.printf "wrote %s\n" !out
