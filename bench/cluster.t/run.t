The cluster benchmark boots a 1-primary / 2-replica chain in process,
measures synchronous versus asynchronous commit, aggregate chain
reads and failover-to-first-write, and emits well-formed JSON
(checked with the bundled validator — no jq dependency):

  $ ../cluster.exe --quick --out bench6.json
  wrote bench6.json
  $ ../json_check.exe bench6.json bench mode commit chain_reads failover summary
  bench6.json: valid JSON
