(* Preference benchmark: compiled preferences (Delgrande–Schaub-style
   translation + the pruned search) against the naive preferred-model
   oracle, on scaled prioritized-defaults workloads.  Emits
   BENCH_PR8.json — the PR 8 point of the performance trajectory (see
   docs/PERFORMANCE.md).

   The workload is k independent blocks over a low/high component
   pair.  Every block combines the paper's Example 5 conflict (two
   stable models, so the search must branch) with a default/exception
   pair decided by a prefer declaration:

     low:   aI. bI. cI.
     high:  rIa : -aI :- bI, cI.   rIb : -bI :- aI.   rIs : -bI :- -bI.
            dI : pI :- cI.         eI : -pI :- cI.
     prefer eI > dI, rIa > rIb.

   Undeclared, dI and eI defeat each other and pI stays undefined; the
   preference overrules the default, forcing -pI into every preferred
   model.  The Example 5 half doubles the model count per block, so
   both engines agree on exactly 2^k preferred models.  The compiled
   route reaches them with the pruned branch-and-propagate search; the
   oracle leaf-checks the refined grounding — the node ratio (naive
   nodes / compiled nodes) is the compilation's win and grows with k.

   For every workload and both engines the JSON reports the median wall
   time of several runs plus the deterministic search counters of one
   run; "summary.scaled" names the workload the trajectory tracks.

   Flags: --quick (small workloads, few repeats; the cram
   well-formedness test), --out FILE (default BENCH_PR8.json),
   --min-ratio R (exit 1 if the scaled workload's node ratio falls
   below R — the regression guard; the Makefile floor lives in
   bench-prefer), --search pruned|compiled (the stable search run on
   the compiled preference program; "compiled" is the flat-array
   kernel — same models and order, fewer nodes on conflict-heavy
   programs). *)

module B = Ordered.Budget
module C = Ordered.Counters

let prioritized_defaults k =
  let b = Buffer.create 1024 in
  Buffer.add_string b "component low {\n";
  for i = 1 to k do
    Buffer.add_string b (Printf.sprintf "  a%d. b%d. c%d.\n" i i i)
  done;
  Buffer.add_string b "}\ncomponent high extends low {\n";
  for i = 1 to k do
    Buffer.add_string b
      (Printf.sprintf
         "  r%da : -a%d :- b%d, c%d.  r%db : -b%d :- a%d.  r%ds : -b%d :- \
          -b%d.\n"
         i i i i i i i i i i);
    Buffer.add_string b
      (Printf.sprintf "  d%d : p%d :- c%d.  e%d : -p%d :- c%d.\n" i i i i i i)
  done;
  Buffer.add_string b "}\n";
  for i = 1 to k do
    Buffer.add_string b
      (Printf.sprintf "prefer e%d > d%d, r%da > r%db.\n" i i i i)
  done;
  Buffer.contents b

let spec_of src =
  let ast = Lang.Parser.parse_file src in
  let prog =
    match Ordered.Program.of_ast ast with
    | Ok p -> p
    | Error e -> failwith e
  in
  let viewpoint =
    match Ordered.Poset.minimal (Ordered.Program.poset prog) with
    | [ c ] -> c
    | _ -> failwith "ambiguous viewpoint"
  in
  Prefer.Spec.make prog viewpoint (Lang.Ast.prefer_pairs ast)

type spec = { w_name : string; runs : int; spec : Prefer.Spec.t Lazy.t }

let spec name runs k =
  { w_name = name; runs; spec = lazy (spec_of (prioritized_defaults k)) }

let full_specs =
  [ spec "prioritized-defaults-4" 15 4;
    spec "prioritized-defaults-5" 5 5;
    (* the scaled preference workload of the trajectory *)
    spec "prioritized-defaults-6" 3 6
  ]

let quick_specs =
  [ spec "prioritized-defaults-2" 5 2; spec "prioritized-defaults-3" 3 3 ]

let scaled_of quick =
  if quick then "prioritized-defaults-3" else "prioritized-defaults-6"

type row = {
  r_workload : string;
  r_engine : string;  (* compiled | naive *)
  r_runs : int;
  r_median_ns : int;
  r_stats : C.t;
  r_models : int;
}

let enumerate ~search engine ?stats spec =
  let result =
    match engine with
    | `Compiled -> (
      let g = Prefer.Compile.gop (Prefer.Compile.compile spec) in
      match search with
      | `Pruned -> Ordered.Stable.stable_models ?stats g
      | `Compiled -> Solve.Kernel.stable_models ?stats g)
    | `Naive -> Prefer.Naive.preferred_models ?stats spec
  in
  List.length (B.value result)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let measure ~search s engine =
  let spec = Lazy.force s.spec in
  let stats = C.create () in
  let models = enumerate ~search engine ~stats spec in
  let sample () =
    let t0 = Unix.gettimeofday () in
    ignore (enumerate ~search engine spec : int);
    int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let samples = List.init s.runs (fun _ -> sample ()) in
  { r_workload = s.w_name;
    r_engine = (match engine with `Compiled -> "compiled" | `Naive -> "naive");
    r_runs = s.runs;
    r_median_ns = median samples;
    r_stats = stats;
    r_models = models
  }

let () =
  let quick = ref false in
  let out = ref "BENCH_PR8.json" in
  let min_ratio = ref None in
  let search = ref `Pruned in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--search" :: s :: rest ->
      (match s with
      | "pruned" -> search := `Pruned
      | "compiled" -> search := `Compiled
      | _ ->
        Printf.eprintf "prefer: --search expects pruned or compiled, got %s\n"
          s;
        exit 2);
      parse rest
    | "--min-ratio" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f -> min_ratio := Some f
      | None ->
        Printf.eprintf "prefer: --min-ratio expects a number, got %s\n" r;
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "prefer: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let specs = if !quick then quick_specs else full_specs in
  let search = !search in
  let rows =
    List.concat_map
      (fun s -> [ measure ~search s `Compiled; measure ~search s `Naive ])
      specs
  in
  (* the two engines are differential implementations of the same
     semantics: a model-count mismatch is a bug, not a data point *)
  List.iter
    (fun s ->
      let models engine =
        (List.find
           (fun r -> r.r_workload = s.w_name && r.r_engine = engine)
           rows)
          .r_models
      in
      if models "compiled" <> models "naive" then begin
        Printf.eprintf "prefer: engine disagreement on %s: compiled %d vs \
                        naive %d model(s)\n"
          s.w_name (models "compiled") (models "naive");
        exit 1
      end)
    specs;
  let ratio s =
    let find engine =
      List.find
        (fun r -> r.r_workload = s.w_name && r.r_engine = engine)
        rows
    in
    ( s.w_name,
      (find "naive").r_stats.C.nodes,
      (find "compiled").r_stats.C.nodes,
      (find "naive").r_median_ns,
      (find "compiled").r_median_ns )
  in
  let ratios = List.map ratio specs in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR8 preferences\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"search\": \"%s\",\n"
    (match search with `Pruned -> "pruned" | `Compiled -> "compiled");
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"workload\": \"%s\", \"engine\": \"%s\", \"runs\": %d, \
         \"median_ns\": %d, \"models\": %d, \"nodes\": %d, \"leaves\": %d, \
         \"prunes\": %d, \"forced\": %d}%s\n"
        r.r_workload r.r_engine r.r_runs r.r_median_ns r.r_models
        r.r_stats.C.nodes r.r_stats.C.leaves r.r_stats.C.prunes
        r.r_stats.C.forced
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"ratios\": [\n";
  List.iteri
    (fun i (name, naive, compiled, naive_ns, compiled_ns) ->
      p
        "    {\"workload\": \"%s\", \"naive_nodes\": %d, \"compiled_nodes\": \
         %d, \"node_ratio\": %.1f, \"time_ratio\": %.1f}%s\n"
        name naive compiled
        (float_of_int naive /. float_of_int (max 1 compiled))
        (float_of_int naive_ns /. float_of_int (max 1 compiled_ns))
        (if i = List.length ratios - 1 then "" else ","))
    ratios;
  let scaled = scaled_of !quick in
  let _, naive, compiled, _, _ =
    List.find (fun (n, _, _, _, _) -> n = scaled) ratios
  in
  p
    "  ],\n\
    \  \"summary\": {\"scaled\": {\"workload\": \"%s\", \"naive_nodes\": %d, \
     \"compiled_nodes\": %d, \"node_ratio\": %.1f}}\n\
     }\n"
    scaled naive compiled
    (float_of_int naive /. float_of_int (max 1 compiled));
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  match !min_ratio with
  | None -> ()
  | Some floor ->
    let got = float_of_int naive /. float_of_int (max 1 compiled) in
    if got < floor then begin
      Printf.eprintf
        "prefer: node ratio regression on %s: %.1f < required %.1f\n" scaled
        got floor;
      exit 1
    end
    else Printf.printf "node ratio %.1f >= %.1f: ok\n" got floor
