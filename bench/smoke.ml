(* Budget smoke-runner: every workload runs under one wall-clock budget
   (default 2 s, override with SMOKE_BUDGET) and must either complete or
   surrender in time.  Emits a single JSON document with per-workload
   status and budget counters, plus a summary with the budget-exhaustion
   count.  Exit code 1 if any workload overshot its deadline (the
   graceful-degradation guarantee failed), 0 otherwise — exhaustion
   itself is an expected outcome, not a failure. *)

module B = Ordered.Budget
module W = Workloads

let budget_secs =
  match Sys.getenv_opt "SMOKE_BUDGET" with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> 2.0)
  | None -> 2.0

(* overshoot tolerance: the clock is polled every 64 ticks and partial
   results still get post-processed, so allow a grace window *)
let grace_ms = 800.

type row = {
  name : string;
  status : string;  (* complete | partial | exhausted | error *)
  reason : string option;
  elapsed_ms : float;
  steps : int;
  instances : int;
  detail : string;
}

let ground ~budget prog comp =
  Ordered.Gop.ground ~budget prog
    (Ordered.Program.component_id_exn prog comp)

let run name f =
  let budget = B.make ~timeout:budget_secs () in
  let t0 = Unix.gettimeofday () in
  let status, reason, detail =
    match f budget with
    | `Complete d -> ("complete", None, d)
    | `Partial (d, why) -> ("partial", Some (B.reason_to_string why), d)
    | exception B.Exhausted why ->
      ("exhausted", Some (B.reason_to_string why), "surrendered")
    | exception Ordered.Diag.Error e ->
      ("error", Some (Ordered.Diag.to_string e), "diagnostic")
  in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  { name;
    status;
    reason;
    elapsed_ms;
    steps = B.steps budget;
    instances = B.instances budget;
    detail
  }

let models_detail = function
  | B.Complete ms -> `Complete (Printf.sprintf "%d models" (List.length ms))
  | B.Partial (ms, r) ->
    `Partial (Printf.sprintf "%d models (prefix)" (List.length ms), r)

let workloads =
  [ ( "chain-400/least",
      fun b ->
        let g = ground ~budget:b (W.chain 400) "main" in
        let m = Ordered.Vfix.least_model ~budget:b g in
        `Complete (Printf.sprintf "%d literals" (Logic.Interp.cardinal m)) );
    ( "tower-64/least",
      fun b ->
        let g = ground ~budget:b (W.tower 64) "c63" in
        let m = Ordered.Vfix.least_model ~budget:b g in
        `Complete (Printf.sprintf "%d literals" (Logic.Interp.cardinal m)) );
    ( "ancestor-32/well-founded",
      fun b ->
        let e = Datalog.Engine.load ~budget:b (W.ancestor_rules 32) in
        let m = Datalog.Engine.well_founded ~budget:b e in
        `Complete (Printf.sprintf "%d literals" (Logic.Interp.cardinal m)) );
    ( "even-loops-6/stable",
      fun b ->
        models_detail
          (Ordered.Stable.stable_models ~budget:b
             (Ordered.Bridge.ground_ov (W.even_loops 6))) );
    ( "even-loops-14/assumption-free",
      (* deliberately too large for the budget: must surrender a partial
         prefix at the deadline, not run away *)
      fun b ->
        models_detail
          (Ordered.Stable.assumption_free_models ~budget:b
             (Ordered.Bridge.ground_ov (W.even_loops 14))) );
    ( "win-move-1200/well-founded",
      (* large grounding: the deadline trips inside the grounder *)
      fun b ->
        let e = Datalog.Engine.load ~budget:b (W.win_move 1200) in
        let m = Datalog.Engine.well_founded ~budget:b e in
        `Complete (Printf.sprintf "%d literals" (Logic.Interp.cardinal m)) );
    ( "kb-chain-48/least",
      fun b ->
        let g = ground ~budget:b (W.kb_chain 48) "v47" in
        let m = Ordered.Vfix.least_model ~budget:b g in
        `Complete (Printf.sprintf "%d literals" (Logic.Interp.cardinal m)) )
  ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let () =
  let rows = List.map (fun (name, f) -> run name f) workloads in
  let held r = r.elapsed_ms <= (budget_secs *. 1000.) +. grace_ms in
  let count p = List.length (List.filter p rows) in
  let complete = count (fun r -> r.status = "complete") in
  let budget_exhausted =
    count (fun r -> r.status = "partial" || r.status = "exhausted")
  in
  let errors = count (fun r -> r.status = "error") in
  let deadline_held = List.for_all held rows in
  Printf.printf "{\n  \"budget_secs\": %g,\n  \"workloads\": [\n" budget_secs;
  List.iteri
    (fun i r ->
      Printf.printf
        "    {\"name\": \"%s\", \"status\": \"%s\", \"reason\": %s, \
         \"elapsed_ms\": %.1f, \"steps\": %d, \"instances\": %d, \
         \"detail\": \"%s\", \"deadline_held\": %b}%s\n"
        (json_escape r.name) r.status
        (match r.reason with
        | None -> "null"
        | Some s -> Printf.sprintf "\"%s\"" (json_escape s))
        r.elapsed_ms r.steps r.instances (json_escape r.detail) (held r)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.printf
    "  ],\n\
    \  \"summary\": {\"total\": %d, \"complete\": %d, \"budget_exhausted\": \
     %d, \"errors\": %d, \"deadline_held\": %b}\n\
     }\n"
    (List.length rows) complete budget_exhausted errors deadline_held;
  if not deadline_held then begin
    prerr_endline "bench-smoke: a workload overshot its deadline";
    exit 1
  end;
  if errors > 0 then begin
    prerr_endline "bench-smoke: a workload raised a diagnostic";
    exit 1
  end
