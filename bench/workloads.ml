(* Synthetic workload generators for the benchmark suite.  Each generator
   scales one of the paper's mechanisms (overruling chains, inheritance
   depth, classical recursion under OV/EV, stable-model branching) to a
   size parameter; EXPERIMENTS.md maps them to experiment ids. *)

open Logic

let rule = Lang.Parser.parse_rule

(* ------------------------------------------------------------------ *)
(* Paper figures (fixed-size)                                          *)
(* ------------------------------------------------------------------ *)

let fig1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let fig2_src =
  {| component c3 { rich(mimmo). -poor(X) :- rich(X). }
     component c2 { poor(mimmo). -rich(X) :- poor(X). }
     component c1 extends c2, c3 { free_ticket(X) :- poor(X). } |}

let fig3_src facts =
  {| component c2 { take_loan :- inflation(X), X > 11. }
     component c4 { -take_loan :- loan_rate(X), X > 14. }
     component c3 extends c4 {
       take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
     }
     component c1 extends c2, c3 { |}
  ^ facts ^ " }"

(* ------------------------------------------------------------------ *)
(* B1: propagation chain (single component)                            *)
(*     a0.  a1 :- a0.  ...  an :- a(n-1).                              *)
(*     plus one guarded contradictor per layer so that suppression     *)
(*     counting is actually exercised: each -a(i+1) :- a(i), off is    *)
(*     blocked once -off (stated in the component above) is derived,   *)
(*     releasing the layer.                                            *)
(* ------------------------------------------------------------------ *)

let chain n =
  let atom i = Literal.pos (Atom.prop (Printf.sprintf "a%d" i)) in
  let off = Literal.pos (Atom.prop "off") in
  let main =
    Rule.fact (atom 0)
    :: List.concat
         (List.init n (fun i ->
              [ Rule.make (atom (i + 1)) [ atom i ];
                Rule.make (Literal.neg (atom (i + 1))) [ atom i; off ]
              ]))
  in
  Ordered.Program.make_exn
    [ ("main", main); ("axioms", [ Rule.fact (Literal.neg off) ]) ]
    [ ("main", "axioms") ]

(* ------------------------------------------------------------------ *)
(* B1b: overruling tower — d components, each overruling its parent    *)
(* ------------------------------------------------------------------ *)

let tower d =
  let p = Atom.prop "p" in
  let comp i =
    let sign = i mod 2 = 0 in
    ( Printf.sprintf "c%d" i,
      [ Rule.fact (Literal.make sign p);
        Rule.fact (Literal.pos (Atom.prop (Printf.sprintf "local%d" i)))
      ] )
  in
  let comps = List.init d comp in
  let pairs =
    List.init (d - 1) (fun i ->
        (Printf.sprintf "c%d" (i + 1), Printf.sprintf "c%d" i))
  in
  (* c(d-1) < ... < c0: the most specific component decides p *)
  Ordered.Program.make_exn comps pairs

(* ------------------------------------------------------------------ *)
(* B2/B4: ancestor over a parent chain of n nodes                      *)
(* ------------------------------------------------------------------ *)

let ancestor_rules n =
  rule "anc(X, Y) :- parent(X, Y)."
  :: rule "anc(X, Y) :- parent(X, Z), anc(Z, Y)."
  :: List.init (n - 1) (fun i ->
         Rule.fact
           (Literal.pos
              (Atom.make "parent" [ Term.Int i; Term.Int (i + 1) ])))

(* ------------------------------------------------------------------ *)
(* B3: k independent even negative loops (2^k stable models)           *)
(* ------------------------------------------------------------------ *)

let even_loops k =
  List.concat
    (List.init k (fun i ->
         let p = Literal.pos (Atom.prop (Printf.sprintf "p%d" i)) in
         let q = Literal.pos (Atom.prop (Printf.sprintf "q%d" i)) in
         [ Rule.make p [ Literal.neg q ]; Rule.make q [ Literal.neg p ] ]))

(* ------------------------------------------------------------------ *)
(* B6: win/move game graph                                             *)
(* ------------------------------------------------------------------ *)

let win_move n =
  rule "win(X) :- move(X, Y), -win(Y)."
  :: List.concat
       (List.init n (fun i ->
            let move a b =
              Rule.fact
                (Literal.pos (Atom.make "move" [ Term.Int a; Term.Int b ]))
            in
            if i + 1 < n then
              if i mod 2 = 0 && i + 2 < n then [ move i (i + 1); move i (i + 2) ]
              else [ move i (i + 1) ]
            else []))

(* ------------------------------------------------------------------ *)
(* B5: knowledge-base inheritance chain of depth d                     *)
(* ------------------------------------------------------------------ *)

let kb_chain d =
  let comp i =
    let toggles =
      if i = 0 then [ rule "flag(X) :- item(X)." ]
      else if i mod 2 = 0 then [ rule "flag(X) :- item(X), relevant(X)." ]
      else [ rule "-flag(X) :- item(X)." ]
    in
    let local =
      [ Rule.fact
          (Literal.pos (Atom.make "stamp" [ Term.Int i ]))
      ]
    in
    (Printf.sprintf "v%d" i, toggles @ local)
  in
  let facts =
    [ rule "item(a)."; rule "item(b)."; rule "relevant(a)." ]
  in
  let comps =
    ("base", facts) :: List.init d comp
  in
  let pairs =
    ("v0", "base")
    :: List.init (d - 1) (fun i ->
           (Printf.sprintf "v%d" (i + 1), Printf.sprintf "v%d" i))
  in
  Ordered.Program.make_exn comps pairs

(* ------------------------------------------------------------------ *)
(* B7: k disconnected chain islands of length m each (queries against   *)
(*     one island should not pay for the others)                        *)
(* ------------------------------------------------------------------ *)

let islands k m =
  let atom i j = Literal.pos (Atom.prop (Printf.sprintf "i%d_a%d" i j)) in
  let rules =
    List.concat
      (List.init k (fun i ->
           Rule.fact (atom i 0)
           :: List.init m (fun j -> Rule.make (atom i (j + 1)) [ atom i j ])))
  in
  Ordered.Program.make_exn [ ("main", rules) ] []

let ground_at prog name =
  Ordered.Gop.ground prog (Ordered.Program.component_id_exn prog name)
