The replication benchmark boots a primary and a replica in process,
ships the log between them, and emits well-formed JSON (checked with
the bundled validator — no jq dependency):

  $ ../replica.exe --quick --out bench5.json
  wrote bench5.json
  $ ../json_check.exe bench5.json bench mode ship reads summary
  bench5.json: valid JSON
