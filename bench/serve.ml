(* Serving benchmark: the socket server end to end, in process.  Emits
   BENCH_PR3.json — requests per second and session-cache hit rate for
   the repeated-query workload, at one worker and at four (systhreads
   interleave rather than parallelise, so the worker axis measures
   dispatch overhead, not speedup).

   Flags: --quick (few requests; used by the cram well-formedness
   test), --smoke (boot, one round-trip, clean shutdown — the
   `make serve-smoke` deadline check), --out FILE (default
   BENCH_PR3.json). *)

module W = Server.Wire

let kb_src =
  "component top { fly(X) :- bird(X). bird(tweety). bird(penguin). \
   bird(sam). nests(X) :- bird(X), not -fly(X). } \
   component bot extends top { -fly(penguin). }"

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("serve: " ^ s); exit 1) fmt

let connect address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> die "connect: %s" e

let roundtrip c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> die "request %s: %s" line e

let expect_ok c line =
  let j = roundtrip c line in
  match W.member "status" j with
  | Some (W.String "ok") -> j
  | _ -> die "unexpected response to %s: %s" line (W.to_string j)

let with_daemon ~workers f =
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers;
        parallel = `Threads;
        queue = 256;
        caps = Server.Engine.default_caps;
        persist = None;
        replicate_on = None;
        sync = None
      }
  in
  let server = Thread.create (fun () -> Server.Daemon.serve d) () in
  let r = f (Server.Daemon.address d) in
  Server.Daemon.stop d;
  Thread.join server;
  r

(* The repeated-query mix one client sends: after the first computation
   every request is answerable from the session cache. *)
let mix =
  [| {|{"op":"models","obj":"bot","kind":"stable"}|};
     {|{"op":"query","obj":"bot","lit":"fly(penguin)"}|};
     {|{"op":"models","obj":"bot","kind":"assumption-free"}|};
     {|{"op":"query","obj":"bot","lit":"nests(tweety)"}|}
  |]

type run = {
  workers : int;
  clients : int;
  requests : int;  (* total across clients *)
  elapsed_ns : int;
  rps : float;
  hits : int;
  misses : int;
  hit_rate : float;
}

let measure ~workers ~clients ~per_client =
  with_daemon ~workers @@ fun address ->
  let setup = connect address in
  ignore
    (expect_ok setup
       (W.to_string
          (W.Obj [ ("op", W.String "load"); ("src", W.String kb_src) ])));
  Server.Client.close setup;
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = connect address in
            for i = 0 to per_client - 1 do
              ignore (roundtrip c mix.((ci + i) mod Array.length mix))
            done;
            Server.Client.close c)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let c = connect address in
  let stats = expect_ok c {|{"op":"stats"}|} in
  Server.Client.close c;
  let counter name =
    match Option.bind (W.member "cache" stats) (W.member name) with
    | Some (W.Int n) -> n
    | _ -> die "stats response lacks cache.%s" name
  in
  let hits = counter "hits" and misses = counter "misses" in
  let requests = clients * per_client in
  { workers;
    clients;
    requests;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    rps = float_of_int requests /. elapsed;
    hits;
    misses;
    hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses))
  }

let smoke () =
  with_daemon ~workers:1 @@ fun address ->
  let c = connect address in
  ignore
    (expect_ok c
       (W.to_string
          (W.Obj [ ("op", W.String "load"); ("src", W.String kb_src) ])));
  let j = expect_ok c {|{"op":"query","obj":"bot","lit":"fly(tweety)"}|} in
  (match W.member "value" j with
  | Some (W.String "true") -> ()
  | _ -> die "bad query answer: %s" (W.to_string j));
  ignore (expect_ok c {|{"op":"shutdown"}|});
  Server.Client.close c;
  print_endline "serve smoke: boot, round-trip, drain ok"

let () =
  let quick = ref false in
  let smoke_mode = ref false in
  let out = ref "BENCH_PR3.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--smoke" :: rest ->
      smoke_mode := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "serve: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke_mode then smoke ()
  else begin
    let per_client = if !quick then 25 else 250 in
    let runs =
      [ measure ~workers:1 ~clients:4 ~per_client;
        measure ~workers:4 ~clients:4 ~per_client
      ]
    in
    let oc = open_out !out in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n  \"bench\": \"PR3 serving\",\n  \"mode\": \"%s\",\n"
      (if !quick then "quick" else "full");
    p "  \"runs\": [\n";
    List.iteri
      (fun i r ->
        p
          "    {\"workers\": %d, \"clients\": %d, \"requests\": %d, \
           \"elapsed_ns\": %d, \"requests_per_sec\": %.1f, \"cache_hits\": \
           %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f}%s\n"
          r.workers r.clients r.requests r.elapsed_ns r.rps r.hits r.misses
          r.hit_rate
          (if i = List.length runs - 1 then "" else ","))
      runs;
    let best = List.fold_left (fun acc r -> max acc r.rps) 0. runs in
    let hit_rate = (List.hd runs).hit_rate in
    p
      "  ],\n\
      \  \"summary\": {\"best_requests_per_sec\": %.1f, \
       \"cache_hit_rate\": %.4f}\n\
       }\n"
      best hit_rate;
    close_out oc;
    Printf.printf "wrote %s\n" !out
  end
