The serving benchmark boots a real daemon and emits well-formed JSON
(checked with the bundled validator — no jq dependency):

  $ ../serve.exe --quick --out bench3.json
  wrote bench3.json
  $ ../json_check.exe bench3.json bench mode runs summary
  bench3.json: valid JSON

The smoke mode is the boot / one round-trip / clean drain check that
`make serve-smoke` runs under a deadline:

  $ ../serve.exe --smoke
  serve smoke: boot, round-trip, drain ok
