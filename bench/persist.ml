(* Persistence benchmark: what durability costs on the write path and
   what recovery costs at boot.  Emits BENCH_PR4.json — mutations per
   second for the same apply loop in memory, write-ahead-logged without
   fsync, write-ahead-logged with fsync, and fsynced through the group
   committer with concurrent writers sharing the flushes (the overhead
   columns are the ratios against in-memory), plus recovery wall-clock
   against log length, with and without a snapshot bounding the
   replay.

   Flags: --quick (small counts; used by the cram well-formedness
   test), --out FILE (default BENCH_PR4.json). *)

module P = Persist
module Store = Kb.Store

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("persist: " ^ s); exit 1) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "olp-bench-persist-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

(* one Define up front, then distinct fact appends: the steady-state
   shape of a long-lived KB session *)
let define =
  Store.Define
    { name = "facts";
      isa = [];
      rules = [ Lang.Parser.parse_rule "q(X) :- p(X)." ]
    }

let mutation i =
  Store.Add_rule
    { obj = "facts"; rule = Lang.Parser.parse_rule (Printf.sprintf "p(%d)." i) }

type write_run = {
  mode : string;
  mutations : int;
  elapsed_ns : int;
  per_sec : float;
  overhead : float;  (* vs the in-memory run; 1.0 for in-memory itself *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let write_memory n =
  let store = Store.create () in
  Store.apply store define;
  time (fun () ->
      for i = 1 to n do
        Store.apply store (mutation i)
      done)

let write_wal ~fsync n =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir { P.dir; fsync; snapshot_every = 0; group_commit_ms = 0 } in
  let m0 = define in
  Store.apply store m0;
  P.append p m0;
  let elapsed =
    time (fun () ->
        for i = 1 to n do
          let m = mutation i in
          Store.apply store m;
          P.append p m
        done)
  in
  if P.seq p <> n + 1 then die "wal run logged %d of %d" (P.seq p) (n + 1);
  P.close p;
  rm_rf dir;
  elapsed

(* the group-commit shape: [threads] writers each appending and then
   waiting for durability, sharing fsyncs through the committer thread.
   Store/append stay serialized under a mutex (the engine lock's role);
   only the durability waits overlap. *)
let write_group ~threads n =
  let dir = fresh_dir () in
  let p, store, _ =
    P.open_dir { P.dir; fsync = true; snapshot_every = 0; group_commit_ms = 2 }
  in
  let lock = Mutex.create () in
  let m0 = define in
  Store.apply store m0;
  P.append p m0;
  P.wait_durable p;
  let per_thread = n / threads in
  let writer t () =
    for i = 1 to per_thread do
      let m = mutation ((t * per_thread) + i) in
      Mutex.lock lock;
      Store.apply store m;
      P.append p m;
      Mutex.unlock lock;
      P.wait_durable p
    done
  in
  let elapsed =
    time (fun () ->
        let ts = List.init threads (fun t -> Thread.create (writer t) ()) in
        List.iter Thread.join ts)
  in
  if P.seq p <> (threads * per_thread) + 1 then
    die "group run logged %d of %d" (P.seq p) ((threads * per_thread) + 1);
  P.close p;
  rm_rf dir;
  (threads * per_thread, elapsed)

let write_run ~mode ~baseline n elapsed =
  { mode;
    mutations = n;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    per_sec = float_of_int n /. elapsed;
    overhead = elapsed /. float_of_int n /. baseline
  }

type recovery_run = {
  records : int;  (* replayed at boot *)
  snapshotted : bool;
  elapsed_ns : int;
  per_sec : float;
}

(* build a directory holding [n] logged mutations (after an optional
   snapshot covering all of them plus [tail] more records), then time a
   cold open_dir *)
let recovery ~snapshotted n =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 } in
  let log m =
    Store.apply store m;
    P.append p m
  in
  log define;
  for i = 1 to n - 1 do
    log (mutation i)
  done;
  if snapshotted then begin
    ignore (P.snapshot p : int);
    (* the replay cost measured is the [n]-record tail after the
       snapshot, not the snapshot decode *)
    for i = n to (2 * n) - 1 do
      log (mutation i)
    done
  end;
  P.close p;
  let replayed = ref 0 in
  let elapsed =
    time (fun () ->
        let p, _, r = P.open_dir { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 } in
        replayed := r.P.replayed;
        P.close p)
  in
  rm_rf dir;
  if !replayed <> n then die "recovery replayed %d of %d" !replayed n;
  { records = n;
    snapshotted;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    per_sec = float_of_int n /. elapsed
  }

let () =
  let quick = ref false in
  let out = ref "BENCH_PR4.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "persist: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n = if !quick then 200 else 5000 in
  let n_fsync = if !quick then 50 else 500 in
  let mem = write_memory n in
  let baseline = mem /. float_of_int n in
  let group_n, group_elapsed = write_group ~threads:16 (4 * n_fsync) in
  let writes =
    [ write_run ~mode:"in-memory" ~baseline n mem;
      write_run ~mode:"wal" ~baseline n (write_wal ~fsync:false n);
      write_run ~mode:"wal+fsync" ~baseline n_fsync
        (write_wal ~fsync:true n_fsync);
      write_run ~mode:"wal+group-commit" ~baseline group_n group_elapsed
    ]
  in
  let recoveries =
    [ recovery ~snapshotted:false (n / 4);
      recovery ~snapshotted:false n;
      recovery ~snapshotted:true (n / 4)
    ]
  in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR4 persistence\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"write\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"mode\": \"%s\", \"mutations\": %d, \"elapsed_ns\": %d, \
         \"mutations_per_sec\": %.1f, \"overhead_vs_memory\": %.2f}%s\n"
        r.mode r.mutations r.elapsed_ns r.per_sec r.overhead
        (if i = List.length writes - 1 then "" else ","))
    writes;
  p "  ],\n  \"recovery\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"replayed\": %d, \"snapshotted\": %b, \"elapsed_ns\": %d, \
         \"records_per_sec\": %.1f}%s\n"
        r.records r.snapshotted r.elapsed_ns r.per_sec
        (if i = List.length recoveries - 1 then "" else ","))
    recoveries;
  let find m = List.find (fun r -> r.mode = m) writes in
  let replay_best =
    List.fold_left (fun acc r -> max acc r.per_sec) 0. recoveries
  in
  p
    "  ],\n\
    \  \"summary\": {\"wal_overhead\": %.2f, \"fsync_overhead\": %.2f, \
     \"group_commit_overhead\": %.2f, \"group_commit_speedup\": %.2f, \
     \"replay_records_per_sec\": %.1f}\n\
     }\n"
    (find "wal").overhead (find "wal+fsync").overhead
    (find "wal+group-commit").overhead
    ((find "wal+fsync").overhead /. (find "wal+group-commit").overhead)
    replay_best;
  close_out oc;
  Printf.printf "wrote %s\n" !out
