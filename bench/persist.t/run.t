The persistence benchmark measures WAL overhead on the write path and
recovery replay speed, and emits well-formed JSON (checked with the
bundled validator — no jq dependency):

  $ ../persist.exe --quick --out bench4.json
  wrote bench4.json
  $ ../json_check.exe bench4.json bench mode write recovery summary
  bench4.json: valid JSON
