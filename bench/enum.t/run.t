The enumeration benchmark emits well-formed JSON with the trajectory's
sections (checked with the bundled validator — no jq dependency):

  $ ../enum.exe --quick --out bench.json
  wrote bench.json
  $ ../json_check.exe bench.json bench mode workloads ratios summary
  bench.json: valid JSON

A missing key or mangled document is rejected:

  $ ../json_check.exe bench.json no_such_key
  bench.json: missing top-level key(s): no_such_key
  [1]
  $ echo '{"oops": ' > broken.json && ../json_check.exe broken.json
  broken.json: invalid JSON at offset 10: unexpected end of input
  [1]

The node-ratio regression guard: a reachable floor passes, an absurd
one fails with a diagnostic (the real floor lives in the Makefile's
bench target):

  $ ../enum.exe --quick --out bench.json --min-ratio 1.0
  wrote bench.json
  node ratio 13.8 >= 1.0: ok
  $ ../enum.exe --quick --out bench.json --min-ratio 1000000
  wrote bench.json
  enum: node ratio regression on even-loops-3/af: 13.8 < required 1000000.0
  [1]

The absolute wall-clock ceiling: a generous ceiling passes (the
measured median varies, so the digits are normalised away), and the
flag rejects a non-positive ceiling:

  $ ../enum.exe --quick --out bench.json --max-wall-ms 60000 | sed 's/median [0-9]* ms/median N ms/'
  wrote bench.json
  pruned median N ms <= 60000 ms: ok
  $ ../enum.exe --max-wall-ms 0
  enum: --max-wall-ms expects a positive integer, got 0
  [2]
