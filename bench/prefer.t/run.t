The preference benchmark emits well-formed JSON with the trajectory's
sections (checked with the bundled validator — no jq dependency):

  $ ../prefer.exe --quick --out bench.json
  wrote bench.json
  $ ../json_check.exe bench.json bench mode workloads ratios summary
  bench.json: valid JSON

A missing key is rejected:

  $ ../json_check.exe bench.json no_such_key
  bench.json: missing top-level key(s): no_such_key
  [1]

The compiled-vs-naive node-ratio regression guard: a reachable floor
passes (the counters are deterministic, so the quick ratio is exact),
an absurd one fails with a diagnostic (the real floor lives in the
Makefile's bench-prefer target):

  $ ../prefer.exe --quick --out bench.json --min-ratio 1.0
  wrote bench.json
  node ratio 9.0 >= 1.0: ok
  $ ../prefer.exe --quick --out bench.json --min-ratio 1000000
  wrote bench.json
  prefer: node ratio regression on prioritized-defaults-3: 9.0 < required 1000000.0
  [1]

--search compiled runs the flat-array kernel on the compiled
preference program: fewer search nodes against the same oracle, so
the ratio only improves (the counters are deterministic):

  $ ../prefer.exe --quick --out bench.json --search compiled --min-ratio 9.0
  wrote bench.json
  node ratio 11.3 >= 9.0: ok
  $ ../json_check.exe bench.json bench mode search workloads ratios summary
  bench.json: valid JSON

Flags are validated:

  $ ../prefer.exe --min-ratio nope
  prefer: --min-ratio expects a number, got nope
  [2]
  $ ../prefer.exe --search fastest
  prefer: --search expects pruned or compiled, got fastest
  [2]
