The preference benchmark emits well-formed JSON with the trajectory's
sections (checked with the bundled validator — no jq dependency):

  $ ../prefer.exe --quick --out bench.json
  wrote bench.json
  $ ../json_check.exe bench.json bench mode workloads ratios summary
  bench.json: valid JSON

A missing key is rejected:

  $ ../json_check.exe bench.json no_such_key
  bench.json: missing top-level key(s): no_such_key
  [1]

The compiled-vs-naive node-ratio regression guard: a reachable floor
passes (the counters are deterministic, so the quick ratio is exact),
an absurd one fails with a diagnostic (the real floor lives in the
Makefile's bench-prefer target):

  $ ../prefer.exe --quick --out bench.json --min-ratio 1.0
  wrote bench.json
  node ratio 9.0 >= 1.0: ok
  $ ../prefer.exe --quick --out bench.json --min-ratio 1000000
  wrote bench.json
  prefer: node ratio regression on prioritized-defaults-3: 9.0 < required 1000000.0
  [1]

Flags are validated:

  $ ../prefer.exe --min-ratio nope
  prefer: --min-ratio expects a number, got nope
  [2]
