(* Benchmark harness.

   Part 1 regenerates, qualitatively, every figure of the paper (the paper
   reports no timings, so the "rows" of each figure are the inferences it
   claims; EXPERIMENTS.md records paper-vs-measured for each).

   Part 2 times the algorithms on scaled synthetic workloads (experiments
   B1-B9 in DESIGN.md): the two V-fixpoint engines, OV vs EV, naive vs
   relevance-driven grounding, classical vs ordered stable enumeration,
   well-founded vs ordered fixpoints, knowledge-base inheritance depth,
   goal-directed proof vs materialisation, incremental maintenance vs
   recomputation, and magic sets vs full bottom-up evaluation. *)

open Bechamel
open Toolkit
module W = Workloads

let lit = Lang.Parser.parse_literal

(* ------------------------------------------------------------------ *)
(* Part 1: qualitative regeneration of the paper's figures             *)
(* ------------------------------------------------------------------ *)

let show_value prog comp q =
  let g = W.ground_at prog comp in
  let m = Ordered.Vfix.least_model g in
  Format.printf "  %-28s %a@." q Logic.Interp.pp_value
    (Logic.Interp.value_lit m (lit q))

let regenerate_figures () =
  Format.printf "== Figure 1 (P1, overruling): view from c1 ==@.";
  let p1 = Ordered.Program.parse_exn W.fig1_src in
  List.iter
    (show_value p1 "c1")
    [ "fly(pigeon)"; "fly(penguin)"; "ground_animal(penguin)";
      "ground_animal(pigeon)"
    ];
  Format.printf "== Figure 2 (P2, defeating): view from c1 ==@.";
  let p2 = Ordered.Program.parse_exn W.fig2_src in
  List.iter
    (show_value p2 "c1")
    [ "rich(mimmo)"; "poor(mimmo)"; "free_ticket(mimmo)" ];
  Format.printf "== Figure 3 (loan program): take_loan per scenario ==@.";
  List.iter
    (fun (label, facts) ->
      let p = Ordered.Program.parse_exn (W.fig3_src facts) in
      Format.printf " scenario %s:@." label;
      show_value p "c1" "take_loan")
    [ ("1: inflation(12)", "inflation(12).");
      ("2: inflation(12), loan_rate(16)", "inflation(12). loan_rate(16).");
      ("3: inflation(19), loan_rate(16)", "inflation(19). loan_rate(16).")
    ];
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 2: timed experiments                                           *)
(* ------------------------------------------------------------------ *)

let vfix_engine ?viewpoint ~engine prog =
  let comp =
    match viewpoint with
    | Some name -> name
    | None -> Ordered.Program.component_name prog 0
  in
  let g = W.ground_at prog comp in
  Staged.stage (fun () -> ignore (Ordered.Vfix.least_model ~engine g))

(* B1: incremental vs naive V over suppression chains. *)
let bench_vfix =
  let sizes = [ 50; 200; 800 ] in
  Test.make_grouped ~name:"vfix"
    [ Test.make_indexed ~name:"incremental" ~args:sizes (fun n ->
          vfix_engine ~engine:`Incremental (W.chain n));
      Test.make_indexed ~name:"naive" ~args:sizes (fun n ->
          vfix_engine ~engine:`Naive (W.chain n))
    ]

(* B1b: overruling towers (inheritance depth of the core engine). *)
let bench_tower =
  Test.make_indexed ~name:"vfix/tower" ~args:[ 8; 32; 128 ] (fun d ->
      (* view from the most specific component, which sees all d layers *)
      vfix_engine ~viewpoint:(Printf.sprintf "c%d" (d - 1))
        ~engine:`Incremental (W.tower d))

(* B2: OV vs EV end-to-end (ground + solve) on ancestor chains. *)
let bench_ov_ev =
  let sizes = [ 8; 16; 32 ] in
  let solve build n =
    Staged.stage (fun () ->
        let g = build (W.ancestor_rules n) in
        ignore (Ordered.Vfix.least_model g))
  in
  Test.make_grouped ~name:"ov_ev"
    [ Test.make_indexed ~name:"ov" ~args:sizes
        (solve (fun rs -> Ordered.Bridge.ground_ov ~grounder:`Relevant rs));
      Test.make_indexed ~name:"ev" ~args:sizes
        (solve (fun rs -> Ordered.Bridge.ground_ev ~grounder:`Relevant rs))
    ]

(* B4: naive vs relevance-driven grounding on ancestor chains. *)
let bench_grounding =
  let sizes = [ 8; 16; 32 ] in
  Test.make_grouped ~name:"ground"
    [ Test.make_indexed ~name:"naive" ~args:sizes (fun n ->
          let rs = W.ancestor_rules n in
          Staged.stage (fun () -> ignore (Ground.Grounder.naive rs)));
      Test.make_indexed ~name:"relevant" ~args:sizes (fun n ->
          let rs = W.ancestor_rules n in
          Staged.stage (fun () -> ignore (Ground.Grounder.relevant rs)))
    ]

(* B3: stable-model enumeration — classical GL solver vs the ordered
   enumeration over OV(C) — on k independent even loops (2^k models). *)
let bench_stable =
  let sizes = [ 1; 2 ] in
  Test.make_grouped ~name:"stable"
    [ Test.make_indexed ~name:"datalog_gl" ~args:(sizes @ [ 6 ]) (fun k ->
          let np = Datalog.Nprog.of_rules (W.even_loops k) in
          Staged.stage (fun () -> ignore (Datalog.Stable.enumerate np)));
      Test.make_indexed ~name:"ordered_ov" ~args:sizes (fun k ->
          let g = Ordered.Bridge.ground_ov (W.even_loops k) in
          Staged.stage (fun () -> ignore (Ordered.Stable.stable_models g)))
    ]

(* B6: well-founded alternating fixpoint vs ordered V on win/move. *)
let bench_wfs =
  let sizes = [ 32; 128; 512 ] in
  Test.make_grouped ~name:"wfs"
    [ Test.make_indexed ~name:"alternating" ~args:sizes (fun n ->
          let np =
            Datalog.Nprog.of_rules
              (Ground.Grounder.relevant ~naf:true (W.win_move n))
                .Ground.Grounder.rules
          in
          Staged.stage (fun () -> ignore (Datalog.Wellfounded.compute np)));
      Test.make_indexed ~name:"ordered_v" ~args:sizes (fun n ->
          let g =
            Ordered.Bridge.ground_ov ~grounder:`Relevant (W.win_move n)
          in
          Staged.stage (fun () -> ignore (Ordered.Vfix.lfp g)))
    ]

(* B7: goal-directed proof vs full materialisation on k disconnected
   islands — the relevance closure touches one island only. *)
let bench_prove =
  let args = [ 4; 16; 64 ] in
  let goal = lit "i0_a9" in
  Test.make_grouped ~name:"prove"
    [ Test.make_indexed ~name:"goal_directed" ~args (fun k ->
          let g = W.ground_at (W.islands k 10) "main" in
          Staged.stage (fun () -> ignore (Ordered.Prove.holds g goal)));
      Test.make_indexed ~name:"materialise" ~args (fun k ->
          let g = W.ground_at (W.islands k 10) "main" in
          Staged.stage (fun () ->
              ignore
                (Logic.Interp.holds (Ordered.Vfix.least_model g) goal)))
    ]

(* B8: incremental maintenance (DRed) vs from-scratch recomputation when
   one edge of an n-node transitive closure flips. *)
let bench_incremental =
  let args = [ 16; 48 ] in
  let setup n =
    let consts = List.init n (fun i -> Logic.Term.Int i) in
    let ground =
      (Ground.Grounder.naive ~extra_constants:consts
         (Lang.Parser.parse_rules
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."))
        .Ground.Grounder.rules
    in
    let t = Datalog.Incremental.create ground in
    for i = 0 to n - 2 do
      Datalog.Incremental.add t
        (Logic.Atom.make "e" [ Logic.Term.Int i; Logic.Term.Int (i + 1) ])
    done;
    t
  in
  let mid_edge n =
    Logic.Atom.make "e" [ Logic.Term.Int (n / 2); Logic.Term.Int ((n / 2) + 1) ]
  in
  Test.make_grouped ~name:"incremental"
    [ Test.make_indexed ~name:"dred_flip" ~args (fun n ->
          let t = setup n in
          let e = mid_edge n in
          Staged.stage (fun () ->
              Datalog.Incremental.remove t e;
              Datalog.Incremental.add t e));
      Test.make_indexed ~name:"recompute_flip" ~args (fun n ->
          let t = setup n in
          Staged.stage (fun () -> ignore (Datalog.Incremental.recompute t)))
    ]

(* B10: delta repair vs rebuild at the ordered layer (lib/inc) — add one
   universe-preserving rule to an n-fact component and either repair the
   cached grounding + least model from the delta or reground and re-solve
   from scratch. *)
let bench_inc_repair =
  let args = [ 16; 64; 256; 1024 ] in
  (* The succ rule keeps O(n) ground instances out of the O(n^2)
     substitutions the builtin guards reject, so instantiation dominates
     the surviving program: rebuilding re-enumerates the square, repair
     re-interns only the survivors plus the one added rule. *)
  let program n =
    let b = Buffer.create (16 * n) in
    Buffer.add_string
      b "component c0 { succ(X, Y) :- v(X), v(Y), Y > X, X > Y - 2. ";
    for i = 0 to n - 1 do
      Buffer.add_string b (Printf.sprintf "v(%d). " i)
    done;
    Buffer.add_string b "}";
    Ordered.Program.parse_exn (Buffer.contents b)
  in
  let mutated p c =
    Ordered.Program.add_rules p c [ Lang.Parser.parse_rule "flag :- succ(0, 1)." ]
  in
  Test.make_grouped ~name:"inc"
    [ Test.make_indexed ~name:"repair_add" ~args (fun n ->
          let p = program n in
          let c = Ordered.Program.component_id_exn p "c0" in
          let state = Inc.Reground.ground p c in
          let previous = Ordered.Vfix.least_model state.Inc.Reground.gop in
          let p2 = mutated p c in
          Staged.stage (fun () ->
              match Inc.Reground.reground state ~program:p2 with
              | Ok (st, d) ->
                ignore
                  (Inc.Repair.least_model ~previous st.Inc.Reground.gop d)
              | Error _ -> failwith "repair_add fell back"));
      Test.make_indexed ~name:"rebuild_add" ~args (fun n ->
          let p = program n in
          let c = Ordered.Program.component_id_exn p "c0" in
          let p2 = mutated p c in
          Staged.stage (fun () ->
              ignore (Ordered.Vfix.least_model (Ordered.Gop.ground p2 c))))
    ]

(* B9: magic sets vs full bottom-up evaluation — transitive closure over
   an n-node chain, queried from a node near the end. *)
let bench_magic =
  let args = [ 16; 48 ] in
  let tc =
    Lang.Parser.parse_rules "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."
  in
  let prog n =
    tc
    @ List.init (n - 1) (fun i ->
          Logic.Rule.fact
            (Logic.Literal.pos
               (Logic.Atom.make "e" [ Logic.Term.Int i; Logic.Term.Int (i + 1) ])))
  in
  let query n =
    Logic.Atom.make "t" [ Logic.Term.Int (n - 4); Logic.Term.Var "Y" ]
  in
  Test.make_grouped ~name:"magic"
    [ Test.make_indexed ~name:"magic_sets" ~args (fun n ->
          let p = prog n and q = query n in
          Staged.stage (fun () -> ignore (Datalog.Magic.answers p ~query:q)));
      Test.make_indexed ~name:"full_bottom_up" ~args (fun n ->
          let p = prog n in
          Staged.stage (fun () ->
              let ground = (Ground.Grounder.relevant ~naf:true p).Ground.Grounder.rules in
              let np = Datalog.Nprog.of_rules ground in
              ignore (Datalog.Consequence.lfp np)))
    ]

(* B5: knowledge-base query vs inheritance depth (ground + solve). *)
let bench_kb =
  Test.make_indexed ~name:"kb/depth" ~args:[ 4; 16; 64 ] (fun d ->
      let prog = W.kb_chain d in
      let comp = Printf.sprintf "v%d" (d - 1) in
      Staged.stage (fun () ->
          let g = W.ground_at prog comp in
          ignore (Ordered.Vfix.least_model g)))

(* Paper figures, end-to-end (parse + ground + solve). *)
let bench_figures =
  let pipeline src comp =
    Staged.stage (fun () ->
        let p = Ordered.Program.parse_exn src in
        ignore (Ordered.Vfix.least_model (W.ground_at p comp)))
  in
  Test.make_grouped ~name:"figures"
    [ Test.make ~name:"fig1_penguin" (pipeline W.fig1_src "c1");
      Test.make ~name:"fig2_defeat" (pipeline W.fig2_src "c1");
      Test.make ~name:"fig3_loan_s1" (pipeline (W.fig3_src "inflation(12).") "c1");
      Test.make ~name:"fig3_loan_s2"
        (pipeline (W.fig3_src "inflation(12). loan_rate(16).") "c1");
      Test.make ~name:"fig3_loan_s3"
        (pipeline (W.fig3_src "inflation(19). loan_rate(16).") "c1")
    ]

let groups =
  [ ("figures", bench_figures); ("vfix", bench_vfix); ("tower", bench_tower);
    ("ov_ev", bench_ov_ev); ("ground", bench_grounding);
    ("stable", bench_stable); ("wfs", bench_wfs); ("kb", bench_kb);
    ("prove", bench_prove); ("incremental", bench_incremental);
    ("inc", bench_inc_repair); ("magic", bench_magic)
  ]

(* Optional argv filters: `bench/main.exe vfix prove` runs only those
   groups. *)
let selected_tests () =
  let wanted = List.tl (Array.to_list Sys.argv) in
  let chosen =
    if wanted = [] then List.map snd groups
    else
      List.filter_map
        (fun (name, t) -> if List.mem name wanted then Some t else None)
        groups
  in
  if chosen = [] then begin
    Printf.eprintf "no benchmark group matches; available: %s\n"
      (String.concat ", " (List.map fst groups));
    exit 2
  end;
  Test.make_grouped ~name:"olp" chosen

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (selected_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "== Timings (monotonic clock, OLS estimate per run) ==@.";
  Format.printf "  %-40s %14s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "  %-40s %14s@." name pretty)
    rows

let () =
  regenerate_figures ();
  run_benchmarks ()
