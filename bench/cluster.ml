(* Cluster benchmark: the failover PR's three numbers, measured over a
   real 1-primary / 2-replica chain (primary -> mid -> leaf, the mid
   node re-serving its own log) wired exactly as `olp serve` does.
   Emits BENCH_PR6.json —

   - commit: write latency/throughput over the socket, asynchronous
     (ack after local durability) versus synchronous (--sync-replicas 1:
     ack held until the replica confirmed durability);
   - chain_reads: the same read mix hammered against every node of the
     chain at once — the aggregate QPS a replica tree buys;
   - failover: the primary dies, the mid node is promoted, and a
     replica-set client seeded with all three addresses rides it out —
     time from the kill to the first successful write, and until the
     leaf has adopted the new epoch and caught up through the chain.

   Flags: --quick (small counts; used by the cram well-formedness
   test), --out FILE (default BENCH_PR6.json). *)

module W = Server.Wire
module P = Persist
module Store = Kb.Store
module Link = Replica.Link

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("cluster: " ^ s); exit 1) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "olp-bench-cluster-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* Topology: servers wired the way bin/olp.ml wires them               *)
(* ------------------------------------------------------------------ *)

type node = {
  daemon : Server.Daemon.t;
  thread : Thread.t;
  link : Link.t option;
  dir : string;
}

(* replicas poll tightly so the commit numbers measure the protocol,
   not the idle heartbeat interval *)
let poll_interval = 0.002

let spawn ?replica_of ?(replicate = true) ?sync dir =
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 4;
        parallel = `Threads;
        queue = 256;
        caps = Server.Engine.default_caps;
        persist =
          Some
            { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 };
        replicate_on =
          (if replicate then Some (`Tcp ("127.0.0.1", 0)) else None);
        sync
      }
  in
  let engine = Server.Daemon.engine d in
  let link =
    match replica_of with
    | None -> None
    | Some primary ->
      let persist = Option.get (Server.Daemon.persist_handle d) in
      let link =
        Link.create
          ~metrics:(Server.Engine.metrics engine)
          ~engine
          ~session:(Server.Engine.session engine)
          ~persist
          { (Link.default_config primary) with poll_interval }
      in
      Server.Engine.set_replication engine
        { Server.Engine.role = (fun () -> (Link.status link).Link.role);
          primary = (fun () -> Some (Link.status link).Link.primary);
          details = (fun () -> []);
          promote = (fun () -> Link.promote link)
        };
      Server.Daemon.on_drain d (fun () -> Link.stop link);
      Link.start link;
      Some link
  in
  let thread = Thread.create (fun () -> Server.Daemon.serve d) () in
  { daemon = d; thread; link; dir }

let shutdown n =
  Server.Daemon.stop n.daemon;
  Thread.join n.thread

let repl_addr n =
  match Server.Daemon.replication_address n.daemon with
  | Some a -> a
  | None -> die "node has no replication listener"

let seq_of n = P.seq (Option.get (Server.Daemon.persist_handle n.daemon))

let wait_for ~msg f =
  let deadline = Unix.gettimeofday () +. 60. in
  while not (f ()) do
    if Unix.gettimeofday () > deadline then die "timed out waiting for %s" msg;
    ignore (Unix.select [] [] [] 0.002)
  done

let connect address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> die "connect: %s" e

let roundtrip c line =
  let j =
    match Server.Client.request_line c line with
    | Ok j -> j
    | Error e -> die "request %s: %s" line e
  in
  (match W.member "status" j with
  | Some (W.String "ok") -> ()
  | _ -> die "request %s answered %s" line (W.to_string j));
  j

(* ------------------------------------------------------------------ *)
(* Measurements                                                        *)
(* ------------------------------------------------------------------ *)

type commit_run = {
  commit : string;  (* "async" | "sync-1" *)
  writes : int;
  elapsed_ns : int;
  writes_per_sec : float;
  mean_us : float;
  p99_us : float;
}

let mutation_line i =
  Printf.sprintf {|{"op":"add_rule","obj":"facts","rule":"p(%d)."}|} i

(* one primary + one tightly-polling replica; [writes] socket round
   trips, each individually timed *)
let commit_run ~commit ~sync ~writes =
  let pd = fresh_dir () and rd = fresh_dir () in
  let prim = spawn ?sync:(Option.map Fun.id sync) pd in
  let repl = spawn ~replica_of:(repl_addr prim) ~replicate:false rd in
  let c = connect (Server.Daemon.address prim.daemon) in
  ignore
    (roundtrip c
       {|{"op":"define","name":"facts","isa":[],"rules":"q(X) :- p(X)."}|});
  wait_for ~msg:"replica catch-up" (fun () -> seq_of repl >= 1);
  let lat = Array.make writes 0. in
  let elapsed =
    time (fun () ->
        for i = 0 to writes - 1 do
          lat.(i) <- time (fun () -> ignore (roundtrip c (mutation_line i)))
        done)
  in
  Server.Client.close c;
  shutdown repl;
  shutdown prim;
  rm_rf pd;
  rm_rf rd;
  Array.sort compare lat;
  let mean = Array.fold_left ( +. ) 0. lat /. float_of_int writes in
  { commit;
    writes;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    writes_per_sec = float_of_int writes /. elapsed;
    mean_us = mean *. 1e6;
    p99_us = lat.(min (writes - 1) (writes * 99 / 100)) *. 1e6
  }

type read_run = {
  target : string;
  clients : int;
  requests : int;
  qps : float;
}

let mix =
  [| {|{"op":"query","obj":"facts","lit":"q(1)"}|};
     {|{"op":"query","obj":"facts","lit":"p(1)"}|};
     {|{"op":"query","obj":"facts","lit":"q(2)"}|};
     {|{"op":"query","obj":"facts","lit":"p(0)"}|}
  |]

(* hammer every node at once: per-node QPS under contention sums to the
   aggregate a load balancer over the tree would see *)
let chain_reads ~clients ~per_client targets =
  let results =
    List.map (fun (target, addr) -> (target, addr, ref 0.)) targets
  in
  let elapsed =
    time (fun () ->
        let threads =
          List.concat_map
            (fun (_, addr, _) ->
              List.init clients (fun ci ->
                  Thread.create
                    (fun () ->
                      let c = connect addr in
                      for i = 0 to per_client - 1 do
                        ignore
                          (roundtrip c mix.((ci + i) mod Array.length mix))
                      done;
                      Server.Client.close c)
                    ()))
            results
        in
        List.iter Thread.join threads)
  in
  List.map
    (fun (target, _, _) ->
      { target;
        clients;
        requests = clients * per_client;
        qps = float_of_int (clients * per_client) /. elapsed
      })
    results

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = ref false in
  let out = ref "BENCH_PR6.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "cluster: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let writes = if !quick then 60 else 500 in
  let per_client = if !quick then 25 else 300 in
  let clients = 2 in

  (* 1. the price of synchronous commit, same workload either way *)
  let commits =
    [ commit_run ~commit:"async" ~sync:None ~writes;
      commit_run ~commit:"sync-1"
        ~sync:(Some { Server.Engine.replicas = 1; timeout_ms = 10_000 })
        ~writes
    ]
  in

  (* 2. the chain: primary -> mid (re-serving its log) -> leaf *)
  let pd = fresh_dir () and md = fresh_dir () and ld = fresh_dir () in
  let prim = spawn pd in
  let mid = spawn ~replica_of:(repl_addr prim) md in
  let leaf = spawn ~replica_of:(repl_addr mid) ~replicate:false ld in
  let c = connect (Server.Daemon.address prim.daemon) in
  ignore
    (roundtrip c
       {|{"op":"define","name":"facts","isa":[],"rules":"q(X) :- p(X)."}|});
  for i = 0 to 9 do
    ignore (roundtrip c (mutation_line i))
  done;
  Server.Client.close c;
  wait_for ~msg:"leaf catch-up" (fun () -> seq_of leaf >= 11);
  let reads =
    chain_reads ~clients ~per_client
      [ ("primary", Server.Daemon.address prim.daemon);
        ("mid", Server.Daemon.address mid.daemon);
        ("leaf", Server.Daemon.address leaf.daemon)
      ]
  in
  let aggregate_qps = List.fold_left (fun a r -> a +. r.qps) 0. reads in

  (* 3. failover: kill the primary, promote the mid node, and time a
     replica-set client's first successful write; then wait for the
     leaf to adopt the new epoch through the chain *)
  let rset =
    Server.Rset.create
      [ Server.Daemon.address prim.daemon;
        Server.Daemon.address mid.daemon;
        Server.Daemon.address leaf.daemon
      ]
  in
  (match
     Server.Rset.request_line ~retry:5. rset
       {|{"op":"add_rule","obj":"facts","rule":"before_failover."}|}
   with
  | Ok j when W.member "status" j = Some (W.String "ok") -> ()
  | Ok j -> die "pre-failover write answered %s" (W.to_string j)
  | Error e -> die "pre-failover write: %s" e);
  wait_for ~msg:"leaf sees the pre-failover write" (fun () ->
      seq_of leaf >= 12);
  let t0 = Unix.gettimeofday () in
  Server.Daemon.stop prim.daemon;
  (match Option.get mid.link |> Link.promote with
  | Ok _ -> ()
  | Error e -> die "promote: %s" e);
  let first_write =
    match
      Server.Rset.request_line ~retry:30. rset
        {|{"op":"add_rule","obj":"facts","rule":"after_failover."}|}
    with
    | Ok j when W.member "status" j = Some (W.String "ok") ->
      Unix.gettimeofday () -. t0
    | Ok j -> die "post-failover write answered %s" (W.to_string j)
    | Error e -> die "post-failover write: %s" e
  in
  wait_for ~msg:"leaf follows the promoted mid" (fun () ->
      seq_of leaf >= 13
      && (Link.status (Option.get leaf.link)).Link.epoch = 1);
  let chain_follow = Unix.gettimeofday () -. t0 in
  Server.Rset.close rset;
  Thread.join prim.thread;
  shutdown leaf;
  shutdown mid;
  List.iter rm_rf [ pd; md; ld ];

  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR6 cluster\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"commit\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"commit\": \"%s\", \"writes\": %d, \"elapsed_ns\": %d, \
         \"writes_per_sec\": %.1f, \"mean_us\": %.1f, \"p99_us\": %.1f}%s\n"
        r.commit r.writes r.elapsed_ns r.writes_per_sec r.mean_us r.p99_us
        (if i = List.length commits - 1 then "" else ","))
    commits;
  p "  ],\n  \"chain_reads\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"target\": \"%s\", \"clients\": %d, \"requests\": %d, \
         \"requests_per_sec\": %.1f}%s\n"
        r.target r.clients r.requests r.qps
        (if i = List.length reads - 1 then "" else ","))
    reads;
  let of_commit c = List.find (fun r -> r.commit = c) commits in
  let async = of_commit "async" and sync = of_commit "sync-1" in
  p
    "  ],\n\
    \  \"failover\": {\"first_write_ms\": %.1f, \"chain_follow_ms\": %.1f},\n"
    (first_write *. 1e3) (chain_follow *. 1e3);
  p
    "  \"summary\": {\"async_writes_per_sec\": %.1f, \
     \"sync_writes_per_sec\": %.1f, \"sync_over_async_mean_latency\": \
     %.2f, \"aggregate_read_qps\": %.1f, \"failover_first_write_ms\": \
     %.1f}\n\
     }\n"
    async.writes_per_sec sync.writes_per_sec
    (sync.mean_us /. async.mean_us)
    aggregate_qps (first_write *. 1e3);
  close_out oc;
  Printf.printf "wrote %s\n" !out
