(* Enumeration benchmark: the branch-and-propagate search against the
   naive leaf-check oracle, over the stable-enumeration workloads.  Emits
   BENCH_PR2.json — the first point of the performance trajectory (see
   docs/PERFORMANCE.md for how to read it).

   For every workload and both engines it reports the median wall time of
   several runs plus the (deterministic) search counters of one run; the
   "ratios" section divides naive search nodes by pruned search nodes per
   workload, and "summary.scaled" names the large workload whose ratio
   the trajectory tracks.

   Flags: --quick (small workloads and few repeats; used by the cram
   well-formedness test), --out FILE (default BENCH_PR2.json),
   --min-ratio R (exit 1 if the scaled workload's node ratio falls
   below R — the trajectory's regression guard; the PR 2 baseline for
   even-loops-6/af is 364.8), --max-wall-ms N (exit 1 if the scaled
   workload's pruned median wall time exceeds N milliseconds — an
   absolute ceiling beside the relative ratio floor, so the guard also
   catches a regression that slows both engines equally). *)

module B = Ordered.Budget
module C = Ordered.Counters
module W = Workloads

type kind = Af | Total

type spec = {
  w_name : string;
  kind : kind;
  runs : int;
  gop : Ordered.Gop.t Lazy.t;
}

let p5_src =
  "component c2 { a. b. c. } \
   component c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. }"

let p5 () =
  let p = Ordered.Program.parse_exn p5_src in
  Ordered.Gop.ground p (Ordered.Program.component_id_exn p "c1")

let spec name kind runs mk = { w_name = name; kind; runs; gop = lazy (mk ()) }

let full_specs =
  [ spec "p5/af" Af 25 p5;
    spec "even-loops-4/af" Af 15 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 4));
    spec "win-move-9/af" Af 5 (fun () ->
        Ordered.Bridge.ground_ov (W.win_move 9));
    (* the scaled stable-enumeration workload of the trajectory *)
    spec "even-loops-6/af" Af 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 6));
    spec "even-loops-4/total" Total 15 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 4))
  ]

let quick_specs =
  [ spec "p5/af" Af 5 p5;
    spec "even-loops-3/af" Af 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 3));
    spec "even-loops-3/total" Total 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 3))
  ]

(* name of the workload whose node ratio the trajectory tracks *)
let scaled_of quick = if quick then "even-loops-3/af" else "even-loops-6/af"

type row = {
  r_workload : string;
  r_engine : string;  (* pruned | naive *)
  r_runs : int;
  r_median_ns : int;
  r_stats : C.t;
  r_models : int;
}

let enumerate kind engine ?stats g =
  let result =
    match kind, engine with
    | Af, `Pruned -> Ordered.Stable.assumption_free_models ?stats g
    | Af, `Naive -> Ordered.Stable.Naive.assumption_free_models ?stats g
    | Total, `Pruned -> Ordered.Exhaustive.total_models ?stats g
    | Total, `Naive -> Ordered.Exhaustive.Naive.total_models ?stats g
  in
  List.length (B.value result)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let measure s engine =
  let g = Lazy.force s.gop in
  let stats = C.create () in
  let models = enumerate s.kind engine ~stats g in
  let sample () =
    let t0 = Unix.gettimeofday () in
    ignore (enumerate s.kind engine g : int);
    int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let samples = List.init s.runs (fun _ -> sample ()) in
  { r_workload = s.w_name;
    r_engine = (match engine with `Pruned -> "pruned" | `Naive -> "naive");
    r_runs = s.runs;
    r_median_ns = median samples;
    r_stats = stats;
    r_models = models
  }

let () =
  let quick = ref false in
  let out = ref "BENCH_PR2.json" in
  let min_ratio = ref None in
  let max_wall_ms = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--min-ratio" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f -> min_ratio := Some f
      | None ->
        Printf.eprintf "enum: --min-ratio expects a number, got %s\n" r;
        exit 2);
      parse rest
    | "--max-wall-ms" :: r :: rest ->
      (match int_of_string_opt r with
      | Some n when n > 0 -> max_wall_ms := Some n
      | _ ->
        Printf.eprintf "enum: --max-wall-ms expects a positive integer, \
                        got %s\n" r;
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "enum: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let specs = if !quick then quick_specs else full_specs in
  let rows =
    List.concat_map (fun s -> [ measure s `Pruned; measure s `Naive ]) specs
  in
  let ratio s =
    let nodes engine =
      (List.find
         (fun r -> r.r_workload = s.w_name && r.r_engine = engine)
         rows)
        .r_stats
        .C.nodes
    in
    (s.w_name, nodes "naive", nodes "pruned")
  in
  let ratios = List.map ratio specs in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR2 enumeration\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"workload\": \"%s\", \"engine\": \"%s\", \"runs\": %d, \
         \"median_ns\": %d, \"models\": %d, \"nodes\": %d, \"leaves\": %d, \
         \"prunes\": %d, \"forced\": %d}%s\n"
        r.r_workload r.r_engine r.r_runs r.r_median_ns r.r_models
        r.r_stats.C.nodes r.r_stats.C.leaves r.r_stats.C.prunes
        r.r_stats.C.forced
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"ratios\": [\n";
  List.iteri
    (fun i (name, naive, pruned) ->
      p
        "    {\"workload\": \"%s\", \"naive_nodes\": %d, \"pruned_nodes\": \
         %d, \"node_ratio\": %.1f}%s\n"
        name naive pruned
        (float_of_int naive /. float_of_int (max 1 pruned))
        (if i = List.length ratios - 1 then "" else ","))
    ratios;
  let scaled = scaled_of !quick in
  let _, naive, pruned =
    List.find (fun (n, _, _) -> n = scaled) ratios
  in
  p
    "  ],\n\
    \  \"summary\": {\"scaled\": {\"workload\": \"%s\", \"naive_nodes\": %d, \
     \"pruned_nodes\": %d, \"node_ratio\": %.1f}}\n\
     }\n"
    scaled naive pruned
    (float_of_int naive /. float_of_int (max 1 pruned));
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  (match !min_ratio with
  | None -> ()
  | Some floor ->
    let got = float_of_int naive /. float_of_int (max 1 pruned) in
    if got < floor then begin
      Printf.eprintf
        "enum: node ratio regression on %s: %.1f < required %.1f\n" scaled
        got floor;
      exit 1
    end
    else Printf.printf "node ratio %.1f >= %.1f: ok\n" got floor);
  match !max_wall_ms with
  | None -> ()
  | Some ceiling ->
    let pruned_ms =
      (List.find
         (fun r -> r.r_workload = scaled && r.r_engine = "pruned")
         rows)
        .r_median_ns / 1_000_000
    in
    if pruned_ms > ceiling then begin
      Printf.eprintf
        "enum: wall-clock regression on %s: pruned median %d ms > allowed \
         %d ms\n"
        scaled pruned_ms ceiling;
      exit 1
    end
    else
      Printf.printf "pruned median %d ms <= %d ms: ok\n" pruned_ms ceiling
