The concurrent-serving benchmark boots real daemons (one and four
workers, a durable KB with a group-commit window) and emits well-formed
JSON covering both experiments (checked with the bundled validator —
no jq dependency).  A non-zero error count in the many-clients run
makes the binary itself exit non-zero, so this also asserts the
64-client crowd completed cleanly:

  $ ../concurrent.exe --quick --out bench7.json
  wrote bench7.json
  $ ../json_check.exe bench7.json bench mode runs many_clients summary
  bench7.json: valid JSON
