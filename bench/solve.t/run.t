The compiled-kernel benchmark emits well-formed JSON with the
trajectory's sections (checked with the bundled validator — no jq
dependency):

  $ ../solve_bench.exe --quick --out bench.json
  wrote bench.json
  $ ../json_check.exe bench.json bench mode workloads ratios summary
  bench.json: valid JSON

The wall-ratio regression guard: a reachable floor passes (the
measured ratio varies run to run, so the digits are normalised away),
an absurd one fails with a diagnostic (the real floor lives in the
Makefile's bench target):

  $ ../solve_bench.exe --quick --out bench.json --min-wall-ratio 0.01 | sed 's/ratio [0-9.]* >=/ratio R >=/'
  wrote bench.json
  wall ratio R >= 0.01: ok
  $ ../solve_bench.exe --quick --out bench.json --min-wall-ratio 1000000 2>&1 | sed 's/af: [0-9.]* </af: R </'
  wrote bench.json
  solve-bench: wall-ratio regression on even-loops-3/af: R < required 1000000.00
  $ ../solve_bench.exe --quick --out bench.json --min-wall-ratio 1000000 >/dev/null 2>&1
  [1]

The absolute wall-clock ceiling on the compiled median, and flag
validation:

  $ ../solve_bench.exe --quick --out bench.json --max-wall-ms 60000 | sed 's/median [0-9]* ms/median N ms/'
  wrote bench.json
  compiled median N ms <= 60000 ms: ok
  $ ../solve_bench.exe --max-wall-ms 0
  solve-bench: --max-wall-ms expects a positive integer, got 0
  [2]
