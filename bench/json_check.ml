(* Minimal JSON well-formedness checker for the benchmark artifacts (the
   toolchain has no JSON library baked in, and the cram tests must not
   depend on jq being installed).

   Usage: json_check FILE [KEY ...]

   Parses FILE as a single JSON document (RFC 8259 grammar, no
   extensions) and requires every KEY to be present at the top level
   (which must then be an object).  Prints "FILE: valid JSON" and exits 0
   on success; prints the parse error with its offset and exits 1
   otherwise. *)

exception Bad of int * string

let check s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then pos := !pos + String.length word
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
          Buffer.add_char buf c;
          advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let start = !pos in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  (* returns the member keys when the value is an object, [] otherwise *)
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); [])
      else begin
        let keys = ref [] in
        let member () =
          skip_ws ();
          let k = string_lit () in
          keys := k :: !keys;
          skip_ws ();
          expect ':';
          ignore (value () : string list)
        in
        member ();
        while (skip_ws (); peek () = Some ',') do
          advance ();
          member ()
        done;
        skip_ws ();
        expect '}';
        List.rev !keys
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); [])
      else begin
        ignore (value () : string list);
        while (skip_ws (); peek () = Some ',') do
          advance ();
          ignore (value () : string list)
        done;
        skip_ws ();
        expect ']';
        []
      end
    | Some '"' ->
      ignore (string_lit () : string);
      []
    | Some ('-' | '0' .. '9') ->
      number ();
      []
    | Some 't' -> literal "true"; []
    | Some 'f' -> literal "false"; []
    | Some 'n' -> literal "null"; []
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  let keys = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document";
  keys

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: wanted ->
    let ic = open_in_bin file in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match check s with
    | keys ->
      let missing = List.filter (fun k -> not (List.mem k keys)) wanted in
      if missing <> [] then begin
        Printf.eprintf "%s: missing top-level key(s): %s\n" file
          (String.concat ", " missing);
        exit 1
      end;
      Printf.printf "%s: valid JSON\n" file
    | exception Bad (pos, msg) ->
      Printf.eprintf "%s: invalid JSON at offset %d: %s\n" file pos msg;
      exit 1)
  | _ ->
    prerr_endline "usage: json_check FILE [KEY ...]";
    exit 2
