(* Compiled-kernel benchmark: the flat-array kernel (watched-literal
   propagation + conflict-driven nogood learning) against the pruned
   branch-and-propagate search it replaces on the hot path.  Emits
   BENCH_PR9.json (see docs/PERFORMANCE.md for how to read it).

   Both engines enumerate the same model lists in the same order, so the
   interesting numbers are wall time and visited nodes.  For every
   workload and both engines it reports the median wall time of several
   runs plus the (deterministic) search counters of one run; the
   "ratios" section divides pruned by compiled per workload — wall ratio
   (> 1 means the kernel is faster) and node ratio (>= 1 always: the
   kernel visits no more nodes, and strictly fewer where learned nogoods
   cut conflict-heavy subtrees).  "summary.scaled" names the large
   workload whose wall ratio the trajectory tracks.

   Flags: --quick (small workloads and few repeats; used by the cram
   well-formedness test), --out FILE (default BENCH_PR9.json),
   --min-wall-ratio R (exit 1 if the scaled workload's pruned/compiled
   median wall ratio falls below R — the trajectory's regression
   guard), --max-wall-ms N (exit 1 if the scaled workload's compiled
   median wall time exceeds N milliseconds — an absolute ceiling beside
   the relative floor). *)

module B = Ordered.Budget
module C = Ordered.Counters
module W = Workloads

type kind = Af | Total

type spec = {
  w_name : string;
  kind : kind;
  runs : int;
  gop : Ordered.Gop.t Lazy.t;
}

let p5_src =
  "component c2 { a. b. c. } \
   component c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. }"

let p5 () =
  let p = Ordered.Program.parse_exn p5_src in
  Ordered.Gop.ground p (Ordered.Program.component_id_exn p "c1")

let spec name kind runs mk = { w_name = name; kind; runs; gop = lazy (mk ()) }

let full_specs =
  [ spec "p5/af" Af 25 p5;
    spec "even-loops-4/af" Af 15 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 4));
    spec "win-move-9/af" Af 5 (fun () ->
        Ordered.Bridge.ground_ov (W.win_move 9));
    (* the scaled workload of the trajectory: conflict-heavy (every
       even/odd loop admits two total labelings whose interaction
       conflicts), so nogoods get to cut subtrees *)
    spec "even-loops-6/af" Af 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 6));
    spec "even-loops-4/total" Total 15 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 4))
  ]

let quick_specs =
  [ spec "p5/af" Af 5 p5;
    spec "even-loops-3/af" Af 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 3));
    spec "even-loops-3/total" Total 3 (fun () ->
        Ordered.Bridge.ground_ov (W.even_loops 3))
  ]

(* name of the workload whose wall ratio the trajectory tracks *)
let scaled_of quick = if quick then "even-loops-3/af" else "even-loops-6/af"

type row = {
  r_workload : string;
  r_engine : string;  (* pruned | compiled *)
  r_runs : int;
  r_median_ns : int;
  r_stats : C.t;
  r_models : int;
}

let enumerate kind engine ?stats g =
  let result =
    match kind, engine with
    | Af, `Pruned -> Ordered.Stable.assumption_free_models ?stats g
    | Af, `Compiled -> Solve.Kernel.assumption_free_models ?stats g
    | Total, `Pruned -> Ordered.Exhaustive.total_models ?stats g
    | Total, `Compiled -> Solve.Kernel.total_models ?stats g
  in
  List.length (B.value result)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let measure s engine =
  let g = Lazy.force s.gop in
  let stats = C.create () in
  let models = enumerate s.kind engine ~stats g in
  let sample () =
    let t0 = Unix.gettimeofday () in
    ignore (enumerate s.kind engine g : int);
    int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let samples = List.init s.runs (fun _ -> sample ()) in
  { r_workload = s.w_name;
    r_engine = (match engine with `Pruned -> "pruned" | `Compiled -> "compiled");
    r_runs = s.runs;
    r_median_ns = median samples;
    r_stats = stats;
    r_models = models
  }

let () =
  let quick = ref false in
  let out = ref "BENCH_PR9.json" in
  let min_wall_ratio = ref None in
  let max_wall_ms = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--min-wall-ratio" :: r :: rest ->
      (match float_of_string_opt r with
      | Some f -> min_wall_ratio := Some f
      | None ->
        Printf.eprintf "solve-bench: --min-wall-ratio expects a number, got %s\n" r;
        exit 2);
      parse rest
    | "--max-wall-ms" :: r :: rest ->
      (match int_of_string_opt r with
      | Some n when n > 0 -> max_wall_ms := Some n
      | _ ->
        Printf.eprintf "solve-bench: --max-wall-ms expects a positive integer, \
                        got %s\n" r;
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "solve-bench: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let specs = if !quick then quick_specs else full_specs in
  let rows =
    List.concat_map (fun s -> [ measure s `Pruned; measure s `Compiled ]) specs
  in
  let find w e =
    List.find (fun r -> r.r_workload = w && r.r_engine = e) rows
  in
  (* the kernel's contract: same model lists, never more nodes *)
  List.iter
    (fun s ->
      let p = find s.w_name "pruned" and c = find s.w_name "compiled" in
      if c.r_models <> p.r_models then begin
        Printf.eprintf "solve-bench: %s: compiled found %d models, pruned %d\n"
          s.w_name c.r_models p.r_models;
        exit 1
      end;
      if c.r_stats.C.nodes > p.r_stats.C.nodes then begin
        Printf.eprintf "solve-bench: %s: compiled visited %d nodes > pruned %d\n"
          s.w_name c.r_stats.C.nodes p.r_stats.C.nodes;
        exit 1
      end)
    specs;
  let ratio s =
    let p = find s.w_name "pruned" and c = find s.w_name "compiled" in
    ( s.w_name,
      p.r_median_ns,
      c.r_median_ns,
      p.r_stats.C.nodes,
      c.r_stats.C.nodes )
  in
  let ratios = List.map ratio specs in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR9 compiled kernel\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"workload\": \"%s\", \"engine\": \"%s\", \"runs\": %d, \
         \"median_ns\": %d, \"models\": %d, \"nodes\": %d, \"leaves\": %d, \
         \"prunes\": %d, \"forced\": %d, \"propagations\": %d, \
         \"conflicts\": %d, \"learned\": %d, \"evicted\": %d, \
         \"restarts\": %d}%s\n"
        r.r_workload r.r_engine r.r_runs r.r_median_ns r.r_models
        r.r_stats.C.nodes r.r_stats.C.leaves r.r_stats.C.prunes
        r.r_stats.C.forced r.r_stats.C.propagations r.r_stats.C.conflicts
        r.r_stats.C.learned r.r_stats.C.evicted r.r_stats.C.restarts
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"ratios\": [\n";
  List.iteri
    (fun i (name, pns, cns, pn, cn) ->
      p
        "    {\"workload\": \"%s\", \"pruned_median_ns\": %d, \
         \"compiled_median_ns\": %d, \"wall_ratio\": %.2f, \
         \"pruned_nodes\": %d, \"compiled_nodes\": %d, \
         \"node_ratio\": %.2f}%s\n"
        name pns cns
        (float_of_int pns /. float_of_int (max 1 cns))
        pn cn
        (float_of_int pn /. float_of_int (max 1 cn))
        (if i = List.length ratios - 1 then "" else ","))
    ratios;
  let scaled = scaled_of !quick in
  let _, pns, cns, pn, cn =
    List.find (fun (n, _, _, _, _) -> n = scaled) ratios
  in
  let wall_ratio = float_of_int pns /. float_of_int (max 1 cns) in
  p
    "  ],\n\
    \  \"summary\": {\"scaled\": {\"workload\": \"%s\", \
     \"pruned_median_ns\": %d, \"compiled_median_ns\": %d, \
     \"wall_ratio\": %.2f, \"pruned_nodes\": %d, \"compiled_nodes\": %d}}\n\
     }\n"
    scaled pns cns wall_ratio pn cn;
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  (match !min_wall_ratio with
  | None -> ()
  | Some floor ->
    if wall_ratio < floor then begin
      Printf.eprintf
        "solve-bench: wall-ratio regression on %s: %.2f < required %.2f\n" scaled
        wall_ratio floor;
      exit 1
    end
    else Printf.printf "wall ratio %.2f >= %.2f: ok\n" wall_ratio floor);
  match !max_wall_ms with
  | None -> ()
  | Some ceiling ->
    let compiled_ms = cns / 1_000_000 in
    if compiled_ms > ceiling then begin
      Printf.eprintf
        "solve-bench: wall-clock regression on %s: compiled median %d ms > \
         allowed %d ms\n"
        scaled compiled_ms ceiling;
      exit 1
    end
    else
      Printf.printf "compiled median %d ms <= %d ms: ok\n" compiled_ms ceiling
