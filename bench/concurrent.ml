(* Concurrent-serving benchmark: what the parallel rework buys under
   contention.  Emits BENCH_PR7.json with two experiments:

   - {b read scaling}: a mixed workload — reader clients hammering
     cached queries while writer clients append facts to a durable KB
     with a group-commit window.  Every write parks its worker in
     [wait_durable] for up to the window, so with one worker the reads
     queue behind stalled writes; with four, the lock-free reads flow
     around them.  The ratio of read throughput at 4 workers vs 1 is
     the headline number (the acceptance floor is 2.5x).
   - {b many clients}: 64 concurrent clients, each pushing batched
     frames of mixed reads and writes; the run must complete with zero
     error responses.

   Flags: --quick (small counts; used by the cram well-formedness
   test), --out FILE (default BENCH_PR7.json). *)

module W = Server.Wire

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("concurrent: " ^ s); exit 1) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "olp-bench-concurrent-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let connect address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> die "connect: %s" e

let roundtrip c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> die "request %s: %s" line e

let expect_ok c line =
  let j = roundtrip c line in
  match W.member "status" j with
  | Some (W.String "ok") -> j
  | _ -> die "unexpected response to %s: %s" line (W.to_string j)

let kb_src =
  "component kb { p(1). p(2). q(X) :- p(X). }"

let read_line_ = {|{"op":"query","obj":"kb","lit":"q(1)"}|}

let with_daemon ~workers ~persist f =
  let dir = if persist then Some (fresh_dir ()) else None in
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers;
        parallel = `Threads;
        queue = 256;
        caps = Server.Engine.default_caps;
        persist =
          Option.map
            (fun dir ->
              { Persist.dir; fsync = true; snapshot_every = 0;
                group_commit_ms = 5
              })
            dir;
        replicate_on = None;
        sync = None
      }
  in
  let server = Thread.create (fun () -> Server.Daemon.serve d) () in
  let r =
    Fun.protect
      ~finally:(fun () ->
        Server.Daemon.stop d;
        Thread.join server;
        Option.iter rm_rf dir)
      (fun () -> f (Server.Daemon.address d))
  in
  r

(* --------------------------------------------------------------- *)
(* Experiment 1: read throughput with writers stalling in the      *)
(* group-commit window                                             *)
(* --------------------------------------------------------------- *)

type scaling_run = {
  workers : int;
  readers : int;
  writers : int;
  reads : int;
  writes : int;
  elapsed_ns : int;
  read_qps : float;
}

let measure_mixed ~workers ~readers ~writers ~reads_per_reader =
  with_daemon ~workers ~persist:true @@ fun address ->
  let setup = connect address in
  ignore
    (expect_ok setup
       (W.to_string (W.Obj [ ("op", W.String "load"); ("src", W.String kb_src) ])));
  ignore (expect_ok setup read_line_) (* warm the cache *);
  Server.Client.close setup;
  (* connect everyone, then start the clock: on one core the connect
     and thread-spawn cost would otherwise dominate the timed window *)
  let gate = Mutex.create () and turn = Condition.create () in
  let ready = ref 0 and go = ref false in
  let barrier total =
    Mutex.lock gate;
    incr ready;
    if !ready = total then Condition.broadcast turn;
    while not !go do Condition.wait turn gate done;
    Mutex.unlock gate
  in
  let total_threads = readers + writers in
  let stop_writers = ref false in
  let writes_done = Array.make writers 0 in
  let writer_threads =
    List.init writers (fun wi ->
        Thread.create
          (fun () ->
            let c = connect address in
            barrier total_threads;
            let k = ref 0 in
            while not !stop_writers do
              incr k;
              ignore
                (expect_ok c
                   (Printf.sprintf
                      {|{"op":"add_rule","obj":"kb","rule":"w%d(%d)."}|} wi !k))
            done;
            writes_done.(wi) <- !k;
            Server.Client.close c)
          ())
  in
  let reader_threads =
    List.init readers (fun _ ->
        Thread.create
          (fun () ->
            let c = connect address in
            barrier total_threads;
            for _ = 1 to reads_per_reader do
              ignore (expect_ok c read_line_)
            done;
            Server.Client.close c)
          ())
  in
  Mutex.lock gate;
  while !ready < total_threads do Condition.wait turn gate done;
  let t0 = Unix.gettimeofday () in
  go := true;
  Condition.broadcast turn;
  Mutex.unlock gate;
  List.iter Thread.join reader_threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  stop_writers := true;
  List.iter Thread.join writer_threads;
  let reads = readers * reads_per_reader in
  { workers;
    readers;
    writers;
    reads;
    writes = Array.fold_left ( + ) 0 writes_done;
    elapsed_ns = int_of_float (elapsed *. 1e9);
    read_qps = float_of_int reads /. elapsed
  }

(* --------------------------------------------------------------- *)
(* Experiment 2: 64 clients, batched mixed frames, zero errors     *)
(* --------------------------------------------------------------- *)

type crowd_run = {
  clients : int;
  frames : int;
  requests : int;
  errors : int;
  crowd_elapsed_ns : int;
}

let batch_frame ~client ~frame ~per_batch =
  let items =
    List.init per_batch (fun i ->
        if i mod 8 = 7 then
          Printf.sprintf {|{"op":"add_rule","obj":"kb","rule":"c%d_%d(%d)."}|}
            client frame i
        else read_line_)
  in
  Printf.sprintf {|{"op":"batch","requests":[%s]}|} (String.concat "," items)

let measure_crowd ~clients ~frames_per_client ~per_batch =
  with_daemon ~workers:4 ~persist:false @@ fun address ->
  let setup = connect address in
  ignore
    (expect_ok setup
       (W.to_string (W.Obj [ ("op", W.String "load"); ("src", W.String kb_src) ])));
  Server.Client.close setup;
  let gate = Mutex.create () and turn = Condition.create () in
  let ready = ref 0 and go = ref false in
  let errors = Array.make clients 0 in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = connect address in
            Mutex.lock gate;
            incr ready;
            if !ready = clients then Condition.broadcast turn;
            while not !go do Condition.wait turn gate done;
            Mutex.unlock gate;
            for frame = 1 to frames_per_client do
              let envelope =
                expect_ok c (batch_frame ~client:ci ~frame ~per_batch)
              in
              match W.member "responses" envelope with
              | Some (W.List rs) ->
                List.iter
                  (fun r ->
                    match W.member "status" r with
                    | Some (W.String "ok") -> ()
                    | _ -> errors.(ci) <- errors.(ci) + 1)
                  rs
              | _ -> errors.(ci) <- errors.(ci) + per_batch
            done;
            Server.Client.close c)
          ())
  in
  Mutex.lock gate;
  while !ready < clients do Condition.wait turn gate done;
  let t0 = Unix.gettimeofday () in
  go := true;
  Condition.broadcast turn;
  Mutex.unlock gate;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  { clients;
    frames = clients * frames_per_client;
    requests = clients * frames_per_client * per_batch;
    errors = Array.fold_left ( + ) 0 errors;
    crowd_elapsed_ns = int_of_float (elapsed *. 1e9)
  }

(* --------------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_PR7.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "concurrent: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reads_per_reader = if !quick then 150 else 1500 in
  let runs =
    [ measure_mixed ~workers:1 ~readers:4 ~writers:2 ~reads_per_reader;
      measure_mixed ~workers:4 ~readers:4 ~writers:2 ~reads_per_reader
    ]
  in
  let crowd =
    if !quick then measure_crowd ~clients:16 ~frames_per_client:2 ~per_batch:16
    else measure_crowd ~clients:64 ~frames_per_client:4 ~per_batch:32
  in
  let qps workers =
    match List.find_opt (fun r -> r.workers = workers) runs with
    | Some r -> r.read_qps
    | None -> die "missing run for %d workers" workers
  in
  let scaling = qps 4 /. qps 1 in
  let oc = open_out !out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"PR7 concurrent serving\",\n  \"mode\": \"%s\",\n"
    (if !quick then "quick" else "full");
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"workers\": %d, \"readers\": %d, \"writers\": %d, \"reads\": \
         %d, \"writes\": %d, \"elapsed_ns\": %d, \"read_qps\": %.1f}%s\n"
        r.workers r.readers r.writers r.reads r.writes r.elapsed_ns r.read_qps
        (if i = List.length runs - 1 then "" else ","))
    runs;
  p "  ],\n";
  p
    "  \"many_clients\": {\"clients\": %d, \"frames\": %d, \"requests\": %d, \
     \"errors\": %d, \"elapsed_ns\": %d},\n"
    crowd.clients crowd.frames crowd.requests crowd.errors
    crowd.crowd_elapsed_ns;
  p
    "  \"summary\": {\"read_qps_1_worker\": %.1f, \"read_qps_4_workers\": \
     %.1f, \"read_scaling_4v1\": %.2f, \"many_clients_errors\": %d}\n}\n"
    (qps 1) (qps 4) scaling crowd.errors;
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  if crowd.errors > 0 then die "%d errors in the many-clients run" crowd.errors
