(* Unit tests for the surface syntax: lexer, parser, pretty-printer. *)

open Logic
open Helpers
module Token = Lang.Token

let check_rule = Alcotest.check testable_rule
let check_lit = Alcotest.check testable_literal
let check_term = Alcotest.check testable_term

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens src =
  List.map (fun (t : Token.located) -> t.token) (Lang.Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 11
    (List.length (tokens "p(X) :- q(X)."));
  Alcotest.(check bool) "ends with EOF" true
    (List.rev (tokens "p.") |> List.hd = Token.EOF)

let test_lexer_comments () =
  let t1 = tokens "p. % trailing comment\nq." in
  let t2 = tokens "p. // another\nq." in
  let t3 = tokens "p. /* block /* nested */ */ q." in
  let expected = tokens "p. q." in
  Alcotest.(check int) "percent" (List.length expected) (List.length t1);
  Alcotest.(check int) "slash-slash" (List.length expected) (List.length t2);
  Alcotest.(check int) "nested block" (List.length expected) (List.length t3)

let test_lexer_operators () =
  Alcotest.(check bool) "<= is one token" true
    (tokens "<=" = [ Token.LE; Token.EOF ]);
  Alcotest.(check bool) "<> is NEQ" true (tokens "<>" = [ Token.NEQ; Token.EOF ]);
  Alcotest.(check bool) "!= is NEQ" true (tokens "!=" = [ Token.NEQ; Token.EOF ]);
  Alcotest.(check bool) ">= then >" true
    (tokens ">= >" = [ Token.GE; Token.GT; Token.EOF ])

let test_lexer_idents () =
  Alcotest.(check bool) "lowercase is ident" true
    (tokens "foo_bar1" = [ Token.IDENT "foo_bar1"; Token.EOF ]);
  Alcotest.(check bool) "uppercase is var" true
    (tokens "Foo" = [ Token.VAR "Foo"; Token.EOF ]);
  Alcotest.(check bool) "underscore is var" true
    (tokens "_x" = [ Token.VAR "_x"; Token.EOF ]);
  Alcotest.(check bool) "keywords" true
    (tokens "component module object extends isa order prefer not neg mod"
    = Token.
        [ KW_COMPONENT; KW_COMPONENT; KW_COMPONENT; KW_EXTENDS; KW_EXTENDS;
          KW_ORDER; KW_PREFER; KW_NOT; KW_NOT; KW_MOD; EOF
        ])

let test_lexer_errors () =
  let check_raises src =
    match Lang.Lexer.tokenize src with
    | exception Lang.Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("lexer should reject " ^ src)
  in
  check_raises "p ? q";
  check_raises "! p";
  check_raises "/* unterminated";
  (* a bare ':' is the rule-name separator, not ':-' *)
  Alcotest.(check bool) "lone ':' is COLON" true
    (tokens "p :x" = [ Token.IDENT "p"; Token.COLON; Token.IDENT "x"; Token.EOF ])

let test_lexer_positions () =
  match Lang.Lexer.tokenize "p.\n  q." with
  | [ _; _; q; _; _ ] ->
    Alcotest.(check int) "line" 2 q.Token.pos.line;
    Alcotest.(check int) "col" 3 q.Token.pos.col
  | _ -> Alcotest.fail "unexpected token stream"

(* ------------------------------------------------------------------ *)
(* Terms and literals                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_term_precedence () =
  check_term "mul binds tighter" (term "1 + (2 * 3)") (term "1 + 2 * 3");
  check_term "left assoc minus"
    (Term.App ("-", [ Term.App ("-", [ Term.Int 1; Term.Int 2 ]); Term.Int 3 ]))
    (term "1 - 2 - 3");
  check_term "parens" (Term.App ("*", [ term "(1 + 2)"; Term.Int 3 ]))
    (term "(1 + 2) * 3")

let test_parse_unary_minus () =
  check_term "negative int" (Term.Int (-3)) (term "-3");
  check_term "unary minus on var" (Term.App ("-", [ Term.Var "X" ])) (term "-X")

let test_parse_function_terms () =
  check_term "nested" (Term.App ("f", [ Term.App ("g", [ Term.Sym "a" ]); Term.Var "X" ]))
    (term "f(g(a), X)")

let test_parse_literal_forms () =
  check_lit "plain" (Literal.pos (Atom.prop "p")) (lit "p");
  check_lit "minus negation" (Literal.neg_atom (Atom.prop "p")) (lit "-p");
  check_lit "tilde negation" (lit "-p(a)") (lit "~p(a)");
  check_lit "not keyword" (lit "-p(a)") (lit "not p(a)");
  check_lit "neg keyword" (lit "-p(a)") (lit "neg p(a)")

let test_parse_comparison_literal () =
  let l = lit "X > Y + 2" in
  Alcotest.(check string) "pred" ">" l.Literal.atom.Atom.pred;
  let l2 = lit "not X > 3" in
  Alcotest.(check bool) "negated comparison" true (Literal.is_negative l2)

let test_parse_rules () =
  let r = rule "p(X) :- q(X), -r(X), X > 2." in
  Alcotest.(check int) "body size" 3 (List.length (Rule.body r));
  Alcotest.(check bool) "fact" true (Rule.is_fact (rule "p(a)."));
  Alcotest.(check int) "parse_rules" 3
    (List.length (rules "p. q :- p. -r :- q."))

let test_parse_errors () =
  let reject src =
    match Lang.Parser.parse_file src with
    | exception Lang.Parser.Error _ -> ()
    | exception Lang.Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("parser should reject " ^ src)
  in
  reject "p :- .";
  reject "p";
  reject "p :- q";
  reject "3.";
  reject "X.";
  reject "component { p. }";
  reject "component c extends { p. }";
  reject "order a b.";
  reject "p. trailing(";
  reject "component c { p. "

let test_parse_component_file () =
  let ast =
    Lang.Parser.parse_file
      {| top_rule.
         component a { p. q :- p. }
         component b extends a { -p. }
         order b < a.
       |}
  in
  let comps = Lang.Ast.components ast in
  Alcotest.(check (list string)) "components (bare rules become main)"
    [ "main"; "a"; "b" ]
    (List.map (fun (c : Lang.Ast.component) -> c.name) comps);
  Alcotest.(check (list (pair string string)))
    "order pairs deduplicated" [ ("b", "a") ]
    (Lang.Ast.order_pairs ast)

let test_parse_multi_parent () =
  let ast = Lang.Parser.parse_file "component a {} component b {} component c extends a, b {}" in
  Alcotest.(check (list (pair string string)))
    "extends pairs" [ ("c", "a"); ("c", "b") ]
    (Lang.Ast.order_pairs ast)

let test_duplicate_component () =
  let ast = Lang.Parser.parse_file "component a { p. } component a { q. }" in
  match Lang.Ast.components ast with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate components should be rejected"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)
(* ------------------------------------------------------------------ *)

let test_rule_roundtrip () =
  List.iter
    (fun src ->
      let r = rule src in
      check_rule src r (rule (Rule.to_string r)))
    [ "p(X) :- q(X, f(Y)), -r(X), X > Y + 2.";
      "take_loan :- inflation(X), loan_rate(Y), X > Y + 2.";
      "-fly(X) :- ground_animal(X).";
      "p(a).";
      "p(1 + 2 * 3) :- q((1 + 2) * 3)."
    ]

let test_program_roundtrip () =
  let src =
    {| component c2 { bird(penguin). fly(X) :- bird(X). }
       component c1 extends c2 { -fly(X) :- ground_animal(X). } |}
  in
  let p = program src in
  let printed = Format.asprintf "%a" Ordered.Program.pp p in
  let p' = program printed in
  Alcotest.(check (list string)) "component names survive"
    (Array.to_list (Ordered.Program.component_names p))
    (Array.to_list (Ordered.Program.component_names p'));
  Alcotest.(check bool) "order survives" true
    (Ordered.Poset.lt (Ordered.Program.poset p')
       (Ordered.Program.component_id_exn p' "c1")
       (Ordered.Program.component_id_exn p' "c2"));
  List.iter2
    (fun r r' -> check_rule "rules survive" r r')
    (Ordered.Program.all_rules p)
    (Ordered.Program.all_rules p')

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer identifiers and keywords" `Quick test_lexer_idents;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "term precedence" `Quick test_parse_term_precedence;
    Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
    Alcotest.test_case "function terms" `Quick test_parse_function_terms;
    Alcotest.test_case "literal forms" `Quick test_parse_literal_forms;
    Alcotest.test_case "comparison literals" `Quick test_parse_comparison_literal;
    Alcotest.test_case "rules" `Quick test_parse_rules;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "component files" `Quick test_parse_component_file;
    Alcotest.test_case "multiple parents" `Quick test_parse_multi_parent;
    Alcotest.test_case "duplicate component rejected" `Quick test_duplicate_component;
    Alcotest.test_case "rule print/parse round-trip" `Quick test_rule_roundtrip;
    Alcotest.test_case "program print/parse round-trip" `Quick
      test_program_roundtrip
  ]

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_at_in_identifiers () =
  (* '@' is allowed in identifier tails (version names like tax@2). *)
  let r = rule "rate@2(10)." in
  Alcotest.(check string) "predicate keeps @" "rate@2"
    (Rule.head r).Literal.atom.Atom.pred;
  let ast = Lang.Parser.parse_file "component tax@2 { p. }" in
  Alcotest.(check (list string)) "component name keeps @" [ "tax@2" ]
    (List.map (fun (c : Lang.Ast.component) -> c.name) (Lang.Ast.components ast))

let test_keyword_not_a_predicate () =
  (* keywords cannot head a rule *)
  match Lang.Parser.parse_file "order. " with
  | exception Lang.Parser.Error _ -> ()
  | _ -> Alcotest.fail "keyword as a bare rule must fail"

let test_comment_at_eof () =
  Alcotest.(check int) "trailing line comment" 1
    (List.length (rules "p. % the end"));
  Alcotest.(check int) "trailing block comment" 1
    (List.length (rules "p. /* done */"))

let test_quote_in_identifier () =
  let r = rule "p'(a')." in
  Alcotest.(check string) "primed predicate" "p'"
    (Rule.head r).Literal.atom.Atom.pred

let test_deeply_nested_parens () =
  let t = term "((((1 + 2))))" in
  Alcotest.check testable_term "parens collapse" (term "1 + 2") t

let edge_suite =
  [ Alcotest.test_case "@ in identifiers" `Quick test_at_in_identifiers;
    Alcotest.test_case "keywords are not predicates" `Quick
      test_keyword_not_a_predicate;
    Alcotest.test_case "comments at end of input" `Quick test_comment_at_eof;
    Alcotest.test_case "primes in identifiers" `Quick test_quote_in_identifier;
    Alcotest.test_case "nested parentheses" `Quick test_deeply_nested_parens
  ]

let suite = suite @ edge_suite
