(* Differential testing of the three enumeration engines — compiled
   ([Solve.Kernel]), pruned branch-and-propagate, and the leaf-check
   oracles ([Stable.Naive], [Exhaustive.Naive]) — on random programs:

   - same assumption-free / stable / total model sets across all three;
   - the compiled kernel reproduces the pruned enumeration {e order}
     exactly (list equality, not just set equality) and never visits
     more search nodes;
   - same counts under [?limit] (assumption-free and total enumerate in
     different orders but both return min(limit, total) models);
   - each engine's [?limit:k] result is exactly the first k of its own
     unlimited enumeration (the documented search-order contract);
   - [stable_models ?limit] is the maximal subset of the same engine's
     limited assumption-free enumeration;
   - the pruned search only emits assumption-free models and starts with
     the least model;
   - on compiled preference programs ([Prefer.Compile]), the compiled
     kernel agrees with the pruned preferred-model route.

   The generators cover random ordered programs (up to 3 components,
   negative heads, overruling/defeating) and OV-transformed seminegative
   programs (every atom branchable with both polarities — the
   stable-branching regime the pruning is for).  Iteration counts scale
   with FUZZ_ITERS, like the other fuzz suites. *)

open Logic
open Helpers
module Gen = QCheck2.Gen
module B = Ordered.Budget
module S = Ordered.Stable
module E = Ordered.Exhaustive
module K = Solve.Kernel

let iters name base =
  ignore name;
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > base -> n
    | _ -> base)
  | None -> base

let gop_of p = Ordered.Gop.ground p 0

let af_pruned ?limit g = B.value (S.assumption_free_models ?limit g)
let af_naive ?limit g = B.value (S.Naive.assumption_free_models ?limit g)
let af_comp ?limit ?stats g = B.value (K.assumption_free_models ?limit ?stats g)
let st_pruned ?limit g = B.value (S.stable_models ?limit g)
let st_naive ?limit g = B.value (S.Naive.stable_models ?limit g)
let st_comp ?limit g = B.value (K.stable_models ?limit g)
let tot_pruned ?limit g = B.value (E.total_models ?limit g)
let tot_naive ?limit g = B.value (E.Naive.total_models ?limit g)
let tot_comp ?limit ?stats g = B.value (K.total_models ?limit ?stats g)

let interp_list_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 Interp.equal l1 l2

let prop_af_sets =
  qcheck
    ~count:(iters "af" 400)
    ~print:print_program "pruned = naive: assumption-free model sets"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      interp_set_equal (af_pruned g) (af_naive g))

let prop_stable_sets =
  qcheck
    ~count:(iters "stable" 250)
    ~print:print_program "pruned = naive: stable model sets"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      interp_set_equal (st_pruned g) (st_naive g))

let prop_total_sets =
  qcheck
    ~count:(iters "total" 250)
    ~print:print_program "pruned = naive: total model sets"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      interp_set_equal (tot_pruned g) (tot_naive g))

(* The compiled kernel's contract is stronger than set equality: same
   tree, same order, so its enumerations equal the pruned ones as lists,
   and nogood skips can only remove conflicting subtrees, so it never
   visits more nodes. *)
let prop_compiled_lists =
  qcheck
    ~count:(iters "compiled" 400)
    ~print:print_program
    "compiled = pruned: af/stable/total enumerations, in order"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      interp_list_equal (af_comp g) (af_pruned g)
      && interp_list_equal (st_comp g) (st_pruned g)
      && interp_list_equal (tot_comp g) (tot_pruned g))

let prop_compiled_nodes =
  qcheck
    ~count:(iters "compiled-nodes" 250)
    ~print:print_program "compiled visits no more nodes than pruned"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      let pruned = Ordered.Counters.create () in
      let comp = Ordered.Counters.create () in
      ignore (B.value (S.assumption_free_models ~stats:pruned g));
      ignore (af_comp ~stats:comp g);
      let pruned_tot = Ordered.Counters.create () in
      let comp_tot = Ordered.Counters.create () in
      ignore (B.value (E.total_models ~stats:pruned_tot g));
      ignore (tot_comp ~stats:comp_tot g);
      comp.Ordered.Counters.nodes <= pruned.Ordered.Counters.nodes
      && comp.Ordered.Counters.models = pruned.Ordered.Counters.models
      && comp_tot.Ordered.Counters.nodes <= pruned_tot.Ordered.Counters.nodes
      && comp_tot.Ordered.Counters.models = pruned_tot.Ordered.Counters.models)

(* OV transform of a random seminegative program: the -A axioms make every
   atom a head of both polarities, so the search genuinely branches three
   ways everywhere. *)
let gen_ov = Gen.list_size (Gen.int_range 1 6) (Test_props.gen_seminegative_rule 3)

let prop_ov_sets =
  qcheck
    ~count:(iters "ov" 200)
    ~print:print_rules
    "pruned = naive = compiled on OV programs (assumption-free and stable)"
    gen_ov
    (fun rs ->
      let g = Ordered.Bridge.ground_ov rs in
      interp_set_equal (af_pruned g) (af_naive g)
      && interp_set_equal (st_pruned g) (st_naive g)
      && interp_list_equal (af_comp g) (af_pruned g)
      && interp_list_equal (st_comp g) (st_pruned g))

let prop_limit_counts =
  qcheck ~count:200
    ~print:(fun (p, k) -> Printf.sprintf "%s limit=%d" (print_program p) k)
    "pruned = naive: counts under ?limit"
    Gen.(
      let* p = Test_props.gen_ordered 4 in
      let* k = int_bound 4 in
      return (p, k))
    (fun (p, k) ->
      let g = gop_of p in
      let total_af = List.length (af_naive g) in
      let total_tot = List.length (tot_naive g) in
      List.length (af_pruned ~limit:k g) = min k total_af
      && List.length (af_naive ~limit:k g) = min k total_af
      && List.length (tot_pruned ~limit:k g) = min k total_tot
      && List.length (tot_naive ~limit:k g) = min k total_tot)

let take k l = List.filteri (fun i _ -> i < k) l

let prop_limit_prefix =
  qcheck ~count:150
    ~print:(fun (p, k) -> Printf.sprintf "%s limit=%d" (print_program p) k)
    "?limit:k is the first k of each engine's own enumeration"
    Gen.(
      let* p = Test_props.gen_ordered 4 in
      let* k = int_bound 4 in
      return (p, k))
    (fun (p, k) ->
      let g = gop_of p in
      let prefix_of enum =
        let full = enum ?limit:None g in
        let limited = enum ?limit:(Some k) g in
        List.length limited = min k (List.length full)
        && List.for_all2 Interp.equal limited (take (List.length limited) full)
      in
      prefix_of (fun ?limit g -> af_pruned ?limit g)
      && prefix_of (fun ?limit g -> af_naive ?limit g)
      && prefix_of (fun ?limit g -> af_comp ?limit g)
      && prefix_of (fun ?limit g -> tot_pruned ?limit g)
      && prefix_of (fun ?limit g -> tot_naive ?limit g)
      && prefix_of (fun ?limit g -> tot_comp ?limit g))

let prop_stable_limit_consistent =
  qcheck ~count:100
    ~print:(fun (p, k) -> Printf.sprintf "%s limit=%d" (print_program p) k)
    "stable ?limit = maximal of the same engine's limited enumeration"
    Gen.(
      let* p = Test_props.gen_ordered 4 in
      let* k = int_bound 4 in
      return (p, k))
    (fun (p, k) ->
      let g = gop_of p in
      let maximal models =
        List.filter
          (fun m ->
            not
              (List.exists
                 (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
                 models))
          models
      in
      interp_set_equal (st_pruned ~limit:k g) (maximal (af_pruned ~limit:k g))
      && interp_set_equal (st_naive ~limit:k g) (maximal (af_naive ~limit:k g)))

let prop_pruned_sound =
  qcheck ~count:150 ~print:print_program
    "pruned search emits assumption-free models, least model first"
    (Test_props.gen_ordered 4)
    (fun p ->
      let g = gop_of p in
      match af_pruned g with
      | [] -> false (* the least model is always assumption-free *)
      | first :: _ as ms ->
        Interp.equal first (Ordered.Vfix.least_model g)
        && List.for_all (Ordered.Model.is_assumption_free g) ms)

(* Preference programs exercise the compiled kernel on the gops the
   preferred-model route actually searches: per-rule components, control
   atoms, deep component orders.  [Prefer.Compile.preferred_models] is
   the pruned stable search on [Prefer.Compile.gop], so the compiled
   kernel on the same gop must enumerate the same models. *)
let prop_compiled_prefer =
  qcheck
    ~count:(iters "compiled-prefer" 300)
    ~print:Test_diff_prefer.print_case
    "compiled = pruned on compiled preference programs"
    (Test_diff_prefer.gen_preferred 4)
    (fun case ->
      let c = Prefer.Compile.compile (Test_diff_prefer.spec_of case) in
      let g = Prefer.Compile.gop c in
      interp_list_equal (st_comp g) (st_pruned g)
      && interp_set_equal (st_comp g)
           (B.value (Prefer.Compile.preferred_models c)))

let suite =
  [ prop_af_sets;
    prop_stable_sets;
    prop_total_sets;
    prop_compiled_lists;
    prop_compiled_nodes;
    prop_ov_sets;
    prop_limit_counts;
    prop_limit_prefix;
    prop_stable_limit_consistent;
    prop_pruned_sound;
    prop_compiled_prefer
  ]
