(* Unit tests for the ordered core: posets, programs, grounding views,
   Definition 2 statuses, the V fixpoint, Definition 3 model checking,
   assumption sets and exhaustive/total models. *)

open Logic
open Helpers
module P = Ordered.Program
module Poset = Ordered.Poset

(* ------------------------------------------------------------------ *)
(* Poset                                                               *)
(* ------------------------------------------------------------------ *)

let test_poset_closure () =
  match Poset.make ~n:3 ~pairs:[ (0, 1); (1, 2) ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "transitive" true (Poset.lt t 0 2);
    Alcotest.(check bool) "not symmetric" false (Poset.lt t 2 0);
    Alcotest.(check bool) "leq reflexive" true (Poset.leq t 1 1);
    Alcotest.(check bool) "irreflexive lt" false (Poset.lt t 1 1)

let test_poset_cycle () =
  (match Poset.make ~n:2 ~pairs:[ (0, 1); (1, 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle must be rejected");
  match Poset.make ~n:2 ~pairs:[ (0, 5) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of range must be rejected"

let test_poset_queries () =
  let t = Result.get_ok (Poset.make ~n:4 ~pairs:[ (0, 1); (0, 2) ]) in
  Alcotest.(check bool) "incomparable" true (Poset.incomparable t 1 2);
  Alcotest.(check bool) "not incomparable with self" false (Poset.incomparable t 1 1);
  Alcotest.(check (list int)) "above 0 includes itself" [ 0; 1; 2 ] (Poset.above t 0);
  Alcotest.(check (list int)) "below 1" [ 0; 1 ] (Poset.below t 1);
  Alcotest.(check (list int)) "minimal" [ 0; 3 ] (Poset.minimal t);
  Alcotest.(check (list int)) "maximal" [ 1; 2; 3 ] (Poset.maximal t)

(* ------------------------------------------------------------------ *)
(* Programs and views                                                  *)
(* ------------------------------------------------------------------ *)

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let test_program_errors () =
  (match P.make [ ("a", []); ("a", []) ] [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate names rejected");
  (match P.make [ ("a", []) ] [ ("a", "zz") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown order name rejected");
  match P.make [ ("a", []); ("b", []) ] [ ("a", "b"); ("b", "a") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cyclic order rejected"

let test_view () =
  let p = program p1_src in
  let c1 = P.component_id_exn p "c1" in
  let c2 = P.component_id_exn p "c2" in
  Alcotest.(check int) "c1 sees 6 rules" 6 (List.length (P.view p c1));
  Alcotest.(check int) "c2 sees only its 4" 4 (List.length (P.view p c2));
  Alcotest.(check int) "all rules" 6 (List.length (P.all_rules p))

let test_gop_grounding () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  (* universe {penguin, pigeon}: c2 has 2 facts + 2 rules x 2 instances,
     c1 has 1 fact + 1 rule x 2 instances -> 9 ground rules *)
  Alcotest.(check int) "ground rule count" 9 (Ordered.Gop.n_rules g);
  Alcotest.(check int) "atoms" 6 (Ordered.Gop.n_atoms g);
  Alcotest.(check bool) "find penguin fly rule" true
    (Ordered.Gop.find_rule g (P.component_id_exn p "c2")
       (rule "fly(penguin) :- bird(penguin).")
    <> None)

let test_gop_duplicate_rule_components () =
  (* The same rule in two components keeps distinct ground instances. *)
  let p = program "component a { p. } component b extends a { p. }" in
  let g = ground_at p "b" in
  Alcotest.(check int) "two instances of p." 2 (Ordered.Gop.n_rules g)

(* ------------------------------------------------------------------ *)
(* Definition 2: statuses (paper Example 2)                            *)
(* ------------------------------------------------------------------ *)

let i1 =
  [ "bird(pigeon)"; "bird(penguin)"; "ground_animal(penguin)";
    "-ground_animal(pigeon)"; "fly(pigeon)"; "-fly(penguin)"
  ]

let status_of g m comp r =
  let prog = g.Ordered.Gop.program in
  let idx =
    Option.get
      (Ordered.Gop.find_rule g (P.component_id_exn prog comp) (rule r))
  in
  let v, _ = Ordered.Gop.Values.of_interp g (interp m) in
  Ordered.Status.report g v idx

let test_example2_statuses () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  (* fly(penguin) :- bird(penguin) is applicable but overruled *)
  let s = status_of g i1 "c2" "fly(penguin) :- bird(penguin)." in
  Alcotest.(check bool) "applicable" true s.Ordered.Status.applicable;
  Alcotest.(check bool) "overruled" true s.Ordered.Status.overruled;
  Alcotest.(check bool) "not applied" false s.Ordered.Status.applied;
  (* the overruling rule is applied *)
  let s2 = status_of g i1 "c1" "-fly(penguin) :- ground_animal(penguin)." in
  Alcotest.(check bool) "overruler applied" true s2.Ordered.Status.applied;
  Alcotest.(check bool) "overruler not overruled" false s2.Ordered.Status.overruled;
  (* -fly(pigeon) :- ground_animal(pigeon) is blocked and non-applicable *)
  let s3 = status_of g i1 "c1" "-fly(pigeon) :- ground_animal(pigeon)." in
  Alcotest.(check bool) "blocked" true s3.Ordered.Status.blocked;
  Alcotest.(check bool) "non-applicable" false s3.Ordered.Status.applicable

let test_example2_flattened_defeat () =
  let p = program p1_src in
  let flat = P.singleton (P.all_rules p) in
  let g = ground_at flat "main" in
  let s = status_of g i1 "main" "fly(penguin) :- bird(penguin)." in
  Alcotest.(check bool) "defeated in flattened program" true
    s.Ordered.Status.defeated;
  Alcotest.(check bool) "not overruled (same component)" false
    s.Ordered.Status.overruled;
  let s2 = status_of g i1 "main" "ground_animal(penguin)." in
  Alcotest.(check bool) "the fact is defeated too" true s2.Ordered.Status.defeated

(* ------------------------------------------------------------------ *)
(* V fixpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_vfix_p1 () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp "least model = I1" (interp i1)
    (Ordered.Vfix.least_model g)

let test_vfix_engines_agree () =
  List.iter
    (fun src ->
      let p = program src in
      let g = ground_at p (P.component_name p 0) in
      Alcotest.check testable_interp src
        (Ordered.Vfix.least_model ~engine:`Naive g)
        (Ordered.Vfix.least_model ~engine:`Incremental g))
    [ p1_src;
      "component main { a :- b. -a :- b. b. }";
      "component a { p. q :- p. } component b extends a { -p. r :- -p. }";
      "component x { p :- -q. } component y { q. } order x < y."
    ]

let test_vfix_monotone_rounds () =
  (* step is inflationary along the Kleene iteration *)
  let p = program p1_src in
  let g = ground_at p "c1" in
  let v0 = Ordered.Gop.Values.create g in
  let v1 = Ordered.Vfix.step g v0 in
  let v2 = Ordered.Vfix.step g v1 in
  let subset a b =
    Interp.subset (Ordered.Gop.Values.to_interp g a) (Ordered.Gop.Values.to_interp g b)
  in
  Alcotest.(check bool) "v0 <= v1" true (subset v0 v1);
  Alcotest.(check bool) "v1 <= v2" true (subset v1 v2)

let test_vfix_trace () =
  let p = program "component main { a. b :- a. c :- b. }" in
  let g = ground_at p "main" in
  let tr = Ordered.Vfix.trace g in
  Alcotest.(check int) "three firings" 3 (List.length tr)

(* ------------------------------------------------------------------ *)
(* Definition 3: models                                                *)
(* ------------------------------------------------------------------ *)

let test_models_p1 () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  Alcotest.(check bool) "I1 is a model" true
    (Ordered.Model.is_model g (interp i1));
  Alcotest.(check bool) "I1 assumption-free" true
    (Ordered.Model.is_assumption_free g (interp i1));
  (* flattened: I1 is not a model *)
  let flat = P.singleton (P.all_rules p) in
  let gf = ground_at flat "main" in
  Alcotest.(check bool) "I1 not a model of flattened" false
    (Ordered.Model.is_model gf (interp i1));
  Alcotest.(check bool) "violations reported" true
    (Ordered.Model.violations gf (interp i1) <> [])

let test_model_free_atoms () =
  (* Literals over atoms no rule mentions are permitted in models but are
     assumption sets, hence never assumption-free. *)
  let p = program "component main { p. }" in
  let g = ground_at p "main" in
  let m = Interp.of_literals [ lit "p"; lit "ghost" ] in
  Alcotest.(check bool) "model with free atom" true (Ordered.Model.is_model g m);
  Alcotest.(check bool) "but not assumption-free" false
    (Ordered.Model.is_assumption_free g m);
  Alcotest.(check bool) "free literal is an assumption set" true
    (Ordered.Model.is_assumption_set g m [ lit "ghost" ])

let test_assumption_set_cycle () =
  (* Mutual support is an assumption set: {a, b} with a :- b. b :- a. *)
  let p = program "component main { a :- b. b :- a. }" in
  let g = ground_at p "main" in
  let m = interp [ "a"; "b" ] in
  Alcotest.(check bool) "{a, b} is a model" true (Ordered.Model.is_model g m);
  Alcotest.(check (list testable_literal)) "largest assumption set"
    [ lit "a"; lit "b" ]
    (List.sort Literal.compare (Ordered.Model.largest_assumption_set g m));
  Alcotest.(check bool) "{a, b} is an assumption set" true
    (Ordered.Model.is_assumption_set g m [ lit "a"; lit "b" ]);
  Alcotest.(check bool) "not assumption-free" false
    (Ordered.Model.is_assumption_free g m)

let test_assumption_free_methods_agree () =
  (* Theorem 1(a): the enabled-fixpoint method and the direct Definition 6
     gfp agree on models. *)
  List.iter
    (fun src ->
      let p = program src in
      let g = ground_at p (P.component_name p 0) in
      List.iter
        (fun m ->
          if Ordered.Model.is_model g m then
            Alcotest.(check bool)
              (Format.asprintf "%s / %a" src Interp.pp m)
              (Ordered.Model.largest_assumption_set g m = [])
              (Ordered.Model.is_assumption_free g m))
        (all_interps g.Ordered.Gop.active_base))
    [ "component main { a :- b. -a :- b. }";
      "component main { a :- b. b :- a. c. }";
      "component a { p. } component b extends a { -p. }"
    ]

(* ------------------------------------------------------------------ *)
(* Exhaustive and total models (Definition 5, Proposition 2)           *)
(* ------------------------------------------------------------------ *)

let test_total_and_exhaustive () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  let m = interp i1 in
  Alcotest.(check bool) "I1 total" true (Ordered.Exhaustive.is_total g m);
  Alcotest.(check bool) "I1 exhaustive" true (Ordered.Exhaustive.is_exhaustive g m);
  Alcotest.(check bool) "least of flattened is not total" false
    (let flat = P.singleton (P.all_rules p) in
     let gf = ground_at flat "main" in
     Ordered.Exhaustive.is_total gf (Ordered.Vfix.least_model gf))

let test_extend_to_exhaustive () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  (* {} is a model; it extends to an exhaustive one *)
  let e = Ordered.Exhaustive.extend g Interp.empty in
  Alcotest.(check bool) "extension is a model" true (Ordered.Model.is_model g e);
  Alcotest.(check bool) "extension is exhaustive" true
    (Ordered.Exhaustive.is_exhaustive g e);
  Alcotest.(check bool) "non-model input rejected" true
    (match Ordered.Exhaustive.extend g (interp [ "a" ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_total_models_enumeration () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  (* total models over {a, b}: from the paper's list, the total ones are
     (a, -b) and (-a, -b). *)
  Alcotest.check testable_interp_set "total models"
    [ interp [ "a"; "-b" ]; interp [ "-a"; "-b" ] ]
    (Ordered.Budget.value (Ordered.Exhaustive.total_models g))

let suite =
  [ Alcotest.test_case "poset closure" `Quick test_poset_closure;
    Alcotest.test_case "poset cycle rejection" `Quick test_poset_cycle;
    Alcotest.test_case "poset queries" `Quick test_poset_queries;
    Alcotest.test_case "program validation" `Quick test_program_errors;
    Alcotest.test_case "views C*" `Quick test_view;
    Alcotest.test_case "grounding a view" `Quick test_gop_grounding;
    Alcotest.test_case "same rule in two components" `Quick
      test_gop_duplicate_rule_components;
    Alcotest.test_case "Example 2: statuses in P1" `Quick test_example2_statuses;
    Alcotest.test_case "Example 2: defeat in flattened P1" `Quick
      test_example2_flattened_defeat;
    Alcotest.test_case "V fixpoint on P1" `Quick test_vfix_p1;
    Alcotest.test_case "V engines agree" `Quick test_vfix_engines_agree;
    Alcotest.test_case "V is inflationary along Kleene iteration" `Quick
      test_vfix_monotone_rounds;
    Alcotest.test_case "V trace" `Quick test_vfix_trace;
    Alcotest.test_case "models of P1" `Quick test_models_p1;
    Alcotest.test_case "free atoms in models" `Quick test_model_free_atoms;
    Alcotest.test_case "assumption sets: cycles" `Quick test_assumption_set_cycle;
    Alcotest.test_case "Theorem 1(a): methods agree" `Quick
      test_assumption_free_methods_agree;
    Alcotest.test_case "total and exhaustive models" `Quick test_total_and_exhaustive;
    Alcotest.test_case "Proposition 2: extension" `Quick test_extend_to_exhaustive;
    Alcotest.test_case "total model enumeration" `Quick test_total_models_enumeration
  ]

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_poset_self_loop () =
  match Poset.make ~n:1 ~pairs:[ (0, 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a < a must be rejected"

let test_empty_program () =
  let p = P.make_exn [ ("only", []) ] [] in
  let g = ground_at p "only" in
  Alcotest.(check int) "no rules" 0 (Ordered.Gop.n_rules g);
  Alcotest.check testable_interp "empty least model" Interp.empty
    (Ordered.Vfix.least_model g);
  Alcotest.(check bool) "empty is a model" true
    (Ordered.Model.is_model g Interp.empty);
  Alcotest.check testable_interp_set "one stable model: empty"
    [ Interp.empty ]
    (Ordered.Budget.value (Ordered.Stable.stable_models g))

let test_gop_extra_constants () =
  let p = program "component main { p(X) :- q(X). q(a). }" in
  let g0 = Ordered.Gop.ground p 0 in
  let g1 =
    Ordered.Gop.ground ~extra_constants:[ Logic.Term.Sym "b" ] p 0
  in
  Alcotest.(check bool) "wider universe, more instances" true
    (Ordered.Gop.n_rules g1 > Ordered.Gop.n_rules g0)

let test_find_rule_miss () =
  let p = program "component main { p. }" in
  let g = ground_at p "main" in
  Alcotest.(check bool) "missing rule not found" true
    (Ordered.Gop.find_rule g 0 (rule "q.") = None)

let test_values_inconsistent_set () =
  let p = program "component main { p. }" in
  let g = ground_at p "main" in
  let v = Ordered.Gop.Values.create g in
  Ordered.Gop.Values.set v 0 true;
  Ordered.Gop.Values.set v 0 true;
  match Ordered.Gop.Values.set v 0 false with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "inconsistent assignment must raise"

let edge_suite =
  [ Alcotest.test_case "poset: a < a rejected" `Quick test_poset_self_loop;
    Alcotest.test_case "empty component program" `Quick test_empty_program;
    Alcotest.test_case "extra constants widen the universe" `Quick
      test_gop_extra_constants;
    Alcotest.test_case "find_rule miss" `Quick test_find_rule_miss;
    Alcotest.test_case "Values consistency" `Quick test_values_inconsistent_set
  ]

let suite = suite @ edge_suite

(* The paper's Definition-5 commentary: every total model is exhaustive;
   the converse fails; a non-total exhaustive model can coexist with a
   total one. *)

let test_total_implies_exhaustive () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "%a exhaustive" Interp.pp m)
        true
        (Ordered.Exhaustive.is_exhaustive g m))
    (Ordered.Budget.value (Ordered.Exhaustive.total_models g))

let test_nontotal_exhaustive_beside_total () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  (* {a, -b} is total; {b} is exhaustive but not total *)
  Alcotest.(check bool) "a total model exists" true
    (Ordered.Budget.value (Ordered.Exhaustive.total_models g) <> []);
  let b_only = interp [ "b" ] in
  Alcotest.(check bool) "{b} is a model" true (Ordered.Model.is_model g b_only);
  Alcotest.(check bool) "{b} not total" false
    (Ordered.Exhaustive.is_total g b_only);
  Alcotest.(check bool) "{b} exhaustive" true
    (Ordered.Exhaustive.is_exhaustive g b_only)

let prop_total_implies_exhaustive =
  Helpers.qcheck ~count:30 ~print:Helpers.print_program
    "Def 5: total models are exhaustive" (Test_props.gen_ordered 3) (fun p ->
      let g = Ordered.Gop.ground p 0 in
      List.for_all
        (Ordered.Exhaustive.is_exhaustive g)
        (Ordered.Budget.value (Ordered.Exhaustive.total_models g)))

let suite =
  suite
  @ [ Alcotest.test_case "total models are exhaustive (P3)" `Quick
        test_total_implies_exhaustive;
      Alcotest.test_case "non-total exhaustive beside a total model" `Quick
        test_nontotal_exhaustive_beside_total;
      prop_total_implies_exhaustive
    ]
