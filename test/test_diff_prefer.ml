(* Differential testing of the compiled preference route against the
   naive oracle on random ordered programs with random named rules and
   random (acyclicity-preserving) preference pairs:

   - [Prefer.Compile] (fresh per-rule components + pruned search) and
     [Prefer.Naive] (directly refined adjacency + leaf-check search)
     enumerate the same preferred-model sets;
   - with no preferences, both routes coincide with the plain stable
     semantics of the original program (the per-rule component splitting
     is invisible);
   - trace-mode compilation, projected, changes nothing.

   Preference pairs are generated aligned with the (component, rule)
   declaration order, which every object-order edge also follows — so
   the combined relation embeds in a total order and is acyclic by
   construction; the cycle diagnostics are covered by unit tests. *)

open Logic
open Helpers
module Gen = QCheck2.Gen
module B = Ordered.Budget
module S = Ordered.Stable

let iters name base =
  (* scaled by FUZZ_ITERS like the other fuzz suites, so `make fuzz`
     deepens the sweep without editing the test *)
  ignore name;
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > base -> n
    | _ -> base)
  | None -> base

(* ------------------------------------------------------------------ *)
(* Generator: programs with named rules and consistent preferences     *)
(* ------------------------------------------------------------------ *)

(* reachable components from c0 over (lo, hi) pairs: the view *)
let view_comps ncomp pairs =
  let up = Array.make ncomp false in
  up.(0) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (lo, hi) ->
        if up.(lo) && not up.(hi) then begin
          up.(hi) <- true;
          changed := true
        end)
      pairs
  done;
  up

let gen_preferred n =
  let open Gen in
  let* ncomp = int_range 1 3 in
  let* raw =
    flatten_l
      (List.init ncomp (fun _ ->
           list_size (int_range 1 4) (Test_props.gen_negative_rule n)))
  in
  (* name rules with distinct global names, ~2/3 of the time *)
  let* name_flags =
    flatten_l (List.map (fun rs -> flatten_l (List.map (fun _ -> int_bound 2) rs)) raw)
  in
  let k = ref 0 in
  let comps =
    List.map2
      (fun rs flags ->
        List.map2
          (fun r flag ->
            let i = !k in
            incr k;
            if flag > 0 then Rule.with_name (Printf.sprintf "r%d" i) r
            else r)
          rs flags)
      raw name_flags
  in
  let comps =
    List.mapi (fun i rs -> (Printf.sprintf "c%d" i, rs)) comps
  in
  let all_pairs =
    List.concat
      (List.init ncomp (fun i ->
           List.filter_map
             (fun j -> if i < j then Some (i, j) else None)
             (List.init ncomp Fun.id)))
  in
  let* chosen =
    flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) all_pairs)
  in
  let int_pairs = List.filter_map (fun (p, b) -> if b then Some p else None) chosen in
  let pairs =
    List.map
      (fun (i, j) -> (Printf.sprintf "c%d" i, Printf.sprintf "c%d" j))
      int_pairs
  in
  (* named rules of the view, tagged (comp index, name), declaration order *)
  let up = view_comps ncomp int_pairs in
  let visible =
    List.concat
      (List.mapi
         (fun ci (_, rs) ->
           if up.(ci) then
             List.filter_map (fun r -> Option.map (fun nm -> (ci, nm)) (Rule.name r)) rs
           else [])
         comps)
  in
  (* candidate pref edges follow the same global order as object edges *)
  let candidates =
    List.concat
      (List.mapi
         (fun i (ci, a) ->
           List.filteri (fun j _ -> j > i) visible
           |> List.filter_map (fun (cj, b) ->
                  if ci <= cj then Some (a, b) else None))
         visible)
  in
  let* picks =
    flatten_l
      (List.map (fun c -> map (fun b -> (c, b)) (int_bound 2)) candidates)
  in
  let prefs =
    List.filter_map (fun (c, b) -> if b = 0 then Some c else None) picks
  in
  return (Ordered.Program.make_exn comps pairs, prefs)

let print_case (p, prefs) =
  Printf.sprintf "%s prefs=[%s]" (print_program p)
    (String.concat "; " (List.map (fun (a, b) -> a ^ " > " ^ b) prefs))

let spec_of (p, prefs) = Prefer.Spec.make p 0 prefs

let compiled spec =
  B.value (Prefer.Compile.preferred_models (Prefer.Compile.compile spec))

let naive spec = B.value (Prefer.Naive.preferred_models spec)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_diff =
  qcheck
    ~count:(iters "diff" 700)
    ~print:print_case "compiled = naive: preferred model sets"
    (gen_preferred 4)
    (fun case -> interp_set_equal (compiled (spec_of case)) (naive (spec_of case)))

let prop_no_prefs =
  qcheck
    ~count:(iters "noprefs" 300)
    ~print:print_case
    "no preferences: both routes = plain stable semantics"
    (gen_preferred 4)
    (fun (p, _) ->
      let spec = Prefer.Spec.make p 0 [] in
      let plain = B.value (S.stable_models (Ordered.Gop.ground p 0)) in
      interp_set_equal (compiled spec) plain
      && interp_set_equal (naive spec) plain)

let prop_trace =
  qcheck
    ~count:(iters "trace" 200)
    ~print:print_case "trace mode projects to the untraced models"
    (gen_preferred 4)
    (fun case ->
      let spec = spec_of case in
      let traced =
        B.value
          (Prefer.Compile.preferred_models
             (Prefer.Compile.compile ~trace:true spec))
      in
      interp_set_equal
        (List.map Prefer.Compile.project traced)
        (compiled spec))

let suite = [ prop_diff; prop_no_prefs; prop_trace ]
