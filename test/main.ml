let () =
  Alcotest.run "olp"
    [ ("logic", Test_logic.suite);
      ("lang", Test_lang.suite);
      ("ground", Test_ground.suite);
      ("datalog", Test_datalog.suite);
      ("ordered", Test_ordered.suite);
      ("paper", Test_paper.suite);
      ("stable", Test_stable.suite);
      ("bridge", Test_bridge.suite);
      ("negative", Test_negative.suite);
      ("kb", Test_kb.suite);
      ("explain", Test_explain.suite);
      ("properties", Test_props.suite);
      ("diff-stable", Test_diff_stable.suite);
      ("prefer", Test_prefer.suite);
      ("diff-prefer", Test_diff_prefer.suite);
      ("golden", Test_golden.suite);
      ("deviations", Test_deviations.suite);
      ("query", Test_query.suite);
      ("analysis", Test_analysis.suite);
      ("stress", Test_stress.suite);
      ("incremental", Test_incremental.suite);
      ("diff-inc", Test_diff_inc.suite);
      ("edb", Test_edb.suite);
      ("magic", Test_magic.suite);
      ("budget", Test_budget.suite);
      ("fuzz", Test_fuzz.suite);
      ("proto", Test_proto.suite);
      ("session", Test_session.suite);
      ("server", Test_server.suite);
      ("persist", Test_persist.suite);
      ("replica", Test_replica.suite);
      ("crash", Test_crash.suite);
      ("parallel", Test_parallel.suite);
      ("linearize", Test_linearize.suite)
    ]
