(* The durable record codec and data-directory lifecycle (Persist): the
   CRC-32 check vector, mutation and snapshot round-trips, the corruption
   fuzz (random bytes and bit-flipped frames come back as typed results,
   never as an escaping exception), torn-tail WAL reads, recovery
   chaining across segments and corrupt snapshots, and the differential
   property — replaying a WAL reproduces the in-memory store exactly.

   Like test_proto.ml, fuzz inputs come from a self-contained LCG so runs
   are reproducible; FUZZ_ITERS scales the input count (raised by
   `make fuzz`). *)

module P = Persist
module R = Persist.Record
module Wal = Persist.Wal
module Store = Kb.Store

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let state = ref 0x6C078965
let rand bound =
  state := (!state * 1664525) + 1013904223;
  (!state lsr 9) mod bound

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "olp-persist-%d-%d" (Unix.getpid ()) !n)
    in
    rm_rf d;
    d

(* Canonical printable form of a store's full state; two stores are
   considered equal when these agree (rules compare by surface syntax,
   which the printers guarantee re-parses to an equal rule). *)
let repr store =
  let d = Store.dump store in
  let rules rs = String.concat "; " (List.map Logic.Rule.to_string rs) in
  String.concat "\n"
    (List.map
       (fun (name, parents, rs) ->
         Printf.sprintf "%s isa [%s] {%s}" name
           (String.concat "," parents)
           (rules rs))
       d.Store.dump_objs
    @ List.map (fun (a, b) -> a ^ " latest " ^ b) d.Store.dump_latest
    @ List.map (fun (a, c) -> Printf.sprintf "%s count %d" a c)
        d.Store.dump_counts
    @ List.map (fun (a, b) -> Printf.sprintf "prefer %s > %s" a b)
        d.Store.dump_prefs)

let config ?(fsync = false) ?(snapshot_every = 0) dir =
  { P.dir; fsync; snapshot_every; group_commit_ms = 0 }

(* ------------------------------------------------------------------ *)
(* The codec                                                           *)
(* ------------------------------------------------------------------ *)

let test_crc () =
  (* the standard CRC-32/ISO-HDLC check value *)
  Alcotest.(check int) "check vector" 0xCBF43926 (P.Crc32.string "123456789");
  Alcotest.(check int) "empty string" 0 (P.Crc32.string "");
  Alcotest.(check int) "sub agrees with string" 0xCBF43926
    (P.Crc32.sub "xx123456789yy" ~pos:2 ~len:9)

let sample_mutations : Store.mutation list =
  [ Store.Define
      { name = "bird";
        isa = [];
        rules = Helpers.rules "fly(X) :- bird(X). bird(tweety)."
      };
    Store.Define
      { name = "penguin";
        isa = [ "bird" ];
        rules = [ Helpers.rule "-fly(penguin)." ]
      };
    Store.Add_rule { obj = "bird"; rule = Helpers.rule "bird(sparrow)." };
    Store.Remove_rule { obj = "bird"; rule = Helpers.rule "bird(sparrow)." };
    Store.New_version { name = "penguin"; rules = None };
    Store.New_version
      { name = "bird"; rules = Some (Helpers.rules "heavy(ostrich).") };
    Store.Load { src = "component extra { t(1). u(X) :- t(X). }" };
    Store.Set_preference { rule = "exc"; over = "dflt" };
    Store.Set_preference { rule = "dflt"; over = "weak" };
    Store.Clear_preference { rule = "dflt"; over = "weak" }
  ]

let mutation_repr m = Format.asprintf "%a" Store.pp_mutation m

let test_mutation_roundtrip () =
  List.iter
    (fun m ->
      let e = R.encode_mutation m in
      match R.decode_mutation e with
      | Error msg -> Alcotest.failf "decode failed (%s): %s" msg (mutation_repr m)
      | Ok m' ->
        Alcotest.(check string) "mutation survives the codec"
          (mutation_repr m) (mutation_repr m');
        Alcotest.(check string) "re-encode is stable" e (R.encode_mutation m'))
    sample_mutations

let test_frame_roundtrip () =
  (* several records end to end, walked with unframe *)
  let payloads = List.map R.encode_mutation sample_mutations in
  let blob = String.concat "" (List.map R.frame payloads) in
  let rec walk pos acc =
    match R.unframe blob ~pos with
    | R.End -> List.rev acc
    | R.Frame { payload; next } -> walk next (payload :: acc)
    | R.Torn d -> Alcotest.failf "unexpected torn frame: %s" d
  in
  Alcotest.(check (list string)) "frames walk back" payloads (walk 0 [])

let random_mutation () =
  List.nth sample_mutations (rand (List.length sample_mutations))

let test_corruption_fuzz () =
  for _ = 1 to iters do
    (* arbitrary bytes must yield typed results, never an exception *)
    let junk = String.init (rand 96) (fun _ -> Char.chr (rand 256)) in
    (match R.decode_mutation junk with Ok _ | Error _ -> ());
    (match R.decode_snapshot junk with Ok _ | Error _ -> ());
    (match R.unframe junk ~pos:0 with R.Frame _ | R.End | R.Torn _ -> ());
    (match R.decode_wal_header junk with Ok _ | Error _ -> ());
    (* a single flipped bit in a valid frame must be rejected *)
    let payload = R.encode_mutation (random_mutation ()) in
    let b = Bytes.of_string (R.frame payload) in
    let i = rand (Bytes.length b) in
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl rand 8)));
    match R.unframe (Bytes.to_string b) ~pos:0 with
    | R.Torn _ -> ()
    | R.End -> Alcotest.fail "flipped frame read as clean end"
    | R.Frame { payload = p; _ } ->
      if p = payload then Alcotest.fail "bit flip went undetected"
  done

let test_snapshot_roundtrip () =
  let store = Store.create () in
  List.iter (Store.apply store) sample_mutations;
  let d = Store.dump store in
  let img = R.encode_snapshot ~seq:42 ~epoch:3 d in
  (match R.decode_snapshot img with
  | Error msg -> Alcotest.failf "snapshot decode failed: %s" msg
  | Ok (seq, epoch, d') ->
    Alcotest.(check int) "seq survives" 42 seq;
    Alcotest.(check int) "epoch survives" 3 epoch;
    Alcotest.(check string) "dump survives" (repr store)
      (repr (Store.of_dump d')));
  (* flip one payload byte: the CRC must catch it *)
  let b = Bytes.of_string img in
  let i = 16 + rand (Bytes.length b - 16) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
  match R.decode_snapshot (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted snapshot decoded"

(* ------------------------------------------------------------------ *)
(* WAL files                                                           *)
(* ------------------------------------------------------------------ *)

let test_wal_torn_tail () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal-000000000000.log" in
  let w = Wal.create ~fsync:false ~base:0 ~epoch:0 path in
  let ms = [ List.nth sample_mutations 0; List.nth sample_mutations 2;
             List.nth sample_mutations 6 ] in
  List.iter
    (fun m -> ignore (Wal.append ~fsync:false w (R.encode_mutation m) : int))
    ms;
  Wal.close w;
  (* a crash mid-append: half a frame of garbage on the end *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40\x00\x00\x00\xde\xad";
  close_out oc;
  (match Wal.read ~path ~expect_base:0 with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok rep ->
    Alcotest.(check int) "valid prefix survives" 3
      (List.length rep.Wal.mutations);
    Alcotest.(check bool) "tail reported torn" true (rep.Wal.torn <> None);
    Alcotest.(check bool) "good_end before size" true
      (rep.Wal.good_end < rep.Wal.size);
    Wal.truncate ~path rep.Wal.good_end);
  (match Wal.read ~path ~expect_base:0 with
  | Error msg -> Alcotest.failf "re-read failed: %s" msg
  | Ok rep ->
    Alcotest.(check bool) "clean after truncate" true (rep.Wal.torn = None);
    Alcotest.(check int) "records intact" 3 (List.length rep.Wal.mutations);
    Alcotest.(check int) "file ends at good_end" rep.Wal.size rep.Wal.good_end);
  (* a header whose base contradicts the segment name is an error *)
  (match Wal.read ~path ~expect_base:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "base mismatch accepted");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Data-directory lifecycle                                            *)
(* ------------------------------------------------------------------ *)

let apply_and_log p store m =
  Store.apply store m;
  P.append p m

let test_reopen_matches () =
  let dir = fresh_dir () in
  let p, store, r0 = P.open_dir (config dir) in
  Alcotest.(check int) "fresh dir starts empty" 0 r0.P.seq;
  List.iter (apply_and_log p store) sample_mutations;
  let before = repr store in
  P.close p;
  let p2, store2, r = P.open_dir (config dir) in
  Alcotest.(check string) "replay reproduces the store" before (repr store2);
  Alcotest.(check int) "all records replayed"
    (List.length sample_mutations) r.P.replayed;
  Alcotest.(check bool) "no torn tail" true (r.P.torn = None);
  P.close p2;
  rm_rf dir

let test_snapshot_and_chain () =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  List.iter (apply_and_log p store)
    [ List.nth sample_mutations 0; List.nth sample_mutations 1 ];
  let s = P.snapshot p in
  Alcotest.(check int) "snapshot covers both" 2 s;
  List.iter (apply_and_log p store) [ List.nth sample_mutations 2 ];
  let before = repr store in
  P.close p;
  (* normal path: resume from the snapshot, replay only the tail *)
  let p2, store2, r = P.open_dir (config dir) in
  Alcotest.(check string) "snapshot + tail" before (repr store2);
  Alcotest.(check int) "base is the snapshot" 2 r.P.base;
  Alcotest.(check int) "one record past it" 1 r.P.replayed;
  P.close p2;
  (* corrupt the snapshot: recovery must fall back to the full log
     chain (wal-0 then wal-2), counting the skipped snapshot *)
  let snap = Filename.concat dir "snapshot-000000000002.snap" in
  let img = In_channel.with_open_bin snap In_channel.input_all in
  let b = Bytes.of_string img in
  Bytes.set b (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
  Out_channel.with_open_bin snap (fun oc ->
      Out_channel.output_bytes oc b);
  let metrics = Governor.Metrics.create () in
  let p3, store3, r = P.open_dir ~metrics (config dir) in
  Alcotest.(check string) "chained from sequence 0" before (repr store3);
  Alcotest.(check int) "base fell back" 0 r.P.base;
  Alcotest.(check int) "full replay" 3 r.P.replayed;
  Alcotest.(check int) "corrupt snapshot counted" 1 r.P.corrupt_snapshots;
  Alcotest.(check int) "metrics agree" 1
    (Governor.Metrics.get metrics "recovery_corrupt_snapshots");
  P.close p3;
  rm_rf dir

let test_tmp_sweep () =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  apply_and_log p store (List.nth sample_mutations 0);
  P.close p;
  let stale = Filename.concat dir "snapshot-000000000099.snap.tmp" in
  Out_channel.with_open_bin stale (fun oc ->
      Out_channel.output_string oc "half a snapshot");
  let metrics = Governor.Metrics.create () in
  let p2, _, r = P.open_dir ~metrics (config dir) in
  Alcotest.(check int) "stale temp file swept" 1 r.P.tmp_swept;
  Alcotest.(check bool) "file gone" false (Sys.file_exists stale);
  Alcotest.(check int) "metrics agree" 1
    (Governor.Metrics.get metrics "persist_tmp_swept");
  P.close p2;
  rm_rf dir

let test_auto_snapshot_and_compact () =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir (config ~snapshot_every:3 dir) in
  let ms =
    [ List.nth sample_mutations 0; List.nth sample_mutations 1;
      List.nth sample_mutations 2; List.nth sample_mutations 4;
      List.nth sample_mutations 5; List.nth sample_mutations 6;
      Store.Add_rule { obj = "extra"; rule = Helpers.rule "t(2)." }
    ]
  in
  List.iter (apply_and_log p store) ms;
  Alcotest.(check bool) "auto snapshot at 3" true
    (Sys.file_exists (Filename.concat dir "snapshot-000000000003.snap"));
  Alcotest.(check bool) "auto snapshot at 6" true
    (Sys.file_exists (Filename.concat dir "snapshot-000000000006.snap"));
  let before = repr store in
  P.close p;
  let p2, store2, r = P.open_dir (config dir) in
  Alcotest.(check string) "state intact" before (repr store2);
  Alcotest.(check int) "resumed from the newest snapshot" 6 r.P.base;
  Alcotest.(check int) "tail of one" 1 r.P.replayed;
  let seq, deleted = P.compact p2 in
  Alcotest.(check int) "compaction snapshots the head" 7 seq;
  Alcotest.(check bool) "something was deleted" true (deleted > 0);
  Alcotest.(check (list string)) "only the live pair remains"
    [ "snapshot-000000000007.snap"; "wal-000000000007.log" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)));
  P.close p2;
  let p3, store3, _ = P.open_dir (config dir) in
  Alcotest.(check string) "state survives compaction" before (repr store3);
  P.close p3;
  rm_rf dir

let test_unrecoverable () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  (* a corrupt snapshot and no log reaching back to 0: nothing sound *)
  Out_channel.with_open_bin
    (Filename.concat dir "snapshot-000000000005.snap")
    (fun oc -> Out_channel.output_string oc "not a snapshot");
  (match P.open_dir (config dir) with
  | _ -> Alcotest.fail "unrecoverable directory opened"
  | exception Ordered.Diag.Error (Ordered.Diag.Invalid_input _) -> ());
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Differential: WAL replay ≡ direct application                       *)
(* ------------------------------------------------------------------ *)

let rule_pool =
  [| "p(a)."; "p(b)."; "q(X) :- p(X)."; "-p(c)."; "r(a,b).";
     "-q(X) :- r(X,b)."; "s(f(a))."; "t(X) :- s(X), not p(X)."
  |]

let any_rule () = Helpers.rule rule_pool.(rand (Array.length rule_pool))

(* Generate a mutation valid for [store]'s current state (fresh names
   from a counter; parents and targets drawn from live objects). *)
let gen_mutation =
  let fresh = ref 0 in
  fun store ->
    let objs = Store.objects store in
    let bases =
      List.filter (fun o -> not (String.contains o '@')) objs
    in
    let pick xs = List.nth xs (rand (List.length xs)) in
    match (if objs = [] then 0 else rand 11) with
    | 0 | 1 ->
      incr fresh;
      let isa = if objs <> [] && rand 2 = 0 then [ pick objs ] else [] in
      Store.Define
        { name = Printf.sprintf "g%d" !fresh;
          isa;
          rules = List.init (rand 3) (fun _ -> any_rule ())
        }
    | 2 | 3 | 4 | 5 -> Store.Add_rule { obj = pick objs; rule = any_rule () }
    | 6 | 7 ->
      (* often absent — a logged no-op is still a legal record *)
      Store.Remove_rule { obj = pick objs; rule = any_rule () }
    | 8 when bases <> [] ->
      Store.New_version
        { name = pick bases;
          rules = (if rand 2 = 0 then None else Some [ any_rule () ])
        }
    | 9 ->
      (* preference edges only ever point from a lower-numbered name to
         a higher one, so no random sequence can close a cycle *)
      let i = rand 5 in
      let j = i + 1 + rand 4 in
      let pair = (Printf.sprintf "p%d" i, Printf.sprintf "p%d" j) in
      if rand 3 = 0 then
        Store.Clear_preference { rule = fst pair; over = snd pair }
      else Store.Set_preference { rule = fst pair; over = snd pair }
    | _ ->
      incr fresh;
      Store.Load
        { src =
            Printf.sprintf "component l%d { w(%d). v(X) :- w(X). }" !fresh
              (rand 10)
        }

let test_differential_replay () =
  let rounds = max 3 (iters / 100) in
  for round = 1 to rounds do
    let dir = fresh_dir () in
    let snapshot_every = if rand 2 = 0 then 0 else 4 in
    let p, store, _ = P.open_dir (config ~snapshot_every dir) in
    let mirror = Store.create () in
    for _ = 1 to 40 do
      let m = gen_mutation store in
      Store.apply store m;
      Store.apply mirror m;
      P.append p m
    done;
    if rand 2 = 0 then ignore (P.snapshot p : int);
    let before = repr store in
    Alcotest.(check string)
      (Printf.sprintf "round %d: mirror agrees" round)
      before (repr mirror);
    P.close p;
    let p2, store2, r = P.open_dir (config dir) in
    Alcotest.(check string)
      (Printf.sprintf "round %d: replay(wal) = store" round)
      before (repr store2);
    Alcotest.(check int)
      (Printf.sprintf "round %d: sequence intact" round)
      40 r.P.seq;
    P.close p2;
    rm_rf dir
  done

(* ------------------------------------------------------------------ *)
(* Replication support: tail / group commit / point-in-time recovery   *)
(* ------------------------------------------------------------------ *)

(* Decode a [P.tail] payload back to mutations the way a replica does. *)
let unpack_tail raw =
  let rec go pos acc =
    match R.unframe raw ~pos with
    | R.End -> List.rev acc
    | R.Torn d -> Alcotest.failf "torn shipped record: %s" d
    | R.Frame { payload; next } -> (
      match R.decode_mutation payload with
      | Ok m -> go next (m :: acc)
      | Error d -> Alcotest.failf "undecodable shipped record: %s" d)
  in
  go 0 []

let reprs ms = String.concat "\n---\n" (List.map mutation_repr ms)

let test_tail () =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  List.iter (apply_and_log p store) sample_mutations;
  let n = List.length sample_mutations in
  (* full history from 0 *)
  (match P.tail p ~from:0 ~max:100 with
  | Error (`Too_old _) -> Alcotest.fail "full tail reported too old"
  | Ok (raw, count) ->
    Alcotest.(check int) "all records shipped" n count;
    Alcotest.(check string) "bytes decode to the history"
      (reprs sample_mutations)
      (reprs (unpack_tail raw)));
  (* a mid-stream suffix, capped *)
  (match P.tail p ~from:3 ~max:2 with
  | Error (`Too_old _) -> Alcotest.fail "suffix reported too old"
  | Ok (raw, count) ->
    Alcotest.(check int) "max respected" 2 count;
    Alcotest.(check string) "records 4 and 5"
      (reprs [ List.nth sample_mutations 3; List.nth sample_mutations 4 ])
      (reprs (unpack_tail raw)));
  (* caught up: nothing past seq *)
  (match P.tail p ~from:n ~max:100 with
  | Ok ("", 0) -> ()
  | Ok _ -> Alcotest.fail "caught-up tail shipped bytes"
  | Error (`Too_old _) -> Alcotest.fail "caught-up tail reported too old");
  (* a snapshot rolls the log onto a new segment; the tail must chain
     across the boundary *)
  ignore (P.snapshot p : int);
  apply_and_log p store (Store.Add_rule
    { obj = "extra"; rule = Helpers.rule "t(9)." });
  (match P.tail p ~from:(n - 2) ~max:100 with
  | Error (`Too_old _) -> Alcotest.fail "cross-segment tail too old"
  | Ok (raw, count) ->
    Alcotest.(check int) "crosses the segment boundary" 3 count;
    Alcotest.(check int) "all three decode" 3
      (List.length (unpack_tail raw)));
  (* compaction drops the early segments: an old position is refused
     with the oldest retained base *)
  ignore (P.compact p : int * int);
  (match P.tail p ~from:0 ~max:100 with
  | Error (`Too_old base) ->
    Alcotest.(check int) "oldest base reported" (n + 1) base
  | Ok _ -> Alcotest.fail "compacted range shipped");
  (match P.tail p ~from:(P.seq p) ~max:100 with
  | Ok (_, 0) -> ()
  | _ -> Alcotest.fail "tip unavailable after compaction");
  P.close p;
  rm_rf dir

let test_group_commit () =
  let dir = fresh_dir () in
  let p, store, _ =
    P.open_dir { P.dir; fsync = true; snapshot_every = 0; group_commit_ms = 2 }
  in
  let lock = Mutex.create () in
  let mirror = Store.create () in
  let writer k () =
    for i = 1 to 25 do
      let m =
        Store.Add_rule
          { obj = "extra";
            rule = Helpers.rule (Printf.sprintf "gc(%d,%d)." k i)
          }
      in
      Mutex.lock lock;
      Store.apply store m;
      Store.apply mirror m;
      P.append p m;
      Mutex.unlock lock;
      (* ack-after-durable: each writer waits for a (shared) fsync *)
      P.wait_durable p
    done
  in
  apply_and_log p store (List.nth sample_mutations 6);
  Store.apply mirror (List.nth sample_mutations 6);
  P.wait_durable p;
  let threads = List.init 4 (fun k -> Thread.create (writer k) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "all appends sequenced" 101 (P.seq p);
  let before = repr store in
  Alcotest.(check string) "mirror agrees" before (repr mirror);
  P.close p;
  let p2, store2, r = P.open_dir (config dir) in
  Alcotest.(check int) "reopen sees every record" 101 r.P.seq;
  Alcotest.(check string) "replay reproduces the store" before (repr store2);
  P.close p2;
  rm_rf dir

let test_pitr () =
  let dir = fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  let mirror = Store.create () in
  List.iteri
    (fun i m ->
      apply_and_log p store m;
      if i < 4 then Store.apply mirror m)
    sample_mutations;
  P.close p;
  (* rewind to sequence 4: the state is the 4-mutation prefix and the
     directory is permanently trimmed *)
  let p2, store2, r = P.open_dir ~stop_at:4 (config dir) in
  Alcotest.(check int) "rewound to 4" 4 r.P.seq;
  Alcotest.(check bool) "cut reported" true (r.P.cut <> None);
  Alcotest.(check bool) "not confused with damage" true (r.P.torn = None);
  Alcotest.(check string) "state is the prefix" (repr mirror) (repr store2);
  P.close p2;
  (* the rewind is sticky: a plain reopen stays at 4 with no cut *)
  let p3, store3, r3 = P.open_dir (config dir) in
  Alcotest.(check int) "trim survived reopen" 4 r3.P.seq;
  Alcotest.(check bool) "second recovery is clean" true (r3.P.cut = None);
  Alcotest.(check string) "state stable" (repr mirror) (repr store3);
  (* rewinding past the end is a no-op recovery *)
  P.close p3;
  let p4, _, r4 = P.open_dir ~stop_at:99 (config dir) in
  Alcotest.(check int) "stop_at past the end" 4 r4.P.seq;
  Alcotest.(check bool) "no cut" true (r4.P.cut = None);
  (* compaction forgets early history: a stop_at below the only
     snapshot is unrecoverable, and typed as such *)
  ignore (P.compact p4 : int * int);
  P.close p4;
  (match P.open_dir ~stop_at:2 (config dir) with
  | _ -> Alcotest.fail "rewind below the oldest snapshot succeeded"
  | exception Ordered.Diag.Error (Ordered.Diag.Invalid_input _) -> ());
  rm_rf dir

let suite =
  [ Alcotest.test_case "crc32 check vector" `Quick test_crc;
    Alcotest.test_case "mutation codec round-trip" `Quick
      test_mutation_roundtrip;
    Alcotest.test_case "frame walk round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "corruption fuzz never raises" `Quick
      test_corruption_fuzz;
    Alcotest.test_case "snapshot codec round-trip" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "torn WAL tail read and truncate" `Quick
      test_wal_torn_tail;
    Alcotest.test_case "reopen replays the log" `Quick test_reopen_matches;
    Alcotest.test_case "snapshot resume and corrupt fallback" `Quick
      test_snapshot_and_chain;
    Alcotest.test_case "stale temp files swept" `Quick test_tmp_sweep;
    Alcotest.test_case "auto snapshot and compaction" `Quick
      test_auto_snapshot_and_compact;
    Alcotest.test_case "unrecoverable directory is typed" `Quick
      test_unrecoverable;
    Alcotest.test_case "differential: replay equals store" `Quick
      test_differential_replay;
    Alcotest.test_case "tail ships raw records" `Quick test_tail;
    Alcotest.test_case "group commit: concurrent writers, one fsync" `Quick
      test_group_commit;
    Alcotest.test_case "point-in-time recovery" `Quick test_pitr
  ]
