(* Unit tests for the grounding substrate: builtins, safety, grounders. *)

open Logic
open Helpers
module B = Ground.Builtin
module G = Ground.Grounder

let check_term = Alcotest.check testable_term

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let test_builtin_recognition () =
  Alcotest.(check bool) "comparison is builtin" true
    (B.is_builtin_literal (lit "X > 2"));
  Alcotest.(check bool) "negated comparison is builtin" true
    (B.is_builtin_literal (lit "not X > 2"));
  Alcotest.(check bool) "ordinary atom is not" false
    (B.is_builtin_literal (lit "p(X)"));
  (* a user binary predicate named like nothing special *)
  Alcotest.(check bool) "lt/2 user predicate is not builtin" false
    (B.is_builtin_atom (Atom.make "lt" [ term "X"; term "Y" ]))

let test_eval_term_arith () =
  check_term "addition" (Term.Int 3) (B.eval_term (term "1 + 2"));
  check_term "precedence chain" (Term.Int 7) (B.eval_term (term "1 + 2 * 3"));
  check_term "nested in function" (term "f(6)") (B.eval_term (term "f(2 * 3)"));
  check_term "mod" (Term.Int 2) (B.eval_term (term "5 mod 3"));
  check_term "division truncates" (Term.Int 2) (B.eval_term (term "7 / 3"));
  check_term "unary minus" (Term.Int (-4)) (B.eval_term (term "-(2 + 2)"));
  check_term "symbolic left alone" (term "penguin + 1")
    (B.eval_term (term "penguin + 1"))

let test_eval_term_errors () =
  (match B.eval_term (term "1 / 0") with
  | exception Governor.Diag.Error (Governor.Diag.Eval_error { op = "/"; _ })
    -> ()
  | _ -> Alcotest.fail "division by zero should raise a typed Eval_error");
  (match B.eval_term (term "5 mod 0") with
  | exception Governor.Diag.Error (Governor.Diag.Eval_error { op = "mod"; _ })
    -> ()
  | _ -> Alcotest.fail "modulo by zero should raise a typed Eval_error");
  match B.eval_term (term "X + 1") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-ground eval should raise"

let test_eval_atom () =
  let ev s = B.eval_literal (lit s) in
  Alcotest.(check (option bool)) "12 > 11" (Some true) (ev "12 > 11");
  Alcotest.(check (option bool)) "12 > 14" (Some false) (ev "12 > 14");
  Alcotest.(check (option bool)) "19 > 16 + 2" (Some true) (ev "19 > 16 + 2");
  Alcotest.(check (option bool)) "negated" (Some false) (ev "not 12 > 11");
  Alcotest.(check (option bool)) "equality on symbols" (Some true) (ev "a = a");
  Alcotest.(check (option bool)) "disequality on symbols" (Some true) (ev "a != b");
  Alcotest.(check (option bool)) "order on symbols does not evaluate" None
    (ev "a < b");
  Alcotest.(check (option bool)) "le" (Some true) (ev "3 <= 3");
  Alcotest.(check (option bool)) "ge" (Some false) (ev "2 >= 3")

(* ------------------------------------------------------------------ *)
(* Safety                                                              *)
(* ------------------------------------------------------------------ *)

let test_safety () =
  Alcotest.(check bool) "safe rule" true
    (Ground.Safety.is_safe (rule "p(X) :- q(X), X > 2."));
  Alcotest.(check bool) "negative body literal binds (classical negation)" true
    (Ground.Safety.is_safe (rule "p(X) :- -q(X)."));
  Alcotest.(check bool) "head variable unbound" false
    (Ground.Safety.is_safe (rule "p(X, Y) :- q(X)."));
  Alcotest.(check bool) "builtin variable unbound" false
    (Ground.Safety.is_safe (rule "p :- X > 2."));
  Alcotest.(check bool) "non-ground fact is unsafe" false
    (Ground.Safety.is_safe (rule "p(X)."));
  Alcotest.(check (list string)) "unbound vars reported" [ "Y" ]
    (Ground.Safety.unbound_vars (rule "p(X, Y) :- q(X)."));
  Alcotest.(check int) "program check" 1
    (List.length (Ground.Safety.check (rules "p(X) :- q(X). r(Y).")))

(* ------------------------------------------------------------------ *)
(* Naive grounding                                                     *)
(* ------------------------------------------------------------------ *)

let test_naive_ground_basic () =
  let g = G.naive (rules "p(X) :- q(X). q(a). q(b).") in
  Alcotest.(check int) "instances: 2 rules + 2 facts" 4 (List.length g.G.rules);
  Alcotest.(check bool) "contains p(a) :- q(a)" true
    (List.mem (rule "p(a) :- q(a).") g.G.rules)

let test_naive_ground_builtin_filter () =
  let g = G.naive (rules "big(X) :- n(X), X > 3. n(2). n(5).") in
  (* only the X=5 instance survives, with the builtin removed *)
  Alcotest.(check bool) "surviving instance loses builtin" true
    (List.mem (rule "big(5) :- n(5).") g.G.rules);
  Alcotest.(check bool) "failing instance dropped" false
    (List.exists
       (fun r -> Rule.equal r (rule "big(2) :- n(2)."))
       g.G.rules)

let test_naive_ground_arith_normalisation () =
  let g = G.naive (rules "p(X + 1) :- n(X). n(2).") in
  Alcotest.(check bool) "arithmetic evaluated in heads" true
    (List.mem (rule "p(3) :- n(2).") g.G.rules)

let test_naive_ground_unsafe_fact () =
  (* The OV construction grounds non-ground negative facts over the whole
     universe. *)
  let g = G.naive (rules "-p(X). q(a). q(b).") in
  Alcotest.(check bool) "CWA fact expands" true
    (List.mem (rule "-p(a).") g.G.rules && List.mem (rule "-p(b).") g.G.rules)

let test_naive_ground_depth () =
  let src = rules "p(f(a)). q(X) :- p(X)." in
  let g0 = G.naive ~depth:0 src in
  let g1 = G.naive ~depth:1 src in
  (* depth 0: universe {a}; the fact p(f(a)) is already ground and kept. *)
  Alcotest.(check bool) "fact survives at depth 0" true
    (List.mem (rule "p(f(a)).") g0.G.rules);
  Alcotest.(check bool) "depth 0 misses q(f(a)) :- p(f(a))" false
    (List.mem (rule "q(f(a)) :- p(f(a)).") g0.G.rules);
  Alcotest.(check bool) "depth 1 has it" true
    (List.mem (rule "q(f(a)) :- p(f(a)).") g1.G.rules)

let test_finalize_instance () =
  Alcotest.(check (option testable_rule)) "true builtin removed"
    (Some (rule "p(a) :- q(a)."))
    (G.finalize_instance (rule "p(a) :- q(a), 3 > 2."));
  Alcotest.(check (option testable_rule)) "false builtin kills" None
    (G.finalize_instance (rule "p(a) :- q(a), 2 > 3."));
  Alcotest.(check (option testable_rule)) "unevaluable comparison kills" None
    (G.finalize_instance (rule "p(a) :- a < b."))

(* ------------------------------------------------------------------ *)
(* Relevance-driven grounding                                          *)
(* ------------------------------------------------------------------ *)

let test_relevant_prunes () =
  let src = rules "p(X) :- q(X). q(a). r(b)." in
  let naive = G.naive src in
  let relevant = G.relevant src in
  Alcotest.(check bool) "relevant subset of naive" true
    (List.for_all (fun r -> List.mem r naive.G.rules) relevant.G.rules);
  Alcotest.(check bool) "p(a) kept" true
    (List.mem (rule "p(a) :- q(a).") relevant.G.rules);
  Alcotest.(check bool) "p(b) pruned (q(b) underivable)" false
    (List.mem (rule "p(b) :- q(b).") relevant.G.rules);
  Alcotest.(check bool) "naive has p(b)" true
    (List.mem (rule "p(b) :- q(b).") naive.G.rules)

let test_relevant_classical_negative_support () =
  (* Classical mode: a negative body literal needs a derived negative
     head. *)
  let src = rules "-q(a). p(X) :- -q(X)." in
  let g = G.relevant src in
  Alcotest.(check bool) "p(a) supported by -q(a)" true
    (List.mem (rule "p(a) :- -q(a).") g.G.rules)

let test_relevant_naf_mode () =
  (* NAF mode: negative literals are assumed satisfiable. *)
  let src = rules "p(X) :- q(X), -r(X). q(a)." in
  let classical = G.relevant src in
  let naf = G.relevant ~naf:true src in
  Alcotest.(check bool) "classical prunes (no -r derivable)" false
    (List.mem (rule "p(a) :- q(a), -r(a).") classical.G.rules);
  Alcotest.(check bool) "naf keeps" true
    (List.mem (rule "p(a) :- q(a), -r(a).") naf.G.rules)

let test_relevant_recursive () =
  let src =
    rules
      "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). \
       parent(a, b). parent(b, c)."
  in
  let g = G.relevant src in
  Alcotest.(check bool) "transitive instance found" true
    (List.mem (rule "anc(a, c) :- parent(a, b), anc(b, c).") g.G.rules);
  (* No instance joins unreachable pairs in the first position. *)
  Alcotest.(check bool) "no unsupported join" false
    (List.exists
       (fun r -> Rule.equal r (rule "anc(c, a) :- parent(c, a)."))
       g.G.rules)

let test_relevant_equals_naive_fixpoint () =
  (* For a positive program the minimal models computed from either
     grounding agree. *)
  let src =
    rules
      "e(1, 2). e(2, 3). e(3, 4). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), \
       t(Z, Y)."
  in
  let m g =
    let p = Datalog.Nprog.of_rules g.G.rules in
    Datalog.Nprog.decode_mask p (Datalog.Consequence.lfp p)
  in
  Alcotest.(check bool) "same minimal model" true
    (Atom.Set.equal (m (G.naive src)) (m (G.relevant src)))

let test_relevant_ordered_caveat () =
  (* The documented counterexample: dropping a rule with an underivable
     body changes the least ordered model, because the dropped rule would
     still have suppressed a contradictor. *)
  let prog = program "q :- q. -q. p :- q." |> ignore in
  ignore prog;
  let rules_ = rules "q :- q. p :- q." in
  let ov = Ordered.Bridge.ov rules_ in
  let id = Ordered.Program.component_id_exn ov "main" in
  let naive_m =
    Ordered.Vfix.least_model (Ordered.Gop.ground ~grounder:`Naive ov id)
  in
  let rel_m =
    Ordered.Vfix.least_model (Ordered.Gop.ground ~grounder:`Relevant ov id)
  in
  Alcotest.(check bool) "least models differ" false
    (Interp.equal naive_m rel_m);
  (* naive: q stays undefined (the CWA fact is overruled by the non-blocked
     self-loop); relevant: the self-loop is pruned so -q is derived. *)
  Alcotest.check testable_value "naive: q undefined" Interp.Undefined
    (Interp.value_lit naive_m (lit "q"));
  Alcotest.check testable_value "relevant: q false" Interp.False
    (Interp.value_lit rel_m (lit "q"))

let suite =
  [ Alcotest.test_case "builtin recognition" `Quick test_builtin_recognition;
    Alcotest.test_case "arithmetic evaluation" `Quick test_eval_term_arith;
    Alcotest.test_case "arithmetic errors" `Quick test_eval_term_errors;
    Alcotest.test_case "comparison evaluation" `Quick test_eval_atom;
    Alcotest.test_case "safety analysis" `Quick test_safety;
    Alcotest.test_case "naive grounding" `Quick test_naive_ground_basic;
    Alcotest.test_case "builtin filtering" `Quick test_naive_ground_builtin_filter;
    Alcotest.test_case "arithmetic normalisation" `Quick
      test_naive_ground_arith_normalisation;
    Alcotest.test_case "unsafe facts expand over the universe" `Quick
      test_naive_ground_unsafe_fact;
    Alcotest.test_case "depth bound" `Quick test_naive_ground_depth;
    Alcotest.test_case "finalize_instance" `Quick test_finalize_instance;
    Alcotest.test_case "relevant grounding prunes" `Quick test_relevant_prunes;
    Alcotest.test_case "relevant: classical negative support" `Quick
      test_relevant_classical_negative_support;
    Alcotest.test_case "relevant: naf mode" `Quick test_relevant_naf_mode;
    Alcotest.test_case "relevant: recursion" `Quick test_relevant_recursive;
    Alcotest.test_case "relevant = naive on positive fixpoints" `Quick
      test_relevant_equals_naive_fixpoint;
    Alcotest.test_case "relevant grounding caveat on ordered programs" `Quick
      test_relevant_ordered_caveat
  ]

let test_max_instances_guard () =
  let src = rules "t(X, Y, Z) :- n(X), n(Y), n(Z). n(1). n(2). n(3). n(4)." in
  (match G.naive ~max_instances:10 src with
  | exception
      Governor.Diag.Error
        (Governor.Diag.Grounding_overflow { cap = 10; produced; _ }) ->
    Alcotest.(check bool) "produced exceeds cap" true (produced > 10)
  | _ -> Alcotest.fail "blow-up guard should trigger");
  (* a generous budget passes *)
  ignore (G.naive ~max_instances:100 src)

let suite =
  suite
  @ [ Alcotest.test_case "max_instances guard" `Quick test_max_instances_guard ]
