(* Unit tests for the logic substrate: terms, atoms, literals,
   substitutions, unification, interpretations, Herbrand machinery. *)

open Logic
open Helpers

let check_term = Alcotest.check testable_term
let check_lit = Alcotest.check testable_literal

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let test_term_vars () =
  Alcotest.(check (list string))
    "vars in first-occurrence order" [ "X"; "Y" ]
    (Term.vars (term "f(X, g(Y, X), 3)"));
  Alcotest.(check (list string)) "ground term has no vars" []
    (Term.vars (term "f(a, 3)"))

let test_term_ground () =
  Alcotest.(check bool) "ground" true (Term.is_ground (term "f(a, g(b), 3)"));
  Alcotest.(check bool) "non-ground" false (Term.is_ground (term "f(a, X)"))

let test_term_size_depth () =
  Alcotest.(check int) "size" 5 (Term.size (term "f(a, g(b), 3)"));
  Alcotest.(check int) "depth constant" 0 (Term.depth (term "a"));
  Alcotest.(check int) "depth nested" 3 (Term.depth (term "f(g(h(a)))"))

let test_term_compare_total () =
  let ts = [ term "X"; term "3"; term "a"; term "f(a)"; term "f(a, b)" ] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let c12 = Term.compare t1 t2 and c21 = Term.compare t2 t1 in
          Alcotest.(check bool) "antisymmetric" true (compare c12 0 = compare 0 c21))
        ts)
    ts;
  Alcotest.(check bool) "equal reflexive" true (Term.equal (term "f(X, a)") (term "f(X, a)"))

let test_term_rename () =
  check_term "rename" (term "f(X1, g(Y1))")
    (Term.rename (fun v -> v ^ "1") (term "f(X, g(Y))"))

let test_term_pp_roundtrip () =
  List.iter
    (fun s ->
      let t = term s in
      check_term s t (term (Term.to_string t)))
    [ "f(X, g(Y, a), 3)"; "a"; "X"; "42" ]

(* ------------------------------------------------------------------ *)
(* Atoms and literals                                                  *)
(* ------------------------------------------------------------------ *)

let test_atom_basic () =
  let a = Atom.make "p" [ term "X"; term "a" ] in
  Alcotest.(check int) "arity" 2 (Atom.arity a);
  Alcotest.(check (list string)) "vars" [ "X" ] (Atom.vars a);
  Alcotest.(check string) "pp" "p(X, a)" (Atom.to_string a);
  Alcotest.(check string) "prop pp" "q" (Atom.to_string (Atom.prop "q"))

let test_atom_infix_pp () =
  Alcotest.(check string) "comparison prints infix" "X > Y + 2"
    (Atom.to_string (Atom.make ">" [ term "X"; term "Y + 2" ]))

let test_literal_complement () =
  let l = lit "p(a)" in
  check_lit "double negation" l (Literal.neg (Literal.neg l));
  Alcotest.(check bool) "complementary" true
    (Literal.complementary l (lit "-p(a)"));
  Alcotest.(check bool) "not complementary (different atom)" false
    (Literal.complementary l (lit "-p(b)"));
  Alcotest.(check bool) "not complementary (same sign)" false
    (Literal.complementary l (lit "p(a)"))

let test_literal_set_consistency () =
  let s = Literal.Set.of_list [ lit "p(a)"; lit "-p(b)"; lit "q" ] in
  Alcotest.(check bool) "consistent" true (Literal.Set.consistent s);
  let s' = Literal.Set.add (lit "-p(a)") s in
  Alcotest.(check bool) "inconsistent" false (Literal.Set.consistent s');
  Alcotest.(check int) "positives" 2 (Literal.Set.cardinal (Literal.Set.positives s));
  Alcotest.(check int) "negatives" 1 (Literal.Set.cardinal (Literal.Set.negatives s))

(* ------------------------------------------------------------------ *)
(* Substitutions                                                       *)
(* ------------------------------------------------------------------ *)

let test_subst_apply () =
  let s = Subst.of_list [ ("X", term "a"); ("Y", term "f(X)") ] in
  check_term "apply" (term "g(a, f(a))") (Subst.apply_term s (term "g(X, Y)"))

let test_subst_bind_conflict () =
  let s = Subst.singleton "X" (term "a") in
  Alcotest.check_raises "conflicting bind"
    (Invalid_argument "Subst.bind: X already bound") (fun () ->
      ignore (Subst.bind "X" (term "b") s));
  (* Rebinding to the same term is fine. *)
  ignore (Subst.bind "X" (term "a") s)

let test_subst_compose () =
  let s1 = Subst.singleton "X" (term "f(Y)") in
  let s2 = Subst.singleton "Y" (term "a") in
  let c = Subst.compose s1 s2 in
  check_term "compose applies s2 after s1" (term "f(a)")
    (Subst.apply_term c (term "X"));
  check_term "compose keeps s2" (term "a") (Subst.apply_term c (term "Y"))

(* ------------------------------------------------------------------ *)
(* Unification                                                         *)
(* ------------------------------------------------------------------ *)

let test_unify_basic () =
  match Unify.term (term "f(X, b)") (term "f(a, Y)") with
  | None -> Alcotest.fail "should unify"
  | Some s ->
    check_term "X" (term "a") (Subst.apply_term s (term "X"));
    check_term "Y" (term "b") (Subst.apply_term s (term "Y"))

let test_unify_occurs_check () =
  Alcotest.(check bool) "occurs check" true
    (Unify.term (term "X") (term "f(X)") = None)

let test_unify_clash () =
  Alcotest.(check bool) "constant clash" true
    (Unify.term (term "f(a)") (term "f(b)") = None);
  Alcotest.(check bool) "arity clash" true
    (Unify.term (term "f(a)") (term "f(a, b)") = None);
  Alcotest.(check bool) "int vs sym" true (Unify.term (term "3") (term "a") = None)

let test_unify_shared_var () =
  match Unify.term (term "f(X, X)") (term "f(a, Y)") with
  | None -> Alcotest.fail "should unify"
  | Some s -> check_term "Y via X" (term "a") (Subst.apply_term s (term "Y"))

let test_match_one_way () =
  (match Unify.match_term (term "f(X)") (term "f(g(Y))") with
  | None -> Alcotest.fail "should match"
  | Some s -> check_term "X bound" (term "g(Y)") (Subst.apply_term s (term "X")));
  Alcotest.(check bool) "subject vars are rigid" true
    (Unify.match_term (term "f(a)") (term "f(X)") = None)

let test_unify_literal_polarity () =
  Alcotest.(check bool) "opposite polarities never unify" true
    (Unify.literal (lit "p(X)") (lit "-p(a)") = None);
  Alcotest.(check bool) "same polarity unifies" true
    (Unify.literal (lit "-p(X)") (lit "-p(a)") <> None)

(* ------------------------------------------------------------------ *)
(* Interpretations                                                     *)
(* ------------------------------------------------------------------ *)

let test_interp_values () =
  let i = interp [ "p(a)"; "-q(b)" ] in
  Alcotest.check testable_value "true" Interp.True (Interp.value_lit i (lit "p(a)"));
  Alcotest.check testable_value "neg of true" Interp.False
    (Interp.value_lit i (lit "-p(a)"));
  Alcotest.check testable_value "false" Interp.False
    (Interp.value_lit i (lit "q(b)"));
  Alcotest.check testable_value "undefined" Interp.Undefined
    (Interp.value_lit i (lit "r"))

let test_interp_consistency () =
  Alcotest.check_raises "inconsistent add"
    (Invalid_argument "Interp.set: inconsistent assignment to p(a)")
    (fun () -> ignore (Interp.add_lit (interp [ "p(a)" ]) (lit "-p(a)")));
  Alcotest.(check bool) "of_literals_opt" true
    (Interp.of_literals_opt [ lit "p"; lit "-p" ] = None)

let test_interp_set_ops () =
  let i = interp [ "p"; "-q" ] and j = interp [ "p"; "-q"; "r" ] in
  Alcotest.(check bool) "subset" true (Interp.subset i j);
  Alcotest.(check bool) "not superset" false (Interp.subset j i);
  (match Interp.union i (interp [ "r" ]) with
  | Some u -> Alcotest.check testable_interp "union" j u
  | None -> Alcotest.fail "union should exist");
  Alcotest.(check bool) "union conflict" true
    (Interp.union i (interp [ "q" ]) = None);
  Alcotest.check testable_interp "diff" (interp [ "r" ]) (Interp.diff j i)

let test_interp_conj () =
  let i = interp [ "p"; "-q" ] in
  Alcotest.check testable_value "conj true" Interp.True
    (Interp.value_conj i [ lit "p"; lit "-q" ]);
  Alcotest.check testable_value "conj false beats undefined" Interp.False
    (Interp.value_conj i [ lit "q"; lit "r" ]);
  Alcotest.check testable_value "conj undefined" Interp.Undefined
    (Interp.value_conj i [ lit "p"; lit "r" ]);
  Alcotest.check testable_value "empty conj is true" Interp.True
    (Interp.value_conj i [])

let test_interp_total_undef () =
  let base = [ Atom.prop "p"; Atom.prop "q"; Atom.prop "r" ] in
  let i = interp [ "p"; "-q" ] in
  Alcotest.(check bool) "not total" false (Interp.is_total i ~base);
  Alcotest.check (Alcotest.list testable_atom) "undefined atoms"
    [ Atom.prop "r" ]
    (Interp.undefined_atoms i ~base);
  Alcotest.(check bool) "total" true
    (Interp.is_total (Interp.set i (Atom.prop "r") false) ~base)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_rule_classification () =
  Alcotest.(check bool) "fact" true (Rule.is_fact (rule "p(a)."));
  Alcotest.(check bool) "positive" true (Rule.is_positive (rule "p :- q, r."));
  Alcotest.(check bool) "seminegative" true
    (Rule.is_seminegative (rule "p :- -q."));
  Alcotest.(check bool) "seminegative is not positive" false
    (Rule.is_positive (rule "p :- -q."));
  Alcotest.(check bool) "negative head" false
    (Rule.is_seminegative (rule "-p :- q."))

let test_rule_vars_predicates () =
  let r = rule "p(X, Y) :- q(Y, Z), -r(X)." in
  Alcotest.(check (list string)) "vars head-first" [ "X"; "Y"; "Z" ] (Rule.vars r);
  Alcotest.(check (list (pair string int)))
    "predicates" [ ("p", 2); ("q", 2); ("r", 1) ] (Rule.predicates r)

let test_rule_apply () =
  let r = rule "p(X) :- q(X, Y)." in
  let s = Subst.of_list [ ("X", term "a"); ("Y", term "b") ] in
  Alcotest.check testable_rule "apply" (rule "p(a) :- q(a, b).") (Rule.apply s r)

(* ------------------------------------------------------------------ *)
(* Herbrand                                                            *)
(* ------------------------------------------------------------------ *)

let test_herbrand_signature () =
  let sg = Herbrand.signature_of_rules (rules "p(a, 1) :- q(f(b)). r.") in
  Alcotest.(check int) "constants" 3 (List.length sg.Herbrand.constants);
  Alcotest.(check (list (pair string int))) "functions" [ ("f", 1) ]
    sg.Herbrand.functions;
  Alcotest.(check (list (pair string int)))
    "predicates" [ ("p", 2); ("q", 1); ("r", 0) ] sg.Herbrand.predicates

let test_herbrand_default_constant () =
  let sg = Herbrand.signature_of_rules (rules "p(X) :- q(X).") in
  Alcotest.(check (list testable_term)) "fresh constant" [ Term.Sym "a0" ]
    sg.Herbrand.constants

let test_herbrand_universe_depth () =
  let sg = Herbrand.signature_of_rules (rules "p(f(a)).") in
  Alcotest.(check int) "depth 0" 1 (List.length (Herbrand.universe ~depth:0 sg));
  (* depth 1: a, f(a) *)
  Alcotest.(check int) "depth 1" 2 (List.length (Herbrand.universe ~depth:1 sg));
  (* depth 2: a, f(a), f(f(a)) *)
  Alcotest.(check int) "depth 2" 3 (List.length (Herbrand.universe ~depth:2 sg))

let test_herbrand_base () =
  let sg = Herbrand.signature_of_rules (rules "p(a) :- q(a, b).") in
  (* p/1 over {a, b} = 2 atoms; q/2 over {a, b} = 4 atoms *)
  Alcotest.(check int) "base size" 6 (List.length (Herbrand.base sg))

let test_instantiations () =
  let univ = [ term "a"; term "b"; term "c" ] in
  Alcotest.(check int) "3^2 substitutions" 9
    (Seq.length (Herbrand.instantiations univ [ "X"; "Y" ]));
  Alcotest.(check int) "empty vars: one (empty) substitution" 1
    (Seq.length (Herbrand.instantiations univ []))

let suite =
  [ Alcotest.test_case "term vars" `Quick test_term_vars;
    Alcotest.test_case "term groundness" `Quick test_term_ground;
    Alcotest.test_case "term size and depth" `Quick test_term_size_depth;
    Alcotest.test_case "term compare is a total order" `Quick test_term_compare_total;
    Alcotest.test_case "term rename" `Quick test_term_rename;
    Alcotest.test_case "term pp round-trip" `Quick test_term_pp_roundtrip;
    Alcotest.test_case "atom basics" `Quick test_atom_basic;
    Alcotest.test_case "atom infix printing" `Quick test_atom_infix_pp;
    Alcotest.test_case "literal complement" `Quick test_literal_complement;
    Alcotest.test_case "literal set consistency" `Quick test_literal_set_consistency;
    Alcotest.test_case "subst apply" `Quick test_subst_apply;
    Alcotest.test_case "subst bind conflict" `Quick test_subst_bind_conflict;
    Alcotest.test_case "subst compose" `Quick test_subst_compose;
    Alcotest.test_case "unify basic" `Quick test_unify_basic;
    Alcotest.test_case "unify occurs check" `Quick test_unify_occurs_check;
    Alcotest.test_case "unify clash" `Quick test_unify_clash;
    Alcotest.test_case "unify shared variable" `Quick test_unify_shared_var;
    Alcotest.test_case "one-way matching" `Quick test_match_one_way;
    Alcotest.test_case "literal unification respects polarity" `Quick
      test_unify_literal_polarity;
    Alcotest.test_case "interp values" `Quick test_interp_values;
    Alcotest.test_case "interp consistency" `Quick test_interp_consistency;
    Alcotest.test_case "interp set operations" `Quick test_interp_set_ops;
    Alcotest.test_case "interp conjunction value" `Quick test_interp_conj;
    Alcotest.test_case "interp totality" `Quick test_interp_total_undef;
    Alcotest.test_case "rule classification" `Quick test_rule_classification;
    Alcotest.test_case "rule vars and predicates" `Quick test_rule_vars_predicates;
    Alcotest.test_case "rule apply" `Quick test_rule_apply;
    Alcotest.test_case "herbrand signature" `Quick test_herbrand_signature;
    Alcotest.test_case "herbrand default constant" `Quick
      test_herbrand_default_constant;
    Alcotest.test_case "herbrand universe depth" `Quick test_herbrand_universe_depth;
    Alcotest.test_case "herbrand base" `Quick test_herbrand_base;
    Alcotest.test_case "herbrand instantiations" `Quick test_instantiations
  ]
