(* Section 3: the OV / EV bridges to classical logic programming
   (Example 6, Example 7, unit instances of Propositions 3-5 and
   Corollary 1; the property-based versions are in Test_props). *)

open Logic
open Helpers
module B = Ordered.Bridge
module N = Datalog.Nprog

let nprog src =
  N.of_rules (Ground.Grounder.naive (rules src)).Ground.Grounder.rules

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_ov_construction () =
  let c = rules "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). parent(a, b)." in
  let ov = B.ov c in
  Alcotest.(check (list string)) "two components" [ "main"; "cwa" ]
    (Array.to_list (Ordered.Program.component_names ov));
  Alcotest.(check bool) "main < cwa" true
    (Ordered.Poset.lt (Ordered.Program.poset ov)
       (Ordered.Program.component_id_exn ov "main")
       (Ordered.Program.component_id_exn ov "cwa"));
  (* Example 6: the CWA component is the reduced form: one non-ground
     negative fact per predicate. *)
  let cwa = Ordered.Program.rules_of ov (Ordered.Program.component_id_exn ov "cwa") in
  Alcotest.(check int) "reduced CWA: 2 predicates" 2 (List.length cwa);
  Alcotest.(check bool) "-anc(X0, X1) present" true
    (List.exists (fun r -> Rule.equal r (rule "-anc(X0, X1).")) cwa)

let test_ev_construction () =
  let c = rules "p(a). q(X) :- p(X)." in
  let ev = B.ev c in
  let main = Ordered.Program.rules_of ev (Ordered.Program.component_id_exn ev "main") in
  Alcotest.(check bool) "reflexive rule for p" true
    (List.exists (fun r -> Rule.equal r (rule "p(X0) :- p(X0).")) main);
  Alcotest.(check bool) "reflexive rule for q" true
    (List.exists (fun r -> Rule.equal r (rule "q(X0) :- q(X0).")) main)

let test_builtins_excluded_from_cwa () =
  let c = rules "p(X) :- q(X), X > 1. q(2)." in
  let ov = B.ov c in
  let cwa = Ordered.Program.rules_of ov (Ordered.Program.component_id_exn ov "cwa") in
  Alcotest.(check int) "no CWA rule for >" 2 (List.length cwa)

(* ------------------------------------------------------------------ *)
(* Example 6: ancestor                                                 *)
(* ------------------------------------------------------------------ *)

let ancestor_src =
  "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). \
   parent(a, b). parent(b, c)."

let test_example6_ancestor () =
  let g = B.ground_ov (rules ancestor_src) in
  let m = Ordered.Vfix.least_model g in
  (* the least model is total and matches the classical minimal model with
     CWA *)
  List.iter
    (fun (q, expected) ->
      Alcotest.check testable_value q expected (Interp.value_lit m (lit q)))
    [ ("anc(a, b)", Interp.True); ("anc(a, c)", Interp.True);
      ("anc(b, c)", Interp.True); ("anc(c, a)", Interp.False);
      ("anc(a, a)", Interp.False); ("parent(a, c)", Interp.False)
    ];
  Alcotest.(check bool) "total" true (Ordered.Exhaustive.is_total g m)

let test_example6_matches_datalog () =
  let g = B.ground_ov (rules ancestor_src) in
  let m = Ordered.Vfix.least_model g in
  let p = nprog ancestor_src in
  let classical = N.decode_mask p (Datalog.Consequence.lfp p) in
  (* every classically-derived atom is true in the ordered least model,
     and every other program atom is false (explicit CWA) *)
  Array.iter
    (fun a ->
      let expected =
        if Atom.Set.mem a classical then Interp.True else Interp.False
      in
      Alcotest.check testable_value (Atom.to_string a) expected
        (Interp.value m a))
    p.N.atoms

(* ------------------------------------------------------------------ *)
(* Example 7: p :- -p                                                  *)
(* ------------------------------------------------------------------ *)

let test_example7 () =
  let c = rules "p :- -p." in
  (* {p} is a 3-valued model of C ... *)
  let np = nprog "p :- -p." in
  Alcotest.(check bool) "{p} 3-valued model of C" true
    (Datalog.Threeval.is_three_valued_model np (interp [ "p" ]));
  (* ... but not a model of OV(C) in C ... *)
  let gov = B.ground_ov c in
  Alcotest.(check bool) "{p} not a model of OV(C)" false
    (Ordered.Model.is_model gov (interp [ "p" ]));
  (* ... while it is a model of EV(C) (Proposition 5a). *)
  let gev = B.ground_ev c in
  Alcotest.(check bool) "{p} is a model of EV(C)" true
    (Ordered.Model.is_model gev (interp [ "p" ]))

(* ------------------------------------------------------------------ *)
(* Corollary 1 on a classic instance                                   *)
(* ------------------------------------------------------------------ *)

let test_corollary1_even_loop () =
  let src = "p :- -q. q :- -p." in
  let g = B.ground_ov (rules src) in
  let ordered_stables = Ordered.Budget.value (Ordered.Stable.stable_models g) in
  Alcotest.check testable_interp_set "stable models via OV"
    [ interp [ "p"; "-q" ]; interp [ "q"; "-p" ] ]
    ordered_stables;
  let sz = Datalog.Threeval.stable_models (nprog src) in
  Alcotest.check testable_interp_set "SZ stable models agree" sz ordered_stables

let test_prop5d_ev_stables () =
  let src = "p :- -q. q :- -p." in
  Alcotest.check testable_interp_set "OV and EV stable models coincide"
    (Ordered.Budget.value (Ordered.Stable.stable_models (B.ground_ov (rules src))))
    (Ordered.Budget.value (Ordered.Stable.stable_models (B.ground_ev (rules src))))

let suite =
  [ Alcotest.test_case "OV construction" `Quick test_ov_construction;
    Alcotest.test_case "EV construction" `Quick test_ev_construction;
    Alcotest.test_case "builtins excluded from CWA" `Quick
      test_builtins_excluded_from_cwa;
    Alcotest.test_case "Example 6: ancestor via OV" `Quick test_example6_ancestor;
    Alcotest.test_case "Example 6: agrees with classical datalog" `Quick
      test_example6_matches_datalog;
    Alcotest.test_case "Example 7: p :- -p" `Quick test_example7;
    Alcotest.test_case "Corollary 1: even loop" `Quick test_corollary1_even_loop;
    Alcotest.test_case "Proposition 5(d): EV stables" `Quick test_prop5d_ev_stables
  ]
