The query server: a Unix-domain socket speaking line-oriented JSON,
driven end to end with olp call.  Boot in the background (the socket
path is relative — cram sandboxes nest deep enough to overflow
sun_path otherwise):

  $ olp serve --socket s.sock --workers 2 > server.log 2>&1 &

Load a knowledge base over the wire (--retry rides out the boot):

  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"component top { fly(X) :- bird(X). bird(tweety). bird(penguin). } component bot extends top { -fly(penguin). }"}'
  {"status":"ok","objects":["top","bot"]}

Three-valued queries from the exception object's viewpoint:

  $ olp call --socket s.sock '{"op":"query","obj":"bot","lit":"fly(tweety)"}' '{"op":"query","obj":"bot","lit":"fly(penguin)"}'
  {"status":"ok","value":"true"}
  {"status":"ok","value":"false"}

Model enumeration, twice: the repeat is answered from the session
cache (asserted through stats below) and is byte-identical:

  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable"}'
  {"status":"ok","kind":"stable","count":1,"models":[["bird(penguin)","bird(tweety)","-fly(penguin)","fly(tweety)"]]}
  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable"}'
  {"status":"ok","kind":"stable","count":1,"models":[["bird(penguin)","bird(tweety)","-fly(penguin)","fly(tweety)"]]}

A request-level budget that trips comes back as a structured partial
(exit code 3), not a dropped connection — the key is uncached, so the
cache cannot answer it first:

  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"assumption-free","engine":"naive","max_steps":1}'
  {"status":"partial","reason":"steps","kind":"assumption-free","count":0,"models":[]}
  [3]

Malformed JSON is a typed protocol error (exit code 2), and the
connection keeps serving:

  $ olp call --socket s.sock '{"bad"'
  {"status":"error","error":{"kind":"proto","message":"invalid JSON at offset 6: expected ':'"}}
  [2]

Unknown objects are input errors, not protocol errors:

  $ olp call --socket s.sock '{"op":"query","obj":"ghost","lit":"p"}'
  {"status":"error","error":{"kind":"input","message":"Kb: unknown object \"ghost\""}}
  [2]

A batch frame carries several requests and returns one envelope with a
response per item, in order — good items are served (the first is a
cache hit), bad items are answered in place with their typed error,
and neither kills the frame:

  $ olp call --socket s.sock '{"op":"batch","requests":[{"op":"query","obj":"bot","lit":"fly(tweety)","id":1},{"op":"nope"},{"op":"query","obj":"ghost","lit":"p"}]}'
  {"status":"ok","count":3,"responses":[{"status":"ok","id":1,"value":"true"},{"status":"error","error":{"kind":"proto","message":"invalid request: unknown op \"nope\""}},{"status":"error","error":{"kind":"input","message":"Kb: unknown object \"ghost\""}}]}

Rule preferences over the wire (protocol revision 6): rules keep
their names through load, set_preference declares an order (WAL-able,
replicable — it is a write), and "prefer" on models/query routes
through the preference engines.  Without a preference the default and
the exception defeat each other:

  $ olp call --socket s.sock '{"op":"load","src":"b : bird(tweety). p : penguin(tweety). f : fly(X) :- bird(X). nf : -fly(X) :- penguin(X)."}'
  {"status":"ok","objects":["top","bot","main"]}
  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"compiled"}'
  {"status":"ok","kind":"preferred","prefer":"compiled","count":1,"models":[["bird(tweety)","penguin(tweety)"]]}
  $ olp call --socket s.sock '{"op":"set_preference","rule":"nf","over":"f"}'
  {"status":"ok","rule":"nf","over":"f"}
  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"compiled"}'
  {"status":"ok","kind":"preferred","prefer":"compiled","count":1,"models":[["bird(tweety)","-fly(tweety)","penguin(tweety)"]]}

The naive oracle agrees, a preferred query answers with the value the
preferred models agree on, and a repeated compiled enumeration is a
cache hit:

  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"naive"}'
  {"status":"ok","kind":"preferred","prefer":"naive","count":1,"models":[["bird(tweety)","-fly(tweety)","penguin(tweety)"]]}
  $ olp call --socket s.sock '{"op":"query","obj":"main","lit":"fly(tweety)","prefer":"compiled"}'
  {"status":"ok","value":"false","prefer":"compiled"}
  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"compiled"}'
  {"status":"ok","kind":"preferred","prefer":"compiled","count":1,"models":[["bird(tweety)","-fly(tweety)","penguin(tweety)"]]}

A preference that would close a cycle is refused, typed; clearing the
preference restores the undecided models:

  $ olp call --socket s.sock '{"op":"set_preference","rule":"f","over":"nf"}'
  {"status":"error","error":{"kind":"preference_cycle","message":"preference cycle: f > f > nf — the combined rule order (component order plus prefer declarations) must be a strict partial order","cycle":["f","f","nf"]}}
  [2]
  $ olp call --socket s.sock '{"op":"clear_preference","rule":"nf","over":"f"}'
  {"status":"ok","removed":true}
  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"compiled"}'
  {"status":"ok","kind":"preferred","prefer":"compiled","count":1,"models":[["bird(tweety)","penguin(tweety)"]]}

The compiled flat-array kernel over the wire (protocol revision 7):
the canonical "search" field selects the stable-model engine on
models — same model list as the pruned default, in the same order —
and the legacy "engine" alias keeps working.  With "prefer", "search"
picks the engine run on the compiled preference program; on a plain
query it is a request error:

  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable","search":"compiled"}'
  {"status":"ok","kind":"stable","count":1,"models":[["bird(penguin)","bird(tweety)","-fly(penguin)","fly(tweety)"]]}
  $ olp call --socket s.sock '{"op":"models","obj":"main","prefer":"compiled","search":"compiled"}'
  {"status":"ok","kind":"preferred","prefer":"compiled","count":1,"models":[["bird(tweety)","penguin(tweety)"]]}
  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable","search":"compiled","engine":"pruned"}'
  {"status":"error","error":{"kind":"proto","message":"invalid request: \"search\" and legacy \"engine\" disagree (\"compiled\" vs \"pruned\")"}}
  [2]
  $ olp call --socket s.sock '{"op":"query","obj":"bot","lit":"fly(tweety)","search":"compiled"}'
  {"status":"error","error":{"kind":"proto","message":"invalid request: \"search\" on a query requires \"prefer\""}}
  [2]

The stats verb exposes the cache counters (the models repeat above is
the hit; load and the distinct computations are the misses) and the
server's deterministic metrics — batch items are counted
individually, plus the batches/batch_items pair for the frame, the
preference counters (compilations, cache hits, compiled-program size)
and, once a compiled request has run, the solver counters
(propagations, conflicts, learned/evicted nogoods, restarts — exact
numbers: the kernel is deterministic) land under "server":

  $ olp call --socket s.sock stats
  {"status":"ok","version":"1.7.0","protocol":7,"cache":{"hits":5,"misses":11,"invalidations":4,"entries":3},"server":{"workers":2,"queue_capacity":64,"batch_items":3,"batches":1,"cache_kept":0,"connections":23,"errors":3,"flat_cache_hits":0,"flat_compiles":2,"inc_evictions":5,"inc_fallbacks":0,"inc_repairs":0,"ok":17,"partials":1,"prefer_cache_hits":3,"prefer_compilations":3,"prefer_gop_atoms":3,"prefer_gop_rules":4,"proto_errors":4,"queue_peak":1,"served":21,"solver_conflicts":0,"solver_evicted":0,"solver_learned":0,"solver_propagations":8,"solver_restarts":0,"writers_peak":1}}

Incremental maintenance over the wire (docs/INCREMENTAL.md): with the
delta eviction policy (the default; --cache-eviction wholesale
restores flush-on-write), a mutation repairs derived state instead of
emptying the cache.  Prime the least models of "main" and "bot", then
add a rule to main: "bot" cannot see "main", so bot's cached entries
are carried forward, and main's grounding and least model are
repaired in place — both follow-up queries are cache hits, one from a
repaired entry and one from a carried entry.  The second stats call
pins the accounting: two repairs (grounding + fixpoint), carried
entries, two evictions (main's preference-derived enumerations, which
a touch always drops), no fallbacks:

  $ olp call --socket s.sock '{"op":"query","obj":"main","lit":"penguin(tweety)"}'
  {"status":"ok","value":"true"}
  $ olp call --socket s.sock '{"op":"query","obj":"bot","lit":"fly(tweety)"}'
  {"status":"ok","value":"true"}
  $ olp call --socket s.sock '{"op":"add_rule","obj":"main","rule":"s : swim(tweety) :- penguin(tweety)."}'
  {"status":"ok"}
  $ olp call --socket s.sock '{"op":"query","obj":"main","lit":"swim(tweety)"}'
  {"status":"ok","value":"true"}
  $ olp call --socket s.sock '{"op":"query","obj":"bot","lit":"fly(tweety)"}'
  {"status":"ok","value":"true"}
  $ olp call --socket s.sock stats
  {"status":"ok","version":"1.7.0","protocol":7,"cache":{"hits":7,"misses":13,"invalidations":5,"entries":3},"server":{"workers":2,"queue_capacity":64,"batch_items":3,"batches":1,"cache_kept":2,"connections":29,"errors":3,"flat_cache_hits":0,"flat_compiles":2,"inc_evictions":7,"inc_fallbacks":0,"inc_repairs":2,"ok":23,"partials":1,"prefer_cache_hits":3,"prefer_compilations":3,"prefer_gop_atoms":3,"prefer_gop_rules":4,"proto_errors":4,"queue_peak":1,"served":27,"solver_conflicts":0,"solver_evicted":0,"solver_learned":0,"solver_propagations":8,"solver_restarts":0,"writers_peak":1}}

Graceful shutdown over the wire: the server drains, exits and unlinks
its socket; the background job ends cleanly:

  $ olp call --socket s.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait
  $ cat server.log
  olp serve: listening on unix:s.sock (2 workers)
  $ test -e s.sock || echo socket removed
  socket removed
