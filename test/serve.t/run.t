The query server: a Unix-domain socket speaking line-oriented JSON,
driven end to end with olp call.  Boot in the background (the socket
path is relative — cram sandboxes nest deep enough to overflow
sun_path otherwise):

  $ olp serve --socket s.sock --workers 2 > server.log 2>&1 &

Load a knowledge base over the wire (--retry rides out the boot):

  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"component top { fly(X) :- bird(X). bird(tweety). bird(penguin). } component bot extends top { -fly(penguin). }"}'
  {"status":"ok","objects":["top","bot"]}

Three-valued queries from the exception object's viewpoint:

  $ olp call --socket s.sock '{"op":"query","obj":"bot","lit":"fly(tweety)"}' '{"op":"query","obj":"bot","lit":"fly(penguin)"}'
  {"status":"ok","value":"true"}
  {"status":"ok","value":"false"}

Model enumeration, twice: the repeat is answered from the session
cache (asserted through stats below) and is byte-identical:

  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable"}'
  {"status":"ok","kind":"stable","count":1,"models":[["bird(penguin)","bird(tweety)","-fly(penguin)","fly(tweety)"]]}
  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"stable"}'
  {"status":"ok","kind":"stable","count":1,"models":[["bird(penguin)","bird(tweety)","-fly(penguin)","fly(tweety)"]]}

A request-level budget that trips comes back as a structured partial
(exit code 3), not a dropped connection — the key is uncached, so the
cache cannot answer it first:

  $ olp call --socket s.sock '{"op":"models","obj":"bot","kind":"assumption-free","engine":"naive","max_steps":1}'
  {"status":"partial","reason":"steps","kind":"assumption-free","count":0,"models":[]}
  [3]

Malformed JSON is a typed protocol error (exit code 2), and the
connection keeps serving:

  $ olp call --socket s.sock '{"bad"'
  {"status":"error","error":{"kind":"proto","message":"invalid JSON at offset 6: expected ':'"}}
  [2]

Unknown objects are input errors, not protocol errors:

  $ olp call --socket s.sock '{"op":"query","obj":"ghost","lit":"p"}'
  {"status":"error","error":{"kind":"input","message":"Kb: unknown object \"ghost\""}}
  [2]

The stats verb exposes the cache counters (the models repeat above is
the hit; load and the two distinct computations are the misses) and
the server's deterministic metrics:

  $ olp call --socket s.sock stats
  {"status":"ok","version":"1.3.0","protocol":4,"cache":{"hits":2,"misses":4,"invalidations":1,"entries":2},"server":{"workers":2,"queue_capacity":64,"connections":8,"errors":1,"ok":5,"partials":1,"proto_errors":1,"queue_peak":1,"served":7}}

Graceful shutdown over the wire: the server drains, exits and unlinks
its socket; the background job ends cleanly:

  $ olp call --socket s.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait
  $ cat server.log
  olp serve: listening on unix:s.sock (2 workers)
  $ test -e s.sock || echo socket removed
  socket removed
