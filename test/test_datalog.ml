(* Unit tests for the classical-semantics substrate: minimal models,
   stratification, perfect models, well-founded and stable semantics,
   3-valued and founded models. *)

open Logic
open Helpers
module N = Datalog.Nprog
module C = Datalog.Consequence
module W = Datalog.Wellfounded
module S = Datalog.Stable
module T = Datalog.Threeval

let nprog src =
  N.of_rules (Ground.Grounder.naive ~depth:0 (rules src)).Ground.Grounder.rules

let atoms_of_names names =
  Atom.Set.of_list (List.map (fun s -> (lit s).Literal.atom) names)

let check_set name expected actual =
  Alcotest.(check bool)
    (name ^ ": "
    ^ String.concat ", " (List.map Atom.to_string (Atom.Set.elements actual)))
    true
    (Atom.Set.equal expected actual)

(* ------------------------------------------------------------------ *)
(* Minimal models of positive programs                                 *)
(* ------------------------------------------------------------------ *)

let test_lfp_positive () =
  let p = nprog "e(1, 2). e(2, 3). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)." in
  let m = N.decode_mask p (C.lfp p) in
  check_set "transitive closure"
    (atoms_of_names [ "e(1, 2)"; "e(2, 3)"; "t(1, 2)"; "t(2, 3)"; "t(1, 3)" ])
    m

let test_lfp_vs_naive () =
  let progs =
    [ "p :- q. q :- r. r.";
      "a :- b. b :- a. c.";
      "p(X) :- q(X). q(a). q(b). r(X) :- p(X), q(X)."
    ]
  in
  List.iter
    (fun src ->
      let p = nprog src in
      Alcotest.(check bool) src true (C.lfp p = C.lfp_naive p))
    progs

let test_lfp_naf_rules_never_fire () =
  let p = nprog "p :- -q. r." in
  let m = N.decode_mask p (C.lfp p) in
  check_set "NAF rule inert in plain lfp" (atoms_of_names [ "r" ]) m

let test_reduct () =
  let p = nprog "p :- -q. q :- -p." in
  let qid = Option.get (N.atom_id p (lit "q").Literal.atom) in
  (* Candidate {q}: the rule for p is deleted, the rule for q keeps. *)
  let rules = C.reduct p ~assumed_false:(fun a -> a <> qid) in
  Alcotest.(check int) "one rule kept" 1 (Array.length rules);
  let m = C.lfp_rules p rules in
  Alcotest.(check bool) "q derived" true m.(qid)

(* ------------------------------------------------------------------ *)
(* Dependency graph and stratification                                 *)
(* ------------------------------------------------------------------ *)

let test_deps_and_sccs () =
  let g = Datalog.Deps.of_rules (rules "p :- q. q :- p. r :- p, -s. s.") in
  let sccs = Datalog.Deps.sccs g in
  Alcotest.(check int) "three components" 3 (List.length sccs);
  (* p and q are mutually recursive *)
  Alcotest.(check bool) "p, q together" true
    (List.exists (fun c -> List.length c = 2) sccs);
  (* dependencies come before dependents *)
  let flat = List.concat sccs in
  let pos x = Option.get (List.find_index (fun p -> p = (x, 0)) flat) in
  Alcotest.(check bool) "s before r" true (pos "s" < pos "r")

let test_stratification () =
  let strata src =
    Datalog.Deps.stratification (Datalog.Deps.of_rules (rules src))
  in
  (match strata "p :- -q. q :- r. r." with
  | None -> Alcotest.fail "should be stratified"
  | Some s ->
    Alcotest.(check int) "r stratum 0" 0 (List.assoc ("r", 0) s);
    Alcotest.(check int) "q stratum 0" 0 (List.assoc ("q", 0) s);
    Alcotest.(check int) "p stratum 1" 1 (List.assoc ("p", 0) s));
  Alcotest.(check bool) "negative cycle is not stratified" true
    (strata "p :- -q. q :- p." = None);
  Alcotest.(check bool) "positive cycle is stratified" true
    (strata "p :- q. q :- p." <> None)

let test_perfect_model () =
  let src = "reach(a). reach(Y) :- reach(X), e(X, Y). e(a, b). \
             unreached(X) :- node(X), -reach(X). node(a). node(b). node(c)." in
  let ground = (Ground.Grounder.naive (rules src)).Ground.Grounder.rules in
  let p = N.of_rules ground in
  match Datalog.Perfect.model p (rules src) with
  | None -> Alcotest.fail "stratified program must have a perfect model"
  | Some m ->
    Alcotest.(check bool) "b reached" true
      (Atom.Set.mem (lit "reach(b)").Literal.atom m);
    Alcotest.(check bool) "c unreached" true
      (Atom.Set.mem (lit "unreached(c)").Literal.atom m);
    Alcotest.(check bool) "b not unreached" false
      (Atom.Set.mem (lit "unreached(b)").Literal.atom m)

let test_perfect_rejects_unstratified () =
  let src = "p :- -q. q :- -p." in
  let p = nprog src in
  Alcotest.(check bool) "no perfect model" true
    (Datalog.Perfect.model p (rules src) = None)

(* ------------------------------------------------------------------ *)
(* Well-founded semantics                                              *)
(* ------------------------------------------------------------------ *)

let value_of m s = Interp.value_lit m (lit s)

let test_wfs_win_move () =
  (* The canonical game: a position is won if some move leads to a lost
     position.  b -> c, a -> b: c lost, b won, a lost.  d -> d: undefined. *)
  let p =
    nprog
      "win(X) :- move(X, Y), -win(Y). move(a, b). move(b, c). move(d, d)."
  in
  let m = W.model p in
  Alcotest.check testable_value "win(b)" Interp.True (value_of m "win(b)");
  Alcotest.check testable_value "win(c)" Interp.False (value_of m "win(c)");
  Alcotest.check testable_value "win(a)" Interp.False (value_of m "win(a)");
  Alcotest.check testable_value "win(d)" Interp.Undefined (value_of m "win(d)")

let test_wfs_total_on_stratified () =
  let p = nprog "p :- -q. q :- r. r." in
  let r = W.compute p in
  Alcotest.(check bool) "total" true (W.is_total r);
  let m = W.model p in
  Alcotest.check testable_value "p false" Interp.False (value_of m "p");
  Alcotest.check testable_value "q true" Interp.True (value_of m "q")

let test_wfs_odd_loop () =
  let p = nprog "p :- -p." in
  let m = W.model p in
  Alcotest.check testable_value "p undefined" Interp.Undefined (value_of m "p")

let test_wfs_positive_loop_false () =
  let p = nprog "p :- p." in
  let m = W.model p in
  Alcotest.check testable_value "unfounded atom false" Interp.False
    (value_of m "p")

(* ------------------------------------------------------------------ *)
(* Stable models                                                       *)
(* ------------------------------------------------------------------ *)

let test_stable_choice () =
  let p = nprog "p :- -q. q :- -p." in
  let ms = S.models p in
  Alcotest.(check int) "two stable models" 2 (List.length ms);
  let has names =
    List.exists (fun m -> Atom.Set.equal m (atoms_of_names names)) ms
  in
  Alcotest.(check bool) "{p}" true (has [ "p" ]);
  Alcotest.(check bool) "{q}" true (has [ "q" ])

let test_stable_none () =
  let p = nprog "p :- -p." in
  Alcotest.(check int) "no stable model" 0 (List.length (S.models p))

let test_stable_unique_stratified () =
  let p = nprog "p :- -q. q :- r. r. s :- p." in
  match S.models p with
  | [ m ] ->
    check_set "unique stable = perfect" (atoms_of_names [ "q"; "r" ]) m
  | ms -> Alcotest.fail (Printf.sprintf "expected 1 model, got %d" (List.length ms))

let test_stable_constraint_via_oddloop () =
  (* p :- -p, q  acts as the constraint "not q". *)
  let p = nprog "q :- -r. r :- -q. p :- -p, q." in
  let ms = S.models p in
  Alcotest.(check int) "only r survives" 1 (List.length ms);
  check_set "model is {r}" (atoms_of_names [ "r" ]) (List.hd ms)

let test_stable_contains_wf () =
  let p = nprog "a. b :- a. p :- -q. q :- -p. c :- p, -c0. c :- q, -c0. c0 :- -c." in
  let wf = W.compute p in
  List.iter
    (fun m ->
      Array.iteri
        (fun i t -> if t then Alcotest.(check bool) "wf-true in stable" true m.(i))
        wf.W.true_;
      Array.iteri
        (fun i f -> if f then Alcotest.(check bool) "wf-false out of stable" false m.(i))
        wf.W.false_)
    (S.enumerate p)

let test_stable_is_stable_check () =
  let p = nprog "p :- -q. q :- -p." in
  List.iter
    (fun m -> Alcotest.(check bool) "enumerated models pass is_stable" true
        (S.is_stable p m))
    (S.enumerate p);
  let bogus = Array.make (N.n_atoms p) true in
  Alcotest.(check bool) "{p, q} not stable" false (S.is_stable p bogus)

let test_stable_limit () =
  let p = nprog "p :- -q. q :- -p. r :- -s. s :- -r." in
  Alcotest.(check int) "4 without limit" 4 (List.length (S.models p));
  Alcotest.(check int) "limit 2" 2 (List.length (S.models ~limit:2 p));
  Alcotest.(check bool) "first returns one" true (S.first p <> None)

(* ------------------------------------------------------------------ *)
(* 3-valued and founded models                                         *)
(* ------------------------------------------------------------------ *)

let test_three_valued_model () =
  let p = nprog "p :- -p." in
  Alcotest.(check bool) "{p} is a 3-valued model" true
    (T.is_three_valued_model p (interp [ "p" ]));
  Alcotest.(check bool) "{-p} is not (head F < body T)" false
    (T.is_three_valued_model p (interp [ "-p" ]));
  Alcotest.(check bool) "empty is a 3-valued model" true
    (T.is_three_valued_model p Interp.empty)

let test_founded () =
  let p = nprog "p :- -p." in
  Alcotest.(check bool) "{p} is not founded" false (T.is_founded p (interp [ "p" ]));
  Alcotest.(check bool) "empty is founded" true (T.is_founded p Interp.empty);
  let p2 = nprog "p :- -q. q :- -p." in
  Alcotest.(check bool) "{p, -q} founded" true
    (T.is_founded p2 (interp [ "p"; "-q" ]));
  Alcotest.(check bool) "{p} founded (partial)" false
    (T.is_founded p2 (interp [ "p" ]))

let test_sz_stable_models () =
  let p = nprog "p :- -q. q :- -p." in
  let stables = T.stable_models p in
  Alcotest.check testable_interp_set "two total stable models"
    [ interp [ "p"; "-q" ]; interp [ "q"; "-p" ] ]
    stables;
  (* p :- -p has empty well-founded = unique maximal founded model *)
  let p2 = nprog "p :- -p." in
  Alcotest.check testable_interp_set "odd loop: empty is the only stable"
    [ Interp.empty ] (T.stable_models p2)

let test_total_stable_matches_gl () =
  let p = nprog "p :- -q. q :- -p. r :- p." in
  Alcotest.check testable_interp_set "total stable = GL stable"
    (T.total_stable_models p)
    (List.filter
       (fun m -> Interp.is_total m ~base:(Array.to_list p.N.atoms))
       (T.stable_models p))

let suite =
  [ Alcotest.test_case "lfp: transitive closure" `Quick test_lfp_positive;
    Alcotest.test_case "lfp: counting = naive" `Quick test_lfp_vs_naive;
    Alcotest.test_case "lfp: NAF rules inert" `Quick test_lfp_naf_rules_never_fire;
    Alcotest.test_case "GL reduct" `Quick test_reduct;
    Alcotest.test_case "dependency graph and SCCs" `Quick test_deps_and_sccs;
    Alcotest.test_case "stratification" `Quick test_stratification;
    Alcotest.test_case "perfect model" `Quick test_perfect_model;
    Alcotest.test_case "perfect rejects unstratified" `Quick
      test_perfect_rejects_unstratified;
    Alcotest.test_case "wfs: win/move game" `Quick test_wfs_win_move;
    Alcotest.test_case "wfs: total on stratified" `Quick test_wfs_total_on_stratified;
    Alcotest.test_case "wfs: odd loop undefined" `Quick test_wfs_odd_loop;
    Alcotest.test_case "wfs: unfounded loop false" `Quick
      test_wfs_positive_loop_false;
    Alcotest.test_case "stable: even loop choice" `Quick test_stable_choice;
    Alcotest.test_case "stable: odd loop has none" `Quick test_stable_none;
    Alcotest.test_case "stable: stratified unique" `Quick test_stable_unique_stratified;
    Alcotest.test_case "stable: constraints" `Quick test_stable_constraint_via_oddloop;
    Alcotest.test_case "stable: respects well-founded core" `Quick
      test_stable_contains_wf;
    Alcotest.test_case "stable: is_stable" `Quick test_stable_is_stable_check;
    Alcotest.test_case "stable: limit and first" `Quick test_stable_limit;
    Alcotest.test_case "3-valued models" `Quick test_three_valued_model;
    Alcotest.test_case "founded models" `Quick test_founded;
    Alcotest.test_case "SZ stable models" `Quick test_sz_stable_models;
    Alcotest.test_case "total stable = GL" `Quick test_total_stable_matches_gl
  ]
