(* Resource governance: deterministic fault injection, anytime prefix
   guarantees, typed diagnostics, and exhaustion stickiness.

   The CLI-level contract (--timeout 0 exits 3 on every subcommand, the
   partial-models warning, exit codes 0/2/3) is exercised end-to-end in
   the cram test [cli.t/run.t]. *)

open Logic
module B = Ordered.Budget
module W = Workloads

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_trip_at () =
  let b = B.with_trip_at ~step:3 () in
  B.tick b;
  B.tick b;
  (match B.tick b with
  | exception B.Exhausted B.Fault -> ()
  | () -> Alcotest.fail "third tick must trip the fault"
  | exception e -> raise e);
  (* exactly once: the fault is disarmed, later ticks succeed and the
     budget is not marked spent *)
  B.tick b;
  B.tick b;
  Alcotest.(check int) "all five ticks counted" 5 (B.steps b);
  Alcotest.(check bool) "fault is not sticky" true (B.exhausted b = None);
  (* a first-step trip fires on the very first tick *)
  let b1 = B.with_trip_at ~step:1 () in
  match B.tick b1 with
  | exception B.Exhausted B.Fault -> ()
  | () -> Alcotest.fail "step-1 fault must trip on the first tick"

let test_trip_at_mid_enumeration () =
  (* the injected fault surfaces as an ordinary Partial result *)
  let g = Ordered.Bridge.ground_ov (W.even_loops 2) in
  match
    Ordered.Stable.assumption_free_models ~budget:(B.with_trip_at ~step:8 ()) g
  with
  | B.Partial (_, B.Fault) -> ()
  | B.Partial (_, r) ->
    Alcotest.failf "wrong reason: %s" (B.reason_to_string r)
  | B.Complete _ -> Alcotest.fail "fault must truncate the enumeration"

(* ------------------------------------------------------------------ *)
(* Sticky exhaustion                                                   *)
(* ------------------------------------------------------------------ *)

let test_sticky () =
  let b = B.make ~max_steps:2 () in
  B.tick b;
  B.tick b;
  (match B.tick b with
  | exception B.Exhausted B.Steps -> ()
  | () -> Alcotest.fail "step budget must trip");
  Alcotest.(check bool) "marked spent" true (B.exhausted b = Some B.Steps);
  (* every later use re-raises: an exhausted budget cannot be reused *)
  (match B.tick b with
  | exception B.Exhausted B.Steps -> ()
  | () -> Alcotest.fail "tick on a spent budget must re-raise");
  match B.check b with
  | exception B.Exhausted B.Steps -> ()
  | () -> Alcotest.fail "check on a spent budget must re-raise"

let test_cancel () =
  let b = B.make () in
  B.tick b;
  B.cancel b;
  match B.check b with
  | exception B.Exhausted B.Cancelled -> ()
  | () -> Alcotest.fail "cancellation must trip the next check"

(* ------------------------------------------------------------------ *)
(* Anytime prefix guarantee                                            *)
(* ------------------------------------------------------------------ *)

let rec is_prefix eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> eq x y && is_prefix eq xs' ys'
  | _ :: _, [] -> false

let af_gop () = Ordered.Bridge.ground_ov (W.even_loops 3)

(* total ticks of the unbudgeted run, measured with a fresh counter *)
let full_run g =
  let b = B.make () in
  match Ordered.Stable.assumption_free_models ~budget:b g with
  | B.Complete ms -> (ms, B.steps b)
  | B.Partial _ -> Alcotest.fail "unlimited run cannot be partial"

let check_prefix g full n =
  match
    Ordered.Stable.assumption_free_models ~budget:(B.make ~max_steps:n ()) g
  with
  | B.Complete ms ->
    Alcotest.(check bool)
      (Printf.sprintf "complete at %d steps equals full run" n)
      true
      (List.length ms = List.length full
      && List.for_all2 Interp.equal ms full);
    `Complete
  | B.Partial (ms, B.Steps) ->
    Alcotest.(check bool)
      (Printf.sprintf "partial at %d steps is a prefix" n)
      true
      (is_prefix Interp.equal ms full);
    `Partial (List.length ms)
  | B.Partial (_, r) ->
    Alcotest.failf "unexpected reason %s" (B.reason_to_string r)

let test_prefix_property () =
  let g = af_gop () in
  let full, total = full_run g in
  Alcotest.(check bool) "workload branches" true (List.length full > 1);
  let saw_nonempty_partial = ref false in
  for n = 0 to total + 1 do
    match check_prefix g full n with
    | `Partial k when k > 0 -> saw_nonempty_partial := true
    | _ -> ()
  done;
  Alcotest.(check bool)
    "some step budget yields a nonempty strict prefix" true
    !saw_nonempty_partial;
  (* a budget at least as large as the full run completes *)
  match check_prefix g full total with
  | `Complete -> ()
  | `Partial _ -> Alcotest.fail "budget = total ticks must complete"

let test_prefix_property_random =
  QCheck.Test.make ~count:60 ~name:"random step budgets yield prefixes"
    QCheck.(pair (int_bound 3000) (int_range 1 4))
    (fun (n, k) ->
      let g = Ordered.Bridge.ground_ov (W.even_loops k) in
      let full, _ = full_run g in
      match
        Ordered.Stable.assumption_free_models
          ~budget:(B.make ~max_steps:n ())
          g
      with
      | B.Complete ms ->
        List.length ms = List.length full
        && List.for_all2 Interp.equal ms full
      | B.Partial (ms, B.Steps) -> is_prefix Interp.equal ms full
      | B.Partial _ -> false)

(* Sweep the injected fault over every tick position of the pruned
   search's complete run.  Ticks happen at search nodes *and* inside
   [Vfix.propagate]'s queue loop, so the sweep necessarily covers budgets
   tripping mid-propagation; at every position the surviving models must
   be a prefix of the full enumeration. *)
let test_fault_sweep_pruned () =
  let g = af_gop () in
  let full, total = full_run g in
  for n = 1 to total do
    match
      Ordered.Stable.assumption_free_models ~budget:(B.with_trip_at ~step:n ())
        g
    with
    | B.Partial (ms, B.Fault) ->
      Alcotest.(check bool)
        (Printf.sprintf "fault at tick %d yields a prefix" n)
        true
        (is_prefix Interp.equal ms full)
    | B.Partial (_, r) ->
      Alcotest.failf "fault at tick %d: wrong reason %s" n
        (B.reason_to_string r)
    | B.Complete _ ->
      Alcotest.failf "fault at tick %d <= total %d must truncate" n total
  done

(* The same sweep over the compiled kernel.  Its ticks land at search
   nodes, inside the trail propagation loop (one per derived literal) and
   per conflict-analysis resolution step, so the sweep covers faults
   tripping mid-propagation and mid-analysis; every position must still
   surface as a sound prefix of the (identical) pruned enumeration. *)
let test_fault_sweep_compiled () =
  let g = af_gop () in
  let full, _ = full_run g in
  let total =
    let b = B.make () in
    match Solve.Kernel.assumption_free_models ~budget:b g with
    | B.Complete ms ->
      Alcotest.(check bool) "compiled full run equals pruned" true
        (List.length ms = List.length full
        && List.for_all2 Interp.equal ms full);
      B.steps b
    | B.Partial _ -> Alcotest.fail "unlimited compiled run cannot be partial"
  in
  for n = 1 to total do
    match
      Solve.Kernel.assumption_free_models ~budget:(B.with_trip_at ~step:n ()) g
    with
    | B.Partial (ms, B.Fault) ->
      Alcotest.(check bool)
        (Printf.sprintf "compiled fault at tick %d yields a prefix" n)
        true
        (is_prefix Interp.equal ms full)
    | B.Partial (_, r) ->
      Alcotest.failf "compiled fault at tick %d: wrong reason %s" n
        (B.reason_to_string r)
    | B.Complete _ ->
      Alcotest.failf "compiled fault at tick %d <= total %d must truncate" n
        total
  done

(* The same discipline over the incremental-repair path (lib/inc):
   sweep the trip point across a full reground-plus-repair run of a
   single-rule insertion.  At every position the fault must surface as
   [Budget.Exhausted Fault] out of the repair entry points — never a
   silently wrong grounding or model — and the cached state it aborted
   out of must still be repairable: an untripped rerun from the same
   state lands exactly on the scratch least model. *)
let test_fault_sweep_repair () =
  let src =
    "component c0 { bird(tweety). bird(sam). fly(X) :- bird(X). }\n\
     component c1 extends c0 { -fly(sam). swim(X) :- bird(X), -fly(X). }"
  in
  let p = Helpers.program src in
  let c = Ordered.Program.component_id_exn p "c1" in
  let p2 =
    Ordered.Program.add_rules p c
      [ Lang.Parser.parse_rule "nest(X) :- bird(X), fly(X)." ]
  in
  let scratch = Ordered.Vfix.least_model (Ordered.Gop.ground p2 c) in
  let state1 = Inc.Reground.ground p c in
  let previous = Ordered.Vfix.least_model state1.Inc.Reground.gop in
  let run budget =
    match Inc.Reground.reground ?budget state1 ~program:p2 with
    | Error f ->
      Alcotest.failf "unexpected fallback: %a" Inc.Reground.pp_fallback f
    | Ok (state2, delta) -> (
      match
        Inc.Repair.least_model ?budget ~previous state2.Inc.Reground.gop
          delta
      with
      | Inc.Repair.Unchanged ->
        Alcotest.fail "an insertion with instances cannot be a no-op"
      | Inc.Repair.Repaired m | Inc.Repair.Recomputed m -> m)
  in
  let b = B.make () in
  Alcotest.(check bool)
    "full repair equals scratch" true
    (Interp.equal (run (Some b)) scratch);
  let total = B.steps b in
  Alcotest.(check bool) "repair ticks the budget" true (total > 0);
  for n = 1 to total do
    match run (Some (B.with_trip_at ~step:n ())) with
    | exception B.Exhausted B.Fault ->
      Alcotest.(check bool)
        (Printf.sprintf "fault at tick %d leaves the state repairable" n)
        true
        (Interp.equal (run None) scratch)
    | _ ->
      Alcotest.failf "fault at tick %d <= total %d must raise" n total
  done

let test_prefix_property_compiled =
  QCheck.Test.make ~count:60
    ~name:"compiled kernel: step budgets yield prefixes"
    QCheck.(pair (int_bound 3000) (int_range 1 4))
    (fun (n, k) ->
      let g = Ordered.Bridge.ground_ov (W.even_loops k) in
      let full =
        match Solve.Kernel.assumption_free_models g with
        | B.Complete ms -> ms
        | B.Partial _ -> QCheck.Test.fail_report "unlimited run partial"
      in
      match
        Solve.Kernel.assumption_free_models ~budget:(B.make ~max_steps:n ()) g
      with
      | B.Complete ms ->
        List.length ms = List.length full
        && List.for_all2 Interp.equal ms full
      | B.Partial (ms, B.Steps) -> is_prefix Interp.equal ms full
      | B.Partial _ -> false)

let test_prefix_property_naive =
  QCheck.Test.make ~count:40 ~name:"naive oracle: step budgets yield prefixes"
    QCheck.(pair (int_bound 3000) (int_range 1 3))
    (fun (n, k) ->
      let g = Ordered.Bridge.ground_ov (W.even_loops k) in
      let full =
        match Ordered.Stable.Naive.assumption_free_models g with
        | B.Complete ms -> ms
        | B.Partial _ -> QCheck.Test.fail_report "unlimited run partial"
      in
      match
        Ordered.Stable.Naive.assumption_free_models
          ~budget:(B.make ~max_steps:n ())
          g
      with
      | B.Complete ms ->
        List.length ms = List.length full
        && List.for_all2 Interp.equal ms full
      | B.Partial (ms, B.Steps) -> is_prefix Interp.equal ms full
      | B.Partial _ -> false)

let test_prefix_property_total =
  QCheck.Test.make ~count:40
    ~name:"total models: step budgets yield prefixes"
    QCheck.(pair (int_bound 3000) (int_range 1 3))
    (fun (n, k) ->
      let g = Ordered.Bridge.ground_ov (W.even_loops k) in
      let full =
        match Ordered.Exhaustive.total_models g with
        | B.Complete ms -> ms
        | B.Partial _ -> QCheck.Test.fail_report "unlimited run partial"
      in
      match
        Ordered.Exhaustive.total_models ~budget:(B.make ~max_steps:n ()) g
      with
      | B.Complete ms ->
        List.length ms = List.length full
        && List.for_all2 Interp.equal ms full
      | B.Partial (ms, B.Steps) -> is_prefix Interp.equal ms full
      | B.Partial _ -> false)

let test_zero_budgets () =
  let g = af_gop () in
  (match
     Ordered.Stable.assumption_free_models ~budget:(B.make ~max_steps:0 ()) g
   with
  | B.Partial ([], B.Steps) -> ()
  | _ -> Alcotest.fail "zero step budget must yield Partial ([], Steps)");
  match
    Ordered.Stable.assumption_free_models ~budget:(B.make ~timeout:0. ()) g
  with
  | B.Partial ([], B.Deadline) -> ()
  | _ -> Alcotest.fail "zero timeout must yield Partial ([], Deadline)"

(* ------------------------------------------------------------------ *)
(* Boolean queries are not anytime                                     *)
(* ------------------------------------------------------------------ *)

let test_boolean_queries_raise () =
  let g = af_gop () in
  let l = Lang.Parser.parse_literal "p0" in
  (match Ordered.Stable.cautious ~budget:(B.make ~max_steps:4 ()) g l with
  | exception B.Exhausted B.Steps -> ()
  | (_ : bool) -> Alcotest.fail "cautious under a tiny budget must raise");
  match Ordered.Stable.brave ~budget:(B.make ~max_steps:4 ()) g l with
  | exception B.Exhausted B.Steps -> ()
  | (_ : bool) -> Alcotest.fail "brave under a tiny budget must raise"

(* ------------------------------------------------------------------ *)
(* Instance caps and typed diagnostics                                 *)
(* ------------------------------------------------------------------ *)

let test_instance_cap () =
  let prog = W.islands 4 6 in
  let comp = Ordered.Program.component_id_exn prog "main" in
  match
    Ordered.Gop.ground ~budget:(B.make ~max_instances:3 ()) prog comp
  with
  | exception B.Exhausted B.Instances -> ()
  | (_ : Ordered.Gop.t) -> Alcotest.fail "instance cap must trip"

let test_overflow_diagnostic () =
  (* distinct from the budget: the max_instances cap raises a typed
     diagnostic naming the offending source rule *)
  let prog = W.islands 4 6 in
  let comp = Ordered.Program.component_id_exn prog "main" in
  match Ordered.Gop.ground ~max_instances:3 prog comp with
  | exception
      Ordered.Diag.Error
        (Ordered.Diag.Grounding_overflow { rule; produced; cap = 3; _ }) ->
    Alcotest.(check bool) "rule is named" true (String.length rule > 0);
    Alcotest.(check bool) "count exceeds cap" true (produced > 3)
  | _ -> Alcotest.fail "overflow must raise a typed Grounding_overflow"

let test_vfix_trip () =
  (* exhaustion inside the fixpoint engine propagates from run_incremental *)
  let g = W.ground_at (W.chain 50) "main" in
  match Ordered.Vfix.least_model ~budget:(B.make ~max_steps:5 ()) g with
  | exception B.Exhausted B.Steps -> ()
  | (_ : Interp.t) -> Alcotest.fail "fixpoint must trip the step budget"

let test_datalog_trip () =
  let e = Datalog.Engine.load_src "p :- -q. q :- -p. r." in
  match Datalog.Engine.stable_models ~budget:(B.make ~max_steps:2 ()) e with
  | exception B.Exhausted B.Steps -> ()
  | (_ : Atom.Set.t list) ->
    Alcotest.fail "datalog enumeration must trip the step budget"

(* ------------------------------------------------------------------ *)
(* Governor.Backoff: the reconnect schedule                            *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let module K = Governor.Backoff in
  let b = K.make ~base:0.1 ~cap:1.0 ~jitter:0.5 ~seed:42 () in
  (* each delay is drawn from [d/2, d] of the un-jittered schedule
     0.1, 0.2, 0.4, 0.8, 1.0, 1.0, ... *)
  let expected = [ 0.1; 0.2; 0.4; 0.8; 1.0; 1.0; 1.0 ] in
  List.iteri
    (fun i d ->
      let got = K.next b in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in [%g, %g], got %g" i (d /. 2.) d got)
        true
        (got >= (d /. 2.) -. 1e-9 && got <= d +. 1e-9))
    expected;
  Alcotest.(check int) "attempts counted" (List.length expected)
    (K.attempts b);
  (* a success resets the schedule to base *)
  K.reset b;
  Alcotest.(check int) "reset clears attempts" 0 (K.attempts b);
  let d = K.next b in
  Alcotest.(check bool) "back to base after reset" true
    (d >= 0.05 -. 1e-9 && d <= 0.1 +. 1e-9)

let test_backoff_deterministic () =
  let module K = Governor.Backoff in
  let mk () = K.make ~base:0.05 ~cap:2.0 ~seed:7 () in
  let a = mk () and b = mk () in
  for i = 1 to 16 do
    Alcotest.(check (float 0.)) (Printf.sprintf "draw %d agrees" i)
      (K.next a) (K.next b)
  done;
  (* distinct seeds de-correlate: at least one of the first draws
     differs *)
  let c = K.make ~base:0.05 ~cap:2.0 ~seed:8 () in
  let d = mk () in
  let differs = ref false in
  for _ = 1 to 8 do
    if K.next c <> K.next d then differs := true
  done;
  Alcotest.(check bool) "seeds change the sequence" true !differs

let test_backoff_validation () =
  let module K = Governor.Backoff in
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : K.t) -> Alcotest.failf "%s accepted" name
  in
  rejects "non-positive base" (fun () -> K.make ~base:0. ~cap:1. ());
  rejects "cap below base" (fun () -> K.make ~base:1. ~cap:0.5 ());
  rejects "multiplier below 1" (fun () ->
      K.make ~multiplier:0.9 ~base:0.1 ~cap:1. ());
  rejects "jitter above 1" (fun () ->
      K.make ~jitter:1.5 ~base:0.1 ~cap:1. ())

let suite =
  [ Alcotest.test_case "with_trip_at trips exactly once" `Quick test_trip_at;
    Alcotest.test_case "backoff schedule grows to the cap" `Quick
      test_backoff_schedule;
    Alcotest.test_case "backoff is seed-deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff validates its shape" `Quick
      test_backoff_validation;
    Alcotest.test_case "fault mid-enumeration" `Quick
      test_trip_at_mid_enumeration;
    Alcotest.test_case "exhaustion is sticky" `Quick test_sticky;
    Alcotest.test_case "cooperative cancellation" `Quick test_cancel;
    Alcotest.test_case "partial results are prefixes" `Quick
      test_prefix_property;
    QCheck_alcotest.to_alcotest test_prefix_property_random;
    Alcotest.test_case "fault sweep over every tick of the pruned search"
      `Quick test_fault_sweep_pruned;
    Alcotest.test_case "fault sweep over every tick of the compiled kernel"
      `Quick test_fault_sweep_compiled;
    Alcotest.test_case "fault sweep over every tick of incremental repair"
      `Quick test_fault_sweep_repair;
    QCheck_alcotest.to_alcotest test_prefix_property_compiled;
    QCheck_alcotest.to_alcotest test_prefix_property_naive;
    QCheck_alcotest.to_alcotest test_prefix_property_total;
    Alcotest.test_case "zero budgets" `Quick test_zero_budgets;
    Alcotest.test_case "boolean queries raise" `Quick
      test_boolean_queries_raise;
    Alcotest.test_case "instance cap" `Quick test_instance_cap;
    Alcotest.test_case "overflow diagnostic" `Quick test_overflow_diagnostic;
    Alcotest.test_case "fixpoint trips" `Quick test_vfix_trip;
    Alcotest.test_case "datalog enumeration trips" `Quick test_datalog_trip
  ]
