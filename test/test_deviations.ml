(* Documented deviations: places where the paper's stated results fail as
   literally written (the paper gives only proof sketches, and Theorem 2
   is stated "without any proof").  Each test pins down a concrete
   counterexample so the deviation is reproducible, and checks the
   corrected form our implementation uses.  EXPERIMENTS.md discusses
   all of them. *)

open Logic
open Helpers

(* ------------------------------------------------------------------ *)
(* Proposition 4, converse direction.

   The paper claims: M is a 3-valued founded model of C iff M is an
   assumption-free model of OV(C) in C.  The "only if" direction fails:
   for C = { p :- -q } the empty interpretation is a 3-valued model
   (U >= U) and trivially founded (no applied rules), yet it is not even
   a model of OV(C) in C — the closed-world fact -q is applicable and
   challenged by no rule with head q, so Definition 3(b) forces q to be
   false rather than undefined.  The "if" direction does hold and is
   property-tested in Test_props. *)
(* ------------------------------------------------------------------ *)

let test_prop4_converse_fails () =
  let c = rules "p :- -q." in
  let np = Datalog.Nprog.of_rules c in
  Alcotest.(check bool) "empty is a 3-valued model of C" true
    (Datalog.Threeval.is_three_valued_model np Interp.empty);
  Alcotest.(check bool) "empty is founded" true
    (Datalog.Threeval.is_founded np Interp.empty);
  let gov = Ordered.Bridge.ground_ov c in
  Alcotest.(check bool) "but empty is not a model of OV(C) in C" false
    (Ordered.Model.is_model gov Interp.empty);
  (* The intended (maximal) objects still agree — Corollary 1 survives. *)
  Alcotest.check testable_interp_set "stable models coincide anyway"
    (Datalog.Threeval.stable_models np)
    (Ordered.Budget.value (Ordered.Stable.stable_models gov))

(* ------------------------------------------------------------------ *)
(* Theorem 2 / Definition 11, literal exception clause.

   With C = { -p.  -q :- -q.  q. }, the interpretation {-p} is a model of
   3V(C) in C-: the fact q is applicable with q undefined, which
   Definition 3(b) allows because the exception -q :- -q is non-blocked
   (its body -q is undefined, not false) and overrules it.  The literal
   Definition 11 excuses a rule only through an exception with *true*
   body, so it would reject {-p}.  Our direct semantics implements the
   corrected clause (undefined head: non-blocked exception suffices), and
   then the equivalence holds (property-tested in Test_props). *)
(* ------------------------------------------------------------------ *)

let literal_def11_is_model ground_rules interp =
  List.for_all
    (fun (r : Rule.t) ->
      let hv = Interp.value_lit interp (Rule.head r) in
      let bv = Interp.value_conj interp (Rule.body r) in
      Interp.compare_value hv bv >= 0
      || (Interp.holds interp (Literal.neg (Rule.head r))
         && List.exists
              (fun (e : Rule.t) ->
                Literal.is_negative (Rule.head e)
                && Literal.equal (Rule.head e) (Literal.neg (Rule.head r))
                && Interp.value_conj interp (Rule.body e) = Interp.True)
              ground_rules))
    ground_rules

let test_theorem2_literal_fails () =
  let c = rules "-p. -q :- -q. q." in
  let ground = Ordered.Negative.ground_program c in
  let m = interp [ "-p" ] in
  (* Definition 10 accepts {-p}: *)
  Alcotest.(check bool) "{-p} is a model of 3V(C) in C-" true
    (Ordered.Negative.is_model c m);
  (* the literal Definition 11 rejects it: *)
  Alcotest.(check bool) "literal Definition 11 rejects {-p}" false
    (literal_def11_is_model ground m);
  (* the corrected clause accepts it: *)
  Alcotest.(check bool) "corrected Definition 11 accepts {-p}" true
    (Ordered.Negative.direct_is_model ground m)

(* ------------------------------------------------------------------ *)
(* Definition 11(b), assumption sets over I+ only.

   [SZ]'s assumption sets range over positive literals; under the
   corrected Definition 8 (above) that is too weak: for
   C = { p.  -p :- -p. }, the interpretation {-p} is a Definition-11
   model whose negative literal rests only on the self-supporting
   exception and on a closed-world fact that the (non-blocked) fact p.
   overrules — yet I+ is empty, so the literal Definition 11(b) finds no
   assumption set and would accept {-p} as stable.  The 3-level
   semantics (with the corrected enabled version) rejects it; our direct
   semantics extends assumption sets to negative literals and agrees. *)
(* ------------------------------------------------------------------ *)

let test_def11b_negative_assumptions () =
  let c = rules "p. -p :- -p." in
  let ground = Ordered.Negative.ground_program c in
  let m = interp [ "-p" ] in
  Alcotest.(check bool) "{-p} is a Definition-11 model" true
    (Ordered.Negative.direct_is_model ground m);
  Alcotest.(check bool) "3-level: {-p} is a model too" true
    (Ordered.Negative.is_model c m);
  Alcotest.(check bool) "3-level: but not assumption-free" false
    (Ordered.Negative.is_assumption_free c m);
  Alcotest.(check bool) "corrected direct semantics agrees" false
    (Ordered.Negative.direct_is_assumption_free ground m);
  (* the unique stable model keeps the explicit fact *)
  Alcotest.check testable_interp_set "stable models"
    [ interp [ "p" ] ]
    (Ordered.Negative.stable_models c);
  Alcotest.check testable_interp_set "direct stable models agree"
    [ interp [ "p" ] ]
    (Ordered.Negative.direct_stable_models ground)

(* The corrected clause changes nothing on the paper's own examples. *)
let test_corrected_clause_conservative () =
  let c =
    rules
      "fly(X) :- bird(X). -fly(X) :- ground_animal(X). bird(t). \
       ground_animal(t)."
  in
  let ground = Ordered.Negative.ground_program c in
  let good = interp [ "bird(t)"; "ground_animal(t)"; "-fly(t)" ] in
  Alcotest.(check bool) "paper's flying example still a model" true
    (Ordered.Negative.direct_is_model ground good);
  Alcotest.(check bool) "literal clause agrees here" true
    (literal_def11_is_model ground good)

(* ------------------------------------------------------------------ *)
(* Definition 8 / Theorem 1(a): the enabled version.

   Definition 8 takes C^e to be *all* applied rules.  In

     c0 < c1,   c0 = { -p.  -r :- -r. }   c1 = { -p.  -r.  r. }

   the interpretation M = {-p, -r} is a model in c0: the fact r. is
   overruled by the applied self-supporting rule -r :- -r.  The fact
   -r. in c1 is applied, so the literal C^e contains it and
   T^inf_{C^e}(0) = M, making M "assumption-free" by the literal Theorem
   1(a).  But -r. is *defeated* (by the fact r. in its own component),
   so Definition 6 discounts it, and {-r} — supported only by the
   defeated fact and by the self-loop — is an assumption set: the two
   sides of Theorem 1(a) disagree.  Our enabled version excludes
   suppressed rules, after which both sides say "not assumption-free"
   and the theorem holds (property-tested in Test_props). *)
(* ------------------------------------------------------------------ *)

let test_enabled_version_literal_fails () =
  let p =
    program
      {| component c0 { -p. -r :- -r. }
         component c1 { -p. -r. r. }
         order c0 < c1. |}
  in
  let g = ground_at p "c0" in
  let m = interp [ "-p"; "-r" ] in
  Alcotest.(check bool) "M is a model" true (Ordered.Model.is_model g m);
  (* {-r} is an assumption set by the literal Definition 6: *)
  Alcotest.(check bool) "{-r} is an assumption set" true
    (Ordered.Model.is_assumption_set g m [ lit "-r" ]);
  (* the literal Definition 8 (all applied rules) reproduces M, so the
     literal Theorem 1(a) calls it assumption-free: *)
  Alcotest.(check bool) "literal reading: assumption-free" true
    (Ordered.Model.is_assumption_free ~semantics:`Literal g m);
  (* the corrected enabled version excludes the defeated fact: *)
  let v, _ = Ordered.Gop.Values.of_interp g m in
  Alcotest.(check bool) "corrected C^e excludes the defeated fact" false
    (List.exists
       (fun i ->
         Rule.equal (Ordered.Gop.rule_src g i) (rule "-r.")
         && g.Ordered.Gop.rules.(i).Ordered.Gop.comp
            = Ordered.Program.component_id_exn p "c1")
       (Ordered.Model.enabled_version g v));
  Alcotest.(check bool) "corrected reading: not assumption-free" false
    (Ordered.Model.is_assumption_free g m)

let suite =
  [ Alcotest.test_case "Prop 4: converse direction fails" `Quick
      test_prop4_converse_fails;
    Alcotest.test_case "Def 8 / Thm 1(a): literal enabled version fails" `Quick
      test_enabled_version_literal_fails;
    Alcotest.test_case "Thm 2: literal Def 11 is not equivalent" `Quick
      test_theorem2_literal_fails;
    Alcotest.test_case "Def 11(b): negative assumptions" `Quick
      test_def11b_negative_assumptions;
    Alcotest.test_case "corrected clause is conservative" `Quick
      test_corrected_clause_conservative
  ]
