(* Crash recovery under exhaustive fault injection.

   Governor.Budget.with_trip_at arms a budget whose k-th tick raises
   [Exhausted Fault]; the persistence layer ticks it before every
   low-level write (16-byte chunks when armed), so sweeping k over the
   whole run kills the "process" at every write boundary a real crash
   could hit — mid-record, mid-snapshot, mid-segment-header.  After each
   simulated crash the directory is reopened and the recovered store
   must equal the state after exactly the mutations whose append
   returned: the sound-prefix property of the ISSUE, checked at every
   tear point. *)

module P = Persist
module B = Governor.Budget
module Store = Kb.Store

(* A fixed script exercising every mutation kind, with snapshots
   interleaved every third append (so the sweep also tears snapshot temp
   files and fresh segment headers). *)
let script : Store.mutation list =
  [ Store.Define
      { name = "bird";
        isa = [];
        rules = Helpers.rules "fly(X) :- bird(X). bird(tweety)."
      };
    Store.Add_rule { obj = "bird"; rule = Helpers.rule "bird(sparrow)." };
    Store.Define
      { name = "penguin";
        isa = [ "bird" ];
        rules = [ Helpers.rule "-fly(penguin)." ]
      };
    Store.New_version { name = "penguin"; rules = None };
    Store.Add_rule { obj = "penguin@2"; rule = Helpers.rule "swim(penguin)." };
    Store.Remove_rule { obj = "bird"; rule = Helpers.rule "bird(sparrow)." };
    Store.Load { src = "component extra { t(1). u(X) :- t(X). }" };
    Store.Set_preference { rule = "exc"; over = "dflt" };
    Store.Remove_rule { obj = "extra"; rule = Helpers.rule "absent(0)." };
    Store.Set_preference { rule = "dflt"; over = "weak" };
    Store.New_version
      { name = "bird"; rules = Some (Helpers.rules "heavy(ostrich).") };
    Store.Clear_preference { rule = "dflt"; over = "weak" };
    Store.Add_rule { obj = "extra"; rule = Helpers.rule "t(2)." }
  ]

(* expected.(i) = state after the first i mutations *)
let expected =
  let s = Store.create () in
  let initial = Test_persist.repr s in
  let after =
    List.map
      (fun m ->
        Store.apply s m;
        Test_persist.repr s)
      script
  in
  Array.of_list (initial :: after)

let config dir = { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 }

(* One simulated run: fault injected at tick [k].  Returns how many
   appends completed and whether the fault actually fired. *)
let run_with_trip k dir =
  let budget = B.with_trip_at ~step:k () in
  let p, store, _ = P.open_dir (config dir) in
  let completed = ref 0 in
  let fired = ref false in
  (try
     List.iteri
       (fun i m ->
         Store.apply store m;
         P.append ~budget p m;
         incr completed;
         if (i + 1) mod 3 = 0 then ignore (P.snapshot ~budget p : int))
       script
   with B.Exhausted B.Fault -> fired := true);
  P.close p;
  (!completed, !fired)

let test_trip_sweep () =
  let k = ref 1 in
  let torn_seen = ref 0 in
  let finished = ref false in
  while not !finished do
    let dir = Test_persist.fresh_dir () in
    let completed, fired = run_with_trip !k dir in
    let p, store, r = P.open_dir (config dir) in
    Alcotest.(check string)
      (Printf.sprintf "trip at tick %d: recovered prefix" !k)
      expected.(completed)
      (Test_persist.repr store);
    Alcotest.(check int)
      (Printf.sprintf "trip at tick %d: sequence number" !k)
      completed r.P.seq;
    if r.P.torn <> None then incr torn_seen;
    (* recovery converges: a second recovery of the recovered directory
       finds nothing further to repair *)
    P.close p;
    let p2, store2, r2 = P.open_dir (config dir) in
    Alcotest.(check string)
      (Printf.sprintf "trip at tick %d: recovery is idempotent" !k)
      expected.(completed)
      (Test_persist.repr store2);
    Alcotest.(check bool)
      (Printf.sprintf "trip at tick %d: second recovery is clean" !k)
      true (r2.P.torn = None);
    P.close p2;
    Test_persist.rm_rf dir;
    if fired then incr k else finished := true
  done;
  (* sanity on the sweep itself: it covered many tear points, several of
     which left a mid-record tear for recovery to truncate *)
  Alcotest.(check bool)
    (Printf.sprintf "swept %d tear points" !k)
    true (!k > 50);
  Alcotest.(check bool)
    (Printf.sprintf "torn tails exercised (%d)" !torn_seen)
    true (!torn_seen > 0)

let suite =
  [ Alcotest.test_case "fault-injection trip sweep" `Quick test_trip_sweep ]
