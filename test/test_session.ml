(* The memoizing KB session (Kb.Session): hit-after-repeat, a miss after
   every mutating operation, partial results staying out of the cache,
   and the differential property — cached answers are identical to a
   fresh uncached store on random ordered programs. *)

open Logic
open Helpers
module KS = Kb.Session
module B = Ordered.Budget

let demo_src =
  "component top { fly(X) :- bird(X). bird(tweety). bird(penguin). }\n\
   component bot extends top { -fly(penguin). }"

let session_with src =
  let s = KS.create () in
  KS.load s src;
  s

let check_counters name ~hits ~misses s =
  let c = KS.counters s in
  Alcotest.(check int) (name ^ ": hits") hits c.KS.hits;
  Alcotest.(check int) (name ^ ": misses") misses c.KS.misses

let test_hit_after_repeat () =
  let s = session_with demo_src in
  let once = B.value (KS.stable_models s ~obj:"bot") in
  check_counters "first models call" ~hits:0 ~misses:1 s;
  let again = B.value (KS.stable_models s ~obj:"bot") in
  check_counters "repeat models call" ~hits:1 ~misses:1 s;
  Alcotest.(check bool) "same models" true (interp_set_equal once again);
  (* distinct parameters are distinct keys, not hits *)
  ignore (KS.stable_models ~limit:1 s ~obj:"bot");
  ignore (KS.stable_models ~engine:`Naive s ~obj:"bot");
  ignore (KS.assumption_free_models s ~obj:"bot");
  check_counters "other keys" ~hits:1 ~misses:4 s;
  (* query and explain memoize too *)
  ignore (KS.query_src s ~obj:"bot" "fly(penguin)");
  ignore (KS.query_src s ~obj:"bot" "fly(tweety)");
  check_counters "first queries (shared least model)" ~hits:2 ~misses:5 s;
  ignore (KS.explain s ~obj:"bot" (lit "-fly(penguin)"));
  ignore (KS.explain s ~obj:"bot" (lit "-fly(penguin)"));
  check_counters "explain twice" ~hits:3 ~misses:6 s

(* Delta eviction (PR 10): a mutation publishes a new view (one
   invalidation) but carries forward every cache entry whose viewpoint
   cone provably cannot see the change, and repairs the least model of
   the viewpoints that can. *)
let test_delta_eviction () =
  let s = session_with demo_src in
  let prime_bot () = ignore (B.value (KS.stable_models s ~obj:"bot")) in
  let hits () = (KS.counters s).KS.hits in
  prime_bot ();

  (* define: a fresh object is invisible to existing views — kept *)
  let before = KS.counters s in
  KS.define_src s ~isa:[ "bot" ] "extra" "p.";
  let after = KS.counters s in
  Alcotest.(check int)
    "define: one invalidation"
    (before.KS.invalidations + 1)
    after.KS.invalidations;
  Alcotest.(check int) "define: entries carried" before.KS.entries
    after.KS.entries;
  let h = hits () in
  prime_bot ();
  Alcotest.(check int) "define: repeat is a hit" (h + 1) (hits ());

  (* add_rule on extra: bot cannot see extra, so bot's entries survive;
     extra's least model is repaired in place and keeps serving hits *)
  ignore (KS.query_src s ~obj:"extra" "p");
  let before = KS.counters s in
  KS.add_rule_src s ~obj:"extra" "q :- p.";
  let after = KS.counters s in
  Alcotest.(check int)
    "add_rule: grounding + fixpoint repaired"
    (before.KS.repairs + 2) after.KS.repairs;
  let h = hits () in
  prime_bot ();
  Alcotest.(check int) "add_rule elsewhere: bot still hits" (h + 1) (hits ());
  let h = hits () in
  Alcotest.(check bool)
    "repaired least model is exact" true
    (KS.query_src s ~obj:"extra" "q" = Interp.True);
  Alcotest.(check int) "repaired entry serves the hit" (h + 1) (hits ());

  (* a fresh constant changes the Herbrand universe: repair must refuse
     and fall back — counted, and the next read recomputes *)
  let before = KS.counters s in
  KS.add_rule_src s ~obj:"extra" "w(zed).";
  let after = KS.counters s in
  Alcotest.(check bool)
    "fresh constant falls back" true
    (after.KS.fallbacks > before.KS.fallbacks);
  let m = (KS.counters s).KS.misses in
  Alcotest.(check bool)
    "recompute after fallback is exact" true
    (KS.query_src s ~obj:"extra" "w(zed)" = Interp.True);
  Alcotest.(check int) "fallback evicted: recompute is a miss" (m + 1)
    (KS.counters s).KS.misses;

  (* removal repairs too: q loses its only support *)
  let before = KS.counters s in
  Alcotest.(check bool)
    "rule removed" true
    (KS.remove_rule s ~obj:"extra" (rule "q :- p."));
  let after = KS.counters s in
  Alcotest.(check int)
    "remove_rule: grounding + fixpoint repaired"
    (before.KS.repairs + 2) after.KS.repairs;
  Alcotest.(check bool)
    "repaired least model dropped the head" true
    (KS.query_src s ~obj:"extra" "q" = Interp.Undefined);

  (* new_version is a fresh object: carried *)
  let before = KS.counters s in
  ignore (KS.new_version s ~rules:[ rule "-p." ] "extra");
  Alcotest.(check int) "new_version: entries carried" before.KS.entries
    (KS.counters s).KS.entries;

  (* removing an absent rule mutates nothing: still a hit afterwards *)
  prime_bot ();
  let before = KS.counters s in
  Alcotest.(check bool)
    "absent rule not removed" false
    (KS.remove_rule s ~obj:"extra" (rule "never :- here."));
  prime_bot ();
  let after = KS.counters s in
  Alcotest.(check int)
    "no invalidation for a no-op remove" before.KS.invalidations
    after.KS.invalidations;
  Alcotest.(check int) "repeat is a hit" (before.KS.hits + 1) after.KS.hits;

  (* the wholesale baseline restores flush-on-write *)
  KS.set_eviction s `Wholesale;
  Alcotest.(check bool) "eviction mode set" true (KS.eviction s = `Wholesale);
  KS.add_rule_src s ~obj:"extra" "z.";
  Alcotest.(check int) "wholesale: cache emptied" 0 (KS.counters s).KS.entries;
  let m = (KS.counters s).KS.misses in
  prime_bot ();
  Alcotest.(check int) "wholesale: recompute is a miss" (m + 1)
    (KS.counters s).KS.misses

let test_fingerprint_tracks_structure () =
  let a = session_with demo_src in
  let b = session_with demo_src in
  Alcotest.(check string)
    "identical KBs share a fingerprint" (KS.fingerprint a) (KS.fingerprint b);
  KS.add_rule_src b ~obj:"bot" "swims(penguin).";
  Alcotest.(check bool)
    "mutation changes the fingerprint" false
    (String.equal (KS.fingerprint a) (KS.fingerprint b))

let test_partial_not_cached () =
  let s = session_with demo_src in
  (* a 1-step budget trips in grounding (raises) or in enumeration
     (returns [Partial]); either way nothing may be cached *)
  (match KS.stable_models ~budget:(B.make ~max_steps:1 ()) s ~obj:"bot" with
  | B.Partial _ -> ()
  | B.Complete _ -> Alcotest.fail "1-step budget did not trip"
  | exception B.Exhausted _ -> ());
  let c = KS.counters s in
  Alcotest.(check int) "partial result not stored" 0 c.KS.entries;
  (* a later, well-funded call recomputes and completes *)
  match KS.stable_models s ~obj:"bot" with
  | B.Complete ms ->
    Alcotest.(check int) "full result" 1 (List.length ms);
    Alcotest.(check int) "now cached" 1 (KS.counters s).KS.entries
  | B.Partial _ -> Alcotest.fail "unlimited budget tripped"

(* Differential: session answers (first call and cached repeat) agree
   with a fresh uncached Kb on random ordered programs, across every
   object, both model kinds and engines. *)
let prop_cached_equals_uncached =
  qcheck ~count:60 ~print:print_program
    "session = fresh store on random KBs (and repeats hit)"
    (Test_props.gen_ordered 4)
    (fun p ->
      let src = print_program p in
      let s = KS.create () in
      KS.load s src;
      let fresh = Kb.create () in
      Kb.load fresh src;
      List.for_all
        (fun obj ->
          List.for_all
            (fun engine ->
              let of_store f = B.value (f ()) in
              let st_kb =
                of_store (fun () -> Kb.stable_models ~engine fresh ~obj)
              and af_kb =
                of_store (fun () ->
                    Kb.assumption_free_models ~engine fresh ~obj)
              in
              let st1 = of_store (fun () -> KS.stable_models ~engine s ~obj) in
              let before = (KS.counters s).KS.hits in
              let st2 = of_store (fun () -> KS.stable_models ~engine s ~obj) in
              let hit = (KS.counters s).KS.hits = before + 1 in
              let af = of_store (fun () ->
                  KS.assumption_free_models ~engine s ~obj)
              in
              hit
              && interp_set_equal st1 st_kb
              && interp_set_equal st2 st_kb
              && interp_set_equal af af_kb
              && Interp.equal
                   (KS.least_model s ~obj)
                   (Kb.least_model fresh ~obj))
            [ `Pruned; `Naive ])
        (KS.objects s))

let suite =
  [ Alcotest.test_case "hit after repeat" `Quick test_hit_after_repeat;
    Alcotest.test_case "delta eviction across mutations" `Quick
      test_delta_eviction;
    Alcotest.test_case "fingerprint tracks structure" `Quick
      test_fingerprint_tracks_structure;
    Alcotest.test_case "partial results are not cached" `Quick
      test_partial_not_cached;
    prop_cached_equals_uncached
  ]
