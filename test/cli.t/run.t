The olp CLI, driven over the paper's programs.

Sanity-check a program (components, order, safety):

  $ olp check penguin.olp
  2 component(s): c2, c1
    c1 < c2
  conflict [from c1]: -fly(X) :- ground_animal(X). [c1] can overrule fly(X) :- bird(X). [c2]
  conflict [from c1]: ground_animal(penguin). [c1] can overrule -ground_animal(X) :- bird(X). [c2]
  ok

The least model from the most specific component (Figure 1):

  $ olp least penguin.olp -c c1
  {bird(penguin), bird(pigeon), -fly(penguin), fly(pigeon), ground_animal(penguin), -ground_animal(pigeon)}

The viewpoint defaults to the unique minimal component:

  $ olp least penguin.olp
  {bird(penguin), bird(pigeon), -fly(penguin), fly(pigeon), ground_animal(penguin), -ground_animal(pigeon)}

From c2's own viewpoint there is no exception:

  $ olp query penguin.olp -c c2 'fly(penguin)'
  true

Ground queries return a three-valued answer:

  $ olp query penguin.olp 'fly(penguin)'
  false

Queries with variables enumerate the true instances:

  $ olp query penguin.olp 'fly(X)'
  1 answer(s)
  fly(pigeon)

Goal-directed proof reports how much of the program it explored:

  $ olp prove penguin.olp 'fly(pigeon)'
  true
  (explored 3 of 9 ground rules)

Explanations:

  $ olp explain penguin.olp 'fly(penguin)'
  fly(penguin) does not hold: the complement was derived by -fly(penguin) :- ground_animal(penguin). [component c1]

The loan program, scenario 3 (Figure 3): Expert3 overrules Expert4.

  $ olp query loan.olp 'take_loan'
  true

Stable models (Example 5: two of them):

  $ olp models p5.olp --kind stable
  2 model(s)
  {-a, b, c}
  {a, -b, c}

Assumption-free models include the least model {c}:

  $ olp models p5.olp --kind assumption-free
  3 model(s)
  {c}
  {-a, b, c}
  {a, -b, c}

The naive oracle enumerates the same set in its own (leaf-check) order,
and --stats exposes the search effort of either engine:

  $ olp models p5.olp --kind assumption-free --search naive
  3 model(s)
  {c}
  {a, -b, c}
  {-a, b, c}

  $ olp models p5.olp --kind assumption-free --stats 2>&1
  3 model(s)
  {c}
  {-a, b, c}
  {a, -b, c}
  search: 7 nodes, 3 leaves, 2 pruned subtrees, 2 forced branches, 3 models

The compiled kernel reproduces the pruned list (contents *and* order)
and reports its solver counters after the shared ones:

  $ olp models p5.olp --kind assumption-free --search compiled --stats 2>&1
  3 model(s)
  {c}
  {-a, b, c}
  {a, -b, c}
  search: 7 nodes, 3 leaves, 2 pruned subtrees, 2 forced branches, 3 models; solver: 7 propagations, 1 conflicts, 1 learned nogoods (0 evicted), 0 restarts

Rule preferences: rules may be named, and prefer declarations select
the preferred stable models (docs/SEMANTICS.md).  Without a
preference the default and the exception defeat each other and fly
stays undefined; the preference breaks the tie:

  $ cat > prefs.olp <<'OLP'
  > b  : bird(tweety).
  > p  : penguin(tweety).
  > f  : fly(X) :- bird(X).
  > nf : -fly(X) :- penguin(X).
  > prefer nf > f.
  > OLP
  $ olp check prefs.olp
  1 component(s): main
  1 preference(s):
    nf > f
  conflict [from main]: f : fly(X) :- bird(X). [main] and nf : -fly(X) :- penguin(X). [main] can defeat each other
  ok
  $ olp models prefs.olp
  1 model(s)
  {bird(tweety), penguin(tweety)}
  $ olp models prefs.olp --prefer compiled
  1 model(s)
  {bird(tweety), -fly(tweety), penguin(tweety)}

--search picks the stable search run on the compiled preference
program; the flat-array kernel gives the same preferred models:

  $ olp models prefs.olp --prefer compiled --search compiled --stats 2>&1
  1 model(s)
  {bird(tweety), -fly(tweety), penguin(tweety)}
  search: 1 nodes, 1 leaves, 0 pruned subtrees, 0 forced branches, 1 models; solver: 3 propagations, 0 conflicts, 0 learned nogoods (0 evicted), 0 restarts

The naive engine is the reference oracle — same models, its own
enumeration order:

  $ olp models prefs.olp --prefer naive
  1 model(s)
  {bird(tweety), -fly(tweety), penguin(tweety)}

A preference unrelated to any conflict keeps the model set (Example 5
named); the enumeration order of both engines is pinned:

  $ cat > p5n.olp <<'OLP'
  > component c2 { f1 : a. f2 : b. f3 : c. }
  > component c1 extends c2 { r1 : -a :- b, c. r2 : -b :- a. r3 : -b :- -b. }
  > prefer f1 > f2.
  > OLP
  $ olp models p5n.olp --prefer compiled
  2 model(s)
  {-a, b, c}
  {a, -b, c}
  $ olp models p5n.olp --prefer naive
  2 model(s)
  {a, -b, c}
  {-a, b, c}

Preference errors are typed: a cycle through the declarations, an
unknown rule name, and the kind restriction:

  $ echo 'a : p. b : -p. prefer a > b, b > a.' > cyc.olp && olp check cyc.olp
  1 component(s): main
  2 preference(s):
    a > b
    b > a
  error: preference cycle: a > a > b — the combined rule order (component order plus prefer declarations) must be a strict partial order
  [2]
  $ echo 'a : p. prefer a > ghost.' > ghost.olp && olp models ghost.olp --prefer compiled
  error: preferences: prefer names unknown rule "ghost" (no rule [ghost : ...] in this viewpoint)
  [2]
  $ olp models prefs.olp --prefer compiled --kind total
  --prefer applies to stable models only
  [2]

The ground view, with component tags:

  $ olp ground p5.olp | sort
  [c1] -a :- b, c.
  [c1] -b :- -b.
  [c1] -b :- a.
  [c2] a.
  [c2] b.
  [c2] c.

Errors are reported with positions and a non-zero exit code:

  $ olp least broken.olp
  olp: FILE argument: no 'broken.olp' file or directory
  Usage: olp least [OPTION]… FILE
  Try 'olp least --help' or 'olp --help' for more information.
  [124]

  $ echo 'component a { p. } order a < b.' > bad.olp && olp check bad.olp
  bad.olp: unknown component "b" in order
  [2]

  $ echo 'p :- .' > syn.olp && olp check syn.olp
  syn.olp: syntax error at 1:6: expected a term, found '.'
  [2]

The REPL reads queries and colon-commands from stdin:

  $ printf ':components\nfly(X)\n:explain fly(penguin)\n:assert c1 swims(penguin).\nswims(X)\nfly(tweety)\n:quit\n' | olp repl penguin.olp
  c2
  c1 < c2
  fly(pigeon)
  fly(penguin) does not hold: the complement was derived by -fly(penguin) :- ground_animal(penguin). [component c1]
  swims(penguin)
  undefined

Bulk facts load from tab-separated files into the viewpoint component:

  $ printf 'a\tb\nb\tc\nc\td\n' > parent.tsv
  $ cat > anc.olp <<'OLP'
  > component main {
  >   anc(X, Y) :- parent(X, Y).
  >   anc(X, Y) :- parent(X, Z), anc(Z, Y).
  > }
  > OLP
  $ olp query anc.olp --facts parent=parent.tsv 'anc(a, X)'
  3 answer(s)
  anc(a, b)
  anc(a, c)
  anc(a, d)

  $ printf 'a\tb\nc\n' > bad.tsv && olp least anc.olp --facts parent=bad.tsv
  bad.tsv: line 2: expected 2 field(s) for parent, found 1
  [2]

Graphviz exports:

  $ olp check penguin.olp --dot
  digraph components {
    rankdir=BT;
    "c2";
    "c1";
    "c1" -> "c2";
  }

  $ olp explain penguin.olp --dot 'fly(pigeon)' | head -6
  digraph derivation {
    rankdir=BT;
    "Lbird(pigeon)" [label="bird(pigeon)", style=filled, fillcolor=palegreen];
    "Lfly(pigeon)" [label="fly(pigeon)", style=filled, fillcolor=palegreen];
    "L-ground_animal(pigeon)" [label="-ground_animal(pigeon)", style=filled, fillcolor=palegreen];
    R1 [shape=box, label="c2", style=filled, fillcolor=lightyellow];

Cautious and brave reasoning over stable models (Example 5):

  $ olp query p5.olp --mode cautious 'c'
  true
  $ olp query p5.olp --mode cautious 'a'
  false
  $ olp query p5.olp --mode brave 'a'
  true
Negative literals need "--" so the shell of options ends (or use ~):

  $ olp query p5.olp --mode brave -- '-a'
  true
  $ olp query p5.olp --mode brave '~a'
  true

Grounding diagnostics:

  $ olp ground penguin.olp --stats
  6 atoms, 9 rules, 6 body literals, 3 overruling edges, 0 defeating edges

More REPL commands: rules listing, saving, and the least model:

  $ printf ':rules c1\n:least\n:save saved.olp\n:quit\n' | olp repl penguin.olp
  component c1:
    ground_animal(penguin).
    -fly(X) :- ground_animal(X).
  {bird(penguin), bird(pigeon), -fly(penguin), fly(pigeon), ground_animal(penguin), -ground_animal(pigeon)}
  saved to saved.olp

The saved file reloads to the same program:

  $ olp least saved.olp
  {bird(penguin), bird(pigeon), -fly(penguin), fly(pigeon), ground_animal(penguin), -ground_animal(pigeon)}

Grounding blow-up guard: a typed diagnostic naming the offending rule,
exit code 2 (error):

  $ olp least penguin.olp --max-instances 3
  error: grounding overflow: 4 ground instances exceed the cap of 3 (universe size 2); last rule instantiated: fly(X) :- bird(X).
  [2]

Resource budgets.  --timeout 0 is checked before any work starts, so every
subcommand exits 3 (partial / budget exhausted) without output:

  $ olp check penguin.olp --timeout 0
  budget exhausted (deadline)
  [3]
  $ olp ground penguin.olp --timeout 0
  budget exhausted (deadline)
  [3]
  $ olp least penguin.olp --timeout 0
  budget exhausted (deadline)
  [3]
  $ olp models p5.olp --timeout 0
  budget exhausted (deadline)
  [3]
  $ olp query penguin.olp --timeout 0 'fly(penguin)'
  budget exhausted (deadline)
  [3]
  $ olp prove penguin.olp --timeout 0 'fly(pigeon)'
  budget exhausted (deadline)
  [3]
  $ olp explain penguin.olp --timeout 0 'fly(penguin)'
  budget exhausted (deadline)
  [3]

A step budget is deterministic.  Exhaustion mid-enumeration surrenders the
models found so far — a prefix of the full enumeration (here the least
model {c}, found before the two stable models) — and exits 3:

  $ olp models p5.olp --max-steps 10
  1 model(s)
  {c}
  warning: enumeration truncated, budget exhausted (steps); the models above are a prefix of the full enumeration
  [3]

A sufficient budget completes with exit 0:

  $ olp models p5.olp --max-steps 20
  2 model(s)
  {-a, b, c}
  {a, -b, c}

Exhaustion during the fixpoint itself has no sound partial answer:

  $ olp least penguin.olp --max-steps 2
  budget exhausted (steps)
  [3]

The REPL budgets each line separately and returns to the prompt:

  $ printf ':stable\nfly(X)\n:quit\n' | olp repl penguin.olp --max-steps 5
  budget exhausted (steps)
  budget exhausted (steps)
