(* The parallel-serving machinery, attacked directly: pinned session
   snapshots must be immutable while writers churn the master store,
   shard locks must admit disjoint-object writers concurrently (and the
   writers_peak gauge must prove the overlap), and read verbs must never
   need the engine's io lock. *)

module W = Server.Wire
module Engine = Server.Engine
module Shards = Server.Shards
module M = Governor.Metrics

(* ------------------------------------------------------------------ *)
(* Snapshots: readers never see a torn store                           *)
(* ------------------------------------------------------------------ *)

(* One writer appends facts m(1), m(2), ... one mutation at a time;
   reader domains repeatedly compute the least model from a pinned
   snapshot.  Because each fact lands in its own published version, the
   set of m(_) facts a reader observes must be a {e prefix} {m(1)..m(j)}
   — any gap means the reader computed against a half-mutated store.
   Versions must also be monotone per reader. *)
let test_snapshot_prefix () =
  let s = Kb.Session.create () in
  Kb.Session.define_src s "acc" "seed.";
  let total = 40 in
  let lit i = Lang.Parser.parse_literal (Printf.sprintf "m(%d)" i) in
  let reader () =
    let violations = ref [] in
    let last_version = ref (-1) in
    let rec loop () =
      let v = Kb.Session.version s in
      if v < !last_version then
        violations := Printf.sprintf "version went backwards: %d -> %d"
                        !last_version v :: !violations;
      last_version := max !last_version v;
      let model = Kb.Session.least_model s ~obj:"acc" in
      let seen =
        List.filter
          (fun i -> Logic.Interp.value_lit model (lit i) = Logic.Interp.True)
          (List.init total (fun i -> i + 1))
      in
      let j = List.length seen in
      if seen <> List.init j (fun i -> i + 1) then
        violations :=
          Printf.sprintf "torn snapshot: saw {%s}"
            (String.concat "," (List.map string_of_int seen)) :: !violations;
      if j < total then loop () else !violations
    in
    loop ()
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  for i = 1 to total do
    Kb.Session.add_fact s ~obj:"acc"
      (Lang.Parser.parse_literal (Printf.sprintf "m(%d)" i))
  done;
  let violations = List.concat_map Domain.join readers in
  (match violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%d violation(s), first: %s" (List.length violations) v);
  let c = Kb.Session.counters s in
  Alcotest.(check int) "one publish per mutation" (total + 1) c.invalidations

(* new_version churn: every published view must be a complete copy —
   version lists only ever grow, and the base object keeps answering. *)
let test_new_version_churn () =
  let s = Kb.Session.create () in
  Kb.Session.define_src s "acc" "seed.";
  let rounds = 30 in
  let reader () =
    let bad = ref [] in
    let last = ref 1 in
    let rec loop () =
      let vs = List.length (Kb.Session.versions s "acc") in
      if vs < !last then
        bad := Printf.sprintf "version list shrank: %d -> %d" !last vs :: !bad;
      last := max !last vs;
      (match Kb.Session.query_src s ~obj:"acc" "seed" with
      | Logic.Interp.True -> ()
      | v ->
        bad := ("base fact lost: " ^
                (match v with Logic.Interp.False -> "false" | _ -> "undefined"))
               :: !bad);
      if vs < rounds + 1 then loop () else !bad
    in
    loop ()
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  for _ = 1 to rounds do
    ignore (Kb.Session.new_version s "acc" : string)
  done;
  match List.concat_map Domain.join readers with
  | [] -> ()
  | v :: _ -> Alcotest.failf "churn violation: %s" v

(* ------------------------------------------------------------------ *)
(* Shard locks                                                         *)
(* ------------------------------------------------------------------ *)

let test_shards_basics () =
  let sh = Shards.create ~shards:8 () in
  Alcotest.(check int) "size" 8 (Shards.size sh);
  List.iter
    (fun k ->
      let i = Shards.index sh k in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < 8))
    [ "a"; "b"; ""; "long-object-name"; "x@2" ];
  Alcotest.(check int) "stable hash" (Shards.index sh "a") (Shards.index sh "a");
  (* reverse-order key sets cannot deadlock: acquisition is sorted *)
  let stop = ref false in
  let spin keys =
    Thread.create
      (fun () ->
        while not !stop do
          Shards.with_keys sh (`Keys keys) (fun () -> Thread.yield ())
        done)
      ()
  in
  let t1 = spin [ "a"; "b"; "c"; "d" ] and t2 = spin [ "d"; "c"; "b"; "a" ] in
  let t3 = spin [] in
  Thread.delay 0.05;
  stop := true;
  List.iter Thread.join [ t1; t2; t3 ];
  (* [`All] nests every stripe and still releases them *)
  Shards.with_keys sh `All (fun () -> ());
  Shards.with_keys sh (`Keys [ "a" ]) (fun () -> ())

(* Two writers on distinct objects must both pass shard admission while
   the io lock is unavailable: hold the engine's io lock from the test,
   fire two defines, and wait for the writers gauge to prove both are
   inside their (disjoint) shard regions at once.  Deterministic — the
   writers cannot finish while we hold the lock, and they cannot be
   blocked by each other's stripe. *)
let test_disjoint_writers_overlap () =
  let e = Engine.create () in
  let m = Engine.metrics e in
  (* two objects on different stripes of the engine's shard table; the
     shard count is an engine default, so probe via a scratch table of
     the same size is not possible — instead just pick from a pool until
     two distinct stripes are found *)
  let sh = Shards.create () in
  let names = List.init 64 (Printf.sprintf "obj%d") in
  let a = List.hd names in
  let b =
    match List.find_opt (fun n -> Shards.index sh n <> Shards.index sh a) names
    with
    | Some b -> b
    | None -> Alcotest.fail "no second stripe found"
  in
  let spawn name =
    Thread.create
      (fun () ->
        ignore
          (Engine.handle_line e
             (Printf.sprintf {|{"op":"define","name":"%s","rules":"p."}|} name)
            : W.json))
      ()
  in
  let peak = ref 0 in
  Engine.exclusively e (fun () ->
      let t1 = spawn a and t2 = spawn b in
      let deadline = Unix.gettimeofday () +. 5. in
      while M.get m "writers_peak" < 2 && Unix.gettimeofday () < deadline do
        Thread.delay 0.002
      done;
      peak := M.get m "writers_peak";
      (* release the io lock by returning; the writers then finish *)
      ignore (t1, t2));
  (* both writers complete once the io lock is free *)
  let deadline = Unix.gettimeofday () +. 5. in
  while M.get m "ok" < 2 && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  Alcotest.(check bool)
    (Printf.sprintf "writers_peak >= 2 (got %d)" !peak)
    true (!peak >= 2);
  Alcotest.(check int) "both defines ok" 2 (M.get m "ok");
  Alcotest.(check bool) "both objects exist" true
    (List.mem a (Kb.Session.objects (Engine.session e))
    && List.mem b (Kb.Session.objects (Engine.session e)))

(* ------------------------------------------------------------------ *)
(* Reads are lock-free                                                 *)
(* ------------------------------------------------------------------ *)

(* A read verb served to completion while the io lock is held from
   another thread: before the snapshot rework this deadlocked, because
   every verb serialized on that one mutex. *)
let test_reads_bypass_io_lock () =
  let e = Engine.create () in
  ignore
    (Engine.handle_line e
       {|{"op":"define","name":"kb","rules":"p. q :- p."}|}
      : W.json);
  Engine.exclusively e (fun () ->
      let result = ref None in
      let th =
        Thread.create
          (fun () ->
            result :=
              Some (Engine.handle_line e {|{"op":"query","obj":"kb","lit":"q"}|}))
          ()
      in
      (* joining inside the critical section is the point: the read must
         finish while we still hold the lock *)
      Thread.join th;
      match !result with
      | Some j ->
        (match W.member "status" j, W.member "value" j with
        | Some (W.String "ok"), Some (W.String "true") -> ()
        | _ -> Alcotest.failf "read under io lock: %s" (W.to_string j))
      | None -> Alcotest.fail "read did not run")

(* Batched reads riding one frame take the same lock-free path. *)
let test_batch_reads_bypass_io_lock () =
  let e = Engine.create () in
  ignore
    (Engine.handle_line e {|{"op":"define","name":"kb","rules":"p."}|}
      : W.json);
  Engine.exclusively e (fun () ->
      let result = ref None in
      let th =
        Thread.create
          (fun () ->
            result :=
              Some
                (Engine.handle_line e
                   {|{"op":"batch","requests":[{"op":"query","obj":"kb","lit":"p"},{"op":"stats"}]}|}))
          ()
      in
      Thread.join th;
      match !result with
      | Some j -> (
        match W.member "status" j, W.member "count" j with
        | Some (W.String "ok"), Some (W.Int 2) -> ()
        | _ -> Alcotest.failf "batch under io lock: %s" (W.to_string j))
      | None -> Alcotest.fail "batch did not run")

let suite =
  [ Alcotest.test_case "pinned snapshots are prefixes" `Quick
      test_snapshot_prefix;
    Alcotest.test_case "new_version churn keeps views whole" `Quick
      test_new_version_churn;
    Alcotest.test_case "shard lock ordering" `Quick test_shards_basics;
    Alcotest.test_case "disjoint writers overlap (writers_peak)" `Quick
      test_disjoint_writers_overlap;
    Alcotest.test_case "reads bypass the io lock" `Quick
      test_reads_bypass_io_lock;
    Alcotest.test_case "batched reads bypass the io lock" `Quick
      test_batch_reads_bypass_io_lock
  ]
