(* Robustness: function symbols end-to-end, large programs, deep chains
   (no stack overflows in engines, parser or printers). *)

open Logic
open Helpers

(* ------------------------------------------------------------------ *)
(* Function symbols                                                    *)
(* ------------------------------------------------------------------ *)

let test_successor_arithmetic () =
  (* Peano evenness with a depth-bounded universe. *)
  let p =
    program
      {| component main {
           nat(z).
           nat(s(X)) :- nat(X).
           even(z).
           even(s(s(X))) :- even(X).
           -even(s(X)) :- even(X).
         } |}
  in
  let g = Ordered.Gop.ground ~depth:6 p 0 in
  let m = Ordered.Vfix.least_model g in
  Alcotest.check testable_value "even(z)" Interp.True
    (Interp.value_lit m (lit "even(z)"));
  Alcotest.check testable_value "even(s(s(z)))" Interp.True
    (Interp.value_lit m (lit "even(s(s(z)))"));
  Alcotest.check testable_value "-even(s(z))" Interp.True
    (Interp.value_lit m (lit "-even(s(z))"));
  Alcotest.check testable_value "-even(s(s(s(z))))" Interp.True
    (Interp.value_lit m (lit "-even(s(s(s(z))))"))

let test_function_symbols_in_queries () =
  let p =
    program
      {| component main {
           holds(pair(a, b)).
           holds(pair(b, a)).
           sym(P) :- holds(P).
         } |}
  in
  let g = Ordered.Gop.ground ~depth:1 p 0 in
  let answers = Ordered.Query.holds_instances g (lit "sym(pair(X, Y))") in
  Alcotest.(check int) "two structured answers" 2 (List.length answers)

let test_depth_bound_controls_universe () =
  let rules = rules "p(s(z)). q(X) :- p(X). r(s(X)) :- q(X)." in
  let shallow = Ground.Grounder.naive ~depth:0 rules in
  let deep = Ground.Grounder.naive ~depth:2 rules in
  Alcotest.(check bool) "deeper universe, more instances" true
    (List.length deep.Ground.Grounder.rules
    > List.length shallow.Ground.Grounder.rules)

(* ------------------------------------------------------------------ *)
(* Large inputs                                                        *)
(* ------------------------------------------------------------------ *)

let big_chain n =
  let buf = Buffer.create (n * 16) in
  Buffer.add_string buf "component main {\n a0.\n";
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf " a%d :- a%d.\n" i (i - 1))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let test_deep_chain_no_overflow () =
  let n = 20_000 in
  let p = program (big_chain n) in
  let g = Ordered.Gop.ground p 0 in
  let m = Ordered.Vfix.least_model g in
  Alcotest.(check int) "all derived" (n + 1) (Interp.cardinal m);
  Alcotest.check testable_value "last element" Interp.True
    (Interp.value_lit m (lit (Printf.sprintf "a%d" n)))

let test_parser_scales () =
  (* Parsing tens of thousands of rules stays linear and stack-safe. *)
  let src = big_chain 20_000 in
  let p = program src in
  Alcotest.(check int) "rules parsed" 20_001
    (List.length (Ordered.Program.all_rules p))

let test_goal_directed_on_large_program () =
  let p = program (big_chain 5_000) in
  let g = Ordered.Gop.ground p 0 in
  Alcotest.(check bool) "prove deep goal" true
    (Ordered.Prove.holds g (lit "a5000"));
  let _, stats = Ordered.Prove.holds_with_stats g (lit "a10") in
  Alcotest.(check int) "shallow goal explores shallow prefix" 11
    stats.Ordered.Prove.relevant_rules

let test_many_components () =
  (* A 200-deep component chain with one overruling per level. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "component c0 { p. }\n";
  for i = 1 to 200 do
    Buffer.add_string buf
      (Printf.sprintf "component c%d extends c%d { %s }\n" i (i - 1)
         (if i mod 2 = 0 then "p." else "-p."))
  done;
  let p = program (Buffer.contents buf) in
  let g = ground_at p "c200" in
  Alcotest.check testable_value "lowest layer wins" Interp.True
    (Interp.value_lit (Ordered.Vfix.least_model g) (lit "p"))

let test_wide_bodies () =
  (* One rule with a 2000-literal body. *)
  let body = List.init 2000 (fun i -> Printf.sprintf "b%d" i) in
  let src =
    "goal :- " ^ String.concat ", " body ^ ".\n"
    ^ String.concat "\n" (List.map (fun b -> b ^ ".") body)
  in
  let p = Ordered.Program.singleton (rules src) in
  let g = ground_at p "main" in
  Alcotest.check testable_value "wide body fires" Interp.True
    (Interp.value_lit (Ordered.Vfix.least_model g) (lit "goal"))

let test_datalog_large_wfs () =
  (* Well-founded model of a 2000-position game, total positals aside. *)
  let rules =
    Lang.Parser.parse_rule "win(X) :- move(X, Y), -win(Y)."
    :: List.init 1999 (fun i ->
           Rule.fact
             (Literal.pos (Atom.make "move" [ Term.Int i; Term.Int (i + 1) ])))
  in
  let e = Datalog.Engine.load rules in
  Alcotest.check testable_value "last position lost" Interp.False
    (Datalog.Engine.holds e (lit "win(1999)"));
  Alcotest.check testable_value "second-to-last won" Interp.True
    (Datalog.Engine.holds e (lit "win(1998)"))

let suite =
  [ Alcotest.test_case "successor arithmetic with depth bound" `Quick
      test_successor_arithmetic;
    Alcotest.test_case "function symbols in query answers" `Quick
      test_function_symbols_in_queries;
    Alcotest.test_case "depth bound controls the universe" `Quick
      test_depth_bound_controls_universe;
    Alcotest.test_case "20k-deep chain, no overflow" `Slow
      test_deep_chain_no_overflow;
    Alcotest.test_case "parser scales to 20k rules" `Slow test_parser_scales;
    Alcotest.test_case "goal-directed proof on large programs" `Slow
      test_goal_directed_on_large_program;
    Alcotest.test_case "200-deep component chain" `Slow test_many_components;
    Alcotest.test_case "2000-literal body" `Slow test_wide_bodies;
    Alcotest.test_case "datalog: 2000-position game" `Slow test_datalog_large_wfs
  ]
