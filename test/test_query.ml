(* Goal-directed proving (Prove) and non-ground queries (Query). *)

open Logic
open Helpers

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let g1 () = ground_at (program p1_src) "c1"

(* ------------------------------------------------------------------ *)
(* Prove                                                               *)
(* ------------------------------------------------------------------ *)

let test_prove_agrees_on_p1 () =
  let g = g1 () in
  let m = Ordered.Vfix.least_model g in
  List.iter
    (fun a ->
      List.iter
        (fun pol ->
          let l = Literal.make pol a in
          Alcotest.check testable_value (Literal.to_string l)
            (Interp.value_lit m l) (Ordered.Prove.value g l))
        [ true; false ])
    g.Ordered.Gop.active_base

let test_prove_unknown_literal () =
  let g = g1 () in
  Alcotest.(check bool) "unknown atom fails" false
    (Ordered.Prove.holds g (lit "made_up(thing)"));
  Alcotest.check testable_value "unknown atom undefined" Interp.Undefined
    (Ordered.Prove.value g (lit "made_up(thing)"))

let test_prove_requires_ground () =
  match Ordered.Prove.holds (g1 ()) (lit "fly(X)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-ground goal should be rejected"

let test_prove_closure_is_partial () =
  (* Two disconnected islands: proving in one should not touch the
     other. *)
  let p =
    program
      {| component main {
           a0. a1 :- a0. a2 :- a1.
           b0. b1 :- b0. b2 :- b1. b3 :- b2.
         } |}
  in
  let g = ground_at p "main" in
  let holds, stats = Ordered.Prove.holds_with_stats g (lit "a2") in
  Alcotest.(check bool) "a2 provable" true holds;
  Alcotest.(check int) "only the a-island explored" 3
    stats.Ordered.Prove.relevant_rules;
  Alcotest.(check int) "total is both islands" 7
    stats.Ordered.Prove.total_rules

let test_prove_explores_suppressor_blockers () =
  (* fly(pigeon) needs the suppressor -fly(pigeon) :- ground_animal(pigeon)
     blocked, which needs -ground_animal(pigeon), which needs
     bird(pigeon): the closure must pull all of that in. *)
  let g = g1 () in
  let holds, stats = Ordered.Prove.holds_with_stats g (lit "fly(pigeon)") in
  Alcotest.(check bool) "fly(pigeon) provable" true holds;
  Alcotest.(check bool) "closure is non-trivial" true
    (stats.Ordered.Prove.relevant_rules >= 3)

let prop_prove_agrees =
  qcheck ~count:120 ~print:Test_props.print_program_and_literal
    "Prove = materialised least model"
    Test_props.gen_program_and_literal
    (fun (p, l) ->
      let g = Ordered.Gop.ground p 0 in
      let m = Ordered.Vfix.least_model g in
      Ordered.Prove.value g l = Interp.value_lit m l)

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

let test_query_ground () =
  let g = g1 () in
  Alcotest.check testable_value "ground ask" Interp.False
    (Ordered.Query.ask g (lit "fly(penguin)"))

let test_query_answers () =
  let g = g1 () in
  Alcotest.(check (list testable_literal)) "who flies?"
    [ lit "fly(pigeon)" ]
    (Ordered.Query.holds_instances g (lit "fly(X)"));
  Alcotest.(check (list testable_literal)) "who does not fly?"
    [ lit "-fly(penguin)" ]
    (Ordered.Query.holds_instances g (lit "-fly(X)"));
  Alcotest.(check int) "all birds" 2
    (List.length (Ordered.Query.answers g (lit "bird(X)")));
  Alcotest.(check (list testable_literal)) "no matches"
    []
    (Ordered.Query.holds_instances g (lit "swims(X)"))

let test_query_ground_hit_and_miss () =
  let g = g1 () in
  Alcotest.(check int) "ground query true: one empty answer" 1
    (List.length (Ordered.Query.answers g (lit "bird(pigeon)")));
  Alcotest.(check int) "ground query false: no answers" 0
    (List.length (Ordered.Query.answers g (lit "fly(penguin)")))

let test_query_conjunctive () =
  let g = g1 () in
  let answers =
    Ordered.Query.answers_conj g [ lit "bird(X)"; lit "fly(X)" ]
  in
  (match answers with
  | [ s ] ->
    Alcotest.check testable_term "join binds X" (term "pigeon")
      (Subst.apply_term s (term "X"))
  | other ->
    Alcotest.fail (Printf.sprintf "expected 1 answer, got %d" (List.length other)));
  (* shared variables join across literals *)
  Alcotest.(check int) "contradictory conjunction" 0
    (List.length
       (Ordered.Query.answers_conj g [ lit "bird(X)"; lit "ground_animal(X)"; lit "fly(X)" ]))

let test_query_conj_builtin () =
  let p =
    program "component main { n(1). n(2). n(5). }"
  in
  let g = ground_at p "main" in
  Alcotest.(check int) "n(X), X > 1 has two answers" 2
    (List.length (Ordered.Query.answers_conj g [ lit "n(X)"; lit "X > 1" ]));
  match Ordered.Query.answers_conj g [ lit "X > 1" ] with
  | exception Ordered.Diag.Error (Ordered.Diag.Nonground_builtin _) -> ()
  | _ -> Alcotest.fail "unbound builtin should be rejected"

let test_query_empty_conj () =
  let g = g1 () in
  Alcotest.(check int) "empty conjunction: one empty answer" 1
    (List.length (Ordered.Query.answers_conj g []))

let suite =
  [ Alcotest.test_case "prove agrees on P1" `Quick test_prove_agrees_on_p1;
    Alcotest.test_case "prove: unknown literal" `Quick test_prove_unknown_literal;
    Alcotest.test_case "prove: ground goals only" `Quick test_prove_requires_ground;
    Alcotest.test_case "prove: closure stays local" `Quick
      test_prove_closure_is_partial;
    Alcotest.test_case "prove: suppressor blockers explored" `Quick
      test_prove_explores_suppressor_blockers;
    prop_prove_agrees;
    Alcotest.test_case "query: ground ask" `Quick test_query_ground;
    Alcotest.test_case "query: answers" `Quick test_query_answers;
    Alcotest.test_case "query: ground hit and miss" `Quick
      test_query_ground_hit_and_miss;
    Alcotest.test_case "query: conjunctive joins" `Quick test_query_conjunctive;
    Alcotest.test_case "query: builtins in conjunctions" `Quick
      test_query_conj_builtin;
    Alcotest.test_case "query: empty conjunction" `Quick test_query_empty_conj
  ]
