(* Unit tests for the rule-preference subsystem: surface syntax, spec
   validation (typed Diag errors), the compiled route, the naive oracle,
   and trace-mode control atoms, on small hand-checked programs. *)

open Logic
open Helpers
module B = Ordered.Budget
module D = Ordered.Diag

let v = B.value
let check_set = Alcotest.check testable_interp_set

let spec_of ?(prefs = []) src =
  let prog = program src in
  Prefer.Spec.make prog 0 prefs

let compiled ?trace spec = v (Prefer.Compile.preferred_models (Prefer.Compile.compile ?trace spec))
let naive spec = v (Prefer.Naive.preferred_models spec)

(* ------------------------------------------------------------------ *)
(* Surface syntax                                                      *)
(* ------------------------------------------------------------------ *)

let test_parse_named () =
  let r = Lang.Parser.parse_rule "nf : -fly(X) :- penguin(X)." in
  Alcotest.(check (option string)) "name" (Some "nf") (Rule.name r);
  Alcotest.(check string) "round trip" "nf : -fly(X) :- penguin(X)."
    (Rule.to_string r);
  let r2 = Lang.Parser.parse_rule (Rule.to_string r) in
  Alcotest.check testable_rule "reparse" r r2;
  (* a named rule differs from its unnamed twin *)
  let bare = Lang.Parser.parse_rule "-fly(X) :- penguin(X)." in
  Alcotest.(check bool) "name is identity" false (Rule.equal r bare)

let test_parse_prefer () =
  let ast = Lang.Parser.parse_file "prefer a > b, c > d. prefer e > f." in
  Alcotest.(check (list (pair string string)))
    "pairs"
    [ ("a", "b"); ("c", "d"); ("e", "f") ]
    (Lang.Ast.prefer_pairs ast);
  (* pp round trip *)
  let printed = Format.asprintf "%a" Lang.Ast.pp ast in
  Alcotest.(check (list (pair string string)))
    "pp round trip"
    [ ("a", "b"); ("c", "d"); ("e", "f") ]
    (Lang.Ast.prefer_pairs (Lang.Parser.parse_file printed))

let test_parse_errors () =
  let raises src =
    match Lang.Parser.parse_file src with
    | exception (Lang.Parser.Error _ | Lang.Lexer.Error _) -> ()
    | _ -> Alcotest.fail ("parser should reject " ^ src)
  in
  raises "prefer a < b.";
  raises "prefer a > .";
  raises "prefer > b.";
  raises "r1 : : p."

(* ------------------------------------------------------------------ *)
(* Spec validation                                                     *)
(* ------------------------------------------------------------------ *)

let penguins =
  {| b : bird(tweety).
     p : penguin(tweety).
     f : fly(X) :- bird(X).
     nf : -fly(X) :- penguin(X). |}

let test_validation () =
  (* unknown rule name *)
  (match spec_of ~prefs:[ ("nf", "nosuch") ] penguins with
  | exception D.Error (D.Invalid_input _) -> ()
  | _ -> Alcotest.fail "unknown rule name should be rejected");
  (* self-preference *)
  (match spec_of ~prefs:[ ("f", "f") ] penguins with
  | exception D.Error (D.Preference_cycle { cycle }) ->
    Alcotest.(check (list string)) "self cycle" [ "f"; "f" ] cycle
  | _ -> Alcotest.fail "self-preference should be rejected");
  (* cycle among prefs *)
  (match spec_of ~prefs:[ ("f", "nf"); ("nf", "f") ] penguins with
  | exception D.Error (D.Preference_cycle _) -> ()
  | _ -> Alcotest.fail "pref cycle should be rejected");
  (* duplicate rule name *)
  (match spec_of "r : p. r : q." with
  | exception D.Error (D.Invalid_input _) -> ()
  | _ -> Alcotest.fail "duplicate rule name should be rejected");
  (* a preference against the component order closes a cycle *)
  let contra =
    {| component low extends high { a : p. }
       component high { b : -p. } |}
  in
  (match
     Prefer.Spec.make (program contra)
       (Ordered.Program.component_id_exn (program contra) "low")
       [ ("b", "a") ]
   with
  | exception D.Error (D.Preference_cycle _) -> ()
  | _ -> Alcotest.fail "pref against component order should be rejected");
  (* check_pairs alone: cycle without a program *)
  match Prefer.Spec.check_pairs [ ("a", "b"); ("b", "c"); ("c", "a") ] with
  | exception D.Error (D.Preference_cycle _) -> ()
  | _ -> Alcotest.fail "check_pairs should reject a cycle"

(* ------------------------------------------------------------------ *)
(* Semantics on hand-checked programs                                  *)
(* ------------------------------------------------------------------ *)

let test_penguins () =
  (* without preferences f and nf defeat each other: fly stays undefined *)
  let base = interp [ "bird(tweety)"; "penguin(tweety)" ] in
  let spec0 = spec_of penguins in
  check_set "no prefs: compiled = plain" [ base ] (compiled spec0);
  check_set "no prefs: naive agrees" [ base ] (naive spec0);
  (* nf > f: the exception overrules the default *)
  let spec = spec_of ~prefs:[ ("nf", "f") ] penguins in
  let m = interp [ "bird(tweety)"; "penguin(tweety)"; "-fly(tweety)" ] in
  check_set "nf > f: compiled" [ m ] (compiled spec);
  check_set "nf > f: naive" [ m ] (naive spec);
  (* the opposite preference restores the default *)
  let spec' = spec_of ~prefs:[ ("f", "nf") ] penguins in
  let m' = interp [ "bird(tweety)"; "penguin(tweety)"; "fly(tweety)" ] in
  check_set "f > nf: compiled" [ m' ] (compiled spec');
  check_set "f > nf: naive" [ m' ] (naive spec')

let test_transitive () =
  (* preference is transitive through a chain of prefs *)
  let src = "a : p. b : -p. c : p. prefer a > b, b > c." in
  let prog = program src in
  let ast = Lang.Parser.parse_file src in
  let spec = Prefer.Spec.make prog 0 (Lang.Ast.prefer_pairs ast) in
  let m = interp [ "p" ] in
  check_set "chain: compiled" [ m ] (compiled spec);
  check_set "chain: naive" [ m ] (naive spec)

let test_combined_order () =
  (* a pref edge composes with the component order transitively:
     r_low < r_mid (object), r_mid < r_high (pref) => r_low wins *)
  let src =
    {| component low extends mid { a : p. }
       component mid { b : q. }
       component high { c : -p. } |}
  in
  let prog = program src in
  let low = Ordered.Program.component_id_exn prog "low" in
  (* no order between low/high objects; prefer b > c links them *)
  match Ordered.Program.view prog low with
  | _ ->
    (* high is not in low's view (unrelated), so this checks the
       unknown-name diagnostic rather than silently ignoring c *)
    (match Prefer.Spec.make prog low [ ("b", "c") ] with
    | exception D.Error (D.Invalid_input _) -> ()
    | _ -> Alcotest.fail "rule outside the view should be unknown")

let test_same_head_three_ways () =
  (* three rules on one atom: a > b leaves c still defeating both *)
  let src = "a : p. b : -p. c : -p. prefer a > b." in
  let spec = Prefer.Spec.make (program src) 0 [ ("a", "b") ] in
  let m = interp [] in
  (* a overrules b, but c still defeats a: everything undefined *)
  check_set "partial pref: compiled" [ m ] (compiled spec);
  check_set "partial pref: naive" [ m ] (naive spec);
  let spec2 = Prefer.Spec.make (program src) 0 [ ("a", "b"); ("a", "c") ] in
  let m2 = interp [ "p" ] in
  check_set "full pref: compiled" [ m2 ] (compiled spec2);
  check_set "full pref: naive" [ m2 ] (naive spec2)

let test_multiple_models () =
  (* Example 5's two stable models survive an unrelated preference *)
  let src =
    {| component c2 { a. b. c. }
       component c1 extends c2 {
         -a :- b, c.  -b :- a.  -b :- -b.
         x : r.  y : -r.
       } |}
  in
  let prog = program src in
  let spec =
    Prefer.Spec.make prog
      (Ordered.Program.component_id_exn prog "c1")
      [ ("x", "y") ]
  in
  let ms =
    [ interp [ "-a"; "b"; "c"; "r" ]; interp [ "a"; "-b"; "c"; "r" ] ]
  in
  check_set "two preferred models: compiled" ms (compiled spec);
  check_set "two preferred models: naive" ms (naive spec)

(* ------------------------------------------------------------------ *)
(* Trace mode                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace () =
  let spec = spec_of ~prefs:[ ("nf", "f") ] penguins in
  let traced = compiled ~trace:true spec in
  (* projecting the control atoms away gives the plain preferred models *)
  check_set "projection = untraced"
    (compiled spec)
    (List.map Prefer.Compile.project traced);
  (* the applied rules are visible: nf fired, f did not *)
  (match traced with
  | [ m ] ->
    let has name =
      Interp.value m (Atom.prop (Prefer.Compile.control_prefix ^ name))
    in
    Alcotest.(check bool) "ap@nf true" true (has "nf" = Interp.True);
    Alcotest.(check bool) "ap@b true" true (has "b" = Interp.True);
    Alcotest.(check bool) "ap@f not true" true (has "f" <> Interp.True)
  | ms -> Alcotest.fail (Printf.sprintf "expected 1 model, got %d" (List.length ms)));
  (* the ap@ prefix is reserved in trace mode *)
  match
    Prefer.Compile.compile ~trace:true (spec_of "r : p :- ap@x.")
  with
  | exception D.Error (D.Invalid_input _) -> ()
  | _ -> Alcotest.fail "reserved prefix should be rejected in trace mode"

let suite =
  [ Alcotest.test_case "parse named rules" `Quick test_parse_named;
    Alcotest.test_case "parse prefer declarations" `Quick test_parse_prefer;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "spec validation" `Quick test_validation;
    Alcotest.test_case "penguins with preferences" `Quick test_penguins;
    Alcotest.test_case "transitive preference chain" `Quick test_transitive;
    Alcotest.test_case "view scoping of names" `Quick test_combined_order;
    Alcotest.test_case "three rules on one atom" `Quick
      test_same_head_three_ways;
    Alcotest.test_case "preference keeps unrelated models" `Quick
      test_multiple_models;
    Alcotest.test_case "trace-mode control atoms" `Quick test_trace
  ]
