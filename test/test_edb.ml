(* Bulk EDB loading and dumping. *)

open Logic
open Helpers

let test_parse_cells () =
  Alcotest.check testable_term "int" (Term.Int 42) (Edb.parse_cell "42");
  Alcotest.check testable_term "negative int" (Term.Int (-7)) (Edb.parse_cell "-7");
  Alcotest.check testable_term "symbol" (Term.Sym "alice") (Edb.parse_cell "alice");
  Alcotest.check testable_term "symbol with digits" (Term.Sym "a1b")
    (Edb.parse_cell "a1b")

let test_facts_of_string () =
  match Edb.facts_of_string ~rel:"parent" "a\tb\n# a comment\n\nb\tc\n" with
  | Error e -> Alcotest.fail e
  | Ok facts ->
    Alcotest.(check (list testable_rule)) "two facts"
      [ rule "parent(a, b)."; rule "parent(b, c)." ]
      facts

let test_facts_custom_separator () =
  match Edb.facts_of_string ~sep:',' ~rel:"salary" "alice, 100\nbob, 90\n" with
  | Error e -> Alcotest.fail e
  | Ok facts ->
    Alcotest.(check (list testable_rule)) "csv"
      [ rule "salary(alice, 100)."; rule "salary(bob, 90)." ]
      facts

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_arity_mismatch () =
  match Edb.facts_of_string ~rel:"p" "a\tb\nc\n" with
  | Error msg ->
    Alcotest.(check bool) "line cited" true (contains msg "line 2")
  | Ok _ -> Alcotest.fail "arity mismatch must be reported"

let test_dump_relation () =
  let m = interp [ "anc(a, b)"; "anc(a, c)"; "-anc(b, a)"; "other(x)" ] in
  Alcotest.(check string) "dump" "a\tb\na\tc\n"
    (Edb.dump_relation ~pred:"anc" m);
  Alcotest.(check string) "empty dump" "" (Edb.dump_relation ~pred:"nope" m);
  Alcotest.(check (list (pair string int))) "relations"
    [ ("anc", 2); ("other", 1) ]
    (Edb.relations m)

let test_end_to_end_with_program () =
  let facts =
    Result.get_ok (Edb.facts_of_string ~rel:"parent" "a\tb\nb\tc\n")
  in
  let prog =
    program
      "component main { anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). }"
  in
  let prog = Ordered.Program.add_rules prog 0 facts in
  let g = ground_at prog "main" in
  Alcotest.(check int) "three ancestor pairs" 3
    (List.length (Ordered.Query.answers g (lit "anc(X, Y)")))

let suite =
  [ Alcotest.test_case "cell parsing" `Quick test_parse_cells;
    Alcotest.test_case "document parsing" `Quick test_facts_of_string;
    Alcotest.test_case "custom separator" `Quick test_facts_custom_separator;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "relation dump" `Quick test_dump_relation;
    Alcotest.test_case "end-to-end with a program" `Quick
      test_end_to_end_with_program
  ]

let test_file_not_found () =
  match Edb.facts_of_file ~rel:"p" "/nonexistent/file.tsv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error"

let test_empty_document () =
  match Edb.facts_of_string ~rel:"p" "\n\n# only comments\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected no facts"
  | Error e -> Alcotest.fail e

let suite =
  suite
  @ [ Alcotest.test_case "file not found" `Quick test_file_not_found;
      Alcotest.test_case "empty document" `Quick test_empty_document
    ]
