(* The wire protocol codec (Server.Wire): encode/parse round-trips,
   request decoding, and the robustness fuzz — random bytes, mutated
   requests, truncated frames and oversized lines must come back as
   typed errors, never as an escaping exception.

   Like test_fuzz.ml, the fuzz inputs come from a self-contained LCG so
   runs are reproducible and do not consume the qcheck seed; FUZZ_ITERS
   scales the input count (raised by `make fuzz`). *)

module W = Server.Wire

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let state = ref 0x2545F4914F6CDD1D

let rand bound =
  state := (!state * 1664525) + 1013904223;
  (!state lsr 9) mod bound

(* ------------------------------------------------------------------ *)
(* Round-trips                                                         *)
(* ------------------------------------------------------------------ *)

let rec gen_json depth =
  match if depth <= 0 then rand 5 else rand 7 with
  | 0 -> W.Null
  | 1 -> W.Bool (rand 2 = 0)
  | 2 -> W.Int (rand 2_000_000 - 1_000_000)
  | 3 -> W.String (gen_string ())
  | 4 -> W.Float (float_of_int (rand 1_000_000) /. 64.)
  | 5 -> W.List (List.init (rand 4) (fun _ -> gen_json (depth - 1)))
  | _ ->
    W.Obj
      (List.mapi
         (fun i v -> (Printf.sprintf "k%d_%s" i (gen_string ()), v))
         (List.init (rand 4) (fun _ -> gen_json (depth - 1))))

and gen_string () =
  (* include every escaping regime: quotes, backslashes, control
     characters, high bytes (valid UTF-8 fragments or not) *)
  let spice = "ab\"\\\n\t\r\b\012{}[]:,\x01\x1f\xc3\xa9" in
  String.init (rand 12) (fun _ -> spice.[rand (String.length spice)])

let test_roundtrip () =
  for _ = 1 to 500 do
    let v = gen_json 4 in
    let s = W.to_string v in
    (match String.index_opt s '\n' with
    | Some _ -> Alcotest.failf "encoded document contains a newline: %s" s
    | None -> ());
    match W.parse s with
    | Ok v' ->
      if v <> v' then
        Alcotest.failf "round-trip changed the document: %s" s
    | Error e ->
      Alcotest.failf "encoder emitted unparsable JSON %s (%s)" s
        (W.error_to_string e)
  done

let test_parse_values () =
  let ok s v =
    match W.parse s with
    | Ok v' -> Alcotest.(check bool) s true (v = v')
    | Error e -> Alcotest.failf "%s rejected: %s" s (W.error_to_string e)
  in
  ok "null" W.Null;
  ok " [1, -2, 3.5e2] " (W.List [ W.Int 1; W.Int (-2); W.Float 350. ]);
  ok {|{"a": "b\u00e9c", "d": [true, false]}|}
    (W.Obj
       [ ("a", W.String "b\xc3\xa9c");
         ("d", W.List [ W.Bool true; W.Bool false ])
       ]);
  ok {|"\ud83d\ude00"|} (W.String "\xf0\x9f\x98\x80");
  let err s =
    match W.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error (W.Syntax _) -> ()
    | Error e ->
      Alcotest.failf "wrong error class for %S: %s" s (W.error_to_string e)
  in
  err "";
  err "{";
  err "[1,]";
  err "{\"a\" 1}";
  err "\"\\ud800\"" (* lone surrogate *);
  err "01" (* leading zero then trailing garbage *);
  err "truely";
  err "\"unterminated";
  err (String.make 400 '[' ^ String.make 400 ']') (* nesting bomb *)

let test_oversized () =
  let line = "\"" ^ String.make (W.default_max_len + 8) 'a' ^ "\"" in
  (match W.parse line with
  | Error (W.Oversized { limit; _ }) ->
    Alcotest.(check int) "limit reported" W.default_max_len limit
  | Ok _ | Error _ -> Alcotest.fail "oversized line not rejected as such");
  match W.parse ~max_len:8 "{\"op\": \"stats\"}" with
  | Ok _ -> Alcotest.fail "8-byte limit not enforced"
  | Error (W.Oversized _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (W.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)
(* ------------------------------------------------------------------ *)

let test_decode_requests () =
  (match W.decode_request {|{"op":"query","obj":"c1","lit":"p","id":7}|} with
  | Ok
      { id = Some 7;
        verb = W.Query { obj = "c1"; lit = "p"; prefer = None; search = None };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "query decoded wrong"
  | Error e -> Alcotest.failf "query rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"query","obj":"c1","lit":"p","prefer":"compiled",
          "search":"compiled"}|}
   with
  | Ok { verb = W.Query { prefer = Some `Compiled; search = Some `Compiled; _ };
         _
       } -> ()
  | Ok _ -> Alcotest.fail "query search decoded wrong"
  | Error e ->
    Alcotest.failf "query search rejected: %s" (W.error_to_string e));
  (match
     W.decode_request {|{"op":"query","obj":"c1","lit":"p","prefer":"naive"}|}
   with
  | Ok { verb = W.Query { prefer = Some `Naive; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "query prefer decoded wrong"
  | Error e ->
    Alcotest.failf "query prefer rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"models","obj":"o","prefer":"compiled","limit":2}|}
   with
  | Ok
      { verb =
          W.Models
            { kind = `Stable; limit = Some 2; prefer = Some `Compiled; _ };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "models prefer decoded wrong"
  | Error e ->
    Alcotest.failf "models prefer rejected: %s" (W.error_to_string e));
  (match
     W.decode_request {|{"op":"set_preference","rule":"a","over":"b"}|}
   with
  | Ok { verb = W.Set_preference { rule = "a"; over = "b" }; _ } -> ()
  | Ok _ -> Alcotest.fail "set_preference decoded wrong"
  | Error e ->
    Alcotest.failf "set_preference rejected: %s" (W.error_to_string e));
  (match
     W.decode_request {|{"op":"clear_preference","rule":"a","over":"b"}|}
   with
  | Ok { verb = W.Clear_preference { rule = "a"; over = "b" }; _ } -> ()
  | Ok _ -> Alcotest.fail "clear_preference decoded wrong"
  | Error e ->
    Alcotest.failf "clear_preference rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"models","obj":"o","kind":"assumption-free","limit":2,
          "engine":"naive","timeout_ms":50,"max_steps":100}|}
   with
  | Ok
      { budget = { timeout_ms = Some 50; max_steps = Some 100 };
        verb = W.Models { kind = `Af; limit = Some 2; engine = `Naive; _ };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "models decoded wrong"
  | Error e -> Alcotest.failf "models rejected: %s" (W.error_to_string e));
  (* the canonical "search" field and its legacy "engine" alias *)
  (match
     W.decode_request {|{"op":"models","obj":"o","search":"compiled"}|}
   with
  | Ok { verb = W.Models { engine = `Compiled; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "models search decoded wrong"
  | Error e ->
    Alcotest.failf "models search rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"models","obj":"o","search":"naive","engine":"naive"}|}
   with
  | Ok { verb = W.Models { engine = `Naive; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "models search+engine decoded wrong"
  | Error e ->
    Alcotest.failf "models search+engine rejected: %s" (W.error_to_string e));
  let err s =
    match W.decode_request s with
    | Ok _ -> Alcotest.failf "accepted bad request %s" s
    | Error (W.Request _) -> ()
    | Error e ->
      Alcotest.failf "wrong error class for %s: %s" s (W.error_to_string e)
  in
  (* the replication verbs *)
  (match
     W.decode_request
       {|{"op":"hello","seq":12,"protocol":5,"epoch":2,"rid":"r1"}|}
   with
  | Ok
      { verb =
          W.Hello
            { seq = 12; protocol = 5; epoch = 2; rid = Some "r1";
              addr = None
            };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "hello decoded wrong"
  | Error e -> Alcotest.failf "hello rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"pull","from":7,"max":64,"epoch":1,"rid":"r1","durable":5}|}
   with
  | Ok
      { verb =
          W.Pull
            { from_seq = 7; max = Some 64; epoch = 1; rid = Some "r1";
              durable = Some 5; addr = None
            };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "pull decoded wrong"
  | Error e -> Alcotest.failf "pull rejected: %s" (W.error_to_string e));
  (match W.decode_request {|{"op":"pull","from":0}|} with
  | Ok
      { verb =
          W.Pull
            { from_seq = 0; max = None; epoch = 0; rid = None;
              durable = None; addr = None
            };
        _
      } -> ()
  | Ok _ -> Alcotest.fail "pull without max decoded wrong"
  | Error e -> Alcotest.failf "pull rejected: %s" (W.error_to_string e));
  (match
     W.decode_request
       {|{"op":"pull","from":2,"rid":"r2","addr":"127.0.0.1:7001"}|}
   with
  | Ok { verb = W.Pull { addr = Some "127.0.0.1:7001"; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "pull addr decoded wrong"
  | Error e -> Alcotest.failf "pull addr rejected: %s" (W.error_to_string e));
  (match W.decode_request {|{"op":"fetch_snapshot"}|} with
  | Ok { verb = W.Fetch_snapshot { epoch = 0 }; _ } -> ()
  | Ok _ -> Alcotest.fail "fetch_snapshot decoded wrong"
  | Error e ->
    Alcotest.failf "fetch_snapshot rejected: %s" (W.error_to_string e));
  (match W.decode_request {|{"op":"promote","id":3}|} with
  | Ok { id = Some 3; verb = W.Promote; _ } -> ()
  | Ok _ -> Alcotest.fail "promote decoded wrong"
  | Error e -> Alcotest.failf "promote rejected: %s" (W.error_to_string e));
  (* the batch verb: items in order, per-item failures reified *)
  (match
     W.decode_request
       {|{"op":"batch","id":9,"requests":[
           {"op":"query","obj":"c1","lit":"p","id":1},
           {"op":"stats"},
           {"op":"query","obj":3},
           {"op":"shutdown"},
           {"op":"batch","requests":[{"op":"stats"}]},
           "not an object"]}|}
   with
  | Ok { id = Some 9; verb = W.Batch items; _ } -> (
    match items with
    | [ Ok { id = Some 1; verb = W.Query { obj = "c1"; lit = "p"; _ }; _ };
        Ok { verb = W.Stats; _ };
        Error _ (* obj not a string *);
        Error _ (* shutdown is not batchable *);
        Error _ (* nested batch *);
        Error _ (* item not an object *)
      ] -> ()
    | _ -> Alcotest.fail "batch items decoded wrong")
  | Ok _ -> Alcotest.fail "batch decoded wrong"
  | Error e -> Alcotest.failf "batch rejected: %s" (W.error_to_string e));
  (* whole-frame failures: shape, emptiness, size cap *)
  err {|{"op":"batch"}|} (* missing requests *);
  err {|{"op":"batch","requests":{}}|};
  err {|{"op":"batch","requests":[]}|};
  (let items =
     String.concat "," (List.init (W.max_batch + 1) (fun _ -> {|{"op":"stats"}|}))
   in
   err (Printf.sprintf {|{"op":"batch","requests":[%s]}|} items));
  err {|{"op":"teleport"}|};
  err {|{"op":"query","obj":"c1"}|} (* missing lit *);
  err {|{"op":"query","obj":3,"lit":"p"}|};
  err {|{"op":"models","obj":"o","kind":"total?"}|};
  err {|{"op":"models","obj":"o","prefer":"fastest"}|};
  err {|{"op":"models","obj":"o","kind":"assumption-free","prefer":"compiled"}|};
  err {|{"op":"set_preference","rule":"a"}|} (* missing over *);
  err {|{"op":"clear_preference","over":"b"}|} (* missing rule *);
  err {|{"op":"models","obj":"o","limit":-1}|};
  err {|{"op":"hello","seq":3}|} (* missing protocol *);
  err {|{"op":"hello","seq":-1,"protocol":3}|};
  err {|{"op":"pull"}|} (* missing from *);
  err {|{"op":"models","obj":"o","search":"fastest"}|};
  err {|{"op":"models","obj":"o","search":"compiled","engine":"pruned"}|}
  (* canonical field and legacy alias must agree *);
  err {|{"op":"query","obj":"o","lit":"p","search":"compiled"}|}
  (* search on a query needs prefer *);
  err {|{"op":"stats","id":"seven"}|};
  err {|[1,2,3]|};
  err {|"stats"|}

(* ------------------------------------------------------------------ *)
(* Fuzz: the decoder is total                                          *)
(* ------------------------------------------------------------------ *)

let corpus =
  [ {|{"op":"load","src":"component main { p. q :- p. }"}|};
    {|{"op":"define","name":"x","isa":["a","b"],"rules":"p :- q."}|};
    {|{"op":"add_rule","obj":"x","rule":"p :- q."}|};
    {|{"op":"remove_rule","obj":"x","rule":"p :- q."}|};
    {|{"op":"new_version","name":"x"}|};
    {|{"op":"query","obj":"c1","lit":"fly(penguin)","timeout_ms":100}|};
    {|{"op":"models","obj":"c1","kind":"stable","limit":3,"engine":"pruned"}|};
    {|{"op":"models","obj":"c1","kind":"stable","search":"compiled"}|};
    {|{"op":"models","obj":"c1","prefer":"compiled","limit":3}|};
    {|{"op":"query","obj":"c1","lit":"p","prefer":"compiled","search":"compiled"}|};
    {|{"op":"query","obj":"c1","lit":"p","prefer":"naive"}|};
    {|{"op":"set_preference","rule":"nf","over":"f"}|};
    {|{"op":"clear_preference","rule":"nf","over":"f"}|};
    {|{"op":"pull","from":4,"max":128,"addr":"127.0.0.1:7001"}|};
    {|{"op":"explain","obj":"c1","lit":"-fly(penguin)","id":12}|};
    {|{"op":"stats"}|};
    {|{"op":"hello","seq":4,"protocol":3}|};
    {|{"op":"pull","from":4,"max":128}|};
    {|{"op":"fetch_snapshot"}|};
    {|{"op":"promote"}|};
    {|{"op":"shutdown"}|};
    {|{"op":"batch","requests":[{"op":"stats"},{"op":"query","obj":"c1","lit":"p"}]}|};
    {|{"op":"batch","id":4,"requests":[{"op":"version"},{"op":"add_rule","obj":"x","rule":"p."}]}|}
  ]

let spice = "{}[]\":,\\tf-0123456789.eEnu \n\x00\x7f\xc3\xa9op"

let random_string () =
  let len = rand 120 in
  String.init len (fun _ -> spice.[rand (String.length spice)])

let mutate src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  if n = 0 then random_string ()
  else begin
    (match rand 3 with
    | 0 -> Bytes.set b (rand n) spice.[rand (String.length spice)]
    | 1 ->
      let i = rand n and j = rand n in
      let ci = Bytes.get b i in
      Bytes.set b i (Bytes.get b j);
      Bytes.set b j ci
    | _ -> ());
    match rand 3 with
    | 0 -> Bytes.sub_string b 0 (rand n) (* truncated frame *)
    | 1 -> Bytes.to_string b ^ Bytes.sub_string b 0 (rand n)
    | _ -> Bytes.to_string b
  end

let test_decode_total () =
  let ok = ref 0 and err = ref 0 in
  for i = 1 to iters do
    let s =
      if i mod 3 = 0 then random_string ()
      else mutate (List.nth corpus (rand (List.length corpus)))
    in
    match W.decode_request s with
    | Ok _ -> incr ok
    | Error e ->
      incr err;
      if W.error_to_string e = "" then
        Alcotest.failf "empty error message for %S" s
    | exception e ->
      Alcotest.failf "decode_request raised %s on %S" (Printexc.to_string e) s
  done;
  Alcotest.(check bool)
    (Printf.sprintf "both outcomes seen (ok=%d err=%d of %d)" !ok !err iters)
    true
    (!ok > 0 && !err > 0)

let test_corpus_decodes () =
  List.iter
    (fun s ->
      match W.decode_request s with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "corpus request rejected: %s: %s" s
          (W.error_to_string e))
    corpus

let suite =
  [ Alcotest.test_case "encode/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "parse values and syntax errors" `Quick
      test_parse_values;
    Alcotest.test_case "oversized frames" `Quick test_oversized;
    Alcotest.test_case "request decoding" `Quick test_decode_requests;
    Alcotest.test_case "corpus decodes" `Quick test_corpus_decodes;
    Alcotest.test_case "decoder never raises" `Quick test_decode_total
  ]
