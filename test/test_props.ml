(* Property-based tests (qcheck) for the paper's formal results on random
   propositional programs:

   - Lemma 1   : V is monotone;
   - Prop. 1   : lfp(V) is a model;
   - Thm. 1(a) : assumption-free iff enabled fixpoint (two independent
                 implementations agree);
   - Thm. 1(b) : lfp(V) is the intersection of all models;
   - Prop. 2   : every model extends to an exhaustive model;
   - Prop. 3   : models of OV(C) in C are 3-valued models of C;
   - Prop. 4   : assumption-free models of OV(C) are founded 3-valued
                 models of C (the paper's converse fails; see
                 Test_deviations);
   - Cor. 1    : stable models of C [SZ] = stable models of OV(C) in C;
   - Prop. 5   : EV(C) captures exactly the 3-valued models; OV/EV stable
                 models coincide;
   - Thm. 2    : Definition 10 (via 3V) = Definition 11 (direct);
   plus engine cross-checks (incremental vs naive V, counting vs naive
   T_P, parser round-trips, unification laws) and end-to-end properties
   over non-ground random programs (grounding + engines + goal-directed
   proof + queries). *)

open Logic
open Helpers
module Gen = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let atom_names = [| "p"; "q"; "r"; "s" |]

let gen_atom n = Gen.map (fun i -> Atom.prop atom_names.(i)) (Gen.int_bound (n - 1))

let gen_literal n =
  Gen.map2 (fun pol a -> Literal.make pol a) Gen.bool (gen_atom n)

let gen_body n = Gen.list_size (Gen.int_bound 2) (gen_literal n)

(* Negative program: any heads. *)
let gen_negative_rule n =
  Gen.map2 (fun h b -> Rule.make h b) (gen_literal n) (gen_body n)

(* Seminegative program: positive heads. *)
let gen_seminegative_rule n =
  Gen.map2 (fun h b -> Rule.make (Literal.pos h) b) (gen_atom n) (gen_body n)

let gen_rules gen_rule n = Gen.list_size (Gen.int_range 1 5) (gen_rule n)

(* Ordered program over up to 3 components; pairs (i, j) with i < j
   numerically keep the order acyclic. *)
let gen_ordered n =
  let open Gen in
  let* ncomp = int_range 1 3 in
  let* comps =
    flatten_l
      (List.init ncomp (fun i ->
           let* rs = gen_rules gen_negative_rule n in
           return (Printf.sprintf "c%d" i, rs)))
  in
  let all_pairs =
    List.concat
      (List.init ncomp (fun i ->
           List.filter_map
             (fun j -> if i < j then Some (i, j) else None)
             (List.init ncomp Fun.id)))
  in
  let* chosen = flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) all_pairs) in
  let pairs =
    List.filter_map
      (fun (((i : int), j), b) ->
        if b then Some (Printf.sprintf "c%d" i, Printf.sprintf "c%d" j) else None)
      chosen
  in
  return (Ordered.Program.make_exn comps pairs)

let gop_of prog = Ordered.Gop.ground prog 0

(* A random interpretation over a list of atoms. *)
let gen_interp_over atoms =
  let open Gen in
  let* choices = flatten_l (List.map (fun a -> map (fun c -> (a, c)) (int_bound 2)) atoms) in
  return
    (List.fold_left
       (fun m (a, c) ->
         if c = 0 then m else Interp.set m a (c = 1))
       Interp.empty choices)

(* ------------------------------------------------------------------ *)
(* Engine laws                                                         *)
(* ------------------------------------------------------------------ *)

let prop_engines_agree =
  qcheck ~count:150 ~print:print_program "V: incremental = naive"
    (gen_ordered 4) (fun p ->
      let g = gop_of p in
      Interp.equal
        (Ordered.Vfix.least_model ~engine:`Incremental g)
        (Ordered.Vfix.least_model ~engine:`Naive g))

let prop_lemma1_monotone =
  qcheck ~count:150
    ~print:(fun (p, i, j0) ->
      Format.asprintf "%s@.I = %a, J0 = %a" (print_program p) Interp.pp i
        Interp.pp j0)
    "Lemma 1: V monotone"
    Gen.(
      let* p = gen_ordered 4 in
      let g = gop_of p in
      let atoms = g.Ordered.Gop.active_base in
      let* i = gen_interp_over atoms in
      let* j0 = gen_interp_over atoms in
      return (p, i, j0))
    (fun (p, i, j0) ->
      let g = gop_of p in
      (* j := a consistent extension of i by j0's extra literals *)
      let j =
        Interp.fold
          (fun a b m ->
            match Interp.value m a with
            | Interp.Undefined -> Interp.set m a b
            | _ -> m)
          j0 i
      in
      let vi, _ = Ordered.Gop.Values.of_interp g i in
      let vj, _ = Ordered.Gop.Values.of_interp g j in
      let si = Ordered.Gop.Values.to_interp g (Ordered.Vfix.step g vi) in
      let sj = Ordered.Gop.Values.to_interp g (Ordered.Vfix.step g vj) in
      Interp.subset si sj)

let prop_prop1_lfp_is_model =
  qcheck ~count:150 ~print:print_program "Prop 1: lfp(V) is a model"
    (gen_ordered 4) (fun p ->
      let g = gop_of p in
      Ordered.Model.is_model g (Ordered.Vfix.least_model g))

let prop_lfp_assumption_free =
  qcheck ~count:150 ~print:print_program "Thm 1(b): lfp(V) is assumption-free"
    (gen_ordered 4) (fun p ->
      let g = gop_of p in
      Ordered.Model.is_assumption_free g (Ordered.Vfix.least_model g))

let prop_thm1b_intersection =
  qcheck ~count:40 ~print:print_program
    "Thm 1(b): lfp(V) = intersection of models" (gen_ordered 3) (fun p ->
      let g = gop_of p in
      let lfp = Ordered.Vfix.least_model g in
      let models =
        List.filter (Ordered.Model.is_model g)
          (all_interps g.Ordered.Gop.active_base)
      in
      match models with
      | [] -> false (* a model always exists (Prop 1) *)
      | m :: rest ->
        let inter =
          List.fold_left
            (fun acc m -> List.filter (fun l -> Interp.holds m l) acc)
            (Interp.to_literals m) rest
        in
        Interp.equal lfp (Interp.of_literals inter))

let prop_thm1a_methods_agree =
  qcheck ~count:40 ~print:print_program
    "Thm 1(a): assumption-free iff no assumption set" (gen_ordered 3)
    (fun p ->
      let g = gop_of p in
      List.for_all
        (fun m ->
          (not (Ordered.Model.is_model g m))
          || Bool.equal
               (Ordered.Model.is_assumption_free g m)
               (Ordered.Model.largest_assumption_set g m = []))
        (all_interps g.Ordered.Gop.active_base))

let prop_prop2_extension =
  qcheck ~count:25 ~print:print_program
    "Prop 2: models extend to exhaustive models" (gen_ordered 3) (fun p ->
      let g = gop_of p in
      let lfp = Ordered.Vfix.least_model g in
      let e = Ordered.Exhaustive.extend g lfp in
      Interp.subset lfp e
      && Ordered.Model.is_model g e
      && Ordered.Exhaustive.is_exhaustive g e)

let prop_stable_are_maximal_af =
  qcheck ~count:40 ~print:print_program
    "Def 9: stable models are maximal assumption-free" (gen_ordered 3)
    (fun p ->
      let g = gop_of p in
      let af = Ordered.Budget.value (Ordered.Stable.assumption_free_models g) in
      let stable = Ordered.Budget.value (Ordered.Stable.stable_models g) in
      List.for_all (fun s -> Ordered.Model.is_assumption_free g s) stable
      && List.for_all
           (fun s ->
             not
               (List.exists
                  (fun m -> (not (Interp.equal s m)) && Interp.subset s m)
                  af))
           stable
      && List.for_all
           (fun m -> List.exists (fun s -> Interp.subset m s) stable)
           af)

(* ------------------------------------------------------------------ *)
(* Section 3 bridges                                                   *)
(* ------------------------------------------------------------------ *)

let gen_semineg = gen_rules gen_seminegative_rule 3

let prop_prop3 =
  qcheck ~count:40 ~print:print_rules "Prop 3: OV models are 3-valued models"
    gen_semineg (fun rs ->
      let np = Datalog.Nprog.of_rules rs in
      let gov = Ordered.Bridge.ground_ov rs in
      List.for_all
        (fun m ->
          (not (Ordered.Model.is_model gov m))
          || Datalog.Threeval.is_three_valued_model np m)
        (all_interps gov.Ordered.Gop.active_base))

let prop_prop4_af_implies_founded =
  qcheck ~count:40 ~print:print_rules
    "Prop 4: OV assumption-free => founded 3-valued" gen_semineg (fun rs ->
      let np = Datalog.Nprog.of_rules rs in
      let gov = Ordered.Bridge.ground_ov rs in
      List.for_all
        (fun m ->
          Datalog.Threeval.is_three_valued_model np m
          && Datalog.Threeval.is_founded np m)
        (Ordered.Budget.value (Ordered.Stable.assumption_free_models gov)))

let prop_cor1_stable_coincide =
  qcheck ~count:40 ~print:print_rules "Cor 1: SZ stable = OV stable"
    gen_semineg (fun rs ->
      let np = Datalog.Nprog.of_rules rs in
      let gov = Ordered.Bridge.ground_ov rs in
      interp_set_equal
        (Datalog.Threeval.stable_models np)
        (Ordered.Budget.value (Ordered.Stable.stable_models gov)))

let prop_prop5a_ev_models =
  qcheck ~count:40 ~print:print_rules "Prop 5(a): EV models = 3-valued models"
    gen_semineg (fun rs ->
      let np = Datalog.Nprog.of_rules rs in
      let gev = Ordered.Bridge.ground_ev rs in
      List.for_all
        (fun m ->
          Bool.equal
            (Ordered.Model.is_model gev m)
            (Datalog.Threeval.is_three_valued_model np m))
        (all_interps gev.Ordered.Gop.active_base))

let prop_prop5b_af_ov_subset_ev =
  qcheck ~count:40 ~print:print_rules
    "Prop 5(b): OV assumption-free models are EV ones" gen_semineg (fun rs ->
      let gov = Ordered.Bridge.ground_ov rs in
      let gev = Ordered.Bridge.ground_ev rs in
      List.for_all
        (Ordered.Model.is_assumption_free gev)
        (Ordered.Budget.value (Ordered.Stable.assumption_free_models gov)))

let prop_prop5c_af_ev_below_ov =
  qcheck ~count:25 ~print:print_rules
    "Prop 5(c): EV assumption-free models sit below OV ones" gen_semineg
    (fun rs ->
      let gov = Ordered.Bridge.ground_ov rs in
      let gev = Ordered.Bridge.ground_ev rs in
      let ov_af = Ordered.Budget.value (Ordered.Stable.assumption_free_models gov) in
      List.for_all
        (fun m -> List.exists (fun m' -> Interp.subset m m') ov_af)
        (Ordered.Budget.value (Ordered.Stable.assumption_free_models gev)))

let prop_prop5d_stable_coincide =
  qcheck ~count:40 ~print:print_rules "Prop 5(d): OV stable = EV stable"
    gen_semineg (fun rs ->
      interp_set_equal
        (Ordered.Budget.value (Ordered.Stable.stable_models (Ordered.Bridge.ground_ov rs)))
        (Ordered.Budget.value (Ordered.Stable.stable_models (Ordered.Bridge.ground_ev rs))))

let prop_gl_stable_via_ov =
  qcheck ~count:40 ~print:print_rules
    "GL total stable models appear among OV stable models" gen_semineg
    (fun rs ->
      let np = Datalog.Nprog.of_rules rs in
      let gov = Ordered.Bridge.ground_ov rs in
      let base = Array.to_list np.Datalog.Nprog.atoms in
      let gl =
        List.map
          (fun s -> Ordered.Bridge.interp_of_atom_set ~base s)
          (Datalog.Stable.models np)
      in
      let ov = Ordered.Budget.value (Ordered.Stable.stable_models gov) in
      List.for_all (fun m -> List.exists (Interp.equal m) ov) gl)

(* ------------------------------------------------------------------ *)
(* Section 4: Theorem 2                                                *)
(* ------------------------------------------------------------------ *)

let prop_thm2_models =
  qcheck ~count:35 ~print:print_rules "Thm 2: Def 10 models = Def 11 models"
    (gen_rules gen_negative_rule 3) (fun rs ->
      let g3v = Ordered.Negative.ground_3v rs in
      let ground = Ordered.Negative.ground_program rs in
      List.for_all
        (fun m ->
          Bool.equal
            (Ordered.Model.is_model g3v m)
            (Ordered.Negative.direct_is_model ground m))
        (all_interps g3v.Ordered.Gop.active_base))

let prop_thm2_stable =
  qcheck ~count:35 ~print:print_rules "Thm 2: Def 10 stable = Def 11 stable"
    (gen_rules gen_negative_rule 3) (fun rs ->
      interp_set_equal
        (Ordered.Negative.stable_models rs)
        (Ordered.Negative.direct_stable_models
           (Ordered.Negative.ground_program rs)))

(* ------------------------------------------------------------------ *)
(* Substrate laws                                                      *)
(* ------------------------------------------------------------------ *)

let prop_tp_engines =
  qcheck ~count:150 ~print:print_rules "T_P: counting = naive"
    (gen_rules gen_seminegative_rule 4) (fun rs ->
      let p = Datalog.Nprog.of_rules rs in
      Datalog.Consequence.lfp p = Datalog.Consequence.lfp_naive p)

let prop_wfs_in_stable =
  qcheck ~count:80 ~print:print_rules
    "WFS is contained in every GL stable model"
    (gen_rules gen_seminegative_rule 4) (fun rs ->
      let p = Datalog.Nprog.of_rules rs in
      let wf = Datalog.Wellfounded.compute p in
      List.for_all
        (fun m ->
          Array.for_all Fun.id
            (Array.mapi
               (fun i t -> (not t) || m.(i))
               wf.Datalog.Wellfounded.true_)
          && Array.for_all Fun.id
               (Array.mapi
                  (fun i f -> (not f) || not m.(i))
                  wf.Datalog.Wellfounded.false_))
        (Datalog.Stable.enumerate p))

let prop_stable_check_consistent =
  qcheck ~count:80 ~print:print_rules
    "GL enumeration only returns stable models"
    (gen_rules gen_seminegative_rule 4) (fun rs ->
      let p = Datalog.Nprog.of_rules rs in
      List.for_all (Datalog.Stable.is_stable p) (Datalog.Stable.enumerate p))

(* ------------------------------------------------------------------ *)
(* Parser and unification laws                                         *)
(* ------------------------------------------------------------------ *)

let gen_fo_term_with vars =
  let open Gen in
  sized (fun budget ->
      fix
        (fun self budget ->
          if budget <= 0 then
            oneof
              [ map (fun i -> Term.Var (vars ^ string_of_int i)) (int_bound 2);
                map (fun i -> Term.Int i) (int_range (-5) 20);
                oneofl [ Term.Sym "a"; Term.Sym "b"; Term.Sym "penguin" ]
              ]
          else
            oneof
              [ map (fun i -> Term.Var (vars ^ string_of_int i)) (int_bound 2);
                oneofl [ Term.Sym "a"; Term.Sym "b" ];
                map2
                  (fun f args -> Term.App (f, args))
                  (oneofl [ "f"; "g" ])
                  (list_size (int_range 1 2) (self (budget / 2)))
              ])
        (min budget 6))

let gen_fo_term = gen_fo_term_with "X"

let prop_term_roundtrip =
  qcheck ~count:300 ~print:Term.to_string "terms print/parse round-trip"
    gen_fo_term (fun t -> Term.equal t (term (Term.to_string t)))

let gen_fo_rule =
  let open Gen in
  let atom =
    map2 (fun p args -> Atom.make p args)
      (oneofl [ "p"; "q"; "edge" ])
      (list_size (int_bound 2) gen_fo_term)
  in
  let literal = map2 Literal.make bool atom in
  map2 Rule.make literal (list_size (int_bound 3) literal)

let prop_rule_roundtrip =
  qcheck ~count:300 ~print:Rule.to_string "rules print/parse round-trip"
    gen_fo_rule (fun r -> Rule.equal r (rule (Rule.to_string r)))

let prop_unify_sound =
  qcheck ~count:500
    ~print:(fun (a, b) -> Term.to_string a ^ " =? " ^ Term.to_string b)
    "unifiers unify"
    (Gen.pair gen_fo_term gen_fo_term)
    (fun (t1, t2) ->
      match Unify.term t1 t2 with
      | None -> true
      | Some s -> Term.equal (Subst.apply_term s t1) (Subst.apply_term s t2))

let prop_match_sound =
  (* Pattern and subject variables are renamed apart, as the engines do. *)
  qcheck ~count:500
    ~print:(fun (a, b) -> Term.to_string a ^ " <=? " ^ Term.to_string b)
    "matchers match"
    (Gen.pair gen_fo_term (gen_fo_term_with "Y"))
    (fun (pat, t) ->
      match Unify.match_term pat t with
      | None -> true
      | Some s -> Term.equal (Subst.apply_term s pat) t)

(* ------------------------------------------------------------------ *)
(* Non-ground random programs: grounding + engines end-to-end          *)
(* ------------------------------------------------------------------ *)

let gen_fo_program =
  let open Gen in
  let term_g = oneofl [ Term.Sym "a"; Term.Sym "b"; Term.Var "X"; Term.Var "Y" ] in
  let atom_g =
    let* which = int_bound 2 in
    match which with
    | 0 -> map (fun t -> Atom.make "p" [ t ]) term_g
    | 1 -> map (fun t -> Atom.make "q" [ t ]) term_g
    | _ -> map2 (fun t u -> Atom.make "r" [ t; u ]) term_g term_g
  in
  let literal_g = map2 Literal.make bool atom_g in
  let rule_g = map2 Rule.make literal_g (list_size (int_bound 2) literal_g) in
  let* ncomp = int_range 1 2 in
  let* comps =
    flatten_l
      (List.init ncomp (fun i ->
           let* rs = list_size (int_range 1 4) rule_g in
           return (Printf.sprintf "c%d" i, rs)))
  in
  let pairs = if ncomp = 2 then [ ("c0", "c1") ] else [] in
  return (Ordered.Program.make_exn comps pairs)

let prop_fo_engines_agree =
  qcheck ~count:120 ~print:print_program
    "non-ground: V engines agree after grounding" gen_fo_program (fun p ->
      let g = Ordered.Gop.ground p 0 in
      Interp.equal
        (Ordered.Vfix.least_model ~engine:`Incremental g)
        (Ordered.Vfix.least_model ~engine:`Naive g))

let prop_fo_lfp_is_af_model =
  qcheck ~count:120 ~print:print_program
    "non-ground: lfp is an assumption-free model" gen_fo_program (fun p ->
      let g = Ordered.Gop.ground p 0 in
      let m = Ordered.Vfix.least_model g in
      Ordered.Model.is_model g m && Ordered.Model.is_assumption_free g m)

let prop_fo_prove_agrees =
  qcheck ~count:120
    ~print:(fun (p, l) -> print_program p ^ " ? " ^ Literal.to_string l)
    "non-ground: goal-directed = materialised"
    Gen.(
      let* p = gen_fo_program in
      let* pol = bool in
      let* pred = oneofl [ "p"; "q" ] in
      let* c = oneofl [ "a"; "b" ] in
      return (p, Literal.make pol (Atom.make pred [ Term.Sym c ])))
    (fun (p, l) ->
      let g = Ordered.Gop.ground p 0 in
      Ordered.Prove.value g l
      = Interp.value_lit (Ordered.Vfix.least_model g) l)

let prop_fo_query_answers_sound =
  qcheck ~count:120 ~print:print_program
    "non-ground: query answers are true instances" gen_fo_program (fun p ->
      let g = Ordered.Gop.ground p 0 in
      let m = Ordered.Vfix.least_model g in
      List.for_all
        (fun pat ->
          List.for_all
            (fun inst -> Interp.holds m inst)
            (Ordered.Query.holds_instances g pat))
        [ Literal.pos (Atom.make "p" [ Term.Var "Z" ]);
          Literal.neg_atom (Atom.make "r" [ Term.Var "Z"; Term.Var "W" ])
        ])

(* Shared with Test_query's property test. *)
let gen_program_and_literal =
  Gen.(
    let* p = gen_ordered 4 in
    let* pol = bool in
    let* a = gen_atom 4 in
    return (p, Literal.make pol a))

let print_program_and_literal (p, l) =
  print_program p ^ " ? " ^ Literal.to_string l

let suite =
  [ prop_engines_agree;
    prop_lemma1_monotone;
    prop_prop1_lfp_is_model;
    prop_lfp_assumption_free;
    prop_thm1b_intersection;
    prop_thm1a_methods_agree;
    prop_prop2_extension;
    prop_stable_are_maximal_af;
    prop_prop3;
    prop_prop4_af_implies_founded;
    prop_cor1_stable_coincide;
    prop_prop5a_ev_models;
    prop_prop5b_af_ov_subset_ev;
    prop_prop5c_af_ev_below_ov;
    prop_prop5d_stable_coincide;
    prop_gl_stable_via_ov;
    prop_thm2_models;
    prop_thm2_stable;
    prop_tp_engines;
    prop_wfs_in_stable;
    prop_stable_check_consistent;
    prop_term_roundtrip;
    prop_rule_roundtrip;
    prop_unify_sound;
    prop_match_sound;
    prop_fo_engines_agree;
    prop_fo_lfp_is_af_model;
    prop_fo_prove_agrees;
    prop_fo_query_answers_sound
  ]
