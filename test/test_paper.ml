(* Exact reproduction of the paper's figures and running examples.

   F1 - Figure 1 / Examples 1-4: program P1 (overruling) and its flattened
        variant P-hat-1 (defeating);
   F2 - Figure 2 / Examples 2-4: program P2 (defeating across incomparable
        components);
   F3 - Figure 3: the loan program, all three scenarios;
   E3 - Example 3: program P3 (exact model list);
   E4 - Example 4: program P4 and its CWA extension;
   E5 - Example 5: program P5 (two stable models) - in Test_stable. *)

open Logic
open Helpers
module P = Ordered.Program

(* ------------------------------------------------------------------ *)
(* Figure 1: P1                                                        *)
(* ------------------------------------------------------------------ *)

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let i1 =
  interp
    [ "bird(pigeon)"; "bird(penguin)"; "ground_animal(penguin)";
      "-ground_animal(pigeon)"; "fly(pigeon)"; "-fly(penguin)"
    ]

(* Example 3: a model for P-hat-1 in C (the flattened program). *)
let i1_hat =
  interp
    [ "bird(pigeon)"; "bird(penguin)"; "fly(pigeon)"; "-ground_animal(pigeon)" ]

let test_fig1_least_model () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp
    "least model in c1 is I1 (penguin grounded, pigeon flies)" i1
    (Ordered.Vfix.least_model g)

let test_fig1_c2_view () =
  (* Example 1: in C2's own view there is no exception, so both birds fly
     and neither is a ground animal. *)
  let p = program p1_src in
  let g = ground_at p "c2" in
  let m = Ordered.Vfix.least_model g in
  Alcotest.check testable_value "penguin flies in c2" Interp.True
    (Interp.value_lit m (lit "fly(penguin)"));
  Alcotest.check testable_value "not a ground animal in c2" Interp.True
    (Interp.value_lit m (lit "-ground_animal(penguin)"))

let test_fig1_flattened () =
  (* Example 3: I1 is a model for P1 in C1 but not for P-hat-1; the least
     model of P-hat-1 is I1-hat with fly(penguin) and
     ground_animal(penguin) undefined. *)
  let p = program p1_src in
  let g = ground_at p "c1" in
  Alcotest.(check bool) "I1 model of P1 in c1" true
    (Ordered.Model.is_model g i1);
  let flat = P.singleton (P.all_rules p) in
  let gf = ground_at flat "main" in
  Alcotest.(check bool) "I1 not a model of flattened" false
    (Ordered.Model.is_model gf i1);
  Alcotest.check testable_interp "least model of flattened" i1_hat
    (Ordered.Vfix.least_model gf);
  Alcotest.(check bool) "I1-hat is a model of flattened" true
    (Ordered.Model.is_model gf i1_hat);
  Alcotest.(check bool) "I1-hat assumption-free (Example 4)" true
    (Ordered.Model.is_assumption_free gf i1_hat)

let test_fig1_stable () =
  let p = program p1_src in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp_set "I1 is the unique stable model in c1"
    [ i1 ]
    (Ordered.Budget.value (Ordered.Stable.stable_models g))

(* ------------------------------------------------------------------ *)
(* Figure 2: P2                                                        *)
(* ------------------------------------------------------------------ *)

let p2_src =
  {| component c3 { rich(mimmo). -poor(X) :- rich(X). }
     component c2 { poor(mimmo). -rich(X) :- poor(X). }
     component c1 extends c2, c3 { free_ticket(X) :- poor(X). } |}

let test_fig2_defeating () =
  let p = program p2_src in
  let g = ground_at p "c1" in
  let m = Ordered.Vfix.least_model g in
  (* Everything about mimmo is defeated: the least model is empty. *)
  Alcotest.check testable_interp "least model empty" Interp.empty m;
  (* Example 4: the empty set is an assumption-free model for P2 in c1. *)
  Alcotest.(check bool) "empty is a model" true
    (Ordered.Model.is_model g Interp.empty);
  Alcotest.(check bool) "empty is assumption-free" true
    (Ordered.Model.is_assumption_free g Interp.empty)

let test_fig2_i2_not_model () =
  (* Example 3: I2 = {rich(mimmo), poor(mimmo)} is an interpretation but
     not a model for P2 in C1. *)
  let p = program p2_src in
  let g = ground_at p "c1" in
  let i2 = interp [ "rich(mimmo)"; "poor(mimmo)" ] in
  Alcotest.(check bool) "I2 not a model" false (Ordered.Model.is_model g i2)

let test_fig2_no_total_model () =
  let p = program p2_src in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp_set "no total model in c1" []
    (Ordered.Budget.value (Ordered.Exhaustive.total_models g))

let test_fig2_rules_defeat_each_other () =
  (* Example 2's commentary: the two rules about mimmo defeat each other. *)
  let p = program p2_src in
  let g = ground_at p "c1" in
  let i2 = interp [ "rich(mimmo)"; "poor(mimmo)" ] in
  let v, _ = Ordered.Gop.Values.of_interp g i2 in
  let idx comp r =
    Option.get (Ordered.Gop.find_rule g (P.component_id_exn p comp) (rule r))
  in
  Alcotest.(check bool) "fact rich(mimmo) defeated" true
    (Ordered.Status.defeated g v (idx "c3" "rich(mimmo)."));
  Alcotest.(check bool) "-rich(mimmo) :- poor(mimmo) defeated" true
    (Ordered.Status.defeated g v (idx "c2" "-rich(mimmo) :- poor(mimmo)."))

(* ------------------------------------------------------------------ *)
(* Figure 3: the loan program                                          *)
(* ------------------------------------------------------------------ *)

let loan_src facts =
  {| component c2 { take_loan :- inflation(X), X > 11. }
     component c4 { -take_loan :- loan_rate(X), X > 14. }
     component c3 extends c4 {
       take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
     }
     component c1 extends c2, c3 { |}
  ^ facts ^ " }"

let loan_value facts =
  let p = program (loan_src facts) in
  let g = ground_at p "c1" in
  Interp.value_lit (Ordered.Vfix.least_model g) (lit "take_loan")

let test_fig3_no_facts () =
  (* "as no rule can be actually fired, no inference is possible at myself
     level" *)
  Alcotest.check testable_value "no facts: undefined" Interp.Undefined
    (loan_value "")

let test_fig3_scenario1 () =
  (* inflation(12): Expert2 fires. *)
  Alcotest.check testable_value "take_loan inferred" Interp.True
    (loan_value "inflation(12).")

let test_fig3_scenario2 () =
  (* inflation(12), loan_rate(16): Expert2 and Expert4 defeat each other. *)
  Alcotest.check testable_value "take_loan defeated" Interp.Undefined
    (loan_value "inflation(12). loan_rate(16).")

let test_fig3_scenario3 () =
  (* inflation(19), loan_rate(16): Expert3 overrules Expert4. *)
  Alcotest.check testable_value "take_loan recovered" Interp.True
    (loan_value "inflation(19). loan_rate(16).")

let test_fig3_scenario3_statuses () =
  let p = program (loan_src "inflation(19). loan_rate(16).") in
  let g = ground_at p "c1" in
  let m = Ordered.Vfix.least_model g in
  let v, _ = Ordered.Gop.Values.of_interp g m in
  let idx comp r =
    Option.get (Ordered.Gop.find_rule g (P.component_id_exn p comp) (rule r))
  in
  (* Expert4's applicable rule is overruled by Expert3's. *)
  let e4 = idx "c4" "-take_loan :- loan_rate(16)." in
  Alcotest.(check bool) "Expert4 applicable" true (Ordered.Status.applicable g v e4);
  Alcotest.(check bool) "Expert4 overruled" true (Ordered.Status.overruled g v e4);
  (* Expert2's rule is defeated by Expert4's (incomparable components). *)
  let e2 = idx "c2" "take_loan :- inflation(19)." in
  Alcotest.(check bool) "Expert2 defeated" true (Ordered.Status.defeated g v e2);
  (* Expert3's rule stands. *)
  let e3 = idx "c3" "take_loan :- inflation(19), loan_rate(16)." in
  Alcotest.(check bool) "Expert3 not overruled" false (Ordered.Status.overruled g v e3);
  Alcotest.(check bool) "Expert3 not defeated" false (Ordered.Status.defeated g v e3);
  Alcotest.(check bool) "Expert3 applied" true (Ordered.Status.applied g v e3)

(* ------------------------------------------------------------------ *)
(* Example 3: program P3                                               *)
(* ------------------------------------------------------------------ *)

let test_example3_p3_models () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  let models =
    List.filter (Ordered.Model.is_model g) (all_interps g.Ordered.Gop.active_base)
  in
  Alcotest.check testable_interp_set
    "models are exactly {b}, {-b}, {a, -b}, {-a, -b}, {}"
    [ interp [ "b" ]; interp [ "-b" ]; interp [ "a"; "-b" ];
      interp [ "-a"; "-b" ]; Interp.empty
    ]
    models;
  (* "the Herbrand Base is not necessarily a model" *)
  Alcotest.(check bool) "{a, b} is not a model" false
    (Ordered.Model.is_model g (interp [ "a"; "b" ]))

let test_example4_p3_assumption_free () =
  let p = program "component main { a :- b. -a :- b. }" in
  let g = ground_at p "main" in
  Alcotest.check testable_interp_set "empty is the only assumption-free model"
    [ Interp.empty ]
    (Ordered.Budget.value (Ordered.Stable.assumption_free_models g))

(* ------------------------------------------------------------------ *)
(* Example 4: program P4                                               *)
(* ------------------------------------------------------------------ *)

let test_example4_p4 () =
  let p = program "component main { a :- b. }" in
  let g = ground_at p "main" in
  Alcotest.check testable_interp_set "only assumption-free model is empty"
    [ Interp.empty ]
    (Ordered.Budget.value (Ordered.Stable.assumption_free_models g));
  (* {-a, -b} is a model but is not assumption-free *)
  Alcotest.(check bool) "{-a, -b} is a model" true
    (Ordered.Model.is_model g (interp [ "-a"; "-b" ]));
  Alcotest.(check bool) "{-a, -b} not assumption-free" false
    (Ordered.Model.is_assumption_free g (interp [ "-a"; "-b" ]))

let test_example4_p4_with_cwa () =
  (* Adding C2 = {-a. -b.} above makes {-a, -b} the only assumption-free
     model. *)
  let p =
    program "component c2 { -a. -b. } component c1 extends c2 { a :- b. }"
  in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp_set "unique assumption-free model"
    [ interp [ "-a"; "-b" ] ]
    (Ordered.Budget.value (Ordered.Stable.assumption_free_models g));
  Alcotest.check testable_interp "and it is the least model"
    (interp [ "-a"; "-b" ])
    (Ordered.Vfix.least_model g)

let suite =
  [ Alcotest.test_case "F1: least model in c1 = I1" `Quick test_fig1_least_model;
    Alcotest.test_case "F1: view from c2 (Example 1)" `Quick test_fig1_c2_view;
    Alcotest.test_case "F1: flattened P1 (Examples 2-4)" `Quick test_fig1_flattened;
    Alcotest.test_case "F1: unique stable model" `Quick test_fig1_stable;
    Alcotest.test_case "F2: defeating (Example 4)" `Quick test_fig2_defeating;
    Alcotest.test_case "F2: I2 is not a model (Example 3)" `Quick
      test_fig2_i2_not_model;
    Alcotest.test_case "F2: no total model" `Quick test_fig2_no_total_model;
    Alcotest.test_case "F2: mutual defeat statuses (Example 2)" `Quick
      test_fig2_rules_defeat_each_other;
    Alcotest.test_case "F3: empty myself" `Quick test_fig3_no_facts;
    Alcotest.test_case "F3: scenario 1" `Quick test_fig3_scenario1;
    Alcotest.test_case "F3: scenario 2" `Quick test_fig3_scenario2;
    Alcotest.test_case "F3: scenario 3" `Quick test_fig3_scenario3;
    Alcotest.test_case "F3: scenario 3 statuses" `Quick test_fig3_scenario3_statuses;
    Alcotest.test_case "E3: models of P3" `Quick test_example3_p3_models;
    Alcotest.test_case "E3/E4: assumption-free models of P3" `Quick
      test_example4_p3_assumption_free;
    Alcotest.test_case "E4: program P4" `Quick test_example4_p4;
    Alcotest.test_case "E4: P4 with explicit CWA" `Quick test_example4_p4_with_cwa
  ]
