(* Golden enumeration tests: exact model *lists* (contents and order, not
   just counts or sets) for the paper's figure programs and a Section-5
   knowledge base, pinned for the branch-and-propagate search, the naive
   oracle and the compiled flat-array kernel (whose contract is the
   *pruned* order exactly).

   The lists encode the documented search-order contract — first
   discovered first, least model first for assumption-free enumerations —
   so an accidental change to branch ordering, propagation order or the
   accumulator (e.g. a dropped [List.rev]) fails here even when the model
   *set* is still right. *)

open Logic
open Helpers
module S = Ordered.Stable
module E = Ordered.Exhaustive
module K = Solve.Kernel

let v = Ordered.Budget.value
let check_list = Alcotest.check (Alcotest.list testable_interp)

(* All six enumerations of a program with a single (total) stable model
   return exactly that one model. *)
let check_singleton name g m =
  check_list (name ^ ": af pruned") [ m ] (v (S.assumption_free_models g));
  check_list (name ^ ": af naive") [ m ] (v (S.Naive.assumption_free_models g));
  check_list (name ^ ": af compiled") [ m ] (v (K.assumption_free_models g));
  check_list (name ^ ": stable pruned") [ m ] (v (S.stable_models g));
  check_list (name ^ ": stable naive") [ m ] (v (S.Naive.stable_models g));
  check_list (name ^ ": stable compiled") [ m ] (v (K.stable_models g));
  check_list (name ^ ": total pruned") [ m ] (v (E.total_models g));
  check_list (name ^ ": total naive") [ m ] (v (E.Naive.total_models g));
  check_list (name ^ ": total compiled") [ m ] (v (K.total_models g))

(* ------------------------------------------------------------------ *)
(* Figure 1: P1 (penguins)                                             *)
(* ------------------------------------------------------------------ *)

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let test_fig1 () =
  let p = program p1_src in
  check_singleton "P1/c1"
    (ground_at p "c1")
    (interp
       [ "bird(penguin)"; "bird(pigeon)"; "-fly(penguin)"; "fly(pigeon)";
         "ground_animal(penguin)"; "-ground_animal(pigeon)"
       ]);
  check_singleton "P1/c2"
    (ground_at p "c2")
    (interp
       [ "bird(penguin)"; "bird(pigeon)"; "fly(penguin)"; "fly(pigeon)";
         "-ground_animal(penguin)"; "-ground_animal(pigeon)"
       ])

(* ------------------------------------------------------------------ *)
(* Figure 2: P2 (mutual defeat)                                        *)
(* ------------------------------------------------------------------ *)

let p2_src =
  {| component c3 { rich(mimmo). -poor(X) :- rich(X). }
     component c2 { poor(mimmo). -rich(X) :- poor(X). }
     component c1 extends c2, c3 { free_ticket(X) :- poor(X). } |}

let test_fig2 () =
  let g = ground_at (program p2_src) "c1" in
  check_list "P2/c1: af pruned" [ Interp.empty ]
    (v (S.assumption_free_models g));
  check_list "P2/c1: af naive" [ Interp.empty ]
    (v (S.Naive.assumption_free_models g));
  check_list "P2/c1: af compiled" [ Interp.empty ]
    (v (K.assumption_free_models g));
  check_list "P2/c1: stable pruned" [ Interp.empty ] (v (S.stable_models g));
  check_list "P2/c1: stable naive" [ Interp.empty ]
    (v (S.Naive.stable_models g));
  check_list "P2/c1: stable compiled" [ Interp.empty ] (v (K.stable_models g));
  (* Example 4: P2 has no total model at all. *)
  check_list "P2/c1: total pruned" [] (v (E.total_models g));
  check_list "P2/c1: total naive" [] (v (E.Naive.total_models g));
  check_list "P2/c1: total compiled" [] (v (K.total_models g))

(* ------------------------------------------------------------------ *)
(* Figure 3: the loan program, scenarios 2 and 3                       *)
(* ------------------------------------------------------------------ *)

let loan_src facts =
  {| component c2 { take_loan :- inflation(X), X > 11. }
     component c4 { -take_loan :- loan_rate(X), X > 14. }
     component c3 extends c4 {
       take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
     }
     component c1 extends c2, c3 { |}
  ^ facts ^ " }"

let check_af_and_stable name g m =
  check_list (name ^ ": af pruned") [ m ] (v (S.assumption_free_models g));
  check_list (name ^ ": af naive") [ m ] (v (S.Naive.assumption_free_models g));
  check_list (name ^ ": af compiled") [ m ] (v (K.assumption_free_models g));
  check_list (name ^ ": stable pruned") [ m ] (v (S.stable_models g));
  check_list (name ^ ": stable naive") [ m ] (v (S.Naive.stable_models g));
  check_list (name ^ ": stable compiled") [ m ] (v (K.stable_models g))

let test_fig3 () =
  (* Scenario 2: the experts defeat each other, so take_loan stays
     undefined even in every assumption-free model. *)
  check_af_and_stable "loan/s2"
    (ground_at (program (loan_src "inflation(12). loan_rate(16).")) "c1")
    (interp [ "inflation(12)"; "loan_rate(16)" ]);
  (* Scenario 3: Expert3 overrules Expert4 and take_loan is recovered. *)
  check_af_and_stable "loan/s3"
    (ground_at (program (loan_src "inflation(19). loan_rate(16).")) "c1")
    (interp [ "inflation(19)"; "loan_rate(16)"; "take_loan" ])

(* ------------------------------------------------------------------ *)
(* Example 5: P5 — the engines enumerate the same sets in their own    *)
(* documented orders                                                   *)
(* ------------------------------------------------------------------ *)

let p5_src =
  {| component c2 { a. b. c. }
     component c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. } |}

let test_example5 () =
  let g = ground_at (program p5_src) "c1" in
  let m_least = interp [ "c" ] in
  let m_b = interp [ "-a"; "b"; "c" ] in
  let m_a = interp [ "a"; "-b"; "c" ] in
  check_list "P5: af pruned (least model first)"
    [ m_least; m_b; m_a ]
    (v (S.assumption_free_models g));
  check_list "P5: af naive (least model first, other order)"
    [ m_least; m_a; m_b ]
    (v (S.Naive.assumption_free_models g));
  (* the compiled kernel reproduces the pruned order exactly *)
  check_list "P5: af compiled (= pruned order)"
    [ m_least; m_b; m_a ]
    (v (K.assumption_free_models g));
  check_list "P5: stable pruned" [ m_b; m_a ] (v (S.stable_models g));
  check_list "P5: stable naive" [ m_a; m_b ] (v (S.Naive.stable_models g));
  check_list "P5: stable compiled (= pruned order)" [ m_b; m_a ]
    (v (K.stable_models g));
  check_list "P5: total pruned" [ m_b; m_a ] (v (E.total_models g));
  check_list "P5: total naive" [ m_a; m_b ] (v (E.Naive.total_models g));
  check_list "P5: total compiled (= pruned order)" [ m_b; m_a ]
    (v (K.total_models g));
  (* limit = the first k of each engine's own order *)
  check_list "P5: af pruned limit 2" [ m_least; m_b ]
    (v (S.assumption_free_models ~limit:2 g));
  check_list "P5: af naive limit 2" [ m_least; m_a ]
    (v (S.Naive.assumption_free_models ~limit:2 g));
  check_list "P5: af compiled limit 2" [ m_least; m_b ]
    (v (K.assumption_free_models ~limit:2 g))

(* ------------------------------------------------------------------ *)
(* Section 5: a knowledge base with inheritance and versioning         *)
(* ------------------------------------------------------------------ *)

let test_kb () =
  let r = Lang.Parser.parse_rule in
  let kb = Kb.create () in
  Kb.define kb "policy"
    [ r "bonus(X) :- employee(X).";
      r "-remote(X) :- employee(X).";
      r "employee(ann).";
      r "employee(bob)."
    ];
  Kb.define kb ~isa:[ "policy" ] "engineering" [ r "remote(ann)." ];
  let m_eng =
    interp
      [ "bonus(ann)"; "bonus(bob)"; "employee(ann)"; "employee(bob)";
        "remote(ann)"; "-remote(bob)"
      ]
  in
  check_list "kb: af pruned" [ m_eng ]
    (v (Kb.assumption_free_models kb ~obj:"engineering"));
  check_list "kb: af naive" [ m_eng ]
    (v (Kb.assumption_free_models ~engine:`Naive kb ~obj:"engineering"));
  check_list "kb: af compiled" [ m_eng ]
    (v (Kb.assumption_free_models ~engine:`Compiled kb ~obj:"engineering"));
  check_list "kb: stable" [ m_eng ] (v (Kb.stable_models kb ~obj:"engineering"));
  check_list "kb: stable compiled" [ m_eng ]
    (v (Kb.stable_models ~engine:`Compiled kb ~obj:"engineering"));
  (* A revision freezing bonuses overrules the inherited default. *)
  let v2 =
    Kb.new_version kb ~rules:[ r "-bonus(X) :- employee(X)." ] "engineering"
  in
  let m_v2 =
    interp
      [ "-bonus(ann)"; "-bonus(bob)"; "employee(ann)"; "employee(bob)";
        "remote(ann)"; "-remote(bob)"
      ]
  in
  check_list "kb: stable after revision" [ m_v2 ]
    (v (Kb.stable_models kb ~obj:v2));
  check_list "kb: stable after revision (naive)" [ m_v2 ]
    (v (Kb.stable_models ~engine:`Naive kb ~obj:v2))

let suite =
  [ Alcotest.test_case "F1: penguin model lists" `Quick test_fig1;
    Alcotest.test_case "F2: mutual-defeat model lists" `Quick test_fig2;
    Alcotest.test_case "F3: loan scenario model lists" `Quick test_fig3;
    Alcotest.test_case "E5: P5 enumeration orders" `Quick test_example5;
    Alcotest.test_case "KB: inheritance and versioning model lists" `Quick
      test_kb
  ]
