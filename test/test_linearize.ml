(* Randomized concurrent stress with a linearizability oracle.

   N client threads fire a recorded mix of writes (each client appends
   its own unique facts f(client,k) to one shared object) and reads
   (stable-model enumerations, alternating plain and batched frames)
   at a live in-process daemon.  The workload is add-only, so a
   linearization exists iff:

   - every observed model is a {e union of per-client prefixes}
     (f(i,k) present implies f(i,1..k-1) present — client i issued its
     writes sequentially);
   - the observed models form a chain under set inclusion (all reads
     saw some point of one total write order);
   - each connection's reads are monotone along that chain, and include
     every write the same connection had already been acknowledged
     (read-your-writes);
   - the KB version a connection observes never decreases.

   Finally the whole write history is replayed single-threaded through
   a fresh [Kb.Session] and must reproduce the daemon's final model. *)

module W = Server.Wire

let clients = 4
let ops_per_client = 28

(* deterministic per-thread pseudo-randomness (no global state) *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

module Fact = struct
  type t = int * int (* client, k *)

  let compare = compare
end

module FactSet = Set.Make (Fact)

(* A model is a list of literal strings; keep the f(_,_) facts. *)
let facts_of_model = function
  | W.List lits ->
    List.fold_left
      (fun acc l ->
        match l with
        | W.String s -> (
          match Scanf.sscanf_opt s "f(%d, %d)" (fun i k -> (i, k)) with
          | Some f -> FactSet.add f acc
          | None -> acc)
        | _ -> acc)
      FactSet.empty lits
  | _ -> FactSet.empty

type event =
  | Wrote of int (* k: the client's k-th write was acknowledged *)
  | Saw of { writes_acked : int; version : int; facts : FactSet.t }

let with_daemon f =
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 4;
        parallel = `Threads;
        queue = 64;
        caps = { Server.Engine.timeout = Some 10.; steps = None };
        persist = None;
        replicate_on = None;
        sync = None
      }
  in
  let server = Thread.create (fun () -> Server.Daemon.serve d) () in
  let finally () =
    Server.Daemon.stop d;
    Thread.join server
  in
  Fun.protect ~finally (fun () -> f (Server.Daemon.address d))

let request_exn c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> Alcotest.failf "request %s: %s" line e

let ok_exn what j =
  match W.member "status" j with
  | Some (W.String "ok") -> j
  | _ -> Alcotest.failf "%s: %s" what (W.to_string j)

let models_line = {|{"op":"models","obj":"kb","kind":"stable"}|}
let stats_line = {|{"op":"stats"}|}

let invalidations j =
  match W.member "cache" j with
  | Some cache -> (
    match W.member "invalidations" cache with Some (W.Int n) -> n | _ -> -1)
  | None -> -1

(* One client thread: runs its op schedule, records its history. *)
let client_thread address i =
  let rand = lcg ((i * 2654435761) + 1) in
  let c =
    match Server.Client.connect ~retry:5. address with
    | Ok c -> c
    | Error e -> failwith ("connect: " ^ e)
  in
  let history = ref [] in
  let writes = ref 0 in
  for op = 1 to ops_per_client do
    if rand () mod 3 = 0 then begin
      incr writes;
      let line =
        Printf.sprintf {|{"op":"add_rule","obj":"kb","rule":"f(%d,%d)."}|} i
          !writes
      in
      ignore (ok_exn "write" (request_exn c line) : W.json);
      history := Wrote !writes :: !history
    end
    else begin
      (* alternate plain frames and batched [models; stats] frames so the
         batch path is exercised under contention too *)
      let model, version =
        if op mod 2 = 0 then begin
          let m = ok_exn "models" (request_exn c models_line) in
          let s = ok_exn "stats" (request_exn c stats_line) in
          (m, invalidations s)
        end
        else begin
          let envelope =
            ok_exn "batch"
              (request_exn c
                 (Printf.sprintf {|{"op":"batch","requests":[%s,%s]}|}
                    models_line stats_line))
          in
          match W.member "responses" envelope with
          | Some (W.List [ m; s ]) ->
            (ok_exn "batched models" m, invalidations (ok_exn "batched stats" s))
          | _ -> failwith ("bad envelope: " ^ W.to_string envelope)
        end
      in
      let facts =
        match W.member "models" model with
        | Some (W.List [ m ]) -> facts_of_model m
        | _ -> failwith ("expected one stable model: " ^ W.to_string model)
      in
      history := Saw { writes_acked = !writes; version; facts } :: !history
    end
  done;
  Server.Client.close c;
  (!writes, List.rev !history)

let pp_set s =
  String.concat ","
    (List.map (fun (i, k) -> Printf.sprintf "f(%d,%d)" i k) (FactSet.elements s))

let check_prefix_closure set =
  for i = 1 to clients do
    let ks =
      List.sort compare
        (List.filter_map
           (fun (j, k) -> if j = i then Some k else None)
           (FactSet.elements set))
    in
    if ks <> List.init (List.length ks) (fun n -> n + 1) then
      Alcotest.failf "client %d's writes not a prefix in {%s}" i (pp_set set)
  done

let test_concurrent_history () =
  with_daemon @@ fun address ->
  let setup =
    match Server.Client.connect ~retry:5. address with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  ignore
    (ok_exn "define"
       (request_exn setup {|{"op":"define","name":"kb","rules":"seed."}|})
      : W.json);
  let results = Array.make clients (Error "not run") in
  let threads =
    List.init clients (fun idx ->
        Thread.create
          (fun () ->
            let i = idx + 1 in
            results.(idx) <-
              (try Ok (client_thread address i)
               with e -> Error (Printexc.to_string e)))
          ())
  in
  List.iter Thread.join threads;
  let histories =
    Array.to_list
      (Array.mapi
         (fun idx -> function
           | Ok h -> h
           | Error e -> Alcotest.failf "client %d failed: %s" (idx + 1) e)
         results)
  in
  (* --- oracle ------------------------------------------------------ *)
  (* per-connection checks: monotone versions, monotone models,
     read-your-writes *)
  List.iteri
    (fun idx (_, history) ->
      let i = idx + 1 in
      let last_version = ref (-1) and last_facts = ref FactSet.empty in
      List.iter
        (function
          | Wrote _ -> ()
          | Saw { writes_acked; version; facts } ->
            if version < !last_version then
              Alcotest.failf "client %d saw version go backwards: %d -> %d" i
                !last_version version;
            last_version := max !last_version version;
            if not (FactSet.subset !last_facts facts) then
              Alcotest.failf "client %d saw a non-monotone model: {%s} then {%s}"
                i (pp_set !last_facts) (pp_set facts);
            last_facts := facts;
            for k = 1 to writes_acked do
              if not (FactSet.mem (i, k) facts) then
                Alcotest.failf
                  "client %d read after its write %d but f(%d,%d) is missing" i
                  writes_acked i k
            done)
        history)
    histories;
  (* global checks: every model is a union of per-client prefixes, and
     all observed models form one inclusion chain *)
  let observed =
    List.concat_map
      (fun (_, history) ->
        List.filter_map
          (function Saw { facts; _ } -> Some facts | Wrote _ -> None)
          history)
      histories
  in
  List.iter check_prefix_closure observed;
  let sorted =
    List.sort (fun a b -> compare (FactSet.cardinal a) (FactSet.cardinal b))
      observed
  in
  ignore
    (List.fold_left
       (fun smaller larger ->
         if not (FactSet.subset smaller larger) then
           Alcotest.failf "incomparable models: {%s} vs {%s}" (pp_set smaller)
             (pp_set larger);
         larger)
       FactSet.empty sorted
      : FactSet.t);
  Alcotest.(check bool) "some reads happened" true (observed <> []);
  (* --- single-threaded replay -------------------------------------- *)
  let final =
    match
      W.member "models" (ok_exn "final models" (request_exn setup models_line))
    with
    | Some (W.List [ m ]) -> facts_of_model m
    | _ -> Alcotest.fail "final read"
  in
  Server.Client.close setup;
  let s = Kb.Session.create () in
  Kb.Session.define_src s "kb" "seed.";
  List.iteri
    (fun idx (writes, _) ->
      for k = 1 to writes do
        Kb.Session.add_rule_src s ~obj:"kb"
          (Printf.sprintf "f(%d,%d)." (idx + 1) k)
      done)
    histories;
  let replayed = Kb.Session.least_model s ~obj:"kb" in
  let expected =
    List.fold_left
      (fun acc l ->
        match
          Scanf.sscanf_opt (Logic.Literal.to_string l) "f(%d, %d)" (fun i k ->
              (i, k))
        with
        | Some f -> FactSet.add f acc
        | None -> acc)
      FactSet.empty
      (Logic.Interp.to_literals replayed)
  in
  if not (FactSet.equal final expected) then
    Alcotest.failf "replay mismatch: daemon {%s} vs session {%s}" (pp_set final)
      (pp_set expected);
  let total_writes = List.fold_left (fun n (w, _) -> n + w) 0 histories in
  Alcotest.(check int) "every acknowledged write survived" total_writes
    (FactSet.cardinal final)

let suite =
  [ Alcotest.test_case "concurrent history linearizes" `Quick
      test_concurrent_history
  ]
