The durable KB: every mutation is write-ahead-logged to --data-dir
before it is acknowledged, snapshots bound replay, and recovery — on
restart or offline with olp recover — rebuilds the exact store.  See
docs/PERSISTENCE.md for the format and the guarantees.

Boot on a fresh data directory (created on demand):

  $ olp serve --socket s.sock --data-dir data > server.log 2>&1 &
  $ SERVER=$!

Load a knowledge base and mutate it over the wire:

  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"component top { fly(X) :- bird(X). bird(tweety). bird(penguin). } component bot extends top { -fly(penguin). }"}'
  {"status":"ok","objects":["top","bot"]}
  $ olp call --socket s.sock '{"op":"add_rule","obj":"bot","rule":"swims(penguin)."}'
  {"status":"ok"}

The version verb reports the package and protocol revision:

  $ olp call --socket s.sock version
  {"status":"ok","version":"1.7.0","protocol":7}

Kill the server without the shutdown verb (SIGTERM, as an init system
would); the drain closes the log cleanly:

  $ kill $SERVER
  $ wait $SERVER
  $ cat server.log
  olp serve: data dir data (seq 0, replayed 0 from base 0)
  olp serve: listening on unix:s.sock (4 workers)

The directory holds one log segment rooted at sequence 0:

  $ ls data
  wal-000000000000.log

Offline recovery finds the full mutation history (exit 0):

  $ olp recover data
  olp recover: data dir data (seq 2, replayed 2 from base 0)

Restart on the same directory: the knowledge base comes back without
reloading anything —

  $ olp serve --socket s.sock --data-dir data > server2.log 2>&1 &
  $ SERVER=$!
  $ olp call --socket s.sock --retry 5 '{"op":"query","obj":"bot","lit":"fly(tweety)"}' '{"op":"query","obj":"bot","lit":"fly(penguin)"}' '{"op":"query","obj":"bot","lit":"swims(penguin)"}'
  {"status":"ok","value":"true"}
  {"status":"ok","value":"false"}
  {"status":"ok","value":"true"}
  $ cat server2.log
  olp serve: data dir data (seq 2, replayed 2 from base 0)
  olp serve: listening on unix:s.sock (4 workers)

— and stats exposes the recovery and persistence counters next to the
cache and server metrics:

  $ olp call --socket s.sock stats
  {"status":"ok","version":"1.7.0","protocol":7,"cache":{"hits":2,"misses":1,"invalidations":0,"entries":1},"server":{"workers":4,"queue_capacity":64,"persist_seq":2,"epoch":0,"cache_kept":0,"connections":2,"flat_cache_hits":0,"flat_compiles":0,"inc_evictions":0,"inc_fallbacks":0,"inc_repairs":0,"ok":3,"persist_tmp_swept":0,"queue_peak":1,"recovery_base":0,"recovery_corrupt_snapshots":0,"recovery_replayed":2,"recovery_truncated_bytes":0,"served":3}}

The snapshot verb writes a snapshot at the current sequence and rolls
the log onto a fresh segment:

  $ olp call --socket s.sock snapshot
  {"status":"ok","snapshot":2}
  $ ls data
  snapshot-000000000002.snap
  wal-000000000000.log
  wal-000000000002.log

Mutate once more past the snapshot, then shut down gracefully:

  $ olp call --socket s.sock '{"op":"add_rule","obj":"top","rule":"bird(robin)."}'
  {"status":"ok"}
  $ olp call --socket s.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $SERVER

Compaction recovers (snapshot 2 plus one replayed record), sweeps the
stale temp file we plant, writes a fresh snapshot and deletes
everything it supersedes:

  $ touch data/snapshot-000000000099.snap.tmp
  $ olp compact data
  olp compact: data dir data (seq 3, replayed 1 from base 2)
  olp compact: swept 1 stale temp file(s)
  olp compact: snapshot at seq 3, deleted 3 file(s)
  $ ls data
  snapshot-000000000003.snap
  wal-000000000003.log

A torn tail — here literally half a record appended to the live
segment — is truncated to the last whole record: a warning, exit 3,
and the recovered state is a sound prefix:

  $ printf 'partial record' >> data/wal-000000000003.log
  $ olp recover data
  olp recover: data dir data (seq 3, replayed 0 from base 3)
  olp recover: warning: truncated torn log tail (implausible payload length 1953653104 at offset 24 of wal-000000000003.log, 14 byte(s) dropped); the recovered state is a sound prefix of the mutation history
  [3]

Recovery converges: a second pass finds nothing left to repair —

  $ olp recover data
  olp recover: data dir data (seq 3, replayed 0 from base 3)

— and the repaired directory still serves the full knowledge base:

  $ olp serve --socket s.sock --data-dir data > server3.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"query","obj":"top","lit":"fly(robin)"}' shutdown
  {"status":"ok","value":"true"}
  {"status":"ok","shutdown":true}
  $ wait

A directory whose log does not reach back to its snapshot is
unrecoverable, and says so with exit 2:

  $ mkdir bad && touch bad/wal-000000000005.log
  $ olp recover bad
  olp recover: Persist.open_dir: data directory "bad" has no valid snapshot and its log does not reach back to sequence 0
  [2]

Group commit: with --group-commit-ms, concurrent writers share fsyncs
(the bench shows the batching win); the history is the same afterwards:

  $ olp serve --socket s.sock --data-dir gc --group-commit-ms 5 > gc.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"component c { q(0). }"}' '{"op":"add_rule","obj":"c","rule":"q(1)."}' shutdown
  {"status":"ok","objects":["c"]}
  {"status":"ok"}
  {"status":"ok","shutdown":true}
  $ wait
  $ olp recover gc
  olp recover: data dir gc (seq 2, replayed 2 from base 0)

Point-in-time recovery: olp recover --to-seq N rewinds a directory to
the state just after mutation N, discarding everything later — a
deliberate cut, reported on stdout with exit 0:

  $ olp serve --socket s.sock --data-dir pitr > pitr.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"component c { p(1). }"}' '{"op":"add_rule","obj":"c","rule":"p(2)."}' '{"op":"add_rule","obj":"c","rule":"p(3)."}' shutdown
  {"status":"ok","objects":["c"]}
  {"status":"ok"}
  {"status":"ok"}
  {"status":"ok","shutdown":true}
  $ wait
  $ olp recover --to-seq 2 pitr
  olp recover: data dir pitr (seq 2, replayed 2 from base 0)
  olp recover: history cut at sequence 2 on request (truncated wal-000000000000.log at offset 81, 23 byte(s) dropped)

The rewind is permanent — a plain recovery now finds a 2-mutation
history, and the rewound knowledge base serves without p(3):

  $ olp recover pitr
  olp recover: data dir pitr (seq 2, replayed 2 from base 0)
  $ olp serve --socket s.sock --data-dir pitr > pitr2.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"query","obj":"c","lit":"p(2)"}' '{"op":"query","obj":"c","lit":"p(3)"}' shutdown
  {"status":"ok","value":"true"}
  {"status":"ok","value":"undefined"}
  {"status":"ok","shutdown":true}
  $ wait

Asking for a sequence the history never reached keeps everything and
warns, exit 3:

  $ olp recover --to-seq 9 pitr
  olp recover: data dir pitr (seq 2, replayed 2 from base 0)
  olp recover: warning: requested sequence 9 but the history ends at 2
  [3]

Rule preferences are WAL-reified mutations: a set_preference is
logged before it is acknowledged and survives a restart —

  $ olp serve --socket s.sock --data-dir prefd > prefd.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"load","src":"b : bird(tweety). p : penguin(tweety). f : fly(X) :- bird(X). nf : -fly(X) :- penguin(X)."}' '{"op":"set_preference","rule":"nf","over":"f"}' shutdown
  {"status":"ok","objects":["main"]}
  {"status":"ok","rule":"nf","over":"f"}
  {"status":"ok","shutdown":true}
  $ wait
  $ olp recover prefd
  olp recover: data dir prefd (seq 2, replayed 2 from base 0)
  $ olp serve --socket s.sock --data-dir prefd > prefd2.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"query","obj":"main","lit":"fly(tweety)","prefer":"compiled"}' snapshot shutdown
  {"status":"ok","value":"false","prefer":"compiled"}
  {"status":"ok","snapshot":2}
  {"status":"ok","shutdown":true}
  $ wait

— and the preference order also rides the snapshot image, so a
restart that replays nothing still enumerates the preferred models:

  $ olp serve --socket s.sock --data-dir prefd > prefd3.log 2>&1 &
  $ olp call --socket s.sock --retry 5 '{"op":"models","obj":"main","prefer":"naive"}' shutdown
  {"status":"ok","kind":"preferred","prefer":"naive","count":1,"models":[["bird(tweety)","-fly(tweety)","penguin(tweety)"]]}
  {"status":"ok","shutdown":true}
  $ wait
  $ grep -o 'replayed 0 from base 2' prefd3.log
  replayed 0 from base 2
