(* Log-shipping replication, in process: the engine-level protocol
   policy (read-only gating, handshake refusals, promote), then the two
   correctness properties from the PR contract —

   - differential: a replica driven through a random schedule of
     mutations, disconnects, restarts, partial catch-ups and primary
     compactions ends byte-identical to the primary once it drains;
   - kill sweep: a fault-injection budget kills the replica's WAL append
     at every chunk boundary in turn; recovery of the replica's own
     directory always lands on a sound prefix of the primary's history,
     and a budget-free link then converges to full equality.

   The primary is a real [Server.Daemon] on ephemeral TCP ports; the
   replica is the same harness `olp serve --replica-of` wires, driven
   step by step ([Link.step]) for deterministic schedules. *)

module P = Persist
module W = Server.Wire
module B = Governor.Budget
module Engine = Server.Engine
module Daemon = Server.Daemon
module Link = Replica.Link
module Store = Kb.Store

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let state = ref 0x51A9C4D3

let rand bound =
  state := (!state * 1664525) + 1013904223;
  (!state lsr 9) mod bound

let config dir = { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 }

let str_member k j =
  match W.member k j with Some (W.String s) -> Some s | _ -> None

let status j = Option.value ~default:"?" (str_member "status" j)

let error_kind j =
  match W.member "error" j with
  | Some e -> Option.value ~default:"?" (str_member "kind" e)
  | None -> "?"

let error_message j =
  match W.member "error" j with
  | Some e -> Option.value ~default:"" (str_member "message" e)
  | None -> ""

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Engine-level protocol policy (no sockets)                           *)
(* ------------------------------------------------------------------ *)

let stub_replication ?(role = "replica") () =
  { Engine.role = (fun () -> role);
    primary = (fun () -> Some "unix:prim.sock");
    details = (fun () -> [ ("primary", W.String "unix:prim.sock") ]);
    promote = (fun () -> Ok "primary")
  }

let test_read_only_gate () =
  let engine = Engine.create () in
  Engine.set_replication engine (stub_replication ());
  let j =
    Engine.handle_line engine {|{"op":"add_rule","obj":"x","rule":"p."}|}
  in
  Alcotest.(check string) "write refused" "error" (status j);
  Alcotest.(check string) "typed read_only" "read_only" (error_kind j);
  Alcotest.(check bool) "redirect names the primary" true
    (contains ~needle:"unix:prim.sock" (error_message j));
  (* reads still serve, and stats reports the role *)
  let j = Engine.handle_line engine {|{"op":"stats"}|} in
  Alcotest.(check string) "stats ok on a replica" "ok" (status j);
  (match W.member "replication" j with
  | Some r ->
    Alcotest.(check (option string)) "role surfaced" (Some "replica")
      (str_member "role" r)
  | None -> Alcotest.fail "stats lacks the replication object");
  (* a primary role does not gate writes *)
  Engine.set_replication engine (stub_replication ~role:"primary" ());
  let j =
    Engine.handle_line engine
      {|{"op":"define","name":"x","isa":[],"rules":"p."}|}
  in
  Alcotest.(check string) "primary accepts writes" "ok" (status j)

let test_promote_verb () =
  let engine = Engine.create () in
  let j = Engine.handle_line engine {|{"op":"promote"}|} in
  Alcotest.(check string) "promote off a non-replica" "error" (status j);
  Alcotest.(check string) "typed as input" "input" (error_kind j);
  Engine.set_replication engine (stub_replication ());
  let j = Engine.handle_line engine {|{"op":"promote"}|} in
  Alcotest.(check string) "promote on a replica" "ok" (status j);
  Alcotest.(check (option string)) "new role reported" (Some "primary")
    (str_member "role" j)

let with_persistence f =
  let dir = Test_persist.fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  let session = Kb.Session.of_store store in
  Kb.Session.on_mutation session (fun m -> P.append p m);
  let engine =
    Engine.create ~session
      ~persistence:
        { Engine.snapshot = (fun () -> P.snapshot p);
          seq = (fun () -> P.seq p);
          wait_durable = (fun () -> P.wait_durable p);
          tail =
            (fun ~from ~max ->
              match P.tail p ~from ~max with
              | Ok _ as ok -> ok
              | Error (`Too_old base) -> Error base);
          snapshot_image = (fun () -> P.snapshot_image p)
        }
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      P.close p;
      Test_persist.rm_rf dir)
    (fun () -> f engine session)

let test_handshake () =
  with_persistence @@ fun engine session ->
  Kb.Session.load session "component c { p. q :- p. }";
  (* a replica speaking an older protocol revision is refused, typed *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":0,"protocol":2}|}
  in
  Alcotest.(check string) "revision mismatch refused" "error" (status j);
  Alcotest.(check string) "typed handshake error" "handshake" (error_kind j);
  Alcotest.(check bool) "message names both revisions" true
    (contains ~needle:"revision" (error_message j));
  (* a replica ahead of the primary has a diverged history *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":99,"protocol":3}|}
  in
  Alcotest.(check string) "diverged replica refused" "handshake"
    (error_kind j);
  (* the good case tells the replica to tail *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":0,"protocol":3}|}
  in
  Alcotest.(check string) "hello ok" "ok" (status j);
  Alcotest.(check (option string)) "action is tail" (Some "tail")
    (str_member "action" j);
  (* replication verbs without a data directory are input errors *)
  let bare = Engine.create () in
  let j = Engine.handle_line bare {|{"op":"hello","seq":0,"protocol":3}|} in
  Alcotest.(check string) "hello without persistence" "input" (error_kind j)

(* ------------------------------------------------------------------ *)
(* A real primary and a step-driven replica                            *)
(* ------------------------------------------------------------------ *)

let with_primary f =
  let dir = Test_persist.fresh_dir () in
  let d =
    Daemon.create
      { Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 2;
        queue = 64;
        caps = { Engine.timeout = Some 10.; steps = None };
        persist = Some (config dir);
        replicate_on = Some (`Tcp ("127.0.0.1", 0))
      }
  in
  let server = Thread.create (fun () -> Daemon.serve d) () in
  let finally () =
    Daemon.stop d;
    Thread.join server;
    Test_persist.rm_rf dir
  in
  Fun.protect ~finally (fun () ->
      f d (Option.get (Daemon.replication_address d)))

type node = {
  dir : string;
  persist : P.t;
  store : Store.t;
  link : Link.t;
  budget : B.t option ref;  (* armed by the kill sweep *)
}

let make_node ~primary dir =
  let p, store, _ = P.open_dir (config dir) in
  let session = Kb.Session.of_store store in
  let budget = ref None in
  Kb.Session.on_mutation session (fun m -> P.append ?budget:!budget p m);
  let engine = Engine.create ~session () in
  let link =
    Link.create ~engine ~session ~persist:p
      { (Link.default_config primary) with connect_retry = 5. }
  in
  { dir; persist = p; store; link; budget }

let dispose n =
  Link.stop n.link;
  P.close n.persist

let step_once label link =
  match Link.step link with
  | (`Applied _ | `Ready | `Idle) as r -> r
  | `Retry msg -> Alcotest.failf "%s: transient failure: %s" label msg
  | `Fatal msg -> Alcotest.failf "%s: replication halted: %s" label msg
  | `Stopped -> Alcotest.failf "%s: link stopped" label

let catch_up label link =
  let rec go fuel =
    if fuel = 0 then Alcotest.failf "%s: catch-up did not converge" label
    else
      match step_once label link with
      | `Applied _ | `Ready -> go (fuel - 1)
      | `Idle -> ()
  in
  go 10_000

(* The primary's write path without the socket round-trip: apply through
   the engine's session under its lock, exactly as [Engine.handle] does,
   and mirror the mutation for the expected-state comparison. *)
let mutate_primary d mirror m =
  Store.apply mirror m;
  let engine = Daemon.engine d in
  Engine.exclusively engine (fun () ->
      Kb.Session.apply (Engine.session engine) m)

let test_differential () =
  with_primary @@ fun d repl_addr ->
  let mirror = Store.create () in
  let pp = Option.get (Daemon.persist_handle d) in
  let node = ref (make_node ~primary:repl_addr (Test_persist.fresh_dir ())) in
  let steps = max 60 (iters / 4) in
  for _ = 1 to steps do
    match rand 12 with
    | 0 -> Link.disconnect !node.link
    | 1 ->
      (* replica restart: reopen the same directory and resume *)
      let dir = !node.dir in
      dispose !node;
      node := make_node ~primary:repl_addr dir
    | 2 ->
      (* primary compaction: forces a snapshot bootstrap on any replica
         whose position falls behind the retained log *)
      Engine.exclusively (Daemon.engine d) (fun () ->
          ignore (P.compact pp : int * int))
    | 3 | 4 ->
      (* partial catch-up: a few protocol steps, wherever they land *)
      for _ = 1 to 1 + rand 3 do
        ignore (step_once "partial" !node.link : [ `Applied of int | `Ready | `Idle ])
      done
    | _ -> mutate_primary d mirror (Test_persist.gen_mutation mirror)
  done;
  catch_up "final drain" !node.link;
  Alcotest.(check string) "replica state equals primary state"
    (Test_persist.repr mirror)
    (Test_persist.repr !node.store);
  Alcotest.(check int) "sequence numbers agree" (P.seq pp)
    (P.seq !node.persist);
  let status = Link.status !node.link in
  Alcotest.(check int) "no lag after drain" 0 status.Link.lag;
  (* the replica's own WAL is the full story: a cold restart of the
     replica directory reproduces the state without the primary *)
  let dir = !node.dir in
  dispose !node;
  let p2, store2, _ = P.open_dir (config dir) in
  Alcotest.(check string) "replica state is durable"
    (Test_persist.repr mirror) (Test_persist.repr store2);
  P.close p2;
  Test_persist.rm_rf dir

let test_promotion () =
  with_primary @@ fun d repl_addr ->
  let mirror = Store.create () in
  for _ = 1 to 5 do
    mutate_primary d mirror (Test_persist.gen_mutation mirror)
  done;
  let node = make_node ~primary:repl_addr (Test_persist.fresh_dir ()) in
  catch_up "before promotion" node.link;
  (match Link.promote node.link with
  | Ok role -> Alcotest.(check string) "promoted" "primary" role
  | Error e -> Alcotest.failf "promotion refused: %s" e);
  (match Link.promote node.link with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second promotion accepted");
  Alcotest.(check string) "role flipped" "primary"
    (Link.status node.link).Link.role;
  (match Link.step node.link with
  | `Stopped -> ()
  | _ -> Alcotest.fail "promoted link still stepping");
  (* the promoted store keeps its history and accepts divergence *)
  Alcotest.(check string) "state carried across promotion"
    (Test_persist.repr mirror) (Test_persist.repr node.store);
  let dir = node.dir in
  dispose node;
  Test_persist.rm_rf dir

(* ------------------------------------------------------------------ *)
(* Kill sweep: die at every WAL chunk boundary during apply            *)
(* ------------------------------------------------------------------ *)

let test_kill_sweep () =
  with_primary @@ fun d repl_addr ->
  let script = Test_persist.sample_mutations in
  let mirror = Store.create () in
  List.iter (fun m -> mutate_primary d mirror m) script;
  let full = Test_persist.repr mirror in
  (* expected.(i) = state after the first i primary mutations *)
  let expected =
    let s = Store.create () in
    let initial = Test_persist.repr s in
    let after =
      List.map
        (fun m ->
          Store.apply s m;
          Test_persist.repr s)
        script
    in
    Array.of_list (initial :: after)
  in
  let k = ref 1 in
  let fired = ref true in
  while !fired do
    let dir = Test_persist.fresh_dir () in
    let node = make_node ~primary:repl_addr dir in
    node.budget := Some (B.with_trip_at ~step:!k ());
    let tripped =
      try
        catch_up "sweep" node.link;
        false
      with B.Exhausted B.Fault -> true
    in
    fired := tripped;
    dispose node;
    (* the replica's directory recovers to a sound prefix of the
       primary's history — never junk, never beyond the kill point *)
    let p2, store2, r2 = P.open_dir (config dir) in
    Alcotest.(check bool)
      (Printf.sprintf "trip at %d: prefix length sane" !k)
      true
      (r2.P.seq >= 0 && r2.P.seq <= List.length script);
    Alcotest.(check string)
      (Printf.sprintf "trip at %d: recovered prefix" !k)
      expected.(r2.P.seq)
      (Test_persist.repr store2);
    P.close p2;
    (* a budget-free link resumes from the prefix and converges *)
    let node2 = make_node ~primary:repl_addr dir in
    catch_up "after recovery" node2.link;
    Alcotest.(check string)
      (Printf.sprintf "trip at %d: converges to the primary" !k)
      full
      (Test_persist.repr node2.store);
    dispose node2;
    Test_persist.rm_rf dir;
    if tripped then incr k
  done;
  Alcotest.(check bool)
    (Printf.sprintf "swept %d kill points" !k)
    true (!k > 5)

let suite =
  [ Alcotest.test_case "read-only gate and stats role" `Quick
      test_read_only_gate;
    Alcotest.test_case "promote verb" `Quick test_promote_verb;
    Alcotest.test_case "handshake refusals are typed" `Quick test_handshake;
    Alcotest.test_case "differential: replica equals primary" `Quick
      test_differential;
    Alcotest.test_case "promotion detaches and keeps state" `Quick
      test_promotion;
    Alcotest.test_case "kill sweep at every append boundary" `Quick
      test_kill_sweep
  ]
