(* Log-shipping replication, in process: the engine-level protocol
   policy (read-only gating, handshake refusals, promote), then the two
   correctness properties from the PR contract —

   - differential: a replica driven through a random schedule of
     mutations, disconnects, restarts, partial catch-ups and primary
     compactions ends byte-identical to the primary once it drains;
   - kill sweep: a fault-injection budget kills the replica's WAL append
     at every chunk boundary in turn; recovery of the replica's own
     directory always lands on a sound prefix of the primary's history,
     and a budget-free link then converges to full equality.

   The primary is a real [Server.Daemon] on ephemeral TCP ports; the
   replica is the same harness `olp serve --replica-of` wires, driven
   step by step ([Link.step]) for deterministic schedules. *)

module P = Persist
module W = Server.Wire
module B = Governor.Budget
module Engine = Server.Engine
module Daemon = Server.Daemon
module Link = Replica.Link
module Store = Kb.Store

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let state = ref 0x51A9C4D3

let rand bound =
  state := (!state * 1664525) + 1013904223;
  (!state lsr 9) mod bound

let config dir = { P.dir; fsync = false; snapshot_every = 0; group_commit_ms = 0 }

let str_member k j =
  match W.member k j with Some (W.String s) -> Some s | _ -> None

let status j = Option.value ~default:"?" (str_member "status" j)

let error_kind j =
  match W.member "error" j with
  | Some e -> Option.value ~default:"?" (str_member "kind" e)
  | None -> "?"

let error_message j =
  match W.member "error" j with
  | Some e -> Option.value ~default:"" (str_member "message" e)
  | None -> ""

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Engine-level protocol policy (no sockets)                           *)
(* ------------------------------------------------------------------ *)

let stub_replication ?(role = "replica") () =
  { Engine.role = (fun () -> role);
    primary = (fun () -> Some "unix:prim.sock");
    details = (fun () -> [ ("primary", W.String "unix:prim.sock") ]);
    promote = (fun () -> Ok "primary")
  }

let test_read_only_gate () =
  let engine = Engine.create () in
  Engine.set_replication engine (stub_replication ());
  let j =
    Engine.handle_line engine {|{"op":"add_rule","obj":"x","rule":"p."}|}
  in
  Alcotest.(check string) "write refused" "error" (status j);
  Alcotest.(check string) "typed read_only" "read_only" (error_kind j);
  Alcotest.(check bool) "redirect names the primary" true
    (contains ~needle:"unix:prim.sock" (error_message j));
  (* reads still serve, and stats reports the role *)
  let j = Engine.handle_line engine {|{"op":"stats"}|} in
  Alcotest.(check string) "stats ok on a replica" "ok" (status j);
  (match W.member "replication" j with
  | Some r ->
    Alcotest.(check (option string)) "role surfaced" (Some "replica")
      (str_member "role" r)
  | None -> Alcotest.fail "stats lacks the replication object");
  (* a primary role does not gate writes *)
  Engine.set_replication engine (stub_replication ~role:"primary" ());
  let j =
    Engine.handle_line engine
      {|{"op":"define","name":"x","isa":[],"rules":"p."}|}
  in
  Alcotest.(check string) "primary accepts writes" "ok" (status j)

let test_promote_verb () =
  let engine = Engine.create () in
  let j = Engine.handle_line engine {|{"op":"promote"}|} in
  Alcotest.(check string) "promote off a non-replica" "error" (status j);
  Alcotest.(check string) "typed as input" "input" (error_kind j);
  Engine.set_replication engine (stub_replication ());
  let j = Engine.handle_line engine {|{"op":"promote"}|} in
  Alcotest.(check string) "promote on a replica" "ok" (status j);
  Alcotest.(check (option string)) "new role reported" (Some "primary")
    (str_member "role" j)

let with_persistence f =
  let dir = Test_persist.fresh_dir () in
  let p, store, _ = P.open_dir (config dir) in
  let session = Kb.Session.of_store store in
  Kb.Session.on_mutation session (fun m -> P.append p m);
  let engine =
    Engine.create ~session
      ~persistence:
        { Engine.snapshot = (fun () -> P.snapshot p);
          seq = (fun () -> P.seq p);
          epoch = (fun () -> P.epoch p);
          wait_durable = (fun () -> P.wait_durable p);
          tail =
            (fun ~from ~max ->
              match P.tail p ~from ~max with
              | Ok _ as ok -> ok
              | Error (`Too_old base) -> Error base);
          snapshot_image = (fun () -> P.snapshot_image p)
        }
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      P.close p;
      Test_persist.rm_rf dir)
    (fun () -> f engine session)

let test_handshake () =
  with_persistence @@ fun engine session ->
  Kb.Session.load session "component c { p. q :- p. }";
  (* a replica speaking an older protocol revision is refused, typed *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":0,"protocol":2}|}
  in
  Alcotest.(check string) "revision mismatch refused" "error" (status j);
  Alcotest.(check string) "typed handshake error" "handshake" (error_kind j);
  Alcotest.(check bool) "message names both revisions" true
    (contains ~needle:"revision" (error_message j));
  (* a replica ahead of the primary has a diverged history *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":99,"protocol":7}|}
  in
  Alcotest.(check string) "diverged replica refused" "handshake"
    (error_kind j);
  (* the good case tells the replica to tail *)
  let j =
    Engine.handle_line engine {|{"op":"hello","seq":0,"protocol":7}|}
  in
  Alcotest.(check string) "hello ok" "ok" (status j);
  Alcotest.(check (option string)) "action is tail" (Some "tail")
    (str_member "action" j);
  (* replication verbs without a data directory are input errors *)
  let bare = Engine.create () in
  let j = Engine.handle_line bare {|{"op":"hello","seq":0,"protocol":7}|} in
  Alcotest.(check string) "hello without persistence" "input" (error_kind j)

(* ------------------------------------------------------------------ *)
(* A real primary and a step-driven replica                            *)
(* ------------------------------------------------------------------ *)

let with_primary f =
  let dir = Test_persist.fresh_dir () in
  let d =
    Daemon.create
      { Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 2;
        parallel = `Threads;
        queue = 64;
        caps = { Engine.timeout = Some 10.; steps = None };
        persist = Some (config dir);
        replicate_on = Some (`Tcp ("127.0.0.1", 0));
        sync = None
      }
  in
  let server = Thread.create (fun () -> Daemon.serve d) () in
  let finally () =
    Daemon.stop d;
    Thread.join server;
    Test_persist.rm_rf dir
  in
  Fun.protect ~finally (fun () ->
      f d (Option.get (Daemon.replication_address d)))

type node = {
  dir : string;
  persist : P.t;
  store : Store.t;
  link : Link.t;
  budget : B.t option ref;  (* armed by the kill sweep *)
}

let make_node ~primary dir =
  let p, store, _ = P.open_dir (config dir) in
  let session = Kb.Session.of_store store in
  let budget = ref None in
  Kb.Session.on_mutation session (fun m -> P.append ?budget:!budget p m);
  let engine = Engine.create ~session () in
  let link =
    Link.create ~engine ~session ~persist:p
      { (Link.default_config primary) with retry_base = 2.; retry_cap = 2. }
  in
  { dir; persist = p; store; link; budget }

let dispose n =
  Link.stop n.link;
  P.close n.persist

let step_once label link =
  match Link.step link with
  | (`Applied _ | `Ready | `Idle) as r -> r
  | `Retry msg -> Alcotest.failf "%s: transient failure: %s" label msg
  | `Fatal msg -> Alcotest.failf "%s: replication halted: %s" label msg
  | `Stopped -> Alcotest.failf "%s: link stopped" label

let catch_up label link =
  let rec go fuel =
    if fuel = 0 then Alcotest.failf "%s: catch-up did not converge" label
    else
      match step_once label link with
      | `Applied _ | `Ready -> go (fuel - 1)
      | `Idle -> ()
  in
  go 10_000

(* The primary's write path without the socket round-trip: apply through
   the engine's session under its lock, exactly as [Engine.handle] does,
   and mirror the mutation for the expected-state comparison. *)
let mutate_primary d mirror m =
  Store.apply mirror m;
  let engine = Daemon.engine d in
  Engine.exclusively engine (fun () ->
      Kb.Session.apply (Engine.session engine) m)

let test_differential () =
  with_primary @@ fun d repl_addr ->
  let mirror = Store.create () in
  let pp = Option.get (Daemon.persist_handle d) in
  let node = ref (make_node ~primary:repl_addr (Test_persist.fresh_dir ())) in
  let steps = max 60 (iters / 4) in
  for _ = 1 to steps do
    match rand 12 with
    | 0 -> Link.disconnect !node.link
    | 1 ->
      (* replica restart: reopen the same directory and resume *)
      let dir = !node.dir in
      dispose !node;
      node := make_node ~primary:repl_addr dir
    | 2 ->
      (* primary compaction: forces a snapshot bootstrap on any replica
         whose position falls behind the retained log *)
      Engine.exclusively (Daemon.engine d) (fun () ->
          ignore (P.compact pp : int * int))
    | 3 | 4 ->
      (* partial catch-up: a few protocol steps, wherever they land *)
      for _ = 1 to 1 + rand 3 do
        ignore (step_once "partial" !node.link : [ `Applied of int | `Ready | `Idle ])
      done
    | _ -> mutate_primary d mirror (Test_persist.gen_mutation mirror)
  done;
  catch_up "final drain" !node.link;
  Alcotest.(check string) "replica state equals primary state"
    (Test_persist.repr mirror)
    (Test_persist.repr !node.store);
  Alcotest.(check int) "sequence numbers agree" (P.seq pp)
    (P.seq !node.persist);
  let status = Link.status !node.link in
  Alcotest.(check int) "no lag after drain" 0 status.Link.lag;
  (* the replica's own WAL is the full story: a cold restart of the
     replica directory reproduces the state without the primary *)
  let dir = !node.dir in
  dispose !node;
  let p2, store2, _ = P.open_dir (config dir) in
  Alcotest.(check string) "replica state is durable"
    (Test_persist.repr mirror) (Test_persist.repr store2);
  P.close p2;
  Test_persist.rm_rf dir

let test_promotion () =
  with_primary @@ fun d repl_addr ->
  let mirror = Store.create () in
  for _ = 1 to 5 do
    mutate_primary d mirror (Test_persist.gen_mutation mirror)
  done;
  let node = make_node ~primary:repl_addr (Test_persist.fresh_dir ()) in
  catch_up "before promotion" node.link;
  (match Link.promote node.link with
  | Ok role -> Alcotest.(check string) "promoted" "primary" role
  | Error e -> Alcotest.failf "promotion refused: %s" e);
  (match Link.promote node.link with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second promotion accepted");
  Alcotest.(check string) "role flipped" "primary"
    (Link.status node.link).Link.role;
  (match Link.step node.link with
  | `Stopped -> ()
  | _ -> Alcotest.fail "promoted link still stepping");
  (* the promoted store keeps its history and accepts divergence *)
  Alcotest.(check string) "state carried across promotion"
    (Test_persist.repr mirror) (Test_persist.repr node.store);
  let dir = node.dir in
  dispose node;
  Test_persist.rm_rf dir

(* ------------------------------------------------------------------ *)
(* Kill sweep: die at every WAL chunk boundary during apply            *)
(* ------------------------------------------------------------------ *)

let test_kill_sweep () =
  with_primary @@ fun d repl_addr ->
  let script = Test_persist.sample_mutations in
  let mirror = Store.create () in
  List.iter (fun m -> mutate_primary d mirror m) script;
  let full = Test_persist.repr mirror in
  (* expected.(i) = state after the first i primary mutations *)
  let expected =
    let s = Store.create () in
    let initial = Test_persist.repr s in
    let after =
      List.map
        (fun m ->
          Store.apply s m;
          Test_persist.repr s)
        script
    in
    Array.of_list (initial :: after)
  in
  let k = ref 1 in
  let fired = ref true in
  while !fired do
    let dir = Test_persist.fresh_dir () in
    let node = make_node ~primary:repl_addr dir in
    node.budget := Some (B.with_trip_at ~step:!k ());
    let tripped =
      try
        catch_up "sweep" node.link;
        false
      with B.Exhausted B.Fault -> true
    in
    fired := tripped;
    dispose node;
    (* the replica's directory recovers to a sound prefix of the
       primary's history — never junk, never beyond the kill point *)
    let p2, store2, r2 = P.open_dir (config dir) in
    Alcotest.(check bool)
      (Printf.sprintf "trip at %d: prefix length sane" !k)
      true
      (r2.P.seq >= 0 && r2.P.seq <= List.length script);
    Alcotest.(check string)
      (Printf.sprintf "trip at %d: recovered prefix" !k)
      expected.(r2.P.seq)
      (Test_persist.repr store2);
    P.close p2;
    (* a budget-free link resumes from the prefix and converges *)
    let node2 = make_node ~primary:repl_addr dir in
    catch_up "after recovery" node2.link;
    Alcotest.(check string)
      (Printf.sprintf "trip at %d: converges to the primary" !k)
      full
      (Test_persist.repr node2.store);
    dispose node2;
    Test_persist.rm_rf dir;
    if tripped then incr k
  done;
  Alcotest.(check bool)
    (Printf.sprintf "swept %d kill points" !k)
    true (!k > 5)

(* ------------------------------------------------------------------ *)
(* Full in-process servers: the wiring bin/olp.ml does, for fencing,   *)
(* synchronous commit, chained topologies and the replica-set client   *)
(* ------------------------------------------------------------------ *)

type server = { sdaemon : Daemon.t; sthread : Thread.t; slink : Link.t option }

let spawn ?replica_of ?(replicate = true) ?sync dir =
  let d =
    Daemon.create
      { Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 2;
        parallel = `Threads;
        queue = 64;
        caps = { Engine.timeout = Some 10.; steps = None };
        persist = Some (config dir);
        replicate_on =
          (if replicate then Some (`Tcp ("127.0.0.1", 0)) else None);
        sync
      }
  in
  let engine = Daemon.engine d in
  let link =
    match replica_of with
    | None -> None
    | Some primary ->
      let persist = Option.get (Daemon.persist_handle d) in
      let link =
        Link.create ~engine ~session:(Engine.session engine) ~persist
          { (Link.default_config primary) with
            retry_base = 2.;
            retry_cap = 2.
          }
      in
      Engine.set_replication engine
        { Engine.role = (fun () -> (Link.status link).Link.role);
          primary = (fun () -> Some (Link.status link).Link.primary);
          details = (fun () -> []);
          promote = (fun () -> Link.promote link)
        };
      Daemon.on_drain d (fun () -> Link.stop link);
      Link.start link;
      Some link
  in
  let sthread = Thread.create (fun () -> Daemon.serve d) () in
  { sdaemon = d; sthread; slink = link }

let shutdown s =
  Daemon.stop s.sdaemon;
  Thread.join s.sthread

let repl_addr s = Option.get (Daemon.replication_address s.sdaemon)
let seq_of s = P.seq (Option.get (Daemon.persist_handle s.sdaemon))

let wait_for ~msg f =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      ignore (Unix.select [] [] [] 0.02);
      go ()
    end
  in
  go ()

let must_ok label j =
  if status j <> "ok" then
    Alcotest.failf "%s: %s" label (W.to_string j);
  j

(* Epoch fencing: a revived stale primary is refused at every protocol
   boundary — hello, pull and fetch_snapshot — both at the engine level
   and by a real link, which halts with a typed fatal error. *)
let test_fencing () =
  let pdir = Test_persist.fresh_dir () in
  let prim = spawn pdir in
  ignore
    (must_ok "load"
       (Engine.handle_line (Daemon.engine prim.sdaemon)
          {|{"op":"load","src":"component c { p. }"}|}));
  let rdir = Test_persist.fresh_dir () in
  let node = make_node ~primary:(repl_addr prim) rdir in
  catch_up "fencing" node.link;
  (* the primary dies; the replica is promoted and now owns epoch 1 *)
  shutdown prim;
  (match Link.promote node.link with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "promotion refused: %s" e);
  Alcotest.(check int) "promotion bumps the epoch" 1
    (Link.status node.link).Link.epoch;
  dispose node;
  (* revive the old primary from its untouched directory: still epoch 0,
     and it must refuse anyone who witnessed the promotion *)
  let prim2 = spawn pdir in
  let e2 = Daemon.engine prim2.sdaemon in
  let fenced line =
    let j = Engine.handle_line e2 line in
    Alcotest.(check string) ("typed fence: " ^ line) "fenced" (error_kind j)
  in
  fenced {|{"op":"hello","seq":0,"protocol":7,"epoch":1,"rid":"x"}|};
  fenced {|{"op":"pull","from":0,"epoch":1,"rid":"x"}|};
  fenced {|{"op":"fetch_snapshot","epoch":1}|};
  (* a link over the promoted directory refuses to follow it *)
  let node2 = make_node ~primary:(repl_addr prim2) rdir in
  (match Link.step node2.link with
  | `Fatal msg ->
    Alcotest.(check bool) "halt names the fence" true
      (contains ~needle:"fenced" msg)
  | _ -> Alcotest.fail "a deposed primary was followed");
  dispose node2;
  shutdown prim2;
  Test_persist.rm_rf pdir;
  Test_persist.rm_rf rdir

(* Promotion arriving in the middle of a burst of shipped mutations:
   the store always lands on the exact prefix the replica's WAL holds
   (never mid-record, never mid-batch), the epoch is bumped exactly
   once, and a second promotion is refused. *)
let test_promote_mid_burst () =
  with_primary @@ fun d repl_addr ->
  let mirror = Store.create () in
  let node = make_node ~primary:repl_addr (Test_persist.fresh_dir ()) in
  Link.start node.link;
  let n = 150 in
  let expected = Array.make (n + 1) (Test_persist.repr mirror) in
  for i = 1 to n do
    let m = Test_persist.gen_mutation mirror in
    mutate_primary d mirror m;
    expected.(i) <- Test_persist.repr mirror;
    if i = n / 3 then Link.request_promote node.link
  done;
  wait_for ~msg:"promotion lands" (fun () ->
      (Link.status node.link).Link.role = "primary");
  Link.stop node.link;
  let s = Link.status node.link in
  Alcotest.(check int) "epoch bumped exactly once" 1 s.Link.epoch;
  let seq = P.seq node.persist in
  Alcotest.(check bool) "prefix length sane" true (seq >= 0 && seq <= n);
  Alcotest.(check string) "sound prefix at the cut" expected.(seq)
    (Test_persist.repr node.store);
  (match Link.promote node.link with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second promotion accepted");
  Alcotest.(check int) "idempotent: epoch still 1" 1
    (Link.status node.link).Link.epoch;
  let dir = node.dir in
  dispose node;
  Test_persist.rm_rf dir

(* Synchronous commit: with no replica attached the ack degrades to a
   typed sync_timeout (mutation applied and locally durable); with one
   attached, every acked write is on the replica's stable storage by
   the time the client sees the ack. *)
let test_sync_commit () =
  let pdir = Test_persist.fresh_dir () in
  let prim = spawn ~sync:{ Engine.replicas = 1; timeout_ms = 1200 } pdir in
  let engine = Daemon.engine prim.sdaemon in
  let j =
    Engine.handle_line engine {|{"op":"load","src":"component c { p. }"}|}
  in
  Alcotest.(check string) "no replica: degraded" "error" (status j);
  Alcotest.(check string) "typed sync_timeout" "sync_timeout" (error_kind j);
  let j = Engine.handle_line engine {|{"op":"query","obj":"c","lit":"p"}|} in
  Alcotest.(check string) "mutation applied despite degrade" "ok" (status j);
  let rdir = Test_persist.fresh_dir () in
  let repl = spawn ~replica_of:(repl_addr prim) ~replicate:false rdir in
  wait_for ~msg:"replica catches up" (fun () -> seq_of repl >= 1);
  for i = 1 to 5 do
    ignore
      (must_ok
         (Printf.sprintf "sync write %d" i)
         (Engine.handle_line engine
            (Printf.sprintf
               {|{"op":"add_rule","obj":"c","rule":"q%d."}|} i)));
    (* the ack was held until this replica confirmed durability *)
    Alcotest.(check bool)
      (Printf.sprintf "write %d durable on the replica at ack time" i)
      true
      (seq_of repl >= i + 1)
  done;
  let stats = W.to_string (Engine.handle_line engine {|{"op":"stats"}|}) in
  Alcotest.(check bool) "stats reports the sync policy" true
    (contains ~needle:{|"sync_replicas":1|} stats);
  Alcotest.(check bool) "stats counts the degrade" true
    (contains ~needle:{|"sync_timeouts":1|} stats);
  shutdown repl;
  shutdown prim;
  let p1, s1, _ = P.open_dir (config pdir) in
  let p2, s2, _ = P.open_dir (config rdir) in
  Alcotest.(check string) "replica holds every acked write"
    (Test_persist.repr s1) (Test_persist.repr s2);
  P.close p1;
  P.close p2;
  Test_persist.rm_rf pdir;
  Test_persist.rm_rf rdir

(* A chain primary -> mid -> leaf: records flow through, and when the
   primary dies and the middle is promoted, the leaf re-handshakes,
   adopts the new epoch and keeps following — the chained failover. *)
let test_chained_failover () =
  let d1 = Test_persist.fresh_dir () in
  let d2 = Test_persist.fresh_dir () in
  let d3 = Test_persist.fresh_dir () in
  let prim = spawn d1 in
  let pe = Daemon.engine prim.sdaemon in
  ignore
    (must_ok "load"
       (Engine.handle_line pe {|{"op":"load","src":"component c { p. }"}|}));
  let mid = spawn ~replica_of:(repl_addr prim) d2 in
  let leaf = spawn ~replica_of:(repl_addr mid) ~replicate:false d3 in
  for i = 1 to 5 do
    ignore
      (must_ok "chain write"
         (Engine.handle_line pe
            (Printf.sprintf
               {|{"op":"add_rule","obj":"c","rule":"q%d."}|} i)))
  done;
  wait_for ~msg:"leaf catches up through the chain" (fun () ->
      seq_of leaf >= 6);
  shutdown prim;
  let me = Daemon.engine mid.sdaemon in
  let j = must_ok "promote mid" (Engine.handle_line me {|{"op":"promote"}|}) in
  (match W.member "epoch" j with
  | Some (W.Int 1) -> ()
  | _ -> Alcotest.failf "promote reply lacks epoch 1: %s" (W.to_string j));
  ignore
    (must_ok "write after failover"
       (Engine.handle_line me
          {|{"op":"add_rule","obj":"c","rule":"after_failover."}|}));
  wait_for ~msg:"leaf follows the promoted mid" (fun () -> seq_of leaf >= 7);
  wait_for ~msg:"leaf adopts the new epoch" (fun () ->
      (Link.status (Option.get leaf.slink)).Link.epoch = 1);
  shutdown leaf;
  shutdown mid;
  let p2, s2, r2 = P.open_dir (config d2) in
  let p3, s3, r3 = P.open_dir (config d3) in
  Alcotest.(check string) "leaf equals the promoted mid"
    (Test_persist.repr s2) (Test_persist.repr s3);
  Alcotest.(check int) "mid recovered at epoch 1" 1 r2.P.epoch;
  Alcotest.(check int) "leaf recovered at epoch 1" 1 r3.P.epoch;
  P.close p2;
  P.close p3;
  List.iter Test_persist.rm_rf [ d1; d2; d3 ]

(* The replica-set client: seeded only with the replica's address it
   still lands writes on the primary (following the typed redirect),
   round-robins reads, and rides out a failover. *)
let test_rset_failover () =
  let d1 = Test_persist.fresh_dir () in
  let d2 = Test_persist.fresh_dir () in
  let prim = spawn d1 in
  ignore
    (must_ok "load"
       (Engine.handle_line (Daemon.engine prim.sdaemon)
          {|{"op":"load","src":"component c { p. }"}|}));
  let repl = spawn ~replica_of:(repl_addr prim) ~replicate:false d2 in
  wait_for ~msg:"replica catches up" (fun () -> seq_of repl >= 1);
  let rset = Server.Rset.create [ Daemon.address repl.sdaemon ] in
  (match
     Server.Rset.request_line ~retry:5. rset
       {|{"op":"add_rule","obj":"c","rule":"q1."}|}
   with
  | Ok j -> ignore (must_ok "redirected write" j)
  | Error e -> Alcotest.failf "redirected write failed: %s" e);
  Alcotest.(check (option string)) "primary learned from the redirect"
    (Some (Daemon.address_to_string (repl_addr prim)))
    (Server.Rset.primary rset);
  wait_for ~msg:"write reaches the replica" (fun () -> seq_of repl >= 2);
  for i = 1 to 4 do
    match
      Server.Rset.request_line rset {|{"op":"query","obj":"c","lit":"q1"}|}
    with
    | Ok j ->
      ignore (must_ok (Printf.sprintf "read %d" i) j);
      Alcotest.(check (option string))
        (Printf.sprintf "read %d sees the write" i)
        (Some "true") (str_member "value" j)
    | Error e -> Alcotest.failf "read %d failed: %s" i e
  done;
  (* failover: the primary dies, the replica is promoted, and the same
     client keeps working without reconfiguration *)
  shutdown prim;
  ignore
    (must_ok "promote"
       (Engine.handle_line (Daemon.engine repl.sdaemon) {|{"op":"promote"}|}));
  (match
     Server.Rset.request_line ~retry:10. rset
       {|{"op":"add_rule","obj":"c","rule":"q2."}|}
   with
  | Ok j -> ignore (must_ok "write after failover" j)
  | Error e -> Alcotest.failf "write after failover failed: %s" e);
  (match
     Server.Rset.request_line ~retry:5. rset
       {|{"op":"query","obj":"c","lit":"q2"}|}
   with
  | Ok j ->
    Alcotest.(check (option string)) "failover write visible" (Some "true")
      (str_member "value" j)
  | Error e -> Alcotest.failf "read after failover failed: %s" e);
  Server.Rset.close rset;
  shutdown repl;
  List.iter Test_persist.rm_rf [ d1; d2 ]

let suite =
  [ Alcotest.test_case "read-only gate and stats role" `Quick
      test_read_only_gate;
    Alcotest.test_case "promote verb" `Quick test_promote_verb;
    Alcotest.test_case "handshake refusals are typed" `Quick test_handshake;
    Alcotest.test_case "differential: replica equals primary" `Quick
      test_differential;
    Alcotest.test_case "promotion detaches and keeps state" `Quick
      test_promotion;
    Alcotest.test_case "kill sweep at every append boundary" `Quick
      test_kill_sweep;
    Alcotest.test_case "fencing at every protocol boundary" `Quick
      test_fencing;
    Alcotest.test_case "promotion mid-burst lands on a sound prefix" `Quick
      test_promote_mid_burst;
    Alcotest.test_case "synchronous commit holds acks for the replica" `Quick
      test_sync_commit;
    Alcotest.test_case "chained replica follows a mid-chain promotion" `Quick
      test_chained_failover;
    Alcotest.test_case "replica-set client rides out a failover" `Quick
      test_rset_failover
  ]
