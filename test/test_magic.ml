(* Magic-set rewriting for positive datalog. *)

open Logic
open Helpers
module M = Datalog.Magic

let atom s = (lit s).Literal.atom

let chain_edb n =
  List.init n (fun i ->
      Rule.fact (Literal.pos (Atom.make "e" [ Term.Int i; Term.Int (i + 1) ])))

let tc = rules "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."

let full_answers rules_ ~query =
  let ground = (Ground.Grounder.naive rules_).Ground.Grounder.rules in
  let np = Datalog.Nprog.of_rules ground in
  let model = Datalog.Nprog.decode_mask np (Datalog.Consequence.lfp np) in
  Atom.Set.filter
    (fun a -> Option.is_some (Unify.match_atom query a))
    model

let check_same name rules_ query =
  Alcotest.(check bool)
    name true
    (Atom.Set.equal (M.answers rules_ ~query) (full_answers rules_ ~query))

let test_bound_first_argument () =
  let prog = tc @ chain_edb 5 in
  let ans = M.answers prog ~query:(atom "t(0, Y)") in
  Alcotest.(check int) "five reachable" 5 (Atom.Set.cardinal ans);
  Alcotest.(check bool) "t(0, 3) in" true (Atom.Set.mem (atom "t(0, 3)") ans);
  check_same "agrees with full evaluation" prog (atom "t(0, Y)")

let test_bound_second_argument () =
  let prog = tc @ chain_edb 5 in
  check_same "bf vs fb" prog (atom "t(X, 5)");
  check_same "fully bound" prog (atom "t(1, 4)");
  check_same "fully free" prog (atom "t(X, Y)")

let test_ground_query_miss () =
  let prog = tc @ chain_edb 3 in
  Alcotest.(check int) "unreachable pair" 0
    (Atom.Set.cardinal (M.answers prog ~query:(atom "t(2, 0)")))

let test_magic_restricts_computation () =
  (* With a bound first argument, only the suffix of the chain is
     computed: the transformed model contains no t-tuple starting before
     the query constant. *)
  let prog = tc @ chain_edb 20 in
  let transformed, _ = M.transform prog ~query:(atom "t(15, Y)") in
  let ground = (Ground.Grounder.relevant ~naf:true transformed).Ground.Grounder.rules in
  let np = Datalog.Nprog.of_rules ground in
  let model = Datalog.Nprog.decode_mask np (Datalog.Consequence.lfp np) in
  Alcotest.(check bool) "no tuple about node 0" false
    (Atom.Set.exists
       (fun (a : Atom.t) ->
         String.length a.Atom.pred >= 3
         && String.sub a.Atom.pred 0 3 = "t__"
         && List.hd a.Atom.args = Term.Int 0)
       model)

let test_edb_query () =
  let prog = tc @ chain_edb 3 in
  Alcotest.(check int) "EDB query passes through" 1
    (Atom.Set.cardinal (M.answers prog ~query:(atom "e(1, Y)")))

let test_idb_facts () =
  (* a predicate with both facts and rules *)
  let prog =
    rules "p(a). p(X) :- q(X). q(b)."
  in
  let ans = M.answers prog ~query:(atom "p(X)") in
  Alcotest.(check int) "fact and derived" 2 (Atom.Set.cardinal ans);
  Alcotest.(check bool) "fact present" true (Atom.Set.mem (atom "p(a)") ans)

let test_nonlinear_same_generation () =
  let prog =
    rules
      "sg(X, X) :- node(X). \
       sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp). \
       node(a). node(b). node(c). node(p). node(q). node(r). \
       par(a, p). par(b, p). par(c, q). par(p, r). par(q, r)."
  in
  check_same "same generation, bound first" prog (atom "sg(a, Y)");
  let ans = M.answers prog ~query:(atom "sg(a, Y)") in
  Alcotest.(check bool) "a ~ b (same parent)" true
    (Atom.Set.mem (atom "sg(a, b)") ans);
  Alcotest.(check bool) "a ~ c (same grandparent)" true
    (Atom.Set.mem (atom "sg(a, c)") ans)

let test_builtins_in_bodies () =
  let prog =
    rules "big(X) :- n(X), X > 2. n(1). n(2). n(3). n(4)."
  in
  check_same "builtin guard" prog (atom "big(X)");
  Alcotest.(check int) "two bigs" 2
    (Atom.Set.cardinal (M.answers prog ~query:(atom "big(X)")))

let test_rejects_negation () =
  match M.transform (rules "p :- -q.") ~query:(atom "p") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negation must be rejected"

let prop_magic_equals_full =
  let open QCheck2.Gen in
  let gen =
    let* edges =
      list_size (int_range 1 10)
        (let* x = int_bound 4 in
         let* y = int_bound 4 in
         return (x, y))
    in
    let* qx = int_bound 4 in
    let* bound_side = int_bound 2 in
    return (edges, qx, bound_side)
  in
  let print (edges, qx, side) =
    Printf.sprintf "edges=%s q=%d side=%d"
      (String.concat ","
         (List.map (fun (x, y) -> Printf.sprintf "%d->%d" x y) edges))
      qx side
  in
  qcheck ~count:150 ~print "magic = full on random graphs" gen
    (fun (edges, qx, side) ->
      let prog =
        tc
        @ List.map
            (fun (x, y) ->
              Rule.fact (Literal.pos (Atom.make "e" [ Term.Int x; Term.Int y ])))
            edges
      in
      let query =
        match side with
        | 0 -> Atom.make "t" [ Term.Int qx; Term.Var "Y" ]
        | 1 -> Atom.make "t" [ Term.Var "X"; Term.Int qx ]
        | _ -> Atom.make "t" [ Term.Var "X"; Term.Var "Y" ]
      in
      Atom.Set.equal (M.answers prog ~query) (full_answers prog ~query))

let suite =
  [ Alcotest.test_case "bound first argument" `Quick test_bound_first_argument;
    Alcotest.test_case "other binding patterns" `Quick test_bound_second_argument;
    Alcotest.test_case "ground query miss" `Quick test_ground_query_miss;
    Alcotest.test_case "magic restricts computation" `Quick
      test_magic_restricts_computation;
    Alcotest.test_case "EDB queries" `Quick test_edb_query;
    Alcotest.test_case "IDB facts" `Quick test_idb_facts;
    Alcotest.test_case "same generation (non-linear)" `Quick
      test_nonlinear_same_generation;
    Alcotest.test_case "builtins in bodies" `Quick test_builtins_in_bodies;
    Alcotest.test_case "rejects negation" `Quick test_rejects_negation;
    prop_magic_equals_full
  ]
