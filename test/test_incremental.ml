(* Incremental view maintenance (DRed) for the positive-datalog
   substrate. *)

open Logic
open Helpers
module I = Datalog.Incremental

let atom s = (lit s).Literal.atom

let tc_rules =
  rules "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."

let check_matches_recompute ?(msg = "incremental = recompute") t =
  Alcotest.(check bool) msg true (Atom.Set.equal (I.derived t) (I.recompute t))

let test_insertions () =
  let t = I.create (Ground.Grounder.naive ~extra_constants:[ Term.Sym "a"; Term.Sym "b"; Term.Sym "c" ] tc_rules).Ground.Grounder.rules in
  I.add t (atom "e(a, b)");
  I.add t (atom "e(b, c)");
  Alcotest.(check bool) "t(a, c) derived" true (I.holds t (atom "t(a, c)"));
  check_matches_recompute t

let test_deletion_simple () =
  let t = I.create (Ground.Grounder.naive ~extra_constants:[ Term.Sym "a"; Term.Sym "b"; Term.Sym "c" ] tc_rules).Ground.Grounder.rules in
  I.add t (atom "e(a, b)");
  I.add t (atom "e(b, c)");
  I.remove t (atom "e(b, c)");
  Alcotest.(check bool) "t(a, c) gone" false (I.holds t (atom "t(a, c)"));
  Alcotest.(check bool) "t(a, b) stays" true (I.holds t (atom "t(a, b)"));
  check_matches_recompute t

let test_deletion_alternative_support () =
  (* Two paths a->c; deleting one keeps t(a, c). *)
  let consts = [ Term.Sym "a"; Term.Sym "b"; Term.Sym "c"; Term.Sym "d" ] in
  let t = I.create (Ground.Grounder.naive ~extra_constants:consts tc_rules).Ground.Grounder.rules in
  List.iter
    (fun s -> I.add t (atom s))
    [ "e(a, b)"; "e(b, c)"; "e(a, d)"; "e(d, c)" ];
  I.remove t (atom "e(b, c)");
  Alcotest.(check bool) "t(a, c) survives via d" true (I.holds t (atom "t(a, c)"));
  check_matches_recompute t

let test_deletion_with_cycle () =
  (* The classic DRed case: a cycle must not keep itself alive. *)
  let consts = [ Term.Sym "a"; Term.Sym "b"; Term.Sym "c" ] in
  let t = I.create (Ground.Grounder.naive ~extra_constants:consts tc_rules).Ground.Grounder.rules in
  List.iter (fun s -> I.add t (atom s)) [ "e(a, b)"; "e(b, a)"; "e(b, c)" ];
  Alcotest.(check bool) "t(a, a) in cycle" true (I.holds t (atom "t(a, a)"));
  I.remove t (atom "e(b, a)");
  Alcotest.(check bool) "cycle-supported facts die" false
    (I.holds t (atom "t(a, a)"));
  Alcotest.(check bool) "t(a, c) survives" true (I.holds t (atom "t(a, c)"));
  check_matches_recompute t

let test_readd_after_remove () =
  let t = I.create (Ground.Grounder.naive ~extra_constants:[ Term.Sym "a"; Term.Sym "b"; Term.Sym "c" ] tc_rules).Ground.Grounder.rules in
  I.add t (atom "e(a, b)");
  I.remove t (atom "e(a, b)");
  I.add t (atom "e(a, b)");
  Alcotest.(check bool) "t(a, b) back" true (I.holds t (atom "t(a, b)"));
  check_matches_recompute t

let test_remove_noop () =
  let t = I.create (Ground.Grounder.naive ~extra_constants:[ Term.Sym "a"; Term.Sym "b" ] tc_rules).Ground.Grounder.rules in
  I.add t (atom "e(a, b)");
  I.remove t (atom "e(b, a)");
  (* a derived (non-EDB) atom cannot be removed *)
  I.remove t (atom "t(a, b)");
  Alcotest.(check bool) "unchanged" true (I.holds t (atom "t(a, b)"));
  check_matches_recompute t

let test_initial_facts () =
  let t = I.create (rules "p :- q. q. r :- p, q.") in
  Alcotest.(check bool) "facts seeded" true (I.holds t (atom "r"));
  I.remove t (atom "q");
  Alcotest.(check bool) "cascade after removing seed" false (I.holds t (atom "r"));
  check_matches_recompute t

let test_rejects_bad_rules () =
  let reject src =
    match I.create (rules src) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("should reject " ^ src)
  in
  reject "p :- -q.";
  reject "-p :- q.";
  reject "p(X) :- q(X)."

(* Random update sequences against from-scratch recomputation. *)
let prop_random_updates =
  let open QCheck2.Gen in
  let gen =
    let* nedges = int_range 1 8 in
    let edge =
      let* x = int_bound 3 in
      let* y = int_bound 3 in
      return (Atom.make "e" [ Term.Int x; Term.Int y ])
    in
    let* ops =
      list_size (int_range 1 20)
        (let* add = bool in
         let* e = edge in
         return (add, e))
    in
    let* initial = list_size (return nedges) edge in
    return (initial, ops)
  in
  let print (initial, ops) =
    String.concat "; "
      (List.map (fun a -> "init " ^ Atom.to_string a) initial
      @ List.map
          (fun (add, a) ->
            (if add then "add " else "del ") ^ Atom.to_string a)
          ops)
  in
  qcheck ~count:200 ~print "DRed maintenance = recomputation" gen
    (fun (initial, ops) ->
      let consts = List.init 4 (fun i -> Term.Int i) in
      let ground =
        (Ground.Grounder.naive ~extra_constants:consts tc_rules)
          .Ground.Grounder.rules
      in
      let t = I.create ground in
      List.iter (I.add t) initial;
      List.for_all
        (fun (add, e) ->
          if add then I.add t e else I.remove t e;
          Atom.Set.equal (I.derived t) (I.recompute t))
        ops)

let suite =
  [ Alcotest.test_case "insertions" `Quick test_insertions;
    Alcotest.test_case "simple deletion" `Quick test_deletion_simple;
    Alcotest.test_case "deletion with alternative support" `Quick
      test_deletion_alternative_support;
    Alcotest.test_case "deletion through cycles (DRed)" `Quick
      test_deletion_with_cycle;
    Alcotest.test_case "re-add after remove" `Quick test_readd_after_remove;
    Alcotest.test_case "remove is EDB-only" `Quick test_remove_noop;
    Alcotest.test_case "initial facts" `Quick test_initial_facts;
    Alcotest.test_case "rejects non-positive programs" `Quick
      test_rejects_bad_rules;
    prop_random_updates
  ]
