(* Explanations against the least model. *)

open Helpers
module E = Ordered.Explain

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let g1 () = ground_at (program p1_src) "c1"

let test_holds () =
  match E.explain (g1 ()) (lit "fly(pigeon)") with
  | E.Holds { via; body; _ } ->
    Alcotest.(check string) "component" "c2" via.E.component;
    Alcotest.check testable_rule "rule" (rule "fly(pigeon) :- bird(pigeon).")
      via.E.rule;
    Alcotest.(check (list testable_literal)) "body" [ lit "bird(pigeon)" ] body
  | _ -> Alcotest.fail "expected Holds"

let test_complement () =
  match E.explain (g1 ()) (lit "fly(penguin)") with
  | E.Complement_holds { via; _ } ->
    Alcotest.(check string) "overruling component" "c1" via.E.component
  | _ -> Alcotest.fail "expected Complement_holds"

let test_unsupported_defeat () =
  let p = program "component main { p. -p. }" in
  let g = ground_at p "main" in
  (match E.explain g (lit "p") with
  | E.Unsupported { candidates = [ c ]; _ } ->
    Alcotest.(check bool) "defeat obstacle" true
      (List.exists
         (function
           | E.Defeated_by _ -> true
           | _ -> false)
         c.E.obstacles)
  | _ -> Alcotest.fail "expected one candidate");
  (* unknown literal *)
  match E.explain g (lit "nothing_here") with
  | E.Unsupported { candidates = []; _ } -> ()
  | _ -> Alcotest.fail "expected no candidates"

let test_unsupported_overruled () =
  let p = program "component hi { p. } component lo extends hi { -p :- q. q. }" in
  let g = ground_at p "lo" in
  match E.explain g (lit "p") with
  | E.Complement_holds _ -> ()
  | _ -> Alcotest.fail "p should be false via the exception"

let test_not_applicable_obstacle () =
  let p = program "component main { p :- q. }" in
  let g = ground_at p "main" in
  match E.explain g (lit "p") with
  | E.Unsupported { candidates = [ c ]; _ } -> (
    match c.E.obstacles with
    | [ E.Not_applicable [ l ] ] ->
      Alcotest.check testable_literal "unmet literal" (lit "q") l
    | _ -> Alcotest.fail "expected Not_applicable [q]")
  | _ -> Alcotest.fail "expected one candidate"

let test_pp_smoke () =
  let g = g1 () in
  List.iter
    (fun q ->
      let s = E.to_string (E.explain g (lit q)) in
      Alcotest.(check bool) ("non-empty for " ^ q) true (String.length s > 0))
    [ "fly(pigeon)"; "fly(penguin)"; "ground_animal(pigeon)"; "zzz" ]

let suite =
  [ Alcotest.test_case "holds" `Quick test_holds;
    Alcotest.test_case "complement holds" `Quick test_complement;
    Alcotest.test_case "unsupported: defeat" `Quick test_unsupported_defeat;
    Alcotest.test_case "unsupported: overruling" `Quick test_unsupported_overruled;
    Alcotest.test_case "unsupported: not applicable" `Quick
      test_not_applicable_obstacle;
    Alcotest.test_case "pretty-printing" `Quick test_pp_smoke
  ]

(* Graphviz export. *)

let test_dot_poset () =
  let p = program p1_src in
  let dot = Ordered.Dot.poset p in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "covering edge present" true
    (let needle = "\"c1\" -> \"c2\"" in
     let n = String.length dot and m = String.length needle in
     let rec go i = i + m <= n && (String.sub dot i m = needle || go (i + 1)) in
     go 0)

let test_dot_derivation_colors () =
  let g = g1 () in
  let dot = Ordered.Dot.derivation g (Helpers.lit "fly(penguin)") in
  let contains needle =
    let n = String.length dot and m = String.length needle in
    let rec go i = i + m <= n && (String.sub dot i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "derived literal is green" true
    (contains "\"Lbird(penguin)\" [label=\"bird(penguin)\", style=filled, fillcolor=palegreen]");
  Alcotest.(check bool) "refuted literal is red" true
    (contains "fillcolor=salmon");
  Alcotest.(check bool) "component labels on rule boxes" true
    (contains "label=\"c2\"")

let test_gop_max_instances () =
  let p = program p1_src in
  let c1 = Ordered.Program.component_id_exn p "c1" in
  (match Ordered.Gop.ground ~max_instances:3 p c1 with
  | exception
      Ordered.Diag.Error (Ordered.Diag.Grounding_overflow { cap = 3; _ }) ->
    ()
  | _ -> Alcotest.fail "budget must trigger");
  ignore (Ordered.Gop.ground ~max_instances:100 p c1)

let suite =
  suite
  @ [ Alcotest.test_case "dot: poset export" `Quick test_dot_poset;
      Alcotest.test_case "dot: derivation colors" `Quick
        test_dot_derivation_colors;
      Alcotest.test_case "gop: max_instances budget" `Quick
        test_gop_max_instances
    ]
