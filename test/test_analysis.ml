(* Static conflict analysis and the Datalog engine facade. *)

open Logic
open Helpers
module A = Ordered.Analysis

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_conflicts_p1 () =
  let p = program p1_src in
  let c1 = Ordered.Program.component_id_exn p "c1" in
  let cs = A.conflicts p c1 in
  (* fly vs -fly (overruling, c1 wins) and ground_animal fact vs
     -ground_animal rule (overruling, c1 wins) *)
  Alcotest.(check int) "two potential conflicts" 2 (List.length cs);
  List.iter
    (fun (c : A.conflict) ->
      match c.A.resolution with
      | A.Overruling { winner } ->
        Alcotest.(check string) "c1 wins" "c1"
          (Ordered.Program.component_name p winner)
      | A.Defeating -> Alcotest.fail "expected overruling")
    cs;
  Alcotest.(check bool) "not conflict-free" false (A.conflict_free p c1);
  Alcotest.(check int) "no defeat-prone pairs" 0
    (List.length (A.defeat_prone p c1))

let test_conflicts_flattened () =
  let p = program p1_src in
  let flat = Ordered.Program.singleton (Ordered.Program.all_rules p) in
  let cs = A.conflicts flat 0 in
  Alcotest.(check int) "same two conflicts" 2 (List.length cs);
  Alcotest.(check int) "both defeat-prone when flattened" 2
    (List.length (A.defeat_prone flat 0))

let test_conflicts_viewpoint () =
  let p = program p1_src in
  let c2 = Ordered.Program.component_id_exn p "c2" in
  (* from c2's own view, c1's exception is invisible *)
  Alcotest.(check int) "no conflicts visible from c2" 0
    (List.length (A.conflicts p c2));
  Alcotest.(check bool) "conflict-free from c2" true (A.conflict_free p c2)

let test_conflicts_nonground_unification () =
  (* Heads with different constants cannot conflict. *)
  let p =
    program
      "component main { p(a). -p(b). q(X) :- r(X). -q(c). }"
  in
  let cs = A.conflicts p 0 in
  (* p(a)/-p(b) do not unify; q(X)/-q(c) do *)
  Alcotest.(check int) "only the unifiable pair" 1 (List.length cs);
  Alcotest.(check bool) "renaming avoids variable capture" true
    (let p2 = program "component main { q(X) :- r(X). -q(X) :- s(X). }" in
     List.length (A.conflicts p2 0) = 1)

(* ------------------------------------------------------------------ *)
(* Datalog engine facade                                               *)
(* ------------------------------------------------------------------ *)

let test_engine_minimal_model () =
  let e = Datalog.Engine.load_src "e(1, 2). e(2, 3). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)." in
  Alcotest.(check int) "3 edges + 3 paths... 2 edges + 3 paths" 5
    (Atom.Set.cardinal (Datalog.Engine.minimal_model e))

let test_engine_well_founded () =
  let e =
    Datalog.Engine.load_src
      "win(X) :- move(X, Y), -win(Y). move(a, b). move(b, c). move(d, d)."
  in
  Alcotest.check testable_value "win(b)" Interp.True
    (Datalog.Engine.holds e (lit "win(b)"));
  Alcotest.check testable_value "win(d)" Interp.Undefined
    (Datalog.Engine.holds e (lit "win(d)"))

let test_engine_stable () =
  let e = Datalog.Engine.load_src "p :- -q. q :- -p." in
  Alcotest.(check int) "two stable models" 2
    (List.length (Datalog.Engine.stable_models e));
  Alcotest.(check int) "limit" 1
    (List.length (Datalog.Engine.stable_models ~limit:1 e))

let test_engine_perfect () =
  let e = Datalog.Engine.load_src "p :- -q. q :- r. r." in
  Alcotest.(check bool) "stratified" true (Datalog.Engine.is_stratified e);
  (match Datalog.Engine.perfect_model e with
  | Some m -> Alcotest.(check int) "perfect = {q, r}" 2 (Atom.Set.cardinal m)
  | None -> Alcotest.fail "expected perfect model");
  let e2 = Datalog.Engine.load_src "p :- -q. q :- -p." in
  Alcotest.(check bool) "unstratified" false (Datalog.Engine.is_stratified e2);
  Alcotest.(check bool) "no perfect model" true
    (Datalog.Engine.perfect_model e2 = None)

let test_engine_grounders_agree () =
  let src = "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). \
             parent(a, b). parent(b, c). orphan(X) :- node(X), -anc(a, X). \
             node(a). node(b). node(c)." in
  let rel = Datalog.Engine.load_src ~grounder:`Relevant src in
  let nai = Datalog.Engine.load_src ~grounder:`Naive src in
  let wf_rel = Datalog.Engine.well_founded rel in
  let wf_nai = Datalog.Engine.well_founded nai in
  (* Naive grounding interns unreachable instances (e.g. anc(c, b)) that
     the relevant grounding never mentions; under NAF an unmentioned atom
     reads as false, so agreement means: same true atoms, and the naive
     model is false wherever the relevant one is silent. *)
  Alcotest.(check (list testable_atom)) "same true atoms"
    (Interp.true_atoms wf_nai) (Interp.true_atoms wf_rel);
  List.iter
    (fun a ->
      let expected =
        match Interp.value wf_rel a with
        | Interp.Undefined -> Interp.False
        | v -> v
      in
      Alcotest.check testable_value (Atom.to_string a) expected
        (Interp.value wf_nai a))
    (Interp.defined_atoms wf_nai)

let suite =
  [ Alcotest.test_case "conflicts in P1" `Quick test_conflicts_p1;
    Alcotest.test_case "conflicts when flattened" `Quick test_conflicts_flattened;
    Alcotest.test_case "conflicts depend on the viewpoint" `Quick
      test_conflicts_viewpoint;
    Alcotest.test_case "conflicts use head unification" `Quick
      test_conflicts_nonground_unification;
    Alcotest.test_case "engine: minimal model" `Quick test_engine_minimal_model;
    Alcotest.test_case "engine: well-founded" `Quick test_engine_well_founded;
    Alcotest.test_case "engine: stable" `Quick test_engine_stable;
    Alcotest.test_case "engine: perfect / stratification" `Quick
      test_engine_perfect;
    Alcotest.test_case "engine: grounders agree" `Quick
      test_engine_grounders_agree
  ]

(* Analysis is consistent with the ground suppression structure: every
   ground overruling/defeating edge is predicted by a static conflict on
   the corresponding rules. *)
let prop_analysis_covers_ground_edges =
  qcheck ~count:80 ~print:print_program
    "static conflicts cover ground suppression edges"
    (Test_props.gen_ordered 4) (fun p ->
      let g = Ordered.Gop.ground p 0 in
      let conflicts = A.conflicts p 0 in
      (* Compare on (component, head literal): grounding dedups body
         literals, so exact rule equality would be too strict. *)
      let covered i j =
        let key idx =
          ( g.Ordered.Gop.rules.(idx).Ordered.Gop.comp,
            Rule.head (Ordered.Gop.rule_src g idx) )
        in
        let ki = key i and kj = key j in
        let matches (c, h) (c', (h' : Literal.t)) =
          c = c' && Literal.equal h h'
        in
        List.exists
          (fun (c : A.conflict) ->
            let ka = (c.A.comp_a, Rule.head c.A.rule_a) in
            let kb = (c.A.comp_b, Rule.head c.A.rule_b) in
            (matches ki ka && matches kj kb)
            || (matches ki kb && matches kj ka))
          conflicts
      in
      List.for_all Fun.id
        (List.concat
           (List.init (Ordered.Gop.n_rules g) (fun i ->
                List.map (fun j -> covered i j) g.Ordered.Gop.overrulers.(i)
                @ List.map (fun j -> covered i j) g.Ordered.Gop.defeaters.(i)))))

let test_gop_stats () =
  let p = program p1_src in
  let g = Ordered.Gop.ground p (Ordered.Program.component_id_exn p "c1") in
  let s = Ordered.Gop.stats g in
  Alcotest.(check int) "atoms" 6 s.Ordered.Gop.atoms;
  Alcotest.(check int) "rules" 9 s.Ordered.Gop.rules;
  Alcotest.(check int) "overruling edges" 3 s.Ordered.Gop.overruling_edges;
  Alcotest.(check int) "defeating edges" 0 s.Ordered.Gop.defeating_edges

let suite =
  suite
  @ [ prop_analysis_covers_ground_edges;
      Alcotest.test_case "gop stats" `Quick test_gop_stats
    ]
