(* Shared helpers for the test suites. *)

open Logic

let term = Lang.Parser.parse_term
let lit = Lang.Parser.parse_literal
let rule = Lang.Parser.parse_rule
let rules = Lang.Parser.parse_rules
let program = Ordered.Program.parse_exn

let interp lits = Interp.of_literals (List.map lit lits)

let ground_at prog name =
  Ordered.Gop.ground prog (Ordered.Program.component_id_exn prog name)

let least prog name = Ordered.Vfix.least_model (ground_at prog name)

(* Alcotest testables *)

let testable_term = Alcotest.testable Term.pp Term.equal
let testable_literal = Alcotest.testable Literal.pp Literal.equal
let testable_rule = Alcotest.testable Rule.pp Rule.equal
let testable_interp = Alcotest.testable Interp.pp Interp.equal

let testable_value =
  Alcotest.testable Interp.pp_value (fun a b -> a = b)

let testable_atom = Alcotest.testable Atom.pp Atom.equal

(* Compare lists of interpretations as sets. *)
let interp_set_equal l1 l2 =
  let norm l =
    List.sort_uniq compare (List.map Interp.to_literals l)
  in
  norm l1 = norm l2

let testable_interp_set =
  Alcotest.testable
    (fun ppf l ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Interp.pp)
        l)
    interp_set_equal

let check_value ~expected g l =
  Alcotest.check testable_value l expected
    (Interp.value_lit (Ordered.Vfix.least_model g) (lit l))

(* Enumerate every interpretation over a list of atoms (3^n). *)
let all_interps atoms =
  let atoms = Array.of_list atoms in
  let acc = ref [] in
  let rec go i m =
    if i >= Array.length atoms then acc := m :: !acc
    else begin
      go (i + 1) m;
      go (i + 1) (Interp.set m atoms.(i) true);
      go (i + 1) (Interp.set m atoms.(i) false)
    end
  in
  go 0 Interp.empty;
  !acc

let qcheck ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ?print ~name gen prop)

let print_program p = Format.asprintf "%a" Ordered.Program.pp p

let print_rules rs =
  String.concat " " (List.map Logic.Rule.to_string rs)
