(* Section 4: negative programs — the 3-level version 3V(C), the direct
   Definition 11 semantics and their equivalence (Theorem 2), plus the
   paper's Examples 8 and 9. *)

open Logic
open Helpers
module Neg = Ordered.Negative

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_three_level_construction () =
  let c = rules "fly(X) :- bird(X). -fly(X) :- ground_animal(X). bird(tweety)." in
  let p = Neg.three_level c in
  Alcotest.(check (list string)) "components"
    [ "exceptions"; "general"; "cwa" ]
    (Array.to_list (Ordered.Program.component_names p));
  let poset = Ordered.Program.poset p in
  let id n = Ordered.Program.component_id_exn p n in
  Alcotest.(check bool) "exceptions < general" true
    (Ordered.Poset.lt poset (id "exceptions") (id "general"));
  Alcotest.(check bool) "general < cwa" true
    (Ordered.Poset.lt poset (id "general") (id "cwa"));
  Alcotest.(check bool) "exceptions < cwa" true
    (Ordered.Poset.lt poset (id "exceptions") (id "cwa"));
  (* C- holds exactly the negative rules. *)
  Alcotest.(check int) "one exception rule" 1
    (List.length (Ordered.Program.rules_of p (id "exceptions")));
  (* C+ holds the seminegative rules plus one reflexive rule per
     predicate. *)
  Alcotest.(check int) "general: 2 rules + 3 reflexive" 5
    (List.length (Ordered.Program.rules_of p (id "general")))

(* ------------------------------------------------------------------ *)
(* Example 8                                                           *)
(* ------------------------------------------------------------------ *)

let e8_rules =
  rules
    "fly(X) :- bird(X). -fly(X) :- ground_animal(X). \
     bird(pigeon). bird(penguin). ground_animal(penguin)."

let test_example8_two_level_poor () =
  (* Under the two-level (OV) semantics, the negative rule merely defeats
     the positive one: nothing can be said about the flying capabilities
     of a ground bird. *)
  let g = Ordered.Bridge.ground_ov e8_rules in
  let m = Ordered.Vfix.least_model g in
  Alcotest.check testable_value "fly(penguin) undefined" Interp.Undefined
    (Interp.value_lit m (lit "fly(penguin)"))

let test_example8_three_level () =
  (* Example 9's commentary: with 3V, "every ground animal which is also a
     bird does not fly".  The exception is already a skeptical (least
     model) consequence; the default "pigeons fly" additionally needs the
     closed-world component, which the reflexive rules suspend until a
     stable model commits to it. *)
  let m = Neg.least_model e8_rules in
  Alcotest.check testable_value "fly(penguin) false already in the least model"
    Interp.False
    (Interp.value_lit m (lit "fly(penguin)"));
  let stables = Neg.stable_models e8_rules in
  Alcotest.(check bool) "some stable model" true (stables <> []);
  List.iter
    (fun s ->
      Alcotest.check testable_value "fly(penguin) false" Interp.False
        (Interp.value_lit s (lit "fly(penguin)"));
      Alcotest.check testable_value "fly(pigeon) true" Interp.True
        (Interp.value_lit s (lit "fly(pigeon)"));
      Alcotest.check testable_value "CWA: no unknown ground animals"
        Interp.False
        (Interp.value_lit s (lit "ground_animal(pigeon)")))
    stables

(* ------------------------------------------------------------------ *)
(* Example 9: colored                                                  *)
(* ------------------------------------------------------------------ *)

let colored_rules facts =
  rules
    ("colored(X) :- color(X), -colored(Y), X != Y. \
      -colored(X) :- ugly_color(X)." ^ facts)

let chosen m =
  List.filter_map
    (fun (l : Literal.t) ->
      if l.pol && String.equal l.atom.Atom.pred "colored" then
        Some (Atom.to_string l.atom)
      else None)
    (Interp.to_literals m)

let test_example9_choice () =
  (* With two non-ugly colors, each stable model selects exactly one. *)
  let stables = Neg.stable_models (colored_rules " color(red). color(green).") in
  Alcotest.(check int) "two stable models" 2 (List.length stables);
  List.iter
    (fun m -> Alcotest.(check int) "exactly one chosen" 1 (List.length (chosen m)))
    stables

let test_example9_ugly_rejected () =
  let stables =
    Neg.stable_models
      (colored_rules " color(red). color(brown). ugly_color(brown).")
  in
  List.iter
    (fun m ->
      Alcotest.check testable_value "brown never colored" Interp.False
        (Interp.value_lit m (lit "colored(brown)")))
    stables;
  Alcotest.(check bool) "some choice exists" true (stables <> [])

(* ------------------------------------------------------------------ *)
(* Definition 11: the direct semantics, and Theorem 2                  *)
(* ------------------------------------------------------------------ *)

let test_direct_model_exception_clause () =
  (* fly(tweety) :- bird(tweety) violates value(H) >= value(B) in a model
     where fly(tweety) is false, but the exception clause excuses it. *)
  let ground =
    Neg.ground_program
      (rules
         "fly(X) :- bird(X). -fly(X) :- heavy(X). bird(tweety). heavy(tweety).")
  in
  let m =
    interp [ "bird(tweety)"; "heavy(tweety)"; "-fly(tweety)" ]
  in
  Alcotest.(check bool) "model thanks to the exception" true
    (Neg.direct_is_model ground m);
  (* without the heavy fact in the interpretation the exception body is
     not true, so the same interpretation minus heavy is not a model *)
  let m2 = interp [ "bird(tweety)"; "-fly(tweety)" ] in
  Alcotest.(check bool) "no exception, no excuse" false
    (Neg.direct_is_model ground m2)

let test_direct_assumption_free () =
  let ground = Neg.ground_program (rules "a :- b. b :- a.") in
  Alcotest.(check bool) "{a, b} not assumption-free (positive loop)" false
    (Neg.direct_is_assumption_free ground (interp [ "a"; "b" ]));
  Alcotest.(check bool) "empty assumption-free" true
    (Neg.direct_is_assumption_free ground Interp.empty)

let test_theorem2_on_examples () =
  (* Definitions 10 and 11 agree on models and stable models for a batch
     of small negative programs. *)
  let srcs =
    [ "fly(X) :- bird(X). -fly(X) :- ground_animal(X). bird(t). ground_animal(t).";
      "a :- b. -a :- c. b. c.";
      "p. -p :- q. q.";
      "-p :- q. q :- p."
    ]
  in
  List.iter
    (fun src ->
      let c = rules src in
      let ground = Neg.ground_program c in
      let g3v = Neg.ground_3v c in
      let atoms =
        List.sort_uniq Atom.compare
          (List.concat_map
             (fun (r : Rule.t) ->
               (Rule.head r).Literal.atom
               :: List.map (fun (l : Literal.t) -> l.atom) (Rule.body r))
             ground)
      in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Format.asprintf "models agree on %s / %a" src Interp.pp m)
            (Ordered.Model.is_model g3v m)
            (Neg.direct_is_model ground m))
        (all_interps atoms);
      Alcotest.check testable_interp_set
        ("stable models agree on " ^ src)
        (Neg.stable_models c)
        (Neg.direct_stable_models ground))
    srcs

let suite =
  [ Alcotest.test_case "3V construction" `Quick test_three_level_construction;
    Alcotest.test_case "Example 8: two-level semantics is poor" `Quick
      test_example8_two_level_poor;
    Alcotest.test_case "Example 8/9: exceptions win under 3V" `Quick
      test_example8_three_level;
    Alcotest.test_case "Example 9: color choice" `Quick test_example9_choice;
    Alcotest.test_case "Example 9: ugly colors rejected" `Quick
      test_example9_ugly_rejected;
    Alcotest.test_case "Definition 11: exception clause" `Quick
      test_direct_model_exception_clause;
    Alcotest.test_case "Definition 11: assumption sets" `Quick
      test_direct_assumption_free;
    Alcotest.test_case "Theorem 2 on fixed programs" `Quick test_theorem2_on_examples
  ]
