(* The socket server end to end, in process: a daemon on an ephemeral
   TCP port, concurrent clients with per-request budgets (a tripped
   request gets a structured partial while the others complete), typed
   protocol errors on garbage, cache hits visible through [stats], and a
   clean drain. *)

module W = Server.Wire

let str_member k j =
  match W.member k j with Some (W.String s) -> Some s | _ -> None

let int_member k j =
  match W.member k j with Some (W.Int n) -> Some n | _ -> None

let status j = Option.value ~default:"?" (str_member "status" j)

(* Enough atoms that grounding alone outruns a 1-step budget. *)
let src =
  "component base { p(1). p(2). p(3). q(X) :- p(X), not r(X). \
   r(X) :- p(X), not q(X). }\n\
   component leaf extends base { -r(1). }"

let with_daemon f =
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 4;
        parallel = `Threads;
        queue = 64;
        caps = { Server.Engine.timeout = Some 10.; steps = None };
        persist = None;
        replicate_on = None;
        sync = None
      }
  in
  let server = Thread.create (fun () -> Server.Daemon.serve d) () in
  let finally () =
    Server.Daemon.stop d;
    Thread.join server
  in
  Fun.protect ~finally (fun () -> f (Server.Daemon.address d))

let connect_exn address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request_exn c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> Alcotest.failf "request %s: %s" line e

let load_src c =
  let j =
    request_exn c (W.to_string (W.Obj [ ("op", W.String "load");
                                        ("src", W.String src) ]))
  in
  Alcotest.(check string) "load ok" "ok" (status j)

let test_concurrent_budgets () =
  with_daemon @@ fun address ->
  let setup = connect_exn address in
  load_src setup;
  Server.Client.close setup;
  (* Five concurrent clients: four well-funded (two distinct cached
     keys), one with a 1-step budget on a key nobody else warms — it
     must come back as a structured partial while the rest complete. *)
  let results = Array.make 5 (Error "not run") in
  let client i work =
    Thread.create
      (fun () ->
        results.(i) <-
          (match Server.Client.connect ~retry:5. address with
          | Error _ as e -> e
          | Ok c ->
            let r =
              try Ok (List.map (request_exn c) work)
              with e -> Error (Printexc.to_string e)
            in
            Server.Client.close c;
            r))
      ()
  in
  let stable = {|{"op":"models","obj":"leaf","kind":"stable"}|} in
  let query = {|{"op":"query","obj":"leaf","lit":"q(1)"}|} in
  let tripped =
    {|{"op":"models","obj":"leaf","kind":"assumption-free","engine":"naive","max_steps":1,"id":99}|}
  in
  let threads =
    [ client 0 [ stable; query; stable ];
      client 1 [ query; stable ];
      client 2 [ stable; stable ];
      client 3 [ query; query ];
      client 4 [ tripped ]
    ]
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Error e -> Alcotest.failf "client %d failed: %s" i e
      | Ok responses ->
        List.iter
          (fun j ->
            let expected = if i = 4 then "partial" else "ok" in
            Alcotest.(check string)
              (Printf.sprintf "client %d status" i)
              expected (status j))
          responses)
    results;
  (match results.(4) with
  | Ok [ j ] ->
    Alcotest.(check (option string)) "trip reason" (Some "steps")
      (str_member "reason" j);
    Alcotest.(check (option int)) "id echoed" (Some 99) (int_member "id" j)
  | _ -> Alcotest.fail "tripped client: expected exactly one response");
  (* the repeated stable-models key hit the cache at least once *)
  let c = connect_exn address in
  let stats = request_exn c {|{"op":"stats"}|} in
  Server.Client.close c;
  let cache = Option.get (W.member "cache" stats) in
  let hits = Option.value ~default:0 (int_member "hits" cache) in
  Alcotest.(check bool)
    (Printf.sprintf "cache hits > 0 (got %d)" hits)
    true (hits > 0)

let test_protocol_errors_inline () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let expect_error line =
    let j = request_exn c line in
    Alcotest.(check string) ("error for " ^ line) "error" (status j);
    let kind =
      Option.bind (W.member "error" j) (fun e -> str_member "kind" e)
    in
    Alcotest.(check (option string)) ("proto kind for " ^ line)
      (Some "proto") kind
  in
  expect_error "this is not json";
  expect_error {|{"op": "models"|};
  expect_error {|{"op": "teleport"}|};
  (* the connection survives bad input: a real request still works *)
  let j = request_exn c {|{"op":"query","obj":"leaf","lit":"p(1)"}|} in
  Alcotest.(check string) "still serving" "ok" (status j);
  Alcotest.(check (option string)) "value" (Some "true") (str_member "value" j);
  (* unknown object is an input error, not a protocol error *)
  let j = request_exn c {|{"op":"query","obj":"ghost","lit":"p(1)"}|} in
  Alcotest.(check string) "unknown object" "error" (status j);
  Server.Client.close c

let test_mutation_resets_cache () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let models = {|{"op":"models","obj":"leaf","kind":"stable"}|} in
  ignore (request_exn c models);
  ignore (request_exn c models);
  let hits_of () =
    let stats = request_exn c {|{"op":"stats"}|} in
    let cache = Option.get (W.member "cache" stats) in
    ( Option.value ~default:(-1) (int_member "hits" cache),
      Option.value ~default:(-1) (int_member "misses" cache) )
  in
  let hits, misses = hits_of () in
  Alcotest.(check int) "one hit before mutation" 1 hits;
  let j =
    request_exn c {|{"op":"add_rule","obj":"leaf","rule":"-r(2)."}|}
  in
  Alcotest.(check string) "add_rule ok" "ok" (status j);
  ignore (request_exn c models);
  let hits', misses' = hits_of () in
  Alcotest.(check int) "mutation restores miss" (misses + 1) misses';
  Alcotest.(check int) "no new hit" hits hits';
  Server.Client.close c

let test_oversized_frame_multichunk () =
  with_daemon @@ fun address ->
  let port = match address with `Tcp (_, p) -> p | `Unix _ -> assert false in
  (* a raw socket, so the frame can be dribbled in many small writes:
     the reader's discard state machine must emit exactly one oversized
     error for the whole frame, then serve the next line normally *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let ic = Unix.in_channel_of_descr fd in
  let write_all s =
    let b = Bytes.of_string s in
    let sent = ref 0 in
    while !sent < Bytes.length b do
      sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
    done
  in
  (* 1.5 MiB against the 1 MiB limit, in 64 KiB chunks — the limit is
     crossed mid-stream, several reads after the frame began *)
  let chunk = String.make 65536 'a' in
  for _ = 1 to 24 do
    write_all chunk
  done;
  write_all "\n";
  write_all "{\"op\":\"version\"}\n";
  let first =
    match W.parse (input_line ic) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparsable response: %s" (W.error_to_string e)
  in
  Alcotest.(check string) "oversized frame is an error" "error" (status first);
  Alcotest.(check (option string)) "and a proto error" (Some "proto")
    (Option.bind (W.member "error" first) (str_member "kind"));
  let second =
    match W.parse (input_line ic) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparsable response: %s" (W.error_to_string e)
  in
  (* exactly one error for the oversized frame: the next response line
     answers the next request *)
  Alcotest.(check string) "connection still serves" "ok" (status second);
  Alcotest.(check bool) "version reported" true
    (str_member "version" second <> None);
  Unix.close fd

let test_batch_verb () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let item fields = W.Obj fields in
  match
    Server.Client.request_batch ~id:7 c
      [ item
          [ ("op", W.String "query"); ("obj", W.String "leaf");
            ("lit", W.String "p(1)"); ("id", W.Int 1)
          ];
        item [ ("op", W.String "models"); ("obj", W.String "leaf") ];
        item [ ("op", W.String "query"); ("obj", W.Int 3) ];
        item
          [ ("op", W.String "add_rule"); ("obj", W.String "leaf");
            ("rule", W.String "-r(3).")
          ];
        item [ ("op", W.String "shutdown") ]
      ]
  with
  | Error e -> Alcotest.failf "batch: %s" e
  | Ok responses ->
    Alcotest.(check int) "five responses" 5 (List.length responses);
    (match responses with
    | [ q; ms; bad; wr; sh ] ->
      Alcotest.(check string) "query ok" "ok" (status q);
      Alcotest.(check (option int)) "item id echoed" (Some 1)
        (int_member "id" q);
      Alcotest.(check (option string)) "query value" (Some "true")
        (str_member "value" q);
      Alcotest.(check string) "models ok" "ok" (status ms);
      (* the malformed item fails alone, typed, without poisoning the
         frame *)
      Alcotest.(check string) "bad item errors" "error" (status bad);
      Alcotest.(check (option string)) "bad item is proto" (Some "proto")
        (Option.bind (W.member "error" bad) (str_member "kind"));
      (* shutdown cannot ride in a batch: the server must stay up *)
      Alcotest.(check string) "shutdown rejected" "error" (status sh);
      Alcotest.(check string) "write ok" "ok" (status wr)
    | _ -> Alcotest.fail "unreachable");
    (* the batched write really applied, and the server survived the
       batched shutdown attempt *)
    let j = request_exn c {|{"op":"query","obj":"leaf","lit":"r(3)"}|} in
    Alcotest.(check (option string)) "batched write visible" (Some "false")
      (str_member "value" j);
    Server.Client.close c

(* 64 concurrent clients, each collapsing 16 reads into one batch
   frame, against a single sequential unbatched client as the baseline:
   aggregate throughput must beat the baseline — on any host, because
   batching amortises 16 round-trips into one. *)
let test_many_clients_smoke () =
  with_daemon @@ fun address ->
  let setup = connect_exn address in
  load_src setup;
  (* warm the snapshot cache so every timed request is a pure read *)
  ignore (request_exn setup {|{"op":"query","obj":"leaf","lit":"q(1)"}|});
  let clients = 64 and per_client = 64 in
  let query_item =
    W.Obj
      [ ("op", W.String "query"); ("obj", W.String "leaf");
        ("lit", W.String "q(1)")
      ]
  in
  (* baseline: one client, one request per round-trip *)
  let baseline_n = 128 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to baseline_n do
    let j = request_exn setup {|{"op":"query","obj":"leaf","lit":"q(1)"}|} in
    Alcotest.(check string) "baseline ok" "ok" (status j)
  done;
  let baseline_qps =
    float_of_int baseline_n /. (Unix.gettimeofday () -. t0 +. 1e-9)
  in
  Server.Client.close setup;
  (* every client connects before the clock starts (the baseline's
     connection setup is untimed too); a barrier releases them at once *)
  let errors = Array.make clients None in
  let gate = Mutex.create () in
  let turn = Condition.create () in
  let ready = ref 0 and go = ref false in
  let spawn i =
    Thread.create
      (fun () ->
        let conn = Server.Client.connect ~retry:10. address in
        Mutex.lock gate;
        incr ready;
        Condition.broadcast turn;
        while not !go do
          Condition.wait turn gate
        done;
        Mutex.unlock gate;
        match conn with
        | Error e -> errors.(i) <- Some ("connect: " ^ e)
        | Ok c ->
          (match
             Server.Client.request_batch c
               (List.init per_client (fun _ -> query_item))
           with
          | Error e -> errors.(i) <- Some e
          | Ok responses ->
            if List.length responses <> per_client then
              errors.(i) <- Some "short batch reply"
            else
              List.iter
                (fun j ->
                  if status j <> "ok" then
                    errors.(i) <- Some ("item status " ^ status j))
                responses);
          Server.Client.close c)
      ()
  in
  let threads = List.init clients spawn in
  Mutex.lock gate;
  while !ready < clients do
    Condition.wait turn gate
  done;
  let t1 = Unix.gettimeofday () in
  go := true;
  Condition.broadcast turn;
  Mutex.unlock gate;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t1 +. 1e-9 in
  Array.iteri
    (fun i e ->
      match e with
      | Some msg -> Alcotest.failf "client %d: %s" i msg
      | None -> ())
    errors;
  let aggregate_qps = float_of_int (clients * per_client) /. elapsed in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.0f qps beats single-client %.0f qps"
       aggregate_qps baseline_qps)
    true
    (aggregate_qps > baseline_qps)

let test_shutdown_drains () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let j = request_exn c {|{"op":"shutdown"}|} in
  Alcotest.(check string) "shutdown ok" "ok" (status j);
  (* the daemon drains on its own; with_daemon's stop is then a no-op *)
  Server.Client.close c

let suite =
  [ Alcotest.test_case "concurrent clients with budgets" `Quick
      test_concurrent_budgets;
    Alcotest.test_case "typed protocol errors inline" `Quick
      test_protocol_errors_inline;
    Alcotest.test_case "mutation resets the cache" `Quick
      test_mutation_resets_cache;
    Alcotest.test_case "oversized frame across read chunks" `Quick
      test_oversized_frame_multichunk;
    Alcotest.test_case "batch verb end to end" `Quick test_batch_verb;
    Alcotest.test_case "64-client batched smoke" `Quick
      test_many_clients_smoke;
    Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains
  ]
