(* The socket server end to end, in process: a daemon on an ephemeral
   TCP port, concurrent clients with per-request budgets (a tripped
   request gets a structured partial while the others complete), typed
   protocol errors on garbage, cache hits visible through [stats], and a
   clean drain. *)

module W = Server.Wire

let str_member k j =
  match W.member k j with Some (W.String s) -> Some s | _ -> None

let int_member k j =
  match W.member k j with Some (W.Int n) -> Some n | _ -> None

let status j = Option.value ~default:"?" (str_member "status" j)

(* Enough atoms that grounding alone outruns a 1-step budget. *)
let src =
  "component base { p(1). p(2). p(3). q(X) :- p(X), not r(X). \
   r(X) :- p(X), not q(X). }\n\
   component leaf extends base { -r(1). }"

let with_daemon f =
  let d =
    Server.Daemon.create
      { Server.Daemon.address = `Tcp ("127.0.0.1", 0);
        workers = 4;
        queue = 64;
        caps = { Server.Engine.timeout = Some 10.; steps = None };
        persist = None;
        replicate_on = None;
        sync = None
      }
  in
  let server = Thread.create (fun () -> Server.Daemon.serve d) () in
  let finally () =
    Server.Daemon.stop d;
    Thread.join server
  in
  Fun.protect ~finally (fun () -> f (Server.Daemon.address d))

let connect_exn address =
  match Server.Client.connect ~retry:5. address with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request_exn c line =
  match Server.Client.request_line c line with
  | Ok j -> j
  | Error e -> Alcotest.failf "request %s: %s" line e

let load_src c =
  let j =
    request_exn c (W.to_string (W.Obj [ ("op", W.String "load");
                                        ("src", W.String src) ]))
  in
  Alcotest.(check string) "load ok" "ok" (status j)

let test_concurrent_budgets () =
  with_daemon @@ fun address ->
  let setup = connect_exn address in
  load_src setup;
  Server.Client.close setup;
  (* Five concurrent clients: four well-funded (two distinct cached
     keys), one with a 1-step budget on a key nobody else warms — it
     must come back as a structured partial while the rest complete. *)
  let results = Array.make 5 (Error "not run") in
  let client i work =
    Thread.create
      (fun () ->
        results.(i) <-
          (match Server.Client.connect ~retry:5. address with
          | Error _ as e -> e
          | Ok c ->
            let r =
              try Ok (List.map (request_exn c) work)
              with e -> Error (Printexc.to_string e)
            in
            Server.Client.close c;
            r))
      ()
  in
  let stable = {|{"op":"models","obj":"leaf","kind":"stable"}|} in
  let query = {|{"op":"query","obj":"leaf","lit":"q(1)"}|} in
  let tripped =
    {|{"op":"models","obj":"leaf","kind":"assumption-free","engine":"naive","max_steps":1,"id":99}|}
  in
  let threads =
    [ client 0 [ stable; query; stable ];
      client 1 [ query; stable ];
      client 2 [ stable; stable ];
      client 3 [ query; query ];
      client 4 [ tripped ]
    ]
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Error e -> Alcotest.failf "client %d failed: %s" i e
      | Ok responses ->
        List.iter
          (fun j ->
            let expected = if i = 4 then "partial" else "ok" in
            Alcotest.(check string)
              (Printf.sprintf "client %d status" i)
              expected (status j))
          responses)
    results;
  (match results.(4) with
  | Ok [ j ] ->
    Alcotest.(check (option string)) "trip reason" (Some "steps")
      (str_member "reason" j);
    Alcotest.(check (option int)) "id echoed" (Some 99) (int_member "id" j)
  | _ -> Alcotest.fail "tripped client: expected exactly one response");
  (* the repeated stable-models key hit the cache at least once *)
  let c = connect_exn address in
  let stats = request_exn c {|{"op":"stats"}|} in
  Server.Client.close c;
  let cache = Option.get (W.member "cache" stats) in
  let hits = Option.value ~default:0 (int_member "hits" cache) in
  Alcotest.(check bool)
    (Printf.sprintf "cache hits > 0 (got %d)" hits)
    true (hits > 0)

let test_protocol_errors_inline () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let expect_error line =
    let j = request_exn c line in
    Alcotest.(check string) ("error for " ^ line) "error" (status j);
    let kind =
      Option.bind (W.member "error" j) (fun e -> str_member "kind" e)
    in
    Alcotest.(check (option string)) ("proto kind for " ^ line)
      (Some "proto") kind
  in
  expect_error "this is not json";
  expect_error {|{"op": "models"|};
  expect_error {|{"op": "teleport"}|};
  (* the connection survives bad input: a real request still works *)
  let j = request_exn c {|{"op":"query","obj":"leaf","lit":"p(1)"}|} in
  Alcotest.(check string) "still serving" "ok" (status j);
  Alcotest.(check (option string)) "value" (Some "true") (str_member "value" j);
  (* unknown object is an input error, not a protocol error *)
  let j = request_exn c {|{"op":"query","obj":"ghost","lit":"p(1)"}|} in
  Alcotest.(check string) "unknown object" "error" (status j);
  Server.Client.close c

let test_mutation_resets_cache () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let models = {|{"op":"models","obj":"leaf","kind":"stable"}|} in
  ignore (request_exn c models);
  ignore (request_exn c models);
  let hits_of () =
    let stats = request_exn c {|{"op":"stats"}|} in
    let cache = Option.get (W.member "cache" stats) in
    ( Option.value ~default:(-1) (int_member "hits" cache),
      Option.value ~default:(-1) (int_member "misses" cache) )
  in
  let hits, misses = hits_of () in
  Alcotest.(check int) "one hit before mutation" 1 hits;
  let j =
    request_exn c {|{"op":"add_rule","obj":"leaf","rule":"-r(2)."}|}
  in
  Alcotest.(check string) "add_rule ok" "ok" (status j);
  ignore (request_exn c models);
  let hits', misses' = hits_of () in
  Alcotest.(check int) "mutation restores miss" (misses + 1) misses';
  Alcotest.(check int) "no new hit" hits hits';
  Server.Client.close c

let test_oversized_frame_multichunk () =
  with_daemon @@ fun address ->
  let port = match address with `Tcp (_, p) -> p | `Unix _ -> assert false in
  (* a raw socket, so the frame can be dribbled in many small writes:
     the reader's discard state machine must emit exactly one oversized
     error for the whole frame, then serve the next line normally *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let ic = Unix.in_channel_of_descr fd in
  let write_all s =
    let b = Bytes.of_string s in
    let sent = ref 0 in
    while !sent < Bytes.length b do
      sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
    done
  in
  (* 1.5 MiB against the 1 MiB limit, in 64 KiB chunks — the limit is
     crossed mid-stream, several reads after the frame began *)
  let chunk = String.make 65536 'a' in
  for _ = 1 to 24 do
    write_all chunk
  done;
  write_all "\n";
  write_all "{\"op\":\"version\"}\n";
  let first =
    match W.parse (input_line ic) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparsable response: %s" (W.error_to_string e)
  in
  Alcotest.(check string) "oversized frame is an error" "error" (status first);
  Alcotest.(check (option string)) "and a proto error" (Some "proto")
    (Option.bind (W.member "error" first) (str_member "kind"));
  let second =
    match W.parse (input_line ic) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparsable response: %s" (W.error_to_string e)
  in
  (* exactly one error for the oversized frame: the next response line
     answers the next request *)
  Alcotest.(check string) "connection still serves" "ok" (status second);
  Alcotest.(check bool) "version reported" true
    (str_member "version" second <> None);
  Unix.close fd

let test_shutdown_drains () =
  with_daemon @@ fun address ->
  let c = connect_exn address in
  load_src c;
  let j = request_exn c {|{"op":"shutdown"}|} in
  Alcotest.(check string) "shutdown ok" "ok" (status j);
  (* the daemon drains on its own; with_daemon's stop is then a no-op *)
  Server.Client.close c

let suite =
  [ Alcotest.test_case "concurrent clients with budgets" `Quick
      test_concurrent_budgets;
    Alcotest.test_case "typed protocol errors inline" `Quick
      test_protocol_errors_inline;
    Alcotest.test_case "mutation resets the cache" `Quick
      test_mutation_resets_cache;
    Alcotest.test_case "oversized frame across read chunks" `Quick
      test_oversized_frame_multichunk;
    Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains
  ]
