(* Stable models of ordered programs (Definition 9, Example 5). *)

open Logic
open Helpers

let p5_src =
  {| component c2 { a. b. c. }
     component c1 extends c2 {
       -a :- b, c.
       -b :- a.
       -b :- -b.
     } |}

let test_example5_stable_models () =
  let p = program p5_src in
  let g = ground_at p "c1" in
  Alcotest.check testable_interp_set
    "{a, -b, c} and {-a, b, c} are the stable models"
    [ interp [ "a"; "-b"; "c" ]; interp [ "-a"; "b"; "c" ] ]
    (Ordered.Budget.value (Ordered.Stable.stable_models g))

let test_example5_assumption_free_non_stable () =
  let p = program p5_src in
  let g = ground_at p "c1" in
  let c_only = interp [ "c" ] in
  Alcotest.(check bool) "{c} assumption-free" true
    (Ordered.Model.is_assumption_free g c_only);
  Alcotest.(check bool) "{c} not stable" false (Ordered.Stable.is_stable g c_only);
  Alcotest.(check bool) "{a, -b, c} stable" true
    (Ordered.Stable.is_stable g (interp [ "a"; "-b"; "c" ]));
  (* {c} is the least model *)
  Alcotest.check testable_interp "{c} is the least model" c_only
    (Ordered.Vfix.least_model g)

let test_least_model_in_every_assumption_free () =
  (* Theorem 1(b): the least fixpoint is contained in every model, in
     particular in every assumption-free model. *)
  List.iter
    (fun src ->
      let p = program src in
      let g = ground_at p (Ordered.Program.component_name p 0) in
      let least = Ordered.Vfix.least_model g in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Format.asprintf "%a <= %a" Interp.pp least Interp.pp m)
            true (Interp.subset least m))
        (Ordered.Budget.value (Ordered.Stable.assumption_free_models g)))
    [ p5_src;
      "component main { a :- b. -a :- b. }";
      "component x { p. -q :- p. } component y extends x { q. }"
    ]

let test_stable_limit () =
  let p = program p5_src in
  let g = ground_at p "c1" in
  Alcotest.(check bool) "limit caps enumeration" true
    (List.length (Ordered.Budget.value (Ordered.Stable.assumption_free_models ~limit:1 g)) = 1)

let test_stable_of_contradictory_facts () =
  (* Two contradictory facts in one component defeat each other: no stable
     model decides p. *)
  let p = program "component main { p. -p. q. }" in
  let g = ground_at p "main" in
  Alcotest.check testable_interp_set "only q is stable"
    [ interp [ "q" ] ]
    (Ordered.Budget.value (Ordered.Stable.stable_models g));
  (* In split components the lower one wins. *)
  let p2 = program "component hi { p. q. } component lo extends hi { -p. }" in
  let g2 = ground_at p2 "lo" in
  Alcotest.check testable_interp_set "overruling decides"
    [ interp [ "-p"; "q" ] ]
    (Ordered.Budget.value (Ordered.Stable.stable_models g2))

let test_stable_models_are_assumption_free_models () =
  let p = program p5_src in
  let g = ground_at p "c1" in
  List.iter
    (fun m ->
      Alcotest.(check bool) "stable => assumption-free" true
        (Ordered.Model.is_assumption_free g m);
      Alcotest.(check bool) "stable => model" true (Ordered.Model.is_model g m))
    (Ordered.Budget.value (Ordered.Stable.stable_models g))

let test_cautious_brave () =
  let p = program p5_src in
  let g = ground_at p "c1" in
  Alcotest.(check bool) "c cautious" true (Ordered.Stable.cautious g (lit "c"));
  Alcotest.(check bool) "a not cautious" false
    (Ordered.Stable.cautious g (lit "a"));
  Alcotest.(check bool) "a brave" true (Ordered.Stable.brave g (lit "a"));
  Alcotest.(check bool) "-a brave" true (Ordered.Stable.brave g (lit "-a"));
  Alcotest.(check bool) "-c not brave" false (Ordered.Stable.brave g (lit "-c"));
  let cc = Ordered.Stable.cautious_consequences g in
  Alcotest.check testable_interp "cautious consequences" (interp [ "c" ]) cc;
  Alcotest.(check bool) "least model below cautious consequences" true
    (Interp.subset (Ordered.Vfix.least_model g) cc)

let suite =
  [ Alcotest.test_case "Example 5: two stable models" `Quick
      test_example5_stable_models;
    Alcotest.test_case "Example 5: {c} assumption-free, not stable" `Quick
      test_example5_assumption_free_non_stable;
    Alcotest.test_case "Theorem 1(b): least model below all" `Quick
      test_least_model_in_every_assumption_free;
    Alcotest.test_case "enumeration limit" `Quick test_stable_limit;
    Alcotest.test_case "contradictory facts" `Quick test_stable_of_contradictory_facts;
    Alcotest.test_case "stable models are assumption-free models" `Quick
      test_stable_models_are_assumption_free_models;
    Alcotest.test_case "cautious and brave entailment" `Quick
      test_cautious_brave
  ]
