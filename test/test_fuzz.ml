(* Parser robustness fuzz: random byte strings and mutations of valid
   programs must always come back as [Ok _] or [Error _] from
   [Ordered.Program.parse] — no exception may escape.

   The generator is a self-contained LCG so runs are reproducible and do
   not consume the qcheck seed.  FUZZ_ITERS scales the string count (the
   default keeps `dune runtest` fast; `make fuzz` raises it). *)

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

(* Numerical Recipes LCG *)
let state = ref 0x2545F4914F6CDD1D

let rand bound =
  state := (!state * 1664525) + 1013904223;
  (!state lsr 9) mod bound

let corpus =
  [ "component main { p. q :- p. }";
    "component c2 { bird(penguin). fly(X) :- bird(X). }\n\
     component c1 extends c2 { -fly(X) :- penguin(X). }";
    "component a { p :- -q. q :- -p. } component b extends a { r. }";
    "p(X, Y) :- e(X, Y), X > Y + 1. e(1, 2).";
    "order a < b. component a { p. } component b { q. }";
    "t(X) :- n(X), X mod 2 = 0. n(1). n(2).";
    "b : bird(tweety). f : fly(X) :- bird(X). nf : -fly(X) :- penguin(X). \
     prefer nf > f.";
    "component a { r1 : p. r2 : -p. } prefer r1 > r2, r2 > r1.";
    "prefer a > b, c > d. prefer e > f."
  ]

(* interesting bytes: structural tokens, comment starters, high bytes *)
let spice = "{}()<>.,:-~+*/=!_ \n\t\"%|&0aZX@\x00\x7f\xc3\xa9"

let random_string () =
  let len = rand 80 in
  String.init len (fun _ -> spice.[rand (String.length spice)])

let mutate src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  if n = 0 then random_string ()
  else begin
    (match rand 4 with
    | 0 ->
      (* flip a byte *)
      Bytes.set b (rand n) spice.[rand (String.length spice)]
    | 1 ->
      (* truncate *)
      ()
    | 2 ->
      (* duplicate a chunk *)
      ()
    | _ ->
      (* swap two bytes *)
      let i = rand n and j = rand n in
      let ci = Bytes.get b i in
      Bytes.set b i (Bytes.get b j);
      Bytes.set b j ci);
    match rand 4 with
    | 1 -> Bytes.sub_string b 0 (rand n)
    | 2 ->
      let i = rand n and l = rand (n - 1) + 1 in
      let l = min l (n - i) in
      Bytes.to_string b ^ Bytes.sub_string b i l
    | _ -> Bytes.to_string b
  end

let inputs () =
  List.init iters (fun i ->
      if i mod 3 = 0 then random_string ()
      else mutate (List.nth corpus (rand (List.length corpus))))

let test_parse_total () =
  let ok = ref 0 and err = ref 0 in
  List.iter
    (fun s ->
      match Ordered.Program.parse s with
      | Ok _ -> incr ok
      | Error msg ->
        incr err;
        if String.length msg = 0 then
          Alcotest.failf "empty error message for %S" s
      | exception e ->
        Alcotest.failf "parse raised %s on %S" (Printexc.to_string e) s)
    (inputs ());
  (* the corpus mutations must keep both outcomes reachable *)
  Alcotest.(check bool)
    (Printf.sprintf "both outcomes seen (ok=%d err=%d of %d)" !ok !err iters)
    true
    (!ok > 0 && !err > 0)

let test_parse_valid_corpus () =
  List.iter
    (fun s ->
      match Ordered.Program.parse s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "corpus program rejected: %s" msg)
    corpus

let suite =
  [ Alcotest.test_case "corpus parses" `Quick test_parse_valid_corpus;
    Alcotest.test_case "parse never raises" `Quick test_parse_total
  ]
