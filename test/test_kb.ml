(* Knowledge-base layer: objects, inheritance, defaults/exceptions,
   versioning, cache invalidation. *)

open Logic
open Helpers

let check_q kb obj q expected =
  Alcotest.check testable_value q expected (Kb.query kb ~obj (lit q))

let basic_kb () =
  let kb = Kb.create () in
  Kb.define_src kb "animal"
    "moves(X) :- animal(X). -flies(X) :- animal(X).";
  Kb.define_src kb ~isa:[ "animal" ] "bird"
    "flies(X) :- bird(X), animal(X). animal(tweety). bird(tweety).";
  kb

let test_define_and_query () =
  let kb = basic_kb () in
  check_q kb "bird" "moves(tweety)" Interp.True;
  check_q kb "bird" "flies(tweety)" Interp.True;
  (* from the animal object's own viewpoint the bird rules are invisible *)
  check_q kb "animal" "flies(tweety)" Interp.Undefined;
  check_q kb "animal" "moves(tweety)" Interp.Undefined

let test_object_admin () =
  let kb = basic_kb () in
  Alcotest.(check (list string)) "objects" [ "animal"; "bird" ] (Kb.objects kb);
  Alcotest.(check (list string)) "parents" [ "animal" ] (Kb.parents kb "bird");
  Alcotest.(check int) "rules" 2 (List.length (Kb.rules kb "animal"));
  (match Kb.define kb "animal" [] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate object");
  match Kb.define kb ~isa:[ "nope" ] "x" [] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown parent"

let test_mutation_invalidates_cache () =
  let kb = basic_kb () in
  check_q kb "bird" "moves(tweety)" Interp.True;
  Kb.add_rule_src kb ~obj:"bird" "-moves(X) :- sleeping(X).";
  Kb.add_fact kb ~obj:"bird" (lit "sleeping(tweety)");
  check_q kb "bird" "moves(tweety)" Interp.False;
  Alcotest.(check bool) "remove rule" true
    (Kb.remove_rule kb ~obj:"bird" (rule "-moves(X) :- sleeping(X)."));
  Alcotest.(check bool) "remove again fails" false
    (Kb.remove_rule kb ~obj:"bird" (rule "-moves(X) :- sleeping(X)."));
  check_q kb "bird" "moves(tweety)" Interp.True

let test_load () =
  let kb = Kb.create () in
  Kb.load kb
    {| component base { p. }
       component derived extends base { q :- p. } |};
  check_q kb "derived" "q" Interp.True;
  Alcotest.(check (list string)) "parents wired" [ "base" ]
    (Kb.parents kb "derived")

let test_versioning () =
  let kb = Kb.create () in
  Kb.define_src kb "tax" "rate(10). deductible(X) :- donation(X). donation(church).";
  let v2 = Kb.new_version kb ~rules:(rules "-rate(10). rate(12).") "tax" in
  Alcotest.(check string) "name" "tax@2" v2;
  Alcotest.(check string) "latest" v2 (Kb.latest_version kb "tax");
  check_q kb "tax" "rate(10)" Interp.True;
  check_q kb v2 "rate(10)" Interp.False;
  check_q kb v2 "rate(12)" Interp.True;
  (* inherited rules still apply *)
  check_q kb v2 "deductible(church)" Interp.True;
  let v3 = Kb.new_version kb "tax" in
  Alcotest.(check string) "chained below v2" "tax@3" v3;
  Alcotest.(check (list string)) "all versions" [ "tax"; "tax@2"; "tax@3" ]
    (Kb.versions kb "tax");
  check_q kb v3 "rate(12)" Interp.True

let test_stable_and_explain () =
  let kb = Kb.create () in
  Kb.define_src kb "o" "a. -a.";
  Alcotest.(check int) "one stable model" 1
    (List.length (Ordered.Budget.value (Kb.stable_models kb ~obj:"o")));
  match Kb.explain kb ~obj:"o" (lit "a") with
  | Ordered.Explain.Unsupported { candidates; _ } ->
    Alcotest.(check int) "one candidate rule" 1 (List.length candidates)
  | _ -> Alcotest.fail "expected Unsupported"

let test_query_requires_ground () =
  let kb = basic_kb () in
  match Kb.query kb ~obj:"bird" (lit "flies(X)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-ground query should be rejected"

let test_diamond_inheritance () =
  let kb = Kb.create () in
  Kb.define_src kb "top" "p.";
  Kb.define_src kb ~isa:[ "top" ] "left" "-p.";
  Kb.define_src kb ~isa:[ "top" ] "right" "q :- p.";
  Kb.define_src kb ~isa:[ "left"; "right" ] "bottom" "";
  (* left's -p overrules top's p from bottom's viewpoint *)
  check_q kb "bottom" "p" Interp.False;
  (* right alone still sees p *)
  check_q kb "right" "p" Interp.True;
  check_q kb "right" "q" Interp.True;
  (* and bottom inherits right's rule, now blocked *)
  check_q kb "bottom" "q" Interp.Undefined

let test_to_source_roundtrip () =
  let kb = Kb.create () in
  Kb.define_src kb "base" "p(a). q(X) :- p(X).";
  Kb.define_src kb ~isa:[ "base" ] "derived" "-q(a).";
  let v = Kb.new_version kb ~rules:(rules "q(a).") "derived" in
  let src = Kb.to_source kb in
  let kb2 = Kb.create () in
  Kb.load kb2 src;
  Alcotest.(check (list string)) "objects survive"
    (Kb.objects kb) (Kb.objects kb2);
  List.iter
    (fun o ->
      Alcotest.(check (list string)) ("parents of " ^ o) (Kb.parents kb o)
        (Kb.parents kb2 o))
    (Kb.objects kb);
  (* semantics survives too, version names (with @) included *)
  check_q kb2 v "q(a)" (Kb.query kb ~obj:v (lit "q(a)"))

let suite =
  [ Alcotest.test_case "define and query" `Quick test_define_and_query;
    Alcotest.test_case "object administration" `Quick test_object_admin;
    Alcotest.test_case "mutation invalidates cache" `Quick
      test_mutation_invalidates_cache;
    Alcotest.test_case "load source" `Quick test_load;
    Alcotest.test_case "versioning" `Quick test_versioning;
    Alcotest.test_case "stable models and explanations" `Quick
      test_stable_and_explain;
    Alcotest.test_case "ground queries only" `Quick test_query_requires_ground;
    Alcotest.test_case "diamond inheritance" `Quick test_diamond_inheritance;
    Alcotest.test_case "to_source round-trip" `Quick test_to_source_roundtrip
  ]

let test_errors () =
  let kb = Kb.create () in
  (match Kb.add_rule kb ~obj:"ghost" (rule "p.") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown object must fail");
  Kb.define kb "a" [];
  (match Kb.load kb "component a { p. }" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate load must fail");
  match Kb.new_version kb "ghost" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "versioning unknown object must fail"

let suite =
  suite @ [ Alcotest.test_case "error handling" `Quick test_errors ]
