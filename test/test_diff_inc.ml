(* Differential testing of incremental maintenance (lib/inc and the
   session's delta eviction) against from-scratch recomputation:

   - an incremental session fed a random mutation sequence answers
     every query (least model, stable and assumption-free models, over
     every object) identically to a plain uncached store replaying the
     same sequence — reads interleave with writes so repairs actually
     run against populated caches, and the rule pool mixes
     propositional rules, ground facts over constants (exercising the
     [`Universe_changed] fallback) and rules with variables
     (exercising instantiation in [Reground]);
   - the direct [Inc] API: when [Reground.reground] accepts a
     single-rule insertion, the repaired grounding is indistinguishable
     from scratch grounding (same sizes, same least model, same stable
     models) and [Repair.least_model] seeded with the old fixpoint
     lands exactly on the scratch fixpoint; regrounding {e back} to the
     original program exercises the deletion path the same way.

   Iteration counts scale with FUZZ_ITERS like the other fuzz suites
   (wired as diff-inc in the Makefile). *)

open Logic
open Helpers
module Gen = QCheck2.Gen
module KS = Kb.Session
module B = Ordered.Budget

let iters base =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > base -> n
    | _ -> base)
  | None -> base

(* Mutation rules: the propositional alphabet the program generator
   uses (so added rules interact with generated ones), plus ground and
   variable rules over constants (universe changes, real
   instantiation), plus named rules (dedup keys include the name). *)
let rule_pool =
  [| "p.";
     "q :- p.";
     "-r :- q.";
     "s :- p, -r.";
     "r :- -q.";
     "-p :- r, s.";
     "w(k1).";
     "v(X) :- w(X).";
     "w(k2).";
     "u :- v(k1).";
     "nm : q :- -s.";
     "nm : -q :- s."
  |]

let pool_rule i = rule rule_pool.(i mod Array.length rule_pool)

(* One encoded mutation: kind + two free integers, resolved against the
   current object list at apply time so sequences stay well-formed. *)
let apply_mut s kb fresh (k, a, b) =
  let objs = KS.objects s in
  let obj i = List.nth objs (i mod List.length objs) in
  match k mod 5 with
  | 0 ->
    let r = pool_rule b in
    KS.add_rule s ~obj:(obj a) r;
    Kb.add_rule kb ~obj:(obj a) r
  | 1 -> (
    let o = obj a in
    match KS.rules s o with
    | [] -> ()
    | rs ->
      let r = List.nth rs (b mod List.length rs) in
      let x = KS.remove_rule s ~obj:o r in
      let y = Kb.remove_rule kb ~obj:o r in
      assert (x = y))
  | 2 ->
    incr fresh;
    let name = Printf.sprintf "m%d" !fresh in
    let r = pool_rule b in
    KS.define s ~isa:[ obj a ] name [ r ];
    Kb.define kb ~isa:[ obj a ] name [ r ]
  | 3 ->
    let x = KS.new_version s (obj a) in
    let y = Kb.new_version kb (obj a) in
    assert (String.equal x y)
  | _ ->
    (* a fact about a constant: flips the viewpoint's Herbrand universe
       between ground and propositional — the repair must refuse and
       recompute, and still agree with scratch *)
    let f = lit (if b mod 2 = 0 then "w(k9)" else "-v(k9)") in
    KS.add_fact s ~obj:(obj a) f;
    Kb.add_fact kb ~obj:(obj a) f

let agree s kb =
  List.for_all
    (fun o ->
      Interp.equal (KS.least_model s ~obj:o) (Kb.least_model kb ~obj:o)
      && interp_set_equal
           (B.value (KS.stable_models s ~obj:o))
           (B.value (Kb.stable_models kb ~obj:o))
      && interp_set_equal
           (B.value (KS.assumption_free_models s ~obj:o))
           (B.value (Kb.assumption_free_models kb ~obj:o)))
    (KS.objects s)

let gen_muts =
  Gen.list_size (Gen.int_range 1 8)
    (Gen.triple (Gen.int_bound 4) (Gen.int_bound 96) (Gen.int_bound 96))

let prop_session_equals_scratch =
  qcheck
    ~count:(iters 60)
    ~print:(fun (p, muts) ->
      print_program p ^ "\n"
      ^ String.concat ";"
          (List.map (fun (k, a, b) -> Printf.sprintf "(%d,%d,%d)" k a b) muts))
    "incremental session = from-scratch store on mutation sequences"
    Gen.(pair (Test_props.gen_ordered 4) gen_muts)
    (fun (p, muts) ->
      let src = print_program p in
      let s = KS.create () in
      KS.load s src;
      let kb = Kb.create () in
      Kb.load kb src;
      let fresh = ref 0 in
      agree s kb
      && List.for_all
           (fun m ->
             apply_mut s kb fresh m;
             agree s kb)
           muts
      && List.equal String.equal (KS.objects s) (Kb.objects kb))

(* ------------------------------------------------------------------ *)
(* The Inc API directly: repaired grounding ≡ scratch grounding        *)
(* ------------------------------------------------------------------ *)

let gop_agrees g1 g2 =
  Ordered.Gop.n_atoms g1 = Ordered.Gop.n_atoms g2
  && Ordered.Gop.n_rules g1 = Ordered.Gop.n_rules g2
  && Interp.equal (Ordered.Vfix.least_model g1) (Ordered.Vfix.least_model g2)
  && interp_set_equal
       (B.value (Ordered.Stable.stable_models g1))
       (B.value (Ordered.Stable.stable_models g2))

let repair_lands_on ~previous g d =
  let scratch = Ordered.Vfix.least_model g in
  match Inc.Repair.least_model ~previous g d with
  | Inc.Repair.Unchanged -> Interp.equal previous scratch
  | Inc.Repair.Repaired m | Inc.Repair.Recomputed m -> Interp.equal m scratch

let prop_reground_exact =
  qcheck
    ~count:(iters 80)
    ~print:(fun (p, i) -> print_program p ^ Printf.sprintf " +pool(%d)" i)
    "reground insertion/deletion = scratch grounding, repair = scratch lfp"
    Gen.(pair (Test_props.gen_ordered 4) (Gen.int_bound 96))
    (fun (p, i) ->
      let c = Ordered.Program.component_id_exn p "c0" in
      let state1 = Inc.Reground.ground p c in
      let p2 = Ordered.Program.add_rules p c [ pool_rule i ] in
      let scratch2 = Inc.Reground.ground p2 c in
      match Inc.Reground.reground state1 ~program:p2 with
      | Error _ -> true (* refusal is always sound: the caller recomputes *)
      | Ok (state2, delta) ->
        gop_agrees state2.Inc.Reground.gop scratch2.Inc.Reground.gop
        && repair_lands_on
             ~previous:(Ordered.Vfix.least_model state1.Inc.Reground.gop)
             state2.Inc.Reground.gop delta
        && (* and back: removing the rule again is the deletion path *)
        (match Inc.Reground.reground state2 ~program:p with
        | Error _ -> true
        | Ok (state1', delta') ->
          gop_agrees state1'.Inc.Reground.gop state1.Inc.Reground.gop
          && repair_lands_on
               ~previous:(Ordered.Vfix.least_model state2.Inc.Reground.gop)
               state1'.Inc.Reground.gop delta'))

let suite = [ prop_session_equals_scratch; prop_reground_exact ]
