Log-shipping replication end to end: a primary that accepts replicas
on a second listener, a replica that bootstraps and tails the
primary's write-ahead log into its own data directory, read-only
serving with a typed redirect, failover by promotion, and offline
recovery of the replica's directory.  See docs/REPLICATION.md.

The flags police their prerequisites:

  $ olp serve --socket x.sock --replica-of rep.sock
  olp serve: --replica-of requires --data-dir (the replica keeps its own durable copy of the history)
  [2]
  $ olp serve --socket x.sock --data-dir xd --replicate-on rep.sock --replica-of rep.sock
  olp serve: --replica-of and --replicate-on cannot be combined (chained replicas are not supported yet)
  [2]

Start a primary that accepts replicas on a second Unix socket, and
give it some knowledge:

  $ olp serve --socket prim.sock --data-dir pd --replicate-on rep.sock > primary.log 2>&1 &
  $ PRIMARY=$!
  $ olp call --socket prim.sock --retry 5 '{"op":"load","src":"component top { fly(X) :- bird(X). bird(tweety). bird(penguin). } component bot extends top { -fly(penguin). }"}'
  {"status":"ok","objects":["top","bot"]}
  $ olp call --socket prim.sock '{"op":"add_rule","obj":"bot","rule":"swims(penguin)."}'
  {"status":"ok"}
  $ head -3 primary.log
  olp serve: data dir pd (seq 0, replayed 0 from base 0)
  olp serve: listening on unix:prim.sock (4 workers)
  olp serve: accepting replicas on unix:rep.sock

The primary's stats name its role and the replication listener:

  $ olp call --socket prim.sock stats | grep -o '"replication":{[^}]*}'
  "replication":{"role":"primary","listener":"unix:rep.sock"}

Start a replica pointed at the replication listener.  It catches up
(two mutations behind) and then reports zero lag:

  $ olp serve --socket repl.sock --data-dir rd --replica-of rep.sock > replica.log 2>&1 &
  $ REPLICA=$!
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock --retry 5 stats | grep -q '"lag":0,"connected":true'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock stats | grep -o '"replication":{[^}]*}'
  "replication":{"role":"replica","primary":"unix:rep.sock","last_applied":2,"primary_seq":2,"lag":0,"connected":true}
  $ head -3 replica.log
  olp serve: data dir rd (seq 0, replayed 0 from base 0)
  olp serve: listening on unix:repl.sock (4 workers)
  olp serve: replicating from unix:rep.sock

The replica answers queries from its own copy of the knowledge base —
the same answers the primary gives:

  $ olp call --socket prim.sock '{"op":"query","obj":"bot","lit":"fly(penguin)"}' '{"op":"query","obj":"bot","lit":"swims(penguin)"}'
  {"status":"ok","value":"false"}
  {"status":"ok","value":"true"}
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(penguin)"}' '{"op":"query","obj":"bot","lit":"swims(penguin)"}'
  {"status":"ok","value":"false"}
  {"status":"ok","value":"true"}

Writes on the replica bounce with a typed redirect to the primary:

  $ olp call --socket repl.sock '{"op":"add_rule","obj":"top","rule":"bird(emu)."}'
  {"status":"error","error":{"kind":"read_only","message":"knowledge base is read-only: this server replicates from unix:rep.sock; send writes to the primary"}}
  [2]

New writes on the primary flow to the replica:

  $ olp call --socket prim.sock '{"op":"add_rule","obj":"top","rule":"bird(robin)."}'
  {"status":"ok"}
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock stats | grep -q '"last_applied":3'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(robin)"}'
  {"status":"ok","value":"true"}

Kill the primary (SIGTERM, as an init system would).  The replica
keeps serving reads at its last applied state and reports the lost
connection:

  $ kill $PRIMARY
  $ wait $PRIMARY
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock stats | grep -q '"connected":false'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(robin)"}'
  {"status":"ok","value":"true"}

Promote the replica: it detaches from the dead primary and starts
accepting writes:

  $ olp promote --socket repl.sock
  {"status":"ok","role":"primary","seq":3}
  $ grep -c 'promoted: replication stopped' replica.log
  1
  $ olp call --socket repl.sock '{"op":"add_rule","obj":"top","rule":"bird(emu)."}' '{"op":"query","obj":"bot","lit":"fly(emu)"}'
  {"status":"ok"}
  {"status":"ok","value":"true"}
  $ olp call --socket repl.sock stats | grep -o '"replication":{[^}]*}'
  "replication":{"role":"primary","primary":"unix:rep.sock","last_applied":4,"primary_seq":3,"lag":0,"connected":false}

A second promotion has nothing to do:

  $ olp promote --socket repl.sock
  {"status":"error","error":{"kind":"input","message":"already promoted: this server is a standalone primary"}}
  [2]

Shut the promoted server down; its data directory holds the full
history — the three replicated mutations plus its own write:

  $ olp call --socket repl.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $REPLICA
  $ olp recover rd
  olp recover: data dir rd (seq 4, replayed 4 from base 0)
