Log-shipping replication end to end: a primary that accepts replicas
on a second listener, a replica that bootstraps and tails the
primary's write-ahead log into its own data directory, read-only
serving with a typed redirect, the replica-set client following that
redirect, failover by promotion with epoch fencing, a chained
(primary -> mid -> leaf) topology that survives a mid-chain
promotion, synchronous commit, and offline recovery of the replica's
directory.  See docs/REPLICATION.md.

The flags police their prerequisites:

  $ olp serve --socket x.sock --replica-of rep.sock
  olp serve: --replica-of requires --data-dir (the replica keeps its own durable copy of the history)
  [2]
  $ olp serve --socket x.sock --data-dir xd --sync-replicas 1
  olp serve: --sync-replicas requires --replicate-on (confirmations arrive on the replication listener)
  [2]

Start a primary that accepts replicas on a second Unix socket, and
give it some knowledge:

  $ olp serve --socket prim.sock --data-dir pd --replicate-on rep.sock > primary.log 2>&1 &
  $ PRIMARY=$!
  $ olp call --socket prim.sock --retry 5 '{"op":"load","src":"component top { fly(X) :- bird(X). bird(tweety). bird(penguin). } component bot extends top { -fly(penguin). }"}'
  {"status":"ok","objects":["top","bot"]}
  $ olp call --socket prim.sock '{"op":"add_rule","obj":"bot","rule":"swims(penguin)."}'
  {"status":"ok"}
  $ head -3 primary.log
  olp serve: data dir pd (seq 0, replayed 0 from base 0)
  olp serve: listening on unix:prim.sock (4 workers)
  olp serve: accepting replicas on unix:rep.sock

The primary's stats name its role, the replication listener, the
fencing epoch and the replica-set topology (just itself so far):

  $ olp call --socket prim.sock stats | grep -o '"replication":{[^}]*}'
  "replication":{"role":"primary","listener":"unix:rep.sock","epoch":0,"members":["unix:prim.sock"]}

Start a replica pointed at the replication listener.  It catches up
(two mutations behind) and then reports zero lag:

  $ olp serve --socket repl.sock --data-dir rd --replica-of rep.sock > replica.log 2>&1 &
  $ REPLICA=$!
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock --retry 5 stats | grep -q '"lag":0,"connected":true'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock stats | grep -o '"replication":{[^}]*}' | sed -E 's/"connect_attempts":[0-9]+/"connect_attempts":_/'
  "replication":{"role":"replica","primary":"unix:rep.sock","epoch":0,"last_applied":2,"primary_seq":2,"lag":0,"connected":true,"connect_attempts":_,"members":["unix:repl.sock"]}
  $ head -3 replica.log
  olp serve: data dir rd (seq 0, replayed 0 from base 0)
  olp serve: listening on unix:repl.sock (4 workers)
  olp serve: replicating from unix:rep.sock

The replica advertised its client address in the handshake, so the
primary's topology now lists both members, machine-readably:

  $ olp call --socket prim.sock stats | grep -o '"members":\[[^]]*\]'
  "members":["unix:prim.sock","unix:repl.sock"]

The replica answers queries from its own copy of the knowledge base —
the same answers the primary gives:

  $ olp call --socket prim.sock '{"op":"query","obj":"bot","lit":"fly(penguin)"}' '{"op":"query","obj":"bot","lit":"swims(penguin)"}'
  {"status":"ok","value":"false"}
  {"status":"ok","value":"true"}
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(penguin)"}' '{"op":"query","obj":"bot","lit":"swims(penguin)"}'
  {"status":"ok","value":"false"}
  {"status":"ok","value":"true"}

Writes on the replica bounce with a typed redirect naming the
primary:

  $ olp call --socket repl.sock '{"op":"add_rule","obj":"top","rule":"bird(emu)."}'
  {"status":"error","error":{"kind":"read_only","message":"knowledge base is read-only: this server replicates from unix:rep.sock; send writes to the primary","primary":"unix:rep.sock"}}
  [2]

New writes on the primary flow to the replica:

  $ olp call --socket prim.sock '{"op":"add_rule","obj":"top","rule":"bird(robin)."}'
  {"status":"ok"}
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock stats | grep -q '"last_applied":3'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(robin)"}'
  {"status":"ok","value":"true"}

The replica-set client: seeded with only the replica's address, a
write still lands — the client follows the typed redirect to the
primary; reads are answered by whichever node is up:

  $ olp call --seeds repl.sock '{"op":"add_rule","obj":"top","rule":"bird(owl)."}'
  {"status":"ok"}
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock stats | grep -q '"last_applied":4'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --seeds prim.sock,repl.sock '{"op":"query","obj":"top","lit":"fly(owl)"}'
  {"status":"ok","value":"true"}

Kill the primary (SIGTERM, as an init system would).  The replica
keeps serving reads at its last applied state and reports the lost
connection:

  $ kill $PRIMARY
  $ wait $PRIMARY
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl.sock stats | grep -q '"connected":false'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket repl.sock '{"op":"query","obj":"bot","lit":"fly(robin)"}'
  {"status":"ok","value":"true"}

Promote the replica: it detaches from the dead primary, durably bumps
the fencing epoch and starts accepting writes:

  $ olp promote --socket repl.sock
  {"status":"ok","role":"primary","epoch":1,"seq":4}
  $ grep -c 'promoted: replication stopped, now a standalone primary at epoch 1' replica.log
  1
  $ olp call --socket repl.sock '{"op":"add_rule","obj":"top","rule":"bird(emu)."}' '{"op":"query","obj":"bot","lit":"fly(emu)"}'
  {"status":"ok"}
  {"status":"ok","value":"true"}
  $ olp call --socket repl.sock stats | grep -o '"replication":{[^}]*}' | sed -E 's/"connect_attempts":[0-9]+/"connect_attempts":_/'
  "replication":{"role":"primary","primary":"unix:rep.sock","epoch":1,"last_applied":5,"primary_seq":4,"lag":0,"connected":false,"connect_attempts":_,"members":["unix:repl.sock"]}

A second promotion has nothing to do — the epoch is bumped exactly
once:

  $ olp promote --socket repl.sock
  {"status":"error","error":{"kind":"input","message":"already promoted: this server is a standalone primary"}}
  [2]

Shut the promoted server down; its data directory holds the full
history at the new epoch — the four replicated mutations plus its own
write (the promotion snapshot is the new base):

  $ olp call --socket repl.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $REPLICA
  $ olp recover rd
  olp recover: data dir rd (seq 5, replayed 1 from base 4, epoch 1)

A chained topology: the middle node is a replica that re-serves its
own log (--replica-of and --replicate-on together), and a leaf tails
the middle node:

  $ olp serve --socket prim2.sock --data-dir pd2 --replicate-on rep2.sock > primary2.log 2>&1 &
  $ PRIMARY2=$!
  $ olp call --socket prim2.sock --retry 5 '{"op":"load","src":"component c { p. }"}'
  {"status":"ok","objects":["c"]}
  $ olp serve --socket mid.sock --data-dir md --replica-of rep2.sock --replicate-on midrep.sock > mid.log 2>&1 &
  $ MID=$!
  $ olp serve --socket leaf.sock --data-dir ld --replica-of midrep.sock > leaf.log 2>&1 &
  $ LEAF=$!
  $ for i in $(seq 1 150); do
  >   if olp call --socket leaf.sock --retry 5 stats | grep -q '"last_applied":1,[^}]*"connected":true'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket mid.sock --retry 5 stats | grep -o '"replication":{[^}]*}' | sed -E 's/"connect_attempts":[0-9]+/"connect_attempts":_/'
  "replication":{"role":"replica","primary":"unix:rep2.sock","epoch":0,"last_applied":1,"primary_seq":1,"lag":0,"connected":true,"connect_attempts":_,"members":["unix:mid.sock","unix:leaf.sock"],"listener":"unix:midrep.sock"}
  $ olp call --socket leaf.sock '{"op":"query","obj":"c","lit":"p"}'
  {"status":"ok","value":"true"}

The root dies; the middle of the chain is promoted.  The leaf gets a
fencing refusal at its old epoch, re-handshakes, adopts the new term
and keeps following — no leaf-side reconfiguration:

  $ kill $PRIMARY2
  $ wait $PRIMARY2
  $ olp promote --socket mid.sock
  {"status":"ok","role":"primary","epoch":1,"seq":1}
  $ olp call --socket mid.sock '{"op":"add_rule","obj":"c","rule":"after_failover."}'
  {"status":"ok"}
  $ for i in $(seq 1 150); do
  >   if olp call --socket leaf.sock stats | grep -q '"epoch":1,"last_applied":2'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket leaf.sock '{"op":"query","obj":"c","lit":"after_failover"}'
  {"status":"ok","value":"true"}
  $ olp call --socket leaf.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $LEAF
  $ olp call --socket mid.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $MID
  $ olp recover ld
  olp recover: data dir ld (seq 2, replayed 1 from base 1, epoch 1)

Synchronous commit: with --sync-replicas 1 the primary holds each
write's acknowledgement until a replica has confirmed durability.
With no replica attached the ack degrades to a typed error — the
mutation IS applied and locally durable, only its replication
guarantee is degraded:

  $ olp serve --socket prim3.sock --data-dir pd3 --replicate-on rep3.sock --sync-replicas 1 --sync-timeout-ms 400 > primary3.log 2>&1 &
  $ PRIMARY3=$!
  $ olp call --socket prim3.sock --retry 5 '{"op":"load","src":"component c { p. }"}'
  {"status":"error","error":{"kind":"sync_timeout","message":"synchronous commit timed out: mutation 1 is durable locally but only 0 of the 1 required replica(s) confirmed it within 400 ms","seq":1,"confirmed":0}}
  [2]
  $ olp call --socket prim3.sock '{"op":"query","obj":"c","lit":"p"}'
  {"status":"ok","value":"true"}

Attach a replica; acknowledged writes are now on the replica's stable
storage before the client sees the ack, and stats record the policy
and the one degrade:

  $ olp serve --socket repl3.sock --data-dir rd3 --replica-of rep3.sock > replica3.log 2>&1 &
  $ REPLICA3=$!
  $ for i in $(seq 1 150); do
  >   if olp call --socket repl3.sock --retry 5 stats | grep -q '"lag":0,"connected":true'; then break; fi
  >   sleep 0.1
  > done
  $ olp call --socket prim3.sock '{"op":"add_rule","obj":"c","rule":"q."}'
  {"status":"ok"}
  $ olp call --socket repl3.sock '{"op":"query","obj":"c","lit":"q"}'
  {"status":"ok","value":"true"}
  $ olp call --socket prim3.sock stats | grep -o '"sync_replicas":1,"sync_timeout_ms":400'
  "sync_replicas":1,"sync_timeout_ms":400
  $ olp call --socket prim3.sock stats | grep -o '"sync_timeouts":1'
  "sync_timeouts":1
  $ olp call --socket repl3.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $REPLICA3
  $ olp call --socket prim3.sock shutdown
  {"status":"ok","shutdown":true}
  $ wait $PRIMARY3
