(* Interactive session on top of the Kb layer.  Lines are either ground /
   non-ground literal queries or colon-commands; see [help_text]. *)

let help_text =
  {|commands:
  <literal>            query the least model (variables enumerate answers)
  :components          list objects and their parents
  :component NAME      switch the viewpoint object
  :least               print the least model from the viewpoint
  :stable [N]          print (at most N) stable models
  :explain <literal>   why does the literal hold / fail / stay undefined?
  :assert NAME <rule>  add a rule to an object
  :rules [NAME]        print an object's local rules
  :check               print the potential conflicts from the viewpoint
  :help                this message
  :quit                leave|}

type state = {
  kb : Kb.t;
  mutable viewpoint : string option;
  fresh_budget : unit -> Ordered.Budget.t;
      (** each evaluated line gets its own budget *)
}

let current_viewpoint st =
  match st.viewpoint with
  | Some v -> Some v
  | None -> (
    (* default: the unique minimal object of the order, else the last
       defined object *)
    match Kb.objects st.kb with
    | [] -> None
    | objs -> (
      let prog = Kb.to_program st.kb in
      match Ordered.Poset.minimal (Ordered.Program.poset prog) with
      | [ id ] -> Some (Ordered.Program.component_name prog id)
      | _ -> Some (List.hd (List.rev objs))))

let with_viewpoint st f =
  match current_viewpoint st with
  | None -> print_endline "no objects loaded; use :assert NAME <rule>"
  | Some obj -> f obj

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    ( String.sub s 0 i,
      String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

let print_value v = Format.printf "%a@." Logic.Interp.pp_value v

let query st src =
  with_viewpoint st (fun obj ->
      let budget = st.fresh_budget () in
      let l = Lang.Parser.parse_literal src in
      if Logic.Literal.is_ground l then
        print_value (Kb.query ~budget st.kb ~obj l)
      else begin
        let g = Kb.gop ~budget st.kb ~obj in
        let instances = Ordered.Query.holds_instances ~budget g l in
        if instances = [] then print_endline "no"
        else
          List.iter
            (fun i -> Format.printf "%a@." Logic.Literal.pp i)
            instances
      end)

let command st line =
  let cmd, rest = split_first line in
  match cmd with
  | ":help" -> print_endline help_text
  | ":components" ->
    List.iter
      (fun o ->
        match Kb.parents st.kb o with
        | [] -> Format.printf "%s@." o
        | ps -> Format.printf "%s < %s@." o (String.concat ", " ps))
      (Kb.objects st.kb)
  | ":component" ->
    if List.mem rest (Kb.objects st.kb) then st.viewpoint <- Some rest
    else Format.printf "unknown object %S@." rest
  | ":least" ->
    with_viewpoint st (fun obj ->
        Format.printf "%a@." Logic.Interp.pp
          (Kb.least_model ~budget:(st.fresh_budget ()) st.kb ~obj))
  | ":stable" ->
    with_viewpoint st (fun obj ->
        let limit = int_of_string_opt rest in
        let result =
          Kb.stable_models ?limit ~budget:(st.fresh_budget ()) st.kb ~obj
        in
        let models = Ordered.Budget.value result in
        (match result with
        | Ordered.Budget.Complete _ ->
          Format.printf "%d model(s)@." (List.length models)
        | Ordered.Budget.Partial (_, r) ->
          Format.printf "%d model(s) — truncated, budget exhausted (%s)@."
            (List.length models)
            (Ordered.Budget.reason_to_string r));
        List.iter (fun m -> Format.printf "%a@." Logic.Interp.pp m) models)
  | ":explain" ->
    with_viewpoint st (fun obj ->
        let l = Lang.Parser.parse_literal rest in
        Format.printf "%a@." Ordered.Explain.pp (Kb.explain st.kb ~obj l))
  | ":assert" ->
    let name, rule_src = split_first rest in
    if name = "" || rule_src = "" then
      print_endline "usage: :assert NAME <rule>"
    else begin
      if not (List.mem name (Kb.objects st.kb)) then
        Kb.define st.kb name [];
      Kb.add_rule_src st.kb ~obj:name rule_src
    end
  | ":rules" ->
    let objs = if rest = "" then Kb.objects st.kb else [ rest ] in
    List.iter
      (fun o ->
        Format.printf "component %s:@." o;
        List.iter
          (fun r -> Format.printf "  %a@." Logic.Rule.pp r)
          (Kb.rules st.kb o))
      objs
  | ":check" ->
    with_viewpoint st (fun obj ->
        let prog = Kb.to_program st.kb in
        let id = Ordered.Program.component_id_exn prog obj in
        match Ordered.Analysis.conflicts prog id with
        | [] -> print_endline "no potential conflicts"
        | cs ->
          List.iter
            (fun c ->
              Format.printf "%a@." (Ordered.Analysis.pp_conflict prog) c)
            cs)
  | ":save" ->
    if rest = "" then print_endline "usage: :save FILE"
    else begin
      let oc = open_out rest in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Kb.to_source st.kb));
      Format.printf "saved to %s@." rest
    end
  | ":quit" | ":exit" -> raise Exit
  | _ -> Format.printf "unknown command %s (try :help)@." cmd

let eval st line =
  let line = String.trim line in
  if line = "" then ()
  else if String.length line > 0 && line.[0] = ':' then command st line
  else query st line

let run ?timeout ?max_steps ?file () =
  let kb = Kb.create () in
  (match file with
  | Some path ->
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Kb.load kb src
  | None -> ());
  let fresh_budget () = Ordered.Budget.make ?timeout ?max_steps () in
  let st = { kb; viewpoint = None; fresh_budget } in
  let interactive = Unix.isatty Unix.stdin in
  (try
     while true do
       if interactive then (print_string "olp> "; flush stdout);
       match input_line stdin with
       | line -> (
         try eval st line with
         | Exit -> raise Exit
         | Lang.Lexer.Error (msg, pos) ->
           Format.printf "lexical error at %d:%d: %s@." pos.line pos.col msg
         | Lang.Parser.Error (msg, pos) ->
           Format.printf "syntax error at %d:%d: %s@." pos.line pos.col msg
         | Invalid_argument msg | Failure msg ->
           Format.printf "error: %s@." msg
         | Ordered.Diag.Error e ->
           Format.printf "error: %a@." Ordered.Diag.pp e
         | Ordered.Budget.Exhausted r ->
           Format.printf "budget exhausted (%s)@."
             (Ordered.Budget.reason_to_string r))
       | exception End_of_file -> raise Exit
     done
   with Exit -> ());
  if interactive then print_endline "bye"
