(* olp — command-line front end for the ordered-logic-programming library.

   Subcommands: check, ground, least, models, query, prove, explain, repl.

   Exit codes: 0 success (complete result), 2 error (bad input, unknown
   component, typed diagnostic), 3 partial result (a resource budget ran
   out; any output printed is a sound prefix).  124/125 are left to
   cmdliner. *)

open Cmdliner

let exit_error = 2
let exit_partial = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  match Ordered.Program.parse (read_file path) with
  | Ok p -> p
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

(* Like [load_program], but also return the file's [prefer] declarations
   (the program itself does not carry them — preferences are a layer on
   top, resolved against a viewpoint by [Prefer.Spec.make]). *)
let load_program_prefs path =
  match Lang.Parser.parse_file (read_file path) with
  | ast -> (
    match Ordered.Program.of_ast ast with
    | Ok p -> (p, Lang.Ast.prefer_pairs ast)
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2)
  | exception (Lang.Lexer.Error (msg, pos) | Lang.Parser.Error (msg, pos)) ->
    Printf.eprintf "%s: syntax error at %d:%d: %s\n" path pos.Lang.Token.line
      pos.Lang.Token.col msg;
    exit 2

(* Resolve the viewpoint component: an explicit name, or the unique minimal
   component of the order. *)
let resolve_component prog = function
  | Some name -> (
    match Ordered.Program.component_id prog name with
    | Some id -> id
    | None ->
      Printf.eprintf "unknown component %S (available: %s)\n" name
        (String.concat ", "
           (Array.to_list (Ordered.Program.component_names prog)));
      exit 2)
  | None -> (
    match Ordered.Poset.minimal (Ordered.Program.poset prog) with
    | [ id ] -> id
    | ids ->
      Printf.eprintf
        "ambiguous viewpoint: specify -c one of %s\n"
        (String.concat ", "
           (List.map (Ordered.Program.component_name prog) ids));
      exit 2)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Ordered-program source file.")

let component_arg =
  Arg.(value & opt (some string) None
       & info [ "c"; "component" ] ~docv:"COMPONENT"
           ~doc:"Viewpoint component (default: the unique minimal one).")

let depth_arg =
  Arg.(value & opt int 0
       & info [ "depth" ] ~docv:"N"
           ~doc:"Function-symbol nesting bound for grounding.")

let relevant_arg =
  Arg.(value & flag
       & info [ "relevant" ]
           ~doc:"Use relevance-driven grounding (see library docs for the \
                 semantic caveat on arbitrary ordered programs).")

let grounder_of_flag relevant = if relevant then `Relevant else `Naive

(* --facts rel=path, repeatable: bulk-load a base relation from delimited
   text into the viewpoint component. *)
let facts_arg =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected REL=PATH")
  in
  let print ppf (rel, path) = Format.fprintf ppf "%s=%s" rel path in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "facts" ] ~docv:"REL=PATH"
           ~doc:"Load tab-separated tuples from $(i,PATH) as facts of \
                 relation $(i,REL) into the viewpoint component \
                 (repeatable).")

let max_instances_arg =
  Arg.(value & opt (some int) None
       & info [ "max-instances" ] ~docv:"N"
           ~doc:"Abort grounding once more than N ground instances are \
                 produced (guards against accidental blow-up).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Wall-clock budget in seconds.  On exhaustion the command \
                 prints any sound partial result, warns on stderr and \
                 exits 3.")

let max_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "max-steps" ] ~docv:"N"
           ~doc:"Solver work budget in steps (fixpoint queue pops, \
                 enumeration nodes, grounding candidates).  On exhaustion \
                 the command exits 3, like $(b,--timeout).")

let budget_term =
  let mk timeout max_steps = Ordered.Budget.make ?timeout ?max_steps () in
  Term.(const mk $ timeout_arg $ max_steps_arg)

(* Run a subcommand body under a budget: poll once up front (so a
   [--timeout 0] never starts work), map typed diagnostics to exit 2 and
   budget exhaustion to exit 3. *)
let governed budget f =
  try
    Ordered.Budget.check budget;
    f ()
  with
  | Ordered.Diag.Error e ->
    Printf.eprintf "error: %s\n" (Ordered.Diag.to_string e);
    exit exit_error
  | Ordered.Budget.Exhausted r ->
    Printf.eprintf "budget exhausted (%s)\n"
      (Ordered.Budget.reason_to_string r);
    exit exit_partial

let ground_view ?budget file comp depth relevant facts max_instances =
  let prog = load_program file in
  let id = resolve_component prog comp in
  let prog =
    List.fold_left
      (fun prog (rel, path) ->
        match Edb.facts_of_file ~rel path with
        | Ok fs -> Ordered.Program.add_rules prog id fs
        | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 2)
      prog facts
  in
  match
    Ordered.Gop.ground ?budget ?max_instances
      ~grounder:(grounder_of_flag relevant) ~depth prog id
  with
  | g -> (prog, id, g)
  | exception Invalid_argument e ->
    Printf.eprintf "%s\n" e;
    exit exit_error

(* ------------------------------------------------------------------ *)

let dot_arg =
  Arg.(value & flag
       & info [ "dot" ]
           ~doc:"Emit a Graphviz digraph instead of text output.")

let check_cmd =
  let run budget file dot =
    governed budget @@ fun () ->
    let prog, prefs = load_program_prefs file in
    if dot then (print_string (Ordered.Dot.poset prog); exit 0);
    let names = Ordered.Program.component_names prog in
    Format.printf "%d component(s): %s@." (Array.length names)
      (String.concat ", " (Array.to_list names));
    let poset = Ordered.Program.poset prog in
    Array.iteri
      (fun a _ ->
        Array.iteri
          (fun b _ ->
            if Ordered.Poset.lt poset a b then
              Format.printf "  %s < %s@." names.(a) names.(b))
          names)
      names;
    if prefs <> [] then begin
      Format.printf "%d preference(s):@." (List.length prefs);
      List.iter (fun (a, b) -> Format.printf "  %s > %s@." a b) prefs;
      (* resolve against each minimal viewpoint: names must exist and the
         combined rule order must stay a strict partial order *)
      List.iter
        (fun comp -> ignore (Prefer.Spec.make prog comp prefs : Prefer.Spec.t))
        (Ordered.Poset.minimal (Ordered.Program.poset prog))
    end;
    let unsafe = Ground.Safety.check (Ordered.Program.all_rules prog) in
    List.iter
      (fun r -> Format.printf "warning: %a@." Ground.Safety.pp_report r)
      unsafe;
    (* Static conflict analysis from each minimal viewpoint. *)
    List.iter
      (fun comp ->
        List.iter
          (fun c ->
            Format.printf "conflict [from %s]: %a@."
              (Ordered.Program.component_name prog comp)
              (Ordered.Analysis.pp_conflict prog)
              c)
          (Ordered.Analysis.conflicts prog comp))
      (Ordered.Poset.minimal (Ordered.Program.poset prog));
    Format.printf "ok@."
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse and sanity-check a program: components, order, rule \
             safety, and the static overruling/defeating structure \
             ($(b,--dot) draws the component order).")
    Term.(const run $ budget_term $ file_arg $ dot_arg)

let ground_cmd =
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print size diagnostics instead of the rules.")
  in
  let run budget file comp depth relevant facts max_instances stats =
    governed budget @@ fun () ->
    let prog, _, g =
      ground_view ~budget file comp depth relevant facts max_instances
    in
    if stats then
      Format.printf "%a@." Ordered.Gop.pp_stats (Ordered.Gop.stats g)
    else
      Array.iteri
        (fun i (r : Ordered.Gop.grule) ->
          Format.printf "[%s] %a@."
            (Ordered.Program.component_name prog r.comp)
            Logic.Rule.pp
            (Ordered.Gop.rule_src g i))
        g.Ordered.Gop.rules
  in
  Cmd.v
    (Cmd.info "ground" ~doc:"Print the ground instances of the view C*.")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg $ stats_flag)

let least_cmd =
  let run budget file comp depth relevant facts max_instances =
    governed budget @@ fun () ->
    let _, _, g =
      ground_view ~budget file comp depth relevant facts max_instances
    in
    Format.printf "%a@." Logic.Interp.pp (Ordered.Vfix.least_model ~budget g)
  in
  Cmd.v
    (Cmd.info "least"
       ~doc:"Print the least model (the fixpoint of the ordered immediate \
             transformation V).")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg)

let models_cmd =
  let kind =
    Arg.(value
         & opt (enum [ ("stable", `Stable); ("assumption-free", `Af);
                       ("total", `Total) ])
             `Stable
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Which models to enumerate: $(b,stable) (default), \
                   $(b,assumption-free) or $(b,total).")
  in
  let limit =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N" ~doc:"Stop after N models.")
  in
  let search =
    Arg.(value
         & opt
             (enum
                [ ("pruned", `Pruned); ("naive", `Naive);
                  ("compiled", `Compiled)
                ])
             `Pruned
         & info [ "search" ] ~docv:"SEARCH"
             ~doc:"Enumeration engine: $(b,pruned) (branch-and-propagate, \
                   default), $(b,naive) (leaf-check oracle) or \
                   $(b,compiled) (flat-array kernel with watched-literal \
                   propagation and conflict-driven nogood learning — same \
                   models and order as $(b,pruned), fewer visited nodes).")
  in
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print search-effort counters (nodes, leaves, prunes, \
                   forced, models; with $(b,--search compiled) also \
                   propagations, conflicts, learned/evicted nogoods and \
                   restarts) on stderr after the models.")
  in
  let prefer =
    Arg.(value
         & opt (some (enum [ ("compiled", `Compiled); ("naive", `Naive) ]))
             None
         & info [ "prefer" ] ~docv:"ENGINE"
             ~doc:"Enumerate only the $(i,preferred) stable models under \
                   the file's $(b,prefer) declarations: $(b,compiled) \
                   translates the preferences into fresh components and \
                   runs the stable search chosen by $(b,--search) on the \
                   compiled program; $(b,naive) is the reference oracle \
                   on the original grounding (it ignores $(b,--search)).  \
                   Stable models only.")
  in
  let run budget file comp depth relevant facts max_instances kind limit
      search stats prefer =
    governed budget @@ fun () ->
    let counters = Ordered.Counters.create () in
    let result =
      match prefer with
      | Some engine ->
        if kind <> `Stable then begin
          Printf.eprintf "--prefer applies to stable models only\n";
          exit exit_error
        end;
        let prog, prefs = load_program_prefs file in
        let id = resolve_component prog comp in
        let prog =
          List.fold_left
            (fun prog (rel, path) ->
              match Edb.facts_of_file ~rel path with
              | Ok fs -> Ordered.Program.add_rules prog id fs
              | Error e ->
                Printf.eprintf "%s: %s\n" path e;
                exit 2)
            prog facts
        in
        let spec = Prefer.Spec.make prog id prefs in
        (match engine with
        | `Compiled -> (
          match
            Prefer.Compile.gop ~budget ?max_instances
              ~grounder:(grounder_of_flag relevant) ~depth
              (Prefer.Compile.compile spec)
          with
          | g -> (
            match search with
            | `Pruned ->
              Ordered.Stable.stable_models ?limit ~budget ~stats:counters g
            | `Naive ->
              Ordered.Stable.Naive.stable_models ?limit ~budget
                ~stats:counters g
            | `Compiled ->
              Solve.Kernel.stable_models ?limit ~budget ~stats:counters g)
          | exception Invalid_argument e ->
            Printf.eprintf "%s\n" e;
            exit exit_error)
        | `Naive ->
          Prefer.Naive.preferred_models ?limit ~budget ~stats:counters spec)
      | None -> (
        let _, _, g =
          ground_view ~budget file comp depth relevant facts max_instances
        in
        match kind, search with
        | `Stable, `Pruned ->
          Ordered.Stable.stable_models ?limit ~budget ~stats:counters g
        | `Stable, `Naive ->
          Ordered.Stable.Naive.stable_models ?limit ~budget ~stats:counters g
        | `Af, `Pruned ->
          Ordered.Stable.assumption_free_models ?limit ~budget ~stats:counters
            g
        | `Af, `Naive ->
          Ordered.Stable.Naive.assumption_free_models ?limit ~budget
            ~stats:counters g
        | `Stable, `Compiled ->
          Solve.Kernel.stable_models ?limit ~budget ~stats:counters g
        | `Af, `Compiled ->
          Solve.Kernel.assumption_free_models ?limit ~budget ~stats:counters g
        | `Total, `Pruned ->
          Ordered.Exhaustive.total_models ?limit ~budget ~stats:counters g
        | `Total, `Naive ->
          Ordered.Exhaustive.Naive.total_models ?limit ~budget ~stats:counters
            g
        | `Total, `Compiled ->
          Solve.Kernel.total_models ?limit ~budget ~stats:counters g)
    in
    let models = Ordered.Budget.value result in
    Format.printf "%d model(s)@." (List.length models);
    List.iter (fun m -> Format.printf "%a@." Logic.Interp.pp m) models;
    if stats then
      Format.eprintf "search: %a@." Ordered.Counters.pp counters;
    match result with
    | Ordered.Budget.Complete _ -> ()
    | Ordered.Budget.Partial (_, r) ->
      Printf.eprintf
        "warning: enumeration truncated, budget exhausted (%s); the models \
         above are a prefix of the full enumeration\n"
        (Ordered.Budget.reason_to_string r);
      exit exit_partial
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:"Enumerate stable / assumption-free / total models \
             ($(b,--prefer) restricts to the preferred stable models \
             under the file's $(b,prefer) declarations).")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg $ kind $ limit
          $ search $ stats_flag $ prefer)

let query_cmd =
  let mode =
    Arg.(value
         & opt (enum [ ("least", `Least); ("cautious", `Cautious);
                       ("brave", `Brave) ])
             `Least
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Reasoning mode for ground literals: $(b,least) \
                   (skeptical, the least model — default), $(b,cautious) \
                   (true in every stable model) or $(b,brave) (true in \
                   some stable model).")
  in
  let lit =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LITERAL"
           ~doc:"Literal, e.g. 'fly(penguin)' or 'fly(X)' (variables \
                 enumerate the true instances).")
  in
  let run budget file comp depth relevant facts max_instances mode lit_src =
    governed budget @@ fun () ->
    let _, _, g =
      ground_view ~budget file comp depth relevant facts max_instances
    in
    let l = Lang.Parser.parse_literal lit_src in
    if Logic.Literal.is_ground l then
      match mode with
      | `Least ->
        Format.printf "%a@." Logic.Interp.pp_value
          (Ordered.Query.ask ~budget g l)
      | `Cautious ->
        Format.printf "%b@." (Ordered.Stable.cautious ~budget g l)
      | `Brave -> Format.printf "%b@." (Ordered.Stable.brave ~budget g l)
    else begin
      let instances = Ordered.Query.holds_instances ~budget g l in
      Format.printf "%d answer(s)@." (List.length instances);
      List.iter (fun i -> Format.printf "%a@." Logic.Literal.pp i) instances
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate a literal against the least model: truth value for a \
             ground literal, all true instances for a literal with \
             variables.")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg $ mode $ lit)

let prove_cmd =
  let lit =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LITERAL"
           ~doc:"Ground literal to prove goal-directedly.")
  in
  let run budget file comp depth relevant facts max_instances lit_src =
    governed budget @@ fun () ->
    let _, _, g =
      ground_view ~budget file comp depth relevant facts max_instances
    in
    let l = Lang.Parser.parse_literal lit_src in
    let v = Ordered.Prove.value ~budget g l in
    let _, stats = Ordered.Prove.holds_with_stats ~budget g l in
    Format.printf "%a@." Logic.Interp.pp_value v;
    Format.printf "(explored %d of %d ground rules)@."
      stats.Ordered.Prove.relevant_rules stats.Ordered.Prove.total_rules
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Goal-directed proof of a ground literal (relevance-closure \
             restriction of the least-model computation).")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg $ lit)

let explain_cmd =
  let lit =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LITERAL"
           ~doc:"Ground literal to explain.")
  in
  let run budget file comp depth relevant facts max_instances dot lit_src =
    governed budget @@ fun () ->
    let _, _, g =
      ground_view ~budget file comp depth relevant facts max_instances
    in
    let l = Lang.Parser.parse_literal lit_src in
    if dot then print_string (Ordered.Dot.derivation g l)
    else Format.printf "%a@." Ordered.Explain.pp (Ordered.Explain.explain g l)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a literal holds, fails or is undefined in the \
             least model ($(b,--dot) draws the derivation neighbourhood).")
    Term.(const run $ budget_term $ file_arg $ component_arg $ depth_arg
          $ relevant_arg $ facts_arg $ max_instances_arg $ dot_arg $ lit)

let repl_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Optional program to load at startup.")
  in
  let run timeout max_steps file = Repl.run ?timeout ?max_steps ?file () in
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Interactive session: queries, :least, :stable, :explain, \
             :assert and more (see :help).  $(b,--timeout)/$(b,--max-steps) \
             budget each evaluated line; exhaustion returns to the prompt.")
    Term.(const run $ timeout_arg $ max_steps_arg $ file)

(* ------------------------------------------------------------------ *)
(* Query server: olp serve / olp call                                  *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on (serve) or connect to (call) a Unix-domain \
                 socket at $(i,PATH).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen on (serve) or connect to (call) TCP $(i,PORT); \
                 for $(b,serve), port 0 picks an ephemeral port (see \
                 $(b,--port-file)).")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR"
           ~doc:"IP address for $(b,--port) (default 127.0.0.1).")

let address_of socket port host =
  match socket, port with
  | Some path, None -> `Unix path
  | None, Some port -> `Tcp (host, port)
  | None, None ->
    Printf.eprintf "specify --socket PATH or --port PORT\n";
    exit exit_error
  | Some _, Some _ ->
    Printf.eprintf "--socket and --port are mutually exclusive\n";
    exit exit_error

let data_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Durable KB: recover the knowledge base from $(i,DIR) at \
                 startup (creating it if missing) and write-ahead-log \
                 every mutation to it, so a restart — graceful or not — \
                 resumes where the server left off.  See \
                 docs/PERSISTENCE.md.")

let no_fsync_arg =
  Arg.(value & flag
       & info [ "no-fsync" ]
           ~doc:"Skip fsync on log appends and snapshots: faster, but an \
                 OS crash (not a process crash) may lose the most recent \
                 mutations.")

let snapshot_every_arg =
  Arg.(value & opt int 0
       & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Write a snapshot and start a fresh log segment \
                 automatically every $(i,N) mutations (default 0: only \
                 on the $(i,snapshot) verb or $(b,olp compact)).")

let group_commit_arg =
  Arg.(value & opt int 0
       & info [ "group-commit-ms" ] ~docv:"N"
           ~doc:"Batch log fsyncs: mutations acknowledged within an \
                 $(i,N)-millisecond window share one fsync, so \
                 concurrent writers pay the disk-flush latency once \
                 between them (default 0: one fsync per mutation).  No \
                 effect with $(b,--no-fsync).")

(* ADDR grammar shared by --replicate-on / --replica-of / --seeds:
   HOST:PORT is TCP, a bare number is a local TCP port, anything else a
   Unix socket path.  The grammar lives next to the address type. *)
let parse_addr = Server.Daemon.parse_address
let addr_to_string = Server.Daemon.address_to_string

(* Shared by serve/recover/compact: describe what recovery found, and
   whether the result is the full history or a sound prefix of it. *)
let report_recovery ~prog ~dir (r : Persist.recovery) =
  Printf.printf "%s: data dir %s (seq %d, replayed %d from base %d%s)\n%!"
    prog dir r.seq r.replayed r.base
    (if r.epoch > 0 then Printf.sprintf ", epoch %d" r.epoch else "");
  if r.tmp_swept > 0 then
    Printf.printf "%s: swept %d stale temp file(s)\n%!" prog r.tmp_swept;
  if r.corrupt_snapshots > 0 then
    Printf.eprintf "%s: warning: skipped %d corrupt snapshot(s)\n" prog
      r.corrupt_snapshots;
  (match r.torn with
  | None -> ()
  | Some t ->
    Printf.eprintf
      "%s: warning: truncated torn log tail (%s at offset %d of %s, %d \
       byte(s) dropped); the recovered state is a sound prefix of the \
       mutation history\n"
      prog t.detail t.offset t.segment t.dropped);
  (match r.cut with
  | None -> ()
  | Some c ->
    (* a requested rewind, not damage: report on stdout, exit 0 *)
    Printf.printf
      "%s: %s (truncated %s at offset %d, %d byte(s) dropped)\n%!"
      prog c.detail c.segment c.offset c.dropped);
  if r.torn <> None || r.corrupt_snapshots > 0 then exit_partial else 0

let serve_cmd =
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Worker threads (default 4).")
  in
  let parallel =
    Arg.(value
         & opt (enum [ ("threads", `Threads); ("domains", `Domains) ]) `Threads
         & info [ "parallel" ] ~docv:"KIND"
             ~doc:"Worker flavour: $(i,threads) (default; interleaved \
                   systhreads that overlap on blocking I/O) or \
                   $(i,domains) (OCaml 5 domains, truly parallel \
                   workers).  Reads are lock-free either way; this picks \
                   what executes them.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Bounded request-queue capacity (default 64); a full \
                   queue answers with a typed $(i,busy) error.")
  in
  let max_timeout =
    Arg.(value & opt (some float) (Some 30.)
         & info [ "max-timeout" ] ~docv:"SECS"
             ~doc:"Server-side cap on per-request wall-clock budgets \
                   (default 30; requests asking for more, or for \
                   nothing, get this).  Negative disables the cap.")
  in
  let max_steps_cap =
    Arg.(value & opt (some int) None
         & info [ "max-steps-cap" ] ~docv:"N"
             ~doc:"Server-side cap on per-request step budgets \
                   (default: none).")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound TCP port to $(i,FILE) once listening \
                   (for $(b,--port 0)).")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Optional program loaded into the knowledge base before \
                 serving.")
  in
  let replicate_on =
    Arg.(value & opt (some string) None
         & info [ "replicate-on" ] ~docv:"ADDR"
             ~doc:"Accept replicas on a second listener at $(i,ADDR) \
                   ($(i,HOST:PORT), a bare TCP port, or a Unix socket \
                   path) and ship the write-ahead log to them.  Requires \
                   $(b,--data-dir).  See docs/REPLICATION.md.")
  in
  let replica_of =
    Arg.(value & opt (some string) None
         & info [ "replica-of" ] ~docv:"ADDR"
             ~doc:"Run as a read-only replica of the primary whose \
                   replication listener is at $(i,ADDR): bootstrap or \
                   tail its log into $(b,--data-dir), serve reads, and \
                   reject writes with a typed $(i,read_only) error.  \
                   $(b,olp promote) (or SIGUSR1) detaches and starts \
                   accepting writes.  Combine with $(b,--replicate-on) \
                   to re-serve this replica's log to replicas of its \
                   own (a chained topology).  See docs/REPLICATION.md.")
  in
  let sync_replicas =
    Arg.(value & opt int 0
         & info [ "sync-replicas" ] ~docv:"N"
             ~doc:"Synchronous commit: hold each write's acknowledgement \
                   until $(i,N) replicas have confirmed the mutation is \
                   on their stable storage (default 0: acknowledge after \
                   the local fsync only).  Requires $(b,--replicate-on).")
  in
  let sync_timeout =
    Arg.(value & opt int 5000
         & info [ "sync-timeout-ms" ] ~docv:"MS"
             ~doc:"With $(b,--sync-replicas), stop waiting for \
                   confirmations after $(i,MS) milliseconds and answer \
                   with a typed $(i,sync_timeout) error instead — the \
                   mutation is applied and locally durable, only its \
                   replication guarantee is degraded (default 5000).")
  in
  let cache_eviction =
    Arg.(value
         & opt (enum [ ("delta", `Delta); ("wholesale", `Wholesale) ]) `Delta
         & info [ "cache-eviction" ] ~docv:"POLICY"
             ~doc:"Result-cache policy on writes: $(i,delta) (default) \
                   repairs derived state incrementally and carries \
                   forward every cached entry the mutation provably \
                   cannot affect (see docs/INCREMENTAL.md); \
                   $(i,wholesale) flushes the whole cache on every \
                   mutation (the pre-incremental baseline).")
  in
  let run socket port host workers parallel queue max_timeout max_steps_cap
      port_file data_dir no_fsync snapshot_every group_commit_ms replicate_on
      replica_of sync_replicas sync_timeout cache_eviction file =
    let usage msg =
      Printf.eprintf "olp serve: %s\n" msg;
      exit exit_error
    in
    (match replica_of, data_dir with
    | Some _, None ->
      usage "--replica-of requires --data-dir (the replica keeps its own \
             durable copy of the history)"
    | _ -> ());
    (match replica_of, file with
    | Some _, Some _ ->
      usage "--replica-of cannot load FILE: a replica's content comes \
             from the primary"
    | _ -> ());
    (match replicate_on, data_dir with
    | Some _, None ->
      usage "--replicate-on requires --data-dir (replicas are shipped \
             the write-ahead log)"
    | _ -> ());
    if sync_replicas < 0 then usage "--sync-replicas cannot be negative";
    if sync_timeout <= 0 then usage "--sync-timeout-ms must be positive";
    (match sync_replicas, replicate_on with
    | n, None when n > 0 ->
      usage "--sync-replicas requires --replicate-on (confirmations \
             arrive on the replication listener)"
    | _ -> ());
    let timeout_cap =
      match max_timeout with
      | Some s when s < 0. -> None
      | cap -> cap
    in
    let caps = { Server.Engine.timeout = timeout_cap; steps = max_steps_cap } in
    let persist =
      Option.map
        (fun dir ->
          { Persist.dir; fsync = not no_fsync; snapshot_every;
            group_commit_ms })
        data_dir
    in
    let config =
      { Server.Daemon.address = address_of socket port host;
        workers;
        parallel;
        queue;
        caps;
        persist;
        replicate_on = Option.map parse_addr replicate_on;
        sync =
          (if sync_replicas > 0 then
             Some
               { Server.Engine.replicas = sync_replicas;
                 timeout_ms = sync_timeout
               }
           else None)
      }
    in
    let daemon =
      try Server.Daemon.create config with
      | Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "olp serve: cannot listen (%s%s)\n"
          (Unix.error_message e)
          (if arg = "" then "" else ": " ^ arg);
        exit exit_error
      | Ordered.Diag.Error e ->
        Printf.eprintf "olp serve: %s\n" (Ordered.Diag.to_string e);
        exit exit_error
    in
    (match Server.Daemon.recovery daemon, data_dir with
    | Some r, Some dir ->
      ignore (report_recovery ~prog:"olp serve" ~dir r : int)
    | _ -> ());
    Kb.Session.set_eviction
      (Server.Engine.session (Server.Daemon.engine daemon))
      cache_eviction;
    Server.Daemon.install_signal_handlers daemon;
    (match file with
    | None -> ()
    | Some path -> (
      let session = Server.Engine.session (Server.Daemon.engine daemon) in
      try Kb.Session.load session (read_file path) with
      | Invalid_argument msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit exit_error
      | Lang.Lexer.Error (msg, pos) | Lang.Parser.Error (msg, pos) ->
        Printf.eprintf "%s: error at %d:%d: %s\n" path pos.Lang.Token.line
          pos.Lang.Token.col msg;
        exit exit_error));
    let workers_desc =
      match parallel with
      | `Threads -> Printf.sprintf "%d workers" workers
      | `Domains -> Printf.sprintf "%d domain workers" workers
    in
    (match Server.Daemon.address daemon with
    | `Unix path ->
      Printf.printf "olp serve: listening on unix:%s (%s)\n%!" path
        workers_desc
    | `Tcp (host, port) ->
      Printf.printf "olp serve: listening on tcp:%s:%d (%s)\n%!" host
        port workers_desc;
      (match port_file with
      | None -> ()
      | Some f ->
        let oc = open_out f in
        Printf.fprintf oc "%d\n" port;
        close_out oc));
    let engine = Server.Daemon.engine daemon in
    (* the address clients reach this server on: advertised to the
       primary (so its stats can list us) and listed first in our own
       stats.replication.members topology *)
    let self_addr = addr_to_string (Server.Daemon.address daemon) in
    let members_detail () =
      [ ("members",
         Server.Wire.List
           (List.map
              (fun a -> Server.Wire.String a)
              (self_addr :: Server.Engine.replica_members engine))) ]
    in
    (* when this server also re-serves its log (a primary, or a chained
       replica), the listener rides along in the replication details *)
    let listener_detail =
      match Server.Daemon.replication_address daemon with
      | None -> []
      | Some addr ->
        Printf.printf "olp serve: accepting replicas on %s\n%!"
          (addr_to_string addr);
        [ ("listener", Server.Wire.String (addr_to_string addr)) ]
    in
    (match replica_of with
    | None ->
      if listener_detail <> [] then begin
        let epoch () =
          match Server.Daemon.persist_handle daemon with
          | Some p -> Persist.epoch p
          | None -> 0
        in
        Server.Engine.set_replication engine
          { Server.Engine.role = (fun () -> "primary");
            primary = (fun () -> None);
            details =
              (fun () ->
                listener_detail
                @ [ ("epoch", Server.Wire.Int (epoch ())) ]
                @ members_detail ());
            promote =
              (fun () -> Error "this server is already a primary")
          }
      end
    | Some addr ->
      let primary = parse_addr addr in
      let persist =
        match Server.Daemon.persist_handle daemon with
        | Some p -> p
        | None -> assert false  (* --replica-of implies --data-dir *)
      in
      let link =
        Replica.Link.create
          ~metrics:(Server.Engine.metrics engine)
          ~engine
          ~session:(Server.Engine.session engine)
          ~persist
          { (Replica.Link.default_config primary) with
            advertise = Some self_addr;
            log = (fun msg -> Printf.printf "olp serve: %s\n%!" msg)
          }
      in
      Server.Engine.set_replication engine
        { Server.Engine.role =
            (fun () -> (Replica.Link.status link).Replica.Link.role);
          primary =
            (fun () -> Some (Replica.Link.status link).Replica.Link.primary);
          details =
            (fun () ->
              let s = Replica.Link.status link in
              [ ("primary", Server.Wire.String s.Replica.Link.primary);
                ("epoch", Server.Wire.Int s.Replica.Link.epoch);
                ("last_applied", Server.Wire.Int s.Replica.Link.last_applied);
                ("primary_seq", Server.Wire.Int s.Replica.Link.primary_seq);
                ("lag", Server.Wire.Int s.Replica.Link.lag);
                ("connected", Server.Wire.Bool s.Replica.Link.connected);
                ("connect_attempts",
                 Server.Wire.Int s.Replica.Link.connect_attempts)
              ]
              @ members_detail () @ listener_detail);
          promote = (fun () -> Replica.Link.promote link)
        };
      Server.Daemon.on_drain daemon (fun () -> Replica.Link.stop link);
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle (fun _ -> Replica.Link.request_promote link));
      Printf.printf "olp serve: replicating from %s\n%!"
        (addr_to_string primary);
      Replica.Link.start link);
    Server.Daemon.serve daemon
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the concurrent query server: a line-oriented JSON \
             protocol over a Unix-domain or TCP socket, a bounded \
             request queue and a fixed worker pool, per-request budgets \
             clamped by server-side caps, a memoizing KB session cache, \
             and graceful drain on SIGINT/SIGTERM or the $(i,shutdown) \
             verb.  See docs/SERVER.md for the protocol, \
             docs/PERSISTENCE.md for $(b,--data-dir) and \
             docs/REPLICATION.md for $(b,--replicate-on) / \
             $(b,--replica-of).")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ workers $ parallel
          $ queue $ max_timeout $ max_steps_cap $ port_file $ data_dir_arg
          $ no_fsync_arg $ snapshot_every_arg $ group_commit_arg
          $ replicate_on $ replica_of $ sync_replicas $ sync_timeout
          $ cache_eviction $ file)

let call_cmd =
  let retry =
    Arg.(value & opt float 0.
         & info [ "retry" ] ~docv:"SECS"
             ~doc:"Keep retrying a refused connection for up to \
                   $(i,SECS) seconds (rides out server startup).")
  in
  let seeds =
    Arg.(value & opt (some string) None
         & info [ "seeds" ] ~docv:"ADDR,ADDR,..."
             ~doc:"Replica-set mode: a comma-separated list of server \
                   addresses (primary and replicas, in the \
                   $(b,--replicate-on) ADDR grammar).  Writes are routed \
                   to the primary (following $(i,read_only)/$(i,fenced) \
                   redirects), reads round-robin over the set, and \
                   $(b,--retry) rides out a failover in progress.  \
                   Replaces $(b,--socket)/$(b,--port).")
  in
  let requests =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"Request lines, sent in order on one connection.  A \
                 REQUEST starting with '{' is sent verbatim as a JSON \
                 request; anything else is shorthand for \
                 {\"op\": REQUEST} (e.g. $(b,stats), $(b,shutdown)).")
  in
  let run socket port host retry seeds requests =
    (* exit with the worst status seen: error > partial > ok *)
    let worst = ref 0 in
    let note = function
      | `Ok -> ()
      | `Partial -> if !worst = 0 then worst := exit_partial
      | `Error | `Unknown -> worst := exit_error
    in
    let line_of req =
      if String.length req > 0 && req.[0] = '{' then req
      else
        Server.Wire.to_string
          (Server.Wire.Obj [ ("op", Server.Wire.String req) ])
    in
    match seeds with
    | Some list ->
      let addrs =
        String.split_on_char ',' list
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s -> parse_addr (String.trim s))
      in
      if addrs = [] then begin
        Printf.eprintf "olp call: --seeds needs at least one address\n";
        exit exit_error
      end;
      let rset = Server.Rset.create addrs in
      List.iter
        (fun req ->
          match Server.Rset.request_line ~retry rset (line_of req) with
          | Ok response ->
            print_endline (Server.Wire.to_string response);
            note (Server.Wire.status_of_response response)
          | Error msg ->
            Printf.eprintf "olp call: %s\n" msg;
            Server.Rset.close rset;
            exit exit_error)
        requests;
      Server.Rset.close rset;
      exit !worst
    | None ->
      let address = address_of socket port host in
      (match Server.Client.connect ~retry address with
      | Error msg ->
        Printf.eprintf "olp call: cannot connect: %s\n" msg;
        exit exit_error
      | Ok client ->
        List.iter
          (fun req ->
            match Server.Client.request_line client (line_of req) with
            | Ok response ->
              print_endline (Server.Wire.to_string response);
              note (Server.Wire.status_of_response response)
            | Error msg ->
              Printf.eprintf "olp call: %s\n" msg;
              Server.Client.close client;
              exit exit_error)
          requests;
        Server.Client.close client;
        exit !worst)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Send request lines to a running $(b,olp serve) and print \
             the response lines.  Exits 0 if every response is \
             $(i,ok), 3 if any is $(i,partial) (a budget ran out), 2 on \
             any $(i,error) response or connection failure.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ retry $ seeds
          $ requests)

let promote_cmd =
  let retry =
    Arg.(value & opt float 0.
         & info [ "retry" ] ~docv:"SECS"
             ~doc:"Keep retrying a refused connection for up to \
                   $(i,SECS) seconds.")
  in
  let run socket port host retry =
    let address = address_of socket port host in
    match Server.Client.connect ~retry address with
    | Error msg ->
      Printf.eprintf "olp promote: cannot connect: %s\n" msg;
      exit exit_error
    | Ok client -> (
      let reply =
        Server.Client.request client
          (Server.Wire.Obj [ ("op", Server.Wire.String "promote") ])
      in
      Server.Client.close client;
      match reply with
      | Error msg ->
        Printf.eprintf "olp promote: %s\n" msg;
        exit exit_error
      | Ok response ->
        print_endline (Server.Wire.to_string response);
        (match Server.Wire.status_of_response response with
        | `Ok -> exit 0
        | `Partial -> exit exit_partial
        | `Error | `Unknown -> exit exit_error))
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Tell a running replica ($(b,olp serve --replica-of)) to \
             detach from its primary and become a standalone primary \
             that accepts writes.  Equivalent to sending the replica \
             SIGUSR1.  Exits 2 if the server is not a replica (or is \
             already promoted).")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ retry)

(* ------------------------------------------------------------------ *)
(* Offline maintenance: olp recover / olp compact                      *)
(* ------------------------------------------------------------------ *)

let data_dir_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
         ~doc:"Data directory of an $(b,olp serve --data-dir) instance \
               (which must not be running).")

let with_data_dir ?stop_at prog dir f =
  match
    Persist.open_dir ?stop_at
      { Persist.dir; fsync = true; snapshot_every = 0; group_commit_ms = 0 }
  with
  | p, _, recovery ->
    let status = report_recovery ~prog ~dir recovery in
    let status = f p status in
    Persist.close p;
    exit status
  | exception Ordered.Diag.Error e ->
    Printf.eprintf "%s: %s\n" prog (Ordered.Diag.to_string e);
    exit exit_error
  | exception Unix.Unix_error (e, _, arg) ->
    Printf.eprintf "%s: cannot open %s (%s%s)\n" prog dir
      (Unix.error_message e)
      (if arg = "" then "" else ": " ^ arg);
    exit exit_error

let recover_cmd =
  let to_seq =
    Arg.(value & opt (some int) None
         & info [ "to-seq" ] ~docv:"N"
             ~doc:"Point-in-time recovery: rewind the directory to the \
                   state just after mutation $(i,N), permanently \
                   discarding everything later.  Exits 3 (with the full \
                   history kept) if the history does not reach $(i,N).")
  in
  let run dir to_seq =
    with_data_dir ?stop_at:to_seq "olp recover" dir @@ fun p status ->
    match to_seq with
    | Some n when Persist.seq p < n ->
      Printf.eprintf
        "olp recover: warning: requested sequence %d but the history ends \
         at %d\n"
        n (Persist.seq p);
      if status = 0 then exit_partial else status
    | _ -> status
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a data directory offline and report what was found: \
             sweeps stale temp files, truncates a torn log tail, and \
             verifies the store rebuilds.  $(b,--to-seq) rewinds to an \
             earlier point in the history.  Exits 0 when the full \
             mutation history (or the requested prefix) was recovered, \
             3 when a torn tail or corrupt snapshot forced recovery to a \
             sound prefix, 2 when the directory is unrecoverable.")
    Term.(const run $ data_dir_pos $ to_seq)

let compact_cmd =
  let run dir =
    with_data_dir "olp compact" dir @@ fun p status ->
    let seq, deleted = Persist.compact p in
    Printf.printf "olp compact: snapshot at seq %d, deleted %d file(s)\n"
      seq deleted;
    status
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Recover a data directory offline, write a fresh snapshot \
             and delete the log segments and snapshots it makes \
             obsolete.  Exit codes as for $(b,olp recover).")
    Term.(const run $ data_dir_pos)

let main =
  let doc = "ordered logic programming (Laenens, Sacca, Vermeir; SIGMOD 1990)" in
  Cmd.group (Cmd.info "olp" ~version:Server.Wire.package_version ~doc)
    [ check_cmd; ground_cmd; least_cmd; models_cmd; query_cmd; prove_cmd; repl_cmd;
      explain_cmd; serve_cmd; call_cmd; promote_cmd; recover_cmd; compact_cmd
    ]

let () = exit (Cmd.eval main)
