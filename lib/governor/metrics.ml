(* Named counters behind one mutex.  The map is tiny (a dozen names), so
   a sorted association list keeps snapshots allocation-light and already
   ordered. *)

type t = {
  lock : Mutex.t;
  mutable entries : (string * int) list;  (* sorted by name *)
}

let create () = { lock = Mutex.create (); entries = [] }

let locked m f =
  Mutex.lock m.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

let rec update name f = function
  | [] -> [ (name, f 0) ]
  | (n, v) :: rest as l ->
    let c = String.compare name n in
    if c < 0 then (name, f 0) :: l
    else if c = 0 then (n, f v) :: rest
    else (n, v) :: update name f rest

let add m name n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  locked m (fun () -> m.entries <- update name (fun v -> v + n) m.entries)

let incr m name = add m name 1

let gauge_max m name level =
  locked m (fun () -> m.entries <- update name (max level) m.entries)

let get m name =
  locked m (fun () ->
      match List.assoc_opt name m.entries with Some v -> v | None -> 0)

let snapshot m = locked m (fun () -> m.entries)

let pp ppf m =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (n, v) -> Format.fprintf ppf "%s=%d" n v)
    ppf (snapshot m)
