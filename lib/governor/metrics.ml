(* Named counters over lock-free cells.  Each name maps to an
   [int Atomic.t]; the registry itself (a sorted association list) is
   only rebuilt when a new name first appears, under a mutex, so the
   hot path — bumping an existing counter — is a single atomic RMW and
   readers never block writers.  The map is tiny (a dozen names), so a
   sorted association list keeps snapshots allocation-light and already
   ordered. *)

type t = {
  lock : Mutex.t;  (* serializes registration of new names only *)
  mutable entries : (string * int Atomic.t) list;  (* sorted by name *)
}

let create () = { lock = Mutex.create (); entries = [] }

(* The entries field is only ever replaced by a list containing the same
   cells plus one, so an unlocked read sees a valid (possibly slightly
   stale) registry; a name missed here is re-checked under the lock. *)
let find m name = List.assoc_opt name m.entries

let rec insert name cell = function
  | [] -> [ (name, cell) ]
  | (n, _) :: _ as l when String.compare name n < 0 -> (name, cell) :: l
  | (n, v) :: rest ->
    if String.equal name n then (n, v) :: rest
    else (n, v) :: insert name cell rest

let cell m name =
  match find m name with
  | Some c -> c
  | None ->
    Mutex.lock m.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m.lock)
      (fun () ->
        (* another thread may have registered it since the racy read *)
        match find m name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          m.entries <- insert name c m.entries;
          c)

let add m name n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  ignore (Atomic.fetch_and_add (cell m name) n : int)

let incr m name = add m name 1

let gauge_max m name level =
  let c = cell m name in
  let rec raise_to () =
    let cur = Atomic.get c in
    if level > cur && not (Atomic.compare_and_set c cur level) then raise_to ()
  in
  raise_to ()

let get m name = match find m name with Some c -> Atomic.get c | None -> 0

let snapshot m = List.map (fun (n, c) -> (n, Atomic.get c)) m.entries

let pp ppf m =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (n, v) -> Format.fprintf ppf "%s=%d" n v)
    ppf (snapshot m)
