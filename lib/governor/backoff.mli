(** Jittered exponential backoff for reconnect loops.

    A [t] tracks the delay to use before the next attempt: it starts at
    [base], multiplies by [multiplier] per {!next} up to [cap], and each
    returned delay is scaled by a uniform factor in [[1 - jitter, 1]] so
    simultaneously disconnected peers do not reconnect in lockstep.
    {!reset} is called on success, returning the schedule to [base].

    Pure and self-contained: randomness comes from an internal LCG, so a
    fixed [seed] gives a reproducible delay sequence (tests) while
    distinct seeds (e.g. hashed from a connection address) de-correlate
    real deployments. *)

type t

val make :
  ?multiplier:float ->
  ?jitter:float ->
  ?seed:int ->
  base:float ->
  cap:float ->
  unit ->
  t
(** [make ~base ~cap ()] with delays in seconds.  Defaults: multiplier
    2.0, jitter 0.5 (delays drawn from [[d/2, d]]).  Raises
    [Invalid_argument] on a non-positive base, a cap below the base, a
    multiplier below 1 or a jitter outside [[0, 1]]. *)

val next : t -> float
(** The delay to sleep before the next attempt (jittered), advancing
    the schedule. *)

val reset : t -> unit
(** Return the schedule to [base] (call after a successful attempt). *)

val attempts : t -> int
(** {!next} calls since creation or the last {!reset}. *)
