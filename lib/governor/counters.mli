(** Search-effort counters shared by the enumeration engines.

    A search engine that accepts a [?stats] argument fills one of these in
    as it runs (the counters are cumulative: pass a freshly {!create}d
    record, or call {!reset}, to measure a single run).  The counters are
    the currency of the benchmark trajectory ([BENCH_*.json]) and of the
    differential tests comparing the pruned searches against their naive
    oracles:

    - [nodes]: search-tree nodes visited (branch points and leaves; one
      budget tick is paid per node);
    - [leaves]: complete assignments that reached the final model check;
    - [prunes]: subtrees cut before reaching any leaf (propagation
      conflict, lost support, a failed consistency filter, or a learned
      nogood firing before the subtree was entered);
    - [forced]: branch decisions avoided because propagation had already
      fixed the atom's value;
    - [models]: models emitted.

    The second group is filled only by the compiled kernel ([Solve]);
    the map-walking engines leave it at zero:

    - [propagations]: literals derived by the incremental propagator;
    - [conflicts]: propagation conflicts analysed;
    - [learned]: nogoods recorded from conflict analysis;
    - [evicted]: learned nogoods dropped by the bounded store's
      activity-based eviction;
    - [restarts]: solver restarts (state rebuilt, search position
      replayed). *)

type t = {
  mutable nodes : int;
  mutable leaves : int;
  mutable prunes : int;
  mutable forced : int;
  mutable models : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable evicted : int;
  mutable restarts : int;
}

val create : unit -> t
(** All counters at zero. *)

val reset : t -> unit

val add : into:t -> t -> unit
(** Accumulate [c] into [into] (used to total per-run counters). *)

val has_solver : t -> bool
(** Whether any compiled-kernel counter is nonzero. *)

val pp : Format.formatter -> t -> unit
(** The search counters; the solver counters are appended only when one
    of them moved, so the printed line for the pruned/naive engines is
    unchanged. *)
