(** Search-effort counters shared by the enumeration engines.

    A search engine that accepts a [?stats] argument fills one of these in
    as it runs (the counters are cumulative: pass a freshly {!create}d
    record, or call {!reset}, to measure a single run).  The counters are
    the currency of the benchmark trajectory ([BENCH_*.json]) and of the
    differential tests comparing the pruned searches against their naive
    oracles:

    - [nodes]: search-tree nodes visited (branch points and leaves; one
      budget tick is paid per node);
    - [leaves]: complete assignments that reached the final model check;
    - [prunes]: subtrees cut before reaching any leaf (propagation
      conflict, lost support, or a failed consistency filter);
    - [forced]: branch decisions avoided because propagation had already
      fixed the atom's value;
    - [models]: models emitted. *)

type t = {
  mutable nodes : int;
  mutable leaves : int;
  mutable prunes : int;
  mutable forced : int;
  mutable models : int;
}

val create : unit -> t
(** All counters at zero. *)

val reset : t -> unit

val add : into:t -> t -> unit
(** Accumulate [c] into [into] (used to total per-run counters). *)

val pp : Format.formatter -> t -> unit
