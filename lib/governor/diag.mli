(** Typed diagnostics for the solver stack.

    Library errors that previously surfaced as bare [Failure]/
    [Invalid_argument] strings are raised as [Error] carrying a structured
    {!error} variant with enough source context to be machine-handled: the
    CLI maps them to exit codes, the REPL prints them and returns to the
    prompt, and tests match on the variant rather than on message text.

    Taxonomy:

    - {!Grounding_overflow} — the instantiation cap ([max_instances]) was
      exceeded; carries the offending rule and the counts.
    - {!Eval_error} — a builtin arithmetic evaluation failed (division or
      modulo by zero).
    - {!Nonground_builtin} — a builtin literal still had free variables
      when it had to be evaluated.
    - {!Internal_invariant} — an "impossible" internal state was reached
      (e.g. an inconsistent derivation in the monotone fixpoint engine);
      carries the atom id and the two polarities involved.
    - {!Invalid_input} — a caller-facing precondition failed.
    - {!Preference_cycle} — a rule-preference declaration would make the
      combined rule order cyclic; carries the cycle as a name chain.
    - {!Read_only} — a mutation reached a KB that only follows a
      replication stream; carries the primary's printable address so the
      caller can redirect the write.
    - {!Sync_timeout} — synchronous commit could not gather the required
      replica confirmations in time; the mutation {e is} durable locally
      (and applied), only its replication guarantee is degraded. *)

type error =
  | Grounding_overflow of {
      rule : string;  (** the rule whose instances overflowed the cap *)
      produced : int;  (** instances produced when the cap tripped *)
      cap : int;
      universe : int;  (** Herbrand universe size, for context *)
    }
  | Eval_error of { op : string; detail : string }
  | Nonground_builtin of { literal : string; context : string }
  | Internal_invariant of {
      where : string;
      atom : int;  (** interned atom id involved in the breach *)
      existing : bool;  (** polarity already recorded for the atom *)
      derived : bool;  (** polarity the engine attempted to derive *)
    }
  | Invalid_input of { where : string; detail : string }
  | Preference_cycle of { cycle : string list }
      (** a [prefer] declaration (combined with the component order)
          relates a rule to itself; [cycle] is the offending chain of
          rule names / component labels, first element repeated last *)
  | Read_only of { primary : string }
      (** the write must go to [primary] (a printable address) *)
  | Sync_timeout of {
      seq : int;  (** the mutation's WAL sequence number *)
      required : int;  (** replicas that had to confirm *)
      confirmed : int;  (** replicas that did confirm in time *)
      timeout_ms : int;
    }

exception Error of error

val fail : error -> 'a
(** [fail e] raises [Error e]. *)

val invalid : where:string -> string -> 'a
(** [invalid ~where detail] raises [Error (Invalid_input _)]. *)

val to_string : error -> string
val pp : Format.formatter -> error -> unit
