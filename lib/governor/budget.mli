(** Resource governance for long-running solver paths.

    A budget bundles the limits one evaluation is allowed to consume:

    - a wall-clock {e deadline} ([timeout], seconds from creation);
    - a {e step} budget (units of solver work: fixpoint queue pops,
      enumeration nodes, grounding candidates);
    - a grounding {e instance} cap (surviving ground instances);
    - a cooperative {e cancellation} flag (flipped from another thread or a
      signal handler);
    - an optional deterministic {e fault injection} point for tests.

    Long-running loops call {!tick} (one unit of work), {!tick_instance}
    (one surviving ground instance) or {!check} (poll without consuming);
    all three raise {!Exhausted} once any limit is hit.  Exhaustion by a
    real limit is {e sticky}: every later tick re-raises, so an exhausted
    budget cannot be accidentally reused.  The clock is polled every 64
    ticks (and on the first), so deadline overshoot is bounded by 64 units
    of work.

    Enumeration entry points catch {!Exhausted} and return an {!anytime}
    value: [Complete] results, or [Partial] results found so far together
    with the machine-readable reason. *)

type reason =
  | Deadline  (** wall-clock timeout elapsed *)
  | Steps  (** step budget consumed *)
  | Instances  (** grounding-instance cap hit *)
  | Cancelled  (** cooperative cancellation flag was set *)
  | Fault  (** deterministic fault injection ({!with_trip_at}) *)

exception Exhausted of reason

type t

val make :
  ?timeout:float ->
  ?max_steps:int ->
  ?max_instances:int ->
  ?cancel:bool ref ->
  unit ->
  t
(** Fresh budget.  [timeout] is seconds from now ([0.] is already
    exhausted); omitted limits are infinite.  [cancel] lets the caller keep
    a handle on the cancellation flag. *)

val unlimited : t
(** The shared no-limit budget (the default everywhere).  Ticking it only
    advances its counters; it never raises. *)

val with_trip_at : step:int -> unit -> t
(** Deterministic fault injection: an otherwise unlimited budget whose
    [step]-th {!tick} raises [Exhausted Fault] — exactly once; subsequent
    ticks succeed.  Tests use it to force exhaustion at an exact point. *)

val tick : t -> unit
(** Count one unit of work.  Raises {!Exhausted} when a limit is hit. *)

val tick_instance : t -> unit
(** Count one surviving ground instance (checked against
    [max_instances]).  Raises {!Exhausted} when a limit is hit. *)

val check : t -> unit
(** Poll the deadline and cancellation flag without consuming a step
    (always reads the clock; use at loop-round granularity). *)

val cancel : t -> unit
(** Flip the cooperative cancellation flag: the next {!tick}/{!check}
    raises [Exhausted Cancelled]. *)

val steps : t -> int
val instances : t -> int

val exhausted : t -> reason option
(** [Some r] once the budget has tripped on a real limit (never [Fault]). *)

val reason_to_string : reason -> string
(** Machine-readable lowercase tag: ["deadline"], ["steps"],
    ["instances"], ["cancelled"], ["fault"]. *)

val pp_reason : Format.formatter -> reason -> unit

(** {1 Anytime results} *)

type 'a anytime =
  | Complete of 'a
  | Partial of 'a * reason
      (** what was found before the budget ran out, and why it stopped *)

val value : 'a anytime -> 'a
val is_complete : 'a anytime -> bool
val reason : 'a anytime -> reason option

val complete_exn : 'a anytime -> 'a
(** The value of a [Complete] result; re-raises [Exhausted] on [Partial]
    (used by queries whose partial answers would be unsound). *)

val map : ('a -> 'b) -> 'a anytime -> 'b anytime
