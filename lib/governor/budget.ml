type reason = Deadline | Steps | Instances | Cancelled | Fault

exception Exhausted of reason

type t = {
  deadline : float option;  (** absolute wall-clock time *)
  max_steps : int option;
  max_instances : int option;
  cancel_flag : bool ref;
  mutable steps : int;
  mutable instances : int;
  mutable trip_at : int;  (** fault injection step; [-1] when disarmed *)
  mutable spent : reason option;  (** sticky once a real limit trips *)
}

let make ?timeout ?max_steps ?max_instances ?cancel () =
  { deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    max_steps;
    max_instances;
    cancel_flag = (match cancel with Some c -> c | None -> ref false);
    steps = 0;
    instances = 0;
    trip_at = -1;
    spent = None
  }

let unlimited = make ()

let with_trip_at ~step () =
  let b = make () in
  b.trip_at <- step;
  b

let exhaust b r =
  b.spent <- Some r;
  raise (Exhausted r)

(* Slow path: read the clock and the cancellation flag. *)
let poll b =
  if !(b.cancel_flag) then exhaust b Cancelled;
  match b.deadline with
  | Some d when Unix.gettimeofday () > d -> exhaust b Deadline
  | _ -> ()

let resume_spent b =
  match b.spent with
  | Some r -> raise (Exhausted r)
  | None -> ()

(* Poll the clock every 64 ticks, including the very first (so a deadline
   of 0 trips before any work is done). *)
let poll_mask = 63

let tick b =
  resume_spent b;
  let s = b.steps + 1 in
  b.steps <- s;
  if b.trip_at >= 0 && s >= b.trip_at then begin
    b.trip_at <- -1;
    (* trips exactly once: [spent] stays unset *)
    raise (Exhausted Fault)
  end;
  (match b.max_steps with
  | Some m when s > m -> exhaust b Steps
  | _ -> ());
  if s land poll_mask = 1 then poll b

let tick_instance b =
  resume_spent b;
  let n = b.instances + 1 in
  b.instances <- n;
  (match b.max_instances with
  | Some m when n > m -> exhaust b Instances
  | _ -> ());
  if n land poll_mask = 1 then poll b

let check b =
  resume_spent b;
  poll b

let cancel b = b.cancel_flag := true
let steps b = b.steps
let instances b = b.instances
let exhausted b = b.spent

let reason_to_string = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Instances -> "instances"
  | Cancelled -> "cancelled"
  | Fault -> "fault"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

type 'a anytime = Complete of 'a | Partial of 'a * reason

let value = function Complete x | Partial (x, _) -> x
let is_complete = function Complete _ -> true | Partial _ -> false
let reason = function Complete _ -> None | Partial (_, r) -> Some r

let complete_exn = function
  | Complete x -> x
  | Partial (_, r) -> raise (Exhausted r)

let map f = function
  | Complete x -> Complete (f x)
  | Partial (x, r) -> Partial (f x, r)

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some ("Budget.Exhausted(" ^ reason_to_string r ^ ")")
    | _ -> None)
