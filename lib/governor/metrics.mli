(** Named monotonic counters and high-water gauges for server-side
    observability.

    A registry is a flat map from names to integers, safe to update from
    several threads and domains: each counter is an atomic cell, so
    bumping one is a single lock-free read-modify-write and never blocks
    a concurrent reader — the lock-free snapshot-read path of the query
    server bumps these counters without holding any lock.  A registry
    mutex serializes only the first registration of each name.  The
    query server
    threads one registry through its accept loop, worker pool and request
    engine, and reports a {!snapshot} through the wire protocol's [stats]
    verb — so the counters must be cheap enough to bump on every request
    and deterministic given a fixed request history (no clocks, no
    randomness).

    Counters ([incr], [add]) only grow; gauges ([gauge_max]) record the
    high-water mark of a level that rises and falls (queue depth, active
    workers).  Reading a name that was never written returns 0. *)

type t

val create : unit -> t
(** Empty registry. *)

val incr : t -> string -> unit
(** [incr m name] adds 1 to the counter [name]. *)

val add : t -> string -> int -> unit
(** [add m name n] adds [n] (which must be non-negative) to [name]. *)

val gauge_max : t -> string -> int -> unit
(** [gauge_max m name level] records [level] if it exceeds the recorded
    high-water mark of [name]. *)

val get : t -> string -> int
(** Current value ([0] for an unknown name). *)

val snapshot : t -> (string * int) list
(** All (name, value) pairs, sorted by name.  Each value is read
    atomically; a snapshot taken while no updates are in flight (e.g.
    a sequential test driving the server one request at a time) is
    exact, which is what keeps the [stats] verb deterministic. *)

val pp : Format.formatter -> t -> unit
(** ["name=value name=value ..."] in snapshot order. *)
