type error =
  | Grounding_overflow of {
      rule : string;
      produced : int;
      cap : int;
      universe : int;
    }
  | Eval_error of { op : string; detail : string }
  | Nonground_builtin of { literal : string; context : string }
  | Internal_invariant of {
      where : string;
      atom : int;
      existing : bool;
      derived : bool;
    }
  | Invalid_input of { where : string; detail : string }
  | Preference_cycle of { cycle : string list }
  | Read_only of { primary : string }
  | Sync_timeout of {
      seq : int;
      required : int;
      confirmed : int;
      timeout_ms : int;
    }

exception Error of error

let fail e = raise (Error e)
let invalid ~where detail = fail (Invalid_input { where; detail })
let polarity b = if b then "positive" else "negative"

let to_string = function
  | Grounding_overflow { rule; produced; cap; universe } ->
    Printf.sprintf
      "grounding overflow: %d ground instances exceed the cap of %d \
       (universe size %d); last rule instantiated: %s"
      produced cap universe rule
  | Eval_error { op; detail } ->
    Printf.sprintf "evaluation error in %s: %s" op detail
  | Nonground_builtin { literal; context } ->
    Printf.sprintf "%s: builtin literal %s is not ground" context literal
  | Internal_invariant { where; atom; existing; derived } ->
    Printf.sprintf
      "internal invariant breached in %s: atom #%d is already %s but a %s \
       derivation was attempted (please report this)"
      where atom (polarity existing) (polarity derived)
  | Invalid_input { where; detail } -> Printf.sprintf "%s: %s" where detail
  | Preference_cycle { cycle } ->
    Printf.sprintf
      "preference cycle: %s — the combined rule order (component order \
       plus prefer declarations) must be a strict partial order"
      (String.concat " > " cycle)
  | Read_only { primary } ->
    Printf.sprintf
      "knowledge base is read-only: this server replicates from %s; send \
       writes to the primary"
      primary
  | Sync_timeout { seq; required; confirmed; timeout_ms } ->
    Printf.sprintf
      "synchronous commit timed out: mutation %d is durable locally but \
       only %d of the %d required replica(s) confirmed it within %d ms"
      seq confirmed required timeout_ms

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Diag.Error: " ^ to_string e)
    | _ -> None)
