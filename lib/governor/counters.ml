type t = {
  mutable nodes : int;
  mutable leaves : int;
  mutable prunes : int;
  mutable forced : int;
  mutable models : int;
}

let create () = { nodes = 0; leaves = 0; prunes = 0; forced = 0; models = 0 }

let reset c =
  c.nodes <- 0;
  c.leaves <- 0;
  c.prunes <- 0;
  c.forced <- 0;
  c.models <- 0

let add ~into c =
  into.nodes <- into.nodes + c.nodes;
  into.leaves <- into.leaves + c.leaves;
  into.prunes <- into.prunes + c.prunes;
  into.forced <- into.forced + c.forced;
  into.models <- into.models + c.models

let pp ppf c =
  Format.fprintf ppf
    "%d nodes, %d leaves, %d pruned subtrees, %d forced branches, %d models"
    c.nodes c.leaves c.prunes c.forced c.models
