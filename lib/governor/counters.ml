type t = {
  mutable nodes : int;
  mutable leaves : int;
  mutable prunes : int;
  mutable forced : int;
  mutable models : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable evicted : int;
  mutable restarts : int;
}

let create () =
  { nodes = 0;
    leaves = 0;
    prunes = 0;
    forced = 0;
    models = 0;
    propagations = 0;
    conflicts = 0;
    learned = 0;
    evicted = 0;
    restarts = 0
  }

let reset c =
  c.nodes <- 0;
  c.leaves <- 0;
  c.prunes <- 0;
  c.forced <- 0;
  c.models <- 0;
  c.propagations <- 0;
  c.conflicts <- 0;
  c.learned <- 0;
  c.evicted <- 0;
  c.restarts <- 0

let add ~into c =
  into.nodes <- into.nodes + c.nodes;
  into.leaves <- into.leaves + c.leaves;
  into.prunes <- into.prunes + c.prunes;
  into.forced <- into.forced + c.forced;
  into.models <- into.models + c.models;
  into.propagations <- into.propagations + c.propagations;
  into.conflicts <- into.conflicts + c.conflicts;
  into.learned <- into.learned + c.learned;
  into.evicted <- into.evicted + c.evicted;
  into.restarts <- into.restarts + c.restarts

let has_solver c =
  c.propagations <> 0 || c.conflicts <> 0 || c.learned <> 0 || c.evicted <> 0
  || c.restarts <> 0

let pp ppf c =
  Format.fprintf ppf
    "%d nodes, %d leaves, %d pruned subtrees, %d forced branches, %d models"
    c.nodes c.leaves c.prunes c.forced c.models;
  (* the solver counters exist only for the compiled kernel; the printed
     line for the pruned/naive engines is a cram-pinned contract, so they
     are appended only when one of them moved *)
  if has_solver c then
    Format.fprintf ppf
      "; solver: %d propagations, %d conflicts, %d learned nogoods (%d \
       evicted), %d restarts"
      c.propagations c.conflicts c.learned c.evicted c.restarts
