(* Jittered exponential backoff; see backoff.mli.  The jitter comes
   from a self-contained LCG (same constants as the test fuzzers) so the
   module needs no RNG dependency and a seeded instance is reproducible
   in tests. *)

type t = {
  base : float;
  cap : float;
  multiplier : float;
  jitter : float;
  mutable current : float;  (* next un-jittered delay *)
  mutable attempts : int;
  mutable state : int;  (* LCG state *)
}

let make ?(multiplier = 2.) ?(jitter = 0.5) ?(seed = 0x2545F491) ~base ~cap
    () =
  if base <= 0. then invalid_arg "Backoff.make: base must be positive";
  if cap < base then invalid_arg "Backoff.make: cap below base";
  if multiplier < 1. then invalid_arg "Backoff.make: multiplier below 1";
  if jitter < 0. || jitter > 1. then
    invalid_arg "Backoff.make: jitter outside [0, 1]";
  { base; cap; multiplier; jitter; current = base; attempts = 0;
    state = seed lor 1 }

(* one LCG step, mapped to a uniform float in [0, 1) *)
let unit_float t =
  t.state <- ((t.state * 1664525) + 1013904223) land 0x3FFFFFFF;
  float_of_int t.state /. float_of_int 0x40000000

let next t =
  let d = t.current in
  t.current <- Float.min t.cap (t.current *. t.multiplier);
  t.attempts <- t.attempts + 1;
  (* full-jitter style, bounded: scale the delay by a factor drawn
     uniformly from [1 - jitter, 1], so delays never exceed the cap and
     herds of reconnecting replicas spread out *)
  let scale = 1. -. (t.jitter *. unit_float t) in
  d *. scale

let reset t =
  t.current <- t.base;
  t.attempts <- 0

let attempts t = t.attempts
