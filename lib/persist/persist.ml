(* Data-directory orchestration over Wal and Record; see persist.mli for
   the layout, the snapshot/WAL ordering invariant and the recovery
   contract. *)

module Metrics = Governor.Metrics
module Crc32 = Crc32
module Record = Record
module Wal = Wal

type config = {
  dir : string;
  fsync : bool;
  snapshot_every : int;
  group_commit_ms : int;
}

type torn = {
  segment : string;
  offset : int;
  dropped : int;
  detail : string;
}

type recovery = {
  base : int;
  seq : int;
  epoch : int;
  replayed : int;
  torn : torn option;
  cut : torn option;
  corrupt_snapshots : int;
  tmp_swept : int;
}

type t = {
  config : config;
  store : Kb.Store.t;
  metrics : Metrics.t option;
  mutable wal : Wal.t;
  mutable base : int;  (** base of the active segment *)
  mutable seq : int;  (** mutations logged so far *)
  mutable epoch : int;  (** replication epoch (fencing term) *)
  group : Wal.Group.group option;
  report : recovery;
}

(* ------------------------------------------------------------------ *)
(* Naming and small helpers                                            *)
(* ------------------------------------------------------------------ *)

let wal_name base = Printf.sprintf "wal-%012d.log" base
let snap_name seq = Printf.sprintf "snapshot-%012d.snap" seq

let parse_num ~prefix ~suffix name =
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if
    n > pl + sl
    && String.sub name 0 pl = prefix
    && String.sub name (n - sl) sl = suffix
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub name pl (n - pl - sl))
  then int_of_string_opt (String.sub name pl (n - pl - sl))
  else None

let snap_seq = parse_num ~prefix:"snapshot-" ~suffix:".snap"
let wal_base = parse_num ~prefix:"wal-" ~suffix:".log"

let rec mkdirs dir =
  if dir <> "" && dir <> Filename.dirname dir && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count metrics name n =
  match metrics with Some m -> Metrics.add m name n | None -> ()

let bump metrics name = count metrics name 1

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let open_dir ?metrics ?stop_at config =
  mkdirs config.dir;
  let entries = Sys.readdir config.dir in
  let tmp_swept = ref 0 in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then begin
        (try Sys.remove (Filename.concat config.dir name)
         with Sys_error _ -> ());
        incr tmp_swept
      end)
    entries;
  let snaps =
    Array.to_list entries
    |> List.filter_map snap_seq
    |> List.sort (fun a b -> compare b a)
  in
  (* point-in-time recovery must start from a snapshot at or below the
     target; newer ones are not corrupt, just unusable for this replay *)
  let usable_snaps =
    match stop_at with
    | None -> snaps
    | Some n -> List.filter (fun s -> s <= n) snaps
  in
  let wals = Array.to_list entries |> List.filter_map wal_base in
  let corrupt = ref 0 in
  (* newest snapshot whose CRC (and name/seq agreement) checks out *)
  let rec pick = function
    | [] -> None
    | s :: rest -> (
      let path = Filename.concat config.dir (snap_name s) in
      match read_whole path with
      | exception Sys_error _ ->
        incr corrupt;
        pick rest
      | img -> (
        match Record.decode_snapshot img with
        | Ok (seq, epoch, dump) when seq = s -> Some (seq, epoch, dump)
        | Ok _ | Error _ ->
          incr corrupt;
          pick rest))
  in
  (* the recovered epoch is the highest term seen anywhere in the
     directory — a crash between "start fresh segment at epoch e+1" and
     "rename the epoch-e+1 snapshot into place" must still come back as
     epoch e+1, or a revived primary could shed its fencing *)
  let epoch = ref 0 in
  let base, store =
    match pick usable_snaps with
    | Some (s, ep, dump) ->
      epoch := ep;
      (s, Kb.Store.of_dump dump)
    | None ->
      if (snaps <> [] || wals <> []) && not (List.mem 0 wals) then
        Governor.Diag.invalid ~where:"Persist.open_dir"
          (match stop_at with
          | Some n ->
            Printf.sprintf
              "data directory %S cannot be rewound to sequence %d: no \
               valid snapshot at or below it and the log does not reach \
               back to sequence 0"
              config.dir n
          | None ->
            Printf.sprintf
              "data directory %S has no valid snapshot and its log does \
               not reach back to sequence 0"
              config.dir)
      else (0, Kb.Store.create ())
  in
  let seq = ref base in
  let replayed = ref 0 in
  let torn = ref None in
  let cut = ref None in
  let truncated ~path ~offset ~size detail =
    Wal.truncate ~path offset;
    torn :=
      Some
        { segment = Filename.basename path; offset; dropped = size - offset;
          detail }
  in
  (* deliberate truncation at the --to-seq target: same mechanics as a
     torn tail, reported separately so callers can tell intent from
     damage *)
  let cut_at ~path ~offset ~size target =
    Wal.truncate ~path offset;
    cut :=
      Some
        { segment = Filename.basename path; offset; dropped = size - offset;
          detail =
            Printf.sprintf "history cut at sequence %d on request" target
        }
  in
  (* replay segments in base order; each clean segment of n records names
     its successor (base + n), so the chain is deterministic *)
  let rec chain cur =
    let path = Filename.concat config.dir (wal_name cur) in
    if not (Sys.file_exists path) then
      (Wal.create ~fsync:config.fsync ~base:cur ~epoch:!epoch path, cur)
    else
      match Wal.read ~path ~expect_base:cur with
      | Error detail ->
        (* unusable header: every record <= cur is already in the store,
           but anything the file held is unreadable — report it torn and
           rewrite the segment *)
        let size =
          try (Unix.stat path).st_size with Unix.Unix_error _ -> 0
        in
        torn :=
          Some { segment = Filename.basename path; offset = 0;
                 dropped = size; detail };
        (Wal.create ~fsync:config.fsync ~base:cur ~epoch:!epoch path, cur)
      | Ok rep -> (
        if rep.Wal.epoch > !epoch then epoch := rep.Wal.epoch;
        let rec apply = function
          | [] -> `Done
          | (off, m) :: rest -> (
            match stop_at with
            | Some n when !seq >= n -> `Cut off
            | _ -> (
              match Kb.Store.apply store m with
              | () ->
                incr seq;
                incr replayed;
                apply rest
              | exception e -> `Fail (off, Printexc.to_string e)))
        in
        match apply rep.mutations with
        | `Cut off ->
          cut_at ~path ~offset:off ~size:rep.size (Option.get stop_at);
          (Wal.open_append ~path, cur)
        | `Fail (off, detail) ->
          truncated ~path ~offset:off ~size:rep.size detail;
          (Wal.open_append ~path, cur)
        | `Done -> (
          match rep.torn with
          | Some detail ->
            truncated ~path ~offset:rep.good_end ~size:rep.size detail;
            (Wal.open_append ~path, cur)
          | None ->
            let n = List.length rep.mutations in
            let next = Filename.concat config.dir (wal_name (cur + n)) in
            if n > 0 && Sys.file_exists next then chain (cur + n)
            else (Wal.open_append ~path, cur)))
  in
  let wal, active_base = chain base in
  (* after a truncation — accidental or requested — files past the
     recovered point are from a lost timeline; a later recovery must not
     chain into them *)
  if !torn <> None || !cut <> None then
    Array.iter
      (fun name ->
        let stale =
          match wal_base name with
          | Some b -> b > active_base
          | None -> (
            match snap_seq name with Some s -> s > !seq | None -> false)
        in
        if stale then
          try Sys.remove (Filename.concat config.dir name)
          with Sys_error _ -> ())
      entries;
  let report =
    { base; seq = !seq; epoch = !epoch; replayed = !replayed; torn = !torn;
      cut = !cut; corrupt_snapshots = !corrupt; tmp_swept = !tmp_swept }
  in
  (match metrics with
  | Some m ->
    Metrics.add m "recovery_base" report.base;
    Metrics.add m "recovery_replayed" report.replayed;
    Metrics.add m "recovery_truncated_bytes"
      (match report.torn with Some t -> t.dropped | None -> 0);
    Metrics.add m "recovery_corrupt_snapshots" report.corrupt_snapshots;
    Metrics.add m "persist_tmp_swept" report.tmp_swept
  | None -> ());
  let group =
    if config.fsync && config.group_commit_ms > 0 then
      Some
        (Wal.Group.create ~window_ms:config.group_commit_ms
           ~on_fsync:(fun () -> bump metrics "persist_fsyncs")
           wal)
    else None
  in
  let t =
    { config; store; metrics; wal; base = active_base; seq = !seq;
      epoch = !epoch; group; report }
  in
  (t, store, report)

(* ------------------------------------------------------------------ *)
(* Appending and snapshots                                             *)
(* ------------------------------------------------------------------ *)

let snapshot ?budget t =
  (* a pending group commit still points at the old segment *)
  (match t.group with Some g -> Wal.Group.flush g | None -> ());
  let seq = t.seq in
  let image =
    Record.encode_snapshot ~seq ~epoch:t.epoch (Kb.Store.dump t.store)
  in
  let final = Filename.concat t.config.dir (snap_name seq) in
  let tmp = final ^ ".tmp" in
  (* ordering matters for crash safety: the fresh segment must be on
     disk before the snapshot becomes visible, so that snapshot-<S>
     present always implies wal-<S> present (see persist.mli) *)
  Wal.write_file ?budget ~fsync:t.config.fsync ~path:tmp image;
  let wal_path = Filename.concat t.config.dir (wal_name seq) in
  let fresh =
    Wal.create ?budget ~fsync:t.config.fsync ~base:seq ~epoch:t.epoch
      wal_path
  in
  Wal.close t.wal;
  t.wal <- fresh;
  t.base <- seq;
  (match t.group with Some g -> Wal.Group.attach g fresh | None -> ());
  Sys.rename tmp final;
  if t.config.fsync then begin
    fsync_dir t.config.dir;
    count t.metrics "persist_fsyncs" 3
  end;
  bump t.metrics "persist_snapshots";
  seq

let append ?budget t m =
  let payload = Record.encode_mutation m in
  (match t.group with
  | Some g ->
    (* group commit: write now, let the committer batch the fsync;
       callers that need durability block in [wait_durable] *)
    let n = Wal.append ?budget ~fsync:false t.wal payload in
    t.seq <- t.seq + 1;
    Wal.Group.wrote g ~seq:t.seq;
    bump t.metrics "persist_records";
    count t.metrics "persist_bytes" n
  | None ->
    let n = Wal.append ?budget ~fsync:t.config.fsync t.wal payload in
    t.seq <- t.seq + 1;
    bump t.metrics "persist_records";
    count t.metrics "persist_bytes" n;
    if t.config.fsync then bump t.metrics "persist_fsyncs");
  if t.config.snapshot_every > 0 && t.seq - t.base >= t.config.snapshot_every
  then ignore (snapshot ?budget t : int)

let wait_durable t =
  match t.group with Some g -> Wal.Group.wait g | None -> ()

let compact t =
  let s = snapshot t in
  let deleted = ref 0 in
  Array.iter
    (fun name ->
      let stale =
        Filename.check_suffix name ".tmp"
        ||
        match wal_base name with
        | Some b -> b < s
        | None -> (
          match snap_seq name with Some x -> x < s | None -> false)
      in
      if stale then
        match Sys.remove (Filename.concat t.config.dir name) with
        | () -> incr deleted
        | exception Sys_error _ -> ())
    (Sys.readdir t.config.dir);
  (s, !deleted)

(* ------------------------------------------------------------------ *)
(* Replication support                                                 *)
(* ------------------------------------------------------------------ *)

let tail t ~from ~max =
  if from >= t.seq then Ok ("", 0)
  else begin
    let bases =
      Sys.readdir t.config.dir |> Array.to_list |> List.filter_map wal_base
      |> List.sort compare
    in
    (* the newest segment whose base is at or below [from]: its records
       [from + 1 ..] are exactly where the tail starts *)
    let start =
      List.fold_left (fun acc b -> if b <= from then Some b else acc) None
        bases
    in
    match start with
    | None ->
      Error (`Too_old (match bases with b :: _ -> b | [] -> t.base))
    | Some b0 ->
      let buf = Buffer.create 4096 in
      let took = ref 0 in
      (* ship the raw framed bytes untouched: the replica re-frames
         nothing, so CRCs are verified end to end *)
      let rec seg b =
        if !took >= max then ()
        else
          match read_whole (Filename.concat t.config.dir (wal_name b)) with
          | exception Sys_error _ -> ()
          | s -> (
            match Record.decode_wal_header s with
            | Ok h when h.Record.wal_base = b ->
              let idx = ref b in
              let pos = ref h.Record.wal_head_len in
              let stop = ref false in
              while not !stop do
                match Record.unframe s ~pos:!pos with
                | Record.End | Record.Torn _ -> stop := true
                | Record.Frame { payload = _; next } ->
                  incr idx;
                  if !idx > from && !idx <= t.seq && !took < max then begin
                    Buffer.add_substring buf s !pos (next - !pos);
                    incr took
                  end;
                  pos := next;
                  if !took >= max || !idx >= t.seq then stop := true
              done;
              if
                !took < max && !idx < t.seq
                && Sys.file_exists
                     (Filename.concat t.config.dir (wal_name !idx))
              then seg !idx
            | Ok _ | Error _ -> ())
      in
      if max > 0 then seg b0;
      Ok (Buffer.contents buf, !took)
  end

let snapshot_image t =
  ( t.seq,
    Record.encode_snapshot ~seq:t.seq ~epoch:t.epoch (Kb.Store.dump t.store)
  )

let install_snapshot t ~seq ~epoch dump =
  (match t.group with Some g -> Wal.Group.flush g | None -> ());
  if epoch > t.epoch then t.epoch <- epoch;
  let final = Filename.concat t.config.dir (snap_name seq) in
  let tmp = final ^ ".tmp" in
  Wal.write_file ~fsync:t.config.fsync ~path:tmp
    (Record.encode_snapshot ~seq ~epoch:t.epoch dump);
  let wal_path = Filename.concat t.config.dir (wal_name seq) in
  let fresh =
    Wal.create ~fsync:t.config.fsync ~base:seq ~epoch:t.epoch wal_path
  in
  Wal.close t.wal;
  t.wal <- fresh;
  (match t.group with Some g -> Wal.Group.attach g fresh | None -> ());
  Sys.rename tmp final;
  if t.config.fsync then fsync_dir t.config.dir;
  (* everything else in the directory is from the replaced timeline *)
  Array.iter
    (fun name ->
      if name <> snap_name seq && name <> wal_name seq then
        try Sys.remove (Filename.concat t.config.dir name)
        with Sys_error _ -> ())
    (Sys.readdir t.config.dir);
  Kb.Store.restore t.store dump;
  t.base <- seq;
  t.seq <- seq;
  bump t.metrics "persist_snapshots"

let seq t = t.seq
let epoch t = t.epoch
let recovery t = t.report

(* Epoch changes persist through [snapshot]: the fresh segment's header
   carries the new term, and the snapshot that lands next to it does
   too, so the term survives any crash after this returns. *)
let bump_epoch t =
  t.epoch <- t.epoch + 1;
  ignore (snapshot t : int);
  t.epoch

let adopt_epoch t epoch =
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    ignore (snapshot t : int)
  end

let close t =
  (match t.group with Some g -> Wal.Group.stop g | None -> ());
  Wal.close t.wal
