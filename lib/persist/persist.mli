(** Durable knowledge bases: a write-ahead log of {!Kb.Store.mutation}s
    plus periodic snapshots in one data directory, and the recovery
    procedure that rebuilds a store from them.

    {b Layout.}  A data directory holds:

    - [wal-<base>.log] — a {!Wal} segment with the mutations numbered
      [base + 1], [base + 2], ...; the newest segment is the one appends
      go to.
    - [snapshot-<seq>.snap] — a full {!Kb.Store.dump} covering the first
      [seq] mutations, written via a [.tmp] file and an atomic rename so
      a snapshot file, once visible, is always complete (a torn one is
      detected by its CRC and skipped).

    {b Invariant.}  When [snapshot-<S>.snap] exists, every mutation
    numbered above [S] lives in [wal-<S>.log] (or a later segment): the
    fresh segment is created and synced {e before} the snapshot is
    renamed into place, so recovery from the newest valid snapshot never
    needs bytes from before that snapshot.

    {b Recovery} ({!open_dir}) sweeps leftover [.tmp] files, loads the
    newest CRC-valid snapshot (skipping corrupt ones), then replays WAL
    segments in base order.  A torn final record — the signature of a
    crash mid-append — is truncated away with a warning in the
    {!recovery} report, never an error: the store comes back as a sound
    prefix of the mutation history.  Only a directory whose snapshot
    chain is entirely corrupt {e and} whose log does not reach back to
    sequence 0 is unrecoverable ({!Diag.Error}).

    One process must own a data directory at a time; nothing enforces
    this (no lock file), matching the single-daemon deployment the
    server targets. *)

module Crc32 = Crc32
module Record = Record
module Wal = Wal

type config = {
  dir : string;  (** the data directory (created if missing) *)
  fsync : bool;
      (** flush every append and snapshot to stable storage before
          acknowledging ([true] for durability; [false] trades crash
          safety of the tail for speed) *)
  snapshot_every : int;
      (** write a snapshot automatically once this many mutations
          accumulate past the last one; [0] disables automatic
          snapshots *)
}

type torn = {
  segment : string;  (** basename of the segment that was cut *)
  offset : int;  (** file offset the segment was truncated to *)
  dropped : int;  (** bytes discarded *)
  detail : string;  (** what was wrong with them *)
}

type recovery = {
  base : int;  (** sequence number the starting snapshot covered *)
  seq : int;  (** sequence number after replay — mutations recovered *)
  replayed : int;  (** WAL records applied ([seq - base]) *)
  torn : torn option;  (** set when a torn tail was truncated away *)
  corrupt_snapshots : int;  (** snapshot files skipped for bad CRC *)
  tmp_swept : int;  (** leftover [.tmp] files deleted *)
}

type t

val open_dir : ?metrics:Governor.Metrics.t -> config -> t * Kb.Store.t * recovery
(** Recover (or initialise) a data directory and open it for appending.
    The returned store reflects every recoverable mutation; keep
    mutating it {e through} {!append} (or a {!Kb.Session} whose
    [on_mutation] observer calls {!append}) so log and store stay in
    step.  [metrics] receives the [persist_*] / [recovery_*] counters.
    Raises {!Diag.Error} when the directory exists but cannot be
    recovered. *)

val append : ?budget:Governor.Budget.t -> t -> Kb.Store.mutation -> unit
(** Log one mutation (which the caller has already applied to the
    store).  Triggers an automatic {!snapshot} when [snapshot_every] is
    reached.  [budget] is fault injection for tests, as in {!Wal}. *)

val snapshot : ?budget:Governor.Budget.t -> t -> int
(** Write a snapshot at the current sequence number and start a fresh
    WAL segment; returns the sequence number covered.  Old files are
    kept (see {!compact}). *)

val compact : t -> int * int
(** {!snapshot}, then delete every segment and snapshot made obsolete by
    it (and stray [.tmp] files).  Returns [(seq, files_deleted)]. *)

val seq : t -> int
(** Mutations logged so far (recovered + appended). *)

val recovery : t -> recovery
(** The report from the {!open_dir} that produced this handle. *)

val close : t -> unit
