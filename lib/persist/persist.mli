(** Durable knowledge bases: a write-ahead log of {!Kb.Store.mutation}s
    plus periodic snapshots in one data directory, and the recovery
    procedure that rebuilds a store from them.

    {b Layout.}  A data directory holds:

    - [wal-<base>.log] — a {!Wal} segment with the mutations numbered
      [base + 1], [base + 2], ...; the newest segment is the one appends
      go to.
    - [snapshot-<seq>.snap] — a full {!Kb.Store.dump} covering the first
      [seq] mutations, written via a [.tmp] file and an atomic rename so
      a snapshot file, once visible, is always complete (a torn one is
      detected by its CRC and skipped).

    {b Invariant.}  When [snapshot-<S>.snap] exists, every mutation
    numbered above [S] lives in [wal-<S>.log] (or a later segment): the
    fresh segment is created and synced {e before} the snapshot is
    renamed into place, so recovery from the newest valid snapshot never
    needs bytes from before that snapshot.

    {b Recovery} ({!open_dir}) sweeps leftover [.tmp] files, loads the
    newest CRC-valid snapshot (skipping corrupt ones), then replays WAL
    segments in base order.  A torn final record — the signature of a
    crash mid-append — is truncated away with a warning in the
    {!recovery} report, never an error: the store comes back as a sound
    prefix of the mutation history.  Only a directory whose snapshot
    chain is entirely corrupt {e and} whose log does not reach back to
    sequence 0 is unrecoverable ({!Diag.Error}).

    One process must own a data directory at a time; nothing enforces
    this (no lock file), matching the single-daemon deployment the
    server targets. *)

module Crc32 = Crc32
module Record = Record
module Wal = Wal

type config = {
  dir : string;  (** the data directory (created if missing) *)
  fsync : bool;
      (** flush every append and snapshot to stable storage before
          acknowledging ([true] for durability; [false] trades crash
          safety of the tail for speed) *)
  snapshot_every : int;
      (** write a snapshot automatically once this many mutations
          accumulate past the last one; [0] disables automatic
          snapshots *)
  group_commit_ms : int;
      (** batch fsyncs: appends within this window share one fsync via a
          background committer ({!Wal.Group}), and durability is reached
          in {!wait_durable} rather than inside {!append}.  [0] keeps
          the synchronous fsync-per-append path; ignored when [fsync]
          is [false]. *)
}

type torn = {
  segment : string;  (** basename of the segment that was cut *)
  offset : int;  (** file offset the segment was truncated to *)
  dropped : int;  (** bytes discarded *)
  detail : string;  (** what was wrong with them *)
}

type recovery = {
  base : int;  (** sequence number the starting snapshot covered *)
  seq : int;  (** sequence number after replay — mutations recovered *)
  epoch : int;
      (** replication epoch: the highest term found in any snapshot or
          segment header (0 for directories that predate fencing) *)
  replayed : int;  (** WAL records applied ([seq - base]) *)
  torn : torn option;  (** set when a torn tail was truncated away *)
  cut : torn option;
      (** set when replay stopped at a requested [stop_at] sequence and
          the history past it was truncated away (point-in-time
          recovery) — deliberate, unlike [torn] *)
  corrupt_snapshots : int;  (** snapshot files skipped for bad CRC *)
  tmp_swept : int;  (** leftover [.tmp] files deleted *)
}

type t

val open_dir :
  ?metrics:Governor.Metrics.t -> ?stop_at:int -> config ->
  t * Kb.Store.t * recovery
(** Recover (or initialise) a data directory and open it for appending.
    The returned store reflects every recoverable mutation; keep
    mutating it {e through} {!append} (or a {!Kb.Session} whose
    [on_mutation] observer calls {!append}) so log and store stay in
    step.  [metrics] receives the [persist_*] / [recovery_*] counters.
    [stop_at] is point-in-time recovery: replay halts after that many
    mutations, the log past it is truncated away (reported in
    [recovery.cut]) and files from the abandoned suffix are deleted, so
    the directory reopens stably at the rewound state.  Raises
    {!Diag.Error} when the directory exists but cannot be recovered
    (including a [stop_at] below every snapshot when the log does not
    reach sequence 0). *)

val append : ?budget:Governor.Budget.t -> t -> Kb.Store.mutation -> unit
(** Log one mutation (which the caller has already applied to the
    store).  Triggers an automatic {!snapshot} when [snapshot_every] is
    reached.  [budget] is fault injection for tests, as in {!Wal}. *)

val snapshot : ?budget:Governor.Budget.t -> t -> int
(** Write a snapshot at the current sequence number and start a fresh
    WAL segment; returns the sequence number covered.  Old files are
    kept (see {!compact}). *)

val compact : t -> int * int
(** {!snapshot}, then delete every segment and snapshot made obsolete by
    it (and stray [.tmp] files).  Returns [(seq, files_deleted)]. *)

val wait_durable : t -> unit
(** Block until every {!append} issued so far is on stable storage.
    Immediate without group commit (appends were synchronous) — with it,
    this is where a writer pays the (shared) fsync latency. *)

(** {1 Replication support}

    A primary serves its log and state to replicas through these; they
    read the same on-disk segments recovery does, so what ships is
    exactly what a local crash recovery would replay. *)

val tail :
  t -> from:int -> max:int ->
  (string * int, [ `Too_old of int ]) result
(** [tail t ~from ~max] returns up to [max] raw framed WAL records
    numbered [from + 1 ...], concatenated byte-for-byte as they sit on
    disk (the receiver walks them with {!Record.unframe}, CRCs intact),
    with the count taken.  [Ok ("", 0)] when the log has nothing past
    [from].  [Error (`Too_old base)] when compaction has dropped the
    requested range — the oldest retained segment starts at [base];
    fetch a snapshot instead. *)

val snapshot_image : t -> int * string
(** The current state as [(seq, image)] where [image] is a
    {!Record.encode_snapshot} encoding — what a replica bootstraps
    from. *)

val install_snapshot : t -> seq:int -> epoch:int -> Kb.Store.dump -> unit
(** Replace the store {e and} the data directory with a snapshot: the
    image is written durably, a fresh WAL segment starts at [seq],
    every file from the old timeline is deleted, and the live store is
    {!Kb.Store.restore}d in place.  The replica bootstrap path.
    [epoch] raises the local term if greater (never lowers it). *)

val seq : t -> int
(** Mutations logged so far (recovered + appended). *)

(** {1 Epoch fencing}

    The epoch is a monotonically increasing term stamped into every
    snapshot and segment header.  Promotion bumps it; replication
    carries it on the wire so a deposed primary (lower term) can be
    refused.  Both mutators persist the new term immediately via
    {!snapshot}, so a crash cannot roll an epoch back. *)

val epoch : t -> int
(** The current replication epoch. *)

val bump_epoch : t -> int
(** Increment the epoch durably (promotion); returns the new term. *)

val adopt_epoch : t -> int -> unit
(** Raise the local epoch to a term learned from upstream; durable.
    A term at or below the current one is a no-op. *)

val recovery : t -> recovery
(** The report from the {!open_dir} that produced this handle. *)

val close : t -> unit
(** Flush (stopping the group committer if any) and close the active
    segment. *)
