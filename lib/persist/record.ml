(* Binary codecs for WAL records and snapshots; see record.mli for the
   grammar.  Encoders build strings in a Buffer; decoders walk a string
   with explicit bounds checks and report failures as [Error], never as
   an exception. *)

let max_payload = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                   *)
(* ------------------------------------------------------------------ *)

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xFF))

let put_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Record: u32 out of range (%d)" n);
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let put_u64 buf n =
  if n < 0 then invalid_arg "Record: u64 out of range";
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put items =
  put_u32 buf (List.length items);
  List.iter (put buf) items

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type reader = { src : string; mutable pos : int; stop : int }

let need r n =
  if r.stop - r.pos < n then
    corrupt "truncated record (need %d byte(s) at offset %d)" n r.pos

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.src.[r.pos + i]
  done;
  r.pos <- r.pos + 4;
  !v

let get_u64 r =
  need r 8;
  let v = ref 0 in
  for i = 7 downto 0 do
    let b = Char.code r.src.[r.pos + i] in
    if i = 7 && b > 0x3F then corrupt "u64 out of native int range";
    v := (!v lsl 8) lor b
  done;
  r.pos <- r.pos + 8;
  !v

let get_str r =
  let n = get_u32 r in
  if n > max_payload then corrupt "implausible string length %d" n;
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get =
  let n = get_u32 r in
  if n > max_payload then corrupt "implausible list count %d" n;
  List.init n (fun _ -> get r)

let get_rule r =
  let s = get_str r in
  match Lang.Parser.parse_rule s with
  | rule -> rule
  | exception (Lang.Lexer.Error (m, _) | Lang.Parser.Error (m, _)) ->
    corrupt "unparsable rule %S: %s" s m
  | exception (Invalid_argument m | Failure m) ->
    corrupt "unparsable rule %S: %s" s m

let finished r what =
  if r.pos <> r.stop then
    corrupt "%d trailing byte(s) after %s" (r.stop - r.pos) what

(* ------------------------------------------------------------------ *)
(* Mutation payloads                                                   *)
(* ------------------------------------------------------------------ *)

let put_rule buf rule = put_str buf (Logic.Rule.to_string rule)

let encode_mutation m =
  let buf = Buffer.create 128 in
  (match (m : Kb.Store.mutation) with
  | Define { name; isa; rules } ->
    put_u8 buf 0x01;
    put_str buf name;
    put_list buf put_str isa;
    put_list buf put_rule rules
  | Add_rule { obj; rule } ->
    put_u8 buf 0x02;
    put_str buf obj;
    put_rule buf rule
  | Remove_rule { obj; rule } ->
    put_u8 buf 0x03;
    put_str buf obj;
    put_rule buf rule
  | New_version { name; rules } ->
    put_u8 buf 0x04;
    put_str buf name;
    (match rules with
    | None -> put_u8 buf 0
    | Some rs ->
      put_u8 buf 1;
      put_list buf put_rule rs)
  | Load { src } ->
    put_u8 buf 0x05;
    put_str buf src
  | Set_preference { rule; over } ->
    put_u8 buf 0x06;
    put_str buf rule;
    put_str buf over
  | Clear_preference { rule; over } ->
    put_u8 buf 0x07;
    put_str buf rule;
    put_str buf over);
  Buffer.contents buf

let decode_mutation s =
  let r = { src = s; pos = 0; stop = String.length s } in
  match
    let m : Kb.Store.mutation =
      match get_u8 r with
      | 0x01 ->
        let name = get_str r in
        let isa = get_list r get_str in
        let rules = get_list r get_rule in
        Define { name; isa; rules }
      | 0x02 ->
        let obj = get_str r in
        Add_rule { obj; rule = get_rule r }
      | 0x03 ->
        let obj = get_str r in
        Remove_rule { obj; rule = get_rule r }
      | 0x04 ->
        let name = get_str r in
        let rules =
          match get_u8 r with
          | 0 -> None
          | 1 -> Some (get_list r get_rule)
          | b -> corrupt "bad option tag 0x%02x" b
        in
        New_version { name; rules }
      | 0x05 -> Load { src = get_str r }
      | 0x06 ->
        let rule = get_str r in
        Set_preference { rule; over = get_str r }
      | 0x07 ->
        let rule = get_str r in
        Clear_preference { rule; over = get_str r }
      | tag -> corrupt "unknown record tag 0x%02x" tag
    in
    finished r "mutation";
    m
  with
  | m -> Ok m
  | exception Corrupt msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type unframed =
  | Frame of { payload : string; next : int }
  | End
  | Torn of string

let read_u32_at s pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let unframe s ~pos =
  let n = String.length s in
  if pos = n then End
  else if n - pos < 8 then
    Torn (Printf.sprintf "short frame header (%d byte(s))" (n - pos))
  else begin
    let len = read_u32_at s pos in
    let crc = read_u32_at s (pos + 4) in
    if len > max_payload then
      Torn (Printf.sprintf "implausible payload length %d" len)
    else if n - pos - 8 < len then
      Torn
        (Printf.sprintf "short payload (%d of %d byte(s))" (n - pos - 8) len)
    else if Crc32.sub s ~pos:(pos + 8) ~len <> crc then
      Torn "CRC mismatch"
    else Frame { payload = String.sub s (pos + 8) len; next = pos + 8 + len }
  end

(* ------------------------------------------------------------------ *)
(* WAL header                                                          *)
(* ------------------------------------------------------------------ *)

(* Version 1 headers carry only the base sequence; version 2 adds the
   replication epoch.  Writers emit v2; readers accept both (v1 files
   predate fencing and implicitly belong to epoch 0). *)
let wal_magic_v1 = "OLPWAL1\n"
let wal_magic = "OLPWAL2\n"
let wal_header_len = String.length wal_magic + 16

type wal_head = { wal_base : int; wal_epoch : int; wal_head_len : int }

let wal_header ~base ~epoch =
  let buf = Buffer.create wal_header_len in
  Buffer.add_string buf wal_magic;
  put_u64 buf base;
  put_u64 buf epoch;
  Buffer.contents buf

let decode_wal_header s =
  let ml = String.length wal_magic in
  if String.length s < ml then Error "short WAL header"
  else
    let magic = String.sub s 0 ml in
    let fields ~epoch ~len =
      if String.length s < len then Error "short WAL header"
      else
        let r = { src = s; pos = ml; stop = len } in
        match
          let base = get_u64 r in
          let ep = if epoch then get_u64 r else 0 in
          (base, ep)
        with
        | base, ep ->
          Ok { wal_base = base; wal_epoch = ep; wal_head_len = len }
        | exception Corrupt msg -> Error msg
    in
    if magic = wal_magic then fields ~epoch:true ~len:(ml + 16)
    else if magic = wal_magic_v1 then fields ~epoch:false ~len:(ml + 8)
    else Error "bad WAL magic"

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Same versioning story as the WAL header: v2 snapshots carry the
   epoch after the sequence number (v1 decodes as epoch 0); v3 appends
   the preference pairs after the version counters (v1/v2 decode with no
   preferences). *)
let snapshot_magic_v1 = "OLPSNAP1"
let snapshot_magic_v2 = "OLPSNAP2"
let snapshot_magic = "OLPSNAP3"

let encode_snapshot ~seq ~epoch (d : Kb.Store.dump) =
  let buf = Buffer.create 1024 in
  put_u64 buf seq;
  put_u64 buf epoch;
  put_list buf
    (fun buf (name, parents, rules) ->
      put_str buf name;
      put_list buf put_str parents;
      put_list buf put_rule rules)
    d.dump_objs;
  put_list buf
    (fun buf (base, latest) ->
      put_str buf base;
      put_str buf latest)
    d.dump_latest;
  put_list buf
    (fun buf (base, count) ->
      put_str buf base;
      put_u32 buf count)
    d.dump_counts;
  put_list buf
    (fun buf (rule, over) ->
      put_str buf rule;
      put_str buf over)
    d.dump_prefs;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 16) in
  Buffer.add_string out snapshot_magic;
  put_u32 out (String.length payload);
  put_u32 out (Crc32.string payload);
  Buffer.add_string out payload;
  Buffer.contents out

let decode_snapshot s =
  let m = String.length snapshot_magic in
  let versioned =
    if String.length s < m then None
    else
      match String.sub s 0 m with
      | v when v = snapshot_magic -> Some 3
      | v when v = snapshot_magic_v2 -> Some 2
      | v when v = snapshot_magic_v1 -> Some 1
      | _ -> None
  in
  match versioned with
  | None -> Error "bad snapshot magic"
  | Some version -> (
    let has_epoch = version >= 2 in
    let has_prefs = version >= 3 in
    match unframe s ~pos:m with
    | End -> Error "empty snapshot"
    | Torn msg -> Error msg
    | Frame { payload; next } ->
      if next <> String.length s then
        Error "trailing bytes after snapshot payload"
      else
        let r = { src = payload; pos = 0; stop = String.length payload } in
        (match
           let seq = get_u64 r in
           let epoch = if has_epoch then get_u64 r else 0 in
           let dump_objs =
             get_list r (fun r ->
                 let name = get_str r in
                 let parents = get_list r get_str in
                 let rules = get_list r get_rule in
                 (name, parents, rules))
           in
           let dump_latest =
             get_list r (fun r ->
                 let base = get_str r in
                 let latest = get_str r in
                 (base, latest))
           in
           let dump_counts =
             get_list r (fun r ->
                 let base = get_str r in
                 let count = get_u32 r in
                 (base, count))
           in
           let dump_prefs =
             if has_prefs then
               get_list r (fun r ->
                   let rule = get_str r in
                   let over = get_str r in
                   (rule, over))
             else []
           in
           finished r "snapshot";
           ( seq,
             epoch,
             { Kb.Store.dump_objs; dump_latest; dump_counts; dump_prefs } )
         with
        | v -> Ok v
        | exception Corrupt msg -> Error msg))
