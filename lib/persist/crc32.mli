(** CRC-32 (IEEE 802.3, reflected, as in zip/gzip/Ethernet), hand-rolled
    so the write-ahead log has an end-to-end integrity check without any
    external dependency.  A 32-bit CRC detects all single- and double-bit
    errors and all burst errors up to 32 bits in a record — the
    corruption modes a torn or bit-rotted log tail actually exhibits. *)

val string : string -> int
(** [string s] is the CRC-32 of [s], in [0, 0xFFFF_FFFF]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring, without copying. *)
