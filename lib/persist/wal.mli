(** One write-ahead-log segment file: the {!Record} codec put on disk.

    A segment [wal-<base>.log] holds the mutations numbered [base + 1],
    [base + 2], ... (the numbering is implicit — records carry no
    sequence field; the header carries [base]).  Appends go through an
    open descriptor; reads parse a whole file and report exactly how far
    the valid prefix extends, so recovery can truncate a torn tail.

    {b Fault injection.}  [append] and [create] take an optional
    {!Governor.Budget.t} and tick it before {e every} low-level write (in
    16-byte chunks when a budget is armed), so
    [Governor.Budget.with_trip_at] can kill the process image at any
    byte boundary of a record — the crash-recovery tests sweep every such
    point.  Without a budget, writes go in large chunks. *)

type t

val create : ?budget:Governor.Budget.t -> fsync:bool -> base:int ->
  epoch:int -> string -> t
(** [create ~fsync ~base ~epoch path] creates (or truncates) a segment
    and writes its header (base sequence and replication epoch). *)

val open_append : path:string -> t
(** Open an existing segment for appending (no validation — recovery has
    already read and possibly truncated it). *)

val append :
  ?budget:Governor.Budget.t -> fsync:bool -> t -> string -> int
(** [append ~fsync t payload] frames and appends one record; returns the
    bytes written.  [fsync] flushes to stable storage before
    returning. *)

val fsync : t -> unit
val close : t -> unit

val write_file :
  ?budget:Governor.Budget.t -> fsync:bool -> path:string -> string -> unit
(** Write a whole file image from scratch (snapshot temp files), chunked
    and budget-ticked exactly like {!append}. *)

(** {1 Reading} *)

type replay = {
  mutations : (int * Kb.Store.mutation) list;
      (** (frame start offset, mutation), in log order *)
  good_end : int;  (** offset just past the last valid record *)
  size : int;  (** file size as read *)
  torn : string option;
      (** why the bytes in [good_end, size) were given up on *)
  epoch : int;  (** replication epoch from the segment header *)
}

val read : path:string -> expect_base:int -> (replay, string) result
(** Parse a whole segment.  [Error] only for an unreadable file or a
    header that is missing, malformed or carries the wrong base — in
    which case the caller treats the whole file as torn.  Everything
    after the header degrades gracefully: the valid prefix comes back in
    [mutations] and a bad tail is described in [torn], never raised. *)

val truncate : path:string -> int -> unit
(** Cut a file at an offset (recovery dropping a torn tail). *)

(** {1 Group commit}

    A background committer that batches fsyncs: appenders write records
    with [fsync:false], report the sequence number they reached with
    {!Group.wrote}, and block in {!Group.wait} until the committer has
    flushed past it.  After noticing work the committer gathers appends
    for up to the configured window — but flushes immediately once a
    writer blocks on durability, so the window bounds added latency
    without taxing a fast disk; concurrent waiters still share fsyncs
    because appends landing during an in-flight flush ride the next
    one. *)

module Group : sig
  type group

  val create : window_ms:int -> ?on_fsync:(unit -> unit) -> t -> group
  (** Start the committer over the given active segment.  [on_fsync]
      runs (with the group lock held) after each flush — metrics
      accounting. *)

  val attach : group -> t -> unit
  (** Point the committer at a new active segment after a rotation.
      Call {!flush} first: durability of the old segment is the
      caller's responsibility. *)

  val wrote : group -> seq:int -> unit
  (** Record that the log now contains everything up to [seq] and wake
      the committer. *)

  val wait : group -> unit
  (** Block until everything {!wrote} so far is durable (returns
      immediately once {!stop} has run). *)

  val flush : group -> unit
  (** Synchronously flush pending appends on the caller's thread (used
      before segment rotation and on close). *)

  val stop : group -> unit
  (** Final flush, then terminate and join the committer.  Idempotent. *)
end
