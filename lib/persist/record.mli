(** The durable record codec: hand-rolled binary encodings for WAL
    records and snapshots, in the same spirit as the wire codec
    ({!Server.Wire}) — pure, total on the decode side, and fuzzable
    without touching a file descriptor.

    {b Grammar} (all integers little-endian; [str] is a [u32] length
    followed by that many bytes; [list x] is a [u32] count followed by
    that many [x]):

    {v
    frame     = u32 payload_len | u32 crc32(payload) | payload
    payload   = 0x01 | str name | list str isa   | list str rules   define
              | 0x02 | str obj  | str rule                          add_rule
              | 0x03 | str obj  | str rule                          remove_rule
              | 0x04 | str name | u8 has_rules | list str rules     new_version
              | 0x05 | str src                                      load
              | 0x06 | str rule | str over                          set_preference
              | 0x07 | str rule | str over                          clear_preference
    wal file  = "OLPWAL2\n" | u64 base_seq | u64 epoch | frame*
    snapshot  = "OLPSNAP3" | u32 len | u32 crc32 | u64 seq | u64 epoch
              | list (str name | list str parents | list str rules)
              | list (str base | str latest)
              | list (str base | u32 count)
              | list (str rule | str over)
    v}

    Version-1 files ("OLPWAL1\n" / "OLPSNAP1"), written before the
    replication epoch existed, omit the [u64 epoch] field; decoders
    accept them and report epoch 0, so a pre-fencing data directory
    upgrades in place on its first snapshot.  "OLPSNAP2" snapshots,
    written before rule preferences existed, end at the version
    counters; decoders accept them and report an empty preference
    list.

    Rules and literals travel as surface syntax ({!Logic.Rule.to_string}),
    which the printers guarantee re-parses to an equal rule; the decoder
    re-parses them, so a decoded mutation is ready to {!Kb.Store.apply}.
    Decoders never raise: a short buffer, a CRC mismatch, an unknown tag,
    an implausible length or an unparsable rule all come back as
    [Error]. *)

val max_payload : int
(** Sanity cap on a single record payload (16 MiB) — a corrupt length
    field cannot make the decoder allocate unboundedly. *)

(** {1 Mutation payloads} *)

val encode_mutation : Kb.Store.mutation -> string
val decode_mutation : string -> (Kb.Store.mutation, string) result

(** {1 Record framing} *)

val frame : string -> string
(** Wrap a payload in the length/CRC frame. *)

type unframed =
  | Frame of { payload : string; next : int }
      (** a whole, CRC-valid frame; [next] is the offset just past it *)
  | End  (** clean end of input exactly at [pos] *)
  | Torn of string  (** anything else: short header, short payload, CRC
                        mismatch, implausible length (the detail says
                        which) *)

val unframe : string -> pos:int -> unframed

(** {1 WAL file header} *)

val wal_magic : string
(** The version-2 magic writers emit. *)

val wal_magic_v1 : string

val wal_header_len : int
(** Length of a version-2 header (the longest form). *)

type wal_head = {
  wal_base : int;  (** base sequence number from the header *)
  wal_epoch : int;  (** replication epoch (0 for version-1 files) *)
  wal_head_len : int;  (** bytes the header occupies in this file *)
}

val wal_header : base:int -> epoch:int -> string
val decode_wal_header : string -> (wal_head, string) result
(** Decode a v2 or v1 header from the front of a file image. *)

(** {1 Snapshots} *)

val snapshot_magic : string
(** The version-2 magic writers emit. *)

val snapshot_magic_v1 : string

val encode_snapshot : seq:int -> epoch:int -> Kb.Store.dump -> string
(** The whole snapshot file image (magic, frame, payload). *)

val decode_snapshot : string -> (int * int * Kb.Store.dump, string) result
(** [(seq, epoch, dump)] from a whole snapshot file image (v2 or v1;
    the latter reports epoch 0). *)
