(* WAL segment I/O; see wal.mli.  All writes funnel through
   [write_chunked], which ticks the fault-injection budget before every
   Unix.write so a test can tear the file at any chunk boundary. *)

module B = Governor.Budget

type t = { fd : Unix.file_descr; path : string }

let write_chunked ?budget fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  (* small chunks only under fault injection: every tick is a potential
     crash point, and the sweep wants byte-level granularity without a
     syscall storm on the production path *)
  let chunk = match budget with None -> 65536 | Some _ -> 16 in
  let off = ref 0 in
  while !off < n do
    (match budget with Some bu -> B.tick bu | None -> ());
    let written = Unix.write fd b !off (min chunk (n - !off)) in
    off := !off + written
  done

let create ?budget ~fsync ~base path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let t = { fd; path } in
  (try write_chunked ?budget fd (Record.wal_header ~base)
   with e -> Unix.close fd; raise e);
  if fsync then Unix.fsync fd;
  t

let open_append ~path =
  let fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644 in
  { fd; path }

let append ?budget ~fsync t payload =
  let framed = Record.frame payload in
  write_chunked ?budget t.fd framed;
  if fsync then Unix.fsync t.fd;
  String.length framed

let fsync t = Unix.fsync t.fd
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_file ?budget ~fsync ~path image =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_chunked ?budget fd image;
      if fsync then Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type replay = {
  mutations : (int * Kb.Store.mutation) list;
  good_end : int;
  size : int;
  torn : string option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read ~path ~expect_base =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | s -> (
    if String.length s < Record.wal_header_len then Error "short WAL header"
    else
      match Record.decode_wal_header s with
      | Error _ as e -> e
      | Ok base when base <> expect_base ->
        Error
          (Printf.sprintf "WAL header base %d does not match segment name %d"
             base expect_base)
      | Ok _ ->
        let size = String.length s in
        let rec go pos acc =
          match Record.unframe s ~pos with
          | Record.End ->
            { mutations = List.rev acc; good_end = pos; size; torn = None }
          | Record.Torn detail ->
            { mutations = List.rev acc; good_end = pos; size;
              torn = Some detail }
          | Record.Frame { payload; next } -> (
            match Record.decode_mutation payload with
            | Ok m -> go next ((pos, m) :: acc)
            | Error detail ->
              (* CRC-valid but undecodable: treat as torn here — the
                 bytes are not something this codec ever wrote *)
              { mutations = List.rev acc; good_end = pos; size;
                torn = Some detail })
        in
        Ok (go Record.wal_header_len []))

let truncate ~path off =
  let fd = Unix.openfile path [ O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd off;
      Unix.fsync fd)
