(* WAL segment I/O; see wal.mli.  All writes funnel through
   [write_chunked], which ticks the fault-injection budget before every
   Unix.write so a test can tear the file at any chunk boundary. *)

module B = Governor.Budget

type t = { fd : Unix.file_descr; path : string }

let write_chunked ?budget fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  (* small chunks only under fault injection: every tick is a potential
     crash point, and the sweep wants byte-level granularity without a
     syscall storm on the production path *)
  let chunk = match budget with None -> 65536 | Some _ -> 16 in
  let off = ref 0 in
  while !off < n do
    (match budget with Some bu -> B.tick bu | None -> ());
    let written = Unix.write fd b !off (min chunk (n - !off)) in
    off := !off + written
  done

let create ?budget ~fsync ~base ~epoch path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let t = { fd; path } in
  (try write_chunked ?budget fd (Record.wal_header ~base ~epoch)
   with e -> Unix.close fd; raise e);
  if fsync then Unix.fsync fd;
  t

let open_append ~path =
  let fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644 in
  { fd; path }

let append ?budget ~fsync t payload =
  let framed = Record.frame payload in
  write_chunked ?budget t.fd framed;
  if fsync then Unix.fsync t.fd;
  String.length framed

let fsync t = Unix.fsync t.fd
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_file ?budget ~fsync ~path image =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_chunked ?budget fd image;
      if fsync then Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type replay = {
  mutations : (int * Kb.Store.mutation) list;
  good_end : int;
  size : int;
  torn : string option;
  epoch : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read ~path ~expect_base =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | s -> (
    match Record.decode_wal_header s with
    | Error _ as e -> e
    | Ok h when h.Record.wal_base <> expect_base ->
      Error
        (Printf.sprintf "WAL header base %d does not match segment name %d"
           h.Record.wal_base expect_base)
    | Ok h ->
      let size = String.length s in
      let epoch = h.Record.wal_epoch in
      let rec go pos acc =
        match Record.unframe s ~pos with
        | Record.End ->
          { mutations = List.rev acc; good_end = pos; size; torn = None;
            epoch }
        | Record.Torn detail ->
          { mutations = List.rev acc; good_end = pos; size;
            torn = Some detail; epoch }
        | Record.Frame { payload; next } -> (
          match Record.decode_mutation payload with
          | Ok m -> go next ((pos, m) :: acc)
          | Error detail ->
            (* CRC-valid but undecodable: treat as torn here — the
               bytes are not something this codec ever wrote *)
            { mutations = List.rev acc; good_end = pos; size;
              torn = Some detail; epoch })
      in
      Ok (go h.Record.wal_head_len []))

let truncate ~path off =
  let fd = Unix.openfile path [ O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd off;
      Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)
(* ------------------------------------------------------------------ *)

module Group = struct
  type group = {
    window : float;  (* seconds the committer waits to gather appends *)
    on_fsync : unit -> unit;
    lock : Mutex.t;
    work : Condition.t;  (* appends behind durability exist *)
    done_ : Condition.t;  (* durable advanced *)
    mutable wal : t;
    mutable written : int;  (* highest seq appended to the file *)
    mutable durable : int;  (* highest seq known flushed *)
    mutable waiters : int;  (* threads blocked in [wait] *)
    mutable stopped : bool;
    mutable committer : Thread.t option;
  }

  (* Flush the active segment and publish the new durability horizon.
     Caller holds [lock]; the fsync itself runs under the lock so a
     concurrent [attach] cannot swap the segment out from under it. *)
  let sync g =
    let target = g.written in
    (try Unix.fsync g.wal.fd with Unix.Unix_error _ -> ());
    g.on_fsync ();
    if target > g.durable then g.durable <- target;
    Condition.broadcast g.done_

  let run g =
    Mutex.lock g.lock;
    while not g.stopped do
      while g.written <= g.durable && not g.stopped do
        Condition.wait g.work g.lock
      done;
      if not g.stopped then begin
        (* Gather appends for up to the window so they share one fsync —
           but flush the moment a writer blocks on durability.  The
           window bounds added latency for fire-and-forget appends; a
           blocked writer must never idle out a window the disk does not
           need.  Batching under concurrent waiters still happens: every
           append that lands while an fsync is in flight shares the
           next one. *)
        if g.waiters = 0 then begin
          let deadline = Unix.gettimeofday () +. g.window in
          let slice = g.window /. 4. in
          while
            g.waiters = 0 && (not g.stopped)
            && Unix.gettimeofday () < deadline
          do
            (* sleep outside the lock so appends can land in the window *)
            Mutex.unlock g.lock;
            Thread.delay slice;
            Mutex.lock g.lock
          done
        end;
        if not g.stopped then sync g
      end
    done;
    Mutex.unlock g.lock

  let create ~window_ms ?(on_fsync = fun () -> ()) wal =
    let g =
      { window = float_of_int window_ms /. 1000.;
        on_fsync;
        lock = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        wal;
        written = 0;
        durable = 0;
        waiters = 0;
        stopped = false;
        committer = None
      }
    in
    g.committer <- Some (Thread.create run g);
    g

  let attach g wal =
    Mutex.lock g.lock;
    g.wal <- wal;
    Mutex.unlock g.lock

  let wrote g ~seq =
    Mutex.lock g.lock;
    if seq > g.written then g.written <- seq;
    Condition.signal g.work;
    Mutex.unlock g.lock

  let wait g =
    Mutex.lock g.lock;
    let target = g.written in
    g.waiters <- g.waiters + 1;
    while g.durable < target && not g.stopped do
      Condition.wait g.done_ g.lock
    done;
    g.waiters <- g.waiters - 1;
    Mutex.unlock g.lock

  let flush g =
    Mutex.lock g.lock;
    if g.written > g.durable then sync g;
    Mutex.unlock g.lock

  let stop g =
    Mutex.lock g.lock;
    if not g.stopped then begin
      if g.written > g.durable then sync g;
      g.stopped <- true;
      Condition.broadcast g.work;
      Condition.broadcast g.done_
    end;
    Mutex.unlock g.lock;
    match g.committer with
    | Some th ->
      g.committer <- None;
      Thread.join th
    | None -> ()
end
