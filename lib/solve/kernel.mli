(** The compiled search kernel: flat-array propagation with trailed undo,
    conflict-driven nogood learning and deterministic restarts.

    Drop-in replacements for the pruned enumerations — same model sets,
    same enumeration order, same [?limit] prefixes and anytime
    ([Partial]) semantics as {!Ordered.Stable.assumption_free_models} /
    {!Ordered.Stable.stable_models} / {!Ordered.Exhaustive.total_models}.
    The difference is mechanical: the ground program is compiled once
    into flat arrays ({!Flat}), propagation is maintained incrementally
    across the search tree instead of re-run from scratch at every node,
    and conflicts are analysed into nogoods that skip sibling subtrees
    which would conflict immediately.  Visited nodes are therefore never
    more than the pruned search's, and fewer on conflict-heavy programs.

    [?stats] exposes the shared search counters plus the solver-specific
    group ({!Ordered.Counters.t}: propagations, conflicts, learned and
    evicted nogoods, restarts), which only this engine moves.

    [?flat] supplies a precompiled {!Flat.t} for the given program (it
    must be [Flat.compile] of the same gop) so a caller that enumerates
    the same program repeatedly — the session cache — can skip the
    compile step. *)

val assumption_free_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?stats:Ordered.Counters.t ->
  ?flat:Flat.t ->
  Ordered.Gop.t ->
  Logic.Interp.t list Ordered.Budget.anytime

val stable_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?stats:Ordered.Counters.t ->
  ?flat:Flat.t ->
  Ordered.Gop.t ->
  Logic.Interp.t list Ordered.Budget.anytime

val total_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?stats:Ordered.Counters.t ->
  ?flat:Flat.t ->
  Ordered.Gop.t ->
  Logic.Interp.t list Ordered.Budget.anytime
