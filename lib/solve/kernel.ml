open Logic
module Gop = Ordered.Gop
module Vfix = Ordered.Vfix
module Model = Ordered.Model
module Budget = Ordered.Budget
module Counters = Ordered.Counters
module Diag = Ordered.Diag

(* The compiled search kernel.  Same tree, same enumeration order, same
   model set as the pruned searches ({!Ordered.Stable} for the
   assumption-free enumeration, {!Ordered.Exhaustive} for total models) —
   but instead of re-running the counting engine from the decisions at
   every node, it keeps one incrementally-maintained propagation state
   and undoes it through a trail.  Soundness of the incremental view rests
   on the same monotonicity as [Vfix] (Lemma 1): the derivation fixpoint
   of a decision set is unique, so propagating each new decision on top of
   the previous fixpoint lands exactly where re-propagating from scratch
   would.

   Per-rule state is the watched-literal adaptation for the ordered
   status lattice.  The classical two-watched scheme does not transfer:
   blocking must be detected {e eagerly} (a rule becomes harmless to the
   rules it suppresses the moment one body literal goes false, and that
   unblocking event is what lets suppressed rules fire), so every rule
   keeps

   - [sat]: how many body literals are currently true — the rule's body
     is satisfied when [sat] reaches the body length ([Vfix]'s [missing]
     counter, counted from the other end);
   - [blocker]: the first atom whose assignment falsified a body literal,
     or -1 — a single witness instead of [Vfix]'s boolean, because the
     conflict analysis needs {e why} a suppressor is blocked;
   - [act_sup]: how many suppressors (overrulers + defeaters) are not yet
     blocked.

   A rule fires — derives its head — when [sat] equals its body length
   and [act_sup] is 0, exactly [Vfix]'s condition.  All three counters
   move in one direction along a branch and are restored by popping the
   trail suffix, so propagation never recounts a body.

   Conflicts are analysed into {e nogoods} over the search's decisions:
   the antecedent cone of the conflicting derivation — body atoms of each
   firing rule plus the blocker witness of each of its suppressors —
   resolved back to decisions.  Monotonicity again makes these sound in
   any context, so the store ({!Nogood}) can skip a sibling subtree
   whose decision would complete a learned nogood: the subtree's root
   node would conflict immediately and contains no models, which keeps
   the enumeration order and model set intact while strictly reducing
   visited nodes on conflict-heavy programs.  Restarts are deterministic
   replays — unwind to the root, evict cold nogoods, replay the decision
   stack (which cannot conflict and rebuilds the identical trail) — so
   they too leave the enumeration order untouched. *)

type mode = Af | Total

type state = {
  f : Flat.t;
  mode : mode;
  budget : Budget.t;
  stats : Counters.t;
  value : int array;  (* 0 undefined, 1 true, 2 false — Values codes *)
  vals : Gop.Values.t;  (* zero-copy view of [value] for the model checks *)
  frozen : bool array;
  reason : int array;  (* deriving rule, or -1 for seed/decision *)
  alevel : int array;  (* decision level of the assignment, -1 unassigned *)
  sat : int array;
  blocker : int array;
  act_sup : int array;
  trail : int array;  (* assign events [atom lsl 1], block [rule lsl 1 + 1] *)
  mutable trail_len : int;
  mutable qhead : int;  (* propagation frontier into the trail *)
  mutable level : int;
  dec_atom : int array;  (* the decision stack *)
  dec_val : int array;  (* 0 frozen-undefined, 1 true, 2 false *)
  dec_mark : int array;  (* trail length at the decision *)
  mutable n_dec : int;
  mutable conflict_rule : int;  (* rule whose firing conflicted, or -1 *)
  mutable conflict_atom : int;
  store : Nogood.t;
  mutable pending : int;  (* conflicts since the last restart *)
  mutable root_mark : int;  (* trail length after the level-0 fixpoint *)
  branch : (int * bool * bool) array;
  full : unit -> bool;
  emit : unit -> unit;
  seen : bool array;  (* scratch for the conflict analysis *)
}

let nogood_cap = 512
let restart_interval = 128

let trail_push s ev =
  s.trail.(s.trail_len) <- ev;
  s.trail_len <- s.trail_len + 1

let assign s a pol r =
  s.value.(a) <- (if pol then 1 else 2);
  s.reason.(a) <- r;
  s.alevel.(a) <- s.level;
  trail_push s (a lsl 1)

(* Rule [r] fires.  Deriving an already-equal value is a no-op (a rule
   can re-fire when a later event drops its last suppressor); deriving
   onto the opposite value or a frozen atom is the conflict that prunes
   the subtree.  At level 0 the assignment is seeded from [Vfix.lfp], so
   any disagreement there is an engine bug, not a search conflict. *)
let derive s r =
  let a = s.f.Flat.head.(r) in
  let pol = s.f.Flat.head_pol.(r) in
  match s.value.(a) with
  | 0 ->
    if s.frozen.(a) then begin
      s.conflict_rule <- r;
      s.conflict_atom <- a
    end
    else if s.level = 0 then
      Diag.fail
        (Diag.Internal_invariant
           { where = "Solve.Kernel: level-0 derivation beyond Vfix.lfp";
             atom = a;
             existing = false;
             derived = pol
           })
    else assign s a pol r
  | v ->
    if v <> (if pol then 1 else 2) then begin
      s.conflict_rule <- r;
      s.conflict_atom <- a
    end

let try_fire s r =
  if
    s.conflict_rule < 0
    && s.sat.(r) = s.f.Flat.body_len.(r)
    && s.act_sup.(r) = 0
  then derive s r

(* Drain the trail from [qhead].  An assign event bumps [sat] of the
   rules whose body contains the now-true literal (firing any completed
   ones) and records itself as blocker of the rules containing the
   now-false literal — each such first block is itself a trail event,
   whose processing decrements [act_sup] of the rules the blocked rule
   suppresses.  On conflict the current event's counter loops still
   complete (only derivations stop), so an event is either fully
   processed or not at all — which is what lets [undo_to] decide, from
   [qhead] alone, whether to reverse an event's counter effects. *)
let propagate s =
  Budget.check s.budget;
  let f = s.f in
  while s.qhead < s.trail_len && s.conflict_rule < 0 do
    let ev = s.trail.(s.qhead) in
    if ev land 1 = 0 then begin
      Budget.tick s.budget;
      s.stats.Counters.propagations <- s.stats.Counters.propagations + 1;
      let a = ev lsr 1 in
      let pol = s.value.(a) = 1 in
      let ct = Flat.code a pol in
      for k = f.Flat.occ_off.(ct) to f.Flat.occ_off.(ct + 1) - 1 do
        let r = f.Flat.occ_rule.(k) in
        s.sat.(r) <- s.sat.(r) + 1;
        try_fire s r
      done;
      let cf = Flat.code a (not pol) in
      for k = f.Flat.occ_off.(cf) to f.Flat.occ_off.(cf + 1) - 1 do
        let r = f.Flat.occ_rule.(k) in
        if s.blocker.(r) < 0 then begin
          s.blocker.(r) <- a;
          trail_push s ((r lsl 1) lor 1)
        end
      done
    end
    else begin
      let r = ev lsr 1 in
      for k = f.Flat.suppresses_off.(r) to f.Flat.suppresses_off.(r + 1) - 1
      do
        let i = f.Flat.suppresses_rule.(k) in
        s.act_sup.(i) <- s.act_sup.(i) - 1;
        try_fire s i
      done
    end;
    s.qhead <- s.qhead + 1
  done

(* Pop the trail suffix down to [mark].  Events past [qhead] were created
   but never processed (propagation stopped at a conflict), so only their
   direct effect — the assignment or the blocker witness — is reversed. *)
let undo_to s mark =
  let f = s.f in
  for i = s.trail_len - 1 downto mark do
    let ev = s.trail.(i) in
    if ev land 1 = 1 then begin
      let r = ev lsr 1 in
      s.blocker.(r) <- -1;
      if i < s.qhead then
        for k = f.Flat.suppresses_off.(r) to f.Flat.suppresses_off.(r + 1) - 1
        do
          let j = f.Flat.suppresses_rule.(k) in
          s.act_sup.(j) <- s.act_sup.(j) + 1
        done
    end
    else begin
      let a = ev lsr 1 in
      if i < s.qhead then begin
        let ct = Flat.code a (s.value.(a) = 1) in
        for k = f.Flat.occ_off.(ct) to f.Flat.occ_off.(ct + 1) - 1 do
          let r = f.Flat.occ_rule.(k) in
          s.sat.(r) <- s.sat.(r) - 1
        done
      end;
      s.value.(a) <- 0;
      s.reason.(a) <- -1;
      s.alevel.(a) <- -1
    end
  done;
  s.trail_len <- mark;
  s.qhead <- mark;
  s.conflict_rule <- -1;
  s.conflict_atom <- -1

let dcode a dval = (a * 3) + dval

let decide s a dval =
  s.level <- s.level + 1;
  let k = s.n_dec in
  s.dec_atom.(k) <- a;
  s.dec_val.(k) <- dval;
  s.dec_mark.(k) <- s.trail_len;
  s.n_dec <- k + 1;
  if dval = 0 then begin
    s.frozen.(a) <- true;
    s.alevel.(a) <- s.level
  end
  else begin
    assign s a (dval = 1) (-1);
    propagate s
  end;
  Nogood.push s.store (dcode a dval)

let backtrack s =
  let k = s.n_dec - 1 in
  let a = s.dec_atom.(k) in
  let dval = s.dec_val.(k) in
  Nogood.pop s.store (dcode a dval);
  if dval = 0 then begin
    s.frozen.(a) <- false;
    s.alevel.(a) <- -1
  end
  else undo_to s s.dec_mark.(k);
  s.conflict_rule <- -1;
  s.conflict_atom <- -1;
  s.n_dec <- k;
  s.level <- s.level - 1

(* Resolve the conflict's antecedent cone back to decisions.  The
   antecedents of a fired rule are its body atoms and, for each of its
   suppressors, the blocker witness that discharged it; level-0 atoms are
   unconditionally true and drop out, decisions enter the nogood, derived
   atoms resolve recursively through their deriving rule. *)
let analyze s =
  let f = s.f in
  let touched = ref [] in
  let acc = ref [] in
  let work = ref [] in
  let add_atom a =
    if not s.seen.(a) then begin
      s.seen.(a) <- true;
      touched := a :: !touched;
      if s.alevel.(a) = 0 then ()
      else if s.reason.(a) < 0 then begin
        let dval = if s.frozen.(a) then 0 else s.value.(a) in
        acc := dcode a dval :: !acc
      end
      else work := a :: !work
    end
  in
  let antecedents r =
    for k = f.Flat.body_off.(r) to f.Flat.body_off.(r + 1) - 1 do
      add_atom f.Flat.body_atom.(k)
    done;
    for k = f.Flat.sup_of_off.(r) to f.Flat.sup_of_off.(r + 1) - 1 do
      add_atom s.blocker.(f.Flat.sup_of_rule.(k))
    done
  in
  antecedents s.conflict_rule;
  add_atom s.conflict_atom;
  let rec drain () =
    match !work with
    | [] -> ()
    | a :: rest ->
      work := rest;
      Budget.tick s.budget;
      antecedents s.reason.(a);
      drain ()
  in
  drain ();
  List.iter (fun a -> s.seen.(a) <- false) !touched;
  Array.of_list (List.sort compare !acc)

(* Deterministic restart: unwind to the root, evict cold nogoods, replay
   the decision stack.  Propagation is deterministic, so the replay
   rebuilds the identical trail (same marks, no conflicts — a learned
   nogood is never a subset of a conflict-free path) — the restart's only
   observable effect is the store maintenance. *)
let restart s =
  s.pending <- 0;
  s.stats.Counters.restarts <- s.stats.Counters.restarts + 1;
  let nd = s.n_dec in
  for k = 0 to nd - 1 do
    if s.dec_val.(k) = 0 then begin
      s.frozen.(s.dec_atom.(k)) <- false;
      s.alevel.(s.dec_atom.(k)) <- -1
    end
  done;
  undo_to s s.root_mark;
  let forced = Hashtbl.create (max 4 nd) in
  for k = 0 to nd - 1 do
    Hashtbl.replace forced (dcode s.dec_atom.(k) s.dec_val.(k)) ()
  done;
  let evicted = Nogood.maintain s.store ~in_force:(Hashtbl.mem forced) in
  s.stats.Counters.evicted <- s.stats.Counters.evicted + evicted;
  for k = 0 to nd - 1 do
    s.level <- k + 1;
    let a = s.dec_atom.(k) in
    let dval = s.dec_val.(k) in
    s.dec_mark.(k) <- s.trail_len;
    if dval = 0 then begin
      s.frozen.(a) <- true;
      s.alevel.(a) <- s.level
    end
    else begin
      assign s a (dval = 1) (-1);
      propagate s;
      if s.conflict_rule >= 0 then
        Diag.fail
          (Diag.Internal_invariant
             { where = "Solve.Kernel.restart: replay conflicted";
               atom = a;
               existing = true;
               derived = dval = 1
             })
    end
  done

(* Support pruning, as in [Stable.groundable]: a decided literal needs a
   rule about it that is not blocked and has no frozen-undefined body
   atom, or the subtree holds no assumption-free model. *)
let rule_groundable s r =
  let f = s.f in
  let rec lits k =
    if k >= f.Flat.body_off.(r + 1) then true
    else
      let b = f.Flat.body_atom.(k) in
      let bp = f.Flat.body_pol.(k) in
      match s.value.(b) with
      | 0 -> (not s.frozen.(b)) && lits (k + 1)
      | v -> (v = 1) = bp && lits (k + 1)
  in
  lits f.Flat.body_off.(r)

let groundable s a pol =
  let f = s.f in
  let rec go k =
    if k >= f.Flat.by_head_off.(a + 1) then false
    else
      let r = f.Flat.by_head_rule.(k) in
      (f.Flat.head_pol.(r) = pol && rule_groundable s r) || go (k + 1)
  in
  go f.Flat.by_head_off.(a)

let all_groundable s =
  let rec go k =
    if k >= s.n_dec then true
    else if s.dec_val.(k) = 0 then go (k + 1)
    else
      groundable s s.dec_atom.(k) (s.dec_val.(k) = 1) && go (k + 1)
  in
  go 0

(* One search node — the same shape as [Stable.node] / the total-model
   search, with the propagation for the node's decision already done by
   [branch] below.  The node and effort counters move identically to the
   pruned engines; only nogood skips differ (a skipped subtree counts one
   pruned subtree and no node — its root would conflict immediately). *)
let rec cnode s i =
  Budget.tick s.budget;
  s.stats.Counters.nodes <- s.stats.Counters.nodes + 1;
  if not (s.full ()) then
    if s.conflict_rule >= 0 then begin
      s.stats.Counters.prunes <- s.stats.Counters.prunes + 1;
      s.stats.Counters.conflicts <- s.stats.Counters.conflicts + 1;
      s.pending <- s.pending + 1;
      let ng = analyze s in
      if Array.length ng > 0 then begin
        Nogood.add s.store ng;
        s.stats.Counters.learned <- s.stats.Counters.learned + 1
      end;
      Nogood.decay s.store
    end
    else if s.mode = Af && not (all_groundable s) then
      s.stats.Counters.prunes <- s.stats.Counters.prunes + 1
    else begin
      let n = Array.length s.branch in
      let rec next j =
        if j >= n then -1
        else
          let a, _, _ = s.branch.(j) in
          if s.value.(a) <> 0 then begin
            if s.reason.(a) >= 0 then
              s.stats.Counters.forced <- s.stats.Counters.forced + 1;
            next (j + 1)
          end
          else if s.frozen.(a) then next (j + 1)
          else j
      in
      let j = next i in
      if j < 0 then begin
        s.stats.Counters.leaves <- s.stats.Counters.leaves + 1;
        s.emit ()
      end
      else begin
        let a, can_pos, can_neg = s.branch.(j) in
        if s.mode = Af then branch s a 0 (j + 1);
        if can_pos then branch s a 1 (j + 1);
        if can_neg then branch s a 2 (j + 1)
      end
    end

and branch s a dval j =
  if Nogood.blocks s.store (dcode a dval) then
    s.stats.Counters.prunes <- s.stats.Counters.prunes + 1
  else begin
    decide s a dval;
    cnode s j;
    backtrack s;
    if s.pending >= restart_interval then restart s
  end

let search mode ?limit ?(budget = Budget.unlimited) ?stats ?flat (g : Gop.t) =
  let stats = match stats with Some s -> s | None -> Counters.create () in
  let acc = ref [] in
  let count = ref 0 in
  try
    let seed = Vfix.lfp ~budget g in
    let f = match flat with Some f -> f | None -> Flat.compile g in
    let na = f.Flat.n_atoms in
    let nr = f.Flat.n_rules in
    let value = Array.make (max 1 na) 0 in
    let vals = Gop.Values.of_codes value in
    let full () =
      match limit with Some l -> !count >= l | None -> false
    in
    let emit =
      match mode with
      | Af ->
        fun () ->
          if Model.is_assumption_free_v g vals then begin
            incr count;
            stats.Counters.models <- stats.Counters.models + 1;
            acc := Gop.Values.to_interp g vals :: !acc
          end
      | Total ->
        fun () ->
          if Model.is_model_v g vals then begin
            incr count;
            stats.Counters.models <- stats.Counters.models + 1;
            acc := Gop.Values.to_interp g vals :: !acc
          end
    in
    let s =
      { f;
        mode;
        budget;
        stats;
        value;
        vals;
        frozen = Array.make (max 1 na) false;
        reason = Array.make (max 1 na) (-1);
        alevel = Array.make (max 1 na) (-1);
        sat = Array.make (max 1 nr) 0;
        blocker = Array.make (max 1 nr) (-1);
        act_sup = Array.copy f.Flat.n_sup;
        trail = Array.make (na + nr + 1) 0;
        trail_len = 0;
        qhead = 0;
        level = 0;
        dec_atom = Array.make (max 1 na) 0;
        dec_val = Array.make (max 1 na) 0;
        dec_mark = Array.make (max 1 na) 0;
        n_dec = 0;
        conflict_rule = -1;
        conflict_atom = -1;
        store = Nogood.create ~cap:nogood_cap;
        pending = 0;
        root_mark = 0;
        branch = [||];
        full;
        emit;
        seen = Array.make (max 1 na) false
      }
    in
    (* Adopt the level-0 fixpoint and run it through the propagator once,
       to charge the counters ([sat]/[blocker]/[act_sup]) with the seed.
       Every derivation this triggers lands on an already-equal seed
       value; anything else is caught in [derive]. *)
    for a = 0 to na - 1 do
      match Gop.Values.value seed a with
      | Interp.True -> assign s a true (-1)
      | Interp.False -> assign s a false (-1)
      | Interp.Undefined -> ()
    done;
    for r = 0 to nr - 1 do
      try_fire s r
    done;
    propagate s;
    if s.conflict_rule >= 0 then
      Diag.fail
        (Diag.Internal_invariant
           { where = "Solve.Kernel: level-0 conflict after Vfix.lfp";
             atom = s.conflict_atom;
             existing = true;
             derived = f.Flat.head_pol.(s.conflict_rule)
           });
    s.root_mark <- s.trail_len;
    let branch =
      List.filter_map
        (fun a ->
          if s.value.(a) <> 0 then None
          else
            match mode with
            | Af -> (
              match (f.Flat.head_pos.(a), f.Flat.head_neg.(a)) with
              | false, false -> None
              | p, n -> Some (a, p, n))
            | Total -> Some (a, true, true))
        (List.init na Fun.id)
    in
    let branch =
      List.sort
        (fun (a, _, _) (b, _, _) ->
          compare (-f.Flat.occ_score.(a), a) (-f.Flat.occ_score.(b), b))
        branch
    in
    let s = { s with branch = Array.of_list branch } in
    cnode s 0;
    Budget.Complete (List.rev !acc)
  with Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)

let assumption_free_models ?limit ?budget ?stats ?flat g =
  search Af ?limit ?budget ?stats ?flat g

let maximal models =
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
           models))
    models

let stable_models ?limit ?budget ?stats ?flat g =
  Budget.map maximal (assumption_free_models ?limit ?budget ?stats ?flat g)

let total_models ?limit ?budget ?stats ?flat g =
  search Total ?limit ?budget ?stats ?flat g
