(** Bounded store of learned nogoods over search decisions.

    A nogood is a set of decisions — encoded [atom * 3 + dval], with
    [dval] 0 for frozen-undefined, 1 for true, 2 for false — whose
    propagation closure conflicts.  Propagation is monotone in the
    decisions, so a nogood is valid on every branch, not just the one it
    was learned on.  Membership of the current decision stack is tracked
    incrementally ([push]/[pop]), making {!blocks} a constant-time scan of
    the candidate's occurrence list.  Eviction is deterministic
    (activity, then store index), keeping the whole search replayable. *)

type t

val create : cap:int -> t
(** [cap] bounds the store size at maintenance points; between two calls
    to {!maintain} the store may transiently exceed it. *)

val size : t -> int

val add : t -> int array -> unit
(** Record a learned nogood (sorted decision codes).  Precondition: every
    element is on the current decision stack — the kernel learns at the
    conflict, before backtracking. *)

val blocks : t -> int -> bool
(** Would committing this decision complete a nogood?  Bumps the blocking
    nogood's activity on a hit. *)

val push : t -> int -> unit
(** The decision is now on the stack. *)

val pop : t -> int -> unit
(** The decision left the stack (inverse of {!push}). *)

val decay : t -> unit
(** Age all activities one conflict's worth. *)

val maintain : t -> in_force:(int -> bool) -> int
(** Evict down to half the cap (size-[<= 2] nogoods are always kept),
    rebuilding the in-force counters from the predicate, which must
    answer whether a decision code is on the current stack.  Returns the
    number evicted.  Call only from a conflict-free state — the kernel
    does so at restarts. *)
