(** Flat compiled form of a ground ordered program.

    {!compile} runs once per solve call and packs everything the kernel
    touches into dense integer arrays: heads and bodies as parallel int
    slabs, body-literal occurrences / head indices / suppression edges as
    CSR (offset + payload) arrays, the component order as a precomputed
    per-rule rank vector, and the fail-first occurrence scores of the
    branching heuristic.  The kernel ({!Kernel}) then never chases a list
    spine or allocates during propagation. *)

type t = {
  gop : Ordered.Gop.t;
  n_atoms : int;
  n_rules : int;
  head : int array;
  head_pol : bool array;
  body_len : int array;
  body_off : int array;
  body_atom : int array;
  body_pol : bool array;
  occ_off : int array;
  occ_rule : int array;
  by_head_off : int array;
  by_head_rule : int array;
  n_sup : int array;
  sup_of_off : int array;
  sup_of_rule : int array;
  suppresses_off : int array;
  suppresses_rule : int array;
  rank : int array;
  occ_score : int array;
  head_pos : bool array;
  head_neg : bool array;
}

val code : int -> bool -> int
(** [code a pol]: the literal code indexing [occ_off] — [2a] for the
    positive literal over atom [a], [2a+1] for the negative one.  An
    assignment [a := pol] makes [code a pol] true and [code a (not pol)]
    false. *)

val compile : Ordered.Gop.t -> t
(** One pass over the ground program; no assignment, no budget. *)

type stats = {
  atoms : int;
  rules : int;
  body_slots : int;
  suppression_edges : int;
  max_rank : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
