(* Bounded store of learned nogoods over search decisions.

   A nogood is a set of decisions — encoded [atom * 3 + dval] with dval 0
   for frozen-undefined, 1 for true, 2 for false — whose propagation
   closure conflicts.  Propagation is monotone in the decisions (Lemma 1),
   so a nogood learned on one branch is valid on every other branch: any
   decision prefix containing it propagates to the same conflict.  The
   kernel therefore consults the store before committing a decision and
   skips the subtree when the decision would complete a nogood.

   The membership test is incremental.  [in_force.(k)] counts how many
   elements of nogood [k] are on the current decision stack, maintained by
   [push]/[pop] through the occurrence table; a candidate decision [d]
   (necessarily not yet in force) completes nogood [k] iff [d] occurs in
   [k] and [in_force.(k) = size k - 1].

   The store is bounded: [maintain] (called by the kernel at restarts)
   evicts down to half the cap by activity — a bumped-on-hit, decayed
   score, VSIDS-style — always keeping nogoods of at most two decisions,
   which cost nothing and prune the most.  All tie-breaks are on store
   index, so eviction (and hence the whole search) is deterministic. *)

type t = {
  cap : int;
  mutable ngs : int array array;  (* sorted decision codes; slots >= n unused *)
  mutable act : float array;
  mutable in_force : int array;
  mutable n : int;
  occ : (int, int list) Hashtbl.t;  (* decision code -> store indices *)
  mutable bump : float;  (* current activity increment *)
}

let create ~cap =
  { cap = max 4 cap;
    ngs = Array.make 16 [||];
    act = Array.make 16 0.;
    in_force = Array.make 16 0;
    n = 0;
    occ = Hashtbl.create 64;
    bump = 1.
  }

let size t = t.n

let occ_list t code =
  match Hashtbl.find_opt t.occ code with Some l -> l | None -> []

let grow t =
  let cap' = 2 * Array.length t.ngs in
  let ngs = Array.make cap' [||] in
  Array.blit t.ngs 0 ngs 0 t.n;
  let act = Array.make cap' 0. in
  Array.blit t.act 0 act 0 t.n;
  let in_force = Array.make cap' 0 in
  Array.blit t.in_force 0 in_force 0 t.n;
  t.ngs <- ngs;
  t.act <- act;
  t.in_force <- in_force

(* Record a nogood whose decisions are all on the current stack (the
   kernel learns at the conflict, before backtracking, so every element is
   in force). *)
let add t ng =
  if t.n >= Array.length t.ngs then grow t;
  let k = t.n in
  t.ngs.(k) <- ng;
  t.act.(k) <- t.bump;
  t.in_force.(k) <- Array.length ng;
  t.n <- k + 1;
  Array.iter (fun code -> Hashtbl.replace t.occ code (k :: occ_list t code)) ng

let push t code =
  List.iter
    (fun k -> t.in_force.(k) <- t.in_force.(k) + 1)
    (occ_list t code)

let pop t code =
  List.iter
    (fun k -> t.in_force.(k) <- t.in_force.(k) - 1)
    (occ_list t code)

(* Would committing [code] complete a nogood?  The candidate is not in
   force, so a nogood containing it has every other element in force iff
   its count is one short of its size.  A hit bumps the nogood's
   activity. *)
let blocks t code =
  let rec go = function
    | [] -> false
    | k :: rest ->
      if t.in_force.(k) = Array.length t.ngs.(k) - 1 then begin
        t.act.(k) <- t.act.(k) +. t.bump;
        true
      end
      else go rest
  in
  go (occ_list t code)

(* Geometric decay: instead of scaling every score down per conflict, scale
   the increment up and renormalise when it overflows. *)
let decay t =
  t.bump <- t.bump *. 1.05;
  if t.bump > 1e20 then begin
    for k = 0 to t.n - 1 do
      t.act.(k) <- t.act.(k) /. t.bump
    done;
    t.bump <- 1.
  end

(* Evict down to half the cap, keeping every nogood of size <= 2 and then
   the highest-activity remainder.  [in_force] answers whether a decision
   code is on the current stack; the counters are recomputed from it for
   the survivors.  Returns the number evicted. *)
let maintain t ~in_force:still_forced =
  if t.n <= t.cap then 0
  else begin
    let idx = List.init t.n Fun.id in
    let short, long =
      List.partition (fun k -> Array.length t.ngs.(k) <= 2) idx
    in
    let long =
      List.sort
        (fun a b ->
          match compare t.act.(b) t.act.(a) with
          | 0 -> compare a b
          | c -> c)
        long
    in
    let target = max (t.cap / 2) (List.length short) in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    let kept =
      List.sort compare (short @ take (target - List.length short) long)
    in
    let evicted = t.n - List.length kept in
    let ngs = Array.make (Array.length t.ngs) [||] in
    let act = Array.make (Array.length t.act) 0. in
    let in_force = Array.make (Array.length t.in_force) 0 in
    Hashtbl.reset t.occ;
    t.n <- 0;
    List.iter
      (fun old ->
        let k = t.n in
        ngs.(k) <- t.ngs.(old);
        act.(k) <- t.act.(old);
        in_force.(k) <-
          Array.fold_left
            (fun c code -> if still_forced code then c + 1 else c)
            0 t.ngs.(old);
        t.n <- k + 1)
      kept;
    t.ngs <- ngs;
    t.act <- act;
    t.in_force <- in_force;
    for k = t.n - 1 downto 0 do
      Array.iter
        (fun code -> Hashtbl.replace t.occ code (k :: occ_list t code))
        t.ngs.(k)
    done;
    evicted
  end
