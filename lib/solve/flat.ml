(* One-shot compilation of a ground ordered program into flat
   integer-indexed arrays.  [Ordered.Gop.t] already interns atoms and
   rules as dense ints, but its adjacency lives in [int list array]s and
   its rule bodies in per-rule tuples; every propagation pass over those
   chases list spines and re-reads tuple fields.  The compiled form packs
   everything the kernel touches into CSR (offset + payload) int arrays:
   one cache-friendly slab per relation, no allocation during search.

   The compilation is per ground program, independent of any assignment
   or budget; the kernel compiles once per solve call and reuses the
   arrays across the whole search. *)

type t = {
  gop : Ordered.Gop.t;  (* decoding, model checks, symbolic output *)
  n_atoms : int;
  n_rules : int;
  head : int array;  (* rule -> head atom id *)
  head_pol : bool array;  (* rule -> head polarity *)
  body_len : int array;  (* rule -> number of (deduplicated) body literals *)
  body_off : int array;  (* rule -> offset into body_atom/body_pol *)
  body_atom : int array;
  body_pol : bool array;
  occ_off : int array;  (* literal code -> offset into occ_rule *)
  occ_rule : int array;  (* rules whose body contains the literal *)
  by_head_off : int array;  (* atom -> offset into by_head_rule *)
  by_head_rule : int array;
  n_sup : int array;  (* rule -> number of suppressors (over- + defeat-) *)
  sup_of_off : int array;  (* rule -> offset into sup_of_rule *)
  sup_of_rule : int array;  (* suppressors of the rule, lowest rank first *)
  suppresses_off : int array;  (* rule -> offset into suppresses_rule *)
  suppresses_rule : int array;  (* rules this rule suppresses *)
  rank : int array;  (* rule -> rank of its component in the order *)
  occ_score : int array;  (* atom -> head+body occurrence count *)
  head_pos : bool array;  (* atom -> occurs as a positive head *)
  head_neg : bool array;  (* atom -> occurs as a negative head *)
}

(* Literal codes: [2a] is atom [a] positive, [2a+1] negative.  Assigning
   [a := pol] makes literal [code a pol] true and [code a (not pol)]
   false, so one CSR over codes serves both propagation directions. *)
let code a pol = (2 * a) + if pol then 0 else 1

(* Pack an [int list array] (as built by [Gop]) into CSR, preserving an
   explicitly supplied deterministic order within each row. *)
let csr_of_lists n rows =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length rows.(i)
  done;
  let payload = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    List.iteri (fun k j -> payload.(off.(i) + k) <- j) rows.(i)
  done;
  (off, payload)

(* Rank of a component in the order: 0 for minimal components, otherwise
   one more than the highest-ranked component strictly below.  The rank
   vector is what the kernel keeps of the component order at runtime —
   the suppression edges already encode who beats whom, and the ranks
   give each suppressor list a deterministic lowest-component-first
   layout (overruling components sort before same-level defeaters). *)
let ranks_of poset n =
  let rank = Array.make n 0 in
  (* ids are few; a fixpoint over the strict order terminates because the
     order is acyclic *)
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if Ordered.Poset.lt poset a b && rank.(b) < rank.(a) + 1 then begin
          rank.(b) <- rank.(a) + 1;
          changed := true
        end
      done
    done
  done;
  rank

let compile (g : Ordered.Gop.t) =
  let n_atoms = Ordered.Gop.n_atoms g in
  let n_rules = Ordered.Gop.n_rules g in
  let head = Array.make (max 1 n_rules) 0 in
  let head_pol = Array.make (max 1 n_rules) false in
  let body_len = Array.make (max 1 n_rules) 0 in
  let body_off = Array.make (n_rules + 1) 0 in
  Array.iteri
    (fun i (r : Ordered.Gop.grule) ->
      head.(i) <- r.head;
      head_pol.(i) <- r.head_pol;
      body_len.(i) <- Array.length r.body;
      body_off.(i + 1) <- body_off.(i) + Array.length r.body)
    g.Ordered.Gop.rules;
  let nbody = body_off.(n_rules) in
  let body_atom = Array.make (max 1 nbody) 0 in
  let body_pol = Array.make (max 1 nbody) false in
  Array.iteri
    (fun i (r : Ordered.Gop.grule) ->
      Array.iteri
        (fun k (a, pol) ->
          body_atom.(body_off.(i) + k) <- a;
          body_pol.(body_off.(i) + k) <- pol)
        r.body)
    g.Ordered.Gop.rules;
  (* body-literal occurrences, by literal code, rules ascending *)
  let occ_rows = Array.make (2 * n_atoms) [] in
  for i = n_rules - 1 downto 0 do
    for k = body_off.(i) to body_off.(i + 1) - 1 do
      let c = code body_atom.(k) body_pol.(k) in
      occ_rows.(c) <- i :: occ_rows.(c)
    done
  done;
  let occ_off, occ_rule = csr_of_lists (2 * n_atoms) occ_rows in
  let by_head_off, by_head_rule =
    csr_of_lists n_atoms
      (Array.map (fun l -> List.sort compare l) g.Ordered.Gop.by_head)
  in
  (* component ranks, then suppressor lists lowest rank first (overrulers
     sit strictly below, so they come before same-level defeaters) *)
  let poset = Ordered.Program.poset g.Ordered.Gop.program in
  let comp_rank = ranks_of poset (Ordered.Poset.size poset) in
  let rank =
    Array.init (max 1 n_rules) (fun i ->
        if i < n_rules then comp_rank.(g.Ordered.Gop.rules.(i).comp) else 0)
  in
  let sup_rows =
    Array.init (max 1 n_rules) (fun i ->
        if i >= n_rules then []
        else
          List.sort
            (fun a b -> compare (rank.(a), a) (rank.(b), b))
            (g.Ordered.Gop.overrulers.(i) @ g.Ordered.Gop.defeaters.(i)))
  in
  let sup_of_off, sup_of_rule =
    csr_of_lists n_rules (Array.sub sup_rows 0 n_rules)
  in
  let n_sup =
    Array.init (max 1 n_rules) (fun i ->
        if i < n_rules then sup_of_off.(i + 1) - sup_of_off.(i) else 0)
  in
  let suppresses_off, suppresses_rule =
    csr_of_lists n_rules
      (Array.map (fun l -> List.sort compare l)
         (Array.sub g.Ordered.Gop.suppresses 0 n_rules))
  in
  (* fail-first occurrence score and head-polarity flags, as in the
     pruned search's static ordering *)
  let occ_score = Array.make (max 1 n_atoms) 0 in
  let head_pos = Array.make (max 1 n_atoms) false in
  let head_neg = Array.make (max 1 n_atoms) false in
  Array.iter
    (fun (r : Ordered.Gop.grule) ->
      occ_score.(r.head) <- occ_score.(r.head) + 1;
      if r.head_pol then head_pos.(r.head) <- true
      else head_neg.(r.head) <- true;
      Array.iter (fun (a, _) -> occ_score.(a) <- occ_score.(a) + 1) r.body)
    g.Ordered.Gop.rules;
  { gop = g;
    n_atoms;
    n_rules;
    head;
    head_pol;
    body_len;
    body_off;
    body_atom;
    body_pol;
    occ_off;
    occ_rule;
    by_head_off;
    by_head_rule;
    n_sup;
    sup_of_off;
    sup_of_rule;
    suppresses_off;
    suppresses_rule;
    rank;
    occ_score;
    head_pos;
    head_neg
  }

type stats = {
  atoms : int;
  rules : int;
  body_slots : int;
  suppression_edges : int;
  max_rank : int;
}

let stats t =
  { atoms = t.n_atoms;
    rules = t.n_rules;
    body_slots = t.body_off.(t.n_rules);
    suppression_edges = t.sup_of_off.(t.n_rules);
    max_rank = Array.fold_left max 0 (Array.sub t.rank 0 (max 1 t.n_rules))
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d atoms, %d rules, %d body slots, %d suppression edges, rank depth %d"
    s.atoms s.rules s.body_slots s.suppression_edges s.max_rank
