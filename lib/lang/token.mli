(** Lexical tokens of the ordered-logic-program surface syntax. *)

type t =
  | IDENT of string  (** lowercase identifier: predicate / constant / fn *)
  | VAR of string  (** uppercase or [_]-leading identifier: variable *)
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | COLON  (** [:]: rule-name separator, [name : head :- body.] *)
  | ARROW  (** [:-] *)
  | MINUS  (** [-]: classical negation at literal position, subtraction in terms *)
  | TILDE  (** [~]: classical negation (alias of [-] at literal position) *)
  | PLUS
  | STAR
  | SLASH
  | LT
  | GT
  | LE
  | GE
  | EQ
  | NEQ  (** [!=] or [<>] *)
  | KW_COMPONENT  (** [component] / [module] / [object] *)
  | KW_EXTENDS
  | KW_ORDER
  | KW_PREFER
  | KW_NOT  (** [not] / [neg]: classical negation keyword *)
  | KW_MOD
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type pos = { line : int; col : int }
(** 1-based source position. *)

type located = { token : t; pos : pos }
