(** Abstract syntax of an ordered-program source file.

    A file is a sequence of declarations: named components (with optional
    [extends] parents), explicit [order] declarations, and bare rules (which
    are collected into a default component named ["main"]).

    [extends]/[isa] declares the enclosing component {e more specific} than
    each parent: [component c1 extends c2 { ... }] yields [c1 < c2] in the
    paper's order (so [c1] inherits — and may overrule — the rules of
    [c2]). *)

type component = {
  name : string;
  parents : string list;  (** this component [<] each parent *)
  rules : Logic.Rule.t list;
}

type decl =
  | Component of component
  | Order of (string * string) list
      (** [order a < b.] pairs: [(a, b)] meaning [a < b] *)
  | Prefer of (string * string) list
      (** [prefer a > b.] pairs: [(a, b)] meaning rule [a] is preferred
          over rule [b] (names refer to named rules) *)
  | Bare_rule of Logic.Rule.t

type t = decl list

val default_component : string
(** Name of the component collecting bare rules: ["main"]. *)

val components : t -> component list
(** All components of the file, with bare rules gathered into
    {!default_component} (created only if bare rules exist), preserving
    declaration order.  Raises [Invalid_argument] on duplicate component
    names. *)

val order_pairs : t -> (string * string) list
(** All [(lower, higher)] order pairs: [extends] clauses plus [order]
    declarations, deduplicated, in declaration order. *)

val prefer_pairs : t -> (string * string) list
(** All [(preferred, over)] rule-preference pairs from [prefer]
    declarations, deduplicated, in declaration order. *)

val pp : Format.formatter -> t -> unit
(** Print the file back in surface syntax (see {!Pretty}). *)
