(** Recursive-descent parser for ordered-program source files.

    Grammar (informal):
    {v
    file      ::= { decl }
    decl      ::= component | order | prefer | rule
    component ::= ("component"|"module"|"object") IDENT
                  [ ("extends"|"isa") IDENT { "," IDENT } ]
                  "{" { rule } "}"
    order     ::= "order" IDENT "<" IDENT { "," IDENT "<" IDENT } "."
    prefer    ::= "prefer" IDENT ">" IDENT { "," IDENT ">" IDENT } "."
    rule      ::= [ IDENT ":" ] literal [ ":-" literal { "," literal } ] "."
    literal   ::= [ "-" | "~" | "not" | "neg" ] atom
                | term relop term
    atom      ::= IDENT [ "(" term { "," term } ")" ]
    term      ::= arithmetic over INT, IDENT, VAR, IDENT(terms), (term)
                  with "+", "-", "*", "/", "mod" and unary "-"
    relop     ::= "=" | "!=" | "<>" | "<" | ">" | "<=" | ">="
    v}

    A negated comparison such as [not X > Y] parses to the complementary
    comparison literal. *)

exception Error of string * Token.pos
(** Syntax error with message and position. *)

val parse_file : string -> Ast.t
(** Parse a whole source string.  Raises {!Error} or {!Lexer.Error}. *)

val parse_rule : string -> Logic.Rule.t
(** Parse a single rule, e.g. ["fly(X) :- bird(X)."]. *)

val parse_rules : string -> Logic.Rule.t list
(** Parse a sequence of rules (no component syntax allowed). *)

val parse_literal : string -> Logic.Literal.t
(** Parse a single literal, e.g. ["-fly(penguin)"] (no trailing dot). *)

val parse_term : string -> Logic.Term.t
(** Parse a single term. *)
