type t =
  | IDENT of string
  | VAR of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | COLON
  | ARROW
  | MINUS
  | TILDE
  | PLUS
  | STAR
  | SLASH
  | LT
  | GT
  | LE
  | GE
  | EQ
  | NEQ
  | KW_COMPONENT
  | KW_EXTENDS
  | KW_ORDER
  | KW_PREFER
  | KW_NOT
  | KW_MOD
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | VAR s -> Printf.sprintf "variable %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | COLON -> "':'"
  | ARROW -> "':-'"
  | MINUS -> "'-'"
  | TILDE -> "'~'"
  | PLUS -> "'+'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | KW_COMPONENT -> "'component'"
  | KW_EXTENDS -> "'extends'"
  | KW_ORDER -> "'order'"
  | KW_PREFER -> "'prefer'"
  | KW_NOT -> "'not'"
  | KW_MOD -> "'mod'"
  | EOF -> "end of input"

let pp ppf t = Format.pp_print_string ppf (to_string t)

type pos = { line : int; col : int }
type located = { token : t; pos : pos }
