open Logic

exception Error of string * Token.pos

type state = { toks : Token.located array; mutable idx : int }

let peek st = st.toks.(st.idx)
let peek_token st = (peek st).token
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let next st =
  let t = peek st in
  advance st;
  t

let error st msg = raise (Error (msg, (peek st).pos))

let expect st token what =
  let t = next st in
  if t.token <> token then
    raise
      (Error
         ( Printf.sprintf "expected %s, found %s" what (Token.to_string t.token),
           t.pos ))

let expect_ident st what =
  match next st with
  | { token = IDENT s; _ } -> s
  | t ->
    raise
      (Error
         ( Printf.sprintf "expected %s, found %s" what (Token.to_string t.token),
           t.pos ))

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_term_prec st : Term.t = parse_addsub st

and parse_addsub st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek_token st with
    | PLUS ->
      advance st;
      loop (Term.App ("+", [ lhs; parse_mul st ]))
    | MINUS ->
      advance st;
      loop (Term.App ("-", [ lhs; parse_mul st ]))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_prim st in
  let rec loop lhs =
    match peek_token st with
    | STAR ->
      advance st;
      loop (Term.App ("*", [ lhs; parse_prim st ]))
    | SLASH ->
      advance st;
      loop (Term.App ("/", [ lhs; parse_prim st ]))
    | KW_MOD ->
      advance st;
      loop (Term.App ("mod", [ lhs; parse_prim st ]))
    | _ -> lhs
  in
  loop lhs

and parse_prim st =
  match next st with
  | { token = INT n; _ } -> Term.Int n
  | { token = VAR v; _ } -> Term.Var v
  | { token = MINUS; _ } -> (
    match parse_prim st with
    | Term.Int n -> Term.Int (-n)
    | t -> Term.App ("-", [ t ]))
  | { token = LPAREN; _ } ->
    let t = parse_term_prec st in
    expect st RPAREN "')'";
    t
  | { token = IDENT f; _ } ->
    if peek_token st = LPAREN then (
      advance st;
      let args = parse_term_list st in
      expect st RPAREN "')'";
      Term.App (f, args))
    else Term.Sym f
  | t ->
    raise
      (Error
         ( Printf.sprintf "expected a term, found %s" (Token.to_string t.token),
           t.pos ))

and parse_term_list st =
  let t = parse_term_prec st in
  if peek_token st = COMMA then (
    advance st;
    t :: parse_term_list st)
  else [ t ]

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let relop_of_token = function
  | Token.LT -> Some "<"
  | Token.GT -> Some ">"
  | Token.LE -> Some "<="
  | Token.GE -> Some ">="
  | Token.EQ -> Some "="
  | Token.NEQ -> Some "!="
  | _ -> None

(* Parse [term (relop term)?] and classify the result as an atom. *)
let parse_atomic st : Atom.t =
  let t = parse_term_prec st in
  match relop_of_token (peek_token st) with
  | Some op ->
    advance st;
    let rhs = parse_term_prec st in
    Atom.make op [ t; rhs ]
  | None -> (
    match t with
    | Term.Sym p -> Atom.prop p
    | Term.App (p, args) -> Atom.make p args
    | Term.Var _ | Term.Int _ ->
      error st "a literal must be a predicate or a comparison")

let parse_literal_inner st : Literal.t =
  match peek_token st with
  | MINUS | TILDE | KW_NOT ->
    advance st;
    Literal.neg (Literal.pos (parse_atomic st))
  | _ -> Literal.pos (parse_atomic st)

(* ------------------------------------------------------------------ *)
(* Rules and declarations                                              *)
(* ------------------------------------------------------------------ *)

let peek2_token st =
  if st.idx + 1 < Array.length st.toks then st.toks.(st.idx + 1).token
  else Token.EOF

let parse_rule_inner st : Rule.t =
  (* [name : head ...] — an IDENT directly followed by ':' names the
     rule; ':' is used nowhere else at rule start, so one token of
     lookahead disambiguates from a head literal. *)
  let name =
    match (peek_token st, peek2_token st) with
    | IDENT n, COLON ->
      advance st;
      advance st;
      Some n
    | _ -> None
  in
  let named r = match name with Some n -> Rule.with_name n r | None -> r in
  let head = parse_literal_inner st in
  match peek_token st with
  | DOT ->
    advance st;
    named (Rule.fact head)
  | ARROW ->
    advance st;
    let rec body () =
      let l = parse_literal_inner st in
      if peek_token st = COMMA then (
        advance st;
        l :: body ())
      else [ l ]
    in
    let b = body () in
    expect st DOT "'.' at end of rule";
    named (Rule.make head b)
  | t -> error st (Printf.sprintf "expected ':-' or '.', found %s" (Token.to_string t))

let parse_order_decl st =
  (* order a < b, c < d. *)
  let rec pairs () =
    let lo = expect_ident st "component name" in
    expect st LT "'<'";
    let hi = expect_ident st "component name" in
    if peek_token st = COMMA then (
      advance st;
      (lo, hi) :: pairs ())
    else [ (lo, hi) ]
  in
  let ps = pairs () in
  expect st DOT "'.' at end of order declaration";
  Ast.Order ps

let parse_prefer_decl st =
  (* prefer a > b, c > d. *)
  let rec pairs () =
    let hi = expect_ident st "rule name" in
    expect st GT "'>'";
    let lo = expect_ident st "rule name" in
    if peek_token st = COMMA then (
      advance st;
      (hi, lo) :: pairs ())
    else [ (hi, lo) ]
  in
  let ps = pairs () in
  expect st DOT "'.' at end of prefer declaration";
  Ast.Prefer ps

let parse_component st =
  let name = expect_ident st "component name" in
  let parents =
    if peek_token st = KW_EXTENDS then (
      advance st;
      let rec names () =
        let n = expect_ident st "parent component name" in
        if peek_token st = COMMA then (
          advance st;
          n :: names ())
        else [ n ]
      in
      names ())
    else []
  in
  expect st LBRACE "'{'";
  let rec rules () =
    if peek_token st = RBRACE then (
      advance st;
      [])
    else
      let r = parse_rule_inner st in
      r :: rules ()
  in
  Ast.Component { name; parents; rules = rules () }

let parse_decl st =
  match peek_token st with
  | KW_COMPONENT ->
    advance st;
    parse_component st
  | KW_ORDER ->
    advance st;
    parse_order_decl st
  | KW_PREFER ->
    advance st;
    parse_prefer_decl st
  | _ -> Ast.Bare_rule (parse_rule_inner st)

let make_state src = { toks = Array.of_list (Lexer.tokenize src); idx = 0 }

let at_eof st = peek_token st = EOF

let parse_file src =
  let st = make_state src in
  let rec go acc = if at_eof st then List.rev acc else go (parse_decl st :: acc) in
  go []

let finish st v =
  if at_eof st then v
  else
    error st
      (Printf.sprintf "trailing input: %s" (Token.to_string (peek_token st)))

let parse_rule src =
  let st = make_state src in
  finish st (parse_rule_inner st)

let parse_rules src =
  let st = make_state src in
  let rec go acc = if at_eof st then List.rev acc else go (parse_rule_inner st :: acc) in
  go []

let parse_literal src =
  let st = make_state src in
  finish st (parse_literal_inner st)

let parse_term src =
  let st = make_state src in
  finish st (parse_term_prec st)
