exception Error of string * Token.pos

type state = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.idx < String.length st.src then Some st.src.[st.idx] else None

let peek2 st =
  if st.idx + 1 < String.length st.src then Some st.src.[st.idx + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.idx <- st.idx + 1

let pos st : Token.pos = { line = st.line; col = st.col }
let error st msg = raise (Error (msg, pos st))
let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c =
  is_lower c || is_upper c || is_digit c || c = '\'' || c = '@'

let keyword = function
  | "component" | "module" | "object" -> Some Token.KW_COMPONENT
  | "extends" | "isa" -> Some Token.KW_EXTENDS
  | "order" -> Some Token.KW_ORDER
  | "prefer" -> Some Token.KW_PREFER
  | "not" | "neg" -> Some Token.KW_NOT
  | "mod" -> Some Token.KW_MOD
  | _ -> None

let rec skip_block_comment st depth start =
  match peek st, peek2 st with
  | None, _ -> raise (Error ("unterminated block comment", start))
  | Some '*', Some '/' ->
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1) start
  | Some '/', Some '*' ->
    advance st;
    advance st;
    skip_block_comment st (depth + 1) start
  | Some _, _ ->
    advance st;
    skip_block_comment st depth start

let rec skip_line st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line st

let read_while st pred =
  let start = st.idx in
  while
    match peek st with
    | Some c -> pred c
    | None -> false
  do
    advance st
  done;
  String.sub st.src start (st.idx - start)

let rec next st : Token.located =
  let p = pos st in
  match peek st with
  | None -> { token = EOF; pos = p }
  | Some c -> (
    match c with
    | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      next st
    | '%' ->
      skip_line st;
      next st
    | '/' when peek2 st = Some '/' ->
      skip_line st;
      next st
    | '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      skip_block_comment st 1 p;
      next st
    | '(' ->
      advance st;
      { token = LPAREN; pos = p }
    | ')' ->
      advance st;
      { token = RPAREN; pos = p }
    | '{' ->
      advance st;
      { token = LBRACE; pos = p }
    | '}' ->
      advance st;
      { token = RBRACE; pos = p }
    | ',' ->
      advance st;
      { token = COMMA; pos = p }
    | '.' ->
      advance st;
      { token = DOT; pos = p }
    | '~' ->
      advance st;
      { token = TILDE; pos = p }
    | '+' ->
      advance st;
      { token = PLUS; pos = p }
    | '*' ->
      advance st;
      { token = STAR; pos = p }
    | '/' ->
      advance st;
      { token = SLASH; pos = p }
    | '-' ->
      advance st;
      { token = MINUS; pos = p }
    | ':' ->
      advance st;
      if peek st = Some '-' then (
        advance st;
        { token = ARROW; pos = p })
      else { token = COLON; pos = p }
    | '<' ->
      advance st;
      (match peek st with
      | Some '=' ->
        advance st;
        { token = LE; pos = p }
      | Some '>' ->
        advance st;
        { token = NEQ; pos = p }
      | _ -> { token = LT; pos = p })
    | '>' ->
      advance st;
      if peek st = Some '=' then (
        advance st;
        { token = GE; pos = p })
      else { token = GT; pos = p }
    | '=' ->
      advance st;
      { token = EQ; pos = p }
    | '!' ->
      advance st;
      if peek st = Some '=' then (
        advance st;
        { token = NEQ; pos = p })
      else error st "expected '=' after '!'"
    | c when is_digit c ->
      let s = read_while st is_digit in
      { token = INT (int_of_string s); pos = p }
    | c when is_lower c ->
      let s = read_while st is_ident_char in
      let token =
        match keyword s with
        | Some kw -> kw
        | None -> Token.IDENT s
      in
      { token; pos = p }
    | c when is_upper c ->
      let s = read_while st is_ident_char in
      { token = VAR s; pos = p }
    | c -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; idx = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok = next st in
    match tok.token with
    | EOF -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []
