(** Hand-written lexer for the surface syntax.

    Comments: [%] and [//] to end of line, [/* ... */] nestable blocks.
    Whitespace is insignificant. *)

exception Error of string * Token.pos
(** Lexical error with message and position. *)

val tokenize : string -> Token.located list
(** Tokenize a whole input string.  The result always ends with an [EOF]
    token.  Raises {!Error} on invalid input. *)
