type component = {
  name : string;
  parents : string list;
  rules : Logic.Rule.t list;
}

type decl =
  | Component of component
  | Order of (string * string) list
  | Prefer of (string * string) list
  | Bare_rule of Logic.Rule.t

type t = decl list

let default_component = "main"

let components file =
  let bare =
    List.filter_map
      (function
        | Bare_rule r -> Some r
        | Component _ | Order _ | Prefer _ -> None)
      file
  in
  let named =
    List.filter_map
      (function
        | Component c -> Some c
        | Bare_rule _ | Order _ | Prefer _ -> None)
      file
  in
  let all =
    if bare = [] then named
    else
      match List.partition (fun c -> c.name = default_component) named with
      | [], _ -> { name = default_component; parents = []; rules = bare } :: named
      | [ main ], rest -> { main with rules = main.rules @ bare } :: rest
      | _ -> named (* duplicate check below reports the error *)
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "duplicate component %S" c.name)
      else Hashtbl.add seen c.name ())
    all;
  all

let order_pairs file =
  let pairs =
    List.concat_map
      (function
        | Component c -> List.map (fun p -> (c.name, p)) c.parents
        | Order ps -> ps
        | Prefer _ | Bare_rule _ -> [])
      file
  in
  List.fold_left
    (fun acc p -> if List.mem p acc then acc else acc @ [ p ])
    [] pairs

let prefer_pairs file =
  let pairs =
    List.concat_map
      (function
        | Prefer ps -> ps
        | Component _ | Order _ | Bare_rule _ -> [])
      file
  in
  List.fold_left
    (fun acc p -> if List.mem p acc then acc else acc @ [ p ])
    [] pairs

let pp_rules ppf rules =
  List.iter (fun r -> Format.fprintf ppf "  %a@," Logic.Rule.pp r) rules

let pp_component ppf c =
  (match c.parents with
  | [] -> Format.fprintf ppf "@[<v>component %s {@," c.name
  | ps ->
    Format.fprintf ppf "@[<v>component %s extends %s {@," c.name
      (String.concat ", " ps));
  pp_rules ppf c.rules;
  Format.fprintf ppf "}@]"

let pp_decl ppf = function
  | Component c -> pp_component ppf c
  | Order pairs ->
    Format.fprintf ppf "order %s."
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%s < %s" a b) pairs))
  | Prefer pairs ->
    Format.fprintf ppf "prefer %s."
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%s > %s" a b) pairs))
  | Bare_rule r -> Logic.Rule.pp ppf r

let pp ppf file =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
    file
