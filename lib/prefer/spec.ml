open Logic

type t = {
  program : Ordered.Program.t;
  viewpoint : Ordered.Program.component_id;
  prefs : (string * string) list;
}

let where = "preferences"

(* Cycle check over an edge relation on [0 .. n-1]: depth-first search
   with an explicit on-stack marking; on a back edge the portion of the
   stack from the revisited node is the cycle. *)
let find_cycle ~n edges_of =
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let exception Cycle of int list in
  let rec visit path v =
    match color.(v) with
    | 1 ->
      let rec cut = function
        | [] -> []
        | u :: rest -> if u = v then [ u ] else u :: cut rest
      in
      raise (Cycle (v :: List.rev (cut path)))
    | 2 -> ()
    | _ ->
      color.(v) <- 1;
      List.iter (visit (v :: path)) (edges_of v);
      color.(v) <- 2
  in
  try
    for v = 0 to n - 1 do
      visit [] v
    done;
    None
  with Cycle c -> Some c

(* A quick structural check on the pairs alone, for callers that accept
   preferences before the named rules exist (the KB mutation path): no
   self-preference and no cycle among the declared pairs themselves. *)
let check_pairs pairs =
  List.iter
    (fun (a, b) ->
      if a = b then
        Ordered.Diag.fail (Ordered.Diag.Preference_cycle { cycle = [ a; a ] }))
    pairs;
  let names =
    List.sort_uniq String.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
  in
  let id n =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = n then i else go (i + 1) rest
    in
    go 0 names
  in
  let names_arr = Array.of_list names in
  let edges =
    List.map (fun (a, b) -> (id a, id b)) pairs
  in
  match
    find_cycle ~n:(Array.length names_arr) (fun v ->
        List.filter_map (fun (a, b) -> if a = v then Some b else None) edges)
  with
  | None -> ()
  | Some c ->
    Ordered.Diag.fail
      (Ordered.Diag.Preference_cycle { cycle = List.map (fun i -> names_arr.(i)) c })

let make program viewpoint prefs =
  let view = Ordered.Program.view program viewpoint in
  let rules = Array.of_list view in
  let n = Array.length rules in
  (* rule names must identify a unique rule of the view *)
  let by_name = Hashtbl.create 16 in
  Array.iteri
    (fun i (_, r) ->
      match Rule.name r with
      | None -> ()
      | Some nm ->
        if Hashtbl.mem by_name nm then
          Ordered.Diag.invalid ~where
            (Printf.sprintf
               "rule name %S names more than one rule in this viewpoint" nm)
        else Hashtbl.add by_name nm i)
    rules;
  List.iter
    (fun (a, b) ->
      if a = b then
        Ordered.Diag.fail (Ordered.Diag.Preference_cycle { cycle = [ a; a ] });
      List.iter
        (fun nm ->
          if not (Hashtbl.mem by_name nm) then
            Ordered.Diag.invalid ~where
              (Printf.sprintf "prefer names unknown rule %S (no rule \
                               [%s : ...] in this viewpoint)" nm nm))
        [ a; b ])
    prefs;
  (* the combined rule order — component order between the rules'
     components plus the prefer pairs — must stay a strict poset *)
  let poset = Ordered.Program.poset program in
  let label i =
    let c, r = rules.(i) in
    match Rule.name r with
    | Some nm -> nm
    | None ->
      Printf.sprintf "<unnamed rule in %s>"
        (Ordered.Program.component_name program c)
  in
  let pref_edges =
    List.map (fun (a, b) -> (Hashtbl.find by_name a, Hashtbl.find by_name b)) prefs
  in
  let edges_of i =
    let ci = fst rules.(i) in
    let acc = ref [] in
    for j = n - 1 downto 0 do
      if Ordered.Poset.lt poset ci (fst rules.(j)) then acc := j :: !acc
    done;
    List.iter (fun (a, b) -> if a = i then acc := b :: !acc) pref_edges;
    !acc
  in
  (match find_cycle ~n edges_of with
  | None -> ()
  | Some c ->
    Ordered.Diag.fail (Ordered.Diag.Preference_cycle { cycle = List.map label c }));
  { program; viewpoint; prefs }

let named_rules t =
  Ordered.Program.view t.program t.viewpoint
  |> List.filter_map (fun (_, r) -> Rule.name r)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" Ordered.Program.pp t.program
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (a, b) ->
         Format.fprintf ppf "prefer %s > %s." a b))
    t.prefs
