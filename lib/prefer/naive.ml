
(* The reference implementation: instead of compiling the preference
   order into fresh components and re-grounding, refine the edge arrays
   of the *original* grounding directly.  Ground rules are grouped into
   classes — one class per (component, rule name) — and the combined
   rule order is the transitive closure of

     class(i) < class(j)   if  C(i) < C(j) in the object order,
                           or  (name i, name j) is a prefer pair;

   then Definition 2 is re-read with classes in place of components:
   [j] overrules [i] when class(j) < class(i), and [j] defeats [i] when
   the classes are unrelated (including equal).  Enumeration is the
   leaf-check oracle ([Ordered.Stable.Naive]), so the differential test
   against {!Compile} exercises both an independent order construction
   and an independent search. *)

type cls = { comp : Ordered.Program.component_id; name : string option }

let refined_gop (spec : Spec.t) =
  let g = Ordered.Gop.ground spec.Spec.program spec.Spec.viewpoint in
  let nr = Array.length g.Ordered.Gop.rules in
  let poset = Ordered.Program.poset spec.Spec.program in
  (* intern classes *)
  let classes = ref [] in
  let nclass = ref 0 in
  let class_of = Array.make nr 0 in
  Array.iteri
    (fun i (r : Ordered.Gop.grule) ->
      let c = { comp = r.Ordered.Gop.comp; name = r.Ordered.Gop.name } in
      match List.assoc_opt c !classes with
      | Some id -> class_of.(i) <- id
      | None ->
        classes := (c, !nclass) :: !classes;
        class_of.(i) <- !nclass;
        incr nclass)
    g.Ordered.Gop.rules;
  let nc = !nclass in
  let cls = Array.make nc { comp = 0; name = None } in
  List.iter (fun (c, id) -> cls.(id) <- c) !classes;
  (* base edges, then a pairwise-propagation closure (iterated until it
     stops growing — deliberately not the matrix closure Poset uses) *)
  let lt = Array.make_matrix nc nc false in
  for u = 0 to nc - 1 do
    for v = 0 to nc - 1 do
      if u <> v then begin
        if Ordered.Poset.lt poset cls.(u).comp cls.(v).comp then
          lt.(u).(v) <- true;
        match (cls.(u).name, cls.(v).name) with
        | Some a, Some b when List.mem (a, b) spec.Spec.prefs ->
          lt.(u).(v) <- true
        | _ -> ()
      end
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to nc - 1 do
      for v = 0 to nc - 1 do
        if lt.(u).(v) then
          for w = 0 to nc - 1 do
            if lt.(v).(w) && not lt.(u).(w) then begin
              lt.(u).(w) <- true;
              changed := true
            end
          done
      done
    done
  done;
  (* rebuild the Definition 2 adjacency under the refined order *)
  let overrulers = Array.make nr [] in
  let defeaters = Array.make nr [] in
  let suppresses = Array.make nr [] in
  let na = Array.length g.Ordered.Gop.atoms in
  for a = 0 to na - 1 do
    let here = g.Ordered.Gop.by_head.(a) in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            let ri = g.Ordered.Gop.rules.(i)
            and rj = g.Ordered.Gop.rules.(j) in
            if ri.Ordered.Gop.head_pol <> rj.Ordered.Gop.head_pol then begin
              let ci = class_of.(i) and cj = class_of.(j) in
              if lt.(cj).(ci) then begin
                overrulers.(i) <- j :: overrulers.(i);
                suppresses.(j) <- i :: suppresses.(j)
              end
              else if not lt.(ci).(cj) then begin
                defeaters.(i) <- j :: defeaters.(i);
                suppresses.(j) <- i :: suppresses.(j)
              end
            end)
          here)
      here
  done;
  { g with Ordered.Gop.overrulers; defeaters; suppresses }

let preferred_models ?limit ?budget ?stats spec =
  Ordered.Stable.Naive.stable_models ?limit ?budget ?stats
    (refined_gop spec)
