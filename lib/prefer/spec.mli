(** A rule-preference specification: an ordered program, a viewpoint, and
    a strict partial order on its {e named} rules.

    [prefer a > b] declares rule [a] preferred over rule [b]: where their
    ground instances contradict, [a]'s instance overrules [b]'s, exactly
    as a rule of a more specific component overrules an inherited one
    (paper, Definition 2).  The preference order {e refines} the object
    order — both kinds of edge combine into one strict order on rules,
    and {!make} rejects any combination that would relate a rule to
    itself ({!Ordered.Diag.Preference_cycle}). *)

type t = private {
  program : Ordered.Program.t;
  viewpoint : Ordered.Program.component_id;
  prefs : (string * string) list;  (** [(preferred, over)] name pairs *)
}

val make :
  Ordered.Program.t ->
  Ordered.Program.component_id ->
  (string * string) list ->
  t
(** Validate and pack.  Raises {!Ordered.Diag.Error}:
    [Invalid_input] when a preference names a rule that does not exist in
    the viewpoint or a name is ambiguous there, [Preference_cycle] when
    the combined rule order (component order plus preferences) has a
    cycle. *)

val check_pairs : (string * string) list -> unit
(** Structural check on the pairs alone (no program needed): rejects
    self-preferences and cycles among the declared pairs with
    {!Ordered.Diag.Preference_cycle}.  Used by the KB mutation path,
    which accepts preferences before the named rules exist. *)

val named_rules : t -> string list
(** Names of the named rules visible from the viewpoint, in view order. *)

val pp : Format.formatter -> t -> unit
