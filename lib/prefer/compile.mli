(** Compiling rule preferences away.

    In the style of Delgrande–Schaub's compiled preferences (cs/0003028),
    a preference specification is translated into a {e plain} ordered
    program that an unmodified solver evaluates: every rule of the view
    is placed in a fresh component of its own, the original component
    order is restricted to those singleton components, each
    [prefer a > b] becomes one more component-order edge [c(a) < c(b)],
    and an empty bottom component [#view] extends them all.  The stable
    models of the compiled program at [#view] — enumerated by
    {!Ordered.Stable}'s pruned search with zero solver changes — are
    exactly the preferred models: the paper's overruling machinery
    (Definition 2) applied to the preference-refined rule order.

    With [~trace:true] the compilation also emits a fresh {e control
    atom} [ap@name] per named rule, derived exactly when an instance of
    that rule is applied, so a model shows which preferred rules fired;
    the [ap@] prefix is reserved in that mode. *)

type t = private {
  spec : Spec.t;
  program : Ordered.Program.t;  (** the compiled plain ordered program *)
  viewpoint : Ordered.Program.component_id;  (** id of [#view] *)
  trace : bool;
}

val compile : ?trace:bool -> Spec.t -> t
(** Raises {!Ordered.Diag.Error} ([Invalid_input]) in trace mode if a
    source predicate uses the reserved [ap@] prefix.  (The spec itself
    was already validated by {!Spec.make}.) *)

val gop :
  ?budget:Ordered.Budget.t ->
  ?max_instances:int ->
  ?grounder:[ `Naive | `Relevant ] ->
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  t ->
  Ordered.Gop.t
(** Ground the compiled program at [#view]. *)

val preferred_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?stats:Ordered.Counters.t ->
  t ->
  Logic.Interp.t list Ordered.Budget.anytime
(** The preferred models, in the pruned search's enumeration order
    (anytime, like {!Ordered.Stable.stable_models}).  In trace mode the
    models include the [ap@] control atoms; {!project} strips them. *)

val project : Logic.Interp.t -> Logic.Interp.t
(** Drop [ap@] control atoms from a model of a traced compilation. *)

val is_control : Logic.Atom.t -> bool

val control_prefix : string
(** ["ap@"]. *)
