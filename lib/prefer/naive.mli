(** The reference implementation of preferred models, kept as a
    differential oracle for {!Compile} exactly as {!Ordered.Stable.Naive}
    is for the pruned search.

    It never builds the compiled program: it grounds the {e original}
    program, computes the preference-refined rule order directly on
    (component, rule-name) classes of ground rules — its own transitive
    closure, independent of {!Ordered.Poset} — rewires the
    overruler/defeater adjacency of Definition 2 under that order, and
    enumerates with the leaf-check oracle.  Same model sets as the
    compiled route, in the naive search order. *)

val refined_gop : Spec.t -> Ordered.Gop.t
(** The original grounding with overruling/defeating recomputed under
    the preference-refined rule order. *)

val preferred_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?stats:Ordered.Counters.t ->
  Spec.t ->
  Logic.Interp.t list Ordered.Budget.anytime
(** The preferred models, in the leaf-check oracle's enumeration order
    (anytime, like {!Ordered.Stable.Naive.stable_models}). *)
