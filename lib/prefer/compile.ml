open Logic

type t = {
  spec : Spec.t;
  program : Ordered.Program.t;
  viewpoint : Ordered.Program.component_id;
  trace : bool;
}

let where = "prefer compile"
let view_component = "#view"
let control_prefix = "ap@"

let is_control (a : Atom.t) =
  String.length a.pred >= String.length control_prefix
  && String.sub a.pred 0 (String.length control_prefix) = control_prefix

(* In trace mode every named rule [n : H :- B.] gets a companion
   [ap@n :- B, H.] in its own component: the control atom [ap@n] is
   derived exactly when some ground instance of the rule is applied
   (body satisfied and head holds), making the firing of a named rule
   observable in the model.  The control atom has no contradicting
   rules, so it never interferes with overruling or defeating. *)
let trace_rule name (r : Rule.t) =
  Rule.make
    (Literal.pos (Atom.prop (control_prefix ^ name)))
    (Rule.body r @ [ Rule.head r ])

let compile ?(trace = false) (spec : Spec.t) =
  let view = Ordered.Program.view spec.program spec.viewpoint in
  let poset = Ordered.Program.poset spec.program in
  let rules = Array.of_list view in
  let n = Array.length rules in
  if trace then
    Array.iter
      (fun (_, r) ->
        List.iter
          (fun (p, _) ->
            if
              String.length p >= String.length control_prefix
              && String.sub p 0 (String.length control_prefix)
                 = control_prefix
            then
              Ordered.Diag.invalid ~where
                (Printf.sprintf
                   "predicate %S uses the %S prefix, reserved for control \
                    atoms in trace mode"
                   p control_prefix))
          (Rule.predicates r))
      rules;
  (* One fresh component per source rule of the view, named after its
     original component, plus an empty bottom component [#view] that
     extends them all: viewing the compiled program from [#view] sees
     exactly the original view, with the rule order reified as the
     component order. *)
  let comp_name k =
    let c, _ = rules.(k) in
    Printf.sprintf "%s#%d" (Ordered.Program.component_name spec.program c) k
  in
  let by_name = Hashtbl.create 16 in
  Array.iteri
    (fun k (_, r) ->
      match Rule.name r with
      | Some nm -> Hashtbl.replace by_name nm k
      | None -> ())
    rules;
  let comps =
    List.init n (fun k ->
        let _, r = rules.(k) in
        let traced =
          if trace then
            match Rule.name r with
            | Some nm -> [ trace_rule nm r ]
            | None -> []
          else []
        in
        (comp_name k, r :: traced))
    @ [ (view_component, []) ]
  in
  let pairs =
    List.init n (fun k -> (view_component, comp_name k))
    @ List.concat
        (List.init n (fun k ->
             List.filter_map
               (fun l ->
                 if Ordered.Poset.lt poset (fst rules.(k)) (fst rules.(l))
                 then Some (comp_name k, comp_name l)
                 else None)
               (List.init n Fun.id)))
    @ List.map
        (fun (a, b) ->
          (comp_name (Hashtbl.find by_name a),
           comp_name (Hashtbl.find by_name b)))
        spec.Spec.prefs
  in
  let program = Ordered.Program.make_exn comps pairs in
  { spec;
    program;
    viewpoint = Ordered.Program.component_id_exn program view_component;
    trace
  }

let gop ?budget ?max_instances ?grounder ?depth ?extra_constants t =
  Ordered.Gop.ground ?budget ?max_instances ?grounder ?depth
    ?extra_constants t.program t.viewpoint

let project m =
  Interp.fold
    (fun a b acc -> if is_control a then acc else Interp.set acc a b)
    m Interp.empty

let preferred_models ?limit ?budget ?stats t =
  Ordered.Stable.stable_models ?limit ?budget ?stats (gop t)
