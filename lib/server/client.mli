(** A minimal blocking client for the wire protocol: one connection,
    request lines out, response lines in.  Used by [olp call] and by the
    serving benchmark; errors are values, not exceptions. *)

type t

val connect : ?retry:float -> Daemon.address -> (t, string) result
(** Connect to a server.  [retry] keeps retrying a refused or
    not-yet-bound address for that many seconds (50 ms between attempts)
    — the standard way to ride out a server that is still starting. *)

val request_line : t -> string -> (Wire.json, string) result
(** Send one raw request line (a newline is appended) and read the one
    response line, parsed.  [Error _] on connection failure or an
    unparsable response. *)

val request : t -> Wire.json -> (Wire.json, string) result
(** Encode and send a request object. *)

val request_batch :
  ?id:int -> t -> Wire.json list -> (Wire.json list, string) result
(** Send the items as one [batch] frame and return the per-item
    responses, in request order, unpacked from the reply envelope
    ([Error _] if the whole frame was refused).  One round-trip for up
    to {!Wire.max_batch} requests. *)

val shutdown : t -> unit
(** Shut both directions of the socket down without closing the
    descriptor: a thread blocked in {!request} sees end-of-file and
    returns an error.  The replication link's stop path uses this to
    interrupt an in-flight poll from another thread. *)

val close : t -> unit
