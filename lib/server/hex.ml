(* Lowercase hex transport encoding for binary payloads carried inside
   JSON strings (replication ships raw WAL frames this way); see
   hex.mli. *)

let digits = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) digits.[c lsr 4];
    Bytes.set out ((2 * i) + 1) digits.[c land 0xF]
  done;
  Bytes.unsafe_to_string out

let nibble = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else begin
    let out = Bytes.create (n / 2) in
    let bad = ref None in
    let i = ref 0 in
    while !bad = None && !i < n / 2 do
      let hi = nibble s.[2 * !i] and lo = nibble s.[(2 * !i) + 1] in
      if hi < 0 || lo < 0 then
        bad :=
          Some
            (Printf.sprintf "invalid hex character %C at offset %d"
               (if hi < 0 then s.[2 * !i] else s.[(2 * !i) + 1])
               (if hi < 0 then 2 * !i else (2 * !i) + 1))
      else begin
        Bytes.set out !i (Char.chr ((hi lsl 4) lor lo));
        incr i
      end
    done;
    match !bad with
    | Some msg -> Error msg
    | None -> Ok (Bytes.unsafe_to_string out)
  end
