module M = Governor.Metrics

type address = [ `Unix of string | `Tcp of string * int ]

(* ADDR grammar shared by the CLI flags and the replica-set client:
   HOST:PORT is TCP, a bare number is a local TCP port, "unix:PATH"
   (the printable form redirects and stats carry) or anything else a
   Unix socket path. *)
let parse_address s : address =
  let is_digits x =
    x <> "" && String.for_all (fun c -> c >= '0' && c <= '9') x
  in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    `Unix (String.sub s 5 (String.length s - 5))
  else
    match String.rindex_opt s ':' with
    | Some i ->
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      if host <> "" && is_digits port then `Tcp (host, int_of_string port)
      else `Unix s
    | None ->
      if is_digits s then `Tcp ("127.0.0.1", int_of_string s) else `Unix s

let address_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type config = {
  address : address;
  workers : int;
  parallel : Pool.backend;
  queue : int;
  caps : Engine.caps;
  persist : Persist.config option;
  replicate_on : address option;
  sync : Engine.sync option;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound : address;
  repl : (Unix.file_descr * address) option;  (* replication listener *)
  engine : Engine.t;
  persist : (Persist.t * Persist.recovery) option;
  pool : Pool.t;
  stop_r : Unix.file_descr;  (* self-pipe: select wake-up for stop *)
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  lock : Mutex.t;  (* guards [stopping], [conns], [readers] *)
  mutable conns : Unix.file_descr list;
  mutable readers : Thread.t list;
  mutable on_drain : (unit -> unit) option;
}

let engine t = t.engine
let address t = t.bound
let recovery t = Option.map snd t.persist
let persist_handle t = Option.map fst t.persist
let replication_address t = Option.map snd t.repl
let on_drain t f = t.on_drain <- Some f

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
    Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let listen address =
  let domain =
    match address with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match address with
  | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  (try Unix.bind fd (sockaddr_of address) with e -> Unix.close fd; raise e);
  Unix.listen fd 64;
  let bound =
    match address with
    | `Unix _ as a -> a
    | `Tcp (host, _) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
      | _ -> address)
  in
  (fd, bound)

let create config =
  let fd, bound = listen config.address in
  let repl =
    match config.replicate_on with
    | None -> None
    | Some a -> (
      try Some (listen a) with e -> Unix.close fd; raise e)
  in
  let close_listeners () =
    Unix.close fd;
    match repl with Some (rfd, _) -> Unix.close rfd | None -> ()
  in
  let metrics = M.create () in
  let pool =
    Pool.create ~backend:config.parallel ~workers:config.workers
      ~queue:config.queue ()
  in
  let extra_stats () =
    [ ("workers", Wire.Int config.workers);
      ("queue_capacity", Wire.Int config.queue)
    ]
  in
  let persist, session, persistence =
    match config.persist with
    | None -> (None, None, None)
    | Some pc ->
      let p, store, recovery =
        try Persist.open_dir ~metrics pc
        with e -> close_listeners (); raise e
      in
      let session = Kb.Session.of_store store in
      Kb.Session.on_mutation session (fun m -> Persist.append p m);
      ( Some (p, recovery),
        Some session,
        Some
          { Engine.snapshot = (fun () -> Persist.snapshot p);
            seq = (fun () -> Persist.seq p);
            epoch = (fun () -> Persist.epoch p);
            wait_durable = (fun () -> Persist.wait_durable p);
            tail =
              (fun ~from ~max ->
                match Persist.tail p ~from ~max with
                | Ok _ as ok -> ok
                | Error (`Too_old base) -> Error base);
            snapshot_image = (fun () -> Persist.snapshot_image p)
          } )
  in
  let engine =
    Engine.create ~caps:config.caps ~metrics ~extra_stats ?session
      ?persistence ?sync:config.sync ()
  in
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_w;
  { config;
    listen_fd = fd;
    bound;
    repl;
    engine;
    persist;
    pool;
    stop_r;
    stop_w;
    stopping = false;
    lock = Mutex.create ();
    conns = [];
    readers = [];
    on_drain = None
  }

let stop t =
  t.stopping <- true;
  (* wake the accept loop; the pipe is non-blocking and one byte is
     enough, so failures (full pipe, already closed) are harmless *)
  try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int)
  with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler

(* ------------------------------------------------------------------ *)
(* Per-connection reader                                               *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

(* One response line; serialized per connection so concurrent workers
   never interleave bytes of two responses. *)
let send conn_lock fd response =
  Mutex.lock conn_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn_lock)
    (fun () ->
      try write_all fd (Wire.to_string response ^ "\n")
      with Unix.Unix_error _ -> () (* client went away; drop silently *))

let handle_line t ~conn_lock fd line =
  let reply = send conn_lock fd in
  if t.stopping then
    reply (Wire.error_response ~kind:"draining" "server shutting down")
  else
    match Wire.decode_request line with
    | Error e ->
      M.incr (Engine.metrics t.engine) "proto_errors";
      reply (Wire.error_response ~kind:"proto" (Wire.error_to_string e))
    | Ok ({ verb = Wire.Shutdown; _ } as req) ->
      (* answered synchronously so the response is on the wire before the
         drain begins *)
      reply (Engine.handle t.engine req);
      stop t
    | Ok ({ verb = Wire.Hello _ | Wire.Pull _ | Wire.Fetch_snapshot _; _ }
          as req) ->
      (* replication verbs are served on the reader thread, off the
         bounded pool: the durability confirmations synchronous commit
         waits for ride on pulls, so they must keep flowing even when
         every worker is blocked in that very wait *)
      reply (Engine.handle t.engine req)
    | Ok req ->
      M.gauge_max (Engine.metrics t.engine) "queue_peak"
        (Pool.queued t.pool + 1);
      let job () = reply (Engine.handle t.engine req) in
      if not (Pool.submit t.pool job) then begin
        M.incr (Engine.metrics t.engine) "rejected";
        reply (Wire.error_response ~kind:"busy" "request queue full")
      end

let reader t fd =
  let conn_lock = Mutex.create () in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let discarding = ref false in
  let max_len = Wire.default_max_len in
  let flush_line line =
    let line =
      (* tolerate CRLF framing *)
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if String.trim line <> "" then handle_line t ~conn_lock fd line
  in
  let feed s =
    String.iter
      (fun c ->
        if c = '\n' then begin
          if !discarding then discarding := false
          else flush_line (Buffer.contents buf);
          Buffer.clear buf
        end
        else if !discarding then ()
        else begin
          Buffer.add_char buf c;
          if Buffer.length buf > max_len then begin
            (* typed error now, then skip the rest of this frame *)
            send conn_lock fd
              (Wire.error_response ~kind:"proto"
                 (Wire.error_to_string
                    (Wire.Oversized
                       { length = Buffer.length buf; limit = max_len })));
            M.incr (Engine.metrics t.engine) "proto_errors";
            Buffer.clear buf;
            discarding := true
          end
        end)
      s
  in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      feed (Bytes.sub_string chunk 0 n);
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let serve t =
  let listeners =
    t.listen_fd :: (match t.repl with Some (fd, _) -> [ fd ] | None -> [])
  in
  let accept_on fd =
    match Unix.accept fd with
    | conn, _ ->
      M.incr (Engine.metrics t.engine) "connections";
      Mutex.lock t.lock;
      t.conns <- conn :: t.conns;
      t.readers <- Thread.create (reader t) conn :: t.readers;
      Mutex.unlock t.lock
    | exception Unix.Unix_error _ -> ()
  in
  let rec accept_loop () =
    if not t.stopping then begin
      match Unix.select (t.stop_r :: listeners) [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | readable, _, _ ->
        if not t.stopping then begin
          (* both listeners feed the same engine: replicas speak the
             ordinary wire protocol, just on their own address *)
          List.iter
            (fun fd -> if List.mem fd readable then accept_on fd)
            listeners;
          accept_loop ()
        end
        (* otherwise: woken by the stop pipe (or stop flag already set) *)
    end
  in
  accept_loop ();
  (* drain: stop listening, finish queued and in-flight work, then close
     the surviving connections and collect the readers *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.bound with
  | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  (match t.repl with
  | Some (fd, bound) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match bound with
    | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ())
  | None -> ());
  Pool.drain t.pool;
  Mutex.lock t.lock;
  let conns = t.conns and readers = t.readers in
  t.readers <- [];
  Mutex.unlock t.lock;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join readers;
  (* the drain hook runs after the workers and readers are gone but
     before the WAL closes — bin stops the replication link here so its
     last append cannot race the close *)
  (match t.on_drain with Some f -> (try f () with _ -> ()) | None -> ());
  (* all workers and readers are gone; no appends can race the close *)
  (match t.persist with Some (p, _) -> Persist.close p | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()
