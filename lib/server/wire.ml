(* Hand-rolled line-oriented JSON codec for the query server (the
   toolchain bakes in no JSON library; the grammar is RFC 8259 with a
   frame-length and a nesting-depth limit so hostile input cannot blow
   the worker's stack or memory).  Pure; see wire.mli. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

type error =
  | Oversized of { length : int; limit : int }
  | Syntax of { offset : int; message : string }
  | Request of { message : string }

let error_to_string = function
  | Oversized { length; limit } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" length limit
  | Syntax { offset; message } ->
    Printf.sprintf "invalid JSON at offset %d: %s" offset message
  | Request { message } -> Printf.sprintf "invalid request: %s" message

let default_max_len = 1024 * 1024
let max_depth = 256

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let utf8_encode buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse ?(max_len = default_max_len) s =
  let n = String.length s in
  if n > max_len then Error (Oversized { length = n; limit = max_len })
  else begin
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        &&
        match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word =
      if
        !pos + String.length word <= n
        && String.sub s !pos (String.length word) = word
      then pos := !pos + String.length word
      else fail (Printf.sprintf "expected %s" word)
    in
    let hex4 () =
      let v = ref 0 in
      for _ = 1 to 4 do
        (match peek () with
        | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - 48)
        | Some ('a' .. 'f' as c) -> v := (!v * 16) + (Char.code c - 87)
        | Some ('A' .. 'F' as c) -> v := (!v * 16) + (Char.code c - 55)
        | _ -> fail "bad \\u escape");
        advance ()
      done;
      !v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\' | '/') as c) ->
            Buffer.add_char buf c;
            advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
            advance ();
            let cp = hex4 () in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: require the low half *)
              if peek () = Some '\\' then advance () else fail "lone surrogate";
              if peek () = Some 'u' then advance () else fail "lone surrogate";
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "bad surrogate pair";
              utf8_encode buf
                (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone surrogate"
            else utf8_encode buf cp
          | _ -> fail "bad escape");
          go ()
        | Some c when Char.code c < 0x20 -> fail "control character in string"
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      let digits () =
        let d0 = !pos in
        while match peek () with Some '0' .. '9' -> true | _ -> false do
          advance ()
        done;
        if !pos = d0 then fail "expected digit"
      in
      (* integer part: "0" or a nonzero digit followed by more — a
         leading zero is not RFC 8259 *)
      (match peek () with
      | Some '0' -> (
        advance ();
        match peek () with
        | Some '0' .. '9' -> fail "leading zero"
        | _ -> ())
      | Some '1' .. '9' -> digits ()
      | _ -> fail "expected digit");
      let fractional = ref false in
      if peek () = Some '.' then begin
        fractional := true;
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ());
      let src = String.sub s start (!pos - start) in
      if !fractional then Float (float_of_string src)
      else
        match int_of_string_opt src with
        | Some i -> Int i
        | None -> Float (float_of_string src)
    in
    let rec value depth =
      if depth > max_depth then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let members = ref [] in
          let member () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            members := (k, value (depth + 1)) :: !members
          in
          member ();
          while (skip_ws (); peek () = Some ',') do
            advance ();
            member ()
          done;
          skip_ws ();
          expect '}';
          Obj (List.rev !members)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else begin
          let items = ref [ value (depth + 1) ] in
          while (skip_ws (); peek () = Some ',') do
            advance ();
            items := value (depth + 1) :: !items
          done;
          skip_ws ();
          expect ']';
          List (List.rev !items)
        end
      | Some '"' -> String (string_lit ())
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"; Bool true
      | Some 'f' -> literal "false"; Bool false
      | Some 'n' -> literal "null"; Null
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
      | None -> fail "unexpected end of input"
    in
    match
      let v = value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage after document";
      v
    with
    | v -> Ok v
    | exception Bad (offset, message) -> Error (Syntax { offset; message })
  end

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf s;
      (* "%g" may print an integer-valued float without '.' or 'e' *)
      if String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s
      then Buffer.add_string buf ".0"
    end
    else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf v)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add_json buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add_json buf v;
  Buffer.contents buf

let member k = function Obj members -> List.assoc_opt k members | _ -> None

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)
(* ------------------------------------------------------------------ *)

type budget_spec = { timeout_ms : int option; max_steps : int option }

type verb =
  | Load of { src : string }
  | Define of { name : string; isa : string list; rules : string }
  | Add_rule of { obj : string; rule : string }
  | Remove_rule of { obj : string; rule : string }
  | New_version of { name : string; rules : string option }
  | Query of {
      obj : string;
      lit : string;
      prefer : [ `Compiled | `Naive ] option;
      search : [ `Pruned | `Naive | `Compiled ] option;
    }
  | Models of {
      obj : string;
      kind : [ `Stable | `Af ];
      limit : int option;
      engine : [ `Pruned | `Naive | `Compiled ];
      prefer : [ `Compiled | `Naive ] option;
    }
  | Set_preference of { rule : string; over : string }
  | Clear_preference of { rule : string; over : string }
  | Explain of { obj : string; lit : string }
  | Stats
  | Version
  | Snapshot
  | Shutdown
  | Hello of {
      seq : int;
      protocol : int;
      epoch : int;
      rid : string option;
      addr : string option;
    }
  | Pull of {
      from_seq : int;
      max : int option;
      epoch : int;
      rid : string option;
      durable : int option;
      addr : string option;
    }
  | Fetch_snapshot of { epoch : int }
  | Promote
  | Batch of batch_item list

and request = { id : int option; budget : budget_spec; verb : verb }

and batch_item = (request, string) result

let package_version = "1.7.0"
let protocol_revision = 7
let max_batch = 256

exception Bad_request of string

let reject fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let str_field o name =
  match member name o with
  | Some (String s) -> s
  | Some _ -> reject "field %S must be a string" name
  | None -> reject "missing field %S" name

let opt_str_field o name =
  match member name o with
  | Some (String s) -> Some s
  | Some Null | None -> None
  | Some _ -> reject "field %S must be a string" name

let opt_nat_field o name =
  match member name o with
  | Some (Int i) when i >= 0 -> Some i
  | Some Null | None -> None
  | Some _ -> reject "field %S must be a non-negative integer" name

let nat_field o name =
  match opt_nat_field o name with
  | Some i -> i
  | None -> reject "missing field %S" name

let str_list_field o name =
  match member name o with
  | Some (List items) ->
    List.map
      (function
        | String s -> s
        | _ -> reject "field %S must be a list of strings" name)
      items
  | Some Null | None -> []
  | Some _ -> reject "field %S must be a list of strings" name

let prefer_field o =
  match opt_str_field o "prefer" with
  | None -> None
  | Some "compiled" -> Some `Compiled
  | Some "naive" -> Some `Naive
  | Some p -> reject "unknown prefer engine %S" p

(* [search] is the canonical field naming the stable-model search
   engine; [engine] is kept as a legacy alias (models only).  When both
   appear they must agree. *)
let search_field o =
  let of_name field = function
    | "pruned" -> `Pruned
    | "naive" -> `Naive
    | "compiled" -> `Compiled
    | e -> reject "unknown %s %S" field e
  in
  match (opt_str_field o "search", opt_str_field o "engine") with
  | Some s, Some e when s <> e ->
    reject "\"search\" and legacy \"engine\" disagree (%S vs %S)" s e
  | Some s, _ -> Some (of_name "search engine" s)
  | None, Some e -> Some (of_name "engine" e)
  | None, None -> None

let rec decode_verb o = function
  | "load" -> Load { src = str_field o "src" }
  | "define" ->
    Define
      { name = str_field o "name";
        isa = str_list_field o "isa";
        rules = Option.value ~default:"" (opt_str_field o "rules")
      }
  | "add_rule" -> Add_rule { obj = str_field o "obj"; rule = str_field o "rule" }
  | "remove_rule" ->
    Remove_rule { obj = str_field o "obj"; rule = str_field o "rule" }
  | "new_version" ->
    New_version { name = str_field o "name"; rules = opt_str_field o "rules" }
  | "query" ->
    let prefer = prefer_field o in
    let search = search_field o in
    if search <> None && prefer = None then
      reject "\"search\" on a query requires \"prefer\"";
    Query { obj = str_field o "obj"; lit = str_field o "lit"; prefer; search }
  | "models" ->
    let kind =
      match opt_str_field o "kind" with
      | None | Some "stable" -> `Stable
      | Some "assumption-free" -> `Af
      | Some k -> reject "unknown models kind %S" k
    in
    let engine = Option.value ~default:`Pruned (search_field o) in
    let prefer = prefer_field o in
    if prefer <> None && kind = `Af then
      reject "\"prefer\" applies to stable models only (kind \"stable\")";
    Models
      { obj = str_field o "obj";
        kind;
        limit = opt_nat_field o "limit";
        engine;
        prefer
      }
  | "set_preference" ->
    Set_preference { rule = str_field o "rule"; over = str_field o "over" }
  | "clear_preference" ->
    Clear_preference { rule = str_field o "rule"; over = str_field o "over" }
  | "explain" -> Explain { obj = str_field o "obj"; lit = str_field o "lit" }
  | "stats" -> Stats
  | "version" -> Version
  | "snapshot" -> Snapshot
  | "shutdown" -> Shutdown
  | "hello" ->
    Hello
      { seq = nat_field o "seq";
        protocol = nat_field o "protocol";
        epoch = Option.value ~default:0 (opt_nat_field o "epoch");
        rid = opt_str_field o "rid";
        addr = opt_str_field o "addr"
      }
  | "pull" ->
    Pull
      { from_seq = nat_field o "from";
        max = opt_nat_field o "max";
        epoch = Option.value ~default:0 (opt_nat_field o "epoch");
        rid = opt_str_field o "rid";
        durable = opt_nat_field o "durable";
        addr = opt_str_field o "addr"
      }
  | "fetch_snapshot" ->
    Fetch_snapshot
      { epoch = Option.value ~default:0 (opt_nat_field o "epoch") }
  | "promote" -> Promote
  | "batch" ->
    let items =
      match member "requests" o with
      | Some (List items) -> items
      | Some _ -> reject "field \"requests\" must be a list of requests"
      | None -> reject "missing field \"requests\""
    in
    let n = List.length items in
    if n = 0 then reject "empty batch";
    if n > max_batch then
      reject "batch of %d requests exceeds the limit of %d" n max_batch;
    Batch (List.map decode_item items)
  | op -> reject "unknown op %S" op

(* One batched request.  A malformed item never poisons the frame: its
   decode failure is reified as [Error message] and answered in place,
   so the sibling requests still run.  Connection-scoped verbs (the
   replication handshake, shutdown) and nested batches are rejected
   per-item too. *)
and decode_item = function
  | Obj _ as o -> (
    match
      (match str_field o "op" with
      | "batch" -> reject "nested batch"
      | ("shutdown" | "hello" | "pull" | "fetch_snapshot" | "promote") as op ->
        reject "op %S cannot appear inside a batch" op
      | _ -> ());
      decode_request_obj o
    with
    | r -> Ok r
    | exception Bad_request message -> Error message)
  | _ -> Error "batch item must be a JSON object"

and decode_request_obj o =
  let verb = decode_verb o (str_field o "op") in
  let id =
    match member "id" o with
    | Some (Int i) -> Some i
    | Some Null | None -> None
    | Some _ -> reject "field \"id\" must be an integer"
  in
  let budget =
    { timeout_ms = opt_nat_field o "timeout_ms";
      max_steps = opt_nat_field o "max_steps"
    }
  in
  { id; budget; verb }

let decode_request ?max_len line =
  match parse ?max_len line with
  | Error e -> Error e
  | Ok (Obj _ as o) -> (
    match decode_request_obj o with
    | r -> Ok r
    | exception Bad_request message -> Error (Request { message }))
  | Ok _ -> Error (Request { message = "request must be a JSON object" })

let batch ?id items =
  Obj
    (("op", String "batch")
    :: (match id with None -> [] | Some i -> [ ("id", Int i) ])
    @ [ ("requests", List items) ])

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let with_id id fields =
  match id with None -> fields | Some i -> ("id", Int i) :: fields

let ok ?id fields = Obj (("status", String "ok") :: with_id id fields)

let partial ?id ~reason fields =
  Obj
    (("status", String "partial")
    :: with_id id (("reason", String reason) :: fields))

let error_response ?id ?(extra = []) ~kind message =
  Obj
    (("status", String "error")
    :: with_id id
         [ ("error",
            Obj
              (("kind", String kind) :: ("message", String message) :: extra))
         ])

let status_of_response j =
  match member "status" j with
  | Some (String "ok") -> `Ok
  | Some (String "partial") -> `Partial
  | Some (String "error") -> `Error
  | _ -> `Unknown
