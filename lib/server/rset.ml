(* A self-healing replica-set client: routes writes to the primary,
   reads round-robin, follows redirects and backs off across sweeps.
   See rset.mli for the routing rules. *)

module Backoff = Governor.Backoff

type node = { addr : Daemon.address; mutable conn : Client.t option }

type t = {
  mutable nodes : node array;
  mutable primary : int option;  (* index into [nodes] *)
  mutable rr : int;  (* round-robin cursor for reads *)
  connect_retry : float;
  backoff : Backoff.t;
}

let create ?(connect_retry = 0.05) ?(retry_base = 0.05) ?(retry_cap = 1.0)
    seeds =
  if seeds = [] then
    invalid_arg "Rset.create: at least one seed address is required";
  let seen = Hashtbl.create 8 in
  let nodes =
    List.filter_map
      (fun addr ->
        let key = Daemon.address_to_string addr in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some { addr; conn = None }
        end)
      seeds
  in
  { nodes = Array.of_list nodes;
    primary = None;
    rr = 0;
    connect_retry;
    backoff =
      Backoff.make ~base:retry_base ~cap:retry_cap
        ~seed:(Hashtbl.hash (List.map Daemon.address_to_string seeds))
        ()
  }

let nodes t =
  Array.to_list (Array.map (fun n -> Daemon.address_to_string n.addr) t.nodes)

let primary t =
  Option.map
    (fun i -> Daemon.address_to_string t.nodes.(i).addr)
    t.primary

let close t =
  Array.iter
    (fun n ->
      (match n.conn with Some c -> Client.close c | None -> ());
      n.conn <- None)
    t.nodes

(* Find or learn a node by address; redirects teach us primaries we
   were never seeded with. *)
let index_of t addr =
  let key = Daemon.address_to_string addr in
  let found = ref None in
  Array.iteri
    (fun i n ->
      if !found = None && Daemon.address_to_string n.addr = key then
        found := Some i)
    t.nodes;
  match !found with
  | Some i -> i
  | None ->
    t.nodes <- Array.append t.nodes [| { addr; conn = None } |];
    Array.length t.nodes - 1

let drop t i =
  let n = t.nodes.(i) in
  (match n.conn with Some c -> Client.close c | None -> ());
  n.conn <- None;
  if t.primary = Some i then t.primary <- None

let exchange t i j =
  let n = t.nodes.(i) in
  let conn =
    match n.conn with
    | Some c -> Ok c
    | None -> (
      match Client.connect ~retry:t.connect_retry n.addr with
      | Ok c ->
        n.conn <- Some c;
        Ok c
      | Error _ as e -> e)
  in
  match conn with
  | Error _ as e -> e
  | Ok c -> (
    match Client.request c j with
    | Ok _ as ok -> ok
    | Error _ as e ->
      drop t i;
      e)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

(* "batch" routes to the primary: a batch may carry writes, and the
   primary serves the read items just as well. *)
let write_ops =
  [ "load"; "define"; "add_rule"; "remove_rule"; "new_version"; "snapshot";
    "promote"; "shutdown"; "batch"
  ]

let is_write j =
  match Wire.member "op" j with
  | Some (Wire.String op) -> List.mem op write_ops
  | _ -> false

let error_field j name =
  match Wire.member "error" j with
  | Some e -> (
    match Wire.member name e with Some (Wire.String s) -> Some s | _ -> None)
  | None -> None

(* A refusal that names the real primary is a redirect; one without is
   still a signal that this node is not the primary. *)
let refused_as_replica j =
  match error_field j "kind" with
  | Some ("read_only" | "fenced") -> Some (error_field j "primary")
  | _ -> None

let order t ~is_write =
  let n = Array.length t.nodes in
  if is_write then
    match t.primary with
    | Some p -> p :: List.filter (fun i -> i <> p) (List.init n Fun.id)
    | None -> List.init n Fun.id
  else begin
    let start = t.rr mod n in
    t.rr <- t.rr + 1;
    List.init n (fun k -> (start + k) mod n)
  end

let max_redirect_hops = 4

let request ?(retry = 0.) t j =
  let is_write = is_write j in
  let deadline = Unix.gettimeofday () +. retry in
  (* [sweep] walks one node order; [go] restarts after a redirect or,
     within the retry budget, after a backoff sleep. *)
  let rec go ~hops ~last_err =
    let rec sweep ~hops ~last_err = function
      | [] ->
        if Unix.gettimeofday () < deadline then begin
          ignore (Unix.select [] [] [] (Backoff.next t.backoff));
          go ~hops ~last_err
        end
        else Error last_err
      | i :: rest -> (
        match exchange t i j with
        | Error msg ->
          drop t i;
          let last_err =
            Printf.sprintf "%s: %s"
              (Daemon.address_to_string t.nodes.(i).addr)
              msg
          in
          sweep ~hops ~last_err rest
        (* a draining server is mid-shutdown: same as unreachable *)
        | Ok resp when error_field resp "kind" = Some "draining" ->
          drop t i;
          let last_err =
            Daemon.address_to_string t.nodes.(i).addr ^ ": draining"
          in
          sweep ~hops ~last_err rest
        | Ok resp -> (
          match refused_as_replica resp with
          | Some _ when not is_write ->
            (* a read never draws these refusals; don't loop on it *)
            Ok resp
          | Some (Some addr) when hops < max_redirect_hops ->
            t.primary <- Some (index_of t (Daemon.parse_address addr));
            go ~hops:(hops + 1) ~last_err
          | Some None when rest <> [] ->
            if t.primary = Some i then t.primary <- None;
            sweep ~hops ~last_err rest
          | Some _ ->
            (* redirect budget exhausted, or nowhere left to go: the
               typed refusal is the answer *)
            Ok resp
          | None ->
            if is_write then t.primary <- Some i;
            Backoff.reset t.backoff;
            Ok resp))
    in
    sweep ~hops ~last_err (order t ~is_write)
  in
  go ~hops:0 ~last_err:"no nodes reachable"

let request_line ?retry t line =
  match Wire.parse line with
  | Error e ->
    Error (Printf.sprintf "unparsable request: %s" (Wire.error_to_string e))
  | Ok j -> request ?retry t j
