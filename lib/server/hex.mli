(** Hex transport encoding: binary record images travel inside JSON
    strings (the wire codec carries no raw bytes), so replication ships
    WAL frames and snapshot images hex-encoded.  Encoding is lowercase;
    decoding accepts either case and never raises. *)

val encode : string -> string
(** [encode s] is the lowercase hex of [s] (length doubles). *)

val decode : string -> (string, string) result
(** Inverse of {!encode}; [Error] on odd length or a non-hex
    character. *)
