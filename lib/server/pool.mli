(** A fixed pool of workers draining a bounded job queue.

    Jobs are thunks; a job that raises is swallowed (workers never die —
    the request engine is responsible for turning failures into error
    responses before the job is submitted, so a raising job is a bug
    contained rather than a crashed server).

    {!submit} never blocks: when the queue is at capacity, or the pool is
    draining, it returns [false] and the caller answers with a typed
    ["busy"]/["draining"] error instead of holding the connection
    hostage.  {!drain} implements graceful shutdown: stop accepting,
    finish every queued and in-flight job, join the workers.

    Workers come in two flavours: systhreads ([`Threads], the default),
    which interleave on one runtime lock but overlap on blocking I/O
    (fsync waits, socket writes); and OCaml 5 domains ([`Domains]),
    which run truly parallel.  Both drain the same queue through the
    same domain-safe mutex/condition pair, so the choice is a
    deployment knob ([olp serve --parallel domains]), not an API
    difference. *)

type backend = [ `Threads | `Domains ]

type t

val create : ?backend:backend -> workers:int -> queue:int -> unit -> t
(** [workers] workers (>= 1) over a queue of capacity [queue] (>= 1),
    each a thread or a domain per [backend] ([`Threads] by default). *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] if the queue is full or the pool draining. *)

val queued : t -> int
(** Jobs waiting (not yet picked up by a worker). *)

val drain : t -> unit
(** Stop accepting, run everything already queued to completion, join
    the workers.  Idempotent. *)
