(** Striped locks for write admission.

    The engine's mutating verbs serialize per {e shard} — a stripe
    chosen by hashing the KB object a verb targets — instead of under
    one global mutex, so writers against disjoint objects run their
    prepare phase (rule parsing, validation) concurrently and only
    serialize for the short store-apply section.  Reads never touch
    these locks at all: they run against the session's published
    snapshot view.

    Acquisition is deadlock-free by construction: {!with_keys} sorts the
    stripe indices and locks them in ascending order, and [`All] (used
    by [load], which can touch every object) follows the same order. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] stripes (default 16; must be >= 1). *)

val size : t -> int

val index : t -> string -> int
(** The stripe a key hashes to (exposed for tests asserting two keys
    do or do not collide). *)

val with_keys : t -> [ `All | `Keys of string list ] -> (unit -> 'a) -> 'a
(** Run [f] holding the stripes of the given keys ([`All] = every
    stripe), released on return or exception.  Re-entry from inside [f]
    deadlocks (systhread mutexes are not recursive) — callers lock once
    per request. *)
