(** The request engine: one {!Kb.Session} serving decoded {!Wire}
    requests — lock-free snapshot reads, shard-locked writes.

    The engine owns everything between the wire and the solver: budget
    clamping, dispatch, response encoding, and the guarantee that {e no
    exception escapes} — solver diagnostics, parse errors and budget
    trips all come back as structured responses, so a worker thread can
    run [handle] on anything the decoder accepted.

    {b Budget clamping.}  A request may ask for ["timeout_ms"] and
    ["max_steps"]; the server's {!caps} bound both (the effective limit
    is the minimum of the request's and the cap, and the cap applies
    even when the request asks for nothing).  A budget trip yields a
    ["partial"] response: for [models] it carries the models found so
    far (a sound prefix, per the enumeration-order contract); for
    [query]/[explain]-style operations, which have no sound partial
    answer, it carries only the machine-readable reason.

    {b Concurrency.}  Read verbs ([query]/[models]/[explain]/[stats]/
    [version]) take no lock at all: they pin the session's current
    published snapshot with one atomic read and compute against that
    frozen version, so any number of workers — threads or domains —
    serve reads in parallel, unaffected by writers.  Mutating verbs
    ([load]/[define]/[add_rule]/[remove_rule]/[new_version]) are
    admitted through per-object {!Shards} stripes (disjoint objects
    overlap in their parse phase; the ["writers_peak"] gauge records the
    deepest overlap) and then serialize only their store-apply on the
    engine's io lock, which also orders WAL appends; durability and
    synchronous-commit waits happen outside every lock.  Replication
    verbs ([hello]/[pull]/[fetch_snapshot]/[promote]/[snapshot]) take
    the io lock.  A [batch] frame runs each item through its verb's full
    path in order and returns one envelope (["batches"]/["batch_items"]
    count frames and items).  The [stats] verb reports the session's
    cache counters and a deterministic snapshot of the server
    {!Governor.Metrics} registry. *)

type caps = {
  timeout : float option;
      (** per-request wall-clock cap, seconds ([None] = unlimited) *)
  steps : int option;  (** per-request step cap *)
}

val default_caps : caps
(** 30-second timeout cap, unlimited steps. *)

type t

type persistence = {
  snapshot : unit -> int;
      (** force a durable snapshot; returns the sequence number covered *)
  seq : unit -> int;  (** mutations logged so far *)
  epoch : unit -> int;
      (** current replication epoch (fencing term; see
          {!Persist.epoch}) *)
  wait_durable : unit -> unit;
      (** block until every logged mutation is on stable storage (the
          group-commit rendezvous; a no-op without group commit) *)
  tail : from:int -> max:int -> (string * int, int) result;
      (** raw framed WAL records after [from] ([Error oldest] when
          compacted away; see {!Persist.tail}) *)
  snapshot_image : unit -> int * string;
      (** current state as a snapshot encoding, for replica bootstrap *)
}
(** The engine's view of the persistence layer — closures, so [Server]
    needs no dependency on [Persist]; the daemon wires them to the
    corresponding {!Persist} operations under the engine lock. *)

type replication = {
  role : unit -> string;  (** ["primary"] or ["replica"] *)
  primary : unit -> string option;
      (** printable address of the primary (for the [Read_only]
          redirect); [None] on a primary *)
  details : unit -> (string * Wire.json) list;
      (** role-specific [stats] fields, in a fixed, deterministic
          order *)
  promote : unit -> (string, string) result;
      (** leave the replication stream and accept writes; [Ok role]
          with the new role, [Error] with a reason *)
}
(** The engine's view of the replication layer, injected by [bin] after
    the daemon is up ({!set_replication}).  With it set, write verbs on
    a ["replica"] role bounce with a typed [Read_only] diagnostic
    (["read_only"] error kind on the wire, with the primary's address in
    the error object for client-side redirects), [stats] gains a
    ["replication"] object, and the [promote] verb works. *)

type sync = {
  replicas : int;  (** confirmations required per acknowledged write *)
  timeout_ms : int;  (** degrade-to-diagnostic deadline *)
}
(** Synchronous-commit policy.  With it set, an acknowledged write is
    held until [replicas] distinct replica instances have confirmed (via
    the [durable] field piggybacked on their pulls, or their [hello]
    sequence) that the write's WAL sequence is on their stable storage.
    If the confirmations do not arrive within [timeout_ms], the response
    degrades to a typed ["sync_timeout"] error ({!Ordered.Diag.Sync_timeout}):
    the mutation {e is} applied and locally durable — only its
    replication guarantee is weaker than requested. *)

val create :
  ?caps:caps ->
  ?metrics:Governor.Metrics.t ->
  ?extra_stats:(unit -> (string * Wire.json) list) ->
  ?session:Kb.Session.t ->
  ?persistence:persistence ->
  ?sync:sync ->
  unit ->
  t
(** [extra_stats] is appended to the ["server"] object of the [stats]
    response (the daemon injects worker/queue configuration).
    [session] supplies a pre-built session (the daemon passes one whose
    store was recovered from disk); the default is a fresh empty one.
    With [persistence] wired, the [snapshot] verb works and [stats]
    reports ["persist_seq"]; without it the verb is an ["input"]
    error. *)

val session : t -> Kb.Session.t
val metrics : t -> Governor.Metrics.t

val replica_members : t -> string list
(** Advertised (client-reachable) addresses of the replicas that have
    completed a handshake or pulled from this server, sorted and
    deduplicated — the machine-readable replica-set topology the daemon
    publishes under [stats.replication.members].  Replicas that did not
    send an ["addr"] are invisible here. *)

val set_replication : t -> replication -> unit
(** Install the replication hooks (one slot; a second call replaces the
    first). *)

val exclusively : t -> (unit -> 'a) -> 'a
(** Run [f] holding the engine's io lock (the lock the write verbs'
    apply phase and the replication verbs serialize on) — the
    replication apply path uses this to replay shipped mutations without
    racing the request workers.  Lock-free readers are {e not} excluded:
    they keep serving the last published snapshot; publish a new one
    (e.g. {!Kb.Session.invalidate}) to make changes visible.  Do not
    call {!handle} (or anything that re-locks) from inside [f]. *)

val handle : t -> Wire.request -> Wire.json
(** Serve one request.  Never raises.  Updates the metrics counters
    ["served"], ["ok"], ["partials"], ["errors"] (per batch {e item} for
    a [batch] frame, plus ["batches"]/["batch_items"] for the frame
    itself). *)

val handle_line : t -> string -> Wire.json
(** Decode and serve one raw request line; decode failures become
    ["proto"] error responses (counted as ["proto_errors"]). *)
