type backend = [ `Threads | `Domains ]

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  mutable draining : bool;
  mutable threads : Thread.t list;
  mutable domains : unit Domain.t list;
}

let worker t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.jobs && not t.draining do
      Condition.wait t.nonempty t.lock
    done;
    match Queue.take_opt t.jobs with
    | None ->
      (* draining and empty: exit *)
      Mutex.unlock t.lock;
      ()
    | Some job ->
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      loop ()
  in
  loop ()

let create ?(backend = `Threads) ~workers ~queue () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if queue < 1 then invalid_arg "Pool.create: queue must be >= 1";
  let t =
    { lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity = queue;
      draining = false;
      threads = [];
      domains = []
    }
  in
  (* Both kinds of worker run the same loop off the same queue: the
     mutex/condition pair is domain-safe in OCaml 5, so the only
     difference is whether workers share one runtime lock (threads) or
     run truly parallel (domains). *)
  (match backend with
  | `Threads -> t.threads <- List.init workers (fun _ -> Thread.create worker t)
  | `Domains ->
    t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t)));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = (not t.draining) && Queue.length t.jobs < t.capacity in
  if accepted then begin
    Queue.add job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  let threads = t.threads in
  let domains = t.domains in
  t.threads <- [];
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join threads;
  List.iter Domain.join domains
