(** The query-server wire protocol: line-oriented JSON, hand-rolled.

    One request per line, one response per line, both single JSON objects
    (RFC 8259 grammar, UTF-8, no extensions; newlines never occur inside
    an encoded document).  This module is pure — no sockets, no clocks —
    so the codec is unit-testable and fuzzable in isolation: {!parse} and
    {!decode_request} return typed errors and never raise, whatever the
    input bytes.

    Requests are objects with an ["op"] field selecting the {!verb},
    verb-specific string fields, an optional integer ["id"] echoed back
    in the response, and optional ["timeout_ms"]/["max_steps"] budget
    fields (clamped server-side; see [docs/SERVER.md] for the grammar).
    Responses carry a ["status"] of ["ok"], ["partial"] (a resource
    budget ran out; any payload is a sound prefix) or ["error"] (with an
    ["error"] object holding ["kind"] and ["message"]). *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

type error =
  | Oversized of { length : int; limit : int }
      (** input line longer than the frame limit *)
  | Syntax of { offset : int; message : string }
      (** malformed JSON (byte offset of the failure) *)
  | Request of { message : string }
      (** well-formed JSON that is not a valid request *)

val error_to_string : error -> string
(** One-line human-readable rendering (also sent back in error
    responses). *)

val default_max_len : int
(** Default frame limit, 1 MiB. *)

val parse : ?max_len:int -> string -> (json, error) result
(** Parse one JSON document.  Never raises: syntax errors, oversized
    input and over-deep nesting come back as [Error _]. *)

val to_string : json -> string
(** Encode on a single line (strings are escaped, so the result contains
    no newline).  Non-finite floats encode as [null]. *)

val member : string -> json -> json option
(** Field lookup in an object ([None] on non-objects too). *)

(** {1 Requests} *)

type budget_spec = { timeout_ms : int option; max_steps : int option }

type verb =
  | Load of { src : string }
  | Define of { name : string; isa : string list; rules : string }
  | Add_rule of { obj : string; rule : string }
  | Remove_rule of { obj : string; rule : string }
  | New_version of { name : string; rules : string option }
  | Query of {
      obj : string;
      lit : string;
      prefer : [ `Compiled | `Naive ] option;
      search : [ `Pruned | `Naive | `Compiled ] option;
    }
      (** with [prefer], the skeptical value of [lit] across the
          preferred models (under the KB's preference pairs) instead of
          its least-model value; [search] then picks the stable-model
          engine used on the compiled preference translation (sending
          it without [prefer] is a request error) *)
  | Models of {
      obj : string;
      kind : [ `Stable | `Af ];
      limit : int option;
      engine : [ `Pruned | `Naive | `Compiled ];
      prefer : [ `Compiled | `Naive ] option;
    }
      (** [engine] comes from the canonical ["search"] field (legacy
          alias ["engine"]; ["compiled"] selects the flat-array
          kernel).  With [prefer] (["compiled"] or ["naive"]),
          enumerate the preferred models through the chosen route —
          ["search"] then applies to the compiled route's stable
          search — and combining [prefer] with the assumption-free
          kind is a request error *)
  | Set_preference of { rule : string; over : string }
      (** add one rule-preference pair (a write; replicates) *)
  | Clear_preference of { rule : string; over : string }
      (** remove one rule-preference pair (a write; replicates) *)
  | Explain of { obj : string; lit : string }
  | Stats
  | Version  (** package version and protocol revision *)
  | Snapshot  (** force a durable snapshot (needs a data directory) *)
  | Shutdown
  | Hello of {
      seq : int;
      protocol : int;
      epoch : int;
      rid : string option;
      addr : string option;
    }
      (** replication handshake: the replica announces its last applied
          sequence number, its {!protocol_revision}, the highest
          replication epoch it has seen (fencing; defaults to 0 on the
          wire), an optional instance id used to attribute durability
          confirmations (synchronous commit), and an optional
          client-reachable address the primary republishes in its
          [stats] topology *)
  | Pull of {
      from_seq : int;
      max : int option;
      epoch : int;
      rid : string option;
      durable : int option;
      addr : string option;
    }
      (** ship WAL records after [from_seq] (at most [max]); an empty
          pull doubles as a heartbeat.  [epoch] must match the server's
          current term (fencing); [durable], when present, confirms that
          the replica [rid] has every mutation up to it on stable
          storage — the piggybacked acknowledgement synchronous commit
          waits for *)
  | Fetch_snapshot of { epoch : int }
      (** bootstrap: fetch a full snapshot image *)
  | Promote  (** turn this replica into a standalone primary *)
  | Batch of batch_item list
      (** pipelining: up to {!max_batch} requests in one frame, answered
          by one reply frame carrying the per-item responses in order *)

and request = { id : int option; budget : budget_spec; verb : verb }

and batch_item = (request, string) result
(** One batched request; [Error message] is a per-item decode failure
    (malformed payload, nested batch, or a connection-scoped verb such
    as [shutdown]/[hello]/[pull]/[fetch_snapshot]/[promote]) that the
    server answers in place with a ["proto"] error, leaving the sibling
    requests to run normally. *)

val package_version : string
(** The released package version (also [olp --version]). *)

val protocol_revision : int
(** Bumped whenever the request/response grammar gains or changes a
    verb or field; reported by the [version] and [stats] verbs so
    clients can detect what they are talking to. *)

val max_batch : int
(** Most requests one [batch] frame may carry (256); a longer list is a
    whole-frame [Request] error. *)

val decode_request : ?max_len:int -> string -> (request, error) result
(** Parse and validate one request line.  Never raises. *)

val batch : ?id:int -> json list -> json
(** Build a [batch] request frame from encoded item objects (client-side
    helper; the optional [id] is echoed on the reply envelope). *)

(** {1 Responses} *)

val ok : ?id:int -> (string * json) list -> json
(** [{"status": "ok", "id": id?, ...fields}]. *)

val partial : ?id:int -> reason:string -> (string * json) list -> json
(** [{"status": "partial", "id": id?, "reason": reason, ...fields}] — the
    structured budget-trip response. *)

val error_response :
  ?id:int -> ?extra:(string * json) list -> kind:string -> string -> json
(** [{"status": "error", "id": id?, "error": {"kind": kind, "message":
    message, ...extra}}].  Kinds in use: ["proto"] (undecodable request),
    ["input"] (bad program text, unknown object, precondition), ["diag"]
    (a typed {!Ordered.Diag} error), ["read_only"] (a write reached a
    replica; [extra] carries a ["primary"] address for client-side
    redirect), ["handshake"] (replication handshake refused: protocol
    mismatch or diverged history), ["fenced"] (replication request from
    or to a superseded epoch; [extra] carries the refusing server's
    ["epoch"]), ["behind"] (the requested WAL tail was compacted away;
    fetch a snapshot), ["sync_timeout"] (write durable locally but the
    required replica confirmations did not arrive in time), ["busy"]
    (request queue full), ["draining"] (server shutting down),
    ["internal"]. *)

val status_of_response : json -> [ `Ok | `Partial | `Error | `Unknown ]
(** Classify a response line (used by [olp call] for its exit code). *)
