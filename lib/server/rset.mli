(** A self-healing replica-set client: one logical connection over a
    set of servers (a primary and its replicas, any depth of chaining).

    The caller hands over seed addresses and raw {!Wire} requests; the
    set routes them — {e writes} (mutating verbs, [snapshot], [promote],
    [shutdown]) to the node it believes is the primary, {e reads}
    ([query], [models], [explain], [stats], [version]) round-robin over
    every node — and heals around faults:

    - a typed ["read_only"] or ["fenced"] refusal of a write carries the
      refusing node's idea of the primary; the set follows the redirect
      (learning addresses it was never seeded with), bounded to a few
      hops so two confused nodes cannot bounce a request forever — when
      the hop budget runs out the typed error is returned as the answer;
    - a connection failure — or a typed ["draining"] response from a
      server mid-shutdown — drops that node's cached connection,
      forgets it as primary and moves to the next node;
    - when a whole pass over the set fails and a [retry] budget was
      given, the set sleeps a jittered exponential backoff
      ({!Governor.Backoff}, reset on any success) and sweeps again until
      the deadline — the ride-out for a failover in progress.

    Connections are cached per node and re-established lazily.  Not
    thread-safe: one [t] per thread (like {!Client}). *)

type t

val create :
  ?connect_retry:float ->
  ?retry_base:float ->
  ?retry_cap:float ->
  Daemon.address list ->
  t
(** [create seeds] with at least one seed address (raises
    [Invalid_argument] on an empty list; duplicates are collapsed).
    [connect_retry] bounds one node's connection attempt (default
    50 ms); [retry_base]/[retry_cap] shape the between-sweep backoff
    (defaults 50 ms / 1 s). *)

val request : ?retry:float -> t -> Wire.json -> (Wire.json, string) result
(** Route one request (see the routing rules above).  [retry] is the
    total time budget for riding out unreachable nodes (default [0.]:
    a single sweep over the set).  [Ok] carries whatever response the
    chosen server gave — including typed error responses that are the
    answer (a solver diagnostic, an exhausted redirect); [Error] means
    no node could be reached within the budget. *)

val request_line :
  ?retry:float -> t -> string -> (Wire.json, string) result
(** Parse one raw request line and route it ([Error] on unparsable
    input, without touching the network). *)

val nodes : t -> string list
(** Printable addresses of every node the set currently knows —
    seeds plus any primaries learned from redirects, in discovery
    order. *)

val primary : t -> string option
(** The node the set currently believes is the primary, if any write
    has established one. *)

val close : t -> unit
(** Close every cached connection (the set remains usable; connections
    re-open lazily). *)
