module B = Ordered.Budget
module M = Governor.Metrics

type caps = { timeout : float option; steps : int option }

let default_caps = { timeout = Some 30.; steps = None }

type persistence = { snapshot : unit -> int; seq : unit -> int }

type t = {
  session : Kb.Session.t;
  caps : caps;
  metrics : M.t;
  lock : Mutex.t;
  extra_stats : unit -> (string * Wire.json) list;
  persistence : persistence option;
}

let create ?(caps = default_caps) ?(metrics = M.create ())
    ?(extra_stats = fun () -> []) ?session ?persistence () =
  let session =
    match session with Some s -> s | None -> Kb.Session.create ()
  in
  { session; caps; metrics; lock = Mutex.create (); extra_stats; persistence }

let session t = t.session
let metrics t = t.metrics

(* The effective limit is the minimum of what the request asks for and
   the server cap; the cap applies even to requests that ask for
   nothing. *)
let clamp request cap =
  match request, cap with
  | Some r, Some c -> Some (min r c)
  | Some r, None -> Some r
  | None, c -> c

let budget_of t (spec : Wire.budget_spec) =
  let timeout =
    clamp
      (Option.map (fun ms -> float_of_int ms /. 1000.) spec.timeout_ms)
      t.caps.timeout
  in
  let max_steps = clamp spec.max_steps t.caps.steps in
  B.make ?timeout ?max_steps ()

let value_to_string = function
  | Logic.Interp.True -> "true"
  | Logic.Interp.False -> "false"
  | Logic.Interp.Undefined -> "undefined"

let json_of_model m =
  Wire.List
    (List.map
       (fun l -> Wire.String (Logic.Literal.to_string l))
       (Logic.Interp.to_literals m))

let kind_to_string = function
  | `Stable -> "stable"
  | `Af -> "assumption-free"

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let stats_response t ~id =
  let c = Kb.Session.counters t.session in
  let cache =
    Wire.Obj
      [ ("hits", Wire.Int c.hits);
        ("misses", Wire.Int c.misses);
        ("invalidations", Wire.Int c.invalidations);
        ("entries", Wire.Int c.entries)
      ]
  in
  let server =
    Wire.Obj
      (t.extra_stats ()
      @ (match t.persistence with
        | Some p -> [ ("persist_seq", Wire.Int (p.seq ())) ]
        | None -> [])
      @ List.map (fun (k, v) -> (k, Wire.Int v)) (M.snapshot t.metrics))
  in
  Wire.ok ?id
    [ ("version", Wire.String Wire.package_version);
      ("protocol", Wire.Int Wire.protocol_revision);
      ("cache", cache);
      ("server", server)
    ]

let serve t ~id req =
  let session = t.session in
  let budget = budget_of t req.Wire.budget in
  match req.Wire.verb with
  | Wire.Load { src } ->
    Kb.Session.load session src;
    Wire.ok ?id
      [ ("objects",
         Wire.List
           (List.map (fun o -> Wire.String o) (Kb.Session.objects session)))
      ]
  | Wire.Define { name; isa; rules } ->
    Kb.Session.define_src session ~isa name rules;
    Wire.ok ?id [ ("object", Wire.String name) ]
  | Wire.Add_rule { obj; rule } ->
    Kb.Session.add_rule_src session ~obj rule;
    Wire.ok ?id []
  | Wire.Remove_rule { obj; rule } ->
    let removed =
      Kb.Session.remove_rule session ~obj (Lang.Parser.parse_rule rule)
    in
    Wire.ok ?id [ ("removed", Wire.Bool removed) ]
  | Wire.New_version { name; rules } ->
    let rules = Option.map Lang.Parser.parse_rules rules in
    let version = Kb.Session.new_version session ?rules name in
    Wire.ok ?id [ ("version", Wire.String version) ]
  | Wire.Query { obj; lit } ->
    let l = Lang.Parser.parse_literal lit in
    let v = Kb.Session.query ~budget session ~obj l in
    Wire.ok ?id [ ("value", Wire.String (value_to_string v)) ]
  | Wire.Models { obj; kind; limit; engine } ->
    let result =
      match kind with
      | `Stable ->
        Kb.Session.stable_models ?limit ~budget ~engine session ~obj
      | `Af ->
        Kb.Session.assumption_free_models ?limit ~budget ~engine session ~obj
    in
    let ms = B.value result in
    let fields =
      [ ("kind", Wire.String (kind_to_string kind));
        ("count", Wire.Int (List.length ms));
        ("models", Wire.List (List.map json_of_model ms))
      ]
    in
    (match result with
    | B.Complete _ -> Wire.ok ?id fields
    | B.Partial (_, reason) ->
      Wire.partial ?id ~reason:(B.reason_to_string reason) fields)
  | Wire.Explain { obj; lit } ->
    let l = Lang.Parser.parse_literal lit in
    let e = Kb.Session.explain session ~obj l in
    Wire.ok ?id [ ("text", Wire.String (Ordered.Explain.to_string e)) ]
  | Wire.Stats -> stats_response t ~id
  | Wire.Version ->
    Wire.ok ?id
      [ ("version", Wire.String Wire.package_version);
        ("protocol", Wire.Int Wire.protocol_revision)
      ]
  | Wire.Snapshot -> (
    match t.persistence with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "server has no data directory (start with --data-dir)"
    | Some p ->
      let seq = p.snapshot () in
      Wire.ok ?id [ ("snapshot", Wire.Int seq) ])
  | Wire.Shutdown -> Wire.ok ?id [ ("shutdown", Wire.Bool true) ]

let handle t (req : Wire.request) =
  let id = req.id in
  let response =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        try serve t ~id req with
        | B.Exhausted reason ->
          (* no sound partial payload outside the enumerations *)
          Wire.partial ?id ~reason:(B.reason_to_string reason) []
        | Ordered.Diag.Error e ->
          Wire.error_response ?id ~kind:"diag" (Ordered.Diag.to_string e)
        | Invalid_argument msg | Failure msg ->
          Wire.error_response ?id ~kind:"input" msg
        | Lang.Lexer.Error (msg, pos) ->
          Wire.error_response ?id ~kind:"input"
            (Printf.sprintf "lexical error at %d:%d: %s" pos.line pos.col msg)
        | Lang.Parser.Error (msg, pos) ->
          Wire.error_response ?id ~kind:"input"
            (Printf.sprintf "syntax error at %d:%d: %s" pos.line pos.col msg)
        | e ->
          (* the worker must survive anything *)
          Wire.error_response ?id ~kind:"internal" (Printexc.to_string e))
  in
  M.incr t.metrics "served";
  (match Wire.status_of_response response with
  | `Ok -> M.incr t.metrics "ok"
  | `Partial -> M.incr t.metrics "partials"
  | `Error | `Unknown -> M.incr t.metrics "errors");
  response

let handle_line t line =
  match Wire.decode_request line with
  | Ok req -> handle t req
  | Error e ->
    M.incr t.metrics "proto_errors";
    Wire.error_response ~kind:"proto" (Wire.error_to_string e)
