module B = Ordered.Budget
module M = Governor.Metrics

type caps = { timeout : float option; steps : int option }

let default_caps = { timeout = Some 30.; steps = None }

type persistence = {
  snapshot : unit -> int;
  seq : unit -> int;
  epoch : unit -> int;
  wait_durable : unit -> unit;
  tail : from:int -> max:int -> (string * int, int) result;
  snapshot_image : unit -> int * string;
}

type replication = {
  role : unit -> string;
  primary : unit -> string option;
  details : unit -> (string * Wire.json) list;
  promote : unit -> (string, string) result;
}

type sync = { replicas : int; timeout_ms : int }

(* Per-replica durability horizons, keyed by the instance id ([rid])
   replicas send in [hello]/[pull].  Updated while serving replication
   verbs (under the engine lock), read by writers waiting for quorum
   (outside it), hence the private lock. *)
type acks = {
  ack_lock : Mutex.t;
  ack_tbl : (string, int * string option) Hashtbl.t;
      (** rid -> (durable horizon, advertised address) *)
}

let max_tracked_replicas = 64

type t = {
  session : Kb.Session.t;
  caps : caps;
  metrics : M.t;
  lock : Mutex.t;  (* the io lock: store apply + persistence/replication *)
  shards : Shards.t;  (* striped write admission, per target object *)
  writers : int Atomic.t;  (* writers inside a shard region right now *)
  extra_stats : unit -> (string * Wire.json) list;
  persistence : persistence option;
  sync : sync option;
  acks : acks;
  mutable replication : replication option;
}

let create ?(caps = default_caps) ?(metrics = M.create ())
    ?(extra_stats = fun () -> []) ?session ?persistence ?sync () =
  let session =
    match session with Some s -> s | None -> Kb.Session.create ()
  in
  Kb.Session.use_metrics session metrics;
  { session; caps; metrics; lock = Mutex.create ();
    shards = Shards.create (); writers = Atomic.make 0; extra_stats;
    persistence; sync;
    acks = { ack_lock = Mutex.create (); ack_tbl = Hashtbl.create 8 };
    replication = None }

let session t = t.session
let metrics t = t.metrics
let set_replication t r = t.replication <- Some r

let record_ack t ~rid ?addr ~durable () =
  let a = t.acks in
  Mutex.lock a.ack_lock;
  (match Hashtbl.find_opt a.ack_tbl rid with
  | Some (prev, prev_addr) ->
    let addr = match addr with Some _ -> addr | None -> prev_addr in
    Hashtbl.replace a.ack_tbl rid (max prev durable, addr)
  | None ->
    if Hashtbl.length a.ack_tbl < max_tracked_replicas then
      Hashtbl.replace a.ack_tbl rid (durable, addr));
  Mutex.unlock a.ack_lock

(* Advertised addresses of the replicas this primary has heard from,
   sorted for deterministic [stats] topology output. *)
let replica_members t =
  let a = t.acks in
  Mutex.lock a.ack_lock;
  let addrs =
    Hashtbl.fold
      (fun _ (_, addr) acc ->
        match addr with Some ad -> ad :: acc | None -> acc)
      a.ack_tbl []
  in
  Mutex.unlock a.ack_lock;
  List.sort_uniq String.compare addrs

let confirmed_replicas t ~seq =
  let a = t.acks in
  Mutex.lock a.ack_lock;
  let n =
    Hashtbl.fold
      (fun _ (d, _) acc -> if d >= seq then acc + 1 else acc)
      a.ack_tbl 0
  in
  Mutex.unlock a.ack_lock;
  n

(* Quorum rendezvous: acknowledgements arrive piggybacked on replica
   pulls (which the daemon serves on their reader threads, so they are
   never stuck behind this very wait), so a short poll is plenty — the
   pull cadence, not this loop, dominates the latency. *)
let wait_confirmed t ~seq ~required ~timeout_ms =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
  let rec loop () =
    let n = confirmed_replicas t ~seq in
    if n >= required then `Confirmed
    else if Unix.gettimeofday () >= deadline then `Timeout n
    else begin
      Thread.delay 0.002;
      loop ()
    end
  in
  loop ()

let exclusively t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The effective limit is the minimum of what the request asks for and
   the server cap; the cap applies even to requests that ask for
   nothing. *)
let clamp request cap =
  match request, cap with
  | Some r, Some c -> Some (min r c)
  | Some r, None -> Some r
  | None, c -> c

let budget_of t (spec : Wire.budget_spec) =
  let timeout =
    clamp
      (Option.map (fun ms -> float_of_int ms /. 1000.) spec.timeout_ms)
      t.caps.timeout
  in
  let max_steps = clamp spec.max_steps t.caps.steps in
  B.make ?timeout ?max_steps ()

let value_to_string = function
  | Logic.Interp.True -> "true"
  | Logic.Interp.False -> "false"
  | Logic.Interp.Undefined -> "undefined"

let json_of_model m =
  Wire.List
    (List.map
       (fun l -> Wire.String (Logic.Literal.to_string l))
       (Logic.Interp.to_literals m))

let kind_to_string = function
  | `Stable -> "stable"
  | `Af -> "assumption-free"

let prefer_to_string = function `Compiled -> "compiled" | `Naive -> "naive"

(* Per-request solver counters, folded into the server metrics after the
   search returns (only the compiled kernel sets them, so pruned/naive
   traffic leaves the stats line untouched). *)
let record_solver t (c : Ordered.Counters.t) =
  if Ordered.Counters.has_solver c then begin
    M.add t.metrics "solver_propagations" c.propagations;
    M.add t.metrics "solver_conflicts" c.conflicts;
    M.add t.metrics "solver_learned" c.learned;
    M.add t.metrics "solver_evicted" c.evicted;
    M.add t.metrics "solver_restarts" c.restarts
  end

let is_write = function
  | Wire.Load _ | Wire.Define _ | Wire.Add_rule _ | Wire.Remove_rule _
  | Wire.New_version _ | Wire.Set_preference _ | Wire.Clear_preference _ ->
    true
  | Wire.Query _ | Wire.Models _ | Wire.Explain _ | Wire.Stats
  | Wire.Version | Wire.Snapshot | Wire.Shutdown | Wire.Hello _
  | Wire.Pull _ | Wire.Fetch_snapshot _ | Wire.Promote | Wire.Batch _ ->
    false

(* Replication/persistence verbs touch the WAL, the snapshot files or
   the replication role — they serialize on the io lock like the write
   verbs' apply phase. *)
let is_io = function
  | Wire.Snapshot | Wire.Hello _ | Wire.Pull _ | Wire.Fetch_snapshot _
  | Wire.Promote ->
    true
  | _ -> false

(* The shard stripes a mutating verb must hold: the object it targets,
   or every stripe for [load] (which may define any number of objects). *)
let write_keys = function
  (* a preference change refines the rule order of every view, so it
     excludes all concurrent writers, like [load] *)
  | Wire.Load _ | Wire.Set_preference _ | Wire.Clear_preference _ -> `All
  | Wire.Define { name; _ } | Wire.New_version { name; _ } -> `Keys [ name ]
  | Wire.Add_rule { obj; _ } | Wire.Remove_rule { obj; _ } -> `Keys [ obj ]
  | _ -> `Keys []

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let stats_response t ~id =
  let c = Kb.Session.counters t.session in
  let cache =
    Wire.Obj
      [ ("hits", Wire.Int c.hits);
        ("misses", Wire.Int c.misses);
        ("invalidations", Wire.Int c.invalidations);
        ("entries", Wire.Int c.entries)
      ]
  in
  let server =
    Wire.Obj
      (t.extra_stats ()
      @ (match t.persistence with
        | Some p ->
          [ ("persist_seq", Wire.Int (p.seq ()));
            ("epoch", Wire.Int (p.epoch ()))
          ]
        | None -> [])
      @ (match t.sync with
        | Some s ->
          [ ("sync_replicas", Wire.Int s.replicas);
            ("sync_timeout_ms", Wire.Int s.timeout_ms)
          ]
        | None -> [])
      @ List.map (fun (k, v) -> (k, Wire.Int v)) (M.snapshot t.metrics))
  in
  Wire.ok ?id
    ([ ("version", Wire.String Wire.package_version);
       ("protocol", Wire.Int Wire.protocol_revision);
       ("cache", cache)
     ]
    @ (match t.replication with
      | Some r ->
        (* fixed field order — the stats line is a cram-pinned contract *)
        [ ("replication",
           Wire.Obj (("role", Wire.String (r.role ())) :: r.details ()))
        ]
      | None -> [])
    @ [ ("server", server) ])

(* Mutating verbs, called with the verb's shard stripes held: parse the
   request's program text first (concurrent with other writers and every
   reader), then apply to the session under the io lock — the only part
   that serializes globally, and the part that keeps WAL append order
   identical to apply order.  Returns the response and, for synchronous
   commit, the WAL sequence this write reached (captured under the io
   lock so the quorum wait targets exactly this mutation). *)
let serve_write t ~id verb =
  let session = t.session in
  let exclusively_seq f =
    exclusively t (fun () ->
        let fields = f () in
        let seq =
          match t.persistence, t.sync with
          | Some p, Some _ -> Some (p.seq ())
          | _ -> None
        in
        (Wire.ok ?id fields, seq))
  in
  match verb with
  | Wire.Load { src } ->
    exclusively_seq (fun () ->
        Kb.Session.load session src;
        [ ("objects",
           Wire.List
             (List.map (fun o -> Wire.String o) (Kb.Session.objects session)))
        ])
  | Wire.Define { name; isa; rules } ->
    let rules = Lang.Parser.parse_rules rules in
    exclusively_seq (fun () ->
        Kb.Session.define session ~isa name rules;
        [ ("object", Wire.String name) ])
  | Wire.Add_rule { obj; rule } ->
    let rule = Lang.Parser.parse_rule rule in
    exclusively_seq (fun () ->
        Kb.Session.add_rule session ~obj rule;
        [])
  | Wire.Remove_rule { obj; rule } ->
    let rule = Lang.Parser.parse_rule rule in
    exclusively_seq (fun () ->
        let removed = Kb.Session.remove_rule session ~obj rule in
        [ ("removed", Wire.Bool removed) ])
  | Wire.New_version { name; rules } ->
    let rules = Option.map Lang.Parser.parse_rules rules in
    exclusively_seq (fun () ->
        let version = Kb.Session.new_version session ?rules name in
        [ ("version", Wire.String version) ])
  | Wire.Set_preference { rule; over } ->
    exclusively_seq (fun () ->
        Kb.Session.set_preference session ~rule ~over;
        [ ("rule", Wire.String rule); ("over", Wire.String over) ])
  | Wire.Clear_preference { rule; over } ->
    exclusively_seq (fun () ->
        let removed = Kb.Session.clear_preference session ~rule ~over in
        [ ("removed", Wire.Bool removed) ])
  | _ -> assert false (* only write verbs are routed here *)

(* Read and replication verbs.  The read verbs ([query]/[models]/
   [explain]/[stats]/[version]) run entirely against the session's
   published snapshot and the atomic counters — no lock anywhere on
   their path; [handle] wraps the io verbs in {!exclusively}. *)
let serve t ~id req =
  let session = t.session in
  let budget = budget_of t req.Wire.budget in
  match req.Wire.verb with
  | Wire.Load _ | Wire.Define _ | Wire.Add_rule _ | Wire.Remove_rule _
  | Wire.New_version _ | Wire.Set_preference _ | Wire.Clear_preference _
  | Wire.Batch _ ->
    assert false (* routed to serve_write / handle_batch *)
  | Wire.Query { obj; lit; prefer = None; search = _ } ->
    let l = Lang.Parser.parse_literal lit in
    let v = Kb.Session.query ~budget session ~obj l in
    Wire.ok ?id [ ("value", Wire.String (value_to_string v)) ]
  | Wire.Query { obj; lit; prefer = Some engine; search } -> (
    (* skeptical reading: the value all preferred models agree on,
       [undefined] when they disagree.  Sound only over the complete
       enumeration, so a budget trip carries no value at all. *)
    let l = Lang.Parser.parse_literal lit in
    if not (Logic.Literal.is_ground l) then
      invalid_arg "query: literal must be ground";
    let stats = Ordered.Counters.create () in
    let result =
      Kb.Session.preferred_models ~budget ~engine ?search ~stats
        ~metrics:t.metrics session ~obj
    in
    record_solver t stats;
    match result with
    | B.Complete ms ->
      let v =
        match List.map (fun m -> Logic.Interp.value_lit m l) ms with
        | [] -> Logic.Interp.Undefined
        | v0 :: rest ->
          if List.for_all (fun v -> v = v0) rest then v0
          else Logic.Interp.Undefined
      in
      Wire.ok ?id
        [ ("value", Wire.String (value_to_string v));
          ("prefer", Wire.String (prefer_to_string engine))
        ]
    | B.Partial (_, reason) ->
      Wire.partial ?id ~reason:(B.reason_to_string reason) [])
  | Wire.Models { obj; kind; limit; engine; prefer } ->
    let stats = Ordered.Counters.create () in
    let result =
      match prefer with
      | Some pengine ->
        Kb.Session.preferred_models ?limit ~budget ~engine:pengine
          ~search:engine ~stats ~metrics:t.metrics session ~obj
      | None -> (
        match kind with
        | `Stable ->
          Kb.Session.stable_models ?limit ~budget ~engine ~stats session ~obj
        | `Af ->
          Kb.Session.assumption_free_models ?limit ~budget ~engine ~stats
            session ~obj)
    in
    record_solver t stats;
    let ms = B.value result in
    let fields =
      (match prefer with
      | Some pengine ->
        [ ("kind", Wire.String "preferred");
          ("prefer", Wire.String (prefer_to_string pengine))
        ]
      | None -> [ ("kind", Wire.String (kind_to_string kind)) ])
      @ [ ("count", Wire.Int (List.length ms));
          ("models", Wire.List (List.map json_of_model ms))
        ]
    in
    (match result with
    | B.Complete _ -> Wire.ok ?id fields
    | B.Partial (_, reason) ->
      Wire.partial ?id ~reason:(B.reason_to_string reason) fields)
  | Wire.Explain { obj; lit } ->
    let l = Lang.Parser.parse_literal lit in
    let e = Kb.Session.explain session ~obj l in
    Wire.ok ?id [ ("text", Wire.String (Ordered.Explain.to_string e)) ]
  | Wire.Stats -> stats_response t ~id
  | Wire.Version ->
    Wire.ok ?id
      [ ("version", Wire.String Wire.package_version);
        ("protocol", Wire.Int Wire.protocol_revision)
      ]
  | Wire.Snapshot -> (
    match t.persistence with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "server has no data directory (start with --data-dir)"
    | Some p ->
      let seq = p.snapshot () in
      Wire.ok ?id [ ("snapshot", Wire.Int seq) ])
  | Wire.Shutdown -> Wire.ok ?id [ ("shutdown", Wire.Bool true) ]
  | Wire.Hello { seq; protocol; epoch; rid; addr } -> (
    match t.persistence with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "replication requires a data directory (start the primary with \
         --data-dir)"
    | Some p ->
      if protocol <> Wire.protocol_revision then
        Wire.error_response ?id ~kind:"handshake"
          (Printf.sprintf
             "protocol revision mismatch: this server speaks %d, the \
              replica speaks %d — upgrade so both ends match"
             Wire.protocol_revision protocol)
      else begin
        let mine = p.epoch () in
        if epoch > mine then
          (* the requester has seen a newer promotion than we have: we
             are the deposed side and must not hand out history *)
          Wire.error_response ?id ~kind:"fenced"
            ~extra:[ ("epoch", Wire.Int mine) ]
            (Printf.sprintf
               "this server is fenced: it is at epoch %d but the \
                requester has seen epoch %d — a newer primary was \
                promoted"
               mine epoch)
        else begin
          let cur = p.seq () in
          if seq > cur then
            Wire.error_response ?id ~kind:"handshake"
              (Printf.sprintf
                 "replica is ahead of this primary (replica at sequence \
                  %d, primary at %d): diverged history — re-seed the \
                  replica from an empty data directory"
                 seq cur)
          else begin
            let action =
              match p.tail ~from:seq ~max:0 with
              | Ok _ -> "tail"
              | Error _ -> "snapshot"
            in
            M.incr t.metrics "repl_hellos";
            (* the greeted sequence is already durable on the replica:
               recovery replays nothing it has not fsynced *)
            (match rid with
            | Some rid -> record_ack t ~rid ?addr ~durable:seq ()
            | None -> ());
            let role =
              match t.replication with
              | Some r -> r.role ()
              | None -> "primary"
            in
            Wire.ok ?id
              [ ("role", Wire.String role);
                ("protocol", Wire.Int Wire.protocol_revision);
                ("epoch", Wire.Int mine);
                ("seq", Wire.Int cur);
                ("action", Wire.String action)
              ]
          end
        end
      end)
  | Wire.Pull { from_seq; max; epoch; rid; durable; addr } -> (
    match t.persistence with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "replication requires a data directory (start the primary with \
         --data-dir)"
    | Some p ->
      let mine = p.epoch () in
      if epoch <> mine then
        (* either direction is fatal for a pull: a higher requester
           epoch means we are deposed; a lower one means the requester
           missed a promotion and must re-handshake (hello is where a
           replica adopts the current term) *)
        Wire.error_response ?id ~kind:"fenced"
          ~extra:[ ("epoch", Wire.Int mine) ]
          (if epoch > mine then
             Printf.sprintf
               "this server is fenced: it is at epoch %d but the \
                requester has seen epoch %d — a newer primary was \
                promoted"
               mine epoch
           else
             Printf.sprintf
               "pull at stale epoch %d refused: this server is at epoch \
                %d — re-handshake to adopt the current term"
               epoch mine)
      else begin
        let cur = p.seq () in
        if from_seq > cur then
          Wire.error_response ?id ~kind:"handshake"
            (Printf.sprintf
               "pull from sequence %d but this primary is at %d: diverged \
                history — re-seed the replica from an empty data directory"
               from_seq cur)
        else begin
          (match rid, durable with
          | Some rid, Some durable -> record_ack t ~rid ?addr ~durable ()
          | _ -> ());
          let max = min 4096 (Option.value ~default:512 max) in
          match p.tail ~from:from_seq ~max with
          | Ok (bytes, n) ->
            if n > 0 then M.add t.metrics "repl_records_shipped" n;
            Wire.ok ?id
              [ ("seq", Wire.Int cur);
                ("epoch", Wire.Int mine);
                ("from", Wire.Int from_seq);
                ("count", Wire.Int n);
                ("records", Wire.String (Hex.encode bytes))
              ]
          | Error oldest ->
            Wire.error_response ?id ~kind:"behind"
              (Printf.sprintf
                 "records from sequence %d were compacted away (the log \
                  now starts at %d); fetch a snapshot"
                 from_seq oldest)
        end
      end)
  | Wire.Fetch_snapshot { epoch } -> (
    match t.persistence with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "replication requires a data directory (start the primary with \
         --data-dir)"
    | Some p ->
      let mine = p.epoch () in
      if epoch > mine then
        Wire.error_response ?id ~kind:"fenced"
          ~extra:[ ("epoch", Wire.Int mine) ]
          (Printf.sprintf
             "this server is fenced: it is at epoch %d but the requester \
              has seen epoch %d — a newer primary was promoted"
             mine epoch)
      else begin
        let seq, image = p.snapshot_image () in
        M.incr t.metrics "repl_snapshots_served";
        Wire.ok ?id
          [ ("seq", Wire.Int seq);
            ("epoch", Wire.Int mine);
            ("snapshot", Wire.String (Hex.encode image))
          ]
      end)
  | Wire.Promote -> (
    match t.replication with
    | None ->
      Wire.error_response ?id ~kind:"input"
        "this server is not a replica (start with --replica-of)"
    | Some r -> (
      match r.promote () with
      | Ok role ->
        Wire.ok ?id
          (("role", Wire.String role)
          :: (match t.persistence with
             | Some p ->
               [ ("epoch", Wire.Int (p.epoch ()));
                 ("seq", Wire.Int (p.seq ()))
               ]
             | None -> []))
      | Error msg -> Wire.error_response ?id ~kind:"input" msg))

(* Exception mapping: no exception escapes a worker, whatever the
   decoder accepted. *)
let guard ?id f =
  try f () with
  | B.Exhausted reason ->
    (* no sound partial payload outside the enumerations *)
    Wire.partial ?id ~reason:(B.reason_to_string reason) []
  | Ordered.Diag.Error (Ordered.Diag.Read_only { primary } as e) ->
    Wire.error_response ?id ~kind:"read_only"
      ~extra:[ ("primary", Wire.String primary) ]
      (Ordered.Diag.to_string e)
  | Ordered.Diag.Error (Ordered.Diag.Preference_cycle { cycle } as e) ->
    Wire.error_response ?id ~kind:"preference_cycle"
      ~extra:
        [ ("cycle", Wire.List (List.map (fun n -> Wire.String n) cycle)) ]
      (Ordered.Diag.to_string e)
  | Ordered.Diag.Error e ->
    Wire.error_response ?id ~kind:"diag" (Ordered.Diag.to_string e)
  | Invalid_argument msg | Failure msg ->
    Wire.error_response ?id ~kind:"input" msg
  | Lang.Lexer.Error (msg, pos) ->
    Wire.error_response ?id ~kind:"input"
      (Printf.sprintf "lexical error at %d:%d: %s" pos.line pos.col msg)
  | Lang.Parser.Error (msg, pos) ->
    Wire.error_response ?id ~kind:"input"
      (Printf.sprintf "syntax error at %d:%d: %s" pos.line pos.col msg)
  | e ->
    (* the worker must survive anything *)
    Wire.error_response ?id ~kind:"internal" (Printexc.to_string e)

let count_response t response =
  M.incr t.metrics "served";
  (match Wire.status_of_response response with
  | `Ok -> M.incr t.metrics "ok"
  | `Partial -> M.incr t.metrics "partials"
  | `Error | `Unknown -> M.incr t.metrics "errors");
  response

let handle_write t ~id verb =
  (* sequence number this write reached, captured under the io lock so
     the quorum wait below targets exactly this mutation *)
  let sync_seq = ref None in
  let response =
    guard ?id (fun () ->
        (* a replica's KB is owned by the replication stream: local
           writes would fork its history, so they bounce with a
           redirect *)
        (match t.replication with
        | Some r when r.role () = "replica" ->
          let primary = Option.value ~default:"unknown" (r.primary ()) in
          Governor.Diag.fail (Governor.Diag.Read_only { primary })
        | _ -> ());
        Shards.with_keys t.shards (write_keys verb) (fun () ->
            let n = Atomic.fetch_and_add t.writers 1 + 1 in
            M.gauge_max t.metrics "writers_peak" n;
            Fun.protect
              ~finally:(fun () ->
                ignore (Atomic.fetch_and_add t.writers (-1) : int))
              (fun () ->
                let resp, seq = serve_write t ~id verb in
                sync_seq := seq;
                resp)))
  in
  (* durability is paid outside every lock, so concurrent writers pile
     into the same group-commit window instead of serializing their
     fsyncs — and lock-free readers are never stuck behind the wait *)
  (match t.persistence with
  | Some p -> (
    match Wire.status_of_response response with
    | `Ok -> p.wait_durable ()
    | `Partial | `Error | `Unknown -> ())
  | None -> ());
  (* synchronous commit: also outside the locks, so replica pulls (which
     carry the confirmations) keep being served while writers wait *)
  match t.sync, !sync_seq with
  | Some s, Some seq -> (
    match
      wait_confirmed t ~seq ~required:s.replicas ~timeout_ms:s.timeout_ms
    with
    | `Confirmed -> response
    | `Timeout confirmed ->
      M.incr t.metrics "sync_timeouts";
      let e =
        Ordered.Diag.Sync_timeout
          { seq; required = s.replicas; confirmed; timeout_ms = s.timeout_ms }
      in
      Wire.error_response ?id ~kind:"sync_timeout"
        ~extra:[ ("seq", Wire.Int seq); ("confirmed", Wire.Int confirmed) ]
        (Ordered.Diag.to_string e))
  | _ -> response

let rec handle t (req : Wire.request) =
  let id = req.id in
  match req.verb with
  | Wire.Batch items ->
    (* one frame, many requests: each item runs the full per-verb path
       (locking, durability, sync commit, counters) in order; a decode
       failure is answered in place.  The envelope itself is not counted
       as served — the items are. *)
    M.incr t.metrics "batches";
    M.add t.metrics "batch_items" (List.length items);
    let responses =
      List.map
        (function
          | Ok item -> handle t item
          | Error message ->
            M.incr t.metrics "proto_errors";
            Wire.error_response ~kind:"proto" ("invalid request: " ^ message))
        items
    in
    Wire.ok ?id
      [ ("count", Wire.Int (List.length responses));
        ("responses", Wire.List responses)
      ]
  | verb when is_write verb -> count_response t (handle_write t ~id verb)
  | verb when is_io verb ->
    count_response t
      (guard ?id (fun () -> exclusively t (fun () -> serve t ~id req)))
  | _ ->
    (* read verbs: no lock on this path at all *)
    count_response t (guard ?id (fun () -> serve t ~id req))

let handle_line t line =
  match Wire.decode_request line with
  | Ok req -> handle t req
  | Error e ->
    M.incr t.metrics "proto_errors";
    Wire.error_response ~kind:"proto" (Wire.error_to_string e)
