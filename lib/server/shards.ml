(* Striped write admission for the request engine: mutating verbs lock
   the shard(s) of the object they touch, so writers against disjoint
   objects overlap in their prepare phase (parsing, validation) and only
   serialize for the short master-store apply.  See shards.mli. *)

type t = { locks : Mutex.t array }

let default_shards = 16

let create ?(shards = default_shards) () =
  if shards < 1 then invalid_arg "Shards.create: shards must be >= 1";
  { locks = Array.init shards (fun _ -> Mutex.create ()) }

let size t = Array.length t.locks

let index t key = Hashtbl.hash key mod Array.length t.locks

(* Lock indices in ascending order — every holder acquires in the same
   global order, so two writers whose key sets overlap cannot deadlock,
   and [`All] (which takes every stripe) orders the same way. *)
let indices t = function
  | `All -> List.init (Array.length t.locks) Fun.id
  | `Keys keys -> List.sort_uniq compare (List.map (index t) keys)

let with_keys t keys f =
  let idxs = indices t keys in
  List.iter (fun i -> Mutex.lock t.locks.(i)) idxs;
  Fun.protect
    ~finally:(fun () -> List.iter (fun i -> Mutex.unlock t.locks.(i)) idxs)
    f
