(** The socket server: accept loop, per-connection readers, worker pool,
    graceful drain.

    A daemon listens on a Unix-domain or TCP socket and speaks the
    {!Wire} protocol: each accepted connection gets a reader thread that
    frames lines, decodes requests and submits them to the bounded
    {!Pool}; workers serve them through the shared {!Engine} and write
    the response line back (one response per request; pipelined clients
    should correlate by ["id"]).  Undecodable lines, oversized frames and
    a full queue are answered with typed error responses on the spot —
    a client connection is never dropped in response to bad input.

    {b Drain.}  {!stop} (also triggered by the ["shutdown"] verb and by
    SIGINT/SIGTERM once {!install_signal_handlers} ran) makes the accept
    loop wind down: no new connections, queued and in-flight requests
    complete and their responses are written, then connections are shut
    down, the listener is closed (and a Unix socket path unlinked) and
    {!serve} returns.  New requests arriving on live connections during
    the drain are answered with a ["draining"] error. *)

type address = [ `Unix of string | `Tcp of string * int ]

val parse_address : string -> address
(** The ADDR grammar shared by the CLI and the replica-set client:
    [HOST:PORT] is TCP, a bare number is a local TCP port, [unix:PATH]
    (the printable form — so redirects round-trip) or anything else a
    Unix socket path. *)

val address_to_string : address -> string
(** Printable form (["unix:PATH"] or ["HOST:PORT"]) — the form used in
    [read_only] redirects and [stats]. *)

type config = {
  address : address;
      (** TCP port [0] picks an ephemeral port (see {!address}) *)
  workers : int;
  parallel : Pool.backend;
      (** worker flavour: [`Threads] (the default everywhere) or
          [`Domains] for truly parallel OCaml 5 domains (the
          [--parallel domains] flag) *)
  queue : int;  (** request-queue capacity *)
  caps : Engine.caps;  (** per-request budget caps *)
  persist : Persist.config option;
      (** durable KB: recover the store from this data directory at
          startup and log every mutation to it ([None] = in-memory
          only; see [docs/PERSISTENCE.md]) *)
  replicate_on : address option;
      (** also listen on this address for replicas ([hello]/[pull]/
          [fetch_snapshot] traffic; same wire protocol, dedicated
          address so replica and client traffic can be segregated);
          requires [persist] — the log is what ships.  A server that is
          itself a replica may also set this: it re-serves its own WAL,
          forming a chained (tree) topology *)
  sync : Engine.sync option;
      (** synchronous commit: hold each write's acknowledgement until
          this many replicas confirmed durability (see
          {!Engine.sync}) *)
}

type t

val create : config -> t
(** Bind and listen (raises [Unix.Unix_error] on failure, e.g. an
    address already in use).  With [persist] set, the KB is recovered
    from the data directory (raises {!Governor.Diag.Error} when that is
    impossible) and every mutation is logged before its response is
    sent; otherwise the engine starts with an empty in-memory KB. *)

val address : t -> address
(** The bound address — for TCP this resolves a requested port [0] to
    the actual ephemeral port. *)

val engine : t -> Engine.t

val recovery : t -> Persist.recovery option
(** The recovery report from startup, when [persist] was set. *)

val persist_handle : t -> Persist.t option
(** The open persistence handle ([bin] builds the replication link's
    apply path on it).  Appending outside the engine lock races the
    workers — use {!Engine.exclusively}. *)

val replication_address : t -> address option
(** The bound replication listener (with an ephemeral TCP port
    resolved), when [replicate_on] was set. *)

val on_drain : t -> (unit -> unit) -> unit
(** Register a hook that {!serve} runs while draining, after every
    worker and reader has finished but before the data directory
    closes — the replication link is stopped here. *)

val serve : t -> unit
(** Run the accept loop until {!stop}; drains before returning. *)

val stop : t -> unit
(** Request shutdown (thread- and signal-safe, idempotent). *)

val install_signal_handlers : t -> unit
(** SIGINT/SIGTERM trigger {!stop}; SIGPIPE is ignored (a write to a
    disconnected client becomes an error handled per-connection). *)
