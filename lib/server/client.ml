type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last returned line *)
  chunk : Bytes.t;
}

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
    Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let connect ?(retry = 0.) address =
  let domain =
    match address with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let deadline = Unix.gettimeofday () +. retry in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of address) with
    | () -> Ok { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.05);
        attempt ()
      end
      else Error (Unix.error_message e)
  in
  attempt ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

(* Return the bytes up to the first newline, reading more as needed. *)
let read_line t =
  let take_line () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf
        (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
  in
  let rec go () =
    match take_line () with
    | Some l -> Ok l
    | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> Error "connection closed by server"
      | n ->
        Buffer.add_subbytes t.buf t.chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  go ()

let request_line t line =
  match write_all t.fd (line ^ "\n") with
  | () -> (
    match read_line t with
    | Error _ as e -> e
    | Ok response -> (
      match Wire.parse response with
      | Ok j -> Ok j
      | Error e ->
        Error (Printf.sprintf "unparsable response: %s"
                 (Wire.error_to_string e))))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let request t j = request_line t (Wire.to_string j)

(* One batch frame out, the per-item responses unpacked from the single
   reply envelope.  A non-ok envelope (e.g. the whole frame bounced as a
   proto error) comes back as [Error]. *)
let request_batch ?id t items =
  match request t (Wire.batch ?id items) with
  | Error _ as e -> e
  | Ok envelope -> (
    match Wire.status_of_response envelope, Wire.member "responses" envelope with
    | `Ok, Some (Wire.List responses) -> Ok responses
    | _ -> Error ("batch refused: " ^ Wire.to_string envelope))

let shutdown t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
