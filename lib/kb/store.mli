(** Knowledge bases: the object-oriented reading of ordered logic
    programming (paper, Section 5).

    An object is a component; [isa] parents place it {e below} them in the
    paper's order, so it inherits their rules and its local rules overrule
    inherited ones (defaults and exceptions).  Versioning follows the
    paper's remark that "a most specific module can be thought of as the
    new version of a more general module": a new version of an object is a
    fresh component placed below the previous version.

    Queries are answered against the least model of the ground ordered
    program viewed from the queried object (the constructive,
    assumption-free semantics of Section 2); [stable_models] exposes the
    credulous alternatives. *)

type t

val create : unit -> t

val define : t -> ?isa:string list -> string -> Logic.Rule.t list -> unit
(** [define kb ~isa name rules] adds an object.  Raises [Invalid_argument]
    on duplicate names or unknown parents. *)

val define_src : t -> ?isa:string list -> string -> string -> unit
(** Like {!define} with the rules given in surface syntax. *)

val load : t -> string -> unit
(** Load a whole source file (components become objects, [extends] and
    [order] become isa links).  Raises [Invalid_argument] on errors. *)

val add_rule : t -> obj:string -> Logic.Rule.t -> unit
val add_rule_src : t -> obj:string -> string -> unit
val add_fact : t -> obj:string -> Logic.Literal.t -> unit

val remove_rule : t -> obj:string -> Logic.Rule.t -> bool
(** Remove one rule (syntactic equality); [false] if absent. *)

val objects : t -> string list
(** Object names in definition order. *)

val parents : t -> string -> string list
val rules : t -> string -> Logic.Rule.t list

(** {1 Preferences}

    Rule preferences refine the object order between {e named} rules:
    [set_preference ~rule:"a" ~over:"b"] makes rules named [a] overrule
    rules named [b] where they conflict, even inside one object (see
    {!Prefer}).  The pair set is part of the store's state — dumped,
    fingerprinted, logged and replicated like the objects themselves. *)

val preferences : t -> (string * string) list
(** The (preferred, over) pairs in declaration order. *)

val set_preference : t -> rule:string -> over:string -> unit
(** Add one pair (idempotent).  Raises {!Ordered.Diag.Error}
    ([Preference_cycle]) if the pair set alone would stop being a strict
    order; unknown rule names are allowed here — they are only rejected
    when a preferred query resolves names against a concrete view. *)

val clear_preference : t -> rule:string -> over:string -> bool
(** Remove one pair; [false] if absent. *)

(** {1 Mutations}

    The store's mutation vocabulary, reified: every state change a KB can
    undergo is one of these values, and {!apply} replays one with exactly
    the semantics of the corresponding function above.  The persistence
    subsystem ({!Persist}) serialises this type into its write-ahead log,
    and crash recovery is [List.iter (apply kb)] over the decoded
    records — so determinism matters: replaying a recorded sequence
    against the recorded starting state reproduces the store (including
    generated version names, which depend only on the version
    counters). *)

type mutation =
  | Define of { name : string; isa : string list; rules : Logic.Rule.t list }
  | Add_rule of { obj : string; rule : Logic.Rule.t }
  | Remove_rule of { obj : string; rule : Logic.Rule.t }
  | New_version of { name : string; rules : Logic.Rule.t list option }
  | Load of { src : string }
  | Set_preference of { rule : string; over : string }
  | Clear_preference of { rule : string; over : string }

val apply : t -> mutation -> unit
(** Replay one mutation ({!Remove_rule} of an absent rule and the result
    of {!New_version} are ignored).  Raises exactly what the underlying
    operation would. *)

val pp_mutation : Format.formatter -> mutation -> unit

(** {1 Dumps}

    A [dump] is the full serialisable state of a store — objects with
    parents and rules in definition order, plus the versioning maps that
    {!to_source} loses.  [of_dump (dump kb)] is observationally equal to
    [kb] (caches aside), which is what snapshots are made of. *)

type dump = {
  dump_objs : (string * string list * Logic.Rule.t list) list;
      (** (name, parents, rules) in definition order *)
  dump_latest : (string * string) list;  (** base object -> latest version *)
  dump_counts : (string * int) list;  (** base object -> version count *)
  dump_prefs : (string * string) list;  (** rule preferences, decl order *)
}

val dump : t -> dump
val of_dump : dump -> t

val copy : t -> t
(** [of_dump (dump kb)]: an independent store with the same objects,
    parents, rules and version counters.  Mutating the original never
    changes what the copy observes (and vice versa) — {!Kb.Session}
    publishes copies as immutable read snapshots. *)

val restore : t -> dump -> unit
(** Replace the store's entire state with [dump] in place, keeping the
    identity of [t] (every alias sees the new state; caches are
    dropped).  Replication uses this for snapshot bootstrap. *)

(** {1 Versioning} *)

val new_version : t -> ?rules:Logic.Rule.t list -> string -> string
(** [new_version kb name] creates the next version of object [name] — a
    fresh object [name@2], [name@3], ... placed below the latest existing
    version — and returns its name.  [rules] seeds the new version's local
    rules (they overrule the older version's where they conflict). *)

val latest_version : t -> string -> string
(** The most recent version of an object (itself if never versioned). *)

val versions : t -> string -> string list
(** All versions, oldest first (starting with the base object). *)

(** {1 Queries} *)

val query :
  ?budget:Ordered.Budget.t ->
  t ->
  obj:string ->
  Logic.Literal.t ->
  Logic.Interp.value
(** Truth of a ground literal in the least model viewed from [obj].
    [Logic.Interp.True] means the literal holds; querying [l] and [neg l]
    distinguishes false from undefined.  [budget] governs grounding and
    the fixpoint; exhaustion raises [Ordered.Budget.Exhausted]. *)

val query_src :
  ?budget:Ordered.Budget.t -> t -> obj:string -> string -> Logic.Interp.value

val least_model :
  ?budget:Ordered.Budget.t -> t -> obj:string -> Logic.Interp.t

val stable_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime
(** Anytime, like {!Ordered.Stable.stable_models}: a [Partial] result
    carries the stable models found before the budget ran out.
    [engine] selects the branch-and-propagate search ([`Pruned], the
    default), the leaf-check oracle ([`Naive]) — same model set,
    different enumeration order — or the compiled flat-array kernel
    ([`Compiled], {!Solve.Kernel}) — same model set {e and} same
    enumeration order as [`Pruned], fewer visited nodes; [stats]
    accumulates search effort. *)

val assumption_free_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime
(** All assumption-free models viewed from [obj] (the stable models are
    their maximal elements); same [engine]/[stats]/anytime contract as
    {!stable_models}. *)

val explain : t -> obj:string -> Logic.Literal.t -> Ordered.Explain.t

val preferred_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Compiled | `Naive ] ->
  ?search:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime
(** The preferred models viewed from [obj] under the store's preference
    pairs (with no pairs: exactly {!stable_models}).  [`Compiled] (the
    default) evaluates the {!Prefer.Compile} translation; [`Naive] runs
    the {!Prefer.Naive} oracle — same model set, different enumeration
    order.  [search] picks the stable-model engine used on the compiled
    translation ([`Pruned], the default; [`Compiled] for the flat-array
    kernel — same models and order, fewer nodes); it is ignored by the
    naive route.  Raises {!Ordered.Diag.Error} if a preference names a
    rule absent from this view. *)

val prefer_spec : t -> obj:string -> Prefer.Spec.t
(** The validated preference specification for the view from [obj]. *)

val prefer_gop : ?budget:Ordered.Budget.t -> t -> obj:string -> Ordered.Gop.t
(** The cached grounding of the compiled preference program for [obj]
    (reground on modification, like {!gop}). *)

val to_program : t -> Ordered.Program.t
(** The underlying ordered program (rebuilt on demand). *)

val to_source : t -> string
(** The knowledge base in surface syntax; {!load} of the result into a
    fresh KB reproduces the same objects, parents and rules (versioning
    counters are not serialised — versions reload as ordinary objects). *)

val gop : ?budget:Ordered.Budget.t -> t -> obj:string -> Ordered.Gop.t
(** The cached ground view from an object (reground on modification; the
    budget only governs a call that actually regrounds). *)
