(** Knowledge bases: the object-oriented reading of ordered logic
    programming (paper, Section 5).

    The base API ({!Store}) is included here, so [Kb.create], [Kb.define],
    [Kb.query] &c. work as before; {!Session} layers a memoizing result
    cache over a store for the repeated-query workload of the query
    server ([olp serve]). *)

include Store

(** Memoizing sessions (structural-fingerprint result cache with
    hit/miss/invalidation counters); see {!Session}. *)
module Session = Session

(** The raw store layer as a named module (its API is also spliced
    directly onto [Kb] by the [include] above); persistence code names
    mutation and dump types as [Kb.Store.t] paths. *)
module Store = Store
