open Logic

type obj = {
  name : string;
  mutable parents : string list;
  mutable rules : Rule.t list;
}

type t = {
  mutable objs : obj list;  (** reverse definition order *)
  mutable latest : (string * string) list;  (** base object -> latest version *)
  mutable version_count : (string * int) list;
  mutable prefs : (string * string) list;  (** (preferred, over), decl order *)
  mutable cache : (string * Ordered.Gop.t) list;  (** invalidated on change *)
  mutable pcache : (string * Ordered.Gop.t) list;
      (** compiled preference groundings, invalidated on change *)
}

let create () =
  { objs = []; latest = []; version_count = []; prefs = []; cache = [];
    pcache = [] }

let invalidate kb =
  kb.cache <- [];
  kb.pcache <- []

let find kb name = List.find_opt (fun o -> String.equal o.name name) kb.objs

let find_exn kb name =
  match find kb name with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Kb: unknown object %S" name)

let define kb ?(isa = []) name rules =
  if find kb name <> None then
    invalid_arg (Printf.sprintf "Kb.define: duplicate object %S" name);
  List.iter (fun p -> ignore (find_exn kb p)) isa;
  kb.objs <- { name; parents = isa; rules } :: kb.objs;
  invalidate kb

let define_src kb ?isa name src =
  define kb ?isa name (Lang.Parser.parse_rules src)

let load kb src =
  let ast = Lang.Parser.parse_file src in
  let comps = Lang.Ast.components ast in
  (* Definition order may reference later parents; insert objects first,
     then wire parents. *)
  List.iter
    (fun (c : Lang.Ast.component) ->
      if find kb c.name <> None then
        invalid_arg (Printf.sprintf "Kb.load: duplicate object %S" c.name);
      kb.objs <- { name = c.name; parents = []; rules = c.rules } :: kb.objs)
    comps;
  List.iter
    (fun (lo, hi) ->
      ignore (find_exn kb hi);
      let o = find_exn kb lo in
      if not (List.mem hi o.parents) then o.parents <- o.parents @ [ hi ])
    (Lang.Ast.order_pairs ast);
  let fresh =
    List.filter
      (fun p -> not (List.mem p kb.prefs))
      (Lang.Ast.prefer_pairs ast)
  in
  if fresh <> [] then begin
    Prefer.Spec.check_pairs (kb.prefs @ fresh);
    kb.prefs <- kb.prefs @ fresh
  end;
  invalidate kb

let add_rule kb ~obj r =
  let o = find_exn kb obj in
  o.rules <- o.rules @ [ r ];
  invalidate kb

let add_rule_src kb ~obj src = add_rule kb ~obj (Lang.Parser.parse_rule src)
let add_fact kb ~obj l = add_rule kb ~obj (Rule.fact l)

let remove_rule kb ~obj r =
  let o = find_exn kb obj in
  let before = List.length o.rules in
  o.rules <- List.filter (fun r' -> not (Rule.equal r r')) o.rules;
  let removed = List.length o.rules < before in
  if removed then invalidate kb;
  removed

let objects kb = List.rev_map (fun o -> o.name) kb.objs
let parents kb name = (find_exn kb name).parents
let rules kb name = (find_exn kb name).rules

(* ------------------------------------------------------------------ *)
(* Preferences                                                         *)
(* ------------------------------------------------------------------ *)

let preferences kb = kb.prefs

(* The pair set must stay a strict order on its own: cycles are rejected
   here, eagerly, while unknown rule names are allowed (the rule may be
   defined later) and only rejected when a preferred query builds its
   {!Prefer.Spec} against a concrete view. *)
let set_preference kb ~rule ~over =
  let pair = (rule, over) in
  if not (List.mem pair kb.prefs) then begin
    Prefer.Spec.check_pairs (kb.prefs @ [ pair ]);
    kb.prefs <- kb.prefs @ [ pair ];
    invalidate kb
  end

let clear_preference kb ~rule ~over =
  let pair = (rule, over) in
  let present = List.mem pair kb.prefs in
  if present then begin
    kb.prefs <- List.filter (fun p -> p <> pair) kb.prefs;
    invalidate kb
  end;
  present

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

type dump = {
  dump_objs : (string * string list * Rule.t list) list;
  dump_latest : (string * string) list;
  dump_counts : (string * int) list;
  dump_prefs : (string * string) list;
}

let dump kb =
  { dump_objs =
      List.rev_map (fun o -> (o.name, o.parents, o.rules)) kb.objs;
    dump_latest = kb.latest;
    dump_counts = kb.version_count;
    dump_prefs = kb.prefs
  }

let of_dump d =
  { objs =
      List.rev_map
        (fun (name, parents, rules) -> { name; parents; rules })
        d.dump_objs;
    latest = d.dump_latest;
    version_count = d.dump_counts;
    prefs = d.dump_prefs;
    cache = [];
    pcache = []
  }

(* A deep copy down to the per-object mutable fields: the clone and the
   original share rule/parent list structure (immutable), but mutating
   either store never changes what the other observes.  The gop cache is
   not copied — it is an optimisation, not state. *)
let copy kb = of_dump (dump kb)

let restore kb d =
  let fresh = of_dump d in
  kb.objs <- fresh.objs;
  kb.latest <- fresh.latest;
  kb.version_count <- fresh.version_count;
  kb.prefs <- fresh.prefs;
  invalidate kb

(* ------------------------------------------------------------------ *)
(* Versioning                                                          *)
(* ------------------------------------------------------------------ *)

let latest_version kb name =
  ignore (find_exn kb name);
  match List.assoc_opt name kb.latest with
  | Some v -> v
  | None -> name

let new_version kb ?(rules = []) name =
  ignore (find_exn kb name);
  let count =
    match List.assoc_opt name kb.version_count with
    | Some c -> c
    | None -> 1
  in
  let prev = latest_version kb name in
  let vname = Printf.sprintf "%s@%d" name (count + 1) in
  define kb ~isa:[ prev ] vname rules;
  kb.version_count <-
    (name, count + 1) :: List.remove_assoc name kb.version_count;
  kb.latest <- (name, vname) :: List.remove_assoc name kb.latest;
  vname

let versions kb name =
  ignore (find_exn kb name);
  let count =
    match List.assoc_opt name kb.version_count with
    | Some c -> c
    | None -> 1
  in
  name
  :: List.filter_map
       (fun i ->
         let v = Printf.sprintf "%s@%d" name i in
         if find kb v <> None then Some v else None)
       (List.init (max 0 (count - 1)) (fun i -> i + 2))

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Define of { name : string; isa : string list; rules : Rule.t list }
  | Add_rule of { obj : string; rule : Rule.t }
  | Remove_rule of { obj : string; rule : Rule.t }
  | New_version of { name : string; rules : Rule.t list option }
  | Load of { src : string }
  | Set_preference of { rule : string; over : string }
  | Clear_preference of { rule : string; over : string }

let apply kb = function
  | Define { name; isa; rules } -> define kb ~isa name rules
  | Add_rule { obj; rule } -> add_rule kb ~obj rule
  | Remove_rule { obj; rule } -> ignore (remove_rule kb ~obj rule : bool)
  | New_version { name; rules } -> ignore (new_version kb ?rules name : string)
  | Load { src } -> load kb src
  | Set_preference { rule; over } -> set_preference kb ~rule ~over
  | Clear_preference { rule; over } ->
    ignore (clear_preference kb ~rule ~over : bool)

let pp_mutation ppf =
  let rules ppf rs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      Rule.pp ppf rs
  in
  function
  | Define { name; isa; rules = rs } ->
    Format.fprintf ppf "define %s isa [%s] { %a }" name
      (String.concat ", " isa) rules rs
  | Add_rule { obj; rule } -> Format.fprintf ppf "add_rule %s %a" obj Rule.pp rule
  | Remove_rule { obj; rule } ->
    Format.fprintf ppf "remove_rule %s %a" obj Rule.pp rule
  | New_version { name; rules = None } ->
    Format.fprintf ppf "new_version %s" name
  | New_version { name; rules = Some rs } ->
    Format.fprintf ppf "new_version %s { %a }" name rules rs
  | Load { src } -> Format.fprintf ppf "load %d byte(s)" (String.length src)
  | Set_preference { rule; over } ->
    Format.fprintf ppf "set_preference %s > %s" rule over
  | Clear_preference { rule; over } ->
    Format.fprintf ppf "clear_preference %s > %s" rule over

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let to_program kb =
  let comps =
    List.rev_map (fun o -> (o.name, o.rules)) kb.objs
  in
  let pairs =
    List.concat_map
      (fun o -> List.map (fun p -> (o.name, p)) o.parents)
      (List.rev kb.objs)
  in
  Ordered.Program.make_exn comps pairs

let gop ?budget kb ~obj =
  ignore (find_exn kb obj);
  match List.assoc_opt obj kb.cache with
  | Some g -> g
  | None ->
    let prog = to_program kb in
    let g =
      Ordered.Gop.ground ?budget prog
        (Ordered.Program.component_id_exn prog obj)
    in
    kb.cache <- (obj, g) :: kb.cache;
    g

let to_source kb =
  let base = Format.asprintf "%a" Ordered.Program.pp (to_program kb) in
  match kb.prefs with
  | [] -> base
  | prefs ->
    let buf = Buffer.create (String.length base + 64) in
    Buffer.add_string buf base;
    List.iter
      (fun (a, b) ->
        Buffer.add_string buf (Printf.sprintf "\nprefer %s > %s." a b))
      prefs;
    Buffer.contents buf

let least_model ?budget kb ~obj =
  Ordered.Vfix.least_model ?budget (gop ?budget kb ~obj)

let query ?budget kb ~obj l =
  if not (Literal.is_ground l) then
    invalid_arg "Kb.query: literal must be ground";
  Interp.value_lit (least_model ?budget kb ~obj) l

let query_src ?budget kb ~obj src =
  query ?budget kb ~obj (Lang.Parser.parse_literal src)

let stable_models ?limit ?budget ?(engine = `Pruned) ?stats kb ~obj =
  let g = gop ?budget kb ~obj in
  match engine with
  | `Pruned -> Ordered.Stable.stable_models ?limit ?budget ?stats g
  | `Naive -> Ordered.Stable.Naive.stable_models ?limit ?budget ?stats g
  | `Compiled -> Solve.Kernel.stable_models ?limit ?budget ?stats g

let assumption_free_models ?limit ?budget ?(engine = `Pruned) ?stats kb ~obj =
  let g = gop ?budget kb ~obj in
  match engine with
  | `Pruned -> Ordered.Stable.assumption_free_models ?limit ?budget ?stats g
  | `Naive ->
    Ordered.Stable.Naive.assumption_free_models ?limit ?budget ?stats g
  | `Compiled -> Solve.Kernel.assumption_free_models ?limit ?budget ?stats g

let explain kb ~obj l = Ordered.Explain.explain (gop kb ~obj) l

(* ------------------------------------------------------------------ *)
(* Preferred models                                                    *)
(* ------------------------------------------------------------------ *)

let prefer_spec kb ~obj =
  ignore (find_exn kb obj);
  let prog = to_program kb in
  Prefer.Spec.make prog (Ordered.Program.component_id_exn prog obj) kb.prefs

(* The compiled grounding is cached like the plain one; the naive oracle
   is a differential reference and always recomputes. *)
let prefer_gop ?budget kb ~obj =
  ignore (find_exn kb obj);
  match List.assoc_opt obj kb.pcache with
  | Some g -> g
  | None ->
    let g =
      Prefer.Compile.gop ?budget (Prefer.Compile.compile (prefer_spec kb ~obj))
    in
    kb.pcache <- (obj, g) :: kb.pcache;
    g

let preferred_models ?limit ?budget ?(engine = `Compiled) ?(search = `Pruned)
    ?stats kb ~obj =
  match engine with
  | `Compiled -> (
    let g = prefer_gop ?budget kb ~obj in
    match search with
    | `Pruned -> Ordered.Stable.stable_models ?limit ?budget ?stats g
    | `Naive -> Ordered.Stable.Naive.stable_models ?limit ?budget ?stats g
    | `Compiled -> Solve.Kernel.stable_models ?limit ?budget ?stats g)
  | `Naive ->
    Prefer.Naive.preferred_models ?limit ?budget ?stats (prefer_spec kb ~obj)
