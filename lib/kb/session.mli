(** Memoizing knowledge-base sessions: a {!Store} plus a result cache,
    with lock-free snapshot reads.

    A session wraps a knowledge base for the repeated-query workload of a
    resident server: the ground program, least model, model enumerations
    and explanations computed for one viewpoint are memoized, so asking
    the same question against an unchanged KB skips grounding and solving
    entirely.

    {b Versions and snapshots.}  The session keeps one mutable master
    store, guarded by an internal write lock, and {e publishes} an
    immutable snapshot view — a (version, fingerprint, store copy,
    cache) tuple — through a single atomic reference after every
    successful mutation.  A query pins the current view with one atomic
    read and runs entirely against that frozen version: no lock, no
    interference from writers preparing the next version, and no torn
    state even while a [load] or [new_version] is mid-mutation on the
    master.  Any number of threads (or OCaml 5 domains) may query
    concurrently; mutating operations serialize on the write lock.

    {b Keying.}  Within a view, cache entries are keyed by the viewpoint
    object and the operation (including its [limit]/[engine]
    parameters); the view itself carries the {e structural fingerprint}
    of the knowledge base — a digest of every object's name, parents and
    rules in definition order — computed once at publish time.  A hit is
    only ever served from the view a mutation published, so it reflects
    a KB whose rules and order are byte-identical to the ones the entry
    was computed from.

    {b Invalidation: delta eviction.}  The mutating operations
    ({!define}, {!define_src}, {!load}, {!add_rule}, {!add_rule_src},
    {!add_fact}, {!remove_rule} when it removes, {!new_version}) publish
    a fresh view and count one invalidation, but the new view {e carries
    the old caches forward} through delta-aware eviction instead of
    starting empty (docs/INCREMENTAL.md):

    - {!define}/{!new_version} add a fresh object no existing view can
      see: everything is kept.
    - {!add_rule}/{!remove_rule} on object [o] touch only the cached
      viewpoints whose isa-cone contains [o].  For those, the grounding
      is {e repaired} incrementally ([Inc.Reground]); if the mutation
      turns out not to change the viewpoint's ground program, every
      entry is kept, otherwise the least model is repaired from the
      delta's affected cone ([Inc.Repair]) and enumerations /
      explanations / preference caches for that viewpoint are evicted.
      When repair cannot guarantee exactness (changed Herbrand universe,
      shared ground instances, non-monotone damage) it falls back to
      eviction or recompute — counted, never silent.
    - {!set_preference}/{!clear_preference} evict only preference-derived
      state (preferred-model entries, compiled preference programs).
    - {!load} may rewire parents of existing objects, so it evicts
      everything.

    {!set_eviction} [`Wholesale] restores the pre-PR-10 flush-on-write
    behaviour (the benchmark baseline).  Repairs, fallbacks, evictions
    and carried entries are counted in {!counters} and, when
    {!use_metrics} is wired, as [inc_repairs] / [inc_fallbacks] /
    [inc_evictions] / [cache_kept] server metrics.

    {b Budgets.}  A cache miss computes under the caller's budget exactly
    like the underlying {!Store} call, and only {e complete} results are
    stored: a [Partial] enumeration or a raised [Budget.Exhausted]
    leaves the cache untouched, so a later, better-funded call recomputes
    rather than serving a truncated answer.  A hit returns the cached
    complete result without consuming budget. *)

type t

val create : unit -> t

val of_store : Store.t -> t
(** Wrap an existing knowledge base (e.g. one rebuilt by crash recovery)
    in a fresh session; the cache starts empty and the store's state is
    published as version 0. *)

val store : t -> Store.t
(** The underlying master knowledge base.  Mutating it directly bypasses
    invalidation accounting and the {!on_mutation} observer {e and} the
    snapshot publication — readers keep answering from the last
    published view until {!invalidate} republishes (the replication
    bootstrap path does exactly that after a snapshot
    {!Store.restore}). *)

val on_mutation : t -> (Store.mutation -> unit) -> unit
(** Register the mutation observer (one slot; a second call replaces the
    first).  After a mutating operation succeeds on the store — and
    {e before} the new view is published — the observer is called with
    the reified {!Store.mutation}; the persistence subsystem uses this to
    append to its write-ahead log, so a mutation is durable before any
    reader can observe it.  An observer that raises propagates to the
    caller: the master store has mutated but no new view was published,
    which leaves the log behind the store — callers treat that as a
    fatal storage error. *)

(** {1 Counters} *)

type counters = {
  hits : int;  (** lookups answered from the cache *)
  misses : int;  (** lookups that had to compute *)
  invalidations : int;  (** view publications by mutating operations *)
  entries : int;
      (** results cached in the current view (ground programs aside) *)
  repairs : int;
      (** groundings/fixpoints repaired in place by delta eviction *)
  fallbacks : int;
      (** repairs that had to fall back to eviction or full recompute *)
  evictions : int;  (** result entries dropped by eviction *)
  kept : int;  (** result entries carried across a mutation *)
}

val counters : t -> counters

val use_metrics : t -> Governor.Metrics.t -> unit
(** Mirror the delta-eviction counters into a metrics registry as
    [inc_repairs], [inc_fallbacks], [inc_evictions] and [cache_kept],
    and the flat-compile cache as [flat_compiles]/[flat_cache_hits];
    all six are registered immediately (at zero) so [stats] stays
    deterministic. *)

val set_eviction : t -> [ `Delta | `Wholesale ] -> unit
(** Eviction policy on mutation: [`Delta] (default) carries caches
    forward per the contract above; [`Wholesale] publishes empty caches
    (every surviving entry dropped) — the flush-on-write baseline. *)

val eviction : t -> [ `Delta | `Wholesale ]

val fingerprint : t -> string
(** The current view's structural fingerprint (hex digest); equal
    fingerprints mean structurally identical knowledge bases. *)

val version : t -> int
(** The current view's version number: 0 at creation, +1 per published
    mutation (including {!invalidate}).  Monotone — concurrent readers
    can use it to order the snapshots they observed. *)

(** {1 Mutating operations} (see {!Store} for semantics) *)

val define : t -> ?isa:string list -> string -> Logic.Rule.t list -> unit
val define_src : t -> ?isa:string list -> string -> string -> unit
val load : t -> string -> unit
val add_rule : t -> obj:string -> Logic.Rule.t -> unit
val add_rule_src : t -> obj:string -> string -> unit
val add_fact : t -> obj:string -> Logic.Literal.t -> unit
val remove_rule : t -> obj:string -> Logic.Rule.t -> bool
val new_version : t -> ?rules:Logic.Rule.t list -> string -> string

val set_preference : t -> rule:string -> over:string -> unit
(** {!Store.set_preference} through the session: the pair is logged and
    a fresh view published (the preference order is part of the
    fingerprint).  A no-op repeat still publishes. *)

val clear_preference : t -> rule:string -> over:string -> bool
(** Like {!remove_rule}: only a removal that actually happened is logged
    and published. *)

val apply : t -> Store.mutation -> unit
(** Replay one reified mutation ({!Store.apply}) through the session:
    the {!on_mutation} observer fires and a fresh view is published
    exactly as if the corresponding named operation had been called.
    This is the replication apply path — a replica feeds shipped WAL
    records here so its own log and cache track its store. *)

val apply_batch : t -> Store.mutation list -> unit
(** Replay a whole batch of shipped mutations under one lock
    acquisition, notifying the observer per record (in order) but
    publishing — and counting — a single invalidation at the end, so
    catching up by [n] records costs one store copy instead of [n].
    The carried caches are folded through each record's delta in order,
    so a replica repairs derived state exactly as the primary did.
    A record that raises publishes the prefix that did apply and
    re-raises. *)

val invalidate : t -> unit
(** Republish the master's current state as a fresh view (counted as one
    invalidation).  Used after out-of-band store changes such as a
    snapshot {!Store.restore} during replication bootstrap. *)

(** {1 Read-only views} (answered from the current snapshot; never touch
    the cache counters) *)

val objects : t -> string list
val parents : t -> string -> string list
val rules : t -> string -> Logic.Rule.t list
val latest_version : t -> string -> string
val versions : t -> string -> string list
val preferences : t -> (string * string) list

(** {1 Memoized queries} (see {!Store} for semantics) *)

val gop : ?budget:Ordered.Budget.t -> t -> obj:string -> Ordered.Gop.t

val least_model :
  ?budget:Ordered.Budget.t -> t -> obj:string -> Logic.Interp.t

val query :
  ?budget:Ordered.Budget.t ->
  t ->
  obj:string ->
  Logic.Literal.t ->
  Logic.Interp.value

val query_src :
  ?budget:Ordered.Budget.t -> t -> obj:string -> string -> Logic.Interp.value

val stable_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime

val assumption_free_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime

val explain : t -> obj:string -> Logic.Literal.t -> Ordered.Explain.t

val prefer_gop :
  ?budget:Ordered.Budget.t ->
  ?metrics:Governor.Metrics.t ->
  t ->
  obj:string ->
  Ordered.Gop.t
(** The grounding of the compiled preference program for [obj], cached
    per view like {!gop}.  [metrics] (when given) counts one
    [prefer_compilations] per actual compilation, one
    [prefer_cache_hits] per served cache hit, and tracks the compiled
    grounding's size as [prefer_gop_atoms]/[prefer_gop_rules]
    high-water gauges. *)

val preferred_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Compiled | `Naive ] ->
  ?search:[ `Pruned | `Naive | `Compiled ] ->
  ?stats:Ordered.Counters.t ->
  ?metrics:Governor.Metrics.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime
(** {!Store.preferred_models} through the per-view result cache (keyed
    by [obj], [limit], [engine] and [search]; only complete enumerations
    are cached).  [metrics] accounts compilations and cache hits as in
    {!prefer_gop}. *)
