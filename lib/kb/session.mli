(** Memoizing knowledge-base sessions: a {!Store} plus a result cache.

    A session wraps a knowledge base for the repeated-query workload of a
    resident server: the ground program, least model, model enumerations
    and explanations computed for one viewpoint are memoized, so asking
    the same question against an unchanged KB skips grounding and solving
    entirely.

    {b Keying.}  Cache entries are keyed by a {e structural fingerprint}
    of the knowledge base — a digest of every object's name, parents and
    rules in definition order — together with the viewpoint object and
    the operation (including its [limit]/[engine] parameters).  The
    fingerprint is recomputed from the store on every lookup, so a hit is
    only ever served for a KB whose rules and order are byte-identical to
    the ones the entry was computed from.

    {b Invalidation.}  The mutating operations ({!define}, {!define_src},
    {!load}, {!add_rule}, {!add_rule_src}, {!add_fact}, {!remove_rule}
    when it removes, {!new_version}) flush the cache and count one
    invalidation; the next query is a guaranteed miss.  (The structural
    key makes flushing a memory bound rather than a correctness
    mechanism: a stale entry could never match a mutated KB.)

    {b Budgets.}  A cache miss computes under the caller's budget exactly
    like the underlying {!Store} call, and only {e complete} results are
    stored: a [Partial] enumeration or a raised [Budget.Exhausted]
    leaves the cache untouched, so a later, better-funded call recomputes
    rather than serving a truncated answer.  A hit returns the cached
    complete result without consuming budget.

    Sessions are not thread-safe; the query server serializes access. *)

type t

val create : unit -> t

val of_store : Store.t -> t
(** Wrap an existing knowledge base (e.g. one rebuilt by crash recovery)
    in a fresh session; the cache starts empty. *)

val store : t -> Store.t
(** The underlying knowledge base.  Mutating it directly bypasses
    invalidation accounting and the {!on_mutation} observer; the
    structural fingerprint still prevents stale hits. *)

val on_mutation : t -> (Store.mutation -> unit) -> unit
(** Register the mutation observer (one slot; a second call replaces the
    first).  After a mutating operation succeeds on the store — and
    {e before} the result cache is flushed — the observer is called with
    the reified {!Store.mutation}; the persistence subsystem uses this to
    append to its write-ahead log, so a mutation is durable before any
    cache state reflects it.  An observer that raises propagates to the
    caller: the in-memory store has mutated but the cache was not
    flushed, which is safe (stale entries cannot match the mutated
    fingerprint) but leaves the log behind the store — callers treat
    that as a fatal storage error. *)

(** {1 Counters} *)

type counters = {
  hits : int;  (** lookups answered from the cache *)
  misses : int;  (** lookups that had to compute *)
  invalidations : int;  (** cache flushes by mutating operations *)
  entries : int;  (** results currently cached (ground programs aside) *)
}

val counters : t -> counters

val fingerprint : t -> string
(** The current structural fingerprint (hex digest); equal fingerprints
    mean structurally identical knowledge bases. *)

(** {1 Mutating operations} (see {!Store} for semantics) *)

val define : t -> ?isa:string list -> string -> Logic.Rule.t list -> unit
val define_src : t -> ?isa:string list -> string -> string -> unit
val load : t -> string -> unit
val add_rule : t -> obj:string -> Logic.Rule.t -> unit
val add_rule_src : t -> obj:string -> string -> unit
val add_fact : t -> obj:string -> Logic.Literal.t -> unit
val remove_rule : t -> obj:string -> Logic.Rule.t -> bool
val new_version : t -> ?rules:Logic.Rule.t list -> string -> string

val apply : t -> Store.mutation -> unit
(** Replay one reified mutation ({!Store.apply}) through the session:
    the {!on_mutation} observer fires and the cache is flushed exactly
    as if the corresponding named operation had been called.  This is
    the replication apply path — a replica feeds shipped WAL records
    here so its own log and cache track its store. *)

val invalidate : t -> unit
(** Flush the result cache unconditionally (counted as one
    invalidation).  Used after out-of-band store changes such as a
    snapshot {!Store.restore} during replication bootstrap. *)

(** {1 Read-only views} (never touch the cache) *)

val objects : t -> string list
val parents : t -> string -> string list
val rules : t -> string -> Logic.Rule.t list
val latest_version : t -> string -> string
val versions : t -> string -> string list

(** {1 Memoized queries} (see {!Store} for semantics) *)

val gop : ?budget:Ordered.Budget.t -> t -> obj:string -> Ordered.Gop.t

val least_model :
  ?budget:Ordered.Budget.t -> t -> obj:string -> Logic.Interp.t

val query :
  ?budget:Ordered.Budget.t ->
  t ->
  obj:string ->
  Logic.Literal.t ->
  Logic.Interp.value

val query_src :
  ?budget:Ordered.Budget.t -> t -> obj:string -> string -> Logic.Interp.value

val stable_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime

val assumption_free_models :
  ?limit:int ->
  ?budget:Ordered.Budget.t ->
  ?engine:[ `Pruned | `Naive ] ->
  ?stats:Ordered.Counters.t ->
  t ->
  obj:string ->
  Logic.Interp.t list Ordered.Budget.anytime

val explain : t -> obj:string -> Logic.Literal.t -> Ordered.Explain.t
