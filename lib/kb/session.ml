(* Memoizing sessions over a Store, with lock-free snapshot reads: the
   master store is mutated under a write lock, and every successful
   mutation publishes an immutable [view] — (version, fingerprint, store
   copy, caches) — through one atomic reference.  Readers pin the
   current view with a single [Atomic.get] and never take a lock.

   Since PR 10 a mutation no longer flushes the caches wholesale: the
   published caches are carried forward through delta eviction — only
   entries whose object cone can see the mutated object are touched, and
   for those the grounding and least model are {e repaired} through
   [Inc] (incremental re-grounding + fixpoint repair) rather than
   dropped whenever the repair is provably exact.  Every fallback to
   recompute is counted, never silent.  See session.mli and
   docs/INCREMENTAL.md for the contract. *)

module B = Ordered.Budget
module M = Governor.Metrics

type op =
  | Least
  | Models of {
      kind : [ `Stable | `Af ];
      limit : int option;
      engine : [ `Pruned | `Naive | `Compiled ];
    }
  | Preferred of {
      limit : int option;
      engine : [ `Compiled | `Naive ];
      search : [ `Pruned | `Naive | `Compiled ];
    }
  | Explained of string  (* printed literal *)

type entry =
  | E_interp of Logic.Interp.t
  | E_models of Logic.Interp.t list
  | E_explain of Ordered.Explain.t

type counters = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;
  repairs : int;
  fallbacks : int;
  evictions : int;
  kept : int;
}

module Key = struct
  type t = string * op  (* obj, op *)

  let compare = Stdlib.compare
end

module KeyMap = Map.Make (Key)
module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

(* One published KB version.  [vstore] is a private copy nothing ever
   mutates, so any number of readers may ground and solve against it
   concurrently; the result caches are immutable maps swapped by CAS
   (a racing insert retries on the fresh map, a duplicate insert is
   dropped — either way readers only ever see complete maps). *)
type view = {
  version : int;
  fingerprint : string;
  vstore : Store.t;
  results : entry KeyMap.t Atomic.t;
  vgops : Inc.Reground.state StrMap.t Atomic.t;
      (** groundings with provenance, keyed by viewpoint object *)
  vpgops : Ordered.Gop.t StrMap.t Atomic.t;
      (** compiled preference groundings, keyed like [vgops] *)
  vflats : Solve.Flat.t StrMap.t Atomic.t;
      (** compiled flat-array programs for [vgops] entries *)
  vpflats : Solve.Flat.t StrMap.t Atomic.t;
      (** compiled flat-array programs for [vpgops] entries *)
}

type t = {
  master : Store.t;  (* the one mutable store; guarded by [write_lock] *)
  write_lock : Mutex.t;
  current : view Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  repairs : int Atomic.t;
  fallbacks : int Atomic.t;
  evictions : int Atomic.t;
  kept : int Atomic.t;
  mutable eviction : [ `Delta | `Wholesale ];
  mutable metrics : M.t option;
  mutable on_mutation : (Store.mutation -> unit) option;
}

(* The structural fingerprint: every object's name, parents and rules in
   definition order.  '\x00'/'\x01' separators keep distinct structures
   from serialising to the same string.  Computed once per publish, not
   per lookup. *)
let fingerprint_of_store store =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      List.iter
        (fun p ->
          Buffer.add_string buf p;
          Buffer.add_char buf '\x01')
        (Store.parents store name);
      Buffer.add_char buf '\x00';
      List.iter
        (fun r ->
          Buffer.add_string buf (Logic.Rule.to_string r);
          Buffer.add_char buf '\x01')
        (Store.rules store name);
      Buffer.add_char buf '\x00')
    (Store.objects store);
  (* the preference order is part of the structure: two KBs with the same
     rules but different preferences answer differently *)
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf a;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf b;
      Buffer.add_char buf '\x00')
    (Store.preferences store);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let view_of ~version store =
  { version;
    fingerprint = fingerprint_of_store store;
    vstore = Store.copy store;
    results = Atomic.make KeyMap.empty;
    vgops = Atomic.make StrMap.empty;
    vpgops = Atomic.make StrMap.empty;
    vflats = Atomic.make StrMap.empty;
    vpflats = Atomic.make StrMap.empty
  }

let of_store store =
  { master = store;
    write_lock = Mutex.create ();
    current = Atomic.make (view_of ~version:0 store);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    repairs = Atomic.make 0;
    fallbacks = Atomic.make 0;
    evictions = Atomic.make 0;
    kept = Atomic.make 0;
    eviction = `Delta;
    metrics = None;
    on_mutation = None
  }

let create () = of_store (Store.create ())

let store t = t.master
let on_mutation t f = t.on_mutation <- Some f
let current t = Atomic.get t.current
let version t = (current t).version
let fingerprint t = (current t).fingerprint
let eviction t = t.eviction

let inc_counter_names =
  [ "inc_repairs"; "inc_fallbacks"; "inc_evictions"; "cache_kept";
    "flat_compiles"; "flat_cache_hits" ]

(* Registering the counters up front keeps the server's [stats] output
   deterministic: the names are present (at 0) before the first
   mutation or compiled enumeration. *)
let use_metrics t m =
  t.metrics <- Some m;
  List.iter (fun n -> M.add m n 0) inc_counter_names

let counters t =
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    entries = KeyMap.cardinal (Atomic.get (current t).results);
    repairs = Atomic.get t.repairs;
    fallbacks = Atomic.get t.fallbacks;
    evictions = Atomic.get t.evictions;
    kept = Atomic.get t.kept
  }

(* ------------------------------------------------------------------ *)
(* Invalidation and delta eviction                                     *)
(* ------------------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_lock) f

let note t cell name n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add cell n : int);
    match t.metrics with Some m -> M.add m name n | None -> ()
  end

let bump_metric t name =
  match t.metrics with Some m -> M.incr m name | None -> ()

(* The carried caches of a view as plain maps, while the write lock
   keeps new inserts from racing the carry-forward. *)
type caches = {
  c_results : entry KeyMap.t;
  c_gstates : Inc.Reground.state StrMap.t;
  c_pgops : Ordered.Gop.t StrMap.t;
  c_flats : Solve.Flat.t StrMap.t;
  c_pflats : Solve.Flat.t StrMap.t;
}

let empty_caches =
  { c_results = KeyMap.empty;
    c_gstates = StrMap.empty;
    c_pgops = StrMap.empty;
    c_flats = StrMap.empty;
    c_pflats = StrMap.empty
  }

let caches_of_view v =
  { c_results = Atomic.get v.results;
    c_gstates = Atomic.get v.vgops;
    c_pgops = Atomic.get v.vpgops;
    c_flats = Atomic.get v.vflats;
    c_pflats = Atomic.get v.vpflats
  }

(* Every object some cache knows about. *)
let viewpoints c =
  let add m acc = StrMap.fold (fun k _ acc -> StrSet.add k acc) m acc in
  KeyMap.fold (fun (o, _) _ acc -> StrSet.add o acc) c.c_results StrSet.empty
  |> add c.c_gstates |> add c.c_pgops |> add c.c_flats |> add c.c_pflats

(* Does [viewpoint]'s view [C*] contain [obj]?  The view walks the isa
   chain upward, so the cone of a viewpoint is itself plus its
   transitive parents. *)
let sees store ~viewpoint ~obj =
  let rec go seen = function
    | [] -> false
    | x :: rest ->
      if String.equal x obj then true
      else if StrSet.mem x seen then go seen rest
      else
        go (StrSet.add x seen)
          (List.rev_append (Store.parents store x) rest)
  in
  go StrSet.empty [ viewpoint ]

let is_preferred_key ((_, op) : Key.t) = match op with Preferred _ -> true | _ -> false
let key_of_obj w ((o, _) : Key.t) = String.equal o w

let count_keys p m = KeyMap.cardinal (KeyMap.filter (fun k _ -> p k) m)

(* Repair or evict one viewpoint's cached state after a single-rule
   mutation of [obj] that this viewpoint can see.  The compiled
   preference program derives from the schema view, which changed, so
   preference caches are always dropped here; plain entries survive
   whenever the repair is provably exact. *)
let repair_viewpoint t ~program c w =
  let mine k = key_of_obj w k in
  let plain k = mine k && not (is_preferred_key k) in
  let drop_plain c =
    note t t.evictions "inc_evictions" (count_keys plain c.c_results);
    { c with
      c_results = KeyMap.filter (fun k _ -> not (plain k)) c.c_results;
      c_gstates = StrMap.remove w c.c_gstates;
      c_flats = StrMap.remove w c.c_flats
    }
  in
  (* preference caches of this viewpoint go regardless *)
  note t t.evictions "inc_evictions"
    (count_keys (fun k -> mine k && is_preferred_key k) c.c_results);
  let c =
    { c with
      c_results =
        KeyMap.filter (fun k _ -> not (mine k && is_preferred_key k)) c.c_results;
      c_pgops = StrMap.remove w c.c_pgops;
      c_pflats = StrMap.remove w c.c_pflats
    }
  in
  match StrMap.find_opt w c.c_gstates with
  | None -> drop_plain c
  | Some st -> (
    match Inc.Reground.reground st ~program:(Lazy.force program) with
    | Ok (st', d) when Inc.Delta.is_empty d ->
      (* the mutation did not change this viewpoint's grounding at all:
         every plain entry (and the compiled flat) is still exact *)
      note t t.kept "cache_kept" (count_keys plain c.c_results);
      { c with c_gstates = StrMap.add w st' c.c_gstates }
    | Ok (st', d) ->
      note t t.repairs "inc_repairs" 1;
      let c =
        { c with
          c_gstates = StrMap.add w st' c.c_gstates;
          c_flats = StrMap.remove w c.c_flats
        }
      in
      let c_results =
        KeyMap.filter_map
          (fun ((_, op) as k) e ->
            if not (plain k) then Some e
            else
              match (op, e) with
              | Least, E_interp prev -> (
                match
                  Inc.Repair.least_model ~previous:prev st'.Inc.Reground.gop d
                with
                | Inc.Repair.Repaired i ->
                  note t t.repairs "inc_repairs" 1;
                  Some (E_interp i)
                | Inc.Repair.Recomputed i ->
                  note t t.fallbacks "inc_fallbacks" 1;
                  Some (E_interp i)
                | Inc.Repair.Unchanged -> Some e)
              | _ ->
                note t t.evictions "inc_evictions" 1;
                None)
          c.c_results
      in
      { c with c_results }
    | Error _ ->
      note t t.fallbacks "inc_fallbacks" 1;
      drop_plain c
    | exception _ ->
      (* a repair failure must never fail the write: evict and recount *)
      note t t.fallbacks "inc_fallbacks" 1;
      drop_plain c)

(* Transform the carried caches by one applied mutation.  Caller holds
   [write_lock] and has already applied [m] to [t.master]. *)
let next_caches t (c : caches) (m : Store.mutation) =
  match t.eviction with
  | `Wholesale ->
    note t t.evictions "inc_evictions" (KeyMap.cardinal c.c_results);
    empty_caches
  | `Delta -> (
    match m with
    | Store.Define _ | Store.New_version _ ->
      (* a fresh object: existing views cannot see it (isa edges point
         at pre-existing parents), and component numbering of existing
         objects is stable *)
      note t t.kept "cache_kept" (KeyMap.cardinal c.c_results);
      c
    | Store.Load _ ->
      (* load may rewire parents of existing objects and add
         preferences: no per-object cone is sound *)
      note t t.evictions "inc_evictions" (KeyMap.cardinal c.c_results);
      empty_caches
    | Store.Set_preference _ | Store.Clear_preference _ ->
      (* rules and groundings are untouched; only preference-derived
         state can change *)
      note t t.evictions "inc_evictions"
        (count_keys is_preferred_key c.c_results);
      note t t.kept "cache_kept"
        (count_keys (fun k -> not (is_preferred_key k)) c.c_results);
      { c with
        c_results = KeyMap.filter (fun k _ -> not (is_preferred_key k)) c.c_results;
        c_pgops = StrMap.empty;
        c_pflats = StrMap.empty
      }
    | Store.Add_rule { obj; _ } | Store.Remove_rule { obj; _ } ->
      let program = lazy (Store.to_program t.master) in
      StrSet.fold
        (fun w c ->
          if sees t.master ~viewpoint:w ~obj then
            repair_viewpoint t ~program c w
          else begin
            note t t.kept "cache_kept" (count_keys (key_of_obj w) c.c_results);
            c
          end)
        (viewpoints c) c)

(* Publish the master's state as the next immutable version carrying
   [c].  Caller holds [write_lock], so version numbers are gapless and
   the swapped view is never older than a concurrent publisher's. *)
let publish_caches t c =
  let v = current t in
  Atomic.set t.current
    { version = v.version + 1;
      fingerprint = fingerprint_of_store t.master;
      vstore = Store.copy t.master;
      results = Atomic.make c.c_results;
      vgops = Atomic.make c.c_gstates;
      vpgops = Atomic.make c.c_pgops;
      vflats = Atomic.make c.c_flats;
      vpflats = Atomic.make c.c_pflats
    };
  ignore (Atomic.fetch_and_add t.invalidations 1 : int)

let set_eviction t mode = locked t (fun () -> t.eviction <- mode)

(* Run a mutating store operation; notify the observer (the write-ahead
   log, when persistence is wired) and publish only if it succeeded — a
   raising [define] etc. leaves the KB, the log and the published view
   unchanged.  The observer runs {e before} the publish, so a logged
   mutation is durable before any reader can observe it. *)
let mutating t m f =
  locked t (fun () ->
      let r = f t.master in
      (match t.on_mutation with Some notify -> notify m | None -> ());
      publish_caches t (next_caches t (caches_of_view (current t)) m);
      r)

let define t ?(isa = []) name rules =
  mutating t
    (Store.Define { name; isa; rules })
    (fun s -> Store.define s ~isa name rules)

let define_src t ?isa name src =
  define t ?isa name (Lang.Parser.parse_rules src)

let load t src = mutating t (Store.Load { src }) (fun s -> Store.load s src)

let add_rule t ~obj r =
  mutating t (Store.Add_rule { obj; rule = r }) (fun s ->
      Store.add_rule s ~obj r)

let add_rule_src t ~obj src = add_rule t ~obj (Lang.Parser.parse_rule src)
let add_fact t ~obj l = add_rule t ~obj (Logic.Rule.fact l)

let remove_rule t ~obj r =
  locked t (fun () ->
      let removed = Store.remove_rule t.master ~obj r in
      if removed then begin
        let m = Store.Remove_rule { obj; rule = r } in
        (match t.on_mutation with
        | Some notify -> notify m
        | None -> ());
        publish_caches t (next_caches t (caches_of_view (current t)) m)
      end;
      removed)

let new_version t ?rules name =
  mutating t
    (Store.New_version { name; rules })
    (fun s -> Store.new_version s ?rules name)

let set_preference t ~rule ~over =
  mutating t
    (Store.Set_preference { rule; over })
    (fun s -> Store.set_preference s ~rule ~over)

(* like [remove_rule]: only a pair that was actually present is logged
   and published *)
let clear_preference t ~rule ~over =
  locked t (fun () ->
      let removed = Store.clear_preference t.master ~rule ~over in
      if removed then begin
        let m = Store.Clear_preference { rule; over } in
        (match t.on_mutation with
        | Some notify -> notify m
        | None -> ());
        publish_caches t (next_caches t (caches_of_view (current t)) m)
      end;
      removed)

(* Replication replay: apply a shipped mutation through the same
   observer-then-publish path the named operations use, so the replica's
   own WAL and published view stay in lockstep with its store.  The
   delta repair runs per record, so followers repair derived state the
   same way the primary did. *)
let apply t m = mutating t m (fun s -> Store.apply s m)

(* A whole shipped batch under one lock acquisition and one publish —
   the per-record observer calls (WAL appends) still happen in order,
   so durability ordering is exactly as if [apply] had run per record,
   but the store is copied once per batch instead of once per record.
   The carried caches are folded through every record's delta before
   the single publish.  A record that raises publishes the prefix that
   did apply (each of those records is already in the observer's
   log). *)
let apply_batch t ms =
  match ms with
  | [] -> ()
  | ms ->
    locked t (fun () ->
        let caches = ref (caches_of_view (current t)) in
        let applied = ref 0 in
        match
          List.iter
            (fun m ->
              Store.apply t.master m;
              (match t.on_mutation with
              | Some notify -> notify m
              | None -> ());
              caches := next_caches t !caches m;
              incr applied)
            ms
        with
        | () -> publish_caches t !caches
        | exception e ->
          if !applied > 0 then publish_caches t !caches;
          raise e)

let invalidate t = locked t (fun () -> publish_caches t empty_caches)

(* ------------------------------------------------------------------ *)
(* Read-only views                                                     *)
(* ------------------------------------------------------------------ *)

let objects t = Store.objects (current t).vstore
let parents t name = Store.parents (current t).vstore name
let rules t name = Store.rules (current t).vstore name
let latest_version t name = Store.latest_version (current t).vstore name
let versions t name = Store.versions (current t).vstore name
let preferences t = Store.preferences (current t).vstore

(* ------------------------------------------------------------------ *)
(* Memoized queries                                                    *)
(* ------------------------------------------------------------------ *)

let record_hit t = ignore (Atomic.fetch_and_add t.hits 1 : int)
let record_miss t = ignore (Atomic.fetch_and_add t.misses 1 : int)

(* Lock-free insert: retry the CAS against the freshest map; drop the
   duplicate if somebody else cached the same key first.  The maps are
   persistent, so a reader holding an older map still sees a complete,
   valid index. *)
let rec cas_add cell ~mem ~add key v =
  let cur = Atomic.get cell in
  if mem key cur then ()
  else if not (Atomic.compare_and_set cell cur (add key v cur)) then
    cas_add cell ~mem ~add key v

let cache_result v key e =
  cas_add v.results ~mem:KeyMap.mem ~add:KeyMap.add key e

(* The grounding (with provenance) of one viewpoint in the pinned view.
   Internal: does not move the hit/miss counters — those count logical
   results, and one result computation may touch the grounding several
   times. *)
let gop_state ?budget v ~obj =
  match StrMap.find_opt obj (Atomic.get v.vgops) with
  | Some st -> st
  | None ->
    (* surface Store's unknown-object diagnostic before grounding *)
    ignore (Store.rules v.vstore obj : Logic.Rule.t list);
    let prog = Store.to_program v.vstore in
    let st =
      Inc.Reground.ground ?budget prog
        (Ordered.Program.component_id_exn prog obj)
    in
    cas_add v.vgops ~mem:StrMap.mem ~add:StrMap.add obj st;
    st

let gop ?budget t ~obj =
  let v = current t in
  (match StrMap.find_opt obj (Atomic.get v.vgops) with
  | Some _ -> record_hit t
  | None -> record_miss t);
  (gop_state ?budget v ~obj).Inc.Reground.gop

(* Compiled flat program for a grounding, cached per viewpoint in the
   pinned view and invalidated through the same delta eviction. *)
let flat_of t cell ~obj g =
  match StrMap.find_opt obj (Atomic.get cell) with
  | Some f ->
    bump_metric t "flat_cache_hits";
    f
  | None ->
    let f = Solve.Flat.compile g in
    bump_metric t "flat_compiles";
    cas_add cell ~mem:StrMap.mem ~add:StrMap.add obj f;
    f

(* Look up (obj, op) in the pinned view; on a miss run [compute] against
   that same view, store the entry only when [cache] says the result is
   complete. *)
let lookup t ~obj op ~compute ~cache =
  let v = current t in
  let key = (obj, op) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some e ->
    record_hit t;
    e
  | None ->
    record_miss t;
    let e = compute v in
    if cache e then cache_result v key e;
    e

let least_model ?budget t ~obj =
  match
    lookup t ~obj Least
      ~compute:(fun v ->
        E_interp
          (Ordered.Vfix.least_model ?budget
             (gop_state ?budget v ~obj).Inc.Reground.gop))
      ~cache:(fun _ -> true)
  with
  | E_interp i -> i
  | _ -> assert false

let query ?budget t ~obj l =
  if not (Logic.Literal.is_ground l) then
    invalid_arg "Kb.Session.query: literal must be ground";
  Logic.Interp.value_lit (least_model ?budget t ~obj) l

let query_src ?budget t ~obj src =
  query ?budget t ~obj (Lang.Parser.parse_literal src)

let models kind ?limit ?budget ?(engine = `Pruned) ?stats t ~obj =
  let v = current t in
  let compute () =
    let g = (gop_state ?budget v ~obj).Inc.Reground.gop in
    let r =
      match (kind, engine) with
      | `Stable, `Pruned -> Ordered.Stable.stable_models ?limit ?budget ?stats g
      | `Stable, `Naive ->
        Ordered.Stable.Naive.stable_models ?limit ?budget ?stats g
      | `Stable, `Compiled ->
        Solve.Kernel.stable_models ?limit ?budget ?stats
          ~flat:(flat_of t v.vflats ~obj g)
          g
      | `Af, `Pruned ->
        Ordered.Stable.assumption_free_models ?limit ?budget ?stats g
      | `Af, `Naive ->
        Ordered.Stable.Naive.assumption_free_models ?limit ?budget ?stats g
      | `Af, `Compiled ->
        Solve.Kernel.assumption_free_models ?limit ?budget ?stats
          ~flat:(flat_of t v.vflats ~obj g)
          g
    in
    (r, E_models (B.value r))
  in
  let key = (obj, Models { kind; limit; engine }) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some (E_models ms) ->
    record_hit t;
    B.Complete ms
  | Some _ -> assert false
  | None ->
    record_miss t;
    let r, e = compute () in
    if B.is_complete r then cache_result v key e;
    r

let stable_models ?limit ?budget ?engine ?stats t ~obj =
  models `Stable ?limit ?budget ?engine ?stats t ~obj

let assumption_free_models ?limit ?budget ?engine ?stats t ~obj =
  models `Af ?limit ?budget ?engine ?stats t ~obj

(* ------------------------------------------------------------------ *)
(* Preferred models                                                    *)
(* ------------------------------------------------------------------ *)

let bump metrics name =
  match metrics with Some m -> M.incr m name | None -> ()

(* Compiled-grounding lookup in the pinned view.  A miss is one actual
   compilation+grounding; the observability counters distinguish those
   from cache hits, and the gauges track the size blow-up the per-rule
   component splitting costs. *)
let prefer_gop_of ?budget ?metrics v ~obj =
  match StrMap.find_opt obj (Atomic.get v.vpgops) with
  | Some g ->
    bump metrics "prefer_cache_hits";
    g
  | None ->
    let g = Store.prefer_gop ?budget v.vstore ~obj in
    (match metrics with
    | Some m ->
      M.incr m "prefer_compilations";
      let s = Ordered.Gop.stats g in
      M.gauge_max m "prefer_gop_atoms" s.Ordered.Gop.atoms;
      M.gauge_max m "prefer_gop_rules" s.Ordered.Gop.rules
    | None -> ());
    cas_add v.vpgops ~mem:StrMap.mem ~add:StrMap.add obj g;
    g

let prefer_gop ?budget ?metrics t ~obj =
  let v = current t in
  (match StrMap.find_opt obj (Atomic.get v.vpgops) with
  | Some _ -> record_hit t
  | None -> record_miss t);
  prefer_gop_of ?budget ?metrics v ~obj

let preferred_models ?limit ?budget ?(engine = `Compiled) ?(search = `Pruned)
    ?stats ?metrics t ~obj =
  let v = current t in
  let key = (obj, Preferred { limit; engine; search }) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some (E_models ms) ->
    record_hit t;
    bump metrics "prefer_cache_hits";
    B.Complete ms
  | Some _ -> assert false
  | None ->
    record_miss t;
    let r =
      match engine with
      | `Compiled -> (
        let g = prefer_gop_of ?budget ?metrics v ~obj in
        match search with
        | `Pruned -> Ordered.Stable.stable_models ?limit ?budget ?stats g
        | `Naive -> Ordered.Stable.Naive.stable_models ?limit ?budget ?stats g
        | `Compiled ->
          Solve.Kernel.stable_models ?limit ?budget ?stats
            ~flat:(flat_of t v.vpflats ~obj g)
            g)
      | `Naive ->
        Store.preferred_models ?limit ?budget ~engine:`Naive ?stats v.vstore
          ~obj
    in
    if B.is_complete r then cache_result v key (E_models (B.value r));
    r

let explain t ~obj l =
  match
    lookup t ~obj (Explained (Logic.Literal.to_string l))
      ~compute:(fun v ->
        E_explain
          (Ordered.Explain.explain (gop_state v ~obj).Inc.Reground.gop l))
      ~cache:(fun _ -> true)
  with
  | E_explain e -> e
  | _ -> assert false
