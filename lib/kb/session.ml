(* Memoizing sessions over a Store: structural-fingerprint keyed result
   cache, flushed by the mutating operations.  See session.mli for the
   contract. *)

module B = Ordered.Budget

type op =
  | Least
  | Models of {
      kind : [ `Stable | `Af ];
      limit : int option;
      engine : [ `Pruned | `Naive ];
    }
  | Explained of string  (* printed literal *)

type entry =
  | E_interp of Logic.Interp.t
  | E_models of Logic.Interp.t list
  | E_explain of Ordered.Explain.t

type counters = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;
}

type t = {
  store : Store.t;
  results : (string * string * op, entry) Hashtbl.t;  (* fp, obj, op *)
  gops : (string * string, Ordered.Gop.t) Hashtbl.t;  (* fp, obj *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable on_mutation : (Store.mutation -> unit) option;
}

let of_store store =
  { store;
    results = Hashtbl.create 64;
    gops = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    invalidations = 0;
    on_mutation = None
  }

let create () = of_store (Store.create ())

let store t = t.store
let on_mutation t f = t.on_mutation <- Some f

let counters t =
  { hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.results
  }

(* The structural fingerprint: every object's name, parents and rules in
   definition order.  '\x00'/'\x01' separators keep distinct structures
   from serialising to the same string. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      List.iter
        (fun p ->
          Buffer.add_string buf p;
          Buffer.add_char buf '\x01')
        (Store.parents t.store name);
      Buffer.add_char buf '\x00';
      List.iter
        (fun r ->
          Buffer.add_string buf (Logic.Rule.to_string r);
          Buffer.add_char buf '\x01')
        (Store.rules t.store name);
      Buffer.add_char buf '\x00')
    (Store.objects t.store);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let flush t =
  Hashtbl.reset t.results;
  Hashtbl.reset t.gops;
  t.invalidations <- t.invalidations + 1

(* Run a mutating store operation; notify the observer (the write-ahead
   log, when persistence is wired) and flush only if it succeeded — a
   raising [define] etc. leaves the KB, the log and the cache unchanged.
   The observer runs {e before} the flush, so a logged mutation is
   durable before any cache state reflects it. *)
let mutating t m f =
  let r = f t.store in
  (match t.on_mutation with Some notify -> notify m | None -> ());
  flush t;
  r

let define t ?(isa = []) name rules =
  mutating t
    (Store.Define { name; isa; rules })
    (fun s -> Store.define s ~isa name rules)

let define_src t ?isa name src =
  define t ?isa name (Lang.Parser.parse_rules src)

let load t src = mutating t (Store.Load { src }) (fun s -> Store.load s src)

let add_rule t ~obj r =
  mutating t (Store.Add_rule { obj; rule = r }) (fun s ->
      Store.add_rule s ~obj r)

let add_rule_src t ~obj src = add_rule t ~obj (Lang.Parser.parse_rule src)
let add_fact t ~obj l = add_rule t ~obj (Logic.Rule.fact l)

let remove_rule t ~obj r =
  let removed = Store.remove_rule t.store ~obj r in
  if removed then begin
    (match t.on_mutation with
    | Some notify -> notify (Store.Remove_rule { obj; rule = r })
    | None -> ());
    flush t
  end;
  removed

let new_version t ?rules name =
  mutating t
    (Store.New_version { name; rules })
    (fun s -> Store.new_version s ?rules name)

(* Replication replay: apply a shipped mutation through the same
   observer-then-flush path the named operations use, so the replica's
   own WAL and cache stay in lockstep with its store. *)
let apply t m = mutating t m (fun s -> Store.apply s m)

let invalidate t = flush t

(* ------------------------------------------------------------------ *)
(* Read-only views                                                     *)
(* ------------------------------------------------------------------ *)

let objects t = Store.objects t.store
let parents t name = Store.parents t.store name
let rules t name = Store.rules t.store name
let latest_version t name = Store.latest_version t.store name
let versions t name = Store.versions t.store name

(* ------------------------------------------------------------------ *)
(* Memoized queries                                                    *)
(* ------------------------------------------------------------------ *)

let gop ?budget t ~obj =
  let key = (fingerprint t, obj) in
  match Hashtbl.find_opt t.gops key with
  | Some g ->
    t.hits <- t.hits + 1;
    g
  | None ->
    t.misses <- t.misses + 1;
    let g = Store.gop ?budget t.store ~obj in
    Hashtbl.replace t.gops key g;
    g

(* Look up (obj, op); on a miss run [compute], store the entry only when
   [cache] says the result is complete. *)
let lookup t ~obj op ~compute ~cache =
  let key = (fingerprint t, obj, op) in
  match Hashtbl.find_opt t.results key with
  | Some e ->
    t.hits <- t.hits + 1;
    e
  | None ->
    t.misses <- t.misses + 1;
    let e = compute () in
    if cache e then Hashtbl.replace t.results key e;
    e

let least_model ?budget t ~obj =
  match
    lookup t ~obj Least
      ~compute:(fun () -> E_interp (Store.least_model ?budget t.store ~obj))
      ~cache:(fun _ -> true)
  with
  | E_interp i -> i
  | _ -> assert false

let query ?budget t ~obj l =
  if not (Logic.Literal.is_ground l) then
    invalid_arg "Kb.Session.query: literal must be ground";
  Logic.Interp.value_lit (least_model ?budget t ~obj) l

let query_src ?budget t ~obj src =
  query ?budget t ~obj (Lang.Parser.parse_literal src)

let models kind ?limit ?budget ?(engine = `Pruned) ?stats t ~obj =
  let compute () =
    let r =
      match kind with
      | `Stable -> Store.stable_models ?limit ?budget ~engine ?stats t.store ~obj
      | `Af ->
        Store.assumption_free_models ?limit ?budget ~engine ?stats t.store ~obj
    in
    (r, E_models (B.value r))
  in
  let op = Models { kind; limit; engine } in
  let key = (fingerprint t, obj, op) in
  match Hashtbl.find_opt t.results key with
  | Some (E_models ms) ->
    t.hits <- t.hits + 1;
    B.Complete ms
  | Some _ -> assert false
  | None ->
    t.misses <- t.misses + 1;
    let r, e = compute () in
    if B.is_complete r then Hashtbl.replace t.results key e;
    r

let stable_models ?limit ?budget ?engine ?stats t ~obj =
  models `Stable ?limit ?budget ?engine ?stats t ~obj

let assumption_free_models ?limit ?budget ?engine ?stats t ~obj =
  models `Af ?limit ?budget ?engine ?stats t ~obj

let explain t ~obj l =
  match
    lookup t ~obj (Explained (Logic.Literal.to_string l))
      ~compute:(fun () -> E_explain (Store.explain t.store ~obj l))
      ~cache:(fun _ -> true)
  with
  | E_explain e -> e
  | _ -> assert false
