(* Memoizing sessions over a Store, with lock-free snapshot reads: the
   master store is mutated under a write lock, and every successful
   mutation publishes an immutable [view] — (version, fingerprint, store
   copy, caches) — through one atomic reference.  Readers pin the
   current view with a single [Atomic.get] and never take a lock.  See
   session.mli for the contract. *)

module B = Ordered.Budget

type op =
  | Least
  | Models of {
      kind : [ `Stable | `Af ];
      limit : int option;
      engine : [ `Pruned | `Naive | `Compiled ];
    }
  | Preferred of {
      limit : int option;
      engine : [ `Compiled | `Naive ];
      search : [ `Pruned | `Naive | `Compiled ];
    }
  | Explained of string  (* printed literal *)

type entry =
  | E_interp of Logic.Interp.t
  | E_models of Logic.Interp.t list
  | E_explain of Ordered.Explain.t

type counters = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;
}

module Key = struct
  type t = string * op  (* obj, op *)

  let compare = Stdlib.compare
end

module KeyMap = Map.Make (Key)
module StrMap = Map.Make (String)

(* One published KB version.  [vstore] is a private copy nothing ever
   mutates, so any number of readers may ground and solve against it
   concurrently; the result caches are immutable maps swapped by CAS
   (a racing insert retries on the fresh map, a duplicate insert is
   dropped — either way readers only ever see complete maps). *)
type view = {
  version : int;
  fingerprint : string;
  vstore : Store.t;
  results : entry KeyMap.t Atomic.t;
  vgops : Ordered.Gop.t StrMap.t Atomic.t;
  vpgops : Ordered.Gop.t StrMap.t Atomic.t;
      (** compiled preference groundings, keyed like [vgops] *)
}

type t = {
  master : Store.t;  (* the one mutable store; guarded by [write_lock] *)
  write_lock : Mutex.t;
  current : view Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  mutable on_mutation : (Store.mutation -> unit) option;
}

(* The structural fingerprint: every object's name, parents and rules in
   definition order.  '\x00'/'\x01' separators keep distinct structures
   from serialising to the same string.  Computed once per publish, not
   per lookup. *)
let fingerprint_of_store store =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      List.iter
        (fun p ->
          Buffer.add_string buf p;
          Buffer.add_char buf '\x01')
        (Store.parents store name);
      Buffer.add_char buf '\x00';
      List.iter
        (fun r ->
          Buffer.add_string buf (Logic.Rule.to_string r);
          Buffer.add_char buf '\x01')
        (Store.rules store name);
      Buffer.add_char buf '\x00')
    (Store.objects store);
  (* the preference order is part of the structure: two KBs with the same
     rules but different preferences answer differently *)
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf a;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf b;
      Buffer.add_char buf '\x00')
    (Store.preferences store);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let view_of ~version store =
  { version;
    fingerprint = fingerprint_of_store store;
    vstore = Store.copy store;
    results = Atomic.make KeyMap.empty;
    vgops = Atomic.make StrMap.empty;
    vpgops = Atomic.make StrMap.empty
  }

let of_store store =
  { master = store;
    write_lock = Mutex.create ();
    current = Atomic.make (view_of ~version:0 store);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    on_mutation = None
  }

let create () = of_store (Store.create ())

let store t = t.master
let on_mutation t f = t.on_mutation <- Some f
let current t = Atomic.get t.current
let version t = (current t).version
let fingerprint t = (current t).fingerprint

let counters t =
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    entries = KeyMap.cardinal (Atomic.get (current t).results)
  }

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_lock) f

(* Publish the master's state as the next immutable version.  Caller
   holds [write_lock], so version numbers are gapless and the swapped
   view is never older than a concurrent publisher's. *)
let flush_locked t =
  Atomic.set t.current (view_of ~version:((current t).version + 1) t.master);
  ignore (Atomic.fetch_and_add t.invalidations 1 : int)

(* Run a mutating store operation; notify the observer (the write-ahead
   log, when persistence is wired) and publish only if it succeeded — a
   raising [define] etc. leaves the KB, the log and the published view
   unchanged.  The observer runs {e before} the publish, so a logged
   mutation is durable before any reader can observe it. *)
let mutating t m f =
  locked t (fun () ->
      let r = f t.master in
      (match t.on_mutation with Some notify -> notify m | None -> ());
      flush_locked t;
      r)

let define t ?(isa = []) name rules =
  mutating t
    (Store.Define { name; isa; rules })
    (fun s -> Store.define s ~isa name rules)

let define_src t ?isa name src =
  define t ?isa name (Lang.Parser.parse_rules src)

let load t src = mutating t (Store.Load { src }) (fun s -> Store.load s src)

let add_rule t ~obj r =
  mutating t (Store.Add_rule { obj; rule = r }) (fun s ->
      Store.add_rule s ~obj r)

let add_rule_src t ~obj src = add_rule t ~obj (Lang.Parser.parse_rule src)
let add_fact t ~obj l = add_rule t ~obj (Logic.Rule.fact l)

let remove_rule t ~obj r =
  locked t (fun () ->
      let removed = Store.remove_rule t.master ~obj r in
      if removed then begin
        (match t.on_mutation with
        | Some notify -> notify (Store.Remove_rule { obj; rule = r })
        | None -> ());
        flush_locked t
      end;
      removed)

let new_version t ?rules name =
  mutating t
    (Store.New_version { name; rules })
    (fun s -> Store.new_version s ?rules name)

let set_preference t ~rule ~over =
  mutating t
    (Store.Set_preference { rule; over })
    (fun s -> Store.set_preference s ~rule ~over)

(* like [remove_rule]: only a pair that was actually present is logged
   and published *)
let clear_preference t ~rule ~over =
  locked t (fun () ->
      let removed = Store.clear_preference t.master ~rule ~over in
      if removed then begin
        (match t.on_mutation with
        | Some notify -> notify (Store.Clear_preference { rule; over })
        | None -> ());
        flush_locked t
      end;
      removed)

(* Replication replay: apply a shipped mutation through the same
   observer-then-publish path the named operations use, so the replica's
   own WAL and published view stay in lockstep with its store. *)
let apply t m = mutating t m (fun s -> Store.apply s m)

(* A whole shipped batch under one lock acquisition and one publish —
   the per-record observer calls (WAL appends) still happen in order,
   so durability ordering is exactly as if [apply] had run per record,
   but the store is copied once per batch instead of once per record.
   A record that raises publishes the prefix that did apply (each of
   those records is already in the observer's log). *)
let apply_batch t ms =
  match ms with
  | [] -> ()
  | ms ->
    locked t (fun () ->
        let applied = ref 0 in
        match
          List.iter
            (fun m ->
              Store.apply t.master m;
              (match t.on_mutation with
              | Some notify -> notify m
              | None -> ());
              incr applied)
            ms
        with
        | () -> flush_locked t
        | exception e ->
          if !applied > 0 then flush_locked t;
          raise e)

let invalidate t = locked t (fun () -> flush_locked t)

(* ------------------------------------------------------------------ *)
(* Read-only views                                                     *)
(* ------------------------------------------------------------------ *)

let objects t = Store.objects (current t).vstore
let parents t name = Store.parents (current t).vstore name
let rules t name = Store.rules (current t).vstore name
let latest_version t name = Store.latest_version (current t).vstore name
let versions t name = Store.versions (current t).vstore name
let preferences t = Store.preferences (current t).vstore

(* ------------------------------------------------------------------ *)
(* Memoized queries                                                    *)
(* ------------------------------------------------------------------ *)

let record_hit t = ignore (Atomic.fetch_and_add t.hits 1 : int)
let record_miss t = ignore (Atomic.fetch_and_add t.misses 1 : int)

(* Lock-free insert: retry the CAS against the freshest map; drop the
   duplicate if somebody else cached the same key first.  The maps are
   persistent, so a reader holding an older map still sees a complete,
   valid index. *)
let rec cas_add cell ~mem ~add key v =
  let cur = Atomic.get cell in
  if mem key cur then ()
  else if not (Atomic.compare_and_set cell cur (add key v cur)) then
    cas_add cell ~mem ~add key v

let cache_result v key e =
  cas_add v.results ~mem:KeyMap.mem ~add:KeyMap.add key e

let gop ?budget t ~obj =
  let v = current t in
  match StrMap.find_opt obj (Atomic.get v.vgops) with
  | Some g ->
    record_hit t;
    g
  | None ->
    record_miss t;
    let g = Store.gop ?budget v.vstore ~obj in
    cas_add v.vgops ~mem:StrMap.mem ~add:StrMap.add obj g;
    g

(* Look up (obj, op) in the pinned view; on a miss run [compute] against
   that same view, store the entry only when [cache] says the result is
   complete. *)
let lookup t ~obj op ~compute ~cache =
  let v = current t in
  let key = (obj, op) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some e ->
    record_hit t;
    e
  | None ->
    record_miss t;
    let e = compute v in
    if cache e then cache_result v key e;
    e

let least_model ?budget t ~obj =
  match
    lookup t ~obj Least
      ~compute:(fun v -> E_interp (Store.least_model ?budget v.vstore ~obj))
      ~cache:(fun _ -> true)
  with
  | E_interp i -> i
  | _ -> assert false

let query ?budget t ~obj l =
  if not (Logic.Literal.is_ground l) then
    invalid_arg "Kb.Session.query: literal must be ground";
  Logic.Interp.value_lit (least_model ?budget t ~obj) l

let query_src ?budget t ~obj src =
  query ?budget t ~obj (Lang.Parser.parse_literal src)

let models kind ?limit ?budget ?(engine = `Pruned) ?stats t ~obj =
  let v = current t in
  let compute () =
    let r =
      match kind with
      | `Stable ->
        Store.stable_models ?limit ?budget ~engine ?stats v.vstore ~obj
      | `Af ->
        Store.assumption_free_models ?limit ?budget ~engine ?stats v.vstore
          ~obj
    in
    (r, E_models (B.value r))
  in
  let key = (obj, Models { kind; limit; engine }) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some (E_models ms) ->
    record_hit t;
    B.Complete ms
  | Some _ -> assert false
  | None ->
    record_miss t;
    let r, e = compute () in
    if B.is_complete r then cache_result v key e;
    r

let stable_models ?limit ?budget ?engine ?stats t ~obj =
  models `Stable ?limit ?budget ?engine ?stats t ~obj

let assumption_free_models ?limit ?budget ?engine ?stats t ~obj =
  models `Af ?limit ?budget ?engine ?stats t ~obj

(* ------------------------------------------------------------------ *)
(* Preferred models                                                    *)
(* ------------------------------------------------------------------ *)

module M = Governor.Metrics

let bump metrics name =
  match metrics with Some m -> M.incr m name | None -> ()

(* Compiled-grounding lookup in the pinned view.  A miss is one actual
   compilation+grounding; the observability counters distinguish those
   from cache hits, and the gauges track the size blow-up the per-rule
   component splitting costs. *)
let prefer_gop_of ?budget ?metrics v ~obj =
  match StrMap.find_opt obj (Atomic.get v.vpgops) with
  | Some g ->
    bump metrics "prefer_cache_hits";
    g
  | None ->
    let g = Store.prefer_gop ?budget v.vstore ~obj in
    (match metrics with
    | Some m ->
      M.incr m "prefer_compilations";
      let s = Ordered.Gop.stats g in
      M.gauge_max m "prefer_gop_atoms" s.Ordered.Gop.atoms;
      M.gauge_max m "prefer_gop_rules" s.Ordered.Gop.rules
    | None -> ());
    cas_add v.vpgops ~mem:StrMap.mem ~add:StrMap.add obj g;
    g

let prefer_gop ?budget ?metrics t ~obj =
  let v = current t in
  (match StrMap.find_opt obj (Atomic.get v.vpgops) with
  | Some _ -> record_hit t
  | None -> record_miss t);
  prefer_gop_of ?budget ?metrics v ~obj

let preferred_models ?limit ?budget ?(engine = `Compiled) ?(search = `Pruned)
    ?stats ?metrics t ~obj =
  let v = current t in
  let key = (obj, Preferred { limit; engine; search }) in
  match KeyMap.find_opt key (Atomic.get v.results) with
  | Some (E_models ms) ->
    record_hit t;
    bump metrics "prefer_cache_hits";
    B.Complete ms
  | Some _ -> assert false
  | None ->
    record_miss t;
    let r =
      match engine with
      | `Compiled -> (
        let g = prefer_gop_of ?budget ?metrics v ~obj in
        match search with
        | `Pruned -> Ordered.Stable.stable_models ?limit ?budget ?stats g
        | `Naive -> Ordered.Stable.Naive.stable_models ?limit ?budget ?stats g
        | `Compiled -> Solve.Kernel.stable_models ?limit ?budget ?stats g)
      | `Naive ->
        Store.preferred_models ?limit ?budget ~engine:`Naive ?stats v.vstore
          ~obj
    in
    if B.is_complete r then cache_result v key (E_models (B.value r));
    r

let explain t ~obj l =
  match
    lookup t ~obj (Explained (Logic.Literal.to_string l))
      ~compute:(fun v -> E_explain (Store.explain v.vstore ~obj l))
      ~cache:(fun _ -> true)
  with
  | E_explain e -> e
  | _ -> assert false
