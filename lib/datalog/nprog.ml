open Logic

type rule = { head : int; pos : int array; neg : int array }

type t = {
  atoms : Atom.t array;
  ids : int Atom.Tbl.t;
  rules : rule array;
  by_pos : int list array;
  by_neg : int list array;
  by_head : int list array;
}

let of_rules src =
  let ids = Atom.Tbl.create 256 in
  let atoms = ref [] in
  let n = ref 0 in
  let intern a =
    match Atom.Tbl.find_opt ids a with
    | Some i -> i
    | None ->
      let i = !n in
      Atom.Tbl.add ids a i;
      atoms := a :: !atoms;
      incr n;
      i
  in
  let rules =
    List.map
      (fun (r : Rule.t) ->
        if not (Rule.is_ground r) then
          invalid_arg "Nprog.of_rules: non-ground rule";
        if Literal.is_negative (Rule.head r) then
          invalid_arg "Nprog.of_rules: negative head in a normal program";
        let head = intern (Rule.head r).atom in
        let pos, neg = List.partition Literal.is_positive (Rule.body r) in
        { head;
          pos = Array.of_list (List.map (fun (l : Literal.t) -> intern l.atom) pos);
          neg = Array.of_list (List.map (fun (l : Literal.t) -> intern l.atom) neg)
        })
      src
    |> Array.of_list
  in
  let atoms = Array.of_list (List.rev !atoms) in
  let by_pos = Array.make (Array.length atoms) [] in
  let by_neg = Array.make (Array.length atoms) [] in
  let by_head = Array.make (Array.length atoms) [] in
  Array.iteri
    (fun i r ->
      by_head.(r.head) <- i :: by_head.(r.head);
      Array.iter (fun a -> by_pos.(a) <- i :: by_pos.(a)) r.pos;
      Array.iter (fun a -> by_neg.(a) <- i :: by_neg.(a)) r.neg)
    rules;
  { atoms; ids; rules; by_pos; by_neg; by_head }

let n_atoms p = Array.length p.atoms
let atom_id p a = Atom.Tbl.find_opt p.ids a

let set_of_ids p ids =
  List.fold_left (fun s i -> Atom.Set.add p.atoms.(i) s) Atom.Set.empty ids

let ids_of_mask mask =
  let acc = ref [] in
  for i = Array.length mask - 1 downto 0 do
    if mask.(i) then acc := i :: !acc
  done;
  !acc

let decode_mask p mask = set_of_ids p (ids_of_mask mask)
