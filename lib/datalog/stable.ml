module Budget = Governor.Budget

let is_stable (p : Nprog.t) (s : bool array) =
  let rules = Consequence.reduct p ~assumed_false:(fun a -> not s.(a)) in
  Consequence.lfp_rules p rules = s

let enumerate ?limit ?(budget = Budget.unlimited) ?stats (p : Nprog.t) =
  let stats =
    match stats with Some s -> s | None -> Governor.Counters.create ()
  in
  let wf = Wellfounded.compute ~budget p in
  (* Branch atoms: atoms occurring under NAF and undefined in the
     well-founded model.  Any stable model agrees with the well-founded
     model on defined atoms, and is determined by its restriction to NAF
     atoms (the reduct depends only on those). *)
  let n = Nprog.n_atoms p in
  let branch = ref [] in
  for a = n - 1 downto 0 do
    if
      p.by_neg.(a) <> []
      && (not wf.true_.(a))
      && not wf.false_.(a)
    then branch := a :: !branch
  done;
  let branch = Array.of_list !branch in
  let guess = Array.copy wf.true_ in
  (* guess.(a) for NAF atoms: assumed membership in the candidate set. *)
  let found = ref [] in
  let count = ref 0 in
  let full () =
    match limit with
    | Some l -> !count >= l
    | None -> false
  in
  let check () =
    stats.Governor.Counters.leaves <- stats.Governor.Counters.leaves + 1;
    let rules = Consequence.reduct p ~assumed_false:(fun a -> not guess.(a)) in
    let m = Consequence.lfp_rules p rules in
    (* Consistency: the guess must coincide with the least model on every
       atom the reduct depended on (all NAF atoms). *)
    let consistent =
      Array.for_all (fun a -> m.(a) = guess.(a)) branch
      && Array.for_all
           Fun.id
           (Array.mapi
              (fun a t -> (not t) || not wf.false_.(a))
              m)
    in
    if consistent && is_stable p m then begin
      incr count;
      stats.Governor.Counters.models <- stats.Governor.Counters.models + 1;
      found := m :: !found
    end
  in
  let rec go i =
    Budget.tick budget;
    stats.Governor.Counters.nodes <- stats.Governor.Counters.nodes + 1;
    if not (full ()) then
      if i >= Array.length branch then check ()
      else begin
        let a = branch.(i) in
        guess.(a) <- false;
        go (i + 1);
        guess.(a) <- true;
        go (i + 1);
        guess.(a) <- wf.true_.(a)
      end
  in
  go 0;
  List.rev !found

let models ?limit ?budget ?stats p =
  List.map (Nprog.decode_mask p) (enumerate ?limit ?budget ?stats p)

let first p =
  match enumerate ~limit:1 p with
  | [] -> None
  | m :: _ -> Some (Nprog.decode_mask p m)
