open Logic

let rule_body_lits (p : Nprog.t) (r : Nprog.rule) =
  Array.to_list (Array.map (fun a -> Literal.pos p.atoms.(a)) r.pos)
  @ Array.to_list (Array.map (fun a -> Literal.neg_atom p.atoms.(a)) r.neg)

let is_three_valued_model (p : Nprog.t) (m : Interp.t) =
  Array.for_all
    (fun (r : Nprog.rule) ->
      let hv = Interp.value m p.atoms.(r.head) in
      let bv = Interp.value_conj m (rule_body_lits p r) in
      Interp.compare_value hv bv >= 0)
    p.rules

let positive_version (p : Nprog.t) (m : Interp.t) =
  Array.of_list
    (List.filter_map
       (fun (r : Nprog.rule) ->
         let applicable =
           Array.for_all (fun a -> Interp.value m p.atoms.(a) = Interp.True) r.pos
           && Array.for_all
                (fun a -> Interp.value m p.atoms.(a) = Interp.False)
                r.neg
         in
         let applied = applicable && Interp.value m p.atoms.(r.head) = Interp.True in
         if applied then Some { r with Nprog.neg = [||] } else None)
       (Array.to_list p.rules))

let is_founded (p : Nprog.t) (m : Interp.t) =
  let fix = Consequence.lfp_rules p (positive_version p m) in
  let m_plus =
    Array.mapi (fun i a -> ignore i; Interp.value m a = Interp.True) p.atoms
  in
  fix = m_plus

(* Enumerate all interpretations over the program's atoms: each atom is
   true, false or undefined. *)
let enumerate_interps (p : Nprog.t) f =
  let n = Nprog.n_atoms p in
  let rec go i m = if i >= n then f m
    else begin
      go (i + 1) m;
      go (i + 1) (Interp.set m p.atoms.(i) true);
      go (i + 1) (Interp.set m p.atoms.(i) false)
    end
  in
  go 0 Interp.empty

let founded_models (p : Nprog.t) =
  let acc = ref [] in
  enumerate_interps p (fun m ->
      if is_three_valued_model p m && is_founded p m then acc := m :: !acc);
  List.rev !acc

let maximal_by_subset models =
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
           models))
    models

let stable_models p = maximal_by_subset (founded_models p)

let total_stable_models (p : Nprog.t) =
  Stable.models p
  |> List.map (fun s ->
         Array.fold_left
           (fun m a -> Interp.set m a (Atom.Set.mem a s))
           Interp.empty p.atoms)
