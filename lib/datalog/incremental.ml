open Logic

type rule = { head : Atom.t; body : Atom.t array }

type t = {
  rules : rule array;
  by_body : int list Atom.Tbl.t;  (** rules with the atom in their body *)
  by_head : int list Atom.Tbl.t;
  missing : int array;  (** body atoms not currently derived *)
  fired : bool array;  (** missing = 0 *)
  support : int Atom.Tbl.t;  (** # fired rules with this head *)
  mutable edb : Atom.Set.t;
  mutable derived : Atom.Set.t;  (** edb + atoms with support > 0 *)
}

let convert (r : Rule.t) =
  if not (Rule.is_ground r) then invalid_arg "Incremental.create: non-ground rule";
  if not (Rule.is_positive r) then
    invalid_arg "Incremental.create: only positive rules are supported";
  if Ground.Builtin.is_builtin_literal (Rule.head r) then
    invalid_arg "Incremental.create: builtin head";
  { head = (Rule.head r).Literal.atom;
    body =
      Array.of_list
        (List.map
           (fun (l : Literal.t) -> l.atom)
           (Literal.Set.elements (Rule.body_set r)))
  }

let tbl_add tbl key i =
  match Atom.Tbl.find_opt tbl key with
  | Some l -> Atom.Tbl.replace tbl key (i :: l)
  | None -> Atom.Tbl.add tbl key [ i ]

let tbl_get tbl key = Option.value ~default:[] (Atom.Tbl.find_opt tbl key)

let bump tbl key delta =
  let v = Option.value ~default:0 (Atom.Tbl.find_opt tbl key) + delta in
  assert (v >= 0);
  if v = 0 then Atom.Tbl.remove tbl key else Atom.Tbl.replace tbl key v;
  v

let create_state src =
  let facts, proper = List.partition Rule.is_fact src in
  let rules = Array.of_list (List.map convert proper) in
  let by_body = Atom.Tbl.create 64 in
  let by_head = Atom.Tbl.create 64 in
  Array.iteri
    (fun i r ->
      tbl_add by_head r.head i;
      Array.iter (fun a -> tbl_add by_body a i) r.body)
    rules;
  { rules;
    by_body;
    by_head;
    missing = Array.map (fun r -> Array.length r.body) rules;
    fired = Array.make (Array.length rules) false;
    support = Atom.Tbl.create 64;
    edb = Atom.Set.empty;
    derived = Atom.Set.empty
  }
  |> fun t ->
  (* Source facts become initial EDB atoms, inserted by [create]. *)
  (t, List.map (fun (r : Rule.t) -> (Rule.head r).Literal.atom) facts)

let holds t a = Atom.Set.mem a t.derived
let derived t = t.derived
let edb t = t.edb

(* Propagate newly-derived atoms semi-naively. *)
let propagate t queue =
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    List.iter
      (fun i ->
        t.missing.(i) <- t.missing.(i) - 1;
        if t.missing.(i) = 0 then begin
          t.fired.(i) <- true;
          let h = t.rules.(i).head in
          ignore (bump t.support h 1);
          if not (Atom.Set.mem h t.derived) then begin
            t.derived <- Atom.Set.add h t.derived;
            Queue.add h queue
          end
        end)
      (tbl_get t.by_body a)
  done

let derive t a =
  if not (Atom.Set.mem a t.derived) then begin
    t.derived <- Atom.Set.add a t.derived;
    let q = Queue.create () in
    Queue.add a q;
    propagate t q
  end

let add t a =
  if not (Atom.Set.mem a t.edb) then begin
    t.edb <- Atom.Set.add a t.edb;
    derive t a
  end

let create src =
  let t, initial_facts = create_state src in
  List.iter (add t) initial_facts;
  t

(* DRed deletion: over-delete everything whose derivation may involve the
   removed atoms, then re-derive what still has support. *)
let remove t a =
  if Atom.Set.mem a t.edb then begin
    t.edb <- Atom.Set.remove a t.edb;
    (* Over-deletion: Delta starts at {a} (unless it still has rule
       support independent of a — conservatively over-delete anyway, the
       re-derivation phase brings it back if justified). *)
    let delta = ref Atom.Set.empty in
    let queue = Queue.create () in
    let push x =
      if (not (Atom.Set.mem x !delta)) && Atom.Set.mem x t.derived then begin
        delta := Atom.Set.add x !delta;
        Queue.add x queue
      end
    in
    push a;
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun i ->
          if t.fired.(i) then push t.rules.(i).head)
        (tbl_get t.by_body x)
    done;
    (* Remove the over-deleted atoms (except those still in the EDB) and
       reset the state of every rule that touches them. *)
    let removed = Atom.Set.filter (fun x -> not (Atom.Set.mem x t.edb)) !delta in
    t.derived <- Atom.Set.diff t.derived removed;
    let affected = Hashtbl.create 64 in
    Atom.Set.iter
      (fun x ->
        List.iter (fun i -> Hashtbl.replace affected i ()) (tbl_get t.by_body x);
        List.iter (fun i -> Hashtbl.replace affected i ()) (tbl_get t.by_head x))
      removed;
    Hashtbl.iter
      (fun i () ->
        if t.fired.(i) then begin
          t.fired.(i) <- false;
          ignore (bump t.support t.rules.(i).head (-1))
        end;
        t.missing.(i) <-
          Array.fold_left
            (fun n b -> if Atom.Set.mem b t.derived then n else n + 1)
            0 t.rules.(i).body)
      affected;
    (* Re-derivation: an affected rule whose body survived re-fires; its
       head (and onward consequences) come back. *)
    let q = Queue.create () in
    Hashtbl.iter
      (fun i () ->
        if t.missing.(i) = 0 && not t.fired.(i) then begin
          t.fired.(i) <- true;
          let h = t.rules.(i).head in
          ignore (bump t.support h 1);
          if not (Atom.Set.mem h t.derived) then begin
            t.derived <- Atom.Set.add h t.derived;
            Queue.add h q
          end
        end)
      affected;
    propagate t q
  end

let recompute t =
  let rules =
    Array.to_list t.rules
    |> List.map (fun r ->
           Rule.make (Literal.pos r.head)
             (Array.to_list (Array.map Literal.pos r.body)))
  in
  let facts = List.map (fun a -> Rule.fact (Literal.pos a)) (Atom.Set.elements t.edb) in
  let p = Nprog.of_rules (rules @ facts) in
  Nprog.decode_mask p (Consequence.lfp p)
