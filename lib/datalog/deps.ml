open Logic

type pred = string * int

module PredMap = Map.Make (struct
  type t = pred

  let compare = compare
end)

type t = {
  preds : pred array;
  index : int PredMap.t;
  (* edges.(head) = list of (body pred id, negative?) *)
  edges : (int * bool) list array;
}

let pred_of_atom (a : Atom.t) = (a.pred, Atom.arity a)

let of_rules rules =
  let preds = ref PredMap.empty in
  let count = ref 0 in
  let intern p =
    match PredMap.find_opt p !preds with
    | Some i -> i
    | None ->
      let i = !count in
      preds := PredMap.add p i !preds;
      incr count;
      i
  in
  (* Intern all predicates first (including body-only ones). *)
  List.iter
    (fun (r : Rule.t) ->
      let visit (l : Literal.t) =
        if not (Ground.Builtin.is_builtin_atom l.atom) then
          ignore (intern (pred_of_atom l.atom))
      in
      visit (Rule.head r);
      List.iter visit (Rule.body r))
    rules;
  let edges = Array.make !count [] in
  List.iter
    (fun (r : Rule.t) ->
      let h = Rule.head r in
      if not (Ground.Builtin.is_builtin_atom h.Literal.atom) then begin
        let hid = intern (pred_of_atom h.Literal.atom) in
        List.iter
          (fun (l : Literal.t) ->
            if not (Ground.Builtin.is_builtin_atom l.atom) then
              let bid = intern (pred_of_atom l.atom) in
              let negative = Literal.is_negative l in
              edges.(hid) <- (bid, negative) :: edges.(hid))
          (Rule.body r)
      end)
    rules;
  let arr = Array.make !count ("", 0) in
  PredMap.iter (fun p i -> arr.(i) <- p) !preds;
  { preds = arr; index = !preds; edges }

let predicates g = Array.to_list g.preds

let depends_on g p =
  match PredMap.find_opt p g.index with
  | None -> []
  | Some i ->
    (* Merge duplicate edges, a negative occurrence dominating. *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (b, neg) ->
        let prev = Option.value ~default:false (Hashtbl.find_opt tbl b) in
        Hashtbl.replace tbl b (prev || neg))
      g.edges.(i);
    Hashtbl.fold (fun b neg acc -> (g.preds.(b), neg) :: acc) tbl []
    |> List.sort compare

(* Tarjan's strongly-connected-components algorithm. *)
let sccs_ids g =
  let n = Array.length g.preds in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      g.edges.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  (* Tarjan completes sink components (pure dependencies) first; returning
     them in completion order puts every component after the components it
     depends on. *)
  List.rev !out

let sccs g = List.map (List.map (fun i -> g.preds.(i))) (sccs_ids g)

let stratification g =
  let comps = sccs_ids g in
  let n = Array.length g.preds in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci comp -> List.iter (fun v -> comp_of.(v) <- ci) comp) comps;
  (* Reject a negative edge inside a component. *)
  let ok = ref true in
  Array.iteri
    (fun v es ->
      List.iter
        (fun (w, neg) -> if neg && comp_of.(v) = comp_of.(w) then ok := false)
        es)
    g.edges;
  if not !ok then None
  else begin
    (* Stratum of a component: computed over components in dependency
       order.  comps is ordered dependencies-first. *)
    let ncomp = List.length comps in
    let stratum = Array.make ncomp 0 in
    List.iteri
      (fun ci comp ->
        List.iter
          (fun v ->
            List.iter
              (fun (w, neg) ->
                let cw = comp_of.(w) in
                if cw <> ci then
                  stratum.(ci) <-
                    max stratum.(ci) (stratum.(cw) + if neg then 1 else 0)
                else if neg then assert false)
              g.edges.(v))
          comp)
      comps;
    Some
      (Array.to_list
         (Array.mapi (fun v p -> (p, stratum.(comp_of.(v)))) g.preds)
       |> List.sort compare)
  end

let is_stratified g = Option.is_some (stratification g)
