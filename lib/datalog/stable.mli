(** Classical (total) stable models [GL1].

    A set of atoms [S] is a stable model of a normal program [P] iff [S]
    equals the least model of the Gelfond–Lifschitz reduct [P^S].  The
    solver seeds the search with the well-founded model (every stable model
    contains the well-founded true atoms and avoids the well-founded false
    atoms) and branches on the remaining atoms that occur under NAF. *)

val is_stable : Nprog.t -> bool array -> bool
(** Check the Gelfond–Lifschitz fixpoint condition for a candidate. *)

val enumerate :
  ?limit:int -> ?budget:Governor.Budget.t -> ?stats:Governor.Counters.t ->
  Nprog.t -> bool array list
(** All stable models (at most [limit] if given), each as an atom mask, in
    {e search order}: first discovered first, branching on undefined
    NAF-atoms in ascending atom order with false before true, so
    [?limit:k] returns the first [k] of the unlimited enumeration (the
    same order contract as the ordered-program enumerators in
    [Ordered.Stable]).  Exponential in the number of undefined NAF-atoms;
    intended for programs whose ground residue after well-founded
    simplification is small.  [budget] is ticked per search node;
    exhaustion raises [Governor.Budget.Exhausted].  [?stats] accumulates
    search nodes, leaf checks and accepted models. *)

val models :
  ?limit:int -> ?budget:Governor.Budget.t -> ?stats:Governor.Counters.t ->
  Nprog.t -> Logic.Atom.Set.t list
(** {!enumerate}, decoded to atom sets. *)

val first : Nprog.t -> Logic.Atom.Set.t option
(** The first stable model found, if any. *)
