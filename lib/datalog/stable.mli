(** Classical (total) stable models [GL1].

    A set of atoms [S] is a stable model of a normal program [P] iff [S]
    equals the least model of the Gelfond–Lifschitz reduct [P^S].  The
    solver seeds the search with the well-founded model (every stable model
    contains the well-founded true atoms and avoids the well-founded false
    atoms) and branches on the remaining atoms that occur under NAF. *)

val is_stable : Nprog.t -> bool array -> bool
(** Check the Gelfond–Lifschitz fixpoint condition for a candidate. *)

val enumerate :
  ?limit:int -> ?budget:Governor.Budget.t -> Nprog.t -> bool array list
(** All stable models (at most [limit] if given), each as an atom mask, in
    a deterministic order.  Exponential in the number of undefined
    NAF-atoms; intended for programs whose ground residue after
    well-founded simplification is small.  [budget] is ticked per search
    node; exhaustion raises [Governor.Budget.Exhausted]. *)

val models :
  ?limit:int -> ?budget:Governor.Budget.t -> Nprog.t -> Logic.Atom.Set.t list
(** {!enumerate}, decoded to atom sets. *)

val first : Nprog.t -> Logic.Atom.Set.t option
(** The first stable model found, if any. *)
