(** Predicate dependency graph, strongly connected components and
    stratification [ABW] for (non-ground) seminegative programs.

    There is an edge [p -> q] when a rule with head predicate [p] has [q]
    in its body; the edge is {e negative} when some such occurrence of [q]
    is under negation.  The program is stratified iff no cycle of the graph
    contains a negative edge. *)

type pred = string * int

type t

val of_rules : Logic.Rule.t list -> t
(** Build the dependency graph (builtin predicates are ignored). *)

val predicates : t -> pred list

val depends_on : t -> pred -> (pred * bool) list
(** Body predicates of rules defining the given head predicate, each tagged
    with [true] when some occurrence is negative. *)

val sccs : t -> pred list list
(** Strongly connected components in reverse topological order (a component
    appears after the components it depends on). *)

val stratification : t -> (pred * int) list option
(** [Some strata] maps every predicate to a stratum (0-based; a predicate's
    stratum is at least that of the predicates it depends on, strictly
    greater across negative edges); [None] if the program is not
    stratified. *)

val is_stratified : t -> bool
