open Logic

let eval_with_strata (p : Nprog.t) (stratum_of : Atom.t -> int) =
  let n = Nprog.n_atoms p in
  let max_stratum = ref 0 in
  Array.iter
    (fun a -> max_stratum := max !max_stratum (stratum_of a))
    p.atoms;
  let truth = Array.make n false in
  let decided = Array.make n false in
  for s = 0 to !max_stratum do
    (* Rules whose head lives in stratum [s]; NAF atoms of such rules are in
       strictly lower strata, hence already decided. *)
    let rules =
      Array.of_list
        (Array.to_list p.rules
        |> List.filter_map (fun (r : Nprog.rule) ->
               if stratum_of p.atoms.(r.head) <> s then None
               else if
                 Array.exists (fun a -> decided.(a) && truth.(a)) r.neg
               then None
               else Some { r with Nprog.neg = [||] }))
    in
    (* Seed the fixpoint with everything derived in lower strata. *)
    let seeded =
      Array.append rules
        (Array.of_list
           (List.filter_map
              (fun a ->
                if truth.(a) then Some { Nprog.head = a; pos = [||]; neg = [||] }
                else None)
              (List.init n Fun.id)))
    in
    let result = Consequence.lfp_rules p seeded in
    Array.iteri (fun a b -> if b then truth.(a) <- true) result;
    Array.iteri
      (fun a _ -> if stratum_of p.atoms.(a) <= s then decided.(a) <- true)
      p.atoms
  done;
  Nprog.decode_mask p truth

let model (p : Nprog.t) src =
  let g = Deps.of_rules src in
  match Deps.stratification g with
  | None -> None
  | Some strata ->
    let stratum_of (a : Atom.t) =
      match List.assoc_opt (a.pred, Atom.arity a) strata with
      | Some s -> s
      | None -> 0
    in
    Some (eval_with_strata p stratum_of)

let model_of_ground (p : Nprog.t) =
  (* Treat each ground atom's predicate via a ground source program. *)
  let src =
    Array.to_list p.rules
    |> List.map (fun (r : Nprog.rule) ->
           Rule.make
             (Literal.pos p.atoms.(r.head))
             (Array.to_list (Array.map (fun a -> Literal.pos p.atoms.(a)) r.pos)
             @ Array.to_list
                 (Array.map (fun a -> Literal.neg_atom p.atoms.(a)) r.neg)))
  in
  model p src
