(** Magic-set rewriting for positive datalog queries.

    Given a positive program and a query atom with some arguments bound
    (ground), the transformation specialises the program so that bottom-up
    evaluation only derives tuples relevant to the query — the classical
    deductive-database counterpart of the ordered [Ordered.Prove]
    relevance closure.

    The rewriting is the textbook one with a left-to-right sideways
    information passing strategy: predicates are {e adorned} with a
    bound/free pattern per argument ([anc_bf]), each adorned IDB predicate
    gets a [magic_] guard relation holding the bindings it will be called
    with, rules are guarded by the magic of their head, and the query's
    bound arguments seed the magic relation.

    Only {e positive} rules are supported (no negative literals); builtin
    comparisons may appear in bodies and bind nothing.  Predicates without
    rules are EDB and are left untouched. *)

val transform :
  Logic.Rule.t list -> query:Logic.Atom.t -> Logic.Rule.t list * Logic.Atom.t
(** [transform rules ~query] returns the rewritten program (adorned rules,
    magic rules, and the magic seed fact for the query's bound arguments)
    together with the adorned query atom to evaluate against it.  Raises
    [Invalid_argument] on negative literals or a builtin query. *)

val answers : Logic.Rule.t list -> query:Logic.Atom.t -> Logic.Atom.Set.t
(** Evaluate the rewritten program bottom-up (relevance grounding + least
    fixpoint) and return the query instances that hold, with the original
    predicate name restored. *)
