open Nprog
module Budget = Governor.Budget

let step (p : Nprog.t) (input : bool array) =
  let out = Array.make (n_atoms p) false in
  Array.iter
    (fun r ->
      if
        r.neg = [||]
        && Array.for_all (fun a -> input.(a)) r.pos
      then out.(r.head) <- true)
    p.rules;
  out

let lfp_rules ?(budget = Budget.unlimited) (p : Nprog.t) (rules : rule array) =
  let n = n_atoms p in
  let truth = Array.make n false in
  let missing = Array.map (fun r -> Array.length r.pos) rules in
  (* index: atom -> rules of [rules] with that atom in pos *)
  let by_pos = Array.make n [] in
  Array.iteri
    (fun i r -> Array.iter (fun a -> by_pos.(a) <- i :: by_pos.(a)) r.pos)
    rules;
  let queue = Queue.create () in
  let derive a =
    if not truth.(a) then begin
      truth.(a) <- true;
      Queue.add a queue
    end
  in
  Array.iteri
    (fun i r -> if missing.(i) = 0 && r.neg = [||] then derive r.head)
    rules;
  while not (Queue.is_empty queue) do
    Budget.tick budget;
    let a = Queue.pop queue in
    List.iter
      (fun i ->
        missing.(i) <- missing.(i) - 1;
        if missing.(i) = 0 && rules.(i).neg = [||] then derive rules.(i).head)
      by_pos.(a)
  done;
  truth

let lfp ?budget (p : Nprog.t) = lfp_rules ?budget p p.rules

let lfp_naive ?(budget = Budget.unlimited) (p : Nprog.t) =
  let n = n_atoms p in
  let cur = ref (Array.make n false) in
  let continue_ = ref true in
  while !continue_ do
    Budget.check budget;
    let next = step p !cur in
    (* [T_P] is inflationary from the empty set on positive programs, but
       [step] recomputes from scratch; union keeps the iteration monotone. *)
    Array.iteri (fun i b -> if b then next.(i) <- true) !cur;
    if next = !cur then continue_ := false else cur := next
  done;
  !cur

let reduct (p : Nprog.t) ~assumed_false =
  Array.of_list
    (Array.fold_right
       (fun r acc ->
         if Array.for_all assumed_false r.neg then
           { r with neg = [||] } :: acc
         else acc)
       p.rules [])
