open Logic

type t = {
  source : Rule.t list;
  ground : Rule.t list;
  nprog : Nprog.t;
  mutable wf : Interp.t option;  (** computed on demand, then cached *)
}

let load ?budget ?depth ?(grounder = `Relevant) source =
  let ground =
    match grounder with
    | `Relevant ->
      (Ground.Grounder.relevant ?budget ~naf:true ?depth source).rules
    | `Naive -> (Ground.Grounder.naive ?budget ?depth source).rules
  in
  { source; ground; nprog = Nprog.of_rules ground; wf = None }

let load_src ?budget ?depth ?grounder src =
  load ?budget ?depth ?grounder (Lang.Parser.parse_rules src)

let nprog t = t.nprog
let ground_rules t = t.ground

let minimal_model t = Nprog.decode_mask t.nprog (Consequence.lfp t.nprog)

let well_founded ?budget t =
  match t.wf with
  | Some m -> m
  | None ->
    let m = Wellfounded.model ?budget t.nprog in
    t.wf <- Some m;
    m

let stable_models ?limit ?budget t = Stable.models ?limit ?budget t.nprog
let perfect_model t = Perfect.model t.nprog t.source
let is_stratified t = Deps.is_stratified (Deps.of_rules t.source)

let holds ?budget t (l : Literal.t) =
  if not (Literal.is_ground l) then
    invalid_arg "Engine.holds: literal must be ground";
  Interp.value_lit (well_founded ?budget t) l
