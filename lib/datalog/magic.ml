open Logic

(* An adornment is one [b]ound / [f]ree flag per argument position. *)
type adornment = bool array (* true = bound *)

let adorned_name pred (a : adornment) =
  pred ^ "__"
  ^ String.init (Array.length a) (fun i -> if a.(i) then 'b' else 'f')

let magic_name pred a = "magic_" ^ adorned_name pred a

let check_positive rules =
  List.iter
    (fun (r : Rule.t) ->
      if
        Literal.is_negative (Rule.head r)
        || List.exists
             (fun (l : Literal.t) ->
               Literal.is_negative l
               && not (Ground.Builtin.is_builtin_literal l))
             (Rule.body r)
      then
        invalid_arg
          "Magic.transform: only positive rules are supported")
    rules

(* Predicates defined by at least one proper rule are IDB. *)
let idb_preds rules =
  List.fold_left
    (fun acc (r : Rule.t) ->
      if Rule.is_fact r then acc
      else
        let h = (Rule.head r).Literal.atom in
        (h.Atom.pred, Atom.arity h) :: acc)
    [] rules
  |> List.sort_uniq compare

let bound_vars_of_term bound t =
  List.for_all (fun v -> List.mem v bound) (Term.vars t)

let adornment_of_atom bound (a : Atom.t) : adornment =
  Array.of_list (List.map (bound_vars_of_term bound) a.args)

(* Arguments at bound positions. *)
let bound_args (a : Atom.t) (ad : adornment) =
  List.filteri (fun i _ -> ad.(i)) a.args

let transform rules ~query =
  check_positive rules;
  if Ground.Builtin.is_builtin_atom query then
    invalid_arg "Magic.transform: builtin query";
  let idb = idb_preds rules in
  let is_idb (a : Atom.t) = List.mem (a.Atom.pred, Atom.arity a) idb in
  let query_ad : adornment =
    Array.of_list (List.map Term.is_ground query.Atom.args)
  in
  let out = ref [] in
  let emit r = out := r :: !out in
  let seen = Hashtbl.create 16 in
  let work = Queue.create () in
  let demand (pred, arity) (ad : adornment) =
    let key = (pred, arity, Array.to_list ad) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (pred, arity, ad) work
    end
  in
  if is_idb query then demand (query.Atom.pred, Atom.arity query) query_ad;
  while not (Queue.is_empty work) do
    let pred, arity, ad = Queue.pop work in
    List.iter
      (fun (r : Rule.t) ->
        let h = (Rule.head r).Literal.atom in
        if String.equal h.Atom.pred pred && Atom.arity h = arity then begin
          (* variables bound by the magic guard *)
          let bound = ref [] in
          List.iteri
            (fun i t -> if ad.(i) then bound := Term.add_vars t !bound)
            h.Atom.args;
          let magic_head =
            Atom.make (magic_name pred ad) (bound_args h ad)
          in
          (* walk the body left-to-right, rewriting IDB atoms and
             generating magic rules *)
          let prefix = ref [ Literal.pos magic_head ] in
          List.iter
            (fun (l : Literal.t) ->
              let a = l.Literal.atom in
              if Ground.Builtin.is_builtin_literal l then
                prefix := l :: !prefix
              else if is_idb a then begin
                let ad' = adornment_of_atom !bound a in
                demand (a.Atom.pred, Atom.arity a) ad';
                (* magic rule: the bindings flowing into this call *)
                emit
                  (Rule.make
                     (Literal.pos
                        (Atom.make
                           (magic_name a.Atom.pred ad')
                           (bound_args a ad')))
                     (List.rev !prefix));
                (* the call itself, adorned *)
                let adorned =
                  { a with Atom.pred = adorned_name a.Atom.pred ad' }
                in
                prefix := Literal.pos adorned :: !prefix;
                bound := Atom.add_vars a !bound
              end
              else begin
                (* EDB atom: kept as is, binds its variables *)
                prefix := l :: !prefix;
                bound := Atom.add_vars a !bound
              end)
            (Rule.body r);
          (* the answer rule, guarded by the magic of its head *)
          emit
            (Rule.make
               (Literal.pos { h with Atom.pred = adorned_name pred ad })
               (List.rev !prefix))
        end)
      rules
  done;
  (* EDB facts and rules over EDB-only predicates pass through. *)
  List.iter
    (fun (r : Rule.t) ->
      if Rule.is_fact r then emit r)
    rules;
  (* seed: the query's bound arguments *)
  let adorned_query =
    if is_idb query then { query with Atom.pred = adorned_name query.Atom.pred query_ad }
    else query
  in
  if is_idb query then
    emit
      (Rule.fact
         (Literal.pos
            (Atom.make
               (magic_name query.Atom.pred query_ad)
               (bound_args query query_ad))));
  (List.rev !out, adorned_query)

let answers rules ~query =
  let transformed, adorned_query = transform rules ~query in
  let ground = (Ground.Grounder.relevant ~naf:true transformed).rules in
  let np = Nprog.of_rules ground in
  let model = Nprog.decode_mask np (Consequence.lfp np) in
  Atom.Set.filter_map
    (fun (a : Atom.t) ->
      if String.equal a.Atom.pred adorned_query.Atom.pred then
        match Unify.match_atom adorned_query a with
        | Some _ -> Some { a with Atom.pred = query.Atom.pred }
        | None -> None
      else None)
    model
