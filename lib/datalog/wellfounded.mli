(** Well-founded semantics [VRS] via the alternating fixpoint.

    [gamma p s] is the least model of the Gelfond–Lifschitz reduct of [p]
    w.r.t. [s].  [gamma] is antimonotone, so [gamma^2] is monotone; the
    well-founded model is [W+ = lfp (gamma^2)] (true atoms) and
    [W- = complement of gfp (gamma^2)] (false atoms); the rest is
    undefined. *)

type result = {
  true_ : bool array;  (** well-founded true atoms *)
  false_ : bool array;  (** well-founded false atoms *)
}

val gamma : ?budget:Governor.Budget.t -> Nprog.t -> bool array -> bool array

val compute : ?budget:Governor.Budget.t -> Nprog.t -> result
(** [budget] is ticked per derivation inside each reduct fixpoint and
    polled per alternation round; exhaustion raises
    [Governor.Budget.Exhausted]. *)

val model : ?budget:Governor.Budget.t -> Nprog.t -> Logic.Interp.t
(** The well-founded (3-valued) model as an interpretation: true atoms
    mapped to true, well-founded-false atoms to false, others undefined. *)

val is_total : result -> bool
(** No undefined atom. *)
