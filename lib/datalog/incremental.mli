(** Incremental maintenance of the minimal model of a ground positive
    program under insertion and deletion of base (EDB) facts.

    Insertions propagate semi-naively (only the affected rules are
    touched).  Deletions use the classic DRed discipline — {e over-delete}
    everything whose derivation may have used the deleted fact, then
    {e re-derive} what still has alternative support — which is exact in
    the presence of recursion, where naive support counting is not.

    The test suite checks the maintained model against a from-scratch
    fixpoint after random update sequences; the benchmark suite compares
    maintenance cost against recomputation (experiment B8). *)

type t

val create : Logic.Rule.t list -> t
(** [create rules] sets up maintenance for the given {e ground positive}
    rules (facts among them become initial EDB atoms).  Raises
    [Invalid_argument] on non-ground rules, negative literals, or builtin
    heads. *)

val add : t -> Logic.Atom.t -> unit
(** Insert a base fact (idempotent). *)

val remove : t -> Logic.Atom.t -> unit
(** Delete a base fact (a no-op if it was never inserted as one; derived
    support is unaffected). *)

val holds : t -> Logic.Atom.t -> bool
(** Membership in the maintained minimal model. *)

val derived : t -> Logic.Atom.Set.t
(** The maintained minimal model (EDB plus derived atoms). *)

val edb : t -> Logic.Atom.Set.t
(** The current base facts. *)

val recompute : t -> Logic.Atom.Set.t
(** From-scratch fixpoint over the same rules and current EDB — the
    reference the incremental state must agree with (used by tests). *)
