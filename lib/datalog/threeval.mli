(** Three-valued models [P3], founded models and (3-valued) stable models
    [SZ] of seminegative programs (paper, Section 3).

    An interpretation [M] — a consistent set of literals over the program's
    atoms — is a {e 3-valued model} when [value(H(r)) >= value(B(r))] for
    every ground rule [r], under [False < Undefined < True].

    The {e positive version} [C_M] of [C] w.r.t. [M] keeps only the
    {e applied} rules (applicable with head true in [M]) and strips their
    negative literals; [M] is {e founded} when the least fixpoint of
    [T_{C_M}] equals [M+].  [M] is a (3-valued) {e stable model} when it is
    a maximal founded 3-valued model. *)

val is_three_valued_model : Nprog.t -> Logic.Interp.t -> bool

val positive_version : Nprog.t -> Logic.Interp.t -> Nprog.rule array
(** The paper's [C_M]: applied rules with negative literals deleted. *)

val is_founded : Nprog.t -> Logic.Interp.t -> bool
(** [T^inf_{C_M}(0) = M+] (requires [M] to be a 3-valued model to mean
    anything; the check itself works on any interpretation). *)

val founded_models : Nprog.t -> Logic.Interp.t list
(** All founded 3-valued models, by exhaustive enumeration over the atom
    space — exponential, for testing on small programs. *)

val stable_models : Nprog.t -> Logic.Interp.t list
(** Maximal founded 3-valued models (set-inclusion maximal on the literal
    sets), by exhaustive enumeration — exponential, for testing. *)

val total_stable_models : Nprog.t -> Logic.Interp.t list
(** The total stable models, i.e. classical [GL1] stable models, derived
    from {!Stable.models} (efficient path). *)
